package bandslim_test

import (
	"bytes"
	"fmt"
	"testing"

	"bandslim"
)

func batchKV(n int) (keys, values [][]byte) {
	keys = make([][]byte, n)
	values = make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("bk%04d", i))
		// Mixed sizes exercise inline, PRP, and adaptive transfer classes.
		size := 16 + (i%4)*700
		v := make([]byte, size)
		for j := range v {
			v[j] = byte(i + j)
		}
		values[i] = v
	}
	return keys, values
}

func TestPutBatchGetBatchRoundTrip(t *testing.T) {
	db, err := bandslim.Open(bandslim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	keys, values := batchKV(200)
	if err := db.PutBatch(keys, values); err != nil {
		t.Fatal(err)
	}
	got, err := db.GetBatch(keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if !bytes.Equal(got[i], values[i]) {
			t.Fatalf("key %s: got %d bytes, want %d", keys[i], len(got[i]), len(values[i]))
		}
	}

	// Lanes are reused in place: a second call with the returned slice must
	// not allocate fresh lanes, and overwrites must be visible through it.
	for i := range values {
		values[i][0] ^= 0xFF
	}
	if err := db.PutBatch(keys, values); err != nil {
		t.Fatal(err)
	}
	got2, err := db.GetBatch(keys, got)
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if !bytes.Equal(got2[i], values[i]) {
			t.Fatalf("key %s: overwrite not visible through reused lanes", keys[i])
		}
	}

	// Per-op Get must agree with the batch write path.
	for i := 0; i < len(keys); i += 37 {
		v, err := db.Get(keys[i])
		if err != nil || !bytes.Equal(v, values[i]) {
			t.Fatalf("Get(%s) after PutBatch: %v", keys[i], err)
		}
	}
}

func TestShardedBatchRoundTrip(t *testing.T) {
	s, err := bandslim.OpenSharded(bandslim.ShardedConfig{
		Shards:   4,
		PerShard: bandslim.DefaultConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	keys, values := batchKV(256)
	if err := s.PutBatch(keys, values); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetBatch(keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if !bytes.Equal(got[i], values[i]) {
			t.Fatalf("key %s: cross-shard batch read mismatch (%d vs %d bytes)",
				keys[i], len(got[i]), len(values[i]))
		}
	}

	// The batch fan-out must agree with the per-key routed path.
	for i := 0; i < len(keys); i += 29 {
		v, err := s.Get(keys[i])
		if err != nil || !bytes.Equal(v, values[i]) {
			t.Fatalf("Get(%s) after sharded PutBatch: %v", keys[i], err)
		}
	}

	// Batch updates interleaved with per-op writes stay consistent.
	for i := range values {
		values[i] = append(values[i], 0xAB)
	}
	if err := s.PutBatch(keys, values); err != nil {
		t.Fatal(err)
	}
	got, err = s.GetBatch(keys, got)
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if !bytes.Equal(got[i], values[i]) {
			t.Fatalf("key %s: sharded batch overwrite mismatch", keys[i])
		}
	}
}

func TestBatchArgumentErrors(t *testing.T) {
	db, err := bandslim.Open(bandslim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s, err := bandslim.OpenSharded(bandslim.ShardedConfig{Shards: 2, PerShard: bandslim.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	keys := [][]byte{[]byte("a"), []byte("b")}
	one := [][]byte{[]byte("x")}
	if err := db.PutBatch(keys, one); err == nil {
		t.Error("DB.PutBatch accepted mismatched key/value counts")
	}
	if _, err := db.GetBatch(keys, one); err == nil {
		t.Error("DB.GetBatch accepted mismatched key/lane counts")
	}
	if err := s.PutBatch(keys, one); err == nil {
		t.Error("ShardedDB.PutBatch accepted mismatched key/value counts")
	}
	if _, err := s.GetBatch(keys, one); err == nil {
		t.Error("ShardedDB.GetBatch accepted mismatched key/lane counts")
	}

	if _, err := db.GetBatch([][]byte{[]byte("missing")}, nil); err == nil {
		t.Error("DB.GetBatch of an absent key succeeded")
	}
	if _, err := s.GetBatch([][]byte{[]byte("missing")}, nil); err == nil {
		t.Error("ShardedDB.GetBatch of an absent key succeeded")
	}
}

// TestGetBatchSparse checks the miss-tolerant batch lookup on both
// front-ends: present keys copy into their lanes, absent keys set miss[i]
// with an empty lane, and no error is raised for the misses.
func TestGetBatchSparse(t *testing.T) {
	db, err := bandslim.Open(bandslim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s, err := bandslim.OpenSharded(bandslim.ShardedConfig{Shards: 4, PerShard: bandslim.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	keys, values := batchKV(64)
	if err := db.PutBatch(keys, values); err != nil {
		t.Fatal(err)
	}
	if err := s.PutBatch(keys, values); err != nil {
		t.Fatal(err)
	}

	// Interleave present and absent keys.
	probe := make([][]byte, 0, len(keys)*2)
	wantMiss := make([]bool, 0, len(keys)*2)
	for i := range keys {
		probe = append(probe, keys[i])
		wantMiss = append(wantMiss, false)
		if i%3 == 0 {
			probe = append(probe, []byte(fmt.Sprintf("absent%04d", i)))
			wantMiss = append(wantMiss, true)
		}
	}
	check := func(name string, get func(keys, vals [][]byte, miss []bool) ([][]byte, error)) {
		t.Helper()
		miss := make([]bool, len(probe))
		got, err := get(probe, nil, miss)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		vi := 0
		for i := range probe {
			if miss[i] != wantMiss[i] {
				t.Fatalf("%s: key %q miss=%v, want %v", name, probe[i], miss[i], wantMiss[i])
			}
			if wantMiss[i] {
				if len(got[i]) != 0 {
					t.Fatalf("%s: absent key %q got %d bytes", name, probe[i], len(got[i]))
				}
				continue
			}
			if !bytes.Equal(got[i], values[vi]) {
				t.Fatalf("%s: key %q value mismatch", name, probe[i])
			}
			vi++
		}
		// Mismatched miss length is an argument error.
		if _, err := get(probe, nil, make([]bool, 1)); err == nil {
			t.Fatalf("%s: accepted short miss slice", name)
		}
	}
	check("DB", db.GetBatchSparse)
	check("ShardedDB", s.GetBatchSparse)
}

// TestBatchPathDeterminism replays the same batched workload twice and
// requires byte-identical exported metrics: the batch fast path must not
// introduce any run-to-run nondeterminism into simulated time.
func TestBatchPathDeterminism(t *testing.T) {
	run := func() (string, string) {
		s, err := bandslim.OpenSharded(bandslim.ShardedConfig{
			Shards:   4,
			PerShard: bandslim.DefaultConfig(),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		keys, values := batchKV(300)
		for round := 0; round < 3; round++ {
			if err := s.PutBatch(keys, values); err != nil {
				t.Fatal(err)
			}
			if _, err := s.GetBatch(keys, nil); err != nil {
				t.Fatal(err)
			}
		}
		var prom bytes.Buffer
		if err := s.WritePrometheus(&prom); err != nil {
			t.Fatal(err)
		}
		var csv bytes.Buffer
		if err := bandslim.WriteSeriesCSV(&csv, s.Series()); err != nil {
			t.Fatal(err)
		}
		return prom.String(), csv.String()
	}
	prom1, csv1 := run()
	prom2, csv2 := run()
	if prom1 != prom2 {
		t.Error("batched workload: WritePrometheus output differs between identical runs")
	}
	if csv1 != csv2 {
		t.Error("batched workload: WriteSeriesCSV output differs between identical runs")
	}
}
