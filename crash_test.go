package bandslim_test

// Crash-consistency sweep: run one fixed deterministic workload and cut
// power at every command boundary — and at interior DMA and NAND-program
// points — then recover and verify that every write acknowledged before the
// cut is present with its exact value. Each cut point runs twice to prove
// the whole crash+recovery path is deterministic.

import (
	"bytes"
	"fmt"
	"testing"

	"bandslim"
	"bandslim/internal/sim"
)

// crashWorkload drives a fixed op sequence, recording acknowledged state in
// acked (nil value = acked delete). It stops permanently once power is cut:
// the driver reports StatusPowerLoss and the harness moves to verification.
func crashWorkload(t *testing.T, db *bandslim.DB) (acked map[string][]byte, cut bool) {
	t.Helper()
	acked = map[string][]byte{}
	rng := sim.NewRNG(0xC0FFEE)
	step := func(key string, value []byte, err error) bool {
		if err == nil {
			acked[key] = value
			return false
		}
		if bandslim.IsPowerLoss(err) {
			return true
		}
		t.Fatalf("workload: unexpected error: %v", err)
		return true
	}
	for op := 0; op < 30; op++ {
		key := fmt.Sprintf("c%02d", op%12)
		switch {
		case op%7 == 5: // delete an earlier key
			if step(key, nil, db.Delete([]byte(key))) {
				return acked, true
			}
		case op%11 == 10: // flush
			if err := db.Flush(); err != nil {
				if bandslim.IsPowerLoss(err) {
					return acked, true
				}
				t.Fatalf("flush: %v", err)
			}
		case op%5 == 4: // batch read through the submission window
			// Before the cut no mutation has failed, so the store must match
			// the acked map exactly — and the window must keep matching it
			// even when the cut lands mid-batch on a later occurrence.
			keys := make([][]byte, 4)
			for i := range keys {
				keys[i] = []byte(fmt.Sprintf("c%02d", (op+3*i)%12))
			}
			miss := make([]bool, 4)
			vals, err := db.GetBatchSparse(keys, make([][]byte, 4), miss)
			if err != nil {
				if bandslim.IsPowerLoss(err) {
					return acked, true
				}
				t.Fatalf("batch get: %v", err)
			}
			for i, k := range keys {
				want, known := acked[string(k)]
				if !known || want == nil {
					if !miss[i] {
						t.Fatalf("batch get %s: expected absent, got %d bytes", k, len(vals[i]))
					}
					continue
				}
				if miss[i] || !bytes.Equal(vals[i], want) {
					t.Fatalf("batch get %s: got %d bytes, want %d", k, len(vals[i]), len(want))
				}
			}
		default:
			value := mcValue(rng)
			if step(key, value, db.Put([]byte(key), value)) {
				return acked, true
			}
		}
	}
	return acked, false
}

// crashVerify recovers (if power was cut) and checks every acknowledged
// write. It returns a deterministic dump of the final state for the two-run
// comparison.
func crashVerify(t *testing.T, db *bandslim.DB, acked map[string][]byte, cut bool) []byte {
	t.Helper()
	if cut {
		if err := db.Recover(); err != nil {
			t.Fatalf("recover: %v", err)
		}
	}
	var dump bytes.Buffer
	for i := 0; i < 12; i++ {
		key := fmt.Sprintf("c%02d", i)
		// A cut point past the workload's command count fires during these
		// verification reads instead; recover and retry.
		var got []byte
		for attempt := 0; ; attempt++ {
			var err error
			got, err = db.GetInto([]byte(key), nil)
			if err == nil {
				break
			}
			if bandslim.IsNotFound(err) {
				got = nil
				break
			}
			if bandslim.IsPowerLoss(err) && attempt < 4 {
				if err := db.Recover(); err != nil {
					t.Fatalf("verify %s: recover: %v", key, err)
				}
				continue
			}
			t.Fatalf("verify %s: %v", key, err)
		}
		if want, ok := acked[key]; ok {
			if want == nil {
				// Acked delete: a later unacked put may have been journaled,
				// so presence is legal — but it must not be a torn value;
				// nothing to compare against, so just record it in the dump.
			} else if got == nil {
				t.Fatalf("acked write %s lost after recovery", key)
			} else if !bytes.Equal(got, want) {
				t.Fatalf("key %s: got %d bytes, want %d", key, len(got), len(want))
			}
		}
		fmt.Fprintf(&dump, "%s=%d\n", key, len(got))
	}
	st := db.Stats()
	fmt.Fprintf(&dump, "cuts=%d mounts=%d replayed=%d programs=%d\n",
		st.Faults.PowerCuts, st.Faults.Mounts, st.Faults.ReplayedRecords,
		st.Device.NANDPageWrites)
	return dump.Bytes()
}

// runCrashPoint executes the workload with one power cut injected at the
// given site/occurrence, verifies, and returns the state dump. The cut
// occurrence also picks the submission queue depth (rotating through 1, 4,
// and 8 via mcSubmission) and the read-cache configuration (rotating through
// off, LRU, and 2Q via mcCache — device DRAM is volatile, so every cut also
// proves the caches drop and repopulate coherently), so the sweep covers
// every depth and cache tier; both determinism runs of a point share its
// depth and cache config.
func runCrashPoint(t *testing.T, site bandslim.FaultSite, nth int) []byte {
	t.Helper()
	plan := &bandslim.FaultPlan{
		Seed:  1,
		Rules: []bandslim.FaultRule{{Site: site, Effect: bandslim.FaultPowerCut, Nth: nth}},
	}
	cfg := tinyFaultConfig(plan)
	cfg.Submission = mcSubmission(uint64(nth))
	cfg.Cache = mcCache(uint64(nth))
	db, err := bandslim.Open(cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer db.Close()
	acked, cut := crashWorkload(t, db)
	return crashVerify(t, db, acked, cut)
}

// TestCrashSweep cuts power at every command boundary (exec occurrences 1
// through 60 cover the whole 30-op workload including its transfer
// fragments) and at interior DMA-transfer and NAND-program points, then
// proves recovery at each point and determinism across a second identical
// run.
func TestCrashSweep(t *testing.T) {
	type point struct {
		site bandslim.FaultSite
		nth  int
	}
	var points []point
	for k := 1; k <= 60; k++ {
		points = append(points, point{bandslim.FaultExec, k})
	}
	for k := 1; k <= 12; k++ {
		points = append(points, point{bandslim.FaultDMAIn, k})
		points = append(points, point{bandslim.FaultNandProgram, k})
	}
	for _, p := range points {
		name := fmt.Sprintf("%v/nth=%d", p.site, p.nth)
		first := runCrashPoint(t, p.site, p.nth)
		second := runCrashPoint(t, p.site, p.nth)
		if !bytes.Equal(first, second) {
			t.Fatalf("%s: non-deterministic recovery:\nrun1:\n%srun2:\n%s", name, first, second)
		}
	}
	// The uncut baseline must also be reproducible.
	base1 := runCrashPoint(t, bandslim.FaultExec, 100000)
	base2 := runCrashPoint(t, bandslim.FaultExec, 100000)
	if !bytes.Equal(base1, base2) {
		t.Fatalf("baseline non-deterministic:\nrun1:\n%srun2:\n%s", base1, base2)
	}
}
