// Observability surface: the command-level trace subsystem behind
// Config.Tracer, and the simulated-time metrics sampler behind
// Config.MetricsInterval with its Prometheus and CSV exporters.
//
// The simulator's components — driver, PCIe link, NVMe rings, DMA engine,
// NAND page buffer, flash array — each emit typed events stamped with
// simulated time when a Tracer is configured. With Config.Tracer nil (the
// default) every emission site is a single pointer nil check, so tracing has
// no measurable cost when disabled.
//
// Quick start:
//
//	rec := bandslim.NewRecorder(1 << 20)
//	cfg := bandslim.DefaultConfig()
//	cfg.Tracer = rec
//	db, _ := bandslim.Open(cfg)
//	// ... workload ...
//	f, _ := os.Create("trace.json")
//	bandslim.WriteChromeTrace(f, rec.TraceEvents())
//
// The resulting file loads in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing: each shard renders as a process, each subsystem as a
// thread, and one over-threshold PUT reads top-to-bottom as command fetch →
// DMA → memcpy → NAND program.
package bandslim

import (
	"io"

	"bandslim/internal/spans"
	"bandslim/internal/timeseries"
	"bandslim/internal/trace"
)

// Tracer receives command-level events. Implementations must be safe for
// use from the goroutine running the simulation (ShardedDB shards emit from
// their worker goroutines, each wrapped to stamp its shard id).
type Tracer = trace.Tracer

// TraceEvent is one traced occurrence: a span (End > Start) such as a DMA
// transfer or NAND program, or an instant (End == Start) such as a doorbell
// write. Times are simulated nanoseconds.
type TraceEvent = trace.Event

// Recorder is a mutex-protected ring buffer Tracer: when full it evicts the
// oldest events and counts them as dropped.
type Recorder struct {
	rec *trace.Recorder
}

// NewRecorder returns a ring-buffered Tracer keeping the most recent
// capacity events (at least 1).
func NewRecorder(capacity int) *Recorder {
	return &Recorder{rec: trace.NewRecorder(capacity)}
}

// Emit records one event; it implements Tracer.
func (r *Recorder) Emit(ev TraceEvent) { r.rec.Emit(ev) }

// TraceEvents returns the buffered events in emission order.
func (r *Recorder) TraceEvents() []TraceEvent { return r.rec.Events() }

// Len reports how many events are buffered.
func (r *Recorder) Len() int { return r.rec.Len() }

// Dropped reports how many events the ring evicted.
func (r *Recorder) Dropped() int64 { return r.rec.Dropped() }

// Reset clears the buffer and the dropped count.
func (r *Recorder) Reset() { r.rec.Reset() }

// MergeTraces combines per-shard event streams into one, ordered by
// simulated start time with (shard, seq) breaking ties; the result is
// independent of stream order.
func MergeTraces(streams ...[]TraceEvent) []TraceEvent {
	return trace.Merge(streams...)
}

// WriteTraceJSONL writes one JSON object per event, one per line, with a
// fixed key order and integer nanosecond timestamps. A deterministic run
// produces byte-identical output.
func WriteTraceJSONL(w io.Writer, events []TraceEvent) error {
	return trace.WriteJSONL(w, events)
}

// WriteChromeTrace writes the events as Chrome trace_event JSON, loadable in
// Perfetto and chrome://tracing. Shards become processes; subsystems become
// threads ordered host→device.
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	return trace.WriteChromeTrace(w, events)
}

// ReadTraceJSONL parses a stream written by WriteTraceJSONL back into
// events, in file order — the input side of offline analysis
// (bandslim-cli analyze).
func ReadTraceJSONL(r io.Reader) ([]TraceEvent, error) {
	return trace.ReadJSONL(r)
}

// BlameReport is the result of latency attribution over a trace: per-op
// stage breakdowns (each op's stages are non-negative and sum exactly to its
// end-to-end latency), plus the stream-health tallies analysis must not hide
// (unclaimed commands, in-flight commands, proven event loss).
type BlameReport = spans.Report

// BlameOp is one reconstructed operation with its stage durations.
type BlameOp = spans.Op

// BlameStage identifies one latency-attribution stage; see
// internal/spans for the stage taxonomy and priority rules.
type BlameStage = spans.Stage

// BlameCriticalPath digests one op kind's p99 tail: the stage that absorbs
// the largest share of the slowest ops' latency.
type BlameCriticalPath = spans.CriticalPath

// AnalyzeTrace reconstructs per-operation latency attribution from an event
// stream (a recorder's buffer, a merged ShardedDB stream, or a re-read JSONL
// file). Pure and deterministic: the same events yield the same report.
func AnalyzeTrace(events []TraceEvent) *BlameReport {
	return spans.Analyze(events)
}

// BlameTopK returns the k slowest reconstructed ops, worst first.
func BlameTopK(r *BlameReport, k int) []BlameOp { return spans.TopK(r, k) }

// BlameCriticalPaths digests each op kind's p99 tail.
func BlameCriticalPaths(r *BlameReport) []BlameCriticalPath {
	return spans.CriticalPaths(r)
}

// WriteBlameCSV writes the per-op-kind × per-stage breakdown as a CSV table.
// Byte-deterministic for identical runs (the blame-smoke gate diffs it).
func WriteBlameCSV(w io.Writer, r *BlameReport) error { return spans.WriteCSV(w, r) }

// WriteBlameBreakdown writes the human-readable attribution report: stage
// tables per op kind, the critical-path digest, and the topK slowest ops.
func WriteBlameBreakdown(w io.Writer, r *BlameReport, topK int) error {
	return spans.WriteBreakdown(w, r, topK)
}

// Blame analyzes the DB's attached ring recorder (Config.Tracer must be a
// *Recorder) and returns the attribution report, or nil when no recorder is
// attached. The report covers whatever the ring currently holds; check
// Lossy() before trusting per-op numbers near the buffer's start.
func (db *DB) Blame() *BlameReport {
	rec, ok := db.cfg.Tracer.(*Recorder)
	if !ok || rec == nil {
		return nil
	}
	return spans.Analyze(rec.TraceEvents())
}

// MetricSeries is a sampled sequence of metric snapshots on a fixed
// simulated-time grid: sample i sits at t = i × Config.MetricsInterval,
// starting from a zero-state sample at t = 0. Counters are cumulative;
// derive rates with Rate ("pcie_bytes" → PCIe bytes per simulated second).
type MetricSeries = timeseries.Series

// MetricSample is one recorded snapshot within a MetricSeries.
type MetricSample = timeseries.Sample

// MetricDesc declares one scalar metric: name, kind (counter or gauge),
// cross-shard aggregation mode, and Prometheus HELP text.
type MetricDesc = timeseries.Desc

// Series returns the simulated-time metric series recorded so far. It is
// empty (Len() == 0) unless Config.MetricsInterval was set at Open. The
// series remains readable after Close and includes the final flush.
func (db *DB) Series() MetricSeries {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.sampler == nil {
		return MetricSeries{}
	}
	return db.sampler.Series()
}

// WritePrometheus writes the DB's current metric state — every counter,
// gauge, and full-bucket latency histogram — in the Prometheus text
// exposition format. It works with or without the sampler, remains usable
// after Close, and is deterministic: same-seed runs produce byte-identical
// output.
func (db *DB) WritePrometheus(w io.Writer) error {
	faults := db.cfg.Faults != nil
	cached := cacheEnabled(db.cfg)
	db.mu.Lock()
	snap := snapshotStack(db.st, faults, cached)
	db.mu.Unlock()
	if err := timeseries.WritePrometheus(w, "bandslim", descsFor(faults, cached), snap, histHelp); err != nil {
		return err
	}
	// Trace-ring health and stage-blame families follow as a separate
	// section, only when a ring recorder is attached: untraced runs keep
	// byte-identical exposition (the golden-smoke guarantee).
	rec, ok := db.cfg.Tracer.(*Recorder)
	if !ok || rec == nil {
		return nil
	}
	events := rec.TraceEvents()
	rep := spans.Analyze(events)
	bsnap := blameSnapshot(int64(len(events)), rec.Dropped(), rep)
	return timeseries.WritePrometheus(w, "bandslim", traceDescs, bsnap, blameHistHelp)
}

// WriteServerPrometheus writes a network front-end's counters in the
// Prometheus text exposition format. The server_* families are disjoint from
// the simulation families, so a serving process can concatenate this after
// DB.WritePrometheus to form one valid exposition; embedded runs that never
// call it keep byte-identical exporter output.
func WriteServerPrometheus(w io.Writer, s ServerStats) error {
	snap := timeseries.Snapshot{Values: serverSnapshotValues(s)}
	return timeseries.WritePrometheus(w, "bandslim", serverDescs, snap, nil)
}

// WriteSeriesCSV writes a metric series as one CSV table: a t_us time axis,
// every scalar column, per-counter _per_sec rate columns, and
// count/mean/p50/p99 columns per latency distribution — the same shape the
// results/*.csv figure pipeline consumes. Deterministic for same-seed runs.
func WriteSeriesCSV(w io.Writer, s MetricSeries) error {
	return timeseries.WriteCSV(w, s)
}
