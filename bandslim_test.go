package bandslim

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"bandslim/internal/device"
	"bandslim/internal/nand"
)

// smallConfig keeps tests fast: a compact geometry with the real page size.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Device.Geometry = nand.Geometry{
		Channels: 2, WaysPerChannel: 2, BlocksPerWay: 64, PagesPerBlock: 32, PageSize: 16 * 1024,
	}
	cfg.Device.LSM.MemTableEntries = 256
	return cfg
}

func openSmall(t *testing.T, mutate func(*Config)) *DB {
	t.Helper()
	cfg := smallConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestOpenDefaults(t *testing.T) {
	db, err := Open(Config{Method: Adaptive, Policy: BackfillPacking})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := db.Get([]byte("k"))
	if err != nil || string(got) != "v" {
		t.Fatalf("Get = %q, %v", got, err)
	}
}

func TestPutGetDeleteLifecycle(t *testing.T) {
	db := openSmall(t, nil)
	defer db.Close()
	if err := db.Put([]byte("alpha"), []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete([]byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("alpha")); err == nil {
		t.Fatal("deleted key still readable")
	}
}

func TestValuesAcrossSizesAndMethods(t *testing.T) {
	for _, m := range []TransferMethod{Baseline, Piggyback, Hybrid, Adaptive} {
		db := openSmall(t, func(c *Config) { c.Method = m })
		for _, size := range []int{1, 8, 35, 36, 56, 100, 2048, 4096, 4096 + 32, 9000} {
			key := []byte(fmt.Sprintf("s%d", size))
			v := bytes.Repeat([]byte{byte(size)}, size)
			if err := db.Put(key, v); err != nil {
				t.Fatalf("%v Put(%d): %v", m, size, err)
			}
			got, err := db.Get(key)
			if err != nil || !bytes.Equal(got, v) {
				t.Fatalf("%v Get(%d) mismatch: %v", m, size, err)
			}
		}
		db.Close()
	}
}

func TestIterator(t *testing.T) {
	db := openSmall(t, nil)
	defer db.Close()
	for i := 0; i < 25; i++ {
		if err := db.Put([]byte(fmt.Sprintf("it%02d", i)), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	it, err := db.NewIterator([]byte("it10"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 25; i++ {
		if !it.Valid() {
			t.Fatalf("iterator died at %d: %v", i, it.Err())
		}
		if want := fmt.Sprintf("it%02d", i); string(it.Key()) != want {
			t.Fatalf("key %q, want %q", it.Key(), want)
		}
		if it.Value()[0] != byte(i) {
			t.Fatalf("value %v at %d", it.Value(), i)
		}
		it.Next()
	}
	if it.Valid() {
		t.Fatal("iterator ran past the data")
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
}

func TestIteratorFromStart(t *testing.T) {
	db := openSmall(t, nil)
	defer db.Close()
	db.Put([]byte("a"), []byte("1"))
	db.Put([]byte("b"), []byte("2"))
	it, err := db.NewIterator(nil)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for it.Valid() {
		count++
		it.Next()
	}
	if count != 2 {
		t.Fatalf("scanned %d", count)
	}
}

func TestClosedDBRejectsOps(t *testing.T) {
	db := openSmall(t, nil)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal("second Close must be a no-op")
	}
	if err := db.Put([]byte("k"), nil); err != ErrClosed {
		t.Fatalf("Put after close: %v", err)
	}
	if _, err := db.Get([]byte("k")); err != ErrClosed {
		t.Fatalf("Get after close: %v", err)
	}
	if err := db.Delete([]byte("k")); err != ErrClosed {
		t.Fatalf("Delete after close: %v", err)
	}
	if err := db.Flush(); err != ErrClosed {
		t.Fatalf("Flush after close: %v", err)
	}
	if _, err := db.NewIterator(nil); err != ErrClosed {
		t.Fatalf("NewIterator after close: %v", err)
	}
}

// A fully zero Thresholds is the "use defaults" sentinel; a deliberate
// Threshold1 = 0 (any other field non-zero) must be honored, not silently
// replaced with the defaults.
func TestThresholdsZeroValueSentinel(t *testing.T) {
	// Zero value: defaults apply, so a small value goes inline.
	db := openSmall(t, func(c *Config) {
		c.Method = Adaptive
		c.Thresholds = Thresholds{}
	})
	defer db.Close()
	if err := db.Put([]byte("k"), make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	if s := db.Stats(); s.Adaptive.Inline != 1 || s.Adaptive.PRP != 0 {
		t.Fatalf("zero Thresholds did not adopt defaults: inline=%d prp=%d",
			s.Adaptive.Inline, s.Adaptive.PRP)
	}

	// Deliberate Threshold1 = 0: the same small value must take the DMA path.
	db2 := openSmall(t, func(c *Config) {
		c.Method = Adaptive
		c.Thresholds = Thresholds{Alpha: 1, Beta: 1}
	})
	defer db2.Close()
	if err := db2.Put([]byte("k"), make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	if s := db2.Stats(); s.Adaptive.Inline != 0 || s.Adaptive.PRP != 1 {
		t.Fatalf("deliberate Threshold1=0 was overridden: inline=%d prp=%d",
			s.Adaptive.Inline, s.Adaptive.PRP)
	}
}

// Closing the DB invalidates outstanding iterators: the next advance fails
// with ErrClosed instead of touching a torn-down stack.
func TestIteratorInvalidatedByClose(t *testing.T) {
	db := openSmall(t, nil)
	db.Put([]byte("a"), []byte("1"))
	db.Put([]byte("b"), []byte("2"))
	it, err := db.NewIterator(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !it.Valid() {
		t.Fatal("iterator empty before Close")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	it.Next()
	if it.Valid() {
		t.Fatal("iterator still valid after Close")
	}
	if it.Err() != ErrClosed {
		t.Fatalf("Err after Close: %v, want ErrClosed", it.Err())
	}
}

func TestFlushPersistsAndCountsNAND(t *testing.T) {
	db := openSmall(t, nil)
	defer db.Close()
	db.Put([]byte("k"), []byte("v"))
	before := db.Stats().Device.NANDPageWrites
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if db.Stats().Device.NANDPageWrites <= before {
		t.Fatal("Flush wrote nothing")
	}
}

func TestStatsSnapshot(t *testing.T) {
	db := openSmall(t, func(c *Config) { c.Method = Piggyback })
	defer db.Close()
	db.Put([]byte("k1"), make([]byte, 32))
	db.Get([]byte("k1"))
	s := db.Stats()
	if s.Host.Puts != 1 || s.Host.Gets != 1 {
		t.Fatalf("ops %d/%d", s.Host.Puts, s.Host.Gets)
	}
	if s.Host.Commands < 2 {
		t.Fatalf("commands %d", s.Host.Commands)
	}
	if s.Host.WriteResp.Mean <= 0 || s.Host.Elapsed <= 0 {
		t.Fatal("timings missing")
	}
	if s.Host.ThroughputKops <= 0 {
		t.Fatal("throughput missing")
	}
	if s.Adaptive.Inline != 1 {
		t.Fatalf("InlineChosen = %d", s.Adaptive.Inline)
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

func TestStatsAmplificationHelpers(t *testing.T) {
	s := Stats{PCIe: PCIeStats{Bytes: 4160}, Device: DeviceStats{NANDPageWrites: 2}}
	if got := s.TrafficAmplification(32); got != 130.0 {
		t.Fatalf("TAF = %v", got)
	}
	if got := s.WriteAmplification(1024, 16*1024); got != 32.0 {
		t.Fatalf("WAF = %v", got)
	}
	if s.TrafficAmplification(0) != 0 || s.WriteAmplification(0, 1) != 0 {
		t.Fatal("zero payload must report 0")
	}
}

func TestDisableNAND(t *testing.T) {
	db := openSmall(t, func(c *Config) { c.DisableNAND = true })
	defer db.Close()
	db.Put([]byte("k"), make([]byte, 100))
	if db.Stats().Device.NANDPageWrites != 0 {
		t.Fatal("NAND written despite DisableNAND")
	}
}

func TestCalibrateThresholds(t *testing.T) {
	thr, err := CalibrateThresholds(8)
	if err != nil {
		t.Fatal(err)
	}
	// The §3.2 result: piggybacking wins up to somewhere in [35, 128];
	// beyond 128 B the trailing-command round trips lose.
	if thr.Threshold1 < 35 || thr.Threshold1 > 128 {
		t.Fatalf("Threshold1 = %d, want in [35,128]", thr.Threshold1)
	}
	if thr.Threshold2 < 4 || thr.Threshold2 > 4096 {
		t.Fatalf("Threshold2 = %d", thr.Threshold2)
	}
	if _, err := CalibrateThresholds(0); err == nil {
		t.Fatal("perSize=0 accepted")
	}
}

func TestInspectSnapshot(t *testing.T) {
	db := openSmall(t, nil)
	defer db.Close()
	if got := db.Inspect(); got.Now != 0 {
		t.Fatalf("fresh DB clock at %v", got.Now)
	}
	if err := db.Put([]byte("k"), make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	insp := db.Inspect()
	if insp.Now <= 0 {
		t.Fatal("clock did not advance")
	}
	if insp.VLogFreeBytes <= 0 {
		t.Fatal("no vLog space reported")
	}
	if len(insp.OpLatency) == 0 || insp.OpLatency[0].Count == 0 {
		t.Fatalf("per-opcode latency missing: %+v", insp.OpLatency)
	}
	if len(insp.MethodLatency) == 0 {
		t.Fatal("per-method latency missing")
	}
	if insp.Policy != db.cfg.Policy {
		t.Fatalf("Policy = %v, want %v", insp.Policy, db.cfg.Policy)
	}
	// The snapshot is a copy: mutating it must not touch the DB.
	insp.BufferWP = -1
	if db.Inspect().BufferWP == -1 {
		t.Fatal("Inspect returned live state")
	}
}

func TestCompactVLogAPI(t *testing.T) {
	db := openSmall(t, nil)
	defer db.Close()
	free0 := db.VLogFreeBytes()
	if free0 <= 0 {
		t.Fatal("fresh DB reports no vLog space")
	}
	// Churn one key so dead versions pile up.
	for i := 0; i < 50; i++ {
		if err := db.Put([]byte("churn"), bytes.Repeat([]byte{byte(i)}, 3000)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if db.VLogFreeBytes() >= free0 {
		t.Fatal("churn consumed no space")
	}
	relocated, err := db.CompactVLog(4)
	if err != nil {
		t.Fatal(err)
	}
	if relocated > 1 {
		t.Fatalf("relocated %d values, want ≤1", relocated)
	}
	got, err := db.Get([]byte("churn"))
	if err != nil || got[0] != 49 {
		t.Fatalf("live value wrong after GC: %v %v", got[:1], err)
	}
	db.Close()
	if _, err := db.CompactVLog(1); err != ErrClosed {
		t.Fatalf("CompactVLog after close: %v", err)
	}
}

func TestPipelinedConfig(t *testing.T) {
	serial := openSmall(t, func(c *Config) { c.Method = Piggyback; c.DisableNAND = true })
	serial.Put([]byte("k"), make([]byte, 1024))
	sOps := serial.Stats().Host.WriteResp.Mean
	serial.Close()

	pipe := openSmall(t, func(c *Config) { c.Method = Piggyback; c.DisableNAND = true; c.Pipelined = true })
	pipe.Put([]byte("k"), make([]byte, 1024))
	pOps := pipe.Stats().Host.WriteResp.Mean
	pipe.Close()

	if pOps >= sOps/2 {
		t.Fatalf("pipelined response %v not ≪ serial %v", pOps, sOps)
	}
}

func TestBatcherAPI(t *testing.T) {
	db := openSmall(t, nil)
	defer db.Close()
	b, err := db.NewBatcher(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := b.Put([]byte(fmt.Sprintf("bk%d", i)), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Batch size 4: auto-flushed, readable.
	got, err := db.Get([]byte("bk2"))
	if err != nil || got[0] != 2 {
		t.Fatalf("batched record: %v %v", got, err)
	}
	db.Close()
	if _, err := db.NewBatcher(4); err != ErrClosed {
		t.Fatalf("NewBatcher after close: %v", err)
	}
}

func TestSGLMethodAPI(t *testing.T) {
	db := openSmall(t, func(c *Config) { c.Method = SGL })
	defer db.Close()
	v := bytes.Repeat([]byte{9}, 5000)
	if err := db.Put([]byte("s"), v); err != nil {
		t.Fatal(err)
	}
	got, err := db.Get([]byte("s"))
	if err != nil || !bytes.Equal(got, v) {
		t.Fatal("SGL round trip failed")
	}
}

// The DB serializes concurrent callers; under -race this validates the
// locking discipline.
func TestConcurrentAccess(t *testing.T) {
	db := openSmall(t, nil)
	defer db.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Get returns a view into the driver's read buffer, so concurrent
			// readers retain values through GetInto with a goroutine-owned dst.
			var dst []byte
			for i := 0; i < 30; i++ {
				key := []byte(fmt.Sprintf("c%d-%d", g, i))
				if err := db.Put(key, []byte{byte(g), byte(i)}); err != nil {
					errs <- err
					return
				}
				got, err := db.GetInto(key, dst)
				if err != nil || got[0] != byte(g) || got[1] != byte(i) {
					errs <- fmt.Errorf("goroutine %d read mismatch: %v %v", g, got, err)
					return
				}
				dst = got
			}
			db.Stats()
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if db.Stats().Host.Puts != 8*30 {
		t.Fatalf("Puts = %d", db.Stats().Host.Puts)
	}
}

// Run with -race: Put, Get, Delete, and iterators hammered from many
// goroutines against one DB. Iterators may observe snapshot invalidation
// (writes interleave with iteration), but nothing may race or panic.
func TestConcurrentMixedOps(t *testing.T) {
	db := openSmall(t, nil)
	defer db.Close()
	for i := 0; i < 64; i++ {
		if err := db.Put([]byte(fmt.Sprintf("seed%03d", i)), []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				key := []byte(fmt.Sprintf("m%d-%d", g, i))
				if err := db.Put(key, []byte{byte(g)}); err != nil {
					t.Error(err)
					return
				}
				if _, err := db.Get(key); err != nil {
					t.Error(err)
					return
				}
				if i%5 == 0 {
					if err := db.Delete(key); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				it, err := db.NewIterator(nil)
				if err != nil {
					t.Error(err)
					return
				}
				for it.Valid() {
					if it.Key() == nil {
						t.Error("valid iterator with nil key")
						return
					}
					it.Next()
				}
				// Concurrent writes legitimately invalidate the device
				// snapshot; only the race detector is the judge here.
				_ = it.Err()
			}
		}()
	}
	wg.Wait()
	if got := db.Stats().Host.Puts; got != 64+4*30 {
		t.Fatalf("Puts = %d, want %d", got, 64+4*30)
	}
}

func TestOpenZeroDeviceConfigGetsDefaults(t *testing.T) {
	db, err := Open(Config{Method: Baseline, Policy: Block})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	id, err := db.Identify()
	if err != nil {
		t.Fatal(err)
	}
	def := device.DefaultConfig().Geometry
	if id.Channels != def.Channels || id.WaysPerChannel != def.WaysPerChannel ||
		id.NANDPageSize != def.PageSize || id.CapacityBytes != def.CapacityBytes() {
		t.Fatal("zero config did not default")
	}
}

func TestIdentifyAPI(t *testing.T) {
	db := openSmall(t, nil)
	id, err := db.Identify()
	if err != nil {
		t.Fatal(err)
	}
	if id.Model == "" || !id.KVCommandSet {
		t.Fatalf("identify = %+v", id)
	}
	if id.InlineWriteBytes != 35 || id.InlineXferBytes != 56 {
		t.Fatalf("inline capacities %d/%d", id.InlineWriteBytes, id.InlineXferBytes)
	}
	db.Close()
	if _, err := db.Identify(); err != ErrClosed {
		t.Fatalf("Identify after close: %v", err)
	}
}
