package bandslim_test

// Scenario-driven model checking: the YCSB scenario generators (and the
// all-kinds "mixed" stream) drive the same differential harness as the
// random sequences in modelcheck_test.go — every op the generator emits is
// mirrored into the reference model, under rotating submission depths, cache
// configurations, and seed-derived fault plans, on both stack flavors. This
// proves the scenario suite composes with the whole fault/recovery surface,
// and conversely that the generators only emit executable streams.
//
// TestChaosUnderLoad is the crash-sweep chaos mode: a scenario workload runs
// while power is cut at chosen command/DMA/NAND-program occurrences; the
// harness recovers, verifies every acknowledged write, and proves the whole
// crash+recovery path deterministic by running each point twice.

import (
	"bytes"
	"fmt"
	"strconv"
	"testing"

	"bandslim"
	"bandslim/internal/sim"
	"bandslim/internal/workload"
)

// scenarioModelConfig shapes the small scenarios the differential mode runs:
// a 12-key load keeps the keyspace verifiable, the arrival rate gives ops
// µs-scale stamps, and the mid-run shift exercises time-keyed key choice.
func scenarioModelConfig(seed uint64) workload.ScenarioConfig {
	return workload.ScenarioConfig{
		Records: 12,
		Ops:     48,
		Seed:    seed,
		Arrival: workload.ArrivalConfig{Rate: 1_000_000, Jitter: seed%2 == 0},
		Shifts:  workload.HotShifts{{At: sim.Time(10 * sim.Microsecond), Rotate: 5}},
	}
}

// scenarioKeyNum decodes a scenario key ("y%08d"); ok is false for foreign
// keys a scan may pass over.
func scenarioKeyNum(key []byte) (int, bool) {
	if len(key) != 9 || key[0] != 'y' {
		return 0, false
	}
	n, err := strconv.Atoi(string(key[1:]))
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// mcScanScenario checks a scenario-driven scan against the model, the
// y-keyspace analog of mcScan.
func mcScanScenario(t *testing.T, db mcRecoverable, model *mcModel, start []byte, limit int, faulty bool) {
	t.Helper()
	var (
		it  mcIter
		err error
	)
	switch d := db.(type) {
	case *bandslim.DB:
		it, err = d.NewIterator(start)
	case *bandslim.ShardedDB:
		it, err = d.NewIterator(start)
	default:
		t.Fatalf("mcScanScenario: unknown db type %T", db)
	}
	if err != nil {
		if bandslim.IsPowerLoss(err) {
			mcRecover(t, db)
			return
		}
		if faulty {
			return
		}
		t.Fatalf("scan open: %v", err)
	}
	for n := 0; it.Valid() && n < limit; n++ {
		if _, ok := scenarioKeyNum(it.Key()); ok {
			key := string(it.Key())
			if !matchesAny(it.Value(), model.possible(key)) {
				t.Fatalf("scan: key %q holds impossible value (%d bytes)", key, len(it.Value()))
			}
		}
		it.Next()
	}
	if err := it.Err(); err != nil {
		if bandslim.IsPowerLoss(err) {
			mcRecover(t, db)
		} else if !faulty {
			t.Fatalf("scan: %v", err)
		}
	}
}

// runScenarioModelSequence drives one scenario stream through db and the
// reference model, then verifies the whole keyspace.
func runScenarioModelSequence(t *testing.T, db mcRecoverable, name string, seed uint64, faulty bool) {
	t.Helper()
	s, err := workload.NewScenario(name, scenarioModelConfig(seed))
	if err != nil {
		t.Fatalf("scenario %s: %v", name, err)
	}
	model := newMCModel()
	filler := workload.NewValueFiller(seed)
	var scratch []byte
	maxKey := 0

	mutate := func(key string, attempted []byte, err error) {
		if err == nil {
			model.acked(key, attempted)
			return
		}
		model.failed(key, attempted)
		if bandslim.IsPowerLoss(err) {
			mcRecover(t, db)
		} else if !faulty {
			t.Fatalf("%s seed %d: fault-free sequence errored: %v", name, seed, err)
		}
	}

	for {
		op, ok := s.Next()
		if !ok {
			break
		}
		if n, ok := scenarioKeyNum(op.Key); ok && n > maxKey {
			maxKey = n
		}
		key := string(op.Key)
		switch op.Kind {
		case workload.OpPut:
			value := filler.Fill(nil, op.N)
			mutate(key, value, db.Put(op.Key, value))
		case workload.OpGet:
			var got []byte
			got, scratch = mcGet(t, db, key, scratch)
			if !matchesAny(got, model.possible(key)) {
				t.Fatalf("%s seed %d: get %q returned impossible value (%d bytes)",
					name, seed, key, len(got))
			}
		case workload.OpDelete:
			mutate(key, nil, db.Delete(op.Key))
		case workload.OpScan:
			mcScanScenario(t, db, model, op.Key, op.N, faulty)
		case workload.OpRMW:
			var got []byte
			got, scratch = mcGet(t, db, key, scratch)
			if !matchesAny(got, model.possible(key)) {
				t.Fatalf("%s seed %d: rmw read %q returned impossible value (%d bytes)",
					name, seed, key, len(got))
			}
			value := filler.Fill(nil, op.N)
			mutate(key, value, db.Put(op.Key, value))
		default:
			t.Fatalf("%s: unexpected op kind %v", name, op.Kind)
		}
	}

	for n := 0; n <= maxKey; n++ {
		key := fmt.Sprintf("y%08d", n)
		var got []byte
		got, scratch = mcGet(t, db, key, scratch)
		if want, ok := model.sure[key]; ok {
			if got == nil && want != nil {
				t.Fatalf("%s seed %d: acked write %q lost", name, seed, key)
			}
			if !matchesAny(got, [][]byte{want}) {
				t.Fatalf("%s seed %d: key %q holds wrong value (%d bytes, want %d)",
					name, seed, key, len(got), len(want))
			}
		} else if !matchesAny(got, model.possible(key)) {
			t.Fatalf("%s seed %d: uncertain key %q holds impossible value (%d bytes)",
				name, seed, key, len(got))
		}
	}
}

// scenarioSeeds is how many seeds each (scenario, flavor) pair runs; odd
// seeds get a seed-derived fault plan, and the mcSubmission/mcCache rotations
// walk the queue-depth and cache configurations across the seed range.
func scenarioSeeds() uint64 {
	if testing.Short() {
		return 2
	}
	return 9
}

// TestModelCheckScenariosDB differentially checks every scenario against
// single-device stacks.
func TestModelCheckScenariosDB(t *testing.T) {
	for _, name := range workload.ScenarioNames() {
		for seed := uint64(1); seed <= scenarioSeeds(); seed++ {
			faulty := seed%2 == 1
			var plan *bandslim.FaultPlan
			if faulty {
				plan = mcPlan(seed ^ 0x5CE7A1)
			}
			cfg := tinyFaultConfig(plan)
			cfg.Submission = mcSubmission(seed)
			cfg.Cache = mcCache(seed)
			db, err := bandslim.Open(cfg)
			if err != nil {
				t.Fatalf("%s seed %d: open: %v", name, seed, err)
			}
			runScenarioModelSequence(t, db, name, seed, faulty)
			if err := db.Close(); err != nil && !bandslim.IsPowerLoss(err) {
				t.Fatalf("%s seed %d: close: %v", name, seed, err)
			}
		}
	}
}

// TestModelCheckScenariosSharded runs the same matrix against 2-shard stacks.
func TestModelCheckScenariosSharded(t *testing.T) {
	for _, name := range workload.ScenarioNames() {
		for seed := uint64(1); seed <= scenarioSeeds(); seed++ {
			faulty := seed%2 == 1
			var plan *bandslim.FaultPlan
			if faulty {
				plan = mcPlan(seed ^ 0xB1A5E)
			}
			per := tinyFaultConfig(plan)
			per.Submission = mcSubmission(seed)
			per.Cache = mcCache(seed)
			db, err := bandslim.OpenSharded(bandslim.ShardedConfig{Shards: 2, PerShard: per})
			if err != nil {
				t.Fatalf("%s seed %d: open: %v", name, seed, err)
			}
			runScenarioModelSequence(t, db, name, seed, faulty)
			if err := db.Close(); err != nil && !bandslim.IsPowerLoss(err) {
				t.Fatalf("%s seed %d: close: %v", name, seed, err)
			}
		}
	}
}

// chaosWorkload drives a scenario stream until it is exhausted or power is
// cut, recording acknowledged state (nil value = acked delete). pending holds
// the value of the mutation the cut interrupted, if any — after recovery that
// key may legally hold either its acked value or the attempted one.
func chaosWorkload(t *testing.T, db *bandslim.DB, s workload.Scenario, filler *workload.ValueFiller,
) (acked map[string][]byte, pending map[string][]byte, maxKey int, cut bool) {
	t.Helper()
	acked = map[string][]byte{}
	pending = map[string][]byte{}
	mutate := func(key string, value []byte, err error) bool {
		if err == nil {
			acked[key] = value
			return false
		}
		if bandslim.IsPowerLoss(err) {
			pending[key] = value
			return true
		}
		t.Fatalf("chaos workload: unexpected error: %v", err)
		return true
	}
	for {
		op, ok := s.Next()
		if !ok {
			return acked, pending, maxKey, false
		}
		if n, ok := scenarioKeyNum(op.Key); ok && n > maxKey {
			maxKey = n
		}
		key := string(op.Key)
		switch op.Kind {
		case workload.OpPut:
			value := filler.Fill(nil, op.N)
			if mutate(key, value, db.Put(op.Key, value)) {
				return acked, pending, maxKey, true
			}
		case workload.OpDelete:
			if mutate(key, nil, db.Delete(op.Key)) {
				return acked, pending, maxKey, true
			}
		case workload.OpGet:
			// Before the cut no mutation has failed, so the store must match
			// the acked map exactly.
			got, err := db.GetInto(op.Key, nil)
			switch {
			case err == nil:
				if want := acked[key]; want == nil || !bytes.Equal(got, want) {
					t.Fatalf("chaos get %q: got %d bytes, want %d", key, len(got), len(want))
				}
			case bandslim.IsNotFound(err):
				if acked[key] != nil {
					t.Fatalf("chaos get %q: acked value missing before any cut", key)
				}
			case bandslim.IsPowerLoss(err):
				return acked, pending, maxKey, true
			default:
				t.Fatalf("chaos get %q: %v", key, err)
			}
		case workload.OpScan:
			it, err := db.NewIterator(op.Key)
			if err != nil {
				if bandslim.IsPowerLoss(err) {
					return acked, pending, maxKey, true
				}
				t.Fatalf("chaos scan open: %v", err)
			}
			for n := 0; it.Valid() && n < op.N; n++ {
				it.Next()
			}
			if err := it.Err(); err != nil {
				if bandslim.IsPowerLoss(err) {
					return acked, pending, maxKey, true
				}
				t.Fatalf("chaos scan: %v", err)
			}
		case workload.OpRMW:
			if _, err := db.GetInto(op.Key, nil); err != nil &&
				!bandslim.IsNotFound(err) {
				if bandslim.IsPowerLoss(err) {
					return acked, pending, maxKey, true
				}
				t.Fatalf("chaos rmw read %q: %v", key, err)
			}
			value := filler.Fill(nil, op.N)
			if mutate(key, value, db.Put(op.Key, value)) {
				return acked, pending, maxKey, true
			}
		}
	}
}

// chaosVerify recovers (if cut), checks every acknowledged write survived
// with its exact bytes, and returns a deterministic state dump for the
// two-run comparison.
func chaosVerify(t *testing.T, db *bandslim.DB, acked, pending map[string][]byte, maxKey int, cut bool) []byte {
	t.Helper()
	if cut {
		if err := db.Recover(); err != nil {
			t.Fatalf("recover: %v", err)
		}
	}
	var dump bytes.Buffer
	for n := 0; n <= maxKey; n++ {
		key := fmt.Sprintf("y%08d", n)
		var got []byte
		for attempt := 0; ; attempt++ {
			var err error
			got, err = db.GetInto([]byte(key), nil)
			if err == nil {
				break
			}
			if bandslim.IsNotFound(err) {
				got = nil
				break
			}
			if bandslim.IsPowerLoss(err) && attempt < 4 {
				if err := db.Recover(); err != nil {
					t.Fatalf("verify %s: recover: %v", key, err)
				}
				continue
			}
			t.Fatalf("verify %s: %v", key, err)
		}
		want, known := acked[key]
		attempted, interrupted := pending[key]
		switch {
		case interrupted:
			// The cut op's key: either the acked state or the attempted
			// mutation (complete) is legal — never anything else.
			legal := [][]byte{attempted}
			if known {
				legal = append(legal, want)
			} else {
				legal = append(legal, nil)
			}
			if !matchesAny(got, legal) {
				t.Fatalf("key %s: %d bytes is neither the acked nor the attempted value",
					key, len(got))
			}
		case known && want != nil:
			if got == nil {
				t.Fatalf("acked write %s lost after recovery", key)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("key %s: got %d bytes, want %d", key, len(got), len(want))
			}
		}
		fmt.Fprintf(&dump, "%s=%d\n", key, len(got))
	}
	st := db.Stats()
	fmt.Fprintf(&dump, "cuts=%d mounts=%d replayed=%d programs=%d\n",
		st.Faults.PowerCuts, st.Faults.Mounts, st.Faults.ReplayedRecords,
		st.Device.NANDPageWrites)
	return dump.Bytes()
}

// runChaosPoint runs the mixed scenario with one power cut at the given
// site/occurrence and returns the verified state dump.
func runChaosPoint(t *testing.T, site bandslim.FaultSite, nth int) []byte {
	t.Helper()
	plan := &bandslim.FaultPlan{
		Seed:  2,
		Rules: []bandslim.FaultRule{{Site: site, Effect: bandslim.FaultPowerCut, Nth: nth}},
	}
	cfg := tinyFaultConfig(plan)
	cfg.Submission = mcSubmission(uint64(nth))
	cfg.Cache = mcCache(uint64(nth))
	db, err := bandslim.Open(cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer db.Close()
	s, err := workload.NewScenario("mixed", scenarioModelConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	acked, pending, maxKey, cut := chaosWorkload(t, db, s, workload.NewValueFiller(3))
	return chaosVerify(t, db, acked, pending, maxKey, cut)
}

// TestChaosUnderLoad is the crash sweep's chaos-under-load mode: power cuts
// land inside a live scenario stream — at command boundaries and interior
// DMA/NAND-program points — and each point must recover losslessly and
// reproduce its exact final state on a second run.
func TestChaosUnderLoad(t *testing.T) {
	type point struct {
		site bandslim.FaultSite
		nth  int
	}
	points := []point{
		{bandslim.FaultExec, 3}, {bandslim.FaultExec, 9}, {bandslim.FaultExec, 17},
		{bandslim.FaultExec, 30}, {bandslim.FaultExec, 48}, {bandslim.FaultExec, 70},
		{bandslim.FaultDMAIn, 2}, {bandslim.FaultDMAIn, 7},
		{bandslim.FaultNandProgram, 2}, {bandslim.FaultNandProgram, 7},
		{bandslim.FaultExec, 100000}, // uncut baseline
	}
	if !testing.Short() {
		for k := 1; k <= 24; k++ {
			points = append(points, point{bandslim.FaultExec, 3*k + 1})
		}
	}
	for _, p := range points {
		name := fmt.Sprintf("%v/nth=%d", p.site, p.nth)
		first := runChaosPoint(t, p.site, p.nth)
		second := runChaosPoint(t, p.site, p.nth)
		if !bytes.Equal(first, second) {
			t.Fatalf("%s: non-deterministic recovery:\nrun1:\n%srun2:\n%s", name, first, second)
		}
	}
}
