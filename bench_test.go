package bandslim_test

// Benchmark harness: one testing.B benchmark per paper table/figure (each
// regenerates the experiment at reduced scale and reports the headline
// series as custom metrics), plus micro-benchmarks of the simulator's hot
// paths. Run with:
//
//	go test -bench=. -benchmem
//
// The per-figure benchmarks report simulated quantities via b.ReportMetric
// (e.g. PCIe bytes per op, simulated response microseconds) so regressions
// in the modelled behaviour are as visible as wall-clock regressions.

import (
	"fmt"
	"testing"

	"bandslim"
	"bandslim/internal/bench"
	"bandslim/internal/workload"
)

// benchScale keeps each figure regeneration to a few hundred ms.
const benchScale = 2000

func reportCells(b *testing.B, t *bench.Table, row, col, metric string, scale float64) {
	b.Helper()
	v, err := t.Cell(row, col)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(v*scale, metric)
}

// BenchmarkFig3 regenerates Fig. 3: baseline PCIe traffic cascade and TAF.
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, taf, err := bench.RunFig3(bench.Options{Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportCells(b, taf, "32", "TAF", "TAF32B", 1)
			reportCells(b, a, "1", "response_us", "resp1K_us", 1)
		}
	}
}

// BenchmarkFig4 regenerates Fig. 4: NAND I/O counts and WAF.
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, waf, err := bench.RunFig4(bench.Options{Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportCells(b, waf, "32", "WAF", "WAF32B", 1)
			reportCells(b, a, "16", "response_us", "resp16K_us", 1)
		}
	}
}

// BenchmarkFig8 regenerates Fig. 8: Baseline vs Piggyback transfer.
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.RunFig8(bench.Options{Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			bt, _ := t.Cell("32", "Baseline_traffic_GB")
			pt, _ := t.Cell("32", "Piggyback_traffic_GB")
			b.ReportMetric(100*(1-pt/bt), "traffic_reduction_%")
		}
	}
}

// BenchmarkFig9 regenerates Fig. 9: hybrid transfer on over-page values.
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.RunFig9(bench.Options{Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			bt, _ := t.Cell("32", "Baseline_traffic_GB")
			ht, _ := t.Cell("32", "Hybrid_traffic_GB")
			b.ReportMetric(100*(1-ht/bt), "traffic_reduction_%")
		}
	}
}

// BenchmarkFig10 regenerates Fig. 10: transfer methods across W(B)..W(M).
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := bench.RunFig10(bench.Options{Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportCells(b, tables[1], "Adaptive", "W(M)", "adaptiveWM_Kops", 1)
			reportCells(b, tables[0], "Piggyback", "W(M)", "piggyWM_resp_us", 1)
		}
	}
}

// BenchmarkFig11 regenerates Fig. 11: fine-grained packing NAND reductions.
func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.RunFig11(bench.Options{Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			bn, _ := t.Cell("32", "Baseline_nand_io")
			pn, _ := t.Cell("32", "Packing_nand_io")
			b.ReportMetric(100*(1-pn/bn), "nand_reduction_%")
		}
	}
}

// BenchmarkFig12 regenerates Fig. 12: the four packing policies.
func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := bench.RunFig12(bench.Options{Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportCells(b, tables[1], "Backfill", "W(B)", "backfillWB_Kops", 1)
			reportCells(b, tables[1], "All", "W(C)", "allWC_Kops", 1)
		}
	}
}

// --- Simulator hot-path micro-benchmarks ---

func openBench(b *testing.B, method bandslim.TransferMethod, policy bandslim.PackingPolicy, nandOn bool) *bandslim.DB {
	b.Helper()
	cfg := bandslim.DefaultConfig()
	cfg.Method = method
	cfg.Policy = policy
	cfg.DisableNAND = !nandOn
	db, err := bandslim.Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return db
}

// BenchmarkPutInline32B measures the piggybacked small-write path.
func BenchmarkPutInline32B(b *testing.B) {
	db := openBench(b, bandslim.Piggyback, bandslim.BackfillPacking, true)
	defer db.Close()
	v := make([]byte, 32)
	key := make([]byte, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key[0], key[1], key[2], key[3] = byte(i), byte(i>>8), byte(i>>16), byte(i>>24)
		if err := db.Put(key, v); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPutPRP4K measures the page-unit DMA write path.
func BenchmarkPutPRP4K(b *testing.B) {
	db := openBench(b, bandslim.Baseline, bandslim.Block, true)
	defer db.Close()
	v := make([]byte, 4096)
	key := make([]byte, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key[0], key[1], key[2], key[3] = byte(i), byte(i>>8), byte(i>>16), byte(i>>24)
		if err := db.Put(key, v); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPutAdaptiveMixgraph measures the full adaptive path on the
// production-like size distribution.
func BenchmarkPutAdaptiveMixgraph(b *testing.B) {
	db := openBench(b, bandslim.Adaptive, bandslim.BackfillPacking, true)
	defer db.Close()
	gen := workload.NewWorkloadM(b.N+1, 3)
	filler := workload.NewValueFiller(1)
	var buf []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op, ok := gen.Next()
		if !ok {
			b.Fatal("generator exhausted")
		}
		buf = filler.Fill(buf, op.ValueSize)
		if err := db.Put(op.Key, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGetHot measures point lookups resolved from the MemTable/buffer.
func BenchmarkGetHot(b *testing.B) {
	db := openBench(b, bandslim.Adaptive, bandslim.BackfillPacking, true)
	defer db.Close()
	keys := make([][]byte, 256)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("k%03d", i))
		if err := db.Put(keys[i], make([]byte, 64)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Get(keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGetCold measures lookups that traverse SSTables and NAND reads.
func BenchmarkGetCold(b *testing.B) {
	db := openBench(b, bandslim.Adaptive, bandslim.BackfillPacking, true)
	defer db.Close()
	const n = 8192
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("cold%05d", i))
		if err := db.Put(keys[i], make([]byte, 64)); err != nil {
			b.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Get(keys[(i*2654435761)%n]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScan measures the device-side iterator throughput.
func BenchmarkScan(b *testing.B) {
	db := openBench(b, bandslim.Adaptive, bandslim.BackfillPacking, true)
	defer db.Close()
	for i := 0; i < 4096; i++ {
		if err := db.Put([]byte(fmt.Sprintf("s%05d", i)), make([]byte, 32)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	it, err := db.NewIterator(nil)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if !it.Valid() {
			it, err = db.NewIterator(nil)
			if err != nil {
				b.Fatal(err)
			}
		}
		it.Next()
	}
	if it.Err() != nil {
		b.Fatal(it.Err())
	}
}

// BenchmarkCalibrate measures the §3.2 threshold-calibration probe.
func BenchmarkCalibrate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bandslim.CalibrateThresholds(16); err != nil {
			b.Fatal(err)
		}
	}
}
