package bandslim

import (
	"fmt"
	"io"
	"sync"

	"bandslim/internal/metrics"
	"bandslim/internal/shard"
	"bandslim/internal/sim"
	"bandslim/internal/timeseries"
	"bandslim/internal/trace"
)

// partitionSeed keys the shard partitioner. Fixed, so a given key always
// lands on the same shard across processes and runs.
const partitionSeed = 0xBA4D511E

// ShardedConfig assembles a ShardedDB.
type ShardedConfig struct {
	// Shards is the number of independent device shards (>= 1). Each shard
	// is a full host+device stack with its own simulated clock, PCIe link,
	// NVMe queue pair, driver, and device, driven by its own goroutine.
	Shards int
	// PerShard configures every shard's stack, with the same semantics and
	// defaults as Open. A non-nil PerShard.Tracer is shared by every shard
	// (events carry shard ids); it must be safe for concurrent use.
	PerShard Config
	// TraceCapacity, when > 0, gives every shard its own ring-buffered
	// recorder of that capacity and overrides PerShard.Tracer. Read the
	// merged stream with TraceEvents.
	TraceCapacity int
}

// DefaultShardedConfig returns the paper's headline per-shard configuration
// across the given number of shards.
func DefaultShardedConfig(shards int) ShardedConfig {
	return ShardedConfig{Shards: shards, PerShard: DefaultConfig()}
}

// ShardedDB fans Put/Get/Delete out across N independent device shards by
// hash-partitioning keys, lifting the single-queue serialization of DB: the
// paper's testbed pins every command to one synchronous SQ/CQ pair, while a
// ShardedDB advances N such pairs concurrently on N host cores, like a
// multi-queue NVMe deployment with per-queue controllers.
//
// Each shard stays exactly as deterministic as a DB: the key partition
// fixes which shard serves each operation, every shard executes its
// operations in submission order on a dedicated goroutine, and per-shard
// simulated clocks advance independently. Aggregate Stats are therefore
// order-independent: byte ledgers and NAND counts sum exactly, latency
// distributions merge exactly, and aggregate simulated time is the max over
// shard clocks (shards run in parallel, so the slowest defines the span).
//
// With Shards: 1 a ShardedDB produces byte-identical PCIe traffic ledgers
// and NAND write counts to a plain DB over the same workload.
//
// All methods are safe for concurrent use; operations on different shards
// proceed in parallel, operations on one shard serialize in arrival order.
type ShardedDB struct {
	mu       sync.RWMutex
	cfg      ShardedConfig
	shards   []*shard.Shard
	part     *shard.Partitioner
	recs     []*trace.Recorder     // per-shard recorders (TraceCapacity > 0)
	samplers []*timeseries.Sampler // per-shard samplers (MetricsInterval > 0)
	closed   bool

	// batchMu guards the reusable lane-partition scratch below; holding it
	// across a whole batch keeps the lane index slices stable while shard
	// workers read them.
	batchMu sync.Mutex
	lanes   [][]int
	pending []shard.Pending
}

// OpenSharded builds Shards independent stacks and starts their workers.
func OpenSharded(cfg ShardedConfig) (*ShardedDB, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("bandslim: ShardedConfig.Shards must be >= 1, got %d", cfg.Shards)
	}
	part, err := shard.NewPartitioner(cfg.Shards, partitionSeed)
	if err != nil {
		return nil, fmt.Errorf("bandslim: %w", err)
	}
	opts := stackOptions(cfg.PerShard)
	shards := make([]*shard.Shard, cfg.Shards)
	var recs []*trace.Recorder
	for i := range shards {
		o := opts
		o.ShardID = i
		if cfg.TraceCapacity > 0 {
			rec := trace.NewRecorder(cfg.TraceCapacity)
			recs = append(recs, rec)
			o.Tracer = rec
		}
		sh, err := shard.New(i, o)
		if err != nil {
			for _, open := range shards[:i] {
				open.Close()
			}
			return nil, fmt.Errorf("bandslim: %w", err)
		}
		shards[i] = sh
	}
	var samplers []*timeseries.Sampler
	if interval := cfg.PerShard.MetricsInterval; interval > 0 {
		// One sampler per shard, polled on the shard's worker goroutine
		// after every operation. Safe to install here: no operations have
		// been submitted yet.
		samplers = make([]*timeseries.Sampler, len(shards))
		faults := cfg.PerShard.Faults != nil
		cached := cacheEnabled(cfg.PerShard)
		for i, sh := range shards {
			st := sh.Stack()
			smp := timeseries.NewSampler(interval, descsFor(faults, cached),
				func() timeseries.Snapshot { return snapshotStack(st, faults, cached) })
			sh.SetAfterOp(func() { smp.Poll(st.Clock.Now()) })
			samplers[i] = smp
		}
	}
	return &ShardedDB{cfg: cfg, shards: shards, part: part, recs: recs, samplers: samplers}, nil
}

// TraceEvents merges the per-shard recorders (TraceCapacity > 0) into one
// stream ordered by simulated start time, with (shard, seq) breaking ties.
// It returns nil when tracing was not enabled through TraceCapacity.
func (s *ShardedDB) TraceEvents() []TraceEvent {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.recs) == 0 {
		return nil
	}
	streams := make([][]TraceEvent, len(s.recs))
	for i, rec := range s.recs {
		streams[i] = rec.Events()
	}
	return MergeTraces(streams...)
}

// TraceDropped reports the total events evicted across the per-shard trace
// rings (TraceCapacity > 0), or by a shared PerShard.Tracer recorder. Zero
// when tracing is off or nothing was evicted.
func (s *ShardedDB) TraceDropped() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var total int64
	if len(s.recs) > 0 {
		for _, rec := range s.recs {
			total += rec.Dropped()
		}
		return total
	}
	if rec, ok := s.cfg.PerShard.Tracer.(*Recorder); ok && rec != nil {
		total = rec.Dropped()
	}
	return total
}

// ResetTrace discards every buffered trace event (and, per ring, restarts
// the eviction window) without detaching the recorders. Sequence numbers
// keep running, so an analyzer sees the reset as a truncation, never as a
// reused number. Benchmarks use it to scope attribution to a measured phase
// after an unmeasured fill.
func (s *ShardedDB) ResetTrace() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, rec := range s.recs {
		rec.Reset()
	}
	if len(s.recs) == 0 {
		if rec, ok := s.cfg.PerShard.Tracer.(*Recorder); ok && rec != nil {
			rec.Reset()
		}
	}
}

// Blame analyzes the merged per-shard trace stream and returns the latency
// attribution report, or nil when tracing is not enabled (neither
// TraceCapacity nor a *Recorder PerShard.Tracer). Per-shard streams are
// reconstructed independently, so the result is deterministic regardless of
// shard interleaving.
func (s *ShardedDB) Blame() *BlameReport {
	events := s.TraceEvents()
	if events == nil {
		s.mu.RLock()
		rec, ok := s.cfg.PerShard.Tracer.(*Recorder)
		s.mu.RUnlock()
		if !ok || rec == nil {
			return nil
		}
		events = rec.TraceEvents()
	}
	return AnalyzeTrace(events)
}

// Tune applies the present (non-nil) fields of a Tuning to every shard in
// one step. Each shard's driver validates Submission before applying any
// field, and every shard sees the same Tuning, so an invalid policy fails
// with a ConfigError without leaving the fleet half-tuned. It fails with
// ErrClosed after Close.
func (s *ShardedDB) Tune(t Tuning) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	errs := make([]error, len(s.shards))
	for i, sh := range s.shards {
		i, sh := i, sh
		sh.Do(func() { errs[i] = sh.Stack().Drv.Tune(t) })
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// SetMethod switches the transfer method on every shard. It is shorthand
// for Tune with only Method set and fails with ErrClosed after Close.
func (s *ShardedDB) SetMethod(m TransferMethod) error {
	return s.Tune(Tuning{Method: &m})
}

// SetThresholds replaces the adaptive calibration on every shard. It is
// shorthand for Tune with only Thresholds set and fails with ErrClosed
// after Close.
func (s *ShardedDB) SetThresholds(t Thresholds) error {
	return s.Tune(Tuning{Thresholds: &t})
}

// Submission reports the submission policy in effect on shard 0 (Tune keeps
// every shard on the same policy).
func (s *ShardedDB) Submission() SubmissionConfig {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var sub SubmissionConfig
	sh := s.shards[0]
	sh.Do(func() { sub = sh.Stack().Drv.Submission() })
	return sub
}

// NumShards reports the shard count.
func (s *ShardedDB) NumShards() int { return len(s.shards) }

func (s *ShardedDB) shardFor(key []byte) *shard.Shard {
	return s.shards[s.part.Shard(key)]
}

// Put stores a key-value pair on the key's shard. Keys are 1–16 bytes.
func (s *ShardedDB) Put(key, value []byte) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	return s.shardFor(key).Put(key, value)
}

// Get fetches the value for key from its shard. The returned slice is a view
// into that shard's driver read buffer, valid until the shard's next
// operation; callers that retain the value — or race it against concurrent
// operations on the same shard — must use GetInto instead.
func (s *ShardedDB) Get(key []byte) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	return s.shardFor(key).Get(key)
}

// GetInto fetches the value for key, copying it into dst (grown as needed)
// on the shard worker before the operation completes. The returned slice is
// caller-owned: it stays valid across later operations and under concurrent
// use, and reusing dst across calls makes the steady state allocation-free.
func (s *ShardedDB) GetInto(key, dst []byte) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	return s.shardFor(key).GetInto(key, dst)
}

// partitionLanes splits the key set into per-shard index lanes using the
// reusable scratch; callers hold batchMu.
func (s *ShardedDB) partitionLanes(keys [][]byte) {
	if len(s.lanes) != len(s.shards) {
		s.lanes = make([][]int, len(s.shards))
		s.pending = make([]shard.Pending, 0, len(s.shards))
	}
	for i := range s.lanes {
		s.lanes[i] = s.lanes[i][:0]
	}
	for i, k := range keys {
		sh := s.part.Shard(k)
		s.lanes[sh] = append(s.lanes[sh], i)
	}
}

// PutBatch stores the key-value pairs through each shard's host-side batcher
// (bulk OpKVBatchWrite commands), fanning the per-shard lanes out in parallel
// and flushing before returning, so every record is durable on return. Keys
// are 1–16 bytes. The first error wins; records on other shards may still
// have been written.
func (s *ShardedDB) PutBatch(keys, values [][]byte) error {
	if len(keys) != len(values) {
		return fmt.Errorf("bandslim: PutBatch got %d keys and %d values", len(keys), len(values))
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	s.batchMu.Lock()
	defer s.batchMu.Unlock()
	s.partitionLanes(keys)
	// Start every involved shard first so their simulated work overlaps, then
	// collect in shard order. Shard mutexes are taken in ascending order here
	// and held until the matching Wait, which is deadlock-free because every
	// batch acquires them in the same order.
	s.pending = s.pending[:0]
	for i, lane := range s.lanes {
		if len(lane) == 0 {
			continue
		}
		s.pending = append(s.pending, s.shards[i].StartPutBatch(keys, values, lane))
	}
	var first error
	for _, p := range s.pending {
		if _, err := p.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// GetBatch resolves keys in bulk, fanning the per-shard lanes out in
// parallel. Each value is copied into the matching vals lane (vals[i], grown
// as needed) on its shard worker, so the results are caller-owned; passing
// the returned slice back in makes the steady state allocation-free. A nil
// vals allocates one. On error, lanes after the failing key on that shard
// are left untouched.
func (s *ShardedDB) GetBatch(keys, vals [][]byte) ([][]byte, error) {
	if vals == nil {
		vals = make([][]byte, len(keys))
	}
	if len(vals) != len(keys) {
		return vals, fmt.Errorf("bandslim: GetBatch got %d keys and %d dst lanes", len(keys), len(vals))
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return vals, ErrClosed
	}
	s.batchMu.Lock()
	defer s.batchMu.Unlock()
	s.partitionLanes(keys)
	s.pending = s.pending[:0]
	for i, lane := range s.lanes {
		if len(lane) == 0 {
			continue
		}
		s.pending = append(s.pending, s.shards[i].StartGetBatch(keys, vals, lane))
	}
	var first error
	for _, p := range s.pending {
		if _, err := p.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return vals, first
}

// GetBatchSparse resolves keys in bulk like GetBatch, but an absent key sets
// miss[i] (and empties its vals lane) instead of failing the batch — the
// lookup the serving front-end rides for MGET and coalesced GET runs, where
// a miss must become a null reply, not a connection error. miss must have
// len(keys) entries; hits copy into caller-owned vals lanes exactly as
// GetBatch does, so reusing keys/vals/miss keeps the steady state
// allocation-free.
func (s *ShardedDB) GetBatchSparse(keys, vals [][]byte, miss []bool) ([][]byte, error) {
	if vals == nil {
		vals = make([][]byte, len(keys))
	}
	if len(vals) != len(keys) || len(miss) != len(keys) {
		return vals, fmt.Errorf("bandslim: GetBatchSparse got %d keys, %d dst lanes, %d miss flags",
			len(keys), len(vals), len(miss))
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return vals, ErrClosed
	}
	s.batchMu.Lock()
	defer s.batchMu.Unlock()
	s.partitionLanes(keys)
	s.pending = s.pending[:0]
	for i, lane := range s.lanes {
		if len(lane) == 0 {
			continue
		}
		s.pending = append(s.pending, s.shards[i].StartGetBatchSparse(keys, vals, miss, lane))
	}
	var first error
	for _, p := range s.pending {
		if _, err := p.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return vals, first
}

// Delete removes a key from its shard.
func (s *ShardedDB) Delete(key []byte) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	return s.shardFor(key).Delete(key)
}

// Flush forces every shard's buffered values and index entries to NAND, in
// parallel. The first error wins.
func (s *ShardedDB) Flush() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	return s.flushAll()
}

// flushAll fans a flush out across shards; callers hold at least an RLock.
func (s *ShardedDB) flushAll() error {
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, sh *shard.Shard) {
			defer wg.Done()
			errs[i] = sh.Flush()
		}(i, sh)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Close flushes every shard, stops the shard workers, and shuts the DB.
// Further operations fail with ErrClosed. Stats remains readable.
func (s *ShardedDB) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	err := s.flushAll()
	for _, sh := range s.shards {
		sh.Close()
	}
	s.closed = true
	return err
}

// Now reports the aggregate simulated time: the max over shard clocks, since
// shards advance independently like parallel NVMe queues.
func (s *ShardedDB) Now() sim.Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var max sim.Time
	for _, sh := range s.shards {
		t := s.shardNow(sh)
		if t > max {
			max = t
		}
	}
	return max
}

func (s *ShardedDB) shardNow(sh *shard.Shard) sim.Time {
	if s.closed {
		// Workers have exited; direct reads are safe.
		return sh.Stack().Clock.Now()
	}
	return sh.Now()
}

// shardSnapshot is one shard's raw measurement: the flattened counters plus
// the pieces that cannot be aggregated from flattened values alone.
type shardSnapshot struct {
	stats      Stats
	write      *metrics.Histogram
	read       *metrics.Histogram
	bufFlushed int64 // pagebuf pages flushed, weighting BufferUtil
}

// Stats aggregates a point-in-time snapshot across every shard: counters and
// byte ledgers sum exactly, latency distributions merge exactly (see
// metrics.Histogram.Merge), Elapsed is the max over shard clocks, and
// BufferUtil is the flush-weighted mean.
func (s *ShardedDB) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	snaps := make([]shardSnapshot, len(s.shards))
	collect := func(i int, sh *shard.Shard) {
		st := sh.Stack()
		snaps[i] = shardSnapshot{
			stats:      stackStats(st),
			write:      st.Drv.Stats().WriteResponse.Clone(),
			read:       st.Drv.Stats().ReadResponse.Clone(),
			bufFlushed: st.Dev.Buffer().Stats().Flushes.Value(),
		}
	}
	if s.closed {
		// Workers have exited; direct reads are safe.
		for i, sh := range s.shards {
			collect(i, sh)
		}
	} else {
		var wg sync.WaitGroup
		for i, sh := range s.shards {
			wg.Add(1)
			go func(i int, sh *shard.Shard) {
				defer wg.Done()
				sh.Do(func() { collect(i, sh) })
			}(i, sh)
		}
		wg.Wait()
	}
	out := mergeSnapshots(snaps)
	if len(s.recs) > 0 {
		for _, rec := range s.recs {
			out.Trace.Buffered += int64(rec.Len())
			out.Trace.Dropped += rec.Dropped()
		}
	} else if rec, ok := s.cfg.PerShard.Tracer.(*Recorder); ok && rec != nil {
		out.Trace = TraceStats{Buffered: int64(rec.Len()), Dropped: rec.Dropped()}
	}
	return out
}

// mergeSnapshots folds per-shard snapshots into one aggregate Stats.
func mergeSnapshots(snaps []shardSnapshot) Stats {
	var out Stats
	write, read := metrics.NewHistogram(), metrics.NewHistogram()
	var flushed int64
	for _, sn := range snaps {
		p := sn.stats
		out.Host.Puts += p.Host.Puts
		out.Host.Gets += p.Host.Gets
		out.Host.Deletes += p.Host.Deletes
		out.Host.Commands += p.Host.Commands
		out.PCIe.Bytes += p.PCIe.Bytes
		out.PCIe.TotalBytes += p.PCIe.TotalBytes
		out.PCIe.DMABytes += p.PCIe.DMABytes
		out.PCIe.CommandBytes += p.PCIe.CommandBytes
		out.PCIe.MMIOBytes += p.PCIe.MMIOBytes
		out.PCIe.CompletionBytes += p.PCIe.CompletionBytes
		out.Device.NANDPageWrites += p.Device.NANDPageWrites
		out.Device.NANDPageReads += p.Device.NANDPageReads
		out.Device.BlockErases += p.Device.BlockErases
		out.Device.VLogFlushes += p.Device.VLogFlushes
		out.Device.ForcedFlushes += p.Device.ForcedFlushes
		out.Device.BackfillJumps += p.Device.BackfillJumps
		out.Device.MemcpyTime += p.Device.MemcpyTime
		out.Device.FlushWaitTime += p.Device.FlushWaitTime
		out.Device.Memcpys += p.Device.Memcpys
		out.Device.GCWrites += p.Device.GCWrites
		out.Device.Compactions += p.Device.Compactions
		out.Adaptive.Inline += p.Adaptive.Inline
		out.Adaptive.PRP += p.Adaptive.PRP
		out.Adaptive.Hybrid += p.Adaptive.Hybrid
		out.Cache.Hits += p.Cache.Hits
		out.Cache.Misses += p.Cache.Misses
		out.Cache.PageHits += p.Cache.PageHits
		out.Cache.PageMisses += p.Cache.PageMisses
		out.Cache.Evictions += p.Cache.Evictions
		out.Cache.Invalidations += p.Cache.Invalidations
		out.Cache.NegHits += p.Cache.NegHits
		out.Cache.NegLearned += p.Cache.NegLearned
		out.Faults.NandProgramFaults += p.Faults.NandProgramFaults
		out.Faults.NandReadFaults += p.Faults.NandReadFaults
		out.Faults.NandEraseFaults += p.Faults.NandEraseFaults
		out.Faults.TransferFaults += p.Faults.TransferFaults
		out.Faults.BadBlocks += p.Faults.BadBlocks
		out.Faults.FTLRetries += p.Faults.FTLRetries
		out.Faults.PowerCuts += p.Faults.PowerCuts
		out.Faults.Mounts += p.Faults.Mounts
		out.Faults.ReplayedRecords += p.Faults.ReplayedRecords
		out.Faults.Retries += p.Faults.Retries
		out.Faults.RetriesExhausted += p.Faults.RetriesExhausted
		out.Faults.Recoveries += p.Faults.Recoveries
		if p.Host.Elapsed > out.Host.Elapsed {
			out.Host.Elapsed = p.Host.Elapsed
		}
		write.Merge(sn.write)
		read.Merge(sn.read)
		flushed += sn.bufFlushed
	}
	out.Host.WriteResp = latencySummary(write)
	out.Host.ReadResp = latencySummary(read)
	if flushed > 0 {
		var weighted float64
		for _, sn := range snaps {
			weighted += sn.stats.Device.BufferUtil * float64(sn.bufFlushed)
		}
		out.Device.BufferUtil = weighted / float64(flushed)
	}
	if out.Host.Elapsed > 0 && out.Host.Puts > 0 {
		out.Host.ThroughputKops = float64(out.Host.Puts) / out.Host.Elapsed.Seconds() / 1000
	}
	return out
}

// Series merges the per-shard simulated-time metric series onto one time
// axis: counters and sum-gauges add, max-gauges take the max, mean-gauges
// average, and latency histograms merge bucket-exactly. It is empty unless
// PerShard.MetricsInterval was set; with Shards: 1 the merged series equals
// the series a plain DB records over the same workload. Remains readable
// after Close.
func (s *ShardedDB) Series() MetricSeries {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.samplers) == 0 {
		return MetricSeries{}
	}
	parts := make([]timeseries.Series, len(s.samplers))
	collect := func(i int) { parts[i] = s.samplers[i].Series() }
	if s.closed {
		// Workers have exited; direct reads are safe.
		for i := range s.samplers {
			collect(i)
		}
	} else {
		var wg sync.WaitGroup
		for i, sh := range s.shards {
			wg.Add(1)
			go func(i int, sh *shard.Shard) {
				defer wg.Done()
				sh.Do(func() { collect(i) })
			}(i, sh)
		}
		wg.Wait()
	}
	return timeseries.MergeSeries(parts...)
}

// WritePrometheus writes the aggregate metric state across every shard in
// the Prometheus text exposition format: counters sum, gauges aggregate per
// their mode, histograms merge bucket-exactly. Safe to call while shards
// are actively serving (the live /metrics scrape path) and after Close.
func (s *ShardedDB) WritePrometheus(w io.Writer) error {
	faults := s.cfg.PerShard.Faults != nil
	cached := cacheEnabled(s.cfg.PerShard)
	s.mu.RLock()
	snaps := make([]timeseries.Snapshot, len(s.shards))
	collect := func(i int, sh *shard.Shard) { snaps[i] = snapshotStack(sh.Stack(), faults, cached) }
	if s.closed {
		for i, sh := range s.shards {
			collect(i, sh)
		}
	} else {
		var wg sync.WaitGroup
		for i, sh := range s.shards {
			wg.Add(1)
			go func(i int, sh *shard.Shard) {
				defer wg.Done()
				sh.Do(func() { collect(i, sh) })
			}(i, sh)
		}
		wg.Wait()
	}
	s.mu.RUnlock()
	descs := descsFor(faults, cached)
	merged := timeseries.MergeSnapshots(descs, snaps)
	if err := timeseries.WritePrometheus(w, "bandslim", descs, merged, histHelp); err != nil {
		return err
	}
	// Trace-ring health and stage blame, as on DB: a separate section only
	// when tracing is on, so untraced runs keep byte-identical exposition.
	rep := s.Blame()
	if rep == nil {
		return nil
	}
	var buffered int64
	s.mu.RLock()
	if len(s.recs) > 0 {
		for _, rec := range s.recs {
			buffered += int64(rec.Len())
		}
	} else if rec, ok := s.cfg.PerShard.Tracer.(*Recorder); ok && rec != nil {
		buffered = int64(rec.Len())
	}
	s.mu.RUnlock()
	bsnap := blameSnapshot(buffered, s.TraceDropped(), rep)
	return timeseries.WritePrometheus(w, "bandslim", traceDescs, bsnap, blameHistHelp)
}

// Recover remounts every power-cut shard device in parallel: fresh queues,
// the LSM index rolled back to its last durable flush, and the battery-backed
// journal replayed, restoring every acknowledged write on every shard.
// Mounting a shard that never lost power is a harmless no-op (its journal
// replays into the same state), so Recover is safe to call whenever any
// operation reports IsPowerLoss. The first error wins; a plan can cut power
// again during replay, in which case a subsequent Recover resumes.
func (s *ShardedDB) Recover() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, sh *shard.Shard) {
			defer wg.Done()
			errs[i] = sh.Recover()
		}(i, sh)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ShardStats snapshots one shard's counters (for per-shard balance checks).
func (s *ShardedDB) ShardStats(i int) Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sh := s.shards[i]
	if s.closed {
		return stackStats(sh.Stack())
	}
	var out Stats
	sh.Do(func() { out = stackStats(sh.Stack()) })
	return out
}

// ShardFor reports which shard index serves key.
func (s *ShardedDB) ShardFor(key []byte) int { return s.part.Shard(key) }

// ShardedIterator streams key-value pairs in global key order by k-way
// merging the per-shard device iterators.
type ShardedIterator struct {
	s   *ShardedDB
	mi  *shard.MergeIterator
	err error
}

// NewIterator opens a merged iterator at the first key >= start (nil starts
// at the beginning). Like DB's iterator, each shard's device holds a single
// iterator and writes interleaved with iteration invalidate the snapshot;
// iterate before mutating.
func (s *ShardedDB) NewIterator(start []byte) (*ShardedIterator, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	if start == nil {
		start = []byte{0}
	}
	mi, err := shard.NewMergeIterator(s.shards, start)
	if err != nil {
		return nil, err
	}
	return &ShardedIterator{s: s, mi: mi}, nil
}

// Valid reports whether the iterator holds a pair.
func (it *ShardedIterator) Valid() bool { return it.err == nil && it.mi.Valid() }

// Key returns the current key.
func (it *ShardedIterator) Key() []byte {
	if it.err != nil {
		return nil
	}
	return it.mi.Key()
}

// Value returns the current value.
func (it *ShardedIterator) Value() []byte {
	if it.err != nil {
		return nil
	}
	return it.mi.Value()
}

// Err reports the error that stopped iteration, if any.
func (it *ShardedIterator) Err() error {
	if it.err != nil {
		return it.err
	}
	return it.mi.Err()
}

// Next advances to the following pair in global key order.
func (it *ShardedIterator) Next() {
	it.s.mu.RLock()
	defer it.s.mu.RUnlock()
	if it.s.closed {
		it.err = ErrClosed
		return
	}
	it.mi.Next()
}

// coreKV is the key-value surface DB and ShardedDB share; the assignments
// below keep the two front-ends in lockstep at compile time.
type coreKV interface {
	Put(key, value []byte) error
	Get(key []byte) ([]byte, error)
	GetInto(key, dst []byte) ([]byte, error)
	PutBatch(keys, values [][]byte) error
	GetBatch(keys, vals [][]byte) ([][]byte, error)
	GetBatchSparse(keys, vals [][]byte, miss []bool) ([][]byte, error)
	Delete(key []byte) error
	Flush() error
	Close() error
	Now() sim.Time
	Stats() Stats
}

var (
	_ coreKV = (*DB)(nil)
	_ coreKV = (*ShardedDB)(nil)
)
