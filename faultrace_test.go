package bandslim_test

// Race-detector coverage for the fault path: concurrent ShardedDB traffic
// while the plan injects retryable transients, media failures and a power
// cut, with recovery issued from a racing goroutine. Run under `make race`.

import (
	"fmt"
	"sync"
	"testing"

	"bandslim"
	"bandslim/internal/sim"
)

func TestFaultRaceSharded(t *testing.T) {
	plan := &bandslim.FaultPlan{
		Seed: 7,
		Rules: []bandslim.FaultRule{
			{Site: bandslim.FaultDMAIn, Effect: bandslim.FaultTransient, Every: 5},
			{Site: bandslim.FaultNandProgram, Effect: bandslim.FaultMedia, Every: 9},
			{Site: bandslim.FaultExec, Effect: bandslim.FaultPowerCut, Nth: 120},
		},
	}
	cfg := bandslim.ShardedConfig{Shards: 4, PerShard: tinyFaultConfig(plan)}
	db, err := bandslim.OpenSharded(cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer db.Close()

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := sim.NewRNG(uint64(w) + 1)
			for op := 0; op < 60; op++ {
				key := []byte(fmt.Sprintf("w%02d-%02d", w, rng.Intn(16)))
				var err error
				switch rng.Intn(4) {
				case 0:
					_, err = db.GetInto(key, nil)
				case 1:
					err = db.Delete(key)
				default:
					err = db.Put(key, mcValue(rng))
				}
				if err != nil && bandslim.IsPowerLoss(err) {
					// Races with other workers' Recover calls by design:
					// mounting a healthy shard is a harmless no-op.
					_ = db.Recover()
				}
			}
		}(w)
	}
	wg.Wait()

	// The stack must still be serviceable after the storm.
	if err := db.Recover(); err != nil {
		t.Fatalf("final recover: %v", err)
	}
	if err := db.Put([]byte("final"), []byte("ok")); err != nil {
		// One retry covers a pending Nth-armed fault.
		if bandslim.IsPowerLoss(err) {
			if err := db.Recover(); err != nil {
				t.Fatalf("recover: %v", err)
			}
		}
		if err := db.Put([]byte("final"), []byte("ok")); err != nil {
			t.Fatalf("post-storm put: %v", err)
		}
	}
	v, err := db.GetInto([]byte("final"), nil)
	if err != nil || string(v) != "ok" {
		t.Fatalf("post-storm get: %q, %v", v, err)
	}
}
