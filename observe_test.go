package bandslim

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"bandslim/internal/trace"
)

// traceWorkload drives a DB through every transfer decision the adaptive
// driver makes: inline, PRP, hybrid, and multi-page values, plus readbacks
// and a final flush so NAND programs land in the trace.
func traceWorkload(t *testing.T, db *DB) {
	t.Helper()
	sizes := []int{16, 512, 4096 + 32, 8192}
	for i := 0; i < 64; i++ {
		key := []byte{byte(i >> 8), byte(i)}
		if err := db.Put(key, make([]byte, sizes[i%len(sizes)])); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		if _, err := db.Get([]byte{byte(i >> 8), byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestTraceOverThresholdPutChain(t *testing.T) {
	rec := NewRecorder(1 << 16)
	db := openSmall(t, func(c *Config) { c.Tracer = rec })
	defer db.Close()
	// Both over-threshold shapes: hybrid (page + inline tail, which memcpys
	// the tail device-side) and pure multi-page PRP.
	if err := db.Put([]byte("big1"), make([]byte, 4096+32)); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("big2"), make([]byte, 8192)); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	want := map[trace.Name]bool{
		trace.EvPut: false, trace.EvDoorbell: false, trace.EvCmdFetch: false,
		trace.EvSQFetch: false, trace.EvDMAIn: false, trace.EvMemcpy: false,
		trace.EvProgram: false, trace.EvExec: false,
	}
	for _, ev := range rec.TraceEvents() {
		if _, ok := want[ev.Name]; ok {
			want[ev.Name] = true
		}
		if ev.End < ev.Start {
			t.Fatalf("event %v/%v ends before it starts: %v < %v", ev.Cat, ev.Name, ev.End, ev.Start)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("over-threshold PUT chain missing %v event", name)
		}
	}
}

func TestTraceJSONLDeterministic(t *testing.T) {
	capture := func() []byte {
		rec := NewRecorder(1 << 16)
		db := openSmall(t, func(c *Config) { c.Tracer = rec })
		defer db.Close()
		traceWorkload(t, db)
		var buf bytes.Buffer
		if err := WriteTraceJSONL(&buf, rec.TraceEvents()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := capture(), capture()
	if len(a) == 0 {
		t.Fatal("traced workload produced no JSONL")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("identical runs produced different JSONL")
	}
}

func TestShardedTraceMergeOrdering(t *testing.T) {
	sdb, err := OpenSharded(ShardedConfig{
		Shards:        4,
		PerShard:      smallConfig(),
		TraceCapacity: 1 << 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sdb.Close()
	for i := 0; i < 128; i++ {
		key := []byte{byte(i >> 8), byte(i)}
		if err := sdb.Put(key, make([]byte, 64+i)); err != nil {
			t.Fatal(err)
		}
	}
	events := sdb.TraceEvents()
	if len(events) == 0 {
		t.Fatal("no trace events from sharded run")
	}
	shards := map[int32]bool{}
	for i, ev := range events {
		shards[ev.Shard] = true
		if i == 0 {
			continue
		}
		prev := events[i-1]
		ordered := prev.Start < ev.Start ||
			(prev.Start == ev.Start && (prev.Shard < ev.Shard ||
				(prev.Shard == ev.Shard && prev.Seq <= ev.Seq)))
		if !ordered {
			t.Fatalf("merge out of order at %d: (%v,%d,%d) before (%v,%d,%d)",
				i, prev.Start, prev.Shard, prev.Seq, ev.Start, ev.Shard, ev.Seq)
		}
	}
	if len(shards) < 2 {
		t.Fatalf("expected events from multiple shards, got %d", len(shards))
	}
}

func TestShardedTraceDisabledByDefault(t *testing.T) {
	sdb, err := OpenSharded(DefaultShardedConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer sdb.Close()
	if err := sdb.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if got := sdb.TraceEvents(); got != nil {
		t.Fatalf("TraceEvents without TraceCapacity = %d events, want nil", len(got))
	}
}

func TestErrorSentinelsMatchable(t *testing.T) {
	if !errors.Is(fmt.Errorf("op failed: %w", ErrClosed), ErrClosed) {
		t.Fatal("wrapped ErrClosed not matchable with errors.Is")
	}
	if !errors.Is(fmt.Errorf("scan: %w", ErrIterDone), ErrIterDone) {
		t.Fatal("wrapped ErrIterDone not matchable with errors.Is")
	}
	db := openSmall(t, nil)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("k"), []byte("v")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close = %v, want ErrClosed", err)
	}
}

func TestSettersFailAfterClose(t *testing.T) {
	db := openSmall(t, nil)
	if err := db.SetMethod(Piggyback); err != nil {
		t.Fatal(err)
	}
	if err := db.SetThresholds(DefaultConfig().Thresholds); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.SetMethod(Baseline); !errors.Is(err, ErrClosed) {
		t.Fatalf("DB.SetMethod after Close = %v, want ErrClosed", err)
	}
	if err := db.SetThresholds(DefaultConfig().Thresholds); !errors.Is(err, ErrClosed) {
		t.Fatalf("DB.SetThresholds after Close = %v, want ErrClosed", err)
	}

	sdb, err := OpenSharded(ShardedConfig{Shards: 2, PerShard: smallConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if err := sdb.SetMethod(Piggyback); err != nil {
		t.Fatal(err)
	}
	if err := sdb.SetThresholds(DefaultConfig().Thresholds); err != nil {
		t.Fatal(err)
	}
	if err := sdb.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sdb.SetMethod(Baseline); !errors.Is(err, ErrClosed) {
		t.Fatalf("ShardedDB.SetMethod after Close = %v, want ErrClosed", err)
	}
	if err := sdb.SetThresholds(DefaultConfig().Thresholds); !errors.Is(err, ErrClosed) {
		t.Fatalf("ShardedDB.SetThresholds after Close = %v, want ErrClosed", err)
	}
}
