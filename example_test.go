package bandslim_test

import (
	"fmt"
	"log"

	"bandslim"
)

// The basic lifecycle: open the paper's headline configuration, write, read.
func ExampleOpen() {
	db, err := bandslim.Open(bandslim.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if err := db.Put([]byte("greeting"), []byte("hello, kv-ssd")); err != nil {
		log.Fatal(err)
	}
	v, err := db.Get([]byte("greeting"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(v))
	// Output: hello, kv-ssd
}

// Range scans ride the device-side SEEK/NEXT iterator.
func ExampleDB_NewIterator() {
	db, err := bandslim.Open(bandslim.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	for _, k := range []string{"b", "a", "c"} {
		if err := db.Put([]byte(k), []byte("v-"+k)); err != nil {
			log.Fatal(err)
		}
	}
	it, err := db.NewIterator(nil)
	if err != nil {
		log.Fatal(err)
	}
	for it.Valid() {
		fmt.Printf("%s=%s\n", it.Key(), it.Value())
		it.Next()
	}
	// Output:
	// a=v-a
	// b=v-b
	// c=v-c
}

// Every byte crossing the simulated PCIe link is accounted: a 32-byte value
// piggybacked in one NVMe command costs 64 bytes, against 4160 for the
// page-unit baseline — the paper's headline reduction.
func ExampleDB_Stats() {
	cfg := bandslim.DefaultConfig()
	cfg.Method = bandslim.Piggyback
	cfg.DisableNAND = true
	db, err := bandslim.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if err := db.Put([]byte("tiny"), make([]byte, 32)); err != nil {
		log.Fatal(err)
	}
	s := db.Stats()
	fmt.Printf("PCIe bytes: %d (baseline would be 4160)\n", s.PCIe.Bytes)
	fmt.Printf("reduction: %.1f%%\n", 100*(1-float64(s.PCIe.Bytes)/4160))
	// Output:
	// PCIe bytes: 64 (baseline would be 4160)
	// reduction: 98.5%
}

// Host-side batching (the Dotori/KV-CSD approach) amortizes commands at the
// cost of a volatile window; the per-PUT path is durable on completion.
func ExampleDB_NewBatcher() {
	db, err := bandslim.Open(bandslim.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	b, err := db.NewBatcher(3)
	if err != nil {
		log.Fatal(err)
	}
	b.Put([]byte("x"), []byte("1"))
	b.Put([]byte("y"), []byte("2"))
	fmt.Println("volatile records:", b.AtRiskOps())
	b.Put([]byte("z"), []byte("3")) // third record triggers the bulk flush
	fmt.Println("volatile records after flush:", b.AtRiskOps())

	v, _ := db.Get([]byte("y"))
	fmt.Println("y =", string(v))
	// Output:
	// volatile records: 2
	// volatile records after flush: 0
	// y = 2
}
