package bandslim

import (
	"bytes"
	"fmt"
	"testing"

	"bandslim/internal/sim"
	"bandslim/internal/timeseries"
)

// metricsWorkload drives enough mixed-size PUTs and GETs to advance the
// simulated clock across many sampling boundaries, then flushes.
func metricsWorkload(t *testing.T, put func(k, v []byte) error, get func(k []byte) ([]byte, error), flush func() error) {
	t.Helper()
	sizes := []int{16, 512, 2048, 4096 + 32, 8192}
	for i := 0; i < 200; i++ {
		key := []byte(fmt.Sprintf("key-%04d", i))
		if err := put(key, make([]byte, sizes[i%len(sizes)])); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i += 3 {
		if _, err := get([]byte(fmt.Sprintf("key-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := flush(); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesEmptyWithoutInterval(t *testing.T) {
	db := openSmall(t, nil)
	defer db.Close()
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if s := db.Series(); s.Len() != 0 {
		t.Fatalf("Series without MetricsInterval has %d samples, want 0", s.Len())
	}
}

func TestSeriesRecordsTrajectory(t *testing.T) {
	db := openSmall(t, func(c *Config) { c.MetricsInterval = 5 * sim.Microsecond })
	metricsWorkload(t, db.Put, db.Get, db.Flush)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	s := db.Series() // readable after Close, includes the final flush
	if s.Len() < 3 {
		t.Fatalf("series has %d samples, want several boundaries crossed", s.Len())
	}
	if s.Samples[0].T != 0 {
		t.Fatalf("first sample T = %v, want 0", s.Samples[0].T)
	}
	for i, sm := range s.Samples {
		if sm.T != sim.Time(int64(s.Interval)*int64(i)) {
			t.Fatalf("sample %d T = %v, off the fixed grid", i, sm.T)
		}
	}
	puts, ok := s.Column("host_puts")
	if !ok {
		t.Fatal("host_puts column missing")
	}
	if puts[0] != 0 {
		t.Fatalf("host_puts at t=0 = %v, want 0", puts[0])
	}
	if last := puts[len(puts)-1]; last != 200 {
		t.Fatalf("final host_puts = %v, want 200", last)
	}
	for i := 1; i < len(puts); i++ {
		if puts[i] < puts[i-1] {
			t.Fatalf("counter host_puts decreased at sample %d", i)
		}
	}
	if len(s.HistKeys) == 0 {
		t.Fatal("series recorded no latency histograms")
	}
}

func TestExportsDeterministic(t *testing.T) {
	capture := func() ([]byte, []byte) {
		db := openSmall(t, func(c *Config) { c.MetricsInterval = 5 * sim.Microsecond })
		metricsWorkload(t, db.Put, db.Get, db.Flush)
		var prom bytes.Buffer
		if err := db.WritePrometheus(&prom); err != nil {
			t.Fatal(err)
		}
		var csv bytes.Buffer
		if err := WriteSeriesCSV(&csv, db.Series()); err != nil {
			t.Fatal(err)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		return prom.Bytes(), csv.Bytes()
	}
	p1, c1 := capture()
	p2, c2 := capture()
	if len(p1) == 0 || len(c1) == 0 {
		t.Fatal("exports are empty")
	}
	if !bytes.Equal(p1, p2) {
		t.Fatal("same-seed runs produced different Prometheus exposition")
	}
	if !bytes.Equal(c1, c2) {
		t.Fatal("same-seed runs produced different series CSV")
	}
}

// A one-shard ShardedDB running the same serialized workload must agree with
// a plain DB on every counter metric, sample by sample — the acceptance
// contract for the cross-shard series merge.
func TestShardedSeriesMatchesSingleDB(t *testing.T) {
	cfg := smallConfig()
	cfg.MetricsInterval = 5 * sim.Microsecond

	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	metricsWorkload(t, db.Put, db.Get, db.Flush)
	defer db.Close()

	sdb, err := OpenSharded(ShardedConfig{Shards: 1, PerShard: cfg})
	if err != nil {
		t.Fatal(err)
	}
	metricsWorkload(t, sdb.Put, sdb.Get, sdb.Flush)
	defer sdb.Close()

	single, merged := db.Series(), sdb.Series()
	if single.Len() != merged.Len() {
		t.Fatalf("series lengths differ: single %d, sharded %d", single.Len(), merged.Len())
	}
	for _, d := range single.Descs {
		if d.Kind != timeseries.KindCounter {
			continue
		}
		a, _ := single.Column(d.Name)
		b, ok := merged.Column(d.Name)
		if !ok {
			t.Fatalf("sharded series missing %s", d.Name)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s[%d]: single %v, sharded %v", d.Name, i, a[i], b[i])
			}
		}
	}

	var p1, p2 bytes.Buffer
	if err := db.WritePrometheus(&p1); err != nil {
		t.Fatal(err)
	}
	if err := sdb.WritePrometheus(&p2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p1.Bytes(), p2.Bytes()) {
		t.Fatal("one-shard ShardedDB exposition differs from plain DB")
	}
}

func TestShardedCountersSumAcrossShards(t *testing.T) {
	cfg := smallConfig()
	cfg.MetricsInterval = 5 * sim.Microsecond
	sdb, err := OpenSharded(ShardedConfig{Shards: 4, PerShard: cfg})
	if err != nil {
		t.Fatal(err)
	}
	const n = 256
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("key-%04d", i))
		if err := sdb.Put(key, make([]byte, 512)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sdb.Flush(); err != nil {
		t.Fatal(err)
	}
	s := sdb.Series()
	if err := sdb.Close(); err != nil {
		t.Fatal(err)
	}
	puts, ok := s.Column("host_puts")
	if !ok || len(puts) == 0 {
		t.Fatal("host_puts column missing from merged series")
	}
	if last := puts[len(puts)-1]; last != n {
		t.Fatalf("merged final host_puts = %v, want %d", last, n)
	}
	stats := sdb.Stats()
	if got := stats.Host.Puts; int64(puts[len(puts)-1]) != got {
		t.Fatalf("merged series (%v) disagrees with Stats (%d)", puts[len(puts)-1], got)
	}
}
