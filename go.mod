module bandslim

go 1.22
