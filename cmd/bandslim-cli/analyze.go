// The analyze subcommand: offline latency attribution over a JSONL trace.
// It reconstructs every operation from the event stream (see internal/spans),
// prints the per-op-kind stage breakdown with the critical-path digest and
// the slowest ops, and optionally writes the machine-readable CSV the
// blame-smoke gate diffs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"bandslim"
)

func runAnalyze(args []string) {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	csvOut := fs.String("csv", "", "write the per-op-kind x per-stage breakdown CSV here")
	topK := fs.Int("top", 10, "how many slowest ops to list (0 disables)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: bandslim-cli analyze [-csv out.csv] [-top K] <trace.jsonl|->")
		fmt.Fprintln(os.Stderr, "  input: JSONL events from bandslim-bench -trace-jsonl or WriteTraceJSONL")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	var in io.Reader
	if name := fs.Arg(0); name == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bandslim-cli: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	events, err := bandslim.ReadTraceJSONL(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bandslim-cli: %v\n", err)
		os.Exit(1)
	}
	rep := bandslim.AnalyzeTrace(events)

	// A lossy stream silently skews attribution near the truncation; make
	// the reader confront it before the numbers.
	if rep.Lossy() {
		fmt.Fprintf(os.Stderr,
			"WARNING: trace is lossy — %d events provably missing (ring eviction or recorder reset).\n"+
				"WARNING: stage attribution near the truncation degrades toward coarser stages;\n"+
				"WARNING: recapture with a larger ring (bandslim.NewRecorder / ShardedConfig.TraceCapacity) to trust the tails.\n",
			rep.TruncatedEvents)
	}
	if rep.DuplicateEvents > 0 {
		fmt.Fprintf(os.Stderr,
			"WARNING: %d duplicate (shard, seq) events skipped — was the stream merged with itself?\n",
			rep.DuplicateEvents)
	}

	if err := bandslim.WriteBlameBreakdown(os.Stdout, rep, *topK); err != nil {
		fmt.Fprintf(os.Stderr, "bandslim-cli: %v\n", err)
		os.Exit(1)
	}
	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bandslim-cli: %v\n", err)
			os.Exit(1)
		}
		if err := bandslim.WriteBlameCSV(f, rep); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "bandslim-cli: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "bandslim-cli: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *csvOut)
	}
}
