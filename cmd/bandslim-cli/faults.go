package main

// The `faults` subcommand: parse a fault-plan file and dump the resolved,
// deterministic fault schedule — which occurrence of each site each rule
// fires on — so an experiment's failure points can be inspected before (or
// instead of) running it.
//
// Usage:
//
//	bandslim-cli faults [-salt N] [-max-occ N] <plan-file|->
//
// -salt selects the shard whose schedule to resolve (ShardedDB salts each
// shard's fault stream with its shard id; a single DB uses salt 0).
// Probabilistic rules resolve through the same seeded RNG the injector uses,
// so the printed schedule is exactly what that run will execute.

import (
	"flag"
	"fmt"
	"io"
	"os"

	"bandslim/internal/fault"
)

func runFaults(args []string) {
	fs := flag.NewFlagSet("faults", flag.ExitOnError)
	salt := fs.Uint64("salt", 0, "injector salt (= shard id for ShardedDB; 0 for a single DB)")
	maxOcc := fs.Int("max-occ", 100, "resolve each rule over its first N in-window site occurrences")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: bandslim-cli faults [-salt N] [-max-occ N] <plan-file|->")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	var (
		text []byte
		err  error
	)
	if name := fs.Arg(0); name == "-" {
		text, err = io.ReadAll(os.Stdin)
	} else {
		text, err = os.ReadFile(name)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bandslim-cli: %v\n", err)
		os.Exit(1)
	}
	plan, err := fault.ParsePlan(string(text))
	if err != nil {
		fmt.Fprintf(os.Stderr, "bandslim-cli: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("plan: seed=%d rules=%d salt=%d\n", plan.Seed, len(plan.Rules), *salt)
	schedule := plan.Resolve(*salt, *maxOcc)
	for i, r := range plan.Rules {
		fmt.Printf("rule %d: %s\n", i, fault.FormatRule(r))
		switch {
		case r.At != 0:
			fmt.Printf("  fires at simulated instant (time-armed), not on an occurrence index\n")
		case len(schedule[i]) == 0:
			fmt.Printf("  no firings in the first %d occurrences\n", *maxOcc)
		default:
			fmt.Printf("  fires on occurrence")
			for _, n := range schedule[i] {
				fmt.Printf(" %d", n)
			}
			fmt.Printf(" (of first %d)\n", *maxOcc)
		}
	}
}
