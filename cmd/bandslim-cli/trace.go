package main

// The `trace` subcommand: record, replay, and inspect deterministic
// workload traces.
//
//	bandslim-cli trace record -scenario a [-records N] [-ops N] [-seed S]
//	                          [-shards K] [-metrics-out live.prom] -o trace.out
//	bandslim-cli trace replay [-shards K] [-metrics-out replay.prom] <trace|->
//	bandslim-cli trace stat <trace|->
//
// `record` runs the named scenario (ycsb-a..ycsb-f or mixed) live against a
// fresh simulated stack while capturing every op — arrival stamp, key, and
// size — to the versioned trace format. `replay` drives a trace file
// through the identical execution engine on an identically configured fresh
// stack: because the simulation is deterministic, the replayed run's Stats
// and Prometheus exposition are byte-identical to the recorded run's
// (-metrics-out on both sides makes that diffable — the `make ycsb-smoke`
// gate does exactly that). `stat` summarizes a trace without running it.

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"bandslim"
	"bandslim/internal/bench"
	"bandslim/internal/sim"
	"bandslim/internal/workload"
)

func runTrace(args []string) {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: bandslim-cli trace record|replay|stat ...")
		os.Exit(2)
	}
	switch args[0] {
	case "record":
		runTraceRecord(args[1:])
	case "replay":
		runTraceReplay(args[1:])
	case "stat":
		runTraceStat(args[1:])
	default:
		fmt.Fprintf(os.Stderr, "bandslim-cli: unknown trace action %q (want record, replay, or stat)\n", args[0])
		os.Exit(2)
	}
}

// traceStack opens the fixed stack configuration record and replay share:
// identical configs are what make the live and replayed runs comparable
// byte for byte.
func traceStack(shards int) (bench.ScenarioDB, error) {
	per := bandslim.DefaultConfig()
	per.MetricsInterval = 100 * sim.Microsecond
	if shards <= 1 {
		return bandslim.Open(per)
	}
	return bandslim.OpenSharded(bandslim.ShardedConfig{Shards: shards, PerShard: per})
}

// writeExposition renders the stack's final Prometheus exposition, shared
// by record and replay so the two files are diffable. Progress messages go
// to human, which is stderr when the trace itself is being streamed to
// stdout.
func writeExposition(db bench.ScenarioDB, path string, human io.Writer) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var werr error
	switch d := db.(type) {
	case *bandslim.DB:
		werr = d.WritePrometheus(f)
	case *bandslim.ShardedDB:
		werr = d.WritePrometheus(f)
	}
	if werr != nil {
		f.Close()
		return werr
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintln(human, "wrote", path)
	return nil
}

// closeStack closes either stack flavor.
func closeStack(db bench.ScenarioDB) error {
	switch d := db.(type) {
	case *bandslim.DB:
		return d.Close()
	case *bandslim.ShardedDB:
		return d.Close()
	}
	return nil
}

// driveAndReport runs a scenario, closes the stack, and exports artifacts.
func driveAndReport(db bench.ScenarioDB, s workload.Scenario, seed uint64,
	rec *workload.Trace, metricsOut string, human io.Writer) {
	res, err := bench.DriveScenario(db, s, seed, rec)
	if err != nil {
		closeStack(db)
		fmt.Fprintln(os.Stderr, "bandslim-cli:", err)
		os.Exit(1)
	}
	if err := closeStack(db); err != nil {
		fmt.Fprintln(os.Stderr, "bandslim-cli:", err)
		os.Exit(1)
	}
	if err := writeExposition(db, metricsOut, human); err != nil {
		fmt.Fprintln(os.Stderr, "bandslim-cli:", err)
		os.Exit(1)
	}
	fmt.Fprintf(human, "%s: %d ops (%d reads, %d updates, %d scans, %d rmws, %d deletes), "+
		"%d misses, %.1f KiB written, %.3f ms simulated, %.1f sim Kops\n",
		s.Name(), res.Ops, res.Reads, res.Updates, res.Scans, res.RMWs, res.Deletes,
		res.Misses, float64(res.BytesWritten)/1024, res.Elapsed.Micros()/1000, res.SimKops())
}

func runTraceRecord(args []string) {
	fs := flag.NewFlagSet("trace record", flag.ExitOnError)
	scenario := fs.String("scenario", "a", "scenario: a..f, ycsb-a..ycsb-f, or mixed")
	records := fs.Int("records", 1000, "initial keyspace size (load-phase inserts)")
	ops := fs.Int("ops", 2000, "run-phase operations")
	seed := fs.Uint64("seed", 42, "scenario and value-content seed")
	shards := fs.Int("shards", 1, "shard count (1 = single DB)")
	rate := fs.Float64("rate", 50000, "open-loop arrival rate, ops per simulated second (0 = unpaced)")
	out := fs.String("o", "", "trace output path (- for stdout); required")
	metricsOut := fs.String("metrics-out", "", "write the live run's Prometheus exposition here")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: bandslim-cli trace record -scenario a -o trace.out [flags]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if *out == "" || fs.NArg() != 0 {
		fs.Usage()
		os.Exit(2)
	}
	s, err := workload.NewScenario(*scenario, workload.ScenarioConfig{
		Records: *records,
		Ops:     *ops,
		Seed:    *seed,
		Arrival: workload.ArrivalConfig{Rate: *rate},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bandslim-cli:", err)
		os.Exit(1)
	}
	db, err := traceStack(*shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bandslim-cli:", err)
		os.Exit(1)
	}
	// When the trace streams to stdout, human-readable progress must not
	// pollute it — a piped `record -o - | replay -` would otherwise choke
	// on the summary line.
	human := io.Writer(os.Stdout)
	if *out == "-" {
		human = os.Stderr
	}
	var tr workload.Trace
	driveAndReport(db, s, *seed, &tr, *metricsOut, human)
	w := io.Writer(os.Stdout)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-cli:", err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "bandslim-cli:", err)
				os.Exit(1)
			}
			fmt.Fprintf(human, "wrote %s (%d ops)\n", *out, len(tr.Ops))
		}()
		w = f
	}
	if err := workload.WriteTrace(w, &tr); err != nil {
		fmt.Fprintln(os.Stderr, "bandslim-cli:", err)
		os.Exit(1)
	}
}

// readTraceArg parses the one trace-file argument ("-" = stdin).
func readTraceArg(fs *flag.FlagSet) *workload.Trace {
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	var (
		r   io.Reader
		err error
	)
	if name := fs.Arg(0); name == "-" {
		r = os.Stdin
	} else {
		f, ferr := os.Open(name)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "bandslim-cli:", ferr)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	tr, err := workload.ParseTrace(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bandslim-cli:", err)
		os.Exit(1)
	}
	return tr
}

func runTraceReplay(args []string) {
	fs := flag.NewFlagSet("trace replay", flag.ExitOnError)
	shards := fs.Int("shards", 1, "shard count (must match the recorded run's)")
	metricsOut := fs.String("metrics-out", "", "write the replayed run's Prometheus exposition here")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: bandslim-cli trace replay [-shards K] [-metrics-out out.prom] <trace|->")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	tr := readTraceArg(fs)
	db, err := traceStack(*shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bandslim-cli:", err)
		os.Exit(1)
	}
	driveAndReport(db, workload.NewReplay(tr), tr.Seed, nil, *metricsOut, os.Stdout)
}

func runTraceStat(args []string) {
	fs := flag.NewFlagSet("trace stat", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: bandslim-cli trace stat <trace|->")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	tr := readTraceArg(fs)
	var (
		counts [5]int
		keys   = map[string]struct{}{}
		bytes  int64
		span   sim.Time
	)
	for _, op := range tr.Ops {
		counts[op.Kind]++
		keys[string(op.Key)] = struct{}{}
		if op.Kind == workload.OpPut || op.Kind == workload.OpRMW {
			bytes += int64(op.N)
		}
		span = op.At
	}
	fmt.Printf("trace: v%d, seed %d, %d ops over %v\n",
		workload.TraceVersion, tr.Seed, len(tr.Ops), span)
	var kinds []string
	for k, n := range counts {
		if n > 0 {
			kinds = append(kinds, fmt.Sprintf("%s=%d", workload.OpKind(k), n))
		}
	}
	sort.Strings(kinds)
	fmt.Printf("  ops: %s\n", strings.Join(kinds, " "))
	fmt.Printf("  distinct keys: %d, payload bytes: %d\n", len(keys), bytes)
}
