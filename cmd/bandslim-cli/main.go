// Command bandslim-cli is an interactive shell against a simulated BandSlim
// KV-SSD: PUT/GET/DEL/SCAN/FLUSH/STATS against the full stack, with the
// simulated clock and traffic ledger visible after every command.
//
// Usage:
//
//	bandslim-cli [-method adaptive] [-policy backfill]
//	             [-metrics-interval-us 100] [-metrics-out out.prom] [-series-out out.csv]
//	bandslim-cli faults [-salt N] [-max-occ N] <plan-file|->   dump a resolved fault schedule
//	bandslim-cli analyze [-csv out.csv] [-top K] <trace.jsonl|->   per-op latency attribution
//	bandslim-cli trace record|replay|stat ...   record/replay deterministic workload traces
//
// Commands:
//
//	put <key> <value>       store a pair
//	putn <key> <bytes>      store a synthetic value of the given size
//	get <key>               fetch a value
//	del <key>               delete a key
//	scan <start> [n]        list up to n pairs from start (default 10)
//	flush                   force buffers to NAND
//	stats                   print the Prometheus exposition of every metric
//	help                    this text
//	quit                    exit
//
// With -metrics-out/-series-out the session's final metric state and sampled
// series are exported on exit, so an interactive exploration leaves the same
// artifacts a bench run does.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"bandslim"
	"bandslim/internal/driver"
	"bandslim/internal/pagebuf"
	"bandslim/internal/sim"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "faults" {
		runFaults(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "analyze" {
		runAnalyze(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "trace" {
		runTrace(os.Args[2:])
		return
	}
	var (
		methodName = flag.String("method", "adaptive", "transfer method: baseline|piggyback|hybrid|adaptive")
		policyName = flag.String("policy", "backfill", "packing policy: block|all|select|backfill")
		intervalUs = flag.Int64("metrics-interval-us", 100, "simulated metrics sampling interval, µs (0 disables the sampler)")
		metricsOut = flag.String("metrics-out", "", "write the final Prometheus exposition here on exit")
		seriesOut  = flag.String("series-out", "", "write the sampled metric series CSV here on exit")
	)
	flag.Parse()

	method, err := driver.ParseMethod(*methodName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	policy, err := pagebuf.ParsePolicy(*policyName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *seriesOut != "" && *intervalUs <= 0 {
		fmt.Fprintln(os.Stderr, "bandslim-cli: -series-out needs -metrics-interval-us > 0")
		os.Exit(1)
	}
	cfg := bandslim.DefaultConfig()
	cfg.Method = method
	cfg.Policy = policy
	if *intervalUs > 0 {
		cfg.MetricsInterval = sim.Duration(*intervalUs) * sim.Microsecond
	}
	db, err := bandslim.Open(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// LIFO: Close runs first so the exports include the final flush
	// (Series and WritePrometheus stay usable after Close).
	defer exportMetrics(db, *metricsOut, *seriesOut)
	defer db.Close()

	fmt.Printf("bandslim-cli: %v transfer, %v packing. Type 'help'.\n", method, policy)
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Printf("[t=%v] > ", db.Now())
		if !sc.Scan() {
			break
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if done := dispatch(db, fields); done {
			break
		}
	}
}

// exportMetrics writes the session's final exposition and sampled series,
// sharing the exporters (and file shapes) with bandslim-bench.
func exportMetrics(db *bandslim.DB, metricsOut, seriesOut string) {
	writeTo := func(path string, write func(f *os.File) error) {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-cli:", err)
			return
		}
		if err := write(f); err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-cli:", err)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-cli:", err)
			return
		}
		fmt.Println("wrote", path)
	}
	if metricsOut != "" {
		writeTo(metricsOut, func(f *os.File) error { return db.WritePrometheus(f) })
	}
	if seriesOut != "" {
		writeTo(seriesOut, func(f *os.File) error {
			return bandslim.WriteSeriesCSV(f, db.Series())
		})
	}
}

// dispatch executes one command line; it reports whether the shell should
// exit.
func dispatch(db *bandslim.DB, fields []string) bool {
	switch fields[0] {
	case "put":
		if len(fields) != 3 {
			fmt.Println("usage: put <key> <value>")
			return false
		}
		if err := db.Put([]byte(fields[1]), []byte(fields[2])); err != nil {
			fmt.Println("error:", err)
		}
	case "putn":
		if len(fields) != 3 {
			fmt.Println("usage: putn <key> <bytes>")
			return false
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil || n < 0 {
			fmt.Println("bad size:", fields[2])
			return false
		}
		if err := db.Put([]byte(fields[1]), make([]byte, n)); err != nil {
			fmt.Println("error:", err)
		}
	case "get":
		if len(fields) != 2 {
			fmt.Println("usage: get <key>")
			return false
		}
		v, err := db.Get([]byte(fields[1]))
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		if len(v) > 64 {
			fmt.Printf("%q... (%d bytes)\n", v[:64], len(v))
		} else {
			fmt.Printf("%q\n", v)
		}
	case "del":
		if len(fields) != 2 {
			fmt.Println("usage: del <key>")
			return false
		}
		if err := db.Delete([]byte(fields[1])); err != nil {
			fmt.Println("error:", err)
		}
	case "scan":
		if len(fields) < 2 {
			fmt.Println("usage: scan <start> [n]")
			return false
		}
		limit := 10
		if len(fields) == 3 {
			if n, err := strconv.Atoi(fields[2]); err == nil && n > 0 {
				limit = n
			}
		}
		it, err := db.NewIterator([]byte(fields[1]))
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		for i := 0; i < limit && it.Valid(); i++ {
			v := it.Value()
			if len(v) > 32 {
				fmt.Printf("  %q = %q... (%d bytes)\n", it.Key(), v[:32], len(v))
			} else {
				fmt.Printf("  %q = %q\n", it.Key(), v)
			}
			it.Next()
		}
		if it.Err() != nil {
			fmt.Println("scan error:", it.Err())
		}
	case "flush":
		if err := db.Flush(); err != nil {
			fmt.Println("error:", err)
		}
	case "compact":
		pages := 16
		if len(fields) == 2 {
			if n, err := strconv.Atoi(fields[1]); err == nil && n > 0 {
				pages = n
			}
		}
		n, err := db.CompactVLog(pages)
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		fmt.Printf("relocated %d live values; vLog free: %d KiB\n", n, db.VLogFreeBytes()/1024)
	case "stats":
		if err := db.WritePrometheus(os.Stdout); err != nil {
			fmt.Println("error:", err)
		}
	case "info":
		id, err := db.Identify()
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		fmt.Printf("%s (serial %s)\n", id.Model, id.Serial)
		fmt.Printf("capacity %d MiB (vLog %d MiB), %d ch x %d way, %d B pages\n",
			id.CapacityBytes>>20, id.VLogBytes>>20, id.Channels, id.WaysPerChannel, id.NANDPageSize)
		fmt.Printf("packing %s, inline %d/%d B, KV command set: %v\n",
			id.PackingPolicy, id.InlineWriteBytes, id.InlineXferBytes, id.KVCommandSet)
	case "help":
		fmt.Println("commands: put putn get del scan flush compact info stats help quit")
	case "quit", "exit":
		return true
	default:
		fmt.Println("unknown command; try 'help'")
	}
	return false
}
