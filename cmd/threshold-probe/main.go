// Command threshold-probe runs the exploratory calibration of §3.2/§4.1: it
// probes PUT response times for value sizes from 4 bytes to 8 KiB under each
// transfer method and derives the adaptive thresholds (threshold1: where
// piggybacking stops beating PRP; threshold2: the largest over-page tail for
// which hybrid wins).
//
// Usage:
//
//	threshold-probe [-per-size 1000] [-alpha 1.0] [-beta 1.0]
package main

import (
	"flag"
	"fmt"
	"os"

	"bandslim"
)

func main() {
	var (
		perSize = flag.Int("per-size", 1000, "PUTs per probed size")
		alpha   = flag.Float64("alpha", 1.0, "threshold1 coefficient (traffic preference)")
		beta    = flag.Float64("beta", 1.0, "threshold2 coefficient (traffic preference)")
	)
	flag.Parse()

	fmt.Println("probing transfer response times (NAND disabled)...")
	fmt.Printf("%8s  %12s  %12s  %12s\n", "size", "piggyback", "baseline", "hybrid")
	for _, size := range []int{4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 4096 + 32, 4096 + 512, 8192} {
		var resp [3]float64
		for i, m := range []bandslim.TransferMethod{bandslim.Piggyback, bandslim.Baseline, bandslim.Hybrid} {
			cfg := bandslim.DefaultConfig()
			cfg.Method = m
			cfg.DisableNAND = true
			db, err := bandslim.Open(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			v := make([]byte, size)
			key := make([]byte, 4)
			for j := 0; j < *perSize; j++ {
				key[0], key[1] = byte(j>>8), byte(j)
				if err := db.Put(key, v); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
			resp[i] = db.Stats().Host.WriteResp.Mean.Micros()
			db.Close()
		}
		fmt.Printf("%8d  %10.2fus  %10.2fus  %10.2fus\n", size, resp[0], resp[1], resp[2])
	}

	thr, err := bandslim.CalibrateThresholds(*perSize)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	thr.Alpha, thr.Beta = *alpha, *beta
	fmt.Printf("\nderived thresholds: threshold1=%dB threshold2=%dB alpha=%.2f beta=%.2f\n",
		thr.Threshold1, thr.Threshold2, thr.Alpha, thr.Beta)
	fmt.Printf("adaptive policy: inline ≤ %.0fB; hybrid for over-page tails ≤ %.0fB; PRP otherwise\n",
		thr.Alpha*float64(thr.Threshold1), thr.Beta*float64(thr.Threshold2))
}
