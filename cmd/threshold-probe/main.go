// Command threshold-probe runs the exploratory calibration of §3.2/§4.1: it
// probes PUT response times for value sizes from 4 bytes to 8 KiB under each
// transfer method and derives the adaptive thresholds (threshold1: where
// piggybacking stops beating PRP; threshold2: the largest over-page tail for
// which hybrid wins).
//
// Usage:
//
//	threshold-probe [-per-size 1000] [-alpha 1.0] [-beta 1.0]
//	                [-metrics-out out.prom] [-series-out out.csv]
//
// With -metrics-out/-series-out the probe finishes by replaying a mixed-size
// validation workload on an adaptive DB configured with the derived
// thresholds and the simulated-time metrics sampler on, then exports the
// final Prometheus exposition and the sampled series — the same artifact
// shapes bandslim-bench produces.
package main

import (
	"flag"
	"fmt"
	"os"

	"bandslim"
	"bandslim/internal/sim"
)

func main() {
	var (
		perSize    = flag.Int("per-size", 1000, "PUTs per probed size")
		alpha      = flag.Float64("alpha", 1.0, "threshold1 coefficient (traffic preference)")
		beta       = flag.Float64("beta", 1.0, "threshold2 coefficient (traffic preference)")
		metricsOut = flag.String("metrics-out", "", "validate the derived thresholds and write the Prometheus exposition here")
		seriesOut  = flag.String("series-out", "", "validate the derived thresholds and write the sampled series CSV here")
	)
	flag.Parse()

	fmt.Println("probing transfer response times (NAND disabled)...")
	fmt.Printf("%8s  %12s  %12s  %12s\n", "size", "piggyback", "baseline", "hybrid")
	for _, size := range []int{4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 4096 + 32, 4096 + 512, 8192} {
		var resp [3]float64
		for i, m := range []bandslim.TransferMethod{bandslim.Piggyback, bandslim.Baseline, bandslim.Hybrid} {
			cfg := bandslim.DefaultConfig()
			cfg.Method = m
			cfg.DisableNAND = true
			db, err := bandslim.Open(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			v := make([]byte, size)
			key := make([]byte, 4)
			for j := 0; j < *perSize; j++ {
				key[0], key[1] = byte(j>>8), byte(j)
				if err := db.Put(key, v); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
			resp[i] = db.Stats().Host.WriteResp.Mean.Micros()
			db.Close()
		}
		fmt.Printf("%8d  %10.2fus  %10.2fus  %10.2fus\n", size, resp[0], resp[1], resp[2])
	}

	thr, err := bandslim.CalibrateThresholds(*perSize)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	thr.Alpha, thr.Beta = *alpha, *beta
	fmt.Printf("\nderived thresholds: threshold1=%dB threshold2=%dB alpha=%.2f beta=%.2f\n",
		thr.Threshold1, thr.Threshold2, thr.Alpha, thr.Beta)
	fmt.Printf("adaptive policy: inline ≤ %.0fB; hybrid for over-page tails ≤ %.0fB; PRP otherwise\n",
		thr.Alpha*float64(thr.Threshold1), thr.Beta*float64(thr.Threshold2))

	if *metricsOut != "" || *seriesOut != "" {
		if err := validateAndExport(thr, *perSize, *metricsOut, *seriesOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// validateAndExport replays a mixed-size workload on an adaptive DB running
// the derived thresholds with the metrics sampler on, and exports the final
// state through the shared Prometheus/CSV exporters. The exposition's
// adaptive_* counters show how the calibration split real traffic.
func validateAndExport(thr bandslim.Thresholds, perSize int, metricsOut, seriesOut string) error {
	cfg := bandslim.DefaultConfig()
	cfg.Method = bandslim.Adaptive
	cfg.Thresholds = thr
	cfg.MetricsInterval = 100 * sim.Microsecond
	db, err := bandslim.Open(cfg)
	if err != nil {
		return err
	}
	defer db.Close()

	sizes := []int{16, 256, 1024, 4096 + 32, 8192}
	key := make([]byte, 4)
	for j := 0; j < perSize; j++ {
		key[0], key[1] = byte(j>>8), byte(j)
		if err := db.Put(key, make([]byte, sizes[j%len(sizes)])); err != nil {
			return err
		}
	}
	if err := db.Flush(); err != nil {
		return err
	}

	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			return err
		}
		if err := db.WritePrometheus(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("wrote", metricsOut)
	}
	if seriesOut != "" {
		f, err := os.Create(seriesOut)
		if err != nil {
			return err
		}
		if err := bandslim.WriteSeriesCSV(f, db.Series()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("wrote", seriesOut)
	}
	return nil
}
