// Command bandslim-bench regenerates the tables and figures of the BandSlim
// paper's evaluation (§4) on the simulated KV-SSD stack.
//
// Usage:
//
//	bandslim-bench -experiment fig8 [-scale 20000] [-seed 42] [-csv out/]
//	bandslim-bench -experiment shards [-shards 1,2,4,8] [-json out/]
//	bandslim-bench -experiment hotpath [-scale 40000] [-json out/]
//	bandslim-bench -experiment server [-scale 20000] [-shards 4] [-json out/]
//	bandslim-bench -experiment blame [-scale 20000] [-json out/]
//	bandslim-bench -experiment cache [-scale 20000] [-json out/]
//	bandslim-bench -experiment ycsb [-scale 20000] [-json out/]
//	bandslim-bench -experiment all
//	bandslim-bench -trace out.json [-shards 4]
//	bandslim-bench -trace-jsonl out.jsonl [-shards 4]
//	bandslim-bench -metrics-out out.prom -series-out series.csv [-shards 4] [-listen :9090]
//	bandslim-bench -list
//
// Each experiment prints the same rows/series the paper plots; -csv also
// writes one CSV file per table for plotting. The shards experiment
// additionally writes machine-readable BENCH_shards.json.
//
// The hotpath experiment measures the simulator's own wall-clock cost: the
// micro-benchmark suite with allocation counts plus the 4-shard mixed
// workload in per-op and batched modes, written as BENCH_hotpath.json with
// before/after speedups against the committed seed-commit baseline.
// -cpuprofile and -memprofile capture pprof profiles of any run.
//
// -trace skips the experiments and instead captures a short adaptive-method
// workload with command-level tracing on, writing Chrome trace_event JSON
// loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing. With
// -shards the capture runs a ShardedDB and the shards render as processes.
// -trace-jsonl writes the same capture as one JSON object per event — the
// input format of `bandslim-cli analyze`, which reconstructs per-op latency
// attribution offline.
//
// The blame experiment sweeps the submission-window depth and attributes
// every measured op's latency to pipeline stages (host, window wait, fetch,
// device exec, transfer, NAND, coalescing, reap), writing BENCH_blame.json.
// It fails hard if any op's stages do not sum exactly to its end-to-end
// latency.
//
// The cache experiment sweeps the device-DRAM read cache (size × policy ×
// Zipfian skew) against the cache-off read path, writing BENCH_cache.json.
// It fails hard if the hot-read p99 at the default operating point does not
// improve at least 3x over cache-off.
//
// The ycsb experiment runs the six YCSB core scenarios (A: update-heavy
// under a diurnal load curve with a mid-run hotspot shift, B: read-mostly
// under bursts, C: read-only, D: read-latest with insert-ordered keyspace
// growth, E: scan-heavy, F: read-modify-write), writing BENCH_ycsb.json. It
// fails hard if any scenario's realized op mix drifts from its spec. Use
// `bandslim-cli trace record|replay|stat` to capture any scenario to a
// deterministic trace file and replay it bit-identically.
//
// -metrics-out, -series-out, and -listen likewise skip the experiments and
// run one instrumented workload with the simulated-time metrics sampler on:
// -metrics-out writes the final Prometheus exposition, -series-out writes
// the sampled per-metric series CSV, and -listen serves /metrics (live
// Prometheus scrape) and /progress (JSON: ops done, simulated elapsed,
// current rates) while the run executes. The exported files are
// deterministic: same seed, scale, shards, and interval produce
// byte-identical bytes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"bandslim"
	"bandslim/internal/bench"
	"bandslim/internal/sim"
)

// runTelemetry drives the instrumented workload behind -metrics-out,
// -series-out, and -listen: start the sharded run, optionally serve the
// live endpoints while it executes, then export the deterministic files.
func runTelemetry(opts bench.Options, shards int, interval sim.Duration, listen, metricsOut, seriesOut string) error {
	tr, err := bench.StartTelemetry(opts, shards, interval)
	if err != nil {
		return err
	}
	defer tr.DB.Close()

	var srv *http.Server
	if listen != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := tr.DB.WritePrometheus(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if err := json.NewEncoder(w).Encode(tr.Progress()); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		srv = &http.Server{Addr: listen, Handler: mux}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "bandslim-bench: listen:", err)
			}
		}()
		defer srv.Close()
		fmt.Printf("serving /metrics and /progress on %s\n", listen)
	}

	if err := tr.Wait(); err != nil {
		return err
	}
	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			return err
		}
		if err := tr.DB.WritePrometheus(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("wrote", metricsOut)
	}
	if seriesOut != "" {
		series := tr.DB.Series()
		f, err := os.Create(seriesOut)
		if err != nil {
			return err
		}
		if err := bandslim.WriteSeriesCSV(f, series); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d samples)\n", seriesOut, series.Len())
	}
	p := tr.Progress()
	fmt.Printf("telemetry run: %d ops on %d shard(s), %.3f ms simulated, %.1f wall Kops\n",
		p.OpsDone, shards, p.SimElapsedUs/1000, p.WallKops)
	return nil
}

// parseShards turns "1,2,4,8" into a shard-count sweep.
func parseShards(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad shard count %q (want comma-separated integers >= 1)", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// serverShards picks the shard count for the server sweep: the first entry
// of -shards, defaulting to 4.
func serverShards(counts []int) int {
	if len(counts) > 0 {
		return counts[0]
	}
	return 4
}

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment ID (see -list)")
		scale      = flag.Int("scale", 20000, "operations per data point (paper: 1M)")
		seed       = flag.Uint64("seed", 42, "workload seed")
		shards     = flag.String("shards", "", "shard counts for the shards experiment, e.g. 1,2,4,8")
		csvDir     = flag.String("csv", "", "directory to write per-table CSV files")
		jsonDir    = flag.String("json", "", "directory for BENCH_shards.json (default: current dir)")
		tracePath  = flag.String("trace", "", "capture a traced workload and write Chrome trace JSON to this path")
		traceJSONL = flag.String("trace-jsonl", "", "capture a traced workload and write JSONL events to this path (bandslim-cli analyze input)")
		metricsOut = flag.String("metrics-out", "", "run an instrumented workload and write its Prometheus exposition here")
		seriesOut  = flag.String("series-out", "", "run an instrumented workload and write its sampled metric series CSV here")
		listen     = flag.String("listen", "", "serve /metrics and /progress on this address during the instrumented run")
		intervalUs = flag.Int64("metrics-interval-us", 100, "simulated sampling interval for the instrumented run, µs")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this path")
		memProfile = flag.String("memprofile", "", "write a heap profile at exit to this path")
		list       = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Println("wrote", *cpuProfile)
		}()
	}
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			}
			f.Close()
			fmt.Println("wrote", path)
		}()
	}

	if *list {
		fmt.Println("experiments:")
		for _, id := range bench.Experiments() {
			fmt.Println("  ", id)
		}
		return
	}

	counts, err := parseShards(*shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
		os.Exit(1)
	}
	opts := bench.Options{Scale: *scale, Seed: *seed, Shards: counts}

	if *metricsOut != "" || *seriesOut != "" || *listen != "" {
		shardCount := 1
		if len(counts) > 0 {
			shardCount = counts[0]
		}
		if err := runTelemetry(opts, shardCount, sim.Duration(*intervalUs)*sim.Microsecond,
			*listen, *metricsOut, *seriesOut); err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *tracePath != "" || *traceJSONL != "" {
		shardCount := 1
		if len(counts) > 0 {
			shardCount = counts[0]
		}
		events, err := bench.CaptureTrace(opts, shardCount)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
		write := func(path string, render func(f *os.File) error, note string) {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
				os.Exit(1)
			}
			if err := render(f); err != nil {
				f.Close()
				fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (%d events, %d shard(s))%s\n", path, len(events), shardCount, note)
		}
		if *tracePath != "" {
			write(*tracePath, func(f *os.File) error {
				return bandslim.WriteChromeTrace(f, events)
			}, " — load it at https://ui.perfetto.dev")
		}
		if *traceJSONL != "" {
			write(*traceJSONL, func(f *os.File) error {
				return bandslim.WriteTraceJSONL(f, events)
			}, " — feed it to bandslim-cli analyze")
		}
		return
	}

	if *experiment == "hotpath" {
		start := time.Now()
		report, err := bench.RunHotpath(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
		raw, err := bench.HotpathJSON(report)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
		dir := *jsonDir
		if dir == "" {
			dir = "."
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
		path := filepath.Join(dir, "BENCH_hotpath.json")
		if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", path)
		names := make([]string, 0, len(report.Speedup))
		for k := range report.Speedup {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			fmt.Printf("  %s: %.2fx\n", k, report.Speedup[k])
		}
		fmt.Printf("hotpath experiment completed in %v (wall clock)\n", time.Since(start).Round(time.Millisecond))
		return
	}

	if *experiment == "blame" {
		start := time.Now()
		t, points, err := bench.RunBlameSweep(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
		fmt.Println(t.Format())
		raw, err := bench.BlameSweepJSON(points)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
		dir := *jsonDir
		if dir == "" {
			dir = "."
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
		path := filepath.Join(dir, "BENCH_blame.json")
		if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", path)
		fmt.Printf("blame experiment completed in %v (wall clock)\n", time.Since(start).Round(time.Millisecond))
		return
	}

	if *experiment == "qd" {
		start := time.Now()
		t, points, err := bench.RunQDSweep(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
		fmt.Println(t.Format())
		raw, err := bench.QDSweepJSON(points)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
		dir := *jsonDir
		if dir == "" {
			dir = "."
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
		path := filepath.Join(dir, "BENCH_qd.json")
		if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", path)
		fmt.Printf("qd experiment completed in %v (wall clock)\n", time.Since(start).Round(time.Millisecond))
		return
	}

	if *experiment == "ycsb" {
		start := time.Now()
		t, points, err := bench.RunYCSB(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
		fmt.Println(t.Format())
		raw, err := bench.YCSBJSON(points)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
		dir := *jsonDir
		if dir == "" {
			dir = "."
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
		path := filepath.Join(dir, "BENCH_ycsb.json")
		if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", path)
		fmt.Printf("ycsb experiment completed in %v (wall clock)\n", time.Since(start).Round(time.Millisecond))
		return
	}

	if *experiment == "cache" {
		start := time.Now()
		t, points, err := bench.RunCacheSweep(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
		fmt.Println(t.Format())
		raw, err := bench.CacheSweepJSON(points)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
		dir := *jsonDir
		if dir == "" {
			dir = "."
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
		path := filepath.Join(dir, "BENCH_cache.json")
		if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", path)
		fmt.Printf("cache experiment completed in %v (wall clock)\n", time.Since(start).Round(time.Millisecond))
		return
	}

	if *experiment == "server" {
		start := time.Now()
		t, points, err := bench.RunServerSweep(opts, serverShards(counts), nil, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
		fmt.Println(t.Format())
		raw, err := bench.ServerSweepJSON(points)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
		dir := *jsonDir
		if dir == "" {
			dir = "."
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
		path := filepath.Join(dir, "BENCH_server.json")
		if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", path)
		fmt.Printf("server experiment completed in %v (wall clock)\n", time.Since(start).Round(time.Millisecond))
		return
	}

	start := time.Now()
	var tables []*bench.Table
	if *experiment == "shards" {
		// Run directly so the machine-readable points are in hand for
		// BENCH_shards.json alongside the usual table.
		t, points, err := bench.RunShardScaling(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
		tables = []*bench.Table{t}
		raw, err := bench.ShardScalingJSON(points)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
		dir := *jsonDir
		if dir == "" {
			dir = "."
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
		path := filepath.Join(dir, "BENCH_shards.json")
		if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", path)
	} else {
		tables, err = bench.Run(*experiment, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
	}
	for _, t := range tables {
		fmt.Println(t.Format())
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
		for _, t := range tables {
			path := filepath.Join(*csvDir, t.ID+".csv")
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
				os.Exit(1)
			}
			fmt.Println("wrote", path)
		}
	}
	fmt.Printf("completed %d table(s) in %v (wall clock)\n", len(tables), time.Since(start).Round(time.Millisecond))
}
