// Command bandslim-bench regenerates the tables and figures of the BandSlim
// paper's evaluation (§4) on the simulated KV-SSD stack.
//
// Usage:
//
//	bandslim-bench -experiment fig8 [-scale 20000] [-seed 42] [-csv out/]
//	bandslim-bench -experiment all
//	bandslim-bench -list
//
// Each experiment prints the same rows/series the paper plots; -csv also
// writes one CSV file per table for plotting.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"bandslim/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment ID (see -list)")
		scale      = flag.Int("scale", 20000, "operations per data point (paper: 1M)")
		seed       = flag.Uint64("seed", 42, "workload seed")
		csvDir     = flag.String("csv", "", "directory to write per-table CSV files")
		list       = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("experiments:")
		for _, id := range bench.Experiments() {
			fmt.Println("  ", id)
		}
		return
	}

	start := time.Now()
	tables, err := bench.Run(*experiment, bench.Options{Scale: *scale, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
		os.Exit(1)
	}
	for _, t := range tables {
		fmt.Println(t.Format())
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
		for _, t := range tables {
			path := filepath.Join(*csvDir, t.ID+".csv")
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
				os.Exit(1)
			}
			fmt.Println("wrote", path)
		}
	}
	fmt.Printf("completed %d table(s) in %v (wall clock)\n", len(tables), time.Since(start).Round(time.Millisecond))
}
