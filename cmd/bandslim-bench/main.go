// Command bandslim-bench regenerates the tables and figures of the BandSlim
// paper's evaluation (§4) on the simulated KV-SSD stack.
//
// Usage:
//
//	bandslim-bench -experiment fig8 [-scale 20000] [-seed 42] [-csv out/]
//	bandslim-bench -experiment shards [-shards 1,2,4,8] [-json out/]
//	bandslim-bench -experiment all
//	bandslim-bench -trace out.json [-shards 4]
//	bandslim-bench -list
//
// Each experiment prints the same rows/series the paper plots; -csv also
// writes one CSV file per table for plotting. The shards experiment
// additionally writes machine-readable BENCH_shards.json.
//
// -trace skips the experiments and instead captures a short adaptive-method
// workload with command-level tracing on, writing Chrome trace_event JSON
// loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing. With
// -shards the capture runs a ShardedDB and the shards render as processes.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"bandslim"
	"bandslim/internal/bench"
)

// parseShards turns "1,2,4,8" into a shard-count sweep.
func parseShards(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad shard count %q (want comma-separated integers >= 1)", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment ID (see -list)")
		scale      = flag.Int("scale", 20000, "operations per data point (paper: 1M)")
		seed       = flag.Uint64("seed", 42, "workload seed")
		shards     = flag.String("shards", "", "shard counts for the shards experiment, e.g. 1,2,4,8")
		csvDir     = flag.String("csv", "", "directory to write per-table CSV files")
		jsonDir    = flag.String("json", "", "directory for BENCH_shards.json (default: current dir)")
		tracePath  = flag.String("trace", "", "capture a traced workload and write Chrome trace JSON to this path")
		list       = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("experiments:")
		for _, id := range bench.Experiments() {
			fmt.Println("  ", id)
		}
		return
	}

	counts, err := parseShards(*shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
		os.Exit(1)
	}
	opts := bench.Options{Scale: *scale, Seed: *seed, Shards: counts}

	if *tracePath != "" {
		shardCount := 1
		if len(counts) > 0 {
			shardCount = counts[0]
		}
		events, err := bench.CaptureTrace(opts, shardCount)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
		if err := bandslim.WriteChromeTrace(f, events); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d events, %d shard(s)) — load it at https://ui.perfetto.dev\n",
			*tracePath, len(events), shardCount)
		return
	}

	start := time.Now()
	var tables []*bench.Table
	if *experiment == "shards" {
		// Run directly so the machine-readable points are in hand for
		// BENCH_shards.json alongside the usual table.
		t, points, err := bench.RunShardScaling(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
		tables = []*bench.Table{t}
		raw, err := bench.ShardScalingJSON(points)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
		dir := *jsonDir
		if dir == "" {
			dir = "."
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
		path := filepath.Join(dir, "BENCH_shards.json")
		if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", path)
	} else {
		tables, err = bench.Run(*experiment, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
	}
	for _, t := range tables {
		fmt.Println(t.Format())
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
			os.Exit(1)
		}
		for _, t := range tables {
			path := filepath.Join(*csvDir, t.ID+".csv")
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "bandslim-bench:", err)
				os.Exit(1)
			}
			fmt.Println("wrote", path)
		}
	}
	fmt.Printf("completed %d table(s) in %v (wall clock)\n", len(tables), time.Since(start).Round(time.Millisecond))
}
