// Command bandslim-server serves a simulated BandSlim KV-SSD over TCP,
// speaking a RESP2-compatible subset so redis-cli and standard Redis load
// generators work unmodified:
//
//	bandslim-server -addr :6379 -shards 4
//	redis-cli -p 6379 SET mykey myvalue
//	redis-cli -p 6379 GET mykey
//	redis-cli -p 6379 INFO
//
// Supported commands: PING, ECHO, SET, GET, DEL, MSET, MGET, SCAN, INFO,
// SHUTDOWN, QUIT (plus COMMAND and SELECT for client handshakes). Pipelined
// commands are coalesced per event-loop tick onto the sharded batch path;
// per-connection in-flight windows (-window) bound memory and push
// backpressure onto clients through TCP flow control.
//
// -cache enables the tiered read path: a simulated device-DRAM value/page
// cache plus a host-side negative cache that short-circuits known-miss GETs
// and DEL existence probes before any NVMe command is issued. "serving"
// picks the default profile; a policy name (lru|clock|2q) selects the
// eviction policy; "off" (the default) keeps the seed read path.
//
// Clocking is hybrid: the network edge runs on the wall clock while the
// simulated device advances its own virtual clock. -metrics-listen serves
// a combined /metrics exposition carrying both timebases. -pprof serves
// net/http/pprof for live profiling (on the metrics mux when the addresses
// match, on its own listener otherwise). -trace N attaches per-shard trace
// rings of N events: INFO grows a # Trace section with ring health and the
// live latency-attribution headline, and /metrics gains the blame families.
//
// SIGINT/SIGTERM (or the SHUTDOWN command) stop accepting, drain in-flight
// commands, close every connection, and then close the DB.
//
// -smoke runs a self-test instead of serving: start the server on a
// loopback port, drive PING/SET/GET/DEL/INFO through a client connection,
// shut down cleanly, and exit non-zero on any mismatch.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bandslim"
	"bandslim/internal/resp"
	"bandslim/internal/server"
)

// registerPprof mounts the net/http/pprof handlers on a non-default mux, so
// profiling shares (or avoids) the metrics listener per the -pprof flag.
func registerPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

func main() {
	var (
		addr          = flag.String("addr", ":6379", "TCP listen address")
		shards        = flag.Int("shards", 4, "simulated device shards")
		window        = flag.Int("window", server.DefaultWindow, "per-connection in-flight command window")
		method        = flag.String("method", "adaptive", "transfer method: baseline|piggyback|hybrid|adaptive")
		cacheProfile  = flag.String("cache", "off", "read cache: off|serving|lru|clock|2q (serving = 4MiB device-DRAM value cache + 64-page cache + negative cache; a policy name uses the serving profile with that eviction policy)")
		metricsListen = flag.String("metrics-listen", "", "serve /metrics on this address (empty: off)")
		pprofListen   = flag.String("pprof", "", "serve net/http/pprof on this address (empty: off; reuses -metrics-listen's mux when equal)")
		traceCap      = flag.Int("trace", 0, "per-shard trace ring capacity in events (0: tracing off; enables INFO blame and /metrics blame families)")
		drainTimeout  = flag.Duration("drain-timeout", 10*time.Second, "max wait for in-flight commands at shutdown")
		smoke         = flag.Bool("smoke", false, "run a loopback self-test and exit")
		quiet         = flag.Bool("quiet", false, "suppress lifecycle logging")
	)
	flag.Parse()

	if err := run(*addr, *shards, *window, *method, *cacheProfile, *metricsListen, *pprofListen, *traceCap, *drainTimeout, *smoke, *quiet); err != nil {
		fmt.Fprintf(os.Stderr, "bandslim-server: %v\n", err)
		os.Exit(1)
	}
}

// submissionForWindow derives the per-shard NVMe submission policy from the
// per-connection in-flight window, so -window is one coherent knob spanning
// the network edge and the simulated device: the shard queue depth tracks
// the window (capped at 32, the useful concurrency of the simulated NAND
// array), doorbells batch up to 8 submissions per MMIO write, and
// completions coalesce on a 2µs interrupt grid. A window of 1 degenerates
// to the paper's synchronous testbed. INFO reports the mapping under
// submission_*.
func submissionForWindow(window int) bandslim.SubmissionConfig {
	depth := window
	if depth > 32 {
		depth = 32
	}
	if depth <= 1 {
		return bandslim.SubmissionConfig{}
	}
	return bandslim.SubmissionConfig{
		QueueDepth:       depth,
		DoorbellBatch:    8,
		CoalesceInterval: 2 * bandslim.SimMicrosecond,
	}
}

// parseCache maps the -cache flag to a cache config: off, the serving
// profile, or the serving profile with a specific eviction policy.
func parseCache(name string) (bandslim.CacheConfig, error) {
	switch strings.ToLower(name) {
	case "", "off":
		return bandslim.CacheConfig{}, nil
	case "serving":
		return bandslim.ServingCacheConfig(), nil
	}
	pol, err := bandslim.ParseCachePolicy(name)
	if err != nil {
		return bandslim.CacheConfig{}, fmt.Errorf("unknown cache profile %q (want off|serving|lru|clock|2q)", name)
	}
	cc := bandslim.ServingCacheConfig()
	cc.Policy = pol
	return cc, nil
}

// parseMethod maps the -method flag to a transfer method.
func parseMethod(name string) (bandslim.TransferMethod, error) {
	switch strings.ToLower(name) {
	case "baseline":
		return bandslim.Baseline, nil
	case "piggyback":
		return bandslim.Piggyback, nil
	case "hybrid":
		return bandslim.Hybrid, nil
	case "adaptive":
		return bandslim.Adaptive, nil
	}
	return 0, fmt.Errorf("unknown method %q", name)
}

func run(addr string, shards, window int, method, cacheProfile, metricsListen, pprofListen string, traceCap int, drainTimeout time.Duration, smoke, quiet bool) error {
	m, err := parseMethod(method)
	if err != nil {
		return err
	}
	cc, err := parseCache(cacheProfile)
	if err != nil {
		return err
	}
	cfg := bandslim.DefaultConfig()
	cfg.Method = m
	cfg.Submission = submissionForWindow(window)
	cfg.Cache = cc
	db, err := bandslim.OpenSharded(bandslim.ShardedConfig{
		Shards:        shards,
		PerShard:      cfg,
		TraceCapacity: traceCap,
	})
	if err != nil {
		return err
	}
	defer db.Close()

	logf := func(format string, args ...any) {
		if !quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	srv, err := server.New(server.Config{DB: db, Window: window, Logf: logf})
	if err != nil {
		return err
	}

	if smoke {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}

	var msrv *http.Server
	if metricsListen != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := srv.WriteMetrics(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		if pprofListen == metricsListen {
			registerPprof(mux)
		}
		msrv = &http.Server{Addr: metricsListen, Handler: mux}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logf("bandslim-server: metrics listener: %v", err)
			}
		}()
		defer msrv.Close()
	}
	if pprofListen != "" && pprofListen != metricsListen {
		mux := http.NewServeMux()
		registerPprof(mux)
		psrv := &http.Server{Addr: pprofListen, Handler: mux}
		go func() {
			if err := psrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logf("bandslim-server: pprof listener: %v", err)
			}
		}()
		defer psrv.Close()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	if smoke {
		err := runSmoke(ln.Addr().String(), traceCap > 0)
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if serr := srv.Shutdown(ctx); err == nil {
			err = serr
		}
		if serr := <-serveErr; err == nil {
			err = serr
		}
		if err == nil {
			fmt.Println("server smoke: ok")
		}
		return err
	}

	// Serve until a signal or the SHUTDOWN command stops us.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigs:
		logf("bandslim-server: %v, draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		return <-serveErr
	case err := <-serveErr:
		// Serve returned on its own: accept failure, or SHUTDOWN command
		// (which runs the drain itself before Serve returns).
		return err
	}
}

// runSmoke drives one client session over loopback and checks every reply.
// With tracing on it also requires INFO's # Trace section: ring health plus
// the latency-attribution headline reconstructed from the live ring.
func runSmoke(addr string, traced bool) error {
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return err
	}
	defer nc.Close()
	r, w := resp.NewReader(nc), resp.NewWriter(nc)
	do := func(args ...string) (resp.Reply, error) {
		w.Array(len(args))
		for _, a := range args {
			w.BulkString(a)
		}
		if err := w.Flush(); err != nil {
			return resp.Reply{}, err
		}
		nc.SetReadDeadline(time.Now().Add(5 * time.Second))
		return r.ReadReply()
	}
	expect := func(check func(resp.Reply) bool, args ...string) error {
		rep, err := do(args...)
		if err != nil {
			return fmt.Errorf("%v: %w", args, err)
		}
		if !check(rep) {
			return fmt.Errorf("%v: unexpected reply %+v (%q)", args, rep, rep.Str)
		}
		return nil
	}
	simple := func(want string) func(resp.Reply) bool {
		return func(rep resp.Reply) bool { return rep.Kind == resp.KindSimple && string(rep.Str) == want }
	}
	bulk := func(want string) func(resp.Reply) bool {
		return func(rep resp.Reply) bool { return rep.Kind == resp.KindBulk && !rep.Null && string(rep.Str) == want }
	}
	steps := []error{
		expect(simple("PONG"), "PING"),
		expect(simple("OK"), "SET", "smoke-key", "smoke-value"),
		expect(bulk("smoke-value"), "GET", "smoke-key"),
		expect(func(rep resp.Reply) bool { return rep.Kind == resp.KindBulk && rep.Null }, "GET", "no-such-key"),
		expect(func(rep resp.Reply) bool { return rep.Kind == resp.KindInteger && rep.Int == 1 }, "DEL", "smoke-key"),
		expect(func(rep resp.Reply) bool {
			if rep.Kind != resp.KindBulk || !strings.Contains(string(rep.Str), "sim_time_ns:") {
				return false
			}
			if !traced {
				return true
			}
			return strings.Contains(string(rep.Str), "trace_buffered:") &&
				strings.Contains(string(rep.Str), "blame_ops:")
		}, "INFO"),
	}
	for _, err := range steps {
		if err != nil {
			return err
		}
	}
	return nil
}
