GO ?= go

.PHONY: all build test race vet fmt bench ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

# Regenerate the shard-scaling results artifact.
bench:
	$(GO) run ./cmd/bandslim-bench -experiment shards -scale 20000 -json results

ci: build vet test race
