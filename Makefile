GO ?= go

.PHONY: all build test race vet fmt bench bench-shards bench-server bench-smoke smoke golden server-smoke modelcheck fuzz-smoke qd qd-smoke blame blame-smoke cache cache-smoke ycsb ycsb-smoke ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

# Hot-path benchmarks: the testing.B micro suite with allocation counts
# (benchstat-comparable; committed as results/bench_micro.txt) plus the
# fixed-iteration before/after harness (results/BENCH_hotpath.json).
bench:
	$(GO) test -run=NONE -bench=. -benchmem -count=1 . | tee results/bench_micro.txt
	$(GO) run ./cmd/bandslim-bench -experiment hotpath -scale 40000 -seed 42 -json results

# Regenerate the shard-scaling results artifact.
bench-shards:
	$(GO) run ./cmd/bandslim-bench -experiment shards -scale 20000 -json results

# Regenerate the RESP serving loadgen artifact: conns × pipeline-depth
# sweep over loopback (results/BENCH_server.json).
bench-server:
	$(GO) run ./cmd/bandslim-bench -experiment server -scale 20000 -seed 42 -json results

# One-iteration pass over every benchmark: catches bit-rot in bench code
# without paying for a measurement run.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x .

# Flags shared by the smoke run and its golden regeneration: the exported
# exposition is deterministic, so any drift is a real behavior change.
SMOKE_FLAGS = -shards 2 -scale 1000 -seed 42 -metrics-interval-us 100

# Bench smoke: run a tiny instrumented workload and verify the Prometheus
# exposition is byte-identical to the committed golden file.
smoke:
	$(GO) run ./cmd/bandslim-bench $(SMOKE_FLAGS) -metrics-out .smoke.prom -series-out .smoke.csv
	diff -u results/golden/bench_smoke.prom .smoke.prom
	rm -f .smoke.prom .smoke.csv

# Regenerate the golden after an intentional metrics change.
golden:
	$(GO) run ./cmd/bandslim-bench $(SMOKE_FLAGS) -metrics-out results/golden/bench_smoke.prom -series-out .smoke.csv
	rm -f .smoke.csv

# Server smoke: boot bandslim-server on a loopback port, drive
# PING/SET/GET/DEL/INFO through a real client connection, and require a
# clean drain — the end-to-end check on the RESP front-end. Runs with the
# serving cache profile so the tiered read path is exercised end to end.
server-smoke:
	$(GO) run ./cmd/bandslim-server -smoke -quiet -trace 65536 -cache serving -pprof 127.0.0.1:0

# Model-based differential harness + crash-consistency sweep: 1000+ seeded
# op sequences against an in-memory reference model, with and without fault
# plans, plus a power cut at every command boundary of a fixed workload.
# TestModelCheckScenarios* pump every YCSB scenario (and the mixed stream)
# through the same model; TestChaosUnderLoad cuts power inside live scenario
# runs and re-proves determinism.
modelcheck:
	$(GO) test -run 'TestModelCheck|TestCrashSweep|TestFaultRaceSharded|TestChaosUnderLoad' -count=1 -timeout 600s .

# Regenerate the queue-depth sweep artifact: submission window depth 1→32
# on the 4-shard baseline stack (results/BENCH_qd.json). Every value is
# simulated, so the artifact is deterministic.
qd:
	$(GO) run ./cmd/bandslim-bench -experiment qd -scale 20000 -seed 42 -json results

# QD determinism gate: run the sweep twice at smoke scale and require
# byte-identical JSON — the async window must not leak host scheduling into
# simulated results.
qd-smoke:
	$(GO) run ./cmd/bandslim-bench -experiment qd -scale 1000 -seed 42 -json .qd1
	$(GO) run ./cmd/bandslim-bench -experiment qd -scale 1000 -seed 42 -json .qd2
	diff -u .qd1/BENCH_qd.json .qd2/BENCH_qd.json
	rm -rf .qd1 .qd2

# Regenerate the latency-attribution artifact: stage blame vs submission
# window depth on the 4-shard stack (results/BENCH_blame.json). The sweep
# fails if any op's stages do not sum exactly to its end-to-end latency.
blame:
	$(GO) run ./cmd/bandslim-bench -experiment blame -scale 20000 -seed 42 -json results

# Blame determinism + invariant gate: run the sweep twice at smoke scale and
# require byte-identical JSON, then capture a trace, analyze it twice, and
# require byte-identical attribution CSV.
blame-smoke:
	$(GO) run ./cmd/bandslim-bench -experiment blame -scale 1000 -seed 42 -json .blame1
	$(GO) run ./cmd/bandslim-bench -experiment blame -scale 1000 -seed 42 -json .blame2
	diff -u .blame1/BENCH_blame.json .blame2/BENCH_blame.json
	$(GO) run ./cmd/bandslim-bench -trace-jsonl .blame1/trace.jsonl -shards 2 -scale 1000 -seed 42
	$(GO) run ./cmd/bandslim-cli analyze -csv .blame1/blame.csv -top 0 .blame1/trace.jsonl > /dev/null
	$(GO) run ./cmd/bandslim-cli analyze -csv .blame2/blame.csv -top 0 .blame1/trace.jsonl > /dev/null
	diff -u .blame1/blame.csv .blame2/blame.csv
	rm -rf .blame1 .blame2

# Regenerate the tiered-read-path artifact: device-DRAM cache size × policy
# × Zipfian skew vs the cache-off baseline (results/BENCH_cache.json). The
# sweep hard-fails if the hot-read p99 at the default operating point does
# not improve at least 3x over cache-off.
cache:
	$(GO) run ./cmd/bandslim-bench -experiment cache -scale 20000 -seed 42 -json results

# Cache determinism gate: run the sweep twice at smoke scale and require
# byte-identical JSON — cache state must be driven by the virtual clock and
# seeds alone, never host scheduling.
cache-smoke:
	$(GO) run ./cmd/bandslim-bench -experiment cache -scale 1000 -seed 42 -json .cache1
	$(GO) run ./cmd/bandslim-bench -experiment cache -scale 1000 -seed 42 -json .cache2
	diff -u .cache1/BENCH_cache.json .cache2/BENCH_cache.json
	rm -rf .cache1 .cache2

# Regenerate the YCSB scenario-suite artifact: core workloads A-F with
# time-varying arrivals (diurnal, bursty, jittered) and a mid-run hotspot
# shift (results/BENCH_ycsb.json). Every value is simulated, so the artifact
# is deterministic for a given -scale/-seed.
ycsb:
	$(GO) run ./cmd/bandslim-bench -experiment ycsb -scale 20000 -seed 42 -json results

# YCSB + trace-replay determinism gate: (1) the scenario suite run twice must
# produce byte-identical JSON; (2) a recorded trace replayed against a fresh
# stack must produce a byte-identical Prometheus exposition to the live run —
# the replay-fidelity acceptance check; (3) recording twice must produce
# byte-identical trace files.
ycsb-smoke:
	$(GO) run ./cmd/bandslim-bench -experiment ycsb -scale 1000 -seed 42 -json .ycsb1
	$(GO) run ./cmd/bandslim-bench -experiment ycsb -scale 1000 -seed 42 -json .ycsb2
	diff -u .ycsb1/BENCH_ycsb.json .ycsb2/BENCH_ycsb.json
	$(GO) run ./cmd/bandslim-cli trace record -scenario mixed -records 300 -ops 1000 -seed 42 -o .ycsb1/run.trace -metrics-out .ycsb1/live.prom > /dev/null
	$(GO) run ./cmd/bandslim-cli trace record -scenario mixed -records 300 -ops 1000 -seed 42 -o .ycsb2/run.trace > /dev/null
	diff -u .ycsb1/run.trace .ycsb2/run.trace
	$(GO) run ./cmd/bandslim-cli trace replay -metrics-out .ycsb2/replay.prom .ycsb1/run.trace > /dev/null
	diff -u .ycsb1/live.prom .ycsb2/replay.prom
	$(GO) run ./cmd/bandslim-cli trace stat .ycsb1/run.trace > /dev/null
	rm -rf .ycsb1 .ycsb2

# Short fixed-budget fuzz pass over the fault-plan parser, the journal
# decoder/replayer, the RESP command parser, and the workload-trace parser,
# seeded from the committed testdata corpora.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzParsePlan -fuzztime=5s ./internal/fault
	$(GO) test -run=NONE -fuzz=FuzzJournalReplay -fuzztime=5s ./internal/device
	$(GO) test -run=NONE -fuzz=FuzzRESPParse -fuzztime=5s ./internal/resp
	$(GO) test -run=NONE -fuzz=FuzzTraceParse -fuzztime=5s ./internal/workload

ci: build vet test race smoke bench-smoke server-smoke modelcheck qd-smoke blame-smoke cache-smoke ycsb-smoke fuzz-smoke
