package bandslim_test

// Replay-equivalence regression: record a mixed scenario live, round-trip
// the trace through its text format, replay it against a fresh identically
// configured stack, and require the replayed run to be indistinguishable —
// same Stats, same Prometheus exposition bytes, same final key/value
// contents by full iteration — on both stack flavors. This is the in-tree
// twin of the `make ycsb-smoke` CLI gate.

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"bandslim"
	"bandslim/internal/bench"
	"bandslim/internal/sim"
	"bandslim/internal/workload"
)

// replayStack mirrors the bandslim-cli trace stack: default config with the
// metrics sampler armed, sharded when shards > 1.
func replayStack(t *testing.T, shards int) bench.ScenarioDB {
	t.Helper()
	per := bandslim.DefaultConfig()
	per.MetricsInterval = 100 * sim.Microsecond
	if shards <= 1 {
		db, err := bandslim.Open(per)
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	db, err := bandslim.OpenSharded(bandslim.ShardedConfig{Shards: shards, PerShard: per})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// replayFingerprint closes the stack and renders everything the equivalence
// check compares: the Prometheus exposition, the Stats structure, and a full
// ordered dump of the surviving key/value pairs.
func replayFingerprint(t *testing.T, db bench.ScenarioDB) (prom string, stats bandslim.Stats, dump string) {
	t.Helper()
	var (
		buf bytes.Buffer
		it  interface {
			Valid() bool
			Key() []byte
			Value() []byte
			Err() error
			Next()
		}
	)
	switch d := db.(type) {
	case *bandslim.DB:
		iter, err := d.NewIterator(nil)
		if err != nil {
			t.Fatal(err)
		}
		it = iter
	case *bandslim.ShardedDB:
		iter, err := d.NewIterator(nil)
		if err != nil {
			t.Fatal(err)
		}
		it = iter
	default:
		t.Fatalf("unknown stack %T", db)
	}
	var sb strings.Builder
	for it.Valid() {
		fmt.Fprintf(&sb, "%q=%x\n", it.Key(), it.Value())
		it.Next()
	}
	if err := it.Err(); err != nil {
		t.Fatalf("fingerprint iteration: %v", err)
	}
	// Close before rendering the exposition so it includes the final flush,
	// matching the order the CLI gate exports in.
	switch d := db.(type) {
	case *bandslim.DB:
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		if err := d.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		stats = d.Stats()
	case *bandslim.ShardedDB:
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		if err := d.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		stats = d.Stats()
	}
	return buf.String(), stats, sb.String()
}

func TestReplayEquivalence(t *testing.T) {
	for _, shards := range []int{1, 2} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			const seed = 1234
			s, err := workload.NewScenario("mixed", workload.ScenarioConfig{
				Records: 300, Ops: 900, Seed: seed,
				Arrival: workload.ArrivalConfig{
					Rate: 50000, DiurnalAmp: 0.5, DiurnalPeriod: 8 * sim.Millisecond,
				},
				Shifts: workload.HotShifts{{At: sim.Time(10 * sim.Millisecond), Rotate: 97}},
			})
			if err != nil {
				t.Fatal(err)
			}
			live := replayStack(t, shards)
			var tr workload.Trace
			liveRes, err := bench.DriveScenario(live, s, seed, &tr)
			if err != nil {
				t.Fatal(err)
			}
			livePromText, liveStats, liveDump := replayFingerprint(t, live)

			// Round-trip the trace through the text format before replaying:
			// the replayed stream is what a trace file on disk reproduces.
			parsed, err := workload.ParseTrace(strings.NewReader(workload.FormatTrace(&tr)))
			if err != nil {
				t.Fatal(err)
			}
			replayed := replayStack(t, shards)
			replayRes, err := bench.DriveScenario(replayed, workload.NewReplay(parsed), parsed.Seed, nil)
			if err != nil {
				t.Fatal(err)
			}
			replayPromText, replayStats, replayDump := replayFingerprint(t, replayed)

			replayRes.Name = liveRes.Name
			if !reflect.DeepEqual(liveRes, replayRes) {
				t.Errorf("drive results diverged:\nlive   %+v\nreplay %+v", liveRes, replayRes)
			}
			if !reflect.DeepEqual(liveStats, replayStats) {
				t.Errorf("Stats diverged:\nlive   %+v\nreplay %+v", liveStats, replayStats)
			}
			if livePromText != replayPromText {
				t.Errorf("Prometheus expositions differ (%d vs %d bytes)",
					len(livePromText), len(replayPromText))
			}
			if liveDump != replayDump {
				t.Errorf("final key/value contents differ (%d vs %d bytes)",
					len(liveDump), len(replayDump))
			}
			if liveDump == "" {
				t.Error("empty final contents; scenario wrote nothing?")
			}
		})
	}
}
