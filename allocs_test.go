package bandslim_test

// Allocation regression tests: the per-op simulation path must be
// allocation-free in steady state. Steady state means the structural
// allocations are behind us — pools warmed, scratch buffers grown to their
// working size, and (for writes) keys already present so the MemTable
// overwrites in place instead of inserting. New-key inserts, SSTable
// flushes, and compactions legitimately allocate; they are amortized
// structural work, not the per-op path.

import (
	"fmt"
	"testing"

	"bandslim"
)

// allocConfig builds the small deterministic stack the assertions run on.
// NAND stays off for write paths (NAND programs allocate FTL bookkeeping);
// read paths keep it on.
func allocConfig(method bandslim.TransferMethod, policy bandslim.PackingPolicy, nandOn bool, tr bandslim.Tracer) bandslim.Config {
	cfg := bandslim.DefaultConfig()
	cfg.Method = method
	cfg.Policy = policy
	cfg.DisableNAND = !nandOn
	cfg.Tracer = tr
	return cfg
}

// assertZeroAllocs runs fn under testing.AllocsPerRun and fails on any
// per-run allocation.
func assertZeroAllocs(t *testing.T, what string, runs int, fn func()) {
	t.Helper()
	if avg := testing.AllocsPerRun(runs, fn); avg != 0 {
		t.Errorf("%s allocates %.2f objects per op in steady state, want 0", what, avg)
	}
}

// tracers returns the tracer variants every assertion runs under: the
// zero-cost disabled path and a ring-buffered recorder (Emit writes into a
// preallocated ring, so tracing must stay allocation-free too).
func tracers() map[string]bandslim.Tracer {
	return map[string]bandslim.Tracer{
		"tracer_off": nil,
		"tracer_on":  bandslim.NewRecorder(4096),
	}
}

func TestPutAllocsSteadyState(t *testing.T) {
	cases := []struct {
		name   string
		method bandslim.TransferMethod
		policy bandslim.PackingPolicy
		size   int
	}{
		{"inline_32B", bandslim.Piggyback, bandslim.BackfillPacking, 32},
		{"prp_4K", bandslim.Baseline, bandslim.Block, 4096},
		{"adaptive_512B", bandslim.Adaptive, bandslim.BackfillPacking, 512},
	}
	for _, tc := range cases {
		for trName, tr := range tracers() {
			t.Run(tc.name+"/"+trName, func(t *testing.T) {
				db, err := bandslim.Open(allocConfig(tc.method, tc.policy, false, tr))
				if err != nil {
					t.Fatal(err)
				}
				defer db.Close()
				const nkeys = 16
				keys := make([][]byte, nkeys)
				value := make([]byte, tc.size)
				for i := range keys {
					keys[i] = []byte(fmt.Sprintf("ak%02d", i))
					if err := db.Put(keys[i], value); err != nil {
						t.Fatal(err)
					}
				}
				// Warm the pools and scratch past their growth phase.
				for r := 0; r < 4; r++ {
					for _, k := range keys {
						if err := db.Put(k, value); err != nil {
							t.Fatal(err)
						}
					}
				}
				i := 0
				assertZeroAllocs(t, "Put "+tc.name, 400, func() {
					if err := db.Put(keys[i%nkeys], value); err != nil {
						t.Fatal(err)
					}
					i++
				})
			})
		}
	}
}

func TestGetAllocsSteadyState(t *testing.T) {
	for trName, tr := range tracers() {
		t.Run(trName, func(t *testing.T) {
			db, err := bandslim.Open(allocConfig(bandslim.Adaptive, bandslim.BackfillPacking, true, tr))
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			const nkeys = 64
			keys := make([][]byte, nkeys)
			for i := range keys {
				keys[i] = []byte(fmt.Sprintf("gk%02d", i))
				if err := db.Put(keys[i], make([]byte, 128)); err != nil {
					t.Fatal(err)
				}
			}
			i := 0
			assertZeroAllocs(t, "Get", 400, func() {
				v, err := db.Get(keys[i%nkeys])
				if err != nil || len(v) != 128 {
					t.Fatalf("Get: %d bytes, %v", len(v), err)
				}
				i++
			})
			dst := make([]byte, 0, 128)
			i = 0
			assertZeroAllocs(t, "GetInto", 400, func() {
				v, err := db.GetInto(keys[i%nkeys], dst)
				if err != nil || len(v) != 128 {
					t.Fatalf("GetInto: %d bytes, %v", len(v), err)
				}
				dst = v
				i++
			})
		})
	}
}

func TestDeleteAllocsSteadyState(t *testing.T) {
	db, err := bandslim.Open(allocConfig(bandslim.Adaptive, bandslim.BackfillPacking, false, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	key := []byte("del-key")
	if err := db.Put(key, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	// The first Delete inserts the tombstone (one structural allocation);
	// repeat deletes overwrite it in place.
	if err := db.Delete(key); err != nil {
		t.Fatal(err)
	}
	assertZeroAllocs(t, "Delete", 400, func() {
		if err := db.Delete(key); err != nil {
			t.Fatal(err)
		}
	})
}

func TestNextAllocsSteadyState(t *testing.T) {
	db, err := bandslim.Open(allocConfig(bandslim.Adaptive, bandslim.BackfillPacking, true, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// Enough keys that the measured window never exhausts the iterator, few
	// enough to stay resident in the MemTable (no SSTable page decodes).
	const nkeys = 2000
	for i := 0; i < nkeys; i++ {
		if err := db.Put([]byte(fmt.Sprintf("nk%06d", i)), make([]byte, 48)); err != nil {
			t.Fatal(err)
		}
	}
	it, err := db.NewIterator(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the iterator's reused key/value buffers.
	for i := 0; i < 8 && it.Valid(); i++ {
		it.Next()
	}
	assertZeroAllocs(t, "Iterator.Next", 400, func() {
		if !it.Valid() {
			t.Fatal("iterator exhausted inside the measured window")
		}
		it.Next()
	})
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
}

// TestWindowedGetBatchAllocsSteadyState proves the submission window
// recycles everything per batch at both a saturated depth (8) and a depth
// that swallows the whole batch (32): wait frames and PRP staging come from
// internal/pool-reused slices on the driver, the FIFO scratch lives on the
// DB, and completion sweeps reuse the device's sort buffer — so a
// steady-state GetBatch through the async window allocates nothing. The
// tracer-off runs also pin down the latency-attribution boundary events
// (completion readiness stamping, CQ-post timing): attribution support must
// cost zero allocations when tracing is disabled.
func TestWindowedGetBatchAllocsSteadyState(t *testing.T) {
	for _, depth := range []int{8, 32} {
		for trName, tr := range tracers() {
			t.Run(fmt.Sprintf("depth=%d/%s", depth, trName), func(t *testing.T) {
				cfg := allocConfig(bandslim.Adaptive, bandslim.BackfillPacking, true, tr)
				cfg.Submission = bandslim.SubmissionConfig{
					QueueDepth:       depth,
					DoorbellBatch:    4,
					CoalesceInterval: bandslim.SimMicrosecond,
				}
				db, err := bandslim.Open(cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer db.Close()
				const nkeys = 16
				keys := make([][]byte, nkeys)
				vals := make([][]byte, nkeys)
				for i := range keys {
					keys[i] = []byte(fmt.Sprintf("wk%02d", i))
					if err := db.Put(keys[i], make([]byte, 128)); err != nil {
						t.Fatal(err)
					}
					vals[i] = make([]byte, 0, 128)
				}
				// Warm the window: frames, per-slot PRP staging, FIFO
				// scratch, and the device's completion sweep all grow on
				// first use.
				for r := 0; r < 4; r++ {
					if _, err := db.GetBatch(keys, vals); err != nil {
						t.Fatal(err)
					}
				}
				assertZeroAllocs(t, fmt.Sprintf("GetBatch depth=%d", depth), 400, func() {
					out, err := db.GetBatch(keys, vals)
					if err != nil || len(out[nkeys-1]) != 128 {
						t.Fatalf("GetBatch: %v", err)
					}
				})
			})
		}
	}
}

func TestShardedAllocsSteadyState(t *testing.T) {
	for trName, tr := range tracers() {
		t.Run(trName, func(t *testing.T) {
			const nkeys = 16
			keys := make([][]byte, nkeys)
			value := make([]byte, 256)
			for i := range keys {
				keys[i] = []byte(fmt.Sprintf("sk%02d", i))
			}

			// Write assertions on a NAND-off stack (NAND programs allocate
			// FTL bookkeeping, and the write path never reads values back).
			s, err := bandslim.OpenSharded(bandslim.ShardedConfig{
				Shards:   2,
				PerShard: allocConfig(bandslim.Adaptive, bandslim.BackfillPacking, false, tr),
			})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			for r := 0; r < 5; r++ {
				for _, k := range keys {
					if err := s.Put(k, value); err != nil {
						t.Fatal(err)
					}
				}
			}
			i := 0
			assertZeroAllocs(t, "ShardedDB.Put", 400, func() {
				if err := s.Put(keys[i%nkeys], value); err != nil {
					t.Fatal(err)
				}
				i++
			})

			// Read assertions need NAND on: value reads are served from the
			// simulated vLog, which DisableNAND stubs out.
			g, err := bandslim.OpenSharded(bandslim.ShardedConfig{
				Shards:   2,
				PerShard: allocConfig(bandslim.Adaptive, bandslim.BackfillPacking, true, tr),
			})
			if err != nil {
				t.Fatal(err)
			}
			defer g.Close()
			for _, k := range keys {
				if err := g.Put(k, value); err != nil {
					t.Fatal(err)
				}
			}
			i = 0
			assertZeroAllocs(t, "ShardedDB.Get", 400, func() {
				v, err := g.Get(keys[i%nkeys])
				if err != nil || len(v) != 256 {
					t.Fatalf("Get: %d bytes, %v", len(v), err)
				}
				i++
			})
			dst := make([]byte, 0, 256)
			i = 0
			assertZeroAllocs(t, "ShardedDB.GetInto", 400, func() {
				v, err := g.GetInto(keys[i%nkeys], dst)
				if err != nil || len(v) != 256 {
					t.Fatalf("GetInto: %d bytes, %v", len(v), err)
				}
				dst = v
				i++
			})
		})
	}
}

// TestCacheHitAllocsSteadyState proves the tiered read path stays
// allocation-free once warm: a device value-cache hit (map lookup, DRAM
// latency charge, DMA out) and a host-side negative-cache hit (ring lookup,
// preallocated not-found error) must both cost zero allocations, with and
// without a tracer attached. The fills themselves may allocate — they are
// the miss path — so the working set is read once before measuring.
func TestCacheHitAllocsSteadyState(t *testing.T) {
	cacheCfg := bandslim.CacheConfig{
		ValueBytes:      1 << 20,
		Pages:           32,
		Policy:          bandslim.Cache2Q,
		NegativeEntries: 128,
	}
	for trName, tr := range tracers() {
		t.Run(trName, func(t *testing.T) {
			cfg := allocConfig(bandslim.Adaptive, bandslim.BackfillPacking, true, tr)
			cfg.Cache = cacheCfg
			db, err := bandslim.Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			const nkeys = 32
			keys := make([][]byte, nkeys)
			for i := range keys {
				keys[i] = []byte(fmt.Sprintf("ck%02d", i))
				if err := db.Put(keys[i], make([]byte, 128)); err != nil {
					t.Fatal(err)
				}
			}
			// Two warm rounds: the first read of each key misses and fills
			// the cache (a structural allocation), the second promotes it in
			// 2Q; every measured read is then a pure hit.
			for r := 0; r < 2; r++ {
				for _, k := range keys {
					if _, err := db.Get(k); err != nil {
						t.Fatal(err)
					}
				}
			}
			base := db.Stats().Cache.Hits
			i := 0
			assertZeroAllocs(t, "Get cache hit", 400, func() {
				v, err := db.Get(keys[i%nkeys])
				if err != nil || len(v) != 128 {
					t.Fatalf("Get: %d bytes, %v", len(v), err)
				}
				i++
			})
			if hits := db.Stats().Cache.Hits - base; hits == 0 {
				t.Error("measured reads never hit the value cache")
			}

			// Negative-cache hits: two misses arm and admit the key, every
			// later Get resolves host-side from the recent-miss ring.
			ghost := []byte("ck-ghost")
			for r := 0; r < 3; r++ {
				if _, err := db.Get(ghost); !bandslim.IsNotFound(err) {
					t.Fatalf("Get(ghost): %v, want not-found", err)
				}
			}
			nbase := db.Stats().Cache.NegHits
			assertZeroAllocs(t, "Get negative hit", 400, func() {
				if _, err := db.Get(ghost); !bandslim.IsNotFound(err) {
					t.Fatalf("Get(ghost): %v, want not-found", err)
				}
			})
			if hits := db.Stats().Cache.NegHits - nbase; hits == 0 {
				t.Error("measured misses never hit the negative cache")
			}
		})
	}
}

// TestShardedCacheHitAllocsSteadyState repeats the cache-hit assertion
// through the sharded front-end: the shard worker hand-off and the per-shard
// caches must add nothing to the hit path.
func TestShardedCacheHitAllocsSteadyState(t *testing.T) {
	for trName, tr := range tracers() {
		t.Run(trName, func(t *testing.T) {
			cfg := allocConfig(bandslim.Adaptive, bandslim.BackfillPacking, true, tr)
			cfg.Cache = bandslim.CacheConfig{
				ValueBytes:      1 << 20,
				Policy:          bandslim.CacheLRU,
				NegativeEntries: 128,
			}
			s, err := bandslim.OpenSharded(bandslim.ShardedConfig{Shards: 2, PerShard: cfg})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			const nkeys = 32
			keys := make([][]byte, nkeys)
			for i := range keys {
				keys[i] = []byte(fmt.Sprintf("sc%02d", i))
				if err := s.Put(keys[i], make([]byte, 128)); err != nil {
					t.Fatal(err)
				}
			}
			for _, k := range keys {
				if _, err := s.Get(k); err != nil {
					t.Fatal(err)
				}
			}
			base := s.Stats().Cache.Hits
			i := 0
			assertZeroAllocs(t, "ShardedDB.Get cache hit", 400, func() {
				v, err := s.Get(keys[i%nkeys])
				if err != nil || len(v) != 128 {
					t.Fatalf("Get: %d bytes, %v", len(v), err)
				}
				i++
			})
			if hits := s.Stats().Cache.Hits - base; hits == 0 {
				t.Error("measured reads never hit the value cache")
			}
		})
	}
}
