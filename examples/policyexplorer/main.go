// Policyexplorer: run the same mixed workload against all four in-device
// packing policies (Block, All, Selective, Backfill) and print the trade-off
// triangle the paper's §4.3 explores: NAND page writes vs device memcpy time
// vs response time. Change -mix to see how the winner shifts with the
// large-value fraction, reproducing the W(B)/W(C) tension of Fig. 12.
//
// Run with: go run ./examples/policyexplorer [-mix 0.1] [-ops 20000]
package main

import (
	"flag"
	"fmt"
	"log"

	"bandslim"
	"bandslim/internal/workload"
)

func main() {
	var (
		mix = flag.Float64("mix", 0.1, "fraction of 2 KiB values (rest are 8 B)")
		ops = flag.Int("ops", 20000, "operations per policy")
	)
	flag.Parse()
	if *mix < 0 || *mix > 1 {
		log.Fatal("mix must be in [0,1]")
	}

	policies := []struct {
		name   string
		policy bandslim.PackingPolicy
	}{
		{"Block (baseline)", bandslim.Block},
		{"All Packing", bandslim.AllPacking},
		{"Selective", bandslim.SelectivePacking},
		{"Backfill", bandslim.BackfillPacking},
	}

	fmt.Printf("workload: %d PUTs, %.0f%% 8 B / %.0f%% 2 KiB, adaptive transfer\n\n",
		*ops, 100*(1-*mix), 100**mix)
	fmt.Printf("%-18s %12s %12s %14s %12s\n",
		"policy", "NAND pages", "memcpy", "mean resp", "Kops/s")

	for _, p := range policies {
		cfg := bandslim.DefaultConfig()
		cfg.Policy = p.policy
		db, err := bandslim.Open(cfg)
		if err != nil {
			log.Fatal(err)
		}
		gen, err := workload.NewMix("mix", *ops, 11, []workload.SizeRatio{
			{Size: 8, Ratio: 1 - *mix},
			{Size: 2048, Ratio: *mix},
		})
		if err != nil {
			log.Fatal(err)
		}
		filler := workload.NewValueFiller(5)
		var buf []byte
		for {
			op, ok := gen.Next()
			if !ok {
				break
			}
			buf = filler.Fill(buf, op.ValueSize)
			if err := db.Put(op.Key, buf); err != nil {
				log.Fatal(err)
			}
		}
		timing := db.Stats() // steady-state timings, before the drain
		if err := db.Flush(); err != nil {
			log.Fatal(err)
		}
		s := db.Stats()
		fmt.Printf("%-18s %12d %12v %14v %12.1f\n",
			p.name, s.Device.NANDPageWrites, s.Device.MemcpyTime, timing.Host.WriteResp.Mean, timing.Host.ThroughputKops)
		db.Close()
	}

	fmt.Println("\nreading the triangle:")
	fmt.Println("  Block burns a 4 KiB slot per value; All copies every DMA value;")
	fmt.Println("  Selective skips copies but fragments; Backfill fills the gaps.")
	fmt.Println("  Raise -mix toward 0.9 to watch All Packing take the lead (W(C)),")
	fmt.Println("  lower it to see Backfill win the small-value regime (W(B)/W(M)).")
}
