// Metastore: the workload the paper's introduction motivates — a metadata
// store where values average well under a hundred bytes (Meta reports
// production RocksDB values "nearly not reaching a hundred bytes on
// average"). It writes a mixgraph-like stream against both the stock NVMe
// KV-SSD configuration (PRP transfer + block packing) and BandSlim (adaptive
// transfer + backfilling), then compares PCIe traffic, NAND writes, and
// response times — the paper's headline trade.
//
// Run with: go run ./examples/metastore
package main

import (
	"fmt"
	"log"

	"bandslim"
	"bandslim/internal/workload"
)

const ops = 30000

func runStore(name string, method bandslim.TransferMethod, policy bandslim.PackingPolicy) bandslim.Stats {
	cfg := bandslim.DefaultConfig()
	cfg.Method = method
	cfg.Policy = policy
	db, err := bandslim.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	gen := workload.NewWorkloadM(ops, 7) // production-like value sizes
	filler := workload.NewValueFiller(1)
	var buf []byte
	for {
		op, ok := gen.Next()
		if !ok {
			break
		}
		buf = filler.Fill(buf, op.ValueSize)
		if err := db.Put(op.Key, buf); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}
	if err := db.Flush(); err != nil {
		log.Fatal(err)
	}
	return db.Stats()
}

func main() {
	fmt.Printf("writing %d production-like pairs (mixgraph: ~70%% under 35 B)...\n\n", ops)

	stock := runStore("stock", bandslim.Baseline, bandslim.Block)
	slim := runStore("bandslim", bandslim.Adaptive, bandslim.BackfillPacking)

	fmt.Printf("%-22s %15s %15s\n", "", "stock KV-SSD", "BandSlim")
	fmt.Printf("%-22s %15d %15d\n", "PCIe bytes", stock.PCIe.Bytes, slim.PCIe.Bytes)
	fmt.Printf("%-22s %15d %15d\n", "NAND page writes", stock.Device.NANDPageWrites, slim.Device.NANDPageWrites)
	fmt.Printf("%-22s %15v %15v\n", "mean PUT response", stock.Host.WriteResp.Mean, slim.Host.WriteResp.Mean)
	fmt.Printf("%-22s %15.1f %15.1f\n", "throughput (Kops/s)", stock.Host.ThroughputKops, slim.Host.ThroughputKops)

	fmt.Printf("\nPCIe traffic reduction: %.1f%%\n",
		100*(1-float64(slim.PCIe.Bytes)/float64(stock.PCIe.Bytes)))
	fmt.Printf("NAND write reduction:   %.1f%%\n",
		100*(1-float64(slim.Device.NANDPageWrites)/float64(stock.Device.NANDPageWrites)))
	fmt.Printf("speedup:                %.2fx\n",
		slim.Host.ThroughputKops/stock.Host.ThroughputKops)
}
