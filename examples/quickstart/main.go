// Quickstart: open a simulated BandSlim KV-SSD, write and read a few pairs,
// scan a range, and inspect the measurement snapshot.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bandslim"
)

func main() {
	// The default configuration is the paper's headline system: adaptive
	// value transfer plus Selective Packing with Backfilling, on a
	// Cosmos+-like device (4 channels x 8 ways, 16 KiB NAND pages).
	db, err := bandslim.Open(bandslim.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Small values piggyback inside NVMe command fields: one 64-byte
	// command instead of a 4 KiB page-unit DMA.
	if err := db.Put([]byte("user:1"), []byte("alice")); err != nil {
		log.Fatal(err)
	}
	if err := db.Put([]byte("user:2"), []byte("bob")); err != nil {
		log.Fatal(err)
	}
	// Large values go by PRP-based DMA automatically.
	if err := db.Put([]byte("blob:1"), make([]byte, 8192)); err != nil {
		log.Fatal(err)
	}

	v, err := db.Get([]byte("user:1"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user:1 = %q\n", v)

	// Range scans ride the device-side SEEK/NEXT iterator.
	it, err := db.NewIterator([]byte("user:"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("users:")
	for it.Valid() {
		fmt.Printf("  %s = %q\n", it.Key(), it.Value())
		it.Next()
	}
	if it.Err() != nil {
		log.Fatal(it.Err())
	}

	// Every byte that crossed the simulated PCIe link is accounted.
	s := db.Stats()
	fmt.Printf("\nsimulated time: %v\n", db.Now())
	fmt.Printf("PCIe traffic:   %d B (commands %d B + DMA %d B)\n",
		s.PCIe.Bytes, s.PCIe.CommandBytes, s.PCIe.DMABytes)
	fmt.Printf("MMIO doorbells: %d B\n", s.PCIe.MMIOBytes)
	fmt.Printf("mean PUT resp:  %v\n", s.Host.WriteResp.Mean)
	fmt.Printf("transfer picks: inline=%d prp=%d hybrid=%d\n",
		s.Adaptive.Inline, s.Adaptive.PRP, s.Adaptive.Hybrid)
}
