// Churn: a cache-like workload where a bounded working set is overwritten
// indefinitely — total bytes written far exceed the value log's capacity.
// Demonstrates the WiscKey-style vLog garbage collection this library adds
// beyond the paper (whose evaluation never deletes): the circular log keeps
// accepting writes as long as the live set fits, relocating live values and
// trimming dead pages whenever free space runs low.
//
// Run with: go run ./examples/churn
package main

import (
	"fmt"
	"log"

	"bandslim"
	"bandslim/internal/device"
	"bandslim/internal/nand"
	"bandslim/internal/sim"
)

func main() {
	cfg := bandslim.DefaultConfig()
	// A deliberately small device so GC pressure appears in seconds.
	dev := device.DefaultConfig()
	dev.Geometry = nand.Geometry{
		Channels: 2, WaysPerChannel: 2, BlocksPerWay: 16, PagesPerBlock: 32, PageSize: 16 * 1024,
	}
	dev.Buffer.MaxEntries = 8
	dev.LSM.MemTableEntries = 256
	cfg.Device = dev

	db, err := bandslim.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	const (
		liveKeys  = 2048
		valueSize = 3000
	)
	capacity := db.VLogFreeBytes()
	fmt.Printf("vLog capacity ~%d KiB; live set %d keys x %d B = %d KiB\n",
		capacity/1024, liveKeys, valueSize, liveKeys*valueSize/1024)

	rng := sim.NewRNG(99)
	var written int64
	var compactions, relocated int
	value := make([]byte, valueSize)
	for round := 0; written < 4*capacity; round++ {
		k := rng.Intn(liveKeys)
		value[0], value[1] = byte(round), byte(k)
		if err := db.Put([]byte(fmt.Sprintf("key%04d", k)), value); err != nil {
			log.Fatalf("round %d: %v", round, err)
		}
		written += valueSize

		// Maintenance: when free space dips below a watermark, flush the
		// buffers and reclaim the oldest pages.
		if db.VLogFreeBytes() < capacity/8 {
			if err := db.Flush(); err != nil {
				log.Fatal(err)
			}
			n, err := db.CompactVLog(16)
			if err != nil {
				log.Fatalf("compaction: %v", err)
			}
			compactions++
			relocated += n
		}
	}

	s := db.Stats()
	fmt.Printf("\nwrote %d KiB (%.1fx the log capacity) across %d PUTs\n",
		written/1024, float64(written)/float64(capacity), s.Host.Puts)
	fmt.Printf("compactions: %d, values relocated: %d\n", compactions, relocated)
	fmt.Printf("NAND pages written: %d (incl. GC relocation and LSM compaction)\n", s.Device.NANDPageWrites)

	// The live set survived the churn.
	intact := 0
	for k := 0; k < liveKeys; k++ {
		v, err := db.Get([]byte(fmt.Sprintf("key%04d", k)))
		if err == nil && len(v) == valueSize && v[1] == byte(k) {
			intact++
		}
	}
	fmt.Printf("live keys intact after wrap-around: %d/%d\n", intact, liveKeys)
	fmt.Printf("simulated time: %v\n", db.Now())
}
