// Eventlog: a mixed-size ingestion scenario — a stream of telemetry events
// where most records are tiny counters but occasional payload blobs (stack
// traces, snapshots) run to kilobytes, i.e. the paper's Workload B shape.
// It demonstrates the adaptive transfer method switching between inline
// piggybacking, PRP DMA, and hybrid transfer per record, and then reads a
// time-ordered window back through the iterator.
//
// Run with: go run ./examples/eventlog
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"bandslim"
	"bandslim/internal/sim"
)

func main() {
	cfg := bandslim.DefaultConfig()
	db, err := bandslim.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	rng := sim.NewRNG(2024)
	const events = 20000
	fmt.Printf("ingesting %d events (90%% tiny counters, 10%% KB-scale blobs)...\n", events)

	var counters, blobs, oversize int
	for i := 0; i < events; i++ {
		// Keys are big-endian sequence numbers so iteration is
		// time-ordered.
		key := make([]byte, 8)
		binary.BigEndian.PutUint64(key, uint64(i))
		var value []byte
		switch {
		case rng.Float64() < 0.9:
			value = make([]byte, 8+rng.Intn(24)) // counter deltas
			counters++
		case rng.Float64() < 0.9:
			value = make([]byte, 1024+rng.Intn(3072)) // payload blob
			blobs++
		default:
			value = make([]byte, 4096+rng.Intn(128)) // just over a page: hybrid
			oversize++
		}
		value[0] = byte(i)
		if err := db.Put(key, value); err != nil {
			log.Fatal(err)
		}
	}

	s := db.Stats()
	fmt.Printf("ingested: %d counters, %d blobs, %d over-page records\n", counters, blobs, oversize)
	fmt.Printf("transfer picks: inline=%d prp=%d hybrid=%d\n", s.Adaptive.Inline, s.Adaptive.PRP, s.Adaptive.Hybrid)
	fmt.Printf("mean PUT response %v; throughput %.1f Kops/s (simulated)\n", s.Host.WriteResp.Mean, s.Host.ThroughputKops)
	fmt.Printf("PCIe traffic %d B for %d payload-carrying commands\n", s.PCIe.Bytes, s.Host.Commands)

	// Replay a window: events 1000..1009.
	start := make([]byte, 8)
	binary.BigEndian.PutUint64(start, 1000)
	it, err := db.NewIterator(start)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nreplaying events 1000..1009:")
	for i := 0; i < 10 && it.Valid(); i++ {
		seq := binary.BigEndian.Uint64(it.Key())
		fmt.Printf("  event %d: %d bytes\n", seq, len(it.Value()))
		it.Next()
	}
	if it.Err() != nil {
		log.Fatal(it.Err())
	}
}
