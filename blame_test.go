package bandslim

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// blameWorkload drives a mixed workload through a ShardedDB: puts across the
// transfer-method spectrum, batch reads (dense and sparse with misses),
// deletes, and a flush, so the trace holds every command shape the analyzer
// must reconstruct.
func blameWorkload(t *testing.T, s *ShardedDB) {
	t.Helper()
	sizes := []int{16, 512, 2048, 4096 + 32, 8192}
	nkeys := 48
	keys := make([][]byte, nkeys)
	for i := 0; i < nkeys; i++ {
		keys[i] = []byte(fmt.Sprintf("blame%03d", i))
		if err := s.Put(keys[i], bytes.Repeat([]byte{byte(i)}, sizes[i%len(sizes)])); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.GetBatch(keys, nil); err != nil {
		t.Fatal(err)
	}
	// Sparse batch with guaranteed misses: every third key never written.
	sparse := make([][]byte, 12)
	for i := range sparse {
		if i%3 == 2 {
			sparse[i] = []byte(fmt.Sprintf("miss%03d", i))
		} else {
			sparse[i] = keys[i]
		}
	}
	miss := make([]bool, len(sparse))
	if _, err := s.GetBatchSparse(sparse, nil, miss); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := s.Delete(keys[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
}

func openBlameSharded(t *testing.T, depth int) *ShardedDB {
	t.Helper()
	cfg := smallConfig()
	if depth > 1 {
		cfg.Submission = SubmissionConfig{
			QueueDepth:       depth,
			DoorbellBatch:    8,
			CoalesceInterval: SimMicrosecond,
		}
	}
	s, err := OpenSharded(ShardedConfig{
		Shards:        2,
		PerShard:      cfg,
		TraceCapacity: 1 << 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// The acceptance invariant: at queue depths 1 (synchronous), 8, and 32,
// every reconstructed op has non-negative stages summing exactly to its
// end-to-end latency — residual zero, deterministically.
func TestBlameResidualZeroAcrossDepths(t *testing.T) {
	for _, depth := range []int{1, 8, 32} {
		t.Run(fmt.Sprintf("depth=%d", depth), func(t *testing.T) {
			s := openBlameSharded(t, depth)
			blameWorkload(t, s)
			if d := s.TraceDropped(); d != 0 {
				t.Fatalf("ring dropped %d events; grow TraceCapacity", d)
			}
			rep := s.Blame()
			if rep == nil {
				t.Fatal("Blame() = nil with TraceCapacity set")
			}
			if rep.Lossy() || rep.DuplicateEvents != 0 {
				t.Fatalf("clean capture reported lossy: truncated=%d dup=%d",
					rep.TruncatedEvents, rep.DuplicateEvents)
			}
			if len(rep.Ops) == 0 {
				t.Fatal("no ops reconstructed")
			}
			names := map[string]int{}
			for i := range rep.Ops {
				op := &rep.Ops[i]
				names[op.Name]++
				if op.Residual() != 0 {
					t.Fatalf("op %s shard=%d seq=%d: residual %v (e2e %v, stages %v)",
						op.Name, op.Shard, op.Seq, op.Residual(), op.E2E(), op.Stages)
				}
				for st, d := range op.Stages {
					if d < 0 {
						t.Fatalf("op %s shard=%d seq=%d: stage %v negative: %v",
							op.Name, op.Shard, op.Seq, BlameStage(st), d)
					}
				}
				if op.E2E() < 0 {
					t.Fatalf("op %s: negative e2e %v", op.Name, op.E2E())
				}
			}
			for _, want := range []string{"put", "get", "delete"} {
				if names[want] == 0 {
					t.Errorf("no %s ops reconstructed (got %v)", want, names)
				}
			}
			if depth > 1 {
				// A deep queue must show submission-window residency and
				// coalescing somewhere, or the boundary events are broken.
				var window, coalesce SimDuration
				for i := range rep.Ops {
					window += rep.Ops[i].Stages[1]   // window_wait
					coalesce += rep.Ops[i].Stages[6] // coalesce
				}
				// At depth 32 the whole per-shard batch fits the window, so
				// pushes and the flush share one host timestamp and window
				// residency is legitimately zero; only the saturated depth-8
				// queue must show it.
				if depth == 8 && window == 0 {
					t.Error("saturated-queue run attributed zero window_wait time")
				}
				if coalesce == 0 {
					t.Error("depth>1 coalescing run attributed zero coalesce time")
				}
			}
		})
	}
}

// Two identical runs must render byte-identical CSV and breakdown output —
// the property the blame-smoke golden gate enforces.
func TestBlameOutputsDeterministic(t *testing.T) {
	capture := func() ([]byte, []byte) {
		s := openBlameSharded(t, 8)
		blameWorkload(t, s)
		rep := s.Blame()
		var csv, brk bytes.Buffer
		if err := WriteBlameCSV(&csv, rep); err != nil {
			t.Fatal(err)
		}
		if err := WriteBlameBreakdown(&brk, rep, 5); err != nil {
			t.Fatal(err)
		}
		return csv.Bytes(), brk.Bytes()
	}
	csv1, brk1 := capture()
	csv2, brk2 := capture()
	if !bytes.Equal(csv1, csv2) {
		t.Error("identical runs produced different blame CSV")
	}
	if !bytes.Equal(brk1, brk2) {
		t.Error("identical runs produced different blame breakdown")
	}
	if !strings.HasPrefix(string(csv1), "op,stage,count,total_ns,share,mean_ns,p50_ns,p99_ns,max_ns\n") {
		t.Errorf("CSV header mismatch: %q", strings.SplitN(string(csv1), "\n", 2)[0])
	}
}

// A trace written to JSONL and read back must analyze to the identical
// report — the offline bandslim-cli analyze path.
func TestBlameJSONLRoundTrip(t *testing.T) {
	s := openBlameSharded(t, 8)
	blameWorkload(t, s)
	events := s.TraceEvents()
	direct := AnalyzeTrace(events)

	var buf bytes.Buffer
	if err := WriteTraceJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTraceJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("round trip: %d events in, %d out", len(events), len(back))
	}
	viaFile := AnalyzeTrace(back)
	if !reflect.DeepEqual(direct, viaFile) {
		t.Fatal("JSONL round trip changed the attribution report")
	}
}

// A ring too small for the workload evicts events; the analyzer must flag
// the loss loudly and still uphold the residual-zero invariant on whatever
// it can reconstruct.
func TestBlameLossyRingDegradesGracefully(t *testing.T) {
	rec := NewRecorder(256)
	db := openSmall(t, func(c *Config) { c.Tracer = rec })
	defer db.Close()
	for i := 0; i < 128; i++ {
		key := []byte(fmt.Sprintf("lossy%03d", i))
		if err := db.Put(key, bytes.Repeat([]byte{byte(i)}, 512)); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Get(key); err != nil {
			t.Fatal(err)
		}
	}
	if rec.Dropped() == 0 {
		t.Fatal("workload did not overflow the 256-event ring")
	}
	rep := db.Blame()
	if rep == nil {
		t.Fatal("Blame() = nil with recorder attached")
	}
	if !rep.Lossy() {
		t.Fatal("overflowed ring not reported lossy")
	}
	if len(rep.Ops) == 0 {
		t.Fatal("lossy stream reconstructed no ops at all")
	}
	for i := range rep.Ops {
		op := &rep.Ops[i]
		if op.Residual() != 0 {
			t.Fatalf("lossy op %s seq=%d: residual %v", op.Name, op.Seq, op.Residual())
		}
		for st, d := range op.Stages {
			if d < 0 {
				t.Fatalf("lossy op %s seq=%d: stage %v negative", op.Name, op.Seq, BlameStage(st))
			}
		}
	}
}

// Transient transfer faults force synchronous retries; the attribution must
// count them and keep the invariant across multi-attempt ops.
func TestBlameCountsRetries(t *testing.T) {
	rec := NewRecorder(1 << 16)
	db := openSmall(t, func(c *Config) {
		c.Tracer = rec
		c.Faults = &FaultPlan{
			Seed:  7,
			Rules: []FaultRule{{Site: FaultDMAIn, Effect: FaultTransient, Every: 5}},
		}
	})
	defer db.Close()
	for i := 0; i < 48; i++ {
		if err := db.Put([]byte(fmt.Sprintf("rty%03d", i)), bytes.Repeat([]byte{1}, 512)); err != nil {
			t.Fatal(err)
		}
	}
	rep := db.Blame()
	retries, multi := 0, 0
	for i := range rep.Ops {
		op := &rep.Ops[i]
		retries += op.Retries
		if op.Commands > 1 {
			multi++
		}
		if op.Residual() != 0 {
			t.Fatalf("faulted op %s seq=%d: residual %v", op.Name, op.Seq, op.Residual())
		}
	}
	if retries == 0 {
		t.Error("every-5th transient fault produced zero attributed retries")
	}
	if multi == 0 {
		t.Error("no op claimed more than one command despite retried attempts")
	}
}

// Merging a stream with itself duplicates every (Shard, Seq); the analyzer
// must skip the copies and report them, not double-count ops.
func TestMergeTracesDuplicateShardSeq(t *testing.T) {
	s := openBlameSharded(t, 1)
	blameWorkload(t, s)
	events := s.TraceEvents()
	clean := AnalyzeTrace(events)

	doubled := MergeTraces(events, events)
	if len(doubled) != 2*len(events) {
		t.Fatalf("merge of stream with itself: %d events, want %d", len(doubled), 2*len(events))
	}
	rep := AnalyzeTrace(doubled)
	if rep.DuplicateEvents != int64(len(events)) {
		t.Errorf("DuplicateEvents = %d, want %d", rep.DuplicateEvents, len(events))
	}
	if len(rep.Ops) != len(clean.Ops) {
		t.Errorf("duplicated stream reconstructed %d ops, clean stream %d", len(rep.Ops), len(clean.Ops))
	}
	for i := range rep.Ops {
		if rep.Ops[i].Residual() != 0 {
			t.Fatalf("op %d residual nonzero after dedup", i)
		}
	}
}

// Trace-ring health must surface through Stats and Inspect, and the blame
// families must appear in the exposition only when a recorder is attached.
func TestTraceStatsAndPrometheusSurface(t *testing.T) {
	s := openBlameSharded(t, 8)
	blameWorkload(t, s)
	st := s.Stats()
	if st.Trace.Buffered == 0 {
		t.Error("Stats().Trace.Buffered = 0 on a traced run")
	}
	if st.Trace.Dropped != 0 {
		t.Errorf("Stats().Trace.Dropped = %d, want 0", st.Trace.Dropped)
	}
	var buf bytes.Buffer
	if err := s.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"bandslim_trace_dropped_total",
		"bandslim_blame_ops_total",
		"bandslim_blame_e2e_ns",
		`bandslim_blame_nand_ns_bucket{op="put",`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("traced exposition missing %s", want)
		}
	}

	// Untraced DB: no blame families at all (the golden-smoke guarantee).
	db := openSmall(t, nil)
	defer db.Close()
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := db.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "blame_") || strings.Contains(buf.String(), "trace_dropped") {
		t.Error("untraced exposition leaked blame/trace families")
	}
	if db.Blame() != nil {
		t.Error("Blame() non-nil without a recorder")
	}
	insp := db.Inspect()
	if insp.Trace.Buffered != 0 || insp.Trace.Dropped != 0 {
		t.Error("untraced Inspect reports nonzero trace stats")
	}
}

// Satellite: WriteServerPrometheus must be byte-deterministic for equal
// inputs — two identical runs of a serving process diff clean.
func TestWriteServerPrometheusDeterministic(t *testing.T) {
	stats := ServerStats{
		Accepted: 12, Active: 3, Ping: 7, Set: 100, Get: 250, Del: 4,
		MSet: 9, MGet: 31, Scan: 2, Info: 1, Other: 5,
		Errors: 6, Stalls: 2, BytesIn: 123456, BytesOut: 654321,
	}
	var a, b bytes.Buffer
	if err := WriteServerPrometheus(&a, stats); err != nil {
		t.Fatal(err)
	}
	if err := WriteServerPrometheus(&b, stats); err != nil {
		t.Fatal(err)
	}
	if a.Len() == 0 {
		t.Fatal("empty server exposition")
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical ServerStats produced different exposition")
	}
}

// TopK and the critical-path digest must agree with the raw report.
func TestBlameTopKAndCriticalPaths(t *testing.T) {
	s := openBlameSharded(t, 8)
	blameWorkload(t, s)
	rep := s.Blame()
	top := BlameTopK(rep, 5)
	if len(top) != 5 {
		t.Fatalf("TopK(5) returned %d ops", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].E2E() > top[i-1].E2E() {
			t.Fatal("TopK not sorted by e2e descending")
		}
	}
	cps := BlameCriticalPaths(rep)
	if len(cps) == 0 {
		t.Fatal("no critical paths from a populated report")
	}
	for _, cp := range cps {
		if cp.TailCount == 0 {
			t.Errorf("%s: empty p99 tail", cp.Op)
		}
		if cp.Share < 0 || cp.Share > 1 {
			t.Errorf("%s: share %f out of range", cp.Op, cp.Share)
		}
	}
}
