package bandslim

import (
	"fmt"

	"bandslim/internal/driver"
	"bandslim/internal/metrics"
	"bandslim/internal/pcie"
	"bandslim/internal/shard"
	"bandslim/internal/sim"
	"bandslim/internal/spans"
	"bandslim/internal/timeseries"
)

// LatencySummary digests one response-time distribution: the numbers a
// snapshot can carry without exposing the live histogram.
type LatencySummary struct {
	Count int64
	Mean  sim.Duration
	P50   sim.Duration
	P99   sim.Duration
	Max   sim.Duration
}

// latencySummary digests a histogram into the public summary type.
func latencySummary(h *metrics.Histogram) LatencySummary {
	s := h.Summary()
	return LatencySummary{
		Count: s.Count,
		Mean:  sim.Duration(s.Mean),
		P50:   sim.Duration(s.P50),
		P99:   sim.Duration(s.P99),
		Max:   sim.Duration(s.Max),
	}
}

// HostStats are the metrics observed at the driver: operation counts and
// simulated response times.
type HostStats struct {
	Puts, Gets, Deletes int64
	Commands            int64 // NVMe commands issued
	WriteResp           LatencySummary
	ReadResp            LatencySummary
	Elapsed             sim.Duration // simulated time since open
	ThroughputKops      float64      // PUTs per simulated second / 1000
}

// PCIeStats is the interconnect byte ledger (Fig. 3, 8, 9, 10c, 10d).
type PCIeStats struct {
	Bytes           int64 // command fetches + DMA payload (the paper's "PCIe traffic")
	TotalBytes      int64 // + completions and doorbells, as PCM counts TLPs
	DMABytes        int64
	CommandBytes    int64
	MMIOBytes       int64 // doorbell traffic
	CompletionBytes int64
}

// DeviceStats are the in-device metrics (Fig. 4, 11, 12).
type DeviceStats struct {
	NANDPageWrites int64 // total NAND programs, incl. LSM flush/compaction/GC
	NANDPageReads  int64
	BlockErases    int64
	VLogFlushes    int64 // value-log page writes only
	ForcedFlushes  int64
	BackfillJumps  int64
	MemcpyTime     sim.Duration // cumulative device copy time
	FlushWaitTime  sim.Duration // cumulative request time blocked on NAND flushes
	Memcpys        int64
	BufferUtil     float64 // payload bytes / flushed NAND bytes in the vLog
	GCWrites       int64
	Compactions    int64
}

// AdaptiveStats count the adaptive method's per-value transfer decisions.
type AdaptiveStats struct {
	Inline, PRP, Hybrid int64
}

// FaultStats count injected faults and the recovery work they triggered.
// All-zero unless Config.Faults armed the injector.
type FaultStats struct {
	NandProgramFaults int64 // injected NAND program failures
	NandReadFaults    int64 // injected NAND read failures
	NandEraseFaults   int64 // injected NAND erase failures
	TransferFaults    int64 // injected DMA transfer errors
	BadBlocks         int64 // NAND blocks retired by the FTL
	FTLRetries        int64 // FTL program redirect-retries after media faults
	PowerCuts         int64 // power cuts taken by the device
	Mounts            int64 // recovery mounts performed
	ReplayedRecords   int64 // journal records replayed at mount
	Retries           int64 // host re-submissions of retryable completions
	RetriesExhausted  int64 // commands that failed every retry
	Recoveries        int64 // host-initiated Recover calls
}

// CacheStats count the tiered read path's activity: device-DRAM value and
// SSTable-page tiers, the strict invalidation protocol, and the host-side
// negative cache. All-zero unless Config.Cache arms a tier.
type CacheStats struct {
	Hits          int64 // value-tier hits (reads served from device DRAM)
	Misses        int64 // value-tier misses (reads that walked the LSM)
	PageHits      int64 // SSTable-page-tier hits
	PageMisses    int64 // SSTable-page-tier misses
	Evictions     int64 // entries evicted across both device tiers
	Invalidations int64 // entries dropped by the strict invalidation protocol
	NegHits       int64 // Gets short-circuited host-side by the negative cache
	NegLearned    int64 // keys admitted to the recent-miss ring
}

// ServerStats count the network front-end's activity: connections, commands
// by opcode, backpressure stalls, and wire bytes. All-zero unless a serving
// process (internal/server) is attached; the simulation core never writes
// these.
type ServerStats struct {
	Accepted int64 // connections accepted since start
	Active   int64 // connections currently open

	// Commands dispatched, by opcode. Other counts unrecognized commands
	// (each also answered with a RESP error).
	Ping, Set, Get, Del, MSet, MGet, Scan, Info, Shutdown, Other int64

	Errors   int64 // RESP error replies written
	Stalls   int64 // backpressure stalls: reader blocked on a full in-flight window
	BytesIn  int64 // bytes read off client sockets
	BytesOut int64 // bytes written to client sockets
}

// TraceStats describe the trace ring's health: how many events it holds and
// how many it evicted. All-zero unless a ring-buffered Recorder is attached
// (Config.Tracer or ShardedConfig.TraceCapacity). A nonzero Dropped means
// span reconstruction over the buffer sees a truncated stream.
type TraceStats struct {
	Buffered int64 // events currently held by the ring
	Dropped  int64 // events evicted after the ring filled
}

// Stats is a point-in-time snapshot of everything the paper measures,
// grouped by where it is measured.
type Stats struct {
	Host     HostStats
	PCIe     PCIeStats
	Device   DeviceStats
	Adaptive AdaptiveStats
	Cache    CacheStats
	Faults   FaultStats
	Server   ServerStats
	Trace    TraceStats
}

// Stats snapshots the current counters.
func (db *DB) Stats() Stats {
	db.mu.Lock()
	defer db.mu.Unlock()
	s := stackStats(db.st)
	if rec, ok := db.cfg.Tracer.(*Recorder); ok && rec != nil {
		s.Trace = TraceStats{Buffered: int64(rec.Len()), Dropped: rec.Dropped()}
	}
	return s
}

// stackStats flattens one stack's counters into a Stats; shared by DB.Stats
// and the per-shard snapshots ShardedDB.Stats aggregates. The caller must
// hold whatever serializes access to the stack (the DB mutex, or the shard
// worker goroutine).
func stackStats(st *shard.Stack) Stats {
	ds := st.Drv.Stats()
	fs := st.Dev.Flash().Stats()
	bs := st.Dev.Buffer().Stats()
	es := st.Dev.Engine().Stats()
	elapsed := st.Clock.Now().Sub(0)
	s := Stats{
		Host: HostStats{
			Puts:      ds.Puts.Value(),
			Gets:      ds.Gets.Value(),
			Deletes:   ds.Deletes.Value(),
			Commands:  ds.CommandsIssued.Value(),
			WriteResp: latencySummary(ds.WriteResponse),
			ReadResp:  latencySummary(ds.ReadResponse),
			Elapsed:   elapsed,
		},
		PCIe: PCIeStats{
			Bytes:           st.Link.HostToDeviceBytes(),
			TotalBytes:      st.Link.TotalBytes(),
			DMABytes:        st.Link.Traf.DMABytes.Value(),
			CommandBytes:    st.Link.Traf.CommandBytes.Value(),
			MMIOBytes:       st.Link.MMIOTrafficBytes(),
			CompletionBytes: st.Link.Traf.CompletionBytes.Value(),
		},
		Device: DeviceStats{
			NANDPageWrites: fs.PageWrites.Value(),
			NANDPageReads:  fs.PageReads.Value(),
			BlockErases:    fs.BlockErases.Value(),
			VLogFlushes:    bs.Flushes.Value(),
			ForcedFlushes:  bs.ForcedFlushes.Value(),
			BackfillJumps:  bs.BackfillJumps.Value(),
			MemcpyTime:     sim.Duration(es.MemcpyTime.Value()),
			FlushWaitTime:  sim.Duration(bs.FlushWaitTime.Value()),
			Memcpys:        es.Memcpys.Value(),
			BufferUtil:     st.Dev.Buffer().Utilization(),
			GCWrites:       st.Dev.FTL().Stats().GCWrites.Value(),
			Compactions:    st.Dev.Tree().Stats().Compactions.Value(),
		},
		Adaptive: AdaptiveStats{
			Inline: ds.InlineChosen.Value(),
			PRP:    ds.PRPChosen.Value(),
			Hybrid: ds.HybridChosen.Value(),
		},
		Cache: CacheStats{
			Hits:          st.Dev.Stats().CacheHits.Value(),
			Misses:        st.Dev.Stats().CacheMisses.Value(),
			PageHits:      st.Dev.Stats().PageCacheHits.Value(),
			PageMisses:    st.Dev.Stats().PageCacheMisses.Value(),
			Evictions:     st.Dev.Stats().CacheEvictions.Value(),
			Invalidations: st.Dev.Stats().CacheInvalidations.Value(),
			NegHits:       ds.NegativeHits.Value(),
			NegLearned:    ds.NegativeLearned.Value(),
		},
		Faults: FaultStats{
			NandProgramFaults: fs.ProgramFaults.Value(),
			NandReadFaults:    fs.ReadFaults.Value(),
			NandEraseFaults:   fs.EraseFaults.Value(),
			TransferFaults:    es.TransferFaults.Value(),
			BadBlocks:         st.Dev.FTL().Stats().BadBlocks.Value(),
			FTLRetries:        st.Dev.FTL().Stats().ProgramFaults.Value(),
			PowerCuts:         st.Dev.Stats().PowerCuts.Value(),
			Mounts:            st.Dev.Stats().Mounts.Value(),
			ReplayedRecords:   st.Dev.Stats().ReplayedRecords.Value(),
			Retries:           ds.Retries.Value(),
			RetriesExhausted:  ds.RetriesExhausted.Value(),
			Recoveries:        ds.Recoveries.Value(),
		},
	}
	if elapsed > 0 && s.Host.Puts > 0 {
		s.Host.ThroughputKops = float64(s.Host.Puts) / elapsed.Seconds() / 1000
	}
	return s
}

// counter and gauge shorthand for the seriesDescs table.
func counter(name, help string) timeseries.Desc {
	return timeseries.Desc{Name: name, Kind: timeseries.KindCounter, Agg: timeseries.AggSum, Help: help}
}

func gauge(name string, agg timeseries.Agg, help string) timeseries.Desc {
	return timeseries.Desc{Name: name, Kind: timeseries.KindGauge, Agg: agg, Help: help}
}

// seriesDescs declares every scalar metric the sampler records, in column
// order; snapshotStack builds Values in exactly this order.
var seriesDescs = []timeseries.Desc{
	counter("host_puts", "PUT operations completed at the driver."),
	counter("host_gets", "GET operations completed at the driver."),
	counter("host_deletes", "DELETE operations completed at the driver."),
	counter("host_commands", "NVMe commands issued."),
	counter("pcie_bytes", "PCIe command-fetch plus DMA payload bytes (the paper's PCIe traffic)."),
	counter("pcie_total_bytes", "All PCIe bytes including completions and doorbells, as PCM counts TLPs."),
	counter("pcie_dma_bytes", "PCIe DMA payload bytes."),
	counter("pcie_command_bytes", "PCIe command-fetch bytes."),
	counter("pcie_mmio_bytes", "PCIe doorbell MMIO bytes."),
	counter("pcie_completion_bytes", "PCIe completion bytes."),
	counter("nand_page_writes", "NAND pages programmed, incl. LSM flush/compaction/GC."),
	counter("nand_page_reads", "NAND pages read."),
	counter("nand_block_erases", "NAND blocks erased."),
	counter("vlog_flushes", "Value-log page writes."),
	counter("vlog_forced_flushes", "Forced (early) page-buffer flushes."),
	counter("backfill_jumps", "Write-pointer backfill jumps in the page buffer."),
	counter("device_memcpys", "In-device memcpy operations."),
	counter("device_memcpy_time_ns", "Cumulative in-device copy time, simulated ns."),
	counter("device_flush_wait_time_ns", "Cumulative request time blocked on NAND flushes, simulated ns."),
	counter("vlog_gc_writes", "NAND page writes caused by vLog garbage collection."),
	counter("lsm_compactions", "LSM-tree compactions run."),
	counter("adaptive_inline", "Adaptive method: values sent inline."),
	counter("adaptive_prp", "Adaptive method: values sent via PRP DMA."),
	counter("adaptive_hybrid", "Adaptive method: values sent hybrid."),
	gauge("sim_time_ns", timeseries.AggMax, "Simulated time of the snapshot, ns."),
	gauge("buffer_util", timeseries.AggMean, "Payload bytes per flushed NAND byte in the vLog page buffer."),
	gauge("buffer_wp", timeseries.AggSum, "Page-buffer write pointer (vLog byte offset)."),
	gauge("buffer_frontier", timeseries.AggSum, "Page-buffer placement frontier (vLog byte offset)."),
	gauge("buffer_open_pages", timeseries.AggSum, "Open page-buffer entries."),
	gauge("vlog_free_bytes", timeseries.AggSum, "Value-log space left before compaction."),
	gauge("flash_max_wear", timeseries.AggMax, "Highest per-block erase count in the flash array."),
	gauge("wire_utilization", timeseries.AggMean, "Fraction of simulated time the PCIe wire was busy."),
}

// faultDescs extend seriesDescs when Config.Faults arms the injector. They
// are appended only then, so fault-free runs keep byte-identical exporter
// output (the golden-smoke guarantee).
var faultDescs = []timeseries.Desc{
	counter("fault_nand_program", "Injected NAND program failures."),
	counter("fault_nand_read", "Injected NAND read failures."),
	counter("fault_nand_erase", "Injected NAND erase failures."),
	counter("fault_dma_transfer", "Injected DMA transfer errors."),
	counter("ftl_bad_blocks", "NAND blocks retired by the FTL."),
	counter("ftl_program_retries", "FTL program redirect-retries after media faults."),
	counter("device_power_cuts", "Power cuts taken by the device."),
	counter("device_mounts", "Recovery mounts performed."),
	counter("device_replayed_records", "Journal records replayed at mount."),
	counter("host_retries", "Host re-submissions of retryable completions."),
	counter("host_retries_exhausted", "Commands that failed every retry."),
	counter("host_recoveries", "Host-initiated recoveries."),
}

// cacheDescs extend seriesDescs when Config.Cache arms a read-cache tier.
// Like faultDescs they are appended only then, so cache-free runs keep
// byte-identical exporter output (the golden-smoke guarantee).
var cacheDescs = []timeseries.Desc{
	counter("cache_value_hits", "Device value-tier cache hits (reads served from device DRAM)."),
	counter("cache_value_misses", "Device value-tier cache misses (reads that walked the LSM)."),
	counter("cache_page_hits", "Device SSTable-page-tier cache hits."),
	counter("cache_page_misses", "Device SSTable-page-tier cache misses."),
	counter("cache_evictions", "Entries evicted across both device cache tiers."),
	counter("cache_invalidations", "Cache entries dropped by the strict invalidation protocol."),
	counter("cache_negative_hits", "GETs short-circuited host-side by the negative cache."),
	counter("cache_negative_learned", "Keys admitted to the negative cache's recent-miss ring."),
}

// serverDescs declare the network front-end's scalar metrics. Like
// faultDescs they ride a separate exposition (WriteServerPrometheus, written
// only by a serving process), so embedded and simulation-only runs keep
// byte-identical exporter output.
var serverDescs = []timeseries.Desc{
	counter("server_conns_accepted", "Client connections accepted."),
	gauge("server_conns_active", timeseries.AggSum, "Client connections currently open."),
	counter("server_cmd_ping", "PING commands served."),
	counter("server_cmd_set", "SET commands served."),
	counter("server_cmd_get", "GET commands served."),
	counter("server_cmd_del", "DEL commands served."),
	counter("server_cmd_mset", "MSET commands served."),
	counter("server_cmd_mget", "MGET commands served."),
	counter("server_cmd_scan", "SCAN commands served."),
	counter("server_cmd_info", "INFO commands served."),
	counter("server_cmd_shutdown", "SHUTDOWN commands served."),
	counter("server_cmd_other", "Unrecognized commands (answered with an error)."),
	counter("server_errors", "RESP error replies written."),
	counter("server_backpressure_stalls", "Reader stalls on a full in-flight window."),
	counter("server_bytes_in", "Bytes read off client sockets."),
	counter("server_bytes_out", "Bytes written to client sockets."),
}

// serverSnapshotValues flattens a ServerStats in serverDescs order.
func serverSnapshotValues(s ServerStats) []float64 {
	return []float64{
		float64(s.Accepted),
		float64(s.Active),
		float64(s.Ping),
		float64(s.Set),
		float64(s.Get),
		float64(s.Del),
		float64(s.MSet),
		float64(s.MGet),
		float64(s.Scan),
		float64(s.Info),
		float64(s.Shutdown),
		float64(s.Other),
		float64(s.Errors),
		float64(s.Stalls),
		float64(s.BytesIn),
		float64(s.BytesOut),
	}
}

// traceDescs declare the trace-ring health and latency-attribution scalar
// metrics. They ride a separate exposition section appended only when a
// ring-buffered Recorder is attached, so untraced runs (including the golden
// smoke) keep byte-identical exporter output.
var traceDescs = []timeseries.Desc{
	gauge("trace_buffered", timeseries.AggSum, "Trace events currently held by the ring recorder."),
	counter("trace_dropped", "Trace events evicted after the ring filled (attribution over the buffer is truncated)."),
	counter("blame_ops", "Operations reconstructed by latency attribution."),
	counter("blame_unclaimed_commands", "Completed commands no operation claimed (flushes, scans, missed keys)."),
	counter("blame_incomplete_commands", "Commands in flight at snapshot time or lost to power cuts."),
	counter("blame_truncated_events", "Events the trace Seq numbering proves missing."),
}

// blameHistHelp supplies HELP text for the per-stage blame families.
var blameHistHelp = func() map[string]string {
	m := map[string]string{
		"blame_e2e_ns": "Reconstructed end-to-end op latency by op kind, simulated ns.",
	}
	for s := spans.Stage(0); s < spans.NumStages; s++ {
		m["blame_"+s.String()+"_ns"] = "Attributed " + s.String() + " stage time per op, by op kind, simulated ns."
	}
	return m
}()

// blameSnapshot flattens a span report plus ring health into the exposition
// snapshot traceDescs describes: scalars in desc order, then one histogram
// per (stage family, op kind), op kinds in first-observation order.
func blameSnapshot(buffered, dropped int64, rep *spans.Report) timeseries.Snapshot {
	agg := spans.Summarize(rep)
	values := []float64{
		float64(buffered),
		float64(dropped),
		float64(len(rep.Ops)),
		float64(rep.Unclaimed),
		float64(rep.Incomplete),
		float64(rep.TruncatedEvents),
	}
	var hists []timeseries.Hist
	for _, name := range agg.E2E.Names() {
		hists = append(hists, timeseries.Hist{
			Key: timeseries.HistKey{Name: "blame_e2e_ns", Label: "op", Value: name},
			H:   agg.E2E.Get(name),
		})
	}
	for s := spans.Stage(0); s < spans.NumStages; s++ {
		fam := "blame_" + s.String() + "_ns"
		for _, name := range agg.Stage[s].Names() {
			hists = append(hists, timeseries.Hist{
				Key: timeseries.HistKey{Name: fam, Label: "op", Value: name},
				H:   agg.Stage[s].Get(name),
			})
		}
	}
	return timeseries.Snapshot{Values: values, Hists: hists}
}

// descsFor returns the sampler/exporter column set: the base descriptors,
// plus the fault columns when the injector is armed and the cache columns
// when a read-cache tier is configured.
func descsFor(faults, cached bool) []timeseries.Desc {
	if !faults && !cached {
		return seriesDescs
	}
	out := make([]timeseries.Desc, 0, len(seriesDescs)+len(faultDescs)+len(cacheDescs))
	out = append(out, seriesDescs...)
	if faults {
		out = append(out, faultDescs...)
	}
	if cached {
		out = append(out, cacheDescs...)
	}
	return out
}

// histHelp supplies Prometheus HELP text per histogram family.
var histHelp = map[string]string{
	"write_response_ns":      "Simulated PUT response time, ns.",
	"read_response_ns":       "Simulated GET response time, ns.",
	"op_round_trip_ns":       "NVMe command round-trip time by opcode, ns.",
	"put_method_response_ns": "PUT response time by chosen transfer method, ns.",
}

// snapshotStack reads one stack's full metric state as a timeseries
// snapshot: the flattened Stats tree, the Inspect-style gauges, and clones
// of every latency histogram. Values are built in seriesDescs order. The
// caller must hold whatever serializes access to the stack.
func snapshotStack(st *shard.Stack, faults, cached bool) timeseries.Snapshot {
	s := stackStats(st)
	buf := st.Dev.Buffer()
	now := st.Clock.Now()
	values := []float64{
		float64(s.Host.Puts),
		float64(s.Host.Gets),
		float64(s.Host.Deletes),
		float64(s.Host.Commands),
		float64(s.PCIe.Bytes),
		float64(s.PCIe.TotalBytes),
		float64(s.PCIe.DMABytes),
		float64(s.PCIe.CommandBytes),
		float64(s.PCIe.MMIOBytes),
		float64(s.PCIe.CompletionBytes),
		float64(s.Device.NANDPageWrites),
		float64(s.Device.NANDPageReads),
		float64(s.Device.BlockErases),
		float64(s.Device.VLogFlushes),
		float64(s.Device.ForcedFlushes),
		float64(s.Device.BackfillJumps),
		float64(s.Device.Memcpys),
		float64(s.Device.MemcpyTime),
		float64(s.Device.FlushWaitTime),
		float64(s.Device.GCWrites),
		float64(s.Device.Compactions),
		float64(s.Adaptive.Inline),
		float64(s.Adaptive.PRP),
		float64(s.Adaptive.Hybrid),
		float64(now),
		s.Device.BufferUtil,
		float64(buf.WP()),
		float64(buf.Frontier()),
		float64(buf.OpenPages()),
		float64(st.Dev.VLog().FreeBytes()),
		float64(st.Dev.Flash().MaxWear()),
		st.Link.WireUtilization(now),
	}
	if faults {
		values = append(values,
			float64(s.Faults.NandProgramFaults),
			float64(s.Faults.NandReadFaults),
			float64(s.Faults.NandEraseFaults),
			float64(s.Faults.TransferFaults),
			float64(s.Faults.BadBlocks),
			float64(s.Faults.FTLRetries),
			float64(s.Faults.PowerCuts),
			float64(s.Faults.Mounts),
			float64(s.Faults.ReplayedRecords),
			float64(s.Faults.Retries),
			float64(s.Faults.RetriesExhausted),
			float64(s.Faults.Recoveries),
		)
	}
	if cached {
		values = append(values,
			float64(s.Cache.Hits),
			float64(s.Cache.Misses),
			float64(s.Cache.PageHits),
			float64(s.Cache.PageMisses),
			float64(s.Cache.Evictions),
			float64(s.Cache.Invalidations),
			float64(s.Cache.NegHits),
			float64(s.Cache.NegLearned),
		)
	}
	ds := st.Drv.Stats()
	hists := []timeseries.Hist{
		{Key: timeseries.HistKey{Name: "write_response_ns"}, H: ds.WriteResponse.Clone()},
		{Key: timeseries.HistKey{Name: "read_response_ns"}, H: ds.ReadResponse.Clone()},
	}
	for _, name := range ds.PerOp.Names() {
		hists = append(hists, timeseries.Hist{
			Key: timeseries.HistKey{Name: "op_round_trip_ns", Label: "op", Value: name},
			H:   ds.PerOp.Get(name).Clone(),
		})
	}
	for _, name := range ds.PerMethod.Names() {
		hists = append(hists, timeseries.Hist{
			Key: timeseries.HistKey{Name: "put_method_response_ns", Label: "method", Value: name},
			H:   ds.PerMethod.Get(name).Clone(),
		})
	}
	return timeseries.Snapshot{Values: values, Hists: hists}
}

// TrafficAmplification reports PCIe bytes per payload byte written — the
// TAF of Fig. 3(b) when every PUT carries size payload bytes.
func (s Stats) TrafficAmplification(payloadBytes int64) float64 {
	if payloadBytes <= 0 {
		return 0
	}
	return float64(s.PCIe.Bytes) / float64(payloadBytes)
}

// WriteAmplification reports NAND bytes programmed per payload byte — the
// WAF of Fig. 4(b).
func (s Stats) WriteAmplification(payloadBytes int64, nandPageSize int) float64 {
	if payloadBytes <= 0 {
		return 0
	}
	return float64(s.Device.NANDPageWrites) * float64(nandPageSize) / float64(payloadBytes)
}

// String renders a compact human-readable summary.
func (s Stats) String() string {
	return fmt.Sprintf(
		"puts=%d gets=%d cmds=%d wresp=%v pcie=%s mmio=%s nandw=%d memcpy=%v thr=%.1fKops",
		s.Host.Puts, s.Host.Gets, s.Host.Commands, s.Host.WriteResp.Mean,
		metrics.FormatBytes(s.PCIe.Bytes), metrics.FormatBytes(s.PCIe.MMIOBytes),
		s.Device.NANDPageWrites, s.Device.MemcpyTime, s.Host.ThroughputKops)
}

// CalibrateThresholds performs the §3.2 exploratory runs: it probes PUT
// response times across value sizes on throwaway DBs (NAND disabled, as the
// paper's transfer benchmarks do) and derives Threshold1 (where piggybacking
// stops beating PRP) and Threshold2 (the largest over-page tail for which
// hybrid beats PRP). Alpha and Beta default to 1.
func CalibrateThresholds(perSize int) (Thresholds, error) {
	if perSize < 1 {
		return Thresholds{}, fmt.Errorf("bandslim: perSize must be >= 1")
	}
	probe := func(m TransferMethod, size int) (sim.Duration, error) {
		cfg := DefaultConfig()
		cfg.Method = m
		cfg.DisableNAND = true
		db, err := Open(cfg)
		if err != nil {
			return 0, err
		}
		filler := make([]byte, size)
		key := []byte{0, 0, 0, 0}
		for i := 0; i < perSize; i++ {
			key[0], key[1] = byte(i>>8), byte(i)
			if err := db.Put(key, filler); err != nil {
				return 0, err
			}
		}
		return sim.Duration(db.st.Drv.Stats().WriteResponse.Mean()), nil
	}
	thr := driver.DefaultThresholds()
	// Threshold1: largest probed size where piggybacking is no slower.
	thr.Threshold1 = 35
	for _, size := range []int{4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096} {
		pig, err := probe(Piggyback, size)
		if err != nil {
			return thr, err
		}
		prp, err := probe(Baseline, size)
		if err != nil {
			return thr, err
		}
		if pig <= prp {
			thr.Threshold1 = size
		}
	}
	// Threshold2: largest over-page tail where hybrid is no slower.
	thr.Threshold2 = 0
	for _, tail := range []int{4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4095} {
		hyb, err := probe(Hybrid, pcie.MemoryPageSize+tail)
		if err != nil {
			return thr, err
		}
		prp, err := probe(Baseline, pcie.MemoryPageSize+tail)
		if err != nil {
			return thr, err
		}
		if hyb <= prp {
			thr.Threshold2 = tail
		}
	}
	if thr.Threshold2 == 0 {
		thr.Threshold2 = driver.DefaultThresholds().Threshold2
	}
	return thr, nil
}
