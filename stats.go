package bandslim

import (
	"fmt"

	"bandslim/internal/driver"
	"bandslim/internal/metrics"
	"bandslim/internal/pcie"
	"bandslim/internal/shard"
	"bandslim/internal/sim"
)

// LatencySummary digests one response-time distribution: the numbers a
// snapshot can carry without exposing the live histogram.
type LatencySummary struct {
	Count int64
	Mean  sim.Duration
	P50   sim.Duration
	P99   sim.Duration
	Max   sim.Duration
}

// latencySummary digests a histogram into the public summary type.
func latencySummary(h *metrics.Histogram) LatencySummary {
	s := h.Summary()
	return LatencySummary{
		Count: s.Count,
		Mean:  sim.Duration(s.Mean),
		P50:   sim.Duration(s.P50),
		P99:   sim.Duration(s.P99),
		Max:   sim.Duration(s.Max),
	}
}

// HostStats are the metrics observed at the driver: operation counts and
// simulated response times.
type HostStats struct {
	Puts, Gets, Deletes int64
	Commands            int64 // NVMe commands issued
	WriteResp           LatencySummary
	ReadResp            LatencySummary
	Elapsed             sim.Duration // simulated time since open
	ThroughputKops      float64      // PUTs per simulated second / 1000
}

// PCIeStats is the interconnect byte ledger (Fig. 3, 8, 9, 10c, 10d).
type PCIeStats struct {
	Bytes           int64 // command fetches + DMA payload (the paper's "PCIe traffic")
	TotalBytes      int64 // + completions and doorbells, as PCM counts TLPs
	DMABytes        int64
	CommandBytes    int64
	MMIOBytes       int64 // doorbell traffic
	CompletionBytes int64
}

// DeviceStats are the in-device metrics (Fig. 4, 11, 12).
type DeviceStats struct {
	NANDPageWrites int64 // total NAND programs, incl. LSM flush/compaction/GC
	NANDPageReads  int64
	BlockErases    int64
	VLogFlushes    int64 // value-log page writes only
	ForcedFlushes  int64
	BackfillJumps  int64
	MemcpyTime     sim.Duration // cumulative device copy time
	FlushWaitTime  sim.Duration // cumulative request time blocked on NAND flushes
	Memcpys        int64
	BufferUtil     float64 // payload bytes / flushed NAND bytes in the vLog
	GCWrites       int64
	Compactions    int64
}

// AdaptiveStats count the adaptive method's per-value transfer decisions.
type AdaptiveStats struct {
	Inline, PRP, Hybrid int64
}

// Stats is a point-in-time snapshot of everything the paper measures,
// grouped by where it is measured.
type Stats struct {
	Host     HostStats
	PCIe     PCIeStats
	Device   DeviceStats
	Adaptive AdaptiveStats
}

// Stats snapshots the current counters.
func (db *DB) Stats() Stats {
	db.mu.Lock()
	defer db.mu.Unlock()
	return stackStats(db.st)
}

// stackStats flattens one stack's counters into a Stats; shared by DB.Stats
// and the per-shard snapshots ShardedDB.Stats aggregates. The caller must
// hold whatever serializes access to the stack (the DB mutex, or the shard
// worker goroutine).
func stackStats(st *shard.Stack) Stats {
	ds := st.Drv.Stats()
	fs := st.Dev.Flash().Stats()
	bs := st.Dev.Buffer().Stats()
	es := st.Dev.Engine().Stats()
	elapsed := st.Clock.Now().Sub(0)
	s := Stats{
		Host: HostStats{
			Puts:      ds.Puts.Value(),
			Gets:      ds.Gets.Value(),
			Deletes:   ds.Deletes.Value(),
			Commands:  ds.CommandsIssued.Value(),
			WriteResp: latencySummary(ds.WriteResponse),
			ReadResp:  latencySummary(ds.ReadResponse),
			Elapsed:   elapsed,
		},
		PCIe: PCIeStats{
			Bytes:           st.Link.HostToDeviceBytes(),
			TotalBytes:      st.Link.TotalBytes(),
			DMABytes:        st.Link.Traf.DMABytes.Value(),
			CommandBytes:    st.Link.Traf.CommandBytes.Value(),
			MMIOBytes:       st.Link.MMIOTrafficBytes(),
			CompletionBytes: st.Link.Traf.CompletionBytes.Value(),
		},
		Device: DeviceStats{
			NANDPageWrites: fs.PageWrites.Value(),
			NANDPageReads:  fs.PageReads.Value(),
			BlockErases:    fs.BlockErases.Value(),
			VLogFlushes:    bs.Flushes.Value(),
			ForcedFlushes:  bs.ForcedFlushes.Value(),
			BackfillJumps:  bs.BackfillJumps.Value(),
			MemcpyTime:     sim.Duration(es.MemcpyTime.Value()),
			FlushWaitTime:  sim.Duration(bs.FlushWaitTime.Value()),
			Memcpys:        es.Memcpys.Value(),
			BufferUtil:     st.Dev.Buffer().Utilization(),
			GCWrites:       st.Dev.FTL().Stats().GCWrites.Value(),
			Compactions:    st.Dev.Tree().Stats().Compactions.Value(),
		},
		Adaptive: AdaptiveStats{
			Inline: ds.InlineChosen.Value(),
			PRP:    ds.PRPChosen.Value(),
			Hybrid: ds.HybridChosen.Value(),
		},
	}
	if elapsed > 0 && s.Host.Puts > 0 {
		s.Host.ThroughputKops = float64(s.Host.Puts) / elapsed.Seconds() / 1000
	}
	return s
}

// TrafficAmplification reports PCIe bytes per payload byte written — the
// TAF of Fig. 3(b) when every PUT carries size payload bytes.
func (s Stats) TrafficAmplification(payloadBytes int64) float64 {
	if payloadBytes <= 0 {
		return 0
	}
	return float64(s.PCIe.Bytes) / float64(payloadBytes)
}

// WriteAmplification reports NAND bytes programmed per payload byte — the
// WAF of Fig. 4(b).
func (s Stats) WriteAmplification(payloadBytes int64, nandPageSize int) float64 {
	if payloadBytes <= 0 {
		return 0
	}
	return float64(s.Device.NANDPageWrites) * float64(nandPageSize) / float64(payloadBytes)
}

// String renders a compact human-readable summary.
func (s Stats) String() string {
	return fmt.Sprintf(
		"puts=%d gets=%d cmds=%d wresp=%v pcie=%s mmio=%s nandw=%d memcpy=%v thr=%.1fKops",
		s.Host.Puts, s.Host.Gets, s.Host.Commands, s.Host.WriteResp.Mean,
		metrics.FormatBytes(s.PCIe.Bytes), metrics.FormatBytes(s.PCIe.MMIOBytes),
		s.Device.NANDPageWrites, s.Device.MemcpyTime, s.Host.ThroughputKops)
}

// CalibrateThresholds performs the §3.2 exploratory runs: it probes PUT
// response times across value sizes on throwaway DBs (NAND disabled, as the
// paper's transfer benchmarks do) and derives Threshold1 (where piggybacking
// stops beating PRP) and Threshold2 (the largest over-page tail for which
// hybrid beats PRP). Alpha and Beta default to 1.
func CalibrateThresholds(perSize int) (Thresholds, error) {
	if perSize < 1 {
		return Thresholds{}, fmt.Errorf("bandslim: perSize must be >= 1")
	}
	probe := func(m TransferMethod, size int) (sim.Duration, error) {
		cfg := DefaultConfig()
		cfg.Method = m
		cfg.DisableNAND = true
		db, err := Open(cfg)
		if err != nil {
			return 0, err
		}
		filler := make([]byte, size)
		key := []byte{0, 0, 0, 0}
		for i := 0; i < perSize; i++ {
			key[0], key[1] = byte(i>>8), byte(i)
			if err := db.Put(key, filler); err != nil {
				return 0, err
			}
		}
		return sim.Duration(db.st.Drv.Stats().WriteResponse.Mean()), nil
	}
	thr := driver.DefaultThresholds()
	// Threshold1: largest probed size where piggybacking is no slower.
	thr.Threshold1 = 35
	for _, size := range []int{4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096} {
		pig, err := probe(Piggyback, size)
		if err != nil {
			return thr, err
		}
		prp, err := probe(Baseline, size)
		if err != nil {
			return thr, err
		}
		if pig <= prp {
			thr.Threshold1 = size
		}
	}
	// Threshold2: largest over-page tail where hybrid is no slower.
	thr.Threshold2 = 0
	for _, tail := range []int{4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4095} {
		hyb, err := probe(Hybrid, pcie.MemoryPageSize+tail)
		if err != nil {
			return thr, err
		}
		prp, err := probe(Baseline, pcie.MemoryPageSize+tail)
		if err != nil {
			return thr, err
		}
		if hyb <= prp {
			thr.Threshold2 = tail
		}
	}
	if thr.Threshold2 == 0 {
		thr.Threshold2 = driver.DefaultThresholds().Threshold2
	}
	return thr, nil
}
