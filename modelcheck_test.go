package bandslim_test

// Model-based differential test harness for the fault-injection and
// crash-recovery subsystem. Each sequence drives a DB (or ShardedDB) and an
// in-memory reference model through the same seeded random operation stream —
// with and without a generated fault plan — and checks the two agree:
//
//   - An acknowledged write is never lost: once Put/PutBatch returns nil, the
//     exact value must be readable, across any number of power cuts and
//     recoveries.
//   - An unacknowledged write is atomic: after an errored mutation the key
//     holds either its complete old value or its complete new value (or is
//     absent, for deletes) — never a partial or corrupt one.
//   - Reads never invent data: every successful Get must return a value the
//     model considers possible.

import (
	"bytes"
	"fmt"
	"testing"

	"bandslim"
	"bandslim/internal/sim"
)

// mcOps is the operation count per model-check sequence.
const mcOps = 40

// mcKV is the driver-facing surface the harness exercises; DB and ShardedDB
// both satisfy it (plus Recover, asserted below).
type mcKV interface {
	Put(key, value []byte) error
	GetInto(key, dst []byte) ([]byte, error)
	PutBatch(keys, values [][]byte) error
	GetBatchSparse(keys, vals [][]byte, miss []bool) ([][]byte, error)
	Delete(key []byte) error
	Flush() error
	Close() error
}

type mcRecoverable interface {
	mcKV
	Recover() error
}

var (
	_ mcRecoverable = (*bandslim.DB)(nil)
	_ mcRecoverable = (*bandslim.ShardedDB)(nil)
)

// mcModel is the reference state machine. sure maps keys to the exact value
// an acknowledged operation left behind (nil = acknowledged absent, i.e. an
// acked delete or never written). candidates holds keys whose last mutation
// errored: any complete value in the set (nil = absent) is legal.
type mcModel struct {
	sure       map[string][]byte
	candidates map[string][][]byte
}

func newMCModel() *mcModel {
	return &mcModel{sure: map[string][]byte{}, candidates: map[string][][]byte{}}
}

// possible reports the values the model currently allows for key.
func (m *mcModel) possible(key string) [][]byte {
	if c, ok := m.candidates[key]; ok {
		return c
	}
	return [][]byte{m.sure[key]}
}

// acked records a successful mutation: the key's state is again certain.
func (m *mcModel) acked(key string, value []byte) {
	m.sure[key] = value
	delete(m.candidates, key)
}

// failed records an errored mutation: every previously possible value plus
// the attempted one is now legal.
func (m *mcModel) failed(key string, attempted []byte) {
	c := append([][]byte(nil), m.possible(key)...)
	m.candidates[key] = append(c, attempted)
	delete(m.sure, key)
}

// matchesAny reports whether got (nil = absent) is one of the allowed values.
func matchesAny(got []byte, allowed [][]byte) bool {
	for _, v := range allowed {
		if got == nil && v == nil {
			return true
		}
		if got != nil && v != nil && bytes.Equal(got, v) {
			return true
		}
	}
	return false
}

// mcValue builds a deterministic value for (seed, op) — a repeating pattern
// whose every byte depends on both, so partial or mixed values cannot pass
// the equality checks.
func mcValue(rng *sim.RNG) []byte {
	n := 1 + rng.Intn(700)
	if rng.Intn(10) == 0 {
		n = 4096 + rng.Intn(8192) // over-page: exercises DMA and hybrid paths
	}
	v := make([]byte, n)
	x := rng.Uint64()
	for i := range v {
		v[i] = byte(x >> (8 * (uint(i) % 8)))
		if i%8 == 7 {
			x = x*0x9E3779B97F4A7C15 + 1
		}
	}
	return v
}

func mcKey(rng *sim.RNG) string { return fmt.Sprintf("k%02d", rng.Intn(24)) }

// tinyFaultConfig builds a small, fast device so a thousand sequences stay
// cheap: 16 MiB of flash and a 48-entry MemTable so flushes, compactions and
// journal resets all happen inside a 40-op sequence.
func tinyFaultConfig(plan *bandslim.FaultPlan) bandslim.Config {
	cfg := bandslim.DefaultConfig()
	cfg.Device.Geometry.Channels = 2
	cfg.Device.Geometry.WaysPerChannel = 2
	cfg.Device.Geometry.BlocksPerWay = 16
	cfg.Device.Geometry.PagesPerBlock = 16
	cfg.Device.Buffer.MaxEntries = 8
	cfg.Device.LSM.MemTableEntries = 48
	cfg.Device.LSM.L0CompactionTrigger = 2
	cfg.Faults = plan
	return cfg
}

// mcSubmission derives the NVMe submission policy for a sequence: seeds
// rotate through queue depths {1, 4, 8}, so a third of the sequences run the
// paper's synchronous testbed (zero value) and the rest push reads through
// the async submission window, with doorbell batching and completion
// coalescing at the deepest setting.
func mcSubmission(seed uint64) bandslim.SubmissionConfig {
	switch seed % 3 {
	case 1:
		return bandslim.SubmissionConfig{QueueDepth: 4, DoorbellBatch: 2}
	case 2:
		return bandslim.SubmissionConfig{
			QueueDepth:       8,
			DoorbellBatch:    4,
			CoalesceInterval: bandslim.SimMicrosecond,
		}
	default:
		return bandslim.SubmissionConfig{}
	}
}

// mcCache derives the read-cache configuration for a sequence: seeds rotate
// through {off, LRU value+page tiers, 2Q value tier}, decorrelated from the
// mcSubmission rotation (seed/3 vs seed), so every (depth, cache) pair
// appears. The on-configs also arm the negative cache — the model must not
// be able to tell any of them apart from the cache-free stack.
func mcCache(seed uint64) bandslim.CacheConfig {
	switch (seed / 3) % 3 {
	case 1:
		return bandslim.CacheConfig{
			ValueBytes:      64 << 10,
			Pages:           8,
			Policy:          bandslim.CacheLRU,
			NegativeEntries: 32,
		}
	case 2:
		return bandslim.CacheConfig{
			ValueBytes:      16 << 10,
			Policy:          bandslim.Cache2Q,
			NegativeEntries: 16,
		}
	default:
		return bandslim.CacheConfig{}
	}
}

// mcPlan derives a fault plan from the sequence seed: transient transfer
// errors (ride-out-able by the retry policy), media program failures (block
// retirement), and one or two power cuts.
func mcPlan(seed uint64) *bandslim.FaultPlan {
	rng := sim.NewRNG(seed ^ 0xFA017)
	p := &bandslim.FaultPlan{Seed: seed}
	if rng.Intn(2) == 0 {
		p.Rules = append(p.Rules, bandslim.FaultRule{
			Site: bandslim.FaultDMAIn, Effect: bandslim.FaultTransient, Every: 7 + rng.Intn(20),
		})
	}
	if rng.Intn(2) == 0 {
		p.Rules = append(p.Rules, bandslim.FaultRule{
			Site: bandslim.FaultNandProgram, Effect: bandslim.FaultMedia, Nth: 1 + rng.Intn(30),
		})
	}
	switch rng.Intn(3) {
	case 0:
		p.Rules = append(p.Rules, bandslim.FaultRule{
			Site: bandslim.FaultExec, Effect: bandslim.FaultPowerCut, Nth: 5 + rng.Intn(50),
		})
	case 1:
		p.Rules = append(p.Rules, bandslim.FaultRule{
			Site: bandslim.FaultExec, Effect: bandslim.FaultPowerCut, Every: 30 + rng.Intn(40),
		})
	}
	if len(p.Rules) == 0 {
		p.Rules = append(p.Rules, bandslim.FaultRule{
			Site: bandslim.FaultDMAIn, Effect: bandslim.FaultTransient, Nth: 3,
		})
	}
	return p
}

// mcIter is the common surface of bandslim.Iterator and ShardedIterator.
type mcIter interface {
	Valid() bool
	Key() []byte
	Value() []byte
	Err() error
	Next()
}

// mcScan opens an iterator and checks every scanned pair within the model's
// keyspace: a returned value must be one the model allows, and a key the
// model holds certainly-absent must not appear. Iteration errors under an
// active fault plan abandon the scan (the snapshot died with the fault).
func mcScan(t *testing.T, db mcRecoverable, model *mcModel, start string, faulty bool) {
	t.Helper()
	var (
		it  mcIter
		err error
	)
	switch d := db.(type) {
	case *bandslim.DB:
		it, err = d.NewIterator([]byte(start))
	case *bandslim.ShardedDB:
		it, err = d.NewIterator([]byte(start))
	default:
		t.Fatalf("mcScan: unknown db type %T", db)
	}
	if err != nil {
		if bandslim.IsPowerLoss(err) {
			mcRecover(t, db)
			return
		}
		if faulty {
			return
		}
		t.Fatalf("scan open: %v", err)
	}
	for n := 0; it.Valid() && n < 8; n++ {
		key := string(it.Key())
		if len(key) == 3 && key[0] == 'k' { // one of ours
			if !matchesAny(it.Value(), model.possible(key)) {
				t.Fatalf("scan: key %q holds impossible value (%d bytes)", key, len(it.Value()))
			}
		}
		it.Next()
	}
	if err := it.Err(); err != nil {
		if bandslim.IsPowerLoss(err) {
			mcRecover(t, db)
		} else if !faulty {
			t.Fatalf("scan: %v", err)
		}
	}
}

// mcRecover brings the stack back after a power-loss completion. A plan can
// cut power again during replay, so recovery itself may need a few attempts.
func mcRecover(t *testing.T, db mcRecoverable) {
	t.Helper()
	for attempt := 0; ; attempt++ {
		err := db.Recover()
		if err == nil {
			return
		}
		if !bandslim.IsPowerLoss(err) || attempt > 8 {
			t.Fatalf("recover: %v", err)
		}
	}
}

// mcGet reads a key, recovering across power cuts and tolerating one-shot
// injected media read faults. Returns nil for an absent key.
func mcGet(t *testing.T, db mcRecoverable, key string, scratch []byte) ([]byte, []byte) {
	t.Helper()
	for attempt := 0; ; attempt++ {
		v, err := db.GetInto([]byte(key), scratch[:0])
		switch {
		case err == nil:
			return v, v
		case bandslim.IsNotFound(err):
			return nil, scratch
		case bandslim.IsPowerLoss(err):
			mcRecover(t, db)
		case (bandslim.IsMedia(err) || bandslim.IsTransient(err)) && attempt < 4:
			// Nth-armed read faults fire once; the next attempt passes.
		default:
			t.Fatalf("get %q: %v", key, err)
		}
		if attempt > 8 {
			t.Fatalf("get %q: no progress after %d attempts", key, attempt)
		}
	}
}

// runModelSequence drives one seeded sequence against db and the model, then
// verifies every key.
func runModelSequence(t *testing.T, db mcRecoverable, seed uint64, faulty bool) {
	t.Helper()
	model := newMCModel()
	rng := sim.NewRNG(seed)
	var scratch []byte

	mutate := func(key string, attempted []byte, err error) {
		if err == nil {
			model.acked(key, attempted)
			return
		}
		model.failed(key, attempted)
		if bandslim.IsPowerLoss(err) {
			mcRecover(t, db)
		} else if !faulty {
			t.Fatalf("fault-free sequence errored: %v", err)
		}
	}

	for op := 0; op < mcOps; op++ {
		switch r := rng.Intn(100); {
		case r < 45: // put
			key := mcKey(rng)
			value := mcValue(rng)
			mutate(key, value, db.Put([]byte(key), value))
		case r < 60: // batch put
			n := 2 + rng.Intn(4)
			keys := make([][]byte, n)
			vals := make([][]byte, n)
			for i := range keys {
				keys[i] = []byte(mcKey(rng))
				vals[i] = mcValue(rng)
			}
			err := db.PutBatch(keys, vals)
			for i := range keys {
				mutate(string(keys[i]), vals[i], err)
			}
		case r < 68: // get, checked against the model mid-sequence
			key := mcKey(rng)
			var got []byte
			got, scratch = mcGet(t, db, key, scratch)
			if !matchesAny(got, model.possible(key)) {
				t.Fatalf("seed %d op %d: get %q returned impossible value (%d bytes)", seed, op, key, len(got))
			}
		case r < 75: // batch get: reads pumped through the submission window
			n := 2 + rng.Intn(4)
			keys := make([][]byte, n)
			for i := range keys {
				keys[i] = []byte(mcKey(rng))
			}
			miss := make([]bool, n)
			vals, err := db.GetBatchSparse(keys, make([][]byte, n), miss)
			if err != nil {
				if bandslim.IsPowerLoss(err) {
					mcRecover(t, db)
				} else if !faulty {
					t.Fatalf("seed %d op %d: batch get: %v", seed, op, err)
				}
				break
			}
			for i := range keys {
				got := vals[i]
				if miss[i] {
					got = nil
				}
				if !matchesAny(got, model.possible(string(keys[i]))) {
					t.Fatalf("seed %d op %d: batch get %q returned impossible value (%d bytes)", seed, op, keys[i], len(got))
				}
			}
		case r < 80: // scan from a random start
			mcScan(t, db, model, mcKey(rng), faulty)
		case r < 90: // delete
			key := mcKey(rng)
			mutate(key, nil, db.Delete([]byte(key)))
		default: // flush
			if err := db.Flush(); err != nil {
				if bandslim.IsPowerLoss(err) {
					mcRecover(t, db)
				} else if !faulty {
					t.Fatalf("flush: %v", err)
				}
			}
		}
	}

	// Final verification: acked writes are never lost; errored mutations
	// left a complete old or new value.
	for i := 0; i < 24; i++ {
		key := fmt.Sprintf("k%02d", i)
		var got []byte
		got, scratch = mcGet(t, db, key, scratch)
		if want, ok := model.sure[key]; ok {
			if got == nil && want != nil {
				t.Fatalf("seed %d: acked write %q lost", seed, key)
			}
			if !matchesAny(got, [][]byte{want}) {
				t.Fatalf("seed %d: key %q holds wrong value (%d bytes, want %d)", seed, key, len(got), len(want))
			}
		} else if !matchesAny(got, model.possible(key)) {
			t.Fatalf("seed %d: uncertain key %q holds impossible value (%d bytes)", seed, key, len(got))
		}
	}
}

// TestModelCheckDB runs 700 differential sequences against single-device
// DBs: even seeds fault-free, odd seeds under a seed-derived fault plan.
func TestModelCheckDB(t *testing.T) {
	sequences := 700
	if testing.Short() {
		sequences = 60
	}
	for seed := uint64(1); seed <= uint64(sequences); seed++ {
		faulty := seed%2 == 1
		var plan *bandslim.FaultPlan
		if faulty {
			plan = mcPlan(seed)
		}
		cfg := tinyFaultConfig(plan)
		cfg.Submission = mcSubmission(seed)
		cfg.Cache = mcCache(seed)
		db, err := bandslim.Open(cfg)
		if err != nil {
			t.Fatalf("seed %d: open: %v", seed, err)
		}
		runModelSequence(t, db, seed, faulty)
		if err := db.Close(); err != nil && !bandslim.IsPowerLoss(err) {
			t.Fatalf("seed %d: close: %v", seed, err)
		}
	}
}

// TestModelCheckSharded runs 350 differential sequences against 2-shard
// ShardedDBs. Shards derive independent fault streams from the same plan
// (salted by shard id), so cuts and recoveries interleave across devices.
func TestModelCheckSharded(t *testing.T) {
	sequences := 350
	if testing.Short() {
		sequences = 30
	}
	for seed := uint64(1); seed <= uint64(sequences); seed++ {
		faulty := seed%2 == 1
		var plan *bandslim.FaultPlan
		if faulty {
			plan = mcPlan(seed ^ 0x51A4DED)
		}
		per := tinyFaultConfig(plan)
		per.Submission = mcSubmission(seed)
		per.Cache = mcCache(seed)
		cfg := bandslim.ShardedConfig{Shards: 2, PerShard: per}
		db, err := bandslim.OpenSharded(cfg)
		if err != nil {
			t.Fatalf("seed %d: open: %v", seed, err)
		}
		runModelSequence(t, db, seed, faulty)
		if err := db.Close(); err != nil && !bandslim.IsPowerLoss(err) {
			t.Fatalf("seed %d: close: %v", seed, err)
		}
	}
}
