// Package bandslim is a full-system simulation of BandSlim (Park et al.,
// ICPP 2024): a bandwidth- and space-efficient key-value SSD that escapes
// block-oriented I/O with fine-grained inline value transfer over NVMe
// commands and selective value packing with backfilling inside the NAND page
// buffer.
//
// The package exposes the whole stack — host driver, NVMe queues, PCIe link
// model, DMA engine, NAND page buffer with all four packing policies,
// KV-separated LSM-tree, vLog, FTL, and NAND flash array — behind a simple
// key-value API:
//
//	db, err := bandslim.Open(bandslim.DefaultConfig())
//	if err != nil { ... }
//	defer db.Close()
//	err = db.Put([]byte("key"), []byte("value"))
//	v, err := db.Get([]byte("key"))
//
// Everything runs on a deterministic virtual clock; db.Stats() exposes the
// byte-exact PCIe traffic ledger, NAND write counts, and simulated response
// times the paper's evaluation reports.
package bandslim

import (
	"errors"
	"fmt"
	"sync"

	"bandslim/internal/cache"
	"bandslim/internal/device"
	"bandslim/internal/driver"
	"bandslim/internal/metrics"
	"bandslim/internal/nand"
	"bandslim/internal/pagebuf"
	"bandslim/internal/shard"
	"bandslim/internal/sim"
	"bandslim/internal/timeseries"
)

// TransferMethod selects how values travel from host to device (§3.2).
type TransferMethod = driver.Method

// Transfer methods.
const (
	// Baseline transfers every value via PRP page-unit DMA, as stock NVMe
	// KV-SSDs do.
	Baseline = driver.MethodBaseline
	// Piggyback ships every value inline in NVMe command fields.
	Piggyback = driver.MethodPiggyback
	// Hybrid DMAs the page-aligned head and piggybacks the tail.
	Hybrid = driver.MethodHybrid
	// Adaptive switches between the three based on calibrated thresholds.
	Adaptive = driver.MethodAdaptive
	// SGL transfers every value via Scatter-Gather List — the §2.5
	// comparator: exact bytes on the wire, but a setup cost that only
	// amortizes above ~32 KB.
	SGL = driver.MethodSGL
)

// PackingPolicy selects the in-device NAND page buffer policy (§3.3).
type PackingPolicy = pagebuf.Policy

// Packing policies.
const (
	// Block is the baseline: page-unit packing along 4 KiB boundaries.
	Block = pagebuf.PolicyBlock
	// AllPacking packs every value densely at the write pointer.
	AllPacking = pagebuf.PolicyAll
	// SelectivePacking packs only piggybacked values; DMA values stay
	// page-aligned.
	SelectivePacking = pagebuf.PolicySelective
	// BackfillPacking is Selective Packing with Backfilling — the paper's
	// headline policy.
	BackfillPacking = pagebuf.PolicyBackfill
)

// Thresholds re-exports the adaptive transfer calibration.
type Thresholds = driver.Thresholds

// SubmissionConfig is the driver's complete submission policy: the
// in-flight window depth behind the batch-read paths, doorbell batching
// (which also enables burst submission of multi-command PUTs), and
// interrupt-coalescing-style completion sweeps. The zero value reproduces
// the paper's synchronous passthrough byte-identically.
type SubmissionConfig = driver.SubmissionConfig

// PipelinedSubmission returns the policy the deprecated Config.Pipelined
// toggle maps to: depth-1 burst mode (multi-command PUTs submit as one
// doorbell burst; reads keep the synchronous passthrough).
func PipelinedSubmission() SubmissionConfig { return driver.PipelinedSubmission() }

// ConfigError reports a submission-policy field that failed validation;
// Open, OpenSharded, and Tune return it wrapped — match with errors.As.
type ConfigError = driver.ConfigError

// Tuning is a snapshot update for a live DB's runtime knobs, with per-field
// presence semantics: nil fields keep their current value, set fields apply
// together after validation. See DB.Tune / ShardedDB.Tune.
type Tuning = driver.Tuning

// CacheConfig sizes the tiered read path: the simulated device-DRAM read
// cache (a value tier for vLog entries and a page tier for SSTable pages,
// both behind a pluggable eviction policy) plus the host-side negative cache
// that short-circuits known-missing keys before any NVMe command is built.
// The zero value disables every tier and keeps the simulation byte-identical
// to a cache-free build.
type CacheConfig = cache.Config

// CachePolicy selects the device read cache's eviction policy.
type CachePolicy = cache.Kind

// Cache eviction policies.
const (
	// CacheLRU evicts the least-recently-used entry.
	CacheLRU = cache.LRU
	// CacheCLOCK approximates LRU with a one-bit clock hand.
	CacheCLOCK = cache.CLOCK
	// Cache2Q is the scan-resistant two-queue policy: entries earn a place
	// in the hot queue only on a second touch.
	Cache2Q = cache.TwoQ
)

// ParseCachePolicy parses a policy name ("lru", "clock", "2q").
func ParseCachePolicy(s string) (CachePolicy, error) { return cache.ParseKind(s) }

// ServingCacheConfig returns the serving-profile cache sizing: a 4 MiB LRU
// value tier, a 64-page SSTable tier, and a 1024-entry negative cache — the
// operating point bandslim-server's --cache flag enables.
func ServingCacheConfig() CacheConfig { return cache.ServingProfile() }

// SimTime is a point on the simulated clock (nanoseconds since open); DB.Now
// and MetricSample.T use it.
type SimTime = sim.Time

// SimDuration is a span of simulated time in nanoseconds — the unit of
// Config.MetricsInterval and the latency fields of Stats.
type SimDuration = sim.Duration

// Simulated-time units for building SimDuration values without reaching
// into internal packages, e.g. cfg.MetricsInterval = 100 * bandslim.SimMicrosecond.
const (
	SimNanosecond  = sim.Nanosecond
	SimMicrosecond = sim.Microsecond
	SimMillisecond = sim.Millisecond
	SimSecond      = sim.Second
)

// Config assembles a DB.
type Config struct {
	// Method is the host-side transfer strategy.
	Method TransferMethod
	// Policy is the device-side packing policy.
	Policy PackingPolicy
	// Thresholds calibrate the Adaptive method. A fully zero-valued
	// Thresholds means "use DefaultThresholds()"; to deliberately run with
	// Threshold1 = 0 (never piggyback), set any other field non-zero, e.g.
	// Thresholds{Alpha: 1, Beta: 1}.
	Thresholds Thresholds
	// Device tunes the simulated hardware. Leave zero to use the default
	// Cosmos+-like platform.
	Device device.Config
	// DisableNAND turns off persistence, isolating transfer behaviour as
	// the paper's §4.2 experiments do.
	DisableNAND bool
	// Submission is the host's submission policy: window depth (QueueDepth
	// >= 2 keeps that many commands in flight on the batch-read paths),
	// doorbell batching, and completion coalescing. The zero value is the
	// paper's synchronous passthrough — one command per round trip — with
	// timings byte-identical to earlier releases. Validated at Open; a bad
	// field fails with a wrapped ConfigError.
	Submission SubmissionConfig
	// Pipelined is the deprecated burst-submission toggle. When Submission
	// is zero, Pipelined: true maps to PipelinedSubmission() (depth-1 burst
	// mode); when Submission is set, Pipelined is ignored. Use Submission.
	Pipelined bool
	// Tracer, when non-nil, receives every command-level event the stack
	// emits: driver submissions, doorbell MMIO, command fetches, SQ/CQ ring
	// transitions, DMA transfers, page-buffer placements and flushes, and
	// NAND operations, all stamped with simulated time. Use NewRecorder for
	// an in-memory ring buffer. Nil (the default) keeps tracing at zero
	// cost: every emission site is behind a single nil check.
	Tracer Tracer
	// MetricsInterval, when > 0, enables the simulated-time metrics
	// sampler: the full Stats tree, buffer/vLog gauges, and the latency
	// histograms are snapshotted every MetricsInterval simulated
	// nanoseconds. Read the result with DB.Series / ShardedDB.Series and
	// export it with WriteSeriesCSV; WritePrometheus works with or without
	// the sampler. Zero (the default) disables sampling entirely.
	MetricsInterval sim.Duration
	// Faults, when non-nil, arms the deterministic fault injector: the plan's
	// rules fire NAND media errors, transient transfer errors, and power cuts
	// at seed-determined points (see ParseFaultPlan). Nil — the default —
	// leaves every fault path disabled at zero cost, and the simulation's
	// outputs are byte-identical to a build without the subsystem.
	Faults *FaultPlan
	// Retry tunes the driver's response to transient (retryable) completions.
	// The zero value means DefaultRetryPolicy; a negative MaxRetries disables
	// retries entirely.
	Retry RetryPolicy
	// Cache arms the tiered read path: device-DRAM value/page caches plus
	// the host-side negative cache. The zero value (the default) disables
	// every tier at zero cost — timings, allocations, and exporter output
	// stay byte-identical to a cache-free run. Validated at Open. A non-zero
	// Cache here overrides Device.Cache.
	Cache CacheConfig
}

// DefaultConfig returns the paper's headline configuration: adaptive
// transfer with Selective Packing with Backfilling on a Cosmos+-like device.
func DefaultConfig() Config {
	return Config{
		Method:     Adaptive,
		Policy:     BackfillPacking,
		Thresholds: driver.DefaultThresholds(),
		Device:     device.DefaultConfig(),
	}
}

// DB is one simulated host + KV-SSD pair. All methods are safe for
// concurrent use; operations serialize on an internal mutex, mirroring the
// single submission queue of the paper's passthrough path (the simulated
// clock is shared, so concurrency does not change simulated timings).
type DB struct {
	mu      sync.Mutex
	cfg     Config
	st      *shard.Stack
	sampler *timeseries.Sampler // nil unless Config.MetricsInterval > 0
	// batch backs PutBatch, created lazily under mu.
	batch *driver.Batcher
	// winH/winI are the windowed batch-read FIFO scratch (StartGet handles
	// and their key indices), guarded by mu and reused across batches.
	winH, winI []int
	closed     bool
}

// stackOptions normalizes a Config into the per-stack options shared by the
// single-DB and sharded front-ends, so both build byte-identical stacks.
func stackOptions(cfg Config) shard.Options {
	dcfg := cfg.Device
	if dcfg.Geometry == (nand.Geometry{}) {
		dcfg = device.DefaultConfig()
	}
	dcfg.Buffer.Policy = cfg.Policy
	dcfg.NANDEnabled = !cfg.DisableNAND
	thr := cfg.Thresholds
	if thr.IsZero() {
		thr = driver.DefaultThresholds()
	}
	sub := cfg.Submission
	if sub == (SubmissionConfig{}) && cfg.Pipelined {
		sub = driver.PipelinedSubmission()
	}
	if cfg.Cache != (CacheConfig{}) {
		dcfg.Cache = cfg.Cache
	}
	return shard.Options{
		Device:     dcfg,
		Method:     cfg.Method,
		Thresholds: thr,
		Submission: sub,
		Tracer:     cfg.Tracer,
		Faults:     cfg.Faults,
		Retry:      cfg.Retry,
	}
}

// cacheEnabled reports whether the normalized config arms any read-cache
// tier — the switch that adds the cache_* exporter columns. Cache-free runs
// keep byte-identical exposition (the golden-smoke guarantee).
func cacheEnabled(cfg Config) bool {
	return stackOptions(cfg).Device.Cache.Enabled()
}

// Open builds the full stack.
func Open(cfg Config) (*DB, error) {
	st, err := shard.NewStack(stackOptions(cfg))
	if err != nil {
		return nil, fmt.Errorf("bandslim: %w", err)
	}
	db := &DB{cfg: cfg, st: st}
	if cfg.MetricsInterval > 0 {
		faults := cfg.Faults != nil
		cached := cacheEnabled(cfg)
		db.sampler = timeseries.NewSampler(cfg.MetricsInterval, descsFor(faults, cached),
			func() timeseries.Snapshot { return snapshotStack(st, faults, cached) })
	}
	return db, nil
}

// poll records any simulated-time metric samples due since the last
// operation; callers hold db.mu. A single comparison when sampling is off
// or no boundary was crossed.
func (db *DB) poll() {
	if db.sampler != nil {
		db.sampler.Poll(db.st.Clock.Now())
	}
}

// Error sentinels. Both are plain errors.New values: match them with
// errors.Is, including through wrapped returns.
var (
	// ErrClosed is returned by operations on a closed DB or ShardedDB.
	ErrClosed = errors.New("bandslim: DB is closed")
	// ErrIterDone reports an exhausted device-side iterator, surfaced by
	// the raw SEEK/NEXT path; the Iterator types translate it into
	// Valid() == false.
	ErrIterDone = driver.ErrIterDone
)

// Put stores a key-value pair. Keys are 1–16 bytes.
func (db *DB) Put(key, value []byte) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	err := db.st.Drv.Put(key, value)
	db.poll()
	return err
}

// Get fetches the value for key. The returned slice is a view into the
// driver's reusable read buffer: it stays valid until this DB's next
// operation and must not be modified. Callers that retain the value past the
// next operation — or run operations concurrently from other goroutines —
// should use GetInto, which copies before the lock is released.
func (db *DB) Get(key []byte) ([]byte, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	v, err := db.st.Drv.Get(key)
	db.poll()
	return v, err
}

// GetInto fetches the value for key and copies it into dst (grown as
// needed), returning the filled slice. Unlike Get, the result is caller-
// owned: it remains valid across later operations and under concurrent use.
// Pass a reused buffer to make steady-state reads allocation-free.
func (db *DB) GetInto(key, dst []byte) ([]byte, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	v, err := db.st.Drv.Get(key)
	if err == nil {
		dst = append(dst[:0], v...)
	}
	db.poll()
	if err != nil {
		return nil, err
	}
	return dst, nil
}

// PutBatch writes the pairs through the host-side batcher as bulk
// OpKVBatchWrite commands and flushes, so every record is durable when it
// returns. One bulk command amortizes per-command round trips across up to
// shard.DefaultBatchOps records — the high-throughput ingest path.
func (db *DB) PutBatch(keys, values [][]byte) error {
	if len(keys) != len(values) {
		return fmt.Errorf("bandslim: PutBatch got %d keys, %d values", len(keys), len(values))
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if db.batch == nil {
		b, err := db.st.Drv.NewBatcher(shard.DefaultBatchOps)
		if err != nil {
			return err
		}
		db.batch = b
	}
	for i := range keys {
		if err := db.batch.Put(keys[i], values[i]); err != nil {
			db.poll()
			return err
		}
	}
	err := db.batch.Flush()
	db.poll()
	return err
}

// GetBatch resolves every key, copying each value into the matching vals
// lane (vals[i], grown as needed; a nil vals allocates one). The filled
// slice-of-slices is returned; values are caller-owned copies. On error,
// lanes past the failing key are left untouched.
func (db *DB) GetBatch(keys, vals [][]byte) ([][]byte, error) {
	if vals == nil {
		vals = make([][]byte, len(keys))
	}
	if len(vals) != len(keys) {
		return nil, fmt.Errorf("bandslim: GetBatch got %d keys, %d value lanes", len(keys), len(vals))
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	if db.st.Drv.WindowDepth() >= 2 {
		if _, err := db.getBatchWindowed(keys, vals, nil); err != nil {
			return nil, err
		}
		return vals, nil
	}
	for i := range keys {
		v, err := db.st.Drv.Get(keys[i])
		if err != nil {
			db.poll()
			return nil, err
		}
		vals[i] = append(vals[i][:0], v...)
		db.poll()
	}
	return vals, nil
}

// getBatchWindowed pumps keys through the driver's asynchronous submission
// window — up to WindowDepth reads in flight, completions reaped out of
// order and claimed in submission order. Callers hold db.mu. A nil miss
// makes any error fatal; a non-nil miss absorbs not-found completions.
// The loop is written closure-free: the steady-state batch-read path must
// not allocate, and closures over the cursor variables would escape.
func (db *DB) getBatchWindowed(keys, vals [][]byte, miss []bool) (int, error) {
	drv := db.st.Drv
	depth := drv.WindowDepth()
	db.winH, db.winI = db.winH[:0], db.winI[:0]
	head, next, n := 0, 0, 0
	for {
		// Reap the oldest in-flight read while the window is full, or once
		// every key has been submitted.
		for head < len(db.winH) && (len(db.winH)-head >= depth || next == len(keys)) {
			h, i := db.winH[head], db.winI[head]
			head++
			v, err := drv.WaitGetInto(h, vals[i])
			if err != nil {
				if miss != nil && IsNotFound(err) {
					miss[i] = true
					vals[i] = vals[i][:0]
					n++
					db.poll()
					continue
				}
				drv.DrainWindow()
				db.poll()
				return n, err
			}
			if miss != nil {
				miss[i] = false
			}
			vals[i] = v
			n++
			db.poll()
		}
		if next == len(keys) {
			return n, nil
		}
		// A known-missing key resolves host-side: no command is built and no
		// simulated time passes, exactly as Driver.Get short-circuits the
		// serial path.
		if drv.NegativeKnown(keys[next]) {
			if miss == nil {
				drv.DrainWindow()
				db.poll()
				return n, driver.ErrNegativeHit
			}
			miss[next] = true
			vals[next] = vals[next][:0]
			n++
			next++
			db.poll()
			continue
		}
		h, err := drv.StartGet(keys[next])
		if err != nil {
			drv.DrainWindow()
			db.poll()
			return n, err
		}
		db.winH = append(db.winH, h)
		db.winI = append(db.winI, next)
		next++
	}
}

// GetBatchSparse resolves keys in bulk like GetBatch, but a missing key sets
// miss[i] (leaving vals[i] empty) instead of failing the whole batch. miss
// must have len(keys) entries. This is the lookup MGET rides: absent keys
// become null replies, not errors.
func (db *DB) GetBatchSparse(keys, vals [][]byte, miss []bool) ([][]byte, error) {
	if vals == nil {
		vals = make([][]byte, len(keys))
	}
	if len(vals) != len(keys) || len(miss) != len(keys) {
		return vals, fmt.Errorf("bandslim: GetBatchSparse got %d keys, %d dst lanes, %d miss flags",
			len(keys), len(vals), len(miss))
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return vals, ErrClosed
	}
	if db.st.Drv.WindowDepth() >= 2 {
		_, err := db.getBatchWindowed(keys, vals, miss)
		return vals, err
	}
	for i := range keys {
		v, err := db.st.Drv.Get(keys[i])
		if err != nil {
			if IsNotFound(err) {
				miss[i] = true
				vals[i] = vals[i][:0]
				db.poll()
				continue
			}
			db.poll()
			return vals, err
		}
		miss[i] = false
		vals[i] = append(vals[i][:0], v...)
		db.poll()
	}
	return vals, nil
}

// Delete removes a key.
func (db *DB) Delete(key []byte) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	err := db.st.Drv.Delete(key)
	db.poll()
	return err
}

// Flush forces buffered values and index entries to NAND.
func (db *DB) Flush() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	err := db.st.Drv.Flush()
	db.poll()
	return err
}

// Close flushes and shuts the DB. Further operations fail with ErrClosed.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	err := db.st.Drv.Flush()
	db.poll()
	db.closed = true
	return err
}

// Iterator streams key-value pairs in key order via the device-side
// SEEK/NEXT commands.
type Iterator struct {
	db    *DB
	key   []byte
	value []byte
	err   error
	valid bool
}

// NewIterator opens an iterator at the first key >= start (nil starts at the
// beginning). The iterator is positioned on its first pair; check Valid.
func (db *DB) NewIterator(start []byte) (*Iterator, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	if start == nil {
		start = []byte{0}
	}
	if err := db.st.Drv.Seek(start); err != nil {
		return nil, err
	}
	it := &Iterator{db: db}
	it.next()
	return it, nil
}

// Valid reports whether the iterator holds a pair.
func (it *Iterator) Valid() bool { return it.valid }

// Key returns the current key.
func (it *Iterator) Key() []byte { return it.key }

// Value returns the current value.
func (it *Iterator) Value() []byte { return it.value }

// Err reports the error that stopped iteration, if any.
func (it *Iterator) Err() error { return it.err }

// Next advances to the following pair. The device holds a single iterator,
// so writes interleaved with iteration invalidate the snapshot (as on the
// real device); iterate before mutating.
func (it *Iterator) Next() {
	it.db.mu.Lock()
	defer it.db.mu.Unlock()
	it.next()
}

func (it *Iterator) next() {
	if it.db.closed {
		it.err = ErrClosed
		it.valid = false
		return
	}
	k, v, err := it.db.st.Drv.Next()
	it.db.poll()
	if errors.Is(err, ErrIterDone) {
		it.valid = false
		return
	}
	if err != nil {
		it.err = err
		it.valid = false
		return
	}
	// Copy the driver's read-buffer views into iterator-owned reused
	// buffers, so the pair stays valid while the caller interleaves other
	// DB operations.
	it.key = append(it.key[:0], k...)
	it.value = append(it.value[:0], v...)
	it.valid = true
}

// Now reports the DB's simulated time.
func (db *DB) Now() sim.Time { return db.st.Clock.Now() }

// Tune applies the present (non-nil) fields of a Tuning to the live DB in
// one step — transfer method, thresholds, retry policy, and submission
// policy. An invalid Submission fails with a ConfigError before anything is
// applied. It fails with ErrClosed after Close.
func (db *DB) Tune(t Tuning) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	return db.st.Drv.Tune(t)
}

// SetMethod switches the transfer method on the live DB (between benchmark
// phases). It is shorthand for Tune with only Method set and fails with
// ErrClosed after Close.
func (db *DB) SetMethod(m TransferMethod) error {
	return db.Tune(Tuning{Method: &m})
}

// SetThresholds replaces the adaptive calibration on the live DB. It is
// shorthand for Tune with only Thresholds set and fails with ErrClosed
// after Close.
func (db *DB) SetThresholds(t Thresholds) error {
	return db.Tune(Tuning{Thresholds: &t})
}

// OpLatency is one named latency distribution inside an Inspection — a
// per-opcode command round trip or a per-transfer-method PUT response.
type OpLatency struct {
	Name string
	LatencySummary
}

// Inspection is a read-only snapshot of the simulation's internal state —
// the diagnostics the removed Internals() accessor used to expose as live
// pointers. Every field is a copy; holding one never races with ongoing
// operations.
type Inspection struct {
	// Host-side configuration in effect. Pipelined mirrors
	// Submission.DoorbellBatch > 1 for callers of the legacy toggle.
	Method     TransferMethod
	Thresholds Thresholds
	Pipelined  bool
	Submission SubmissionConfig
	// Device-side packing policy in effect.
	Policy PackingPolicy
	// Now is the simulated time of the snapshot.
	Now sim.Time
	// WireUtilization is the fraction of simulated time the PCIe wire was
	// busy.
	WireUtilization float64
	// Page-buffer state: write pointer, placement frontier (vLog byte
	// offsets), and open buffer entries.
	BufferWP       int64
	BufferFrontier int64
	OpenPages      int
	// VLogFreeBytes is the value-log space left before compaction.
	VLogFreeBytes int64
	// MaxWear is the highest per-block erase count in the flash array.
	MaxWear int
	// OpLatency breaks command round-trip time down by NVMe opcode;
	// MethodLatency breaks PUT response time down by transfer mode chosen.
	// Both are in first-observation order.
	OpLatency     []OpLatency
	MethodLatency []OpLatency
	// Trace reports the attached ring recorder's health (zero when
	// Config.Tracer is absent or not a *Recorder). Nonzero Dropped means
	// latency attribution over the buffer sees a truncated stream.
	Trace TraceStats
}

// summarizeSet digests a HistogramSet into the public OpLatency slice.
func summarizeSet(set *metrics.HistogramSet) []OpLatency {
	names := set.Names()
	out := make([]OpLatency, 0, len(names))
	for _, name := range names {
		out = append(out, OpLatency{Name: name, LatencySummary: latencySummary(set.Get(name))})
	}
	return out
}

// Inspect snapshots the simulation's internal state. It remains usable after
// Close (the snapshot reflects the final state).
func (db *DB) Inspect() Inspection {
	db.mu.Lock()
	defer db.mu.Unlock()
	ins := inspectStack(db.st)
	if rec, ok := db.cfg.Tracer.(*Recorder); ok && rec != nil {
		ins.Trace = TraceStats{Buffered: int64(rec.Len()), Dropped: rec.Dropped()}
	}
	return ins
}

// inspectStack builds an Inspection from one stack; the caller must hold
// whatever serializes access to it.
func inspectStack(st *shard.Stack) Inspection {
	buf := st.Dev.Buffer()
	now := st.Clock.Now()
	return Inspection{
		Method:          st.Drv.Method(),
		Thresholds:      st.Drv.Thresholds(),
		Pipelined:       st.Drv.Pipelined(),
		Submission:      st.Drv.Submission(),
		Policy:          buf.Policy(),
		Now:             now,
		WireUtilization: st.Link.WireUtilization(now),
		BufferWP:        buf.WP(),
		BufferFrontier:  buf.Frontier(),
		OpenPages:       buf.OpenPages(),
		VLogFreeBytes:   st.Dev.VLog().FreeBytes(),
		MaxWear:         st.Dev.Flash().MaxWear(),
		OpLatency:       summarizeSet(st.Drv.Stats().PerOp),
		MethodLatency:   summarizeSet(st.Drv.Stats().PerMethod),
	}
}

// Batcher buffers PUTs on the host and ships them as bulk writes — the
// Dotori/KV-CSD-style comparator (§2). Records are volatile until their
// batch flushes; see driver.Batcher for the data-loss accounting.
type Batcher = driver.Batcher

// NewBatcher returns a host-side batcher flushing every batchSize records.
func (db *DB) NewBatcher(batchSize int) (*Batcher, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	return db.st.Drv.NewBatcher(batchSize)
}

// CompactVLog garbage-collects the oldest `pages` value-log pages
// (WiscKey-style): live values relocate to the log head, dead space from
// overwrites and deletes is reclaimed, and the freed NAND pages are trimmed.
// It reports how many values were relocated. Call when VLogFreeBytes runs
// low on delete/overwrite-heavy workloads.
func (db *DB) CompactVLog(pages int) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0, ErrClosed
	}
	n, err := db.st.Drv.CompactVLog(pages)
	db.poll()
	return n, err
}

// VLogFreeBytes reports how much value-log space remains before compaction
// is required.
func (db *DB) VLogFreeBytes() int64 { return db.st.Dev.VLog().FreeBytes() }

// DeviceInfo is the controller's identify structure (model, capacity,
// geometry, and BandSlim capability fields).
type DeviceInfo = device.IdentifyData

// Identify fetches the controller's identify structure via the NVMe admin
// path the paper's design preserves.
func (db *DB) Identify() (DeviceInfo, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return DeviceInfo{}, ErrClosed
	}
	return db.st.Drv.Identify()
}
