package resp

import (
	"bytes"
	"io"
	"testing"
	"testing/iotest"
)

// FuzzRESPParse throws arbitrary bytes at the command parser and checks the
// invariants the server relies on: no panics, every outcome is a command /
// clean EOF / typed error, errors are stable across read chunking, and every
// successfully parsed command re-encodes to a byte stream that parses back
// to the same arguments (round-trip through the Writer).
func FuzzRESPParse(f *testing.F) {
	seeds := [][]byte{
		[]byte("*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n"),
		[]byte("*2\r\n$3\r\nGET\r\n$4\r\nkey1\r\n"),
		[]byte("*1\r\n$4\r\nPING\r\n*0\r\n"),
		[]byte("PING\r\n"),
		[]byte("SET key value\r\n"),
		[]byte("*2\r\n$3\r\nDEL\r\n$16\r\n0123456789abcdef\r\n"),
		[]byte("*-1\r\n"),
		[]byte("*1\r\n$-1\r\n"),
		[]byte("$5\r\nhello\r\n"),
		[]byte("*2\r\n$3\r\nGET\r\n$999999999999\r\n"),
		[]byte("\r\n\r\n*1\r\n$0\r\n\r\n"),
		[]byte(":42\r\n+OK\r\n-ERR x\r\n"),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		parse := func(r io.Reader) ([][]string, error) {
			rd := NewReader(r)
			var cmds [][]string
			for {
				args, err := rd.ReadCommand()
				if err != nil {
					return cmds, err
				}
				cmd := make([]string, len(args))
				for i, a := range args {
					cmd[i] = string(a)
				}
				cmds = append(cmds, cmd)
			}
		}

		whole, errWhole := parse(bytes.NewReader(data))
		bytewise, errByte := parse(iotest.OneByteReader(bytes.NewReader(data)))

		// Chunking must not change what parses or how it fails.
		if IsProtocol(errWhole) != IsProtocol(errByte) {
			t.Fatalf("chunking changed error class: whole=%v bytewise=%v", errWhole, errByte)
		}
		if len(whole) != len(bytewise) {
			t.Fatalf("chunking changed command count: %d vs %d", len(whole), len(bytewise))
		}
		for i := range whole {
			if len(whole[i]) != len(bytewise[i]) {
				t.Fatalf("command %d: arg count differs", i)
			}
			for j := range whole[i] {
				if whole[i][j] != bytewise[i][j] {
					t.Fatalf("command %d arg %d differs", i, j)
				}
			}
		}
		// Every non-EOF failure must be a typed protocol error; plain I/O
		// errors can only be EOF-shaped here (the sources never fail).
		if errWhole != nil && !IsProtocol(errWhole) && errWhole != io.EOF && errWhole != io.ErrUnexpectedEOF {
			t.Fatalf("unexpected error type %T: %v", errWhole, errWhole)
		}

		// Round-trip: re-encode each parsed command as a multibulk array and
		// parse it back.
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, cmd := range whole {
			w.Array(len(cmd))
			for _, a := range cmd {
				w.BulkString(a)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		again, err := parse(&buf)
		if err != io.EOF {
			t.Fatalf("re-encoded stream failed to parse: %v", err)
		}
		if len(again) != len(whole) {
			t.Fatalf("round trip lost commands: %d vs %d", len(again), len(whole))
		}
		for i := range whole {
			if len(again[i]) != len(whole[i]) {
				t.Fatalf("round trip changed command %d arg count", i)
			}
			for j := range whole[i] {
				if whole[i][j] != again[i][j] {
					t.Fatalf("round trip changed command %d arg %d", i, j)
				}
			}
		}
	})
}
