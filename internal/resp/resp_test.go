package resp

import (
	"bytes"
	"errors"
	"io"
	"strconv"
	"strings"
	"testing"
	"testing/iotest"
)

// cmdString renders parsed args for comparison.
func cmdString(args [][]byte) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = string(a)
	}
	return strings.Join(parts, "|")
}

func TestReadCommandTable(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want []string // one entry per command, args joined with |
	}{
		{"multibulk", "*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n", []string{"SET|k|v"}},
		{"empty_bulk", "*2\r\n$3\r\nSET\r\n$0\r\n\r\n", []string{"SET|"}},
		{"binary_bulk", "*2\r\n$3\r\nGET\r\n$3\r\n\x00\r\t\r\n", []string{"GET|\x00\r\t"}},
		{"zero_array", "*0\r\n", []string{""}},
		{"inline", "PING\r\n", []string{"PING"}},
		{"inline_args", "SET key  value\r\n", []string{"SET|key|value"}},
		{"inline_tabs", "\tGET\tk \r\n", []string{"GET|k"}},
		{"inline_lf_only", "PING\n", []string{"PING"}},
		{"inline_empty", "\r\nPING\r\n", []string{"", "PING"}},
		{
			"pipelined",
			"*1\r\n$4\r\nPING\r\n*2\r\n$3\r\nGET\r\n$1\r\nk\r\n*3\r\n$3\r\nSET\r\n$1\r\na\r\n$2\r\nbb\r\n",
			[]string{"PING", "GET|k", "SET|a|bb"},
		},
		{"mixed_inline_multibulk", "PING\r\n*2\r\n$3\r\nGET\r\n$1\r\nk\r\n", []string{"PING", "GET|k"}},
	}
	for _, tc := range cases {
		// Every case must parse identically from a whole buffer and from a
		// one-byte-at-a-time reader (partial reads across every boundary).
		sources := map[string]func() io.Reader{
			"whole":    func() io.Reader { return strings.NewReader(tc.in) },
			"one_byte": func() io.Reader { return iotest.OneByteReader(strings.NewReader(tc.in)) },
		}
		for srcName, src := range sources {
			t.Run(tc.name+"/"+srcName, func(t *testing.T) {
				r := NewReader(src())
				for i, want := range tc.want {
					args, err := r.ReadCommand()
					if err != nil {
						t.Fatalf("command %d: %v", i, err)
					}
					if got := cmdString(args); got != want {
						t.Fatalf("command %d: got %q, want %q", i, got, want)
					}
				}
				if _, err := r.ReadCommand(); err != io.EOF {
					t.Fatalf("after last command: err = %v, want io.EOF", err)
				}
			})
		}
	}
}

func TestReadCommandProtocolErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"bad_multibulk_len", "*x\r\n"},
		{"negative_multibulk", "*-1\r\n"},
		{"huge_multibulk", "*99999999\r\n"},
		{"missing_dollar", "*1\r\n:3\r\n"},
		{"bad_bulk_len", "*1\r\n$x\r\n"},
		{"negative_bulk", "*1\r\n$-1\r\n"},
		{"huge_bulk", "*1\r\n$999999999999\r\n"},
		{"missing_crlf", "*1\r\n$3\r\nabcXY"},
		{"overlong_inline", strings.Repeat("a", maxInline+2) + "\r\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewReader(strings.NewReader(tc.in))
			_, err := r.ReadCommand()
			if err == nil {
				t.Fatal("want protocol error, got nil")
			}
			if !IsProtocol(err) {
				t.Fatalf("want ProtocolError, got %T: %v", err, err)
			}
			if !strings.HasPrefix(err.Error(), "Protocol error: ") {
				t.Fatalf("error %q lacks redis-style prefix", err)
			}
		})
	}
}

// TestReadCommandTotalSizeCap: the per-bulk and per-count limits alone still
// let one command pin MaxArgs×MaxBulk in the read buffer, so the
// whole-command cap must reject a command as soon as its declared payload
// crosses MaxCommand — before buffering the offending bulk.
func TestReadCommandTotalSizeCap(t *testing.T) {
	payload := bytes.Repeat([]byte{'x'}, MaxBulk)
	bulkHeader := "$" + strconv.Itoa(MaxBulk) + "\r\n"
	parts := []io.Reader{strings.NewReader("*5\r\n")}
	for i := 0; i < 4; i++ { // 4 × MaxBulk == MaxCommand: still legal
		parts = append(parts,
			strings.NewReader(bulkHeader),
			bytes.NewReader(payload),
			strings.NewReader("\r\n"))
	}
	// The fifth header pushes the declared total over the cap. Its payload is
	// deliberately never supplied: the reader must fail on the declaration
	// alone, or this test surfaces a non-protocol I/O error instead.
	parts = append(parts, strings.NewReader(bulkHeader))
	r := NewReader(io.MultiReader(parts...))
	_, err := r.ReadCommand()
	if !IsProtocol(err) {
		t.Fatalf("err = %v, want protocol error", err)
	}
	if !strings.Contains(err.Error(), "too big multibulk command") {
		t.Fatalf("err = %q, want whole-command size error", err)
	}
}

// Protocol error text must stay single-line even when the offending byte is
// CR or LF; a raw line break inside it would split the server's -ERR echo
// into a malformed extra reply line.
func TestProtocolErrorQuotesRawBytes(t *testing.T) {
	for _, in := range []string{"*1\r\n\n", "*1\r\n\rjunk"} {
		r := NewReader(strings.NewReader(in))
		_, err := r.ReadCommand()
		if !IsProtocol(err) {
			t.Fatalf("input %q: err = %v, want protocol error", in, err)
		}
		if strings.ContainsAny(err.Error(), "\r\n") {
			t.Fatalf("input %q: error text %q contains raw CR/LF", in, err.Error())
		}
	}
	r := NewReader(strings.NewReader("\rX\r\n"))
	if _, err := r.ReadReply(); !IsProtocol(err) || strings.ContainsAny(err.Error(), "\r\n") {
		t.Fatalf("reply side: err = %v, want single-line protocol error", err)
	}
}

func TestWriterErrorSanitizesCRLF(t *testing.T) {
	var out bytes.Buffer
	w := NewWriter(&out)
	w.Error("ERR bad\r\nbyte")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if got, want := out.String(), "-ERR bad  byte\r\n"; got != want {
		t.Fatalf("encoded %q, want %q", got, want)
	}
}

func TestReadCommandTruncated(t *testing.T) {
	// Truncated input must surface as an I/O error, not a protocol error:
	// the bytes so far were valid.
	for _, in := range []string{"*2\r\n$3\r\nGET\r\n", "*1\r\n$3\r\nab", "*1\r\n", "$"} {
		r := NewReader(strings.NewReader(in))
		_, err := r.ReadCommand()
		if err == nil || IsProtocol(err) {
			t.Fatalf("input %q: err = %v, want non-protocol error", in, err)
		}
	}
}

func TestReaderViewLifetime(t *testing.T) {
	// Views stay valid until the next ReadCommand, including when the
	// second command forces a buffer refill/compaction.
	big := strings.Repeat("v", 5000)
	in := "*2\r\n$3\r\nGET\r\n$4\r\nkey1\r\n*3\r\n$3\r\nSET\r\n$4\r\nkey2\r\n$5000\r\n" + big + "\r\n"
	r := NewReader(iotest.HalfReader(strings.NewReader(in)))
	args, err := r.ReadCommand()
	if err != nil {
		t.Fatal(err)
	}
	if cmdString(args) != "GET|key1" {
		t.Fatalf("first command = %q", cmdString(args))
	}
	args, err = r.ReadCommand()
	if err != nil {
		t.Fatal(err)
	}
	if len(args) != 3 || string(args[0]) != "SET" || string(args[1]) != "key2" || string(args[2]) != big {
		t.Fatalf("second command mismatch: %d args", len(args))
	}
}

func TestWriterEncodings(t *testing.T) {
	var out bytes.Buffer
	w := NewWriter(&out)
	w.Simple("OK")
	w.Error("ERR boom")
	w.Int(-42)
	w.Bulk([]byte("hello"))
	w.BulkString("")
	w.Null()
	w.Array(2)
	w.Command([]byte("GET"), []byte("k"))
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	want := "+OK\r\n-ERR boom\r\n:-42\r\n$5\r\nhello\r\n$0\r\n\r\n$-1\r\n*2\r\n*2\r\n$3\r\nGET\r\n$1\r\nk\r\n"
	if out.String() != want {
		t.Fatalf("encoded %q, want %q", out.String(), want)
	}
	if w.BytesWritten() != int64(len(want)) {
		t.Fatalf("BytesWritten = %d, want %d", w.BytesWritten(), len(want))
	}
}

func TestWriterRoundTrip(t *testing.T) {
	var out bytes.Buffer
	w := NewWriter(&out)
	w.Simple("PONG")
	w.Int(7)
	w.Bulk([]byte("val"))
	w.Null()
	w.Array(2)
	w.Bulk([]byte("a"))
	w.Bulk([]byte("b"))
	w.Error("ERR nope")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(iotest.OneByteReader(&out))
	expect := func(want Reply, wantStr string) {
		t.Helper()
		got, err := r.ReadReply()
		if err != nil {
			t.Fatal(err)
		}
		if got.Kind != want.Kind || got.Int != want.Int || got.N != want.N || got.Null != want.Null || string(got.Str) != wantStr {
			t.Fatalf("reply = %+v (str %q), want %+v (str %q)", got, got.Str, want, wantStr)
		}
	}
	expect(Reply{Kind: KindSimple}, "PONG")
	expect(Reply{Kind: KindInteger, Int: 7}, "")
	expect(Reply{Kind: KindBulk}, "val")
	expect(Reply{Kind: KindBulk, Null: true}, "")
	expect(Reply{Kind: KindArray, N: 2}, "")
	expect(Reply{Kind: KindBulk}, "a")
	expect(Reply{Kind: KindBulk}, "b")
	expect(Reply{Kind: KindError}, "ERR nope")
	if _, err := r.ReadReply(); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

func TestReadReplyNullArray(t *testing.T) {
	r := NewReader(strings.NewReader("*-1\r\n"))
	rep, err := r.ReadReply()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != KindArray || !rep.Null || rep.N != -1 {
		t.Fatalf("reply = %+v, want null array", rep)
	}
}

func TestWriterStickyError(t *testing.T) {
	w := NewWriter(failWriter{})
	w.Simple("OK")
	if err := w.Flush(); err == nil {
		t.Fatal("want flush error")
	}
	w.Simple("OK")
	if err := w.Flush(); err == nil {
		t.Fatal("error must stick")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("wire down") }

func TestReaderSteadyStateAllocs(t *testing.T) {
	// After warm-up, parsing a pipelined SET+GET pair allocates nothing:
	// the hot service path depends on it.
	in := []byte("*3\r\n$3\r\nSET\r\n$4\r\nkey1\r\n$8\r\nvvvvvvvv\r\n*2\r\n$3\r\nGET\r\n$4\r\nkey1\r\n")
	src := bytes.NewReader(in)
	r := NewReader(src)
	parseAll := func() {
		src.Reset(in)
		r.Reset(src)
		for {
			if _, err := r.ReadCommand(); err != nil {
				if err != io.EOF {
					t.Fatal(err)
				}
				return
			}
		}
	}
	parseAll() // warm the buffer
	if avg := testing.AllocsPerRun(200, parseAll); avg != 0 {
		t.Fatalf("steady-state parse allocates %.2f objects/run, want 0", avg)
	}

	var sink discardWriter
	w := NewWriter(&sink)
	encodeAll := func() {
		w.Simple("OK")
		w.Bulk(in[:8])
		w.Null()
		w.Int(3)
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	encodeAll()
	if avg := testing.AllocsPerRun(200, encodeAll); avg != 0 {
		t.Fatalf("steady-state encode allocates %.2f objects/run, want 0", avg)
	}
}

type discardWriter struct{}

func (*discardWriter) Write(p []byte) (int, error) { return len(p), nil }
