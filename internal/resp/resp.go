// Package resp implements the subset of the RESP2 wire protocol
// (https://redis.io/docs/reference/protocol-spec/) that bandslim-server
// speaks: client → server commands as arrays of bulk strings (plus the
// space-separated inline form), and server → client replies as simple
// strings, errors, integers, bulk strings, and arrays.
//
// The codec is built for the server's zero-allocation steady state:
//
//   - Reader parses out of one growable internal buffer and returns
//     argument slices as views into it — valid until the next Read* call.
//     Refills compact consumed bytes instead of reallocating, so once the
//     buffer has grown to the connection's working command size, parsing
//     allocates nothing.
//   - Writer appends into one reusable buffer flushed explicitly, so a
//     pipelined burst of replies becomes a single socket write and integer
//     headers are formatted with strconv.AppendInt (no intermediate
//     strings).
//
// Protocol violations surface as *ProtocolError (distinguishable from I/O
// errors with errors.As), carrying a redis-style human-readable message the
// server echoes back before closing the connection, as Redis does.
package resp

import (
	"errors"
	"io"
	"strconv"
)

// Limits bounding a single command, chosen to cover everything the server
// accepts (16-byte keys, page-sized values) with headroom while keeping a
// hostile peer from ballooning the read buffer.
const (
	// MaxArgs caps the elements of one command array.
	MaxArgs = 1024
	// MaxBulk caps one bulk-string payload.
	MaxBulk = 8 << 20
	// MaxCommand caps one whole multibulk command's accumulated payload.
	// ReadCommand keeps the entire command resident until it is parsed, so
	// without this cap a hostile peer could stack MaxArgs×MaxBulk declared
	// bulks into one command and balloon the read buffer toward gigabytes;
	// with it, per-connection buffer growth is bounded by a few MaxBulk.
	MaxCommand = 4 * MaxBulk
	// maxInline caps one inline command line (also the line cap for array
	// and bulk headers, which are far shorter).
	maxInline = 64 << 10
)

// ProtocolError reports a malformed command or reply. The text follows
// Redis conventions ("Protocol error: ...") so clients display it usefully.
type ProtocolError struct{ msg string }

func (e *ProtocolError) Error() string { return e.msg }

// protoErrf keeps the error-construction path out of the parse hot loop.
func protoErr(msg string) error { return &ProtocolError{msg: "Protocol error: " + msg} }

// IsProtocol reports whether err is a protocol violation (as opposed to an
// I/O error on the underlying connection).
func IsProtocol(err error) bool {
	var pe *ProtocolError
	return errors.As(err, &pe)
}

// Reader incrementally parses RESP values from an io.Reader. It is not safe
// for concurrent use. Slices returned by ReadCommand and ReadReply are views
// into the internal buffer, valid until the next Read* call.
//
// Refills may compact or grow the buffer mid-command, which would shift any
// view taken earlier, so the multibulk parser records each argument as a
// (offset, length) span relative to mark — the start of the current command,
// which compaction preserves — and materializes the views only once the
// whole command is buffered.
type Reader struct {
	r     io.Reader
	buf   []byte
	mark  int // start of the current command; bytes before it are reclaimable
	off   int // parse position within buf
	end   int // filled extent of buf
	spans []span
	args  [][]byte
	n     int64 // total bytes consumed from r
}

// span locates one parsed argument relative to Reader.mark.
type span struct{ off, n int }

// NewReader wraps r. The internal buffer starts small and grows to the
// connection's working command size, then stays put.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r, buf: make([]byte, 4096)}
}

// Reset rebinds the reader to a new stream, keeping the grown buffer.
func (r *Reader) Reset(rd io.Reader) {
	r.r = rd
	r.mark, r.off, r.end, r.n = 0, 0, 0, 0
}

// BytesRead reports the total bytes consumed from the underlying reader.
func (r *Reader) BytesRead() int64 { return r.n }

// fill reads more bytes from the underlying reader, compacting bytes before
// mark first and growing the buffer only when the live region spans it.
// Compaction shifts buf[mark:end] to the front, so spans relative to mark
// stay valid.
func (r *Reader) fill() error {
	if r.mark > 0 {
		r.end = copy(r.buf, r.buf[r.mark:r.end])
		r.off -= r.mark
		r.mark = 0
	}
	if r.end == len(r.buf) {
		grown := make([]byte, 2*len(r.buf))
		r.end = copy(grown, r.buf[:r.end])
		r.buf = grown
	}
	n, err := r.r.Read(r.buf[r.end:])
	r.end += n
	r.n += int64(n)
	if n > 0 {
		return nil // defer the error until the bytes are consumed
	}
	if err == nil {
		err = io.ErrNoProgress
	}
	return err
}

// readLine returns the next CRLF- (or bare LF-) terminated line, excluding
// the terminator, refilling as needed.
func (r *Reader) readLine(what string) ([]byte, error) {
	scanned := 0 // bytes already known not to contain LF
	for {
		if i := indexByte(r.buf[r.off+scanned:r.end], '\n'); i >= 0 {
			nl := r.off + scanned + i
			line := r.buf[r.off:nl]
			if len(line) > 0 && line[len(line)-1] == '\r' {
				line = line[:len(line)-1]
			}
			if len(line) > maxInline {
				return nil, protoErr("too big " + what)
			}
			r.off = nl + 1
			return line, nil
		}
		scanned = r.end - r.off
		if scanned > maxInline {
			return nil, protoErr("too big " + what)
		}
		if err := r.fill(); err != nil {
			return nil, err
		}
	}
}

// indexByte is bytes.IndexByte without the package dependency footprint of
// importing bytes solely for it; the compiler lowers this loop well enough
// for header-sized scans.
func indexByte(b []byte, c byte) int {
	for i, x := range b {
		if x == c {
			return i
		}
	}
	return -1
}

// readExact returns the next n bytes plus their CRLF trailer, refilling as
// needed. The returned slice excludes the trailer and is valid until the
// next refill.
func (r *Reader) readExact(n int) ([]byte, error) {
	for r.end-r.off < n+2 {
		if err := r.fill(); err != nil {
			return nil, err
		}
	}
	b := r.buf[r.off : r.off+n]
	if r.buf[r.off+n] != '\r' || r.buf[r.off+n+1] != '\n' {
		return nil, protoErr("expected CRLF after bulk string")
	}
	r.off += n + 2
	return b, nil
}

// readSpan consumes the next n bytes plus their CRLF trailer and records
// their location relative to mark, surviving later refills within the same
// command.
func (r *Reader) readSpan(n int) (span, error) {
	if _, err := r.readExact(n); err != nil {
		return span{}, err
	}
	return span{off: r.off - (n + 2) - r.mark, n: n}, nil
}

// parseInt parses a decimal integer from a header line without allocating.
func parseInt(b []byte, what string) (int64, error) {
	if len(b) == 0 {
		return 0, protoErr("invalid " + what)
	}
	neg := false
	i := 0
	if b[0] == '-' {
		neg = true
		i++
		if len(b) == 1 {
			return 0, protoErr("invalid " + what)
		}
	}
	var v int64
	for ; i < len(b); i++ {
		d := b[i] - '0'
		if d > 9 {
			return 0, protoErr("invalid " + what)
		}
		if v > (1<<62)/10 { // overflow guard, far beyond protocol needs
			return 0, protoErr("invalid " + what)
		}
		v = v*10 + int64(d)
	}
	if neg {
		v = -v
	}
	return v, nil
}

// peek returns the next unread byte, refilling as needed, without
// consuming it.
func (r *Reader) peek() (byte, error) {
	for r.off == r.end {
		if err := r.fill(); err != nil {
			return 0, err
		}
	}
	return r.buf[r.off], nil
}

// ReadCommand parses one client command: a RESP array of bulk strings, or —
// when the first byte is not '*' — an inline command split on spaces and
// tabs. The returned argument slices are views into the internal buffer,
// valid until the next Read* call; an empty inline line yields a zero-length
// command the caller should skip. io.EOF before the first byte of a command
// means a clean close.
func (r *Reader) ReadCommand() ([][]byte, error) {
	r.mark = r.off
	c, err := r.peek()
	if err != nil {
		return nil, err
	}
	if c != '*' {
		return r.readInline()
	}
	r.off++
	header, err := r.readLine("multibulk header")
	if err != nil {
		return nil, err
	}
	n, err := parseInt(header, "multibulk length")
	if err != nil {
		return nil, err
	}
	if n < 0 || n > MaxArgs {
		return nil, protoErr("invalid multibulk length")
	}
	r.spans = r.spans[:0]
	var total int64 // declared payload bytes accumulated across the command
	for i := int64(0); i < n; i++ {
		c, err := r.peek()
		if err != nil {
			return nil, err
		}
		if c != '$' {
			return nil, protoErr("expected '$', got " + strconv.QuoteRune(rune(c)))
		}
		r.off++
		header, err := r.readLine("bulk header")
		if err != nil {
			return nil, err
		}
		ln, err := parseInt(header, "bulk length")
		if err != nil {
			return nil, err
		}
		if ln < 0 || ln > MaxBulk {
			return nil, protoErr("invalid bulk length")
		}
		// Checked against the declared length before the payload is read, so
		// the oversized bulk is rejected without buffering it.
		if total += ln; total > MaxCommand {
			return nil, protoErr("too big multibulk command")
		}
		sp, err := r.readSpan(int(ln))
		if err != nil {
			return nil, err
		}
		r.spans = append(r.spans, sp)
	}
	// The whole command is buffered now; no further refill can shift it, so
	// the spans materialize into stable views.
	r.args = r.args[:0]
	for _, sp := range r.spans {
		r.args = append(r.args, r.buf[r.mark+sp.off:r.mark+sp.off+sp.n])
	}
	return r.args, nil
}

// readInline parses one inline command line into whitespace-separated
// arguments. Quotes are not interpreted (redis-cli always speaks arrays;
// inline exists for netcat-style poking).
func (r *Reader) readInline() ([][]byte, error) {
	line, err := r.readLine("inline request")
	if err != nil {
		return nil, err
	}
	r.args = r.args[:0]
	i := 0
	for i < len(line) {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		start := i
		for i < len(line) && line[i] != ' ' && line[i] != '\t' {
			i++
		}
		if i > start {
			if len(r.args) == MaxArgs {
				return nil, protoErr("too many inline arguments")
			}
			r.args = append(r.args, line[start:i])
		}
	}
	return r.args, nil
}

// ReplyKind tags what a ReadReply call decoded.
type ReplyKind byte

// Reply kinds, mirroring the RESP2 first byte.
const (
	KindSimple  ReplyKind = '+'
	KindError   ReplyKind = '-'
	KindInteger ReplyKind = ':'
	KindBulk    ReplyKind = '$'
	KindArray   ReplyKind = '*'
)

// Reply is one decoded server reply. Str is a view into the Reader's buffer
// (valid until the next Read* call); for a null bulk string Null is set and
// Str is nil. For arrays, N gives the element count (-1 for a null array)
// and the caller reads the N nested replies with further ReadReply calls.
type Reply struct {
	Kind ReplyKind
	Str  []byte
	Int  int64
	N    int
	Null bool
}

// ReadReply decodes one reply value. Nested array elements are not
// consumed; see Reply.N.
func (r *Reader) ReadReply() (Reply, error) {
	r.mark = r.off
	c, err := r.peek()
	if err != nil {
		return Reply{}, err
	}
	r.off++
	switch ReplyKind(c) {
	case KindSimple, KindError:
		line, err := r.readLine("simple string")
		if err != nil {
			return Reply{}, err
		}
		return Reply{Kind: ReplyKind(c), Str: line}, nil
	case KindInteger:
		line, err := r.readLine("integer")
		if err != nil {
			return Reply{}, err
		}
		v, err := parseInt(line, "integer")
		if err != nil {
			return Reply{}, err
		}
		return Reply{Kind: KindInteger, Int: v}, nil
	case KindBulk:
		line, err := r.readLine("bulk header")
		if err != nil {
			return Reply{}, err
		}
		ln, err := parseInt(line, "bulk length")
		if err != nil {
			return Reply{}, err
		}
		if ln == -1 {
			return Reply{Kind: KindBulk, Null: true}, nil
		}
		if ln < 0 || ln > MaxBulk {
			return Reply{}, protoErr("invalid bulk length")
		}
		b, err := r.readExact(int(ln))
		if err != nil {
			return Reply{}, err
		}
		return Reply{Kind: KindBulk, Str: b}, nil
	case KindArray:
		line, err := r.readLine("multibulk header")
		if err != nil {
			return Reply{}, err
		}
		n, err := parseInt(line, "multibulk length")
		if err != nil {
			return Reply{}, err
		}
		if n == -1 {
			return Reply{Kind: KindArray, N: -1, Null: true}, nil
		}
		if n < 0 || n > MaxBulk {
			return Reply{}, protoErr("invalid multibulk length")
		}
		return Reply{Kind: KindArray, N: int(n)}, nil
	default:
		return Reply{}, protoErr("unexpected reply byte " + strconv.QuoteRune(rune(c)))
	}
}

// Writer encodes RESP values into a reusable buffer flushed explicitly to
// the underlying writer. Encoding never fails; I/O errors stick to the
// Writer and surface from Flush (and every later Flush), so a reply burst
// can be encoded unconditionally and checked once.
type Writer struct {
	w   io.Writer
	buf []byte
	n   int64 // total bytes flushed
	err error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, buf: make([]byte, 0, 4096)}
}

// Reset rebinds the writer to a new stream, keeping the grown buffer.
func (w *Writer) Reset(wr io.Writer) {
	w.w = wr
	w.buf = w.buf[:0]
	w.n, w.err = 0, nil
}

// BytesWritten reports the total bytes flushed to the underlying writer.
func (w *Writer) BytesWritten() int64 { return w.n }

// Buffered reports the bytes encoded but not yet flushed.
func (w *Writer) Buffered() int { return len(w.buf) }

// Simple writes a simple string reply: +s\r\n.
func (w *Writer) Simple(s string) {
	w.buf = append(w.buf, '+')
	w.buf = append(w.buf, s...)
	w.crlf()
}

// Error writes an error reply: -msg\r\n. CR and LF inside msg become spaces
// — error text can carry wrapped message bytes (a peeked protocol byte, an
// OS error string), and a raw line break would split the reply into a
// malformed extra line on the wire.
func (w *Writer) Error(msg string) {
	w.buf = append(w.buf, '-')
	for i := 0; i < len(msg); i++ {
		ch := msg[i]
		if ch == '\r' || ch == '\n' {
			ch = ' '
		}
		w.buf = append(w.buf, ch)
	}
	w.crlf()
}

// Int writes an integer reply: :n\r\n.
func (w *Writer) Int(n int64) {
	w.buf = append(w.buf, ':')
	w.buf = strconv.AppendInt(w.buf, n, 10)
	w.crlf()
}

// Bulk writes a bulk string reply: $len\r\n b \r\n.
func (w *Writer) Bulk(b []byte) {
	w.buf = append(w.buf, '$')
	w.buf = strconv.AppendInt(w.buf, int64(len(b)), 10)
	w.crlf()
	w.buf = append(w.buf, b...)
	w.crlf()
}

// BulkString is Bulk for string payloads.
func (w *Writer) BulkString(s string) {
	w.buf = append(w.buf, '$')
	w.buf = strconv.AppendInt(w.buf, int64(len(s)), 10)
	w.crlf()
	w.buf = append(w.buf, s...)
	w.crlf()
}

// Null writes a null bulk reply: $-1\r\n (RESP2's "no such key").
func (w *Writer) Null() {
	w.buf = append(w.buf, "$-1\r\n"...)
}

// Array writes an array header: *n\r\n. The caller follows with n replies.
func (w *Writer) Array(n int) {
	w.buf = append(w.buf, '*')
	w.buf = strconv.AppendInt(w.buf, int64(n), 10)
	w.crlf()
}

// Command writes one client command as an array of bulk strings — the
// loadgen/client side of the codec.
func (w *Writer) Command(args ...[]byte) {
	w.Array(len(args))
	for _, a := range args {
		w.Bulk(a)
	}
}

func (w *Writer) crlf() { w.buf = append(w.buf, '\r', '\n') }

// Flush writes the buffered bytes to the underlying writer. The buffer is
// retained, so steady-state flushes allocate nothing.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	if len(w.buf) == 0 {
		return nil
	}
	n, err := w.w.Write(w.buf)
	w.n += int64(n)
	w.buf = w.buf[:0]
	w.err = err
	return err
}
