package dma

import (
	"bytes"
	"testing"

	"bandslim/internal/nvme"
	"bandslim/internal/pcie"
	"bandslim/internal/sim"
)

func newEngine() (*Engine, *pcie.Link, *nvme.HostMemory) {
	link := pcie.NewLink(pcie.DefaultCostModel())
	return NewEngine(link, DefaultMemcpyModel()), link, nvme.NewHostMemory()
}

func TestPageAligned(t *testing.T) {
	if !PageAligned(0) || !PageAligned(4096) || !PageAligned(8192) {
		t.Fatal("aligned values rejected")
	}
	if PageAligned(1) || PageAligned(4097) {
		t.Fatal("unaligned values accepted")
	}
}

func TestMemcpyModelCost(t *testing.T) {
	m := DefaultMemcpyModel()
	if m.Cost(0) != 0 || m.Cost(-5) != 0 {
		t.Fatal("zero-length copy has nonzero cost")
	}
	// 100 MB/s → 1000 bytes = 10µs plus fixed overhead.
	got := m.Cost(1000)
	want := m.Fixed + 10000*sim.Nanosecond
	if got != want {
		t.Fatalf("Cost(1000) = %v, want %v", got, want)
	}
}

// A 32-byte value still moves one full 4 KiB page (§2.3 Problem #1).
func TestTransferInPageUnitBloat(t *testing.T) {
	e, link, m := newEngine()
	v := bytes.Repeat([]byte{7}, 32)
	prp, err := nvme.BuildPRP(m, v)
	if err != nil {
		t.Fatal(err)
	}
	got, end, err := e.TransferIn(0, m, prp)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4096 {
		t.Fatalf("staged buffer %d bytes, want 4096", len(got))
	}
	if !bytes.Equal(got[:32], v) {
		t.Fatal("payload mismatch")
	}
	if link.Traf.DMABytes.Value() != 4096 {
		t.Fatalf("DMA traffic %d, want 4096", link.Traf.DMABytes.Value())
	}
	// 8.2µs per-page processing + 4096/3.2GB/s = 1.28µs on the wire.
	if want := sim.Time(8200 + 1280); end != want {
		t.Fatalf("end = %v, want %v", end, want)
	}
	if e.Stats().Transfers.Value() != 1 || e.Stats().BytesTransferred.Value() != 4096 {
		t.Fatal("stats not recorded")
	}
}

// The (4K+32)B case moves 8 KiB.
func TestTransferInTwoPages(t *testing.T) {
	e, link, m := newEngine()
	v := make([]byte, 4096+32)
	for i := range v {
		v[i] = byte(i * 7)
	}
	prp, _ := nvme.BuildPRP(m, v)
	got, _, err := e.TransferIn(0, m, prp)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 8192 {
		t.Fatalf("staged %d bytes, want 8192", len(got))
	}
	if !bytes.Equal(got[:len(v)], v) {
		t.Fatal("payload mismatch")
	}
	if link.Traf.DMABytes.Value() != 8192 {
		t.Fatalf("traffic %d", link.Traf.DMABytes.Value())
	}
}

func TestTransferInEmpty(t *testing.T) {
	e, link, m := newEngine()
	got, end, err := e.TransferIn(5, m, nvme.PRPList{})
	if err != nil || got != nil || end != 5 {
		t.Fatalf("empty transfer: %v %v %v", got, end, err)
	}
	if link.Traf.DMABytes.Value() != 0 {
		t.Fatal("empty transfer produced traffic")
	}
}

func TestTransferOutRoundTrip(t *testing.T) {
	e, link, m := newEngine()
	// Allocate a 2-page destination buffer in host memory.
	prp, err := nvme.BuildPRP(m, make([]byte, 6000))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 6000)
	for i := range data {
		data[i] = byte(i * 13)
	}
	if _, err := e.TransferOut(0, m, prp, data); err != nil {
		t.Fatal(err)
	}
	got, err := prp.Gather(m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read DMA mismatch")
	}
	if link.Traf.DMABytes.Value() != 2*8192 {
		// BuildPRP transfer (none recorded: BuildPRP doesn't transfer) —
		// only the out transfer counts: 8192.
		if link.Traf.DMABytes.Value() != 8192 {
			t.Fatalf("traffic %d", link.Traf.DMABytes.Value())
		}
	}
}

func TestTransferOutEmpty(t *testing.T) {
	e, _, m := newEngine()
	end, err := e.TransferOut(9, m, nvme.PRPList{}, nil)
	if err != nil || end != 9 {
		t.Fatalf("empty out transfer: %v %v", end, err)
	}
}

func TestTransferOutOverflow(t *testing.T) {
	e, _, m := newEngine()
	prp, _ := nvme.BuildPRP(m, make([]byte, 100)) // 1-page capacity
	if _, err := e.TransferOut(0, m, prp, make([]byte, 9000)); err == nil {
		t.Fatal("overflowing TransferOut accepted")
	}
}

func TestMemcpyAccounting(t *testing.T) {
	e, _, _ := newEngine()
	end := e.Memcpy(0, 1000)
	if end != sim.Time(DefaultMemcpyModel().Cost(1000)) {
		t.Fatalf("memcpy end = %v", end)
	}
	if e.Stats().Memcpys.Value() != 1 || e.Stats().MemcpyBytes.Value() != 1000 {
		t.Fatal("memcpy stats wrong")
	}
	if e.Stats().MemcpyTime.Value() != int64(DefaultMemcpyModel().Cost(1000)) {
		t.Fatal("memcpy time not recorded")
	}
	if e.Memcpy(7, 0) != 7 {
		t.Fatal("zero memcpy advanced time")
	}
	if e.MemcpyCost(100) != DefaultMemcpyModel().Cost(100) {
		t.Fatal("MemcpyCost mismatch")
	}
}

func TestDMASerializesOnWire(t *testing.T) {
	e, _, m := newEngine()
	v := make([]byte, 4096)
	prp1, _ := nvme.BuildPRP(m, v)
	prp2, _ := nvme.BuildPRP(m, v)
	_, end1, err := e.TransferIn(0, m, prp1)
	if err != nil {
		t.Fatal(err)
	}
	_, end2, err := e.TransferIn(0, m, prp2)
	if err != nil {
		t.Fatal(err)
	}
	if end2 <= end1 {
		t.Fatalf("second transfer did not queue: %v <= %v", end2, end1)
	}
}
