// Package dma models the in-device DMA engine BandSlim must accommodate:
// PRP-described page-unit transfers whose size and destination address are
// required to be 4 KiB aligned (§2.5), plus a device-side memcpy cost model
// (the ARM-class copies that the packing policies trade against NAND space).
package dma

import (
	"fmt"

	"bandslim/internal/fault"
	"bandslim/internal/metrics"
	"bandslim/internal/nvme"
	"bandslim/internal/pcie"
	"bandslim/internal/sim"
	"bandslim/internal/trace"
)

// ErrTransfer is an injected DMA transfer failure. It wraps the fault
// package's transient sentinel, so the device controller surfaces it as a
// retryable NVMe status.
var ErrTransfer = fmt.Errorf("dma: transfer error: %w", fault.ErrTransient)

// PageAligned reports whether an address or size satisfies the engine's
// 4 KiB alignment restriction.
func PageAligned(n int64) bool { return n%pcie.MemoryPageSize == 0 }

// MemcpyModel prices device-side memory copies.
type MemcpyModel struct {
	// BytesPerSecond is the copy bandwidth of the device CPU
	// (Cortex-A9-class, ~1 GB/s by default).
	BytesPerSecond float64
	// Fixed is the per-copy overhead.
	Fixed sim.Duration
}

// DefaultMemcpyModel returns the calibrated device-copy costs. The in-device
// ARM core copies slowly relative to the DMA engine (§3.3.2: "given the
// resource constraints of storage devices, large memory copies can
// significantly slow down operations"); 100 MB/s reproduces the Fig. 12(d)
// memcpy-time scale.
func DefaultMemcpyModel() MemcpyModel {
	return MemcpyModel{BytesPerSecond: 100e6, Fixed: 200 * sim.Nanosecond}
}

// Cost reports the duration of copying n bytes.
func (m MemcpyModel) Cost(n int) sim.Duration {
	if n <= 0 {
		return 0
	}
	return m.Fixed + sim.Duration(float64(n)/m.BytesPerSecond*1e9)
}

// Stats tallies engine activity.
type Stats struct {
	Transfers        metrics.Counter // page-unit DMA operations
	BytesTransferred metrics.Counter // wire bytes (page multiples)
	Memcpys          metrics.Counter
	MemcpyBytes      metrics.Counter
	MemcpyTime       metrics.Counter // nanoseconds of device CPU copy time
	TransferFaults   metrics.Counter // injected transfer failures
}

// Engine is the device's DMA engine. Transfers occupy the PCIe link and are
// accounted on its ledger; copies burn simulated device-CPU time tracked in
// Stats (the paper's Fig. 12(d) metric).
type Engine struct {
	link   *pcie.Link
	memcpy MemcpyModel
	stats  Stats
	tr     trace.Tracer
	inj    *fault.Injector
}

// NewEngine returns an engine attached to the link.
func NewEngine(link *pcie.Link, m MemcpyModel) *Engine {
	return &Engine{link: link, memcpy: m}
}

// Stats exposes the engine's tallies.
func (e *Engine) Stats() *Stats { return &e.stats }

// SetTracer enables transfer/memcpy span tracing; nil turns it back off.
func (e *Engine) SetTracer(tr trace.Tracer) { e.tr = tr }

// SetInjector installs a plan-driven fault injector (nil disables). The
// engine consults it before moving any payload bytes, so a faulted transfer
// leaves both host and device memory untouched.
func (e *Engine) SetInjector(inj *fault.Injector) { e.inj = inj }

// checkFault evaluates the injector at a DMA site. A power-cut effect
// surfaces the power-cut sentinel; media and transient effects both surface
// ErrTransfer (on a link, every data error is a transfer error, and the
// host may retry it).
func (e *Engine) checkFault(site fault.Site, t sim.Time) error {
	eff, ok := e.inj.Check(site, t)
	if !ok {
		return nil
	}
	e.stats.TransferFaults.Inc()
	if eff == fault.EffectPowerCut {
		return fmt.Errorf("dma: %w", fault.ErrPowerCut)
	}
	return ErrTransfer
}

// TransferIn performs a host→device page-unit DMA described by a PRP list:
// it gathers the payload from host memory, moves full pages across the link
// (the traffic bloat of §2.3), and returns the payload plus the completion
// time. The returned slice is padded to the page-aligned transfer size, as
// the engine writes whole pages into device memory; the first prp.Payload
// bytes are the value.
func (e *Engine) TransferIn(t sim.Time, m *nvme.HostMemory, prp nvme.PRPList) ([]byte, sim.Time, error) {
	payload, end, err := e.TransferInTo(t, m, prp, nil)
	if err != nil || payload == nil {
		return nil, end, err
	}
	buf := make([]byte, prp.TransferSize())
	copy(buf, payload)
	return buf, end, nil
}

// TransferInTo is the scratch-reusing variant of TransferIn: the payload is
// gathered by appending to dst (pass scratch[:0] to reuse capacity) and the
// returned slice holds exactly prp.Payload bytes — no page padding, no
// allocation once dst has grown to the working-set size. Link occupancy and
// the byte ledger are identical to TransferIn: full pages still cross the
// wire.
func (e *Engine) TransferInTo(t sim.Time, m *nvme.HostMemory, prp nvme.PRPList, dst []byte) ([]byte, sim.Time, error) {
	if prp.Payload == 0 {
		return nil, t, nil
	}
	if err := e.checkFault(fault.SiteDMAIn, t); err != nil {
		return nil, t, err
	}
	payload, err := prp.GatherInto(m, dst)
	if err != nil {
		return nil, t, fmt.Errorf("dma: gather: %w", err)
	}
	size := prp.TransferSize()
	if !PageAligned(int64(size)) {
		return nil, t, fmt.Errorf("dma: transfer size %d not page aligned", size)
	}
	e.link.RecordDMA(int64(size))
	e.stats.Transfers.Inc()
	e.stats.BytesTransferred.Add(int64(size))
	perPage := sim.Duration(size/pcie.MemoryPageSize) * e.link.Model.DMAPerPage
	end := e.link.Occupy(t.Add(perPage), int64(size))
	if e.tr != nil {
		e.tr.Emit(trace.Event{Cat: trace.CatDMA, Name: trace.EvDMAIn, Start: t, End: end, Bytes: int64(size), Arg: int64(prp.Payload)})
	}
	return payload, end, nil
}

// TransferInSGL performs a host→device Scatter-Gather List transfer: exact
// payload bytes cross the link (no page-unit bloat), but the engine pays the
// SGL setup and per-descriptor costs that make SGL a loser below ~32 KB
// (§2.5). One descriptor per host page, as the Linux driver maps buffers.
func (e *Engine) TransferInSGL(t sim.Time, m *nvme.HostMemory, prp nvme.PRPList) ([]byte, sim.Time, error) {
	payload, end, err := e.TransferInSGLTo(t, m, prp, nil)
	if err != nil || payload == nil {
		return nil, end, err
	}
	out := make([]byte, len(payload))
	copy(out, payload)
	return out, end, nil
}

// TransferInSGLTo is the scratch-reusing variant of TransferInSGL: the payload
// is gathered by appending to dst (pass scratch[:0] to reuse capacity). Link
// occupancy and the byte ledger are identical to TransferInSGL.
func (e *Engine) TransferInSGLTo(t sim.Time, m *nvme.HostMemory, prp nvme.PRPList, dst []byte) ([]byte, sim.Time, error) {
	if prp.Payload == 0 {
		return nil, t, nil
	}
	if err := e.checkFault(fault.SiteDMAIn, t); err != nil {
		return nil, t, err
	}
	payload, err := prp.GatherInto(m, dst)
	if err != nil {
		return nil, t, fmt.Errorf("dma: sgl gather: %w", err)
	}
	segments := len(prp.Pages)
	e.link.RecordSGLDescriptors(segments)
	e.link.RecordDMA(int64(prp.Payload))
	e.stats.Transfers.Inc()
	e.stats.BytesTransferred.Add(int64(prp.Payload))
	setup := e.link.Model.SGLSetup + sim.Duration(segments)*e.link.Model.SGLPerSegment
	end := e.link.Occupy(t.Add(setup), int64(prp.Payload))
	if e.tr != nil {
		e.tr.Emit(trace.Event{Cat: trace.CatDMA, Name: trace.EvSGLIn, Start: t, End: end, Bytes: int64(prp.Payload), Arg: int64(segments)})
	}
	return payload, end, nil
}

// TransferOut performs a device→host page-unit DMA (reads): data is
// scattered into the PRP list's pages, full pages cross the link, and the
// completion time is returned.
func (e *Engine) TransferOut(t sim.Time, m *nvme.HostMemory, prp nvme.PRPList, data []byte) (sim.Time, error) {
	if len(data) == 0 {
		return t, nil
	}
	if err := e.checkFault(fault.SiteDMAOut, t); err != nil {
		return t, err
	}
	if err := prp.Scatter(m, data); err != nil {
		return t, fmt.Errorf("dma: scatter: %w", err)
	}
	size := int64(prp.TransferSize())
	e.link.RecordDMA(size)
	e.stats.Transfers.Inc()
	e.stats.BytesTransferred.Add(size)
	perPage := sim.Duration(size/pcie.MemoryPageSize) * e.link.Model.DMAPerPage
	end := e.link.Occupy(t.Add(perPage), size)
	if e.tr != nil {
		e.tr.Emit(trace.Event{Cat: trace.CatDMA, Name: trace.EvDMAOut, Start: t, End: end, Bytes: size, Arg: int64(len(data))})
	}
	return end, nil
}

// Memcpy accounts for a device-side copy of n bytes and returns its
// completion time.
func (e *Engine) Memcpy(t sim.Time, n int) sim.Time {
	if n <= 0 {
		return t
	}
	d := e.memcpy.Cost(n)
	e.stats.Memcpys.Inc()
	e.stats.MemcpyBytes.Add(int64(n))
	e.stats.MemcpyTime.Add(int64(d))
	end := t.Add(d)
	if e.tr != nil {
		e.tr.Emit(trace.Event{Cat: trace.CatDMA, Name: trace.EvMemcpy, Start: t, End: end, Bytes: int64(n)})
	}
	return end
}

// MemcpyCost exposes the copy price without performing one (used by packing
// policies for planning).
func (e *Engine) MemcpyCost(n int) sim.Duration { return e.memcpy.Cost(n) }
