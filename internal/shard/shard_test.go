package shard

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"testing"

	"bandslim/internal/device"
	"bandslim/internal/driver"
	"bandslim/internal/nand"
)

// testOptions returns a compact, fast stack configuration.
func testOptions() Options {
	dcfg := device.DefaultConfig()
	dcfg.Geometry = nand.Geometry{
		Channels: 2, WaysPerChannel: 2, BlocksPerWay: 64, PagesPerBlock: 32, PageSize: 16 * 1024,
	}
	dcfg.LSM.MemTableEntries = 256
	return Options{
		Device:     dcfg,
		Method:     driver.MethodAdaptive,
		Thresholds: driver.DefaultThresholds(),
	}
}

func newTestShard(t *testing.T, id int) *Shard {
	t.Helper()
	s, err := New(id, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestStackConstruction(t *testing.T) {
	st, err := NewStack(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if st.Clock == nil || st.Link == nil || st.Mem == nil || st.Dev == nil || st.Drv == nil {
		t.Fatal("NewStack left a component nil")
	}
	if st.Clock.Now() != 0 {
		t.Fatal("fresh stack clock not at zero")
	}
}

func TestShardPutGetDelete(t *testing.T) {
	s := newTestShard(t, 0)
	if err := s.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get([]byte("k"))
	if err != nil || string(got) != "v" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if err := s.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get([]byte("k")); err == nil {
		t.Fatal("deleted key still readable")
	}
	if s.Now() <= 0 {
		t.Fatal("shard clock did not advance")
	}
	if s.ID() != 0 {
		t.Fatalf("ID = %d", s.ID())
	}
}

func TestShardCloseIdempotent(t *testing.T) {
	s, err := New(3, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // must not panic or hang
}

// Do serializes concurrent callers onto the worker; under -race this
// validates that all simulation state is single-goroutine confined.
func TestShardDoSerializes(t *testing.T) {
	s := newTestShard(t, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Get returns a view into the shard worker's read buffer, only
			// valid until the next op; concurrent readers need the copying
			// GetInto with goroutine-owned scratch.
			var dst []byte
			for i := 0; i < 20; i++ {
				key := []byte(fmt.Sprintf("g%d-%d", g, i))
				if err := s.Put(key, []byte{byte(g)}); err != nil {
					t.Error(err)
					return
				}
				v, err := s.GetInto(key, dst)
				if err != nil || len(v) != 1 || v[0] != byte(g) {
					t.Errorf("GetInto(%s) = %v, %v", key, v, err)
					return
				}
				dst = v
			}
		}(g)
	}
	wg.Wait()
	if got := s.Stack().Drv.Stats().Puts.Value(); got != 8*20 {
		t.Fatalf("Puts = %d, want %d", got, 8*20)
	}
}

func TestPartitionerDeterministicAndCovering(t *testing.T) {
	p, err := NewPartitioner(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewPartitioner(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	key := make([]byte, 4)
	for i := 0; i < 4096; i++ {
		binary.BigEndian.PutUint32(key, uint32(i))
		a, b := p.Shard(key), q.Shard(key)
		if a != b {
			t.Fatalf("same seed disagrees on key %d: %d vs %d", i, a, b)
		}
		if a < 0 || a >= 4 {
			t.Fatalf("shard %d out of range", a)
		}
		counts[a]++
	}
	// Sequential keys must spread: no shard may be starved or hog the space.
	for i, c := range counts {
		if c < 4096/4/2 || c > 4096/4*2 {
			t.Fatalf("unbalanced partition: shard %d got %d of 4096", i, c)
		}
	}
	if p.Shards() != 4 {
		t.Fatalf("Shards() = %d", p.Shards())
	}
}

func TestPartitionerSingleShard(t *testing.T) {
	p, err := NewPartitioner(1, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range [][]byte{{0}, []byte("abc"), bytes.Repeat([]byte{0xFF}, 16)} {
		if p.Shard(k) != 0 {
			t.Fatal("single-shard partitioner must map everything to 0")
		}
	}
	if _, err := NewPartitioner(0, 1); err == nil {
		t.Fatal("0 shards accepted")
	}
}

func TestMergeIteratorGlobalOrder(t *testing.T) {
	shards := []*Shard{newTestShard(t, 0), newTestShard(t, 1), newTestShard(t, 2)}
	p, err := NewPartitioner(len(shards), 7)
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for i := 0; i < 90; i++ {
		key := []byte(fmt.Sprintf("mk%03d", i))
		if err := shards[p.Shard(key)].Put(key, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		want = append(want, string(key))
	}
	sort.Strings(want)
	mi, err := NewMergeIterator(shards, []byte{0})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for mi.Valid() {
		got = append(got, string(mi.Key()))
		if len(got) <= 90 && mi.Value() == nil {
			t.Fatal("valid position with nil value")
		}
		mi.Next()
	}
	if mi.Err() != nil {
		t.Fatal(mi.Err())
	}
	if len(got) != len(want) {
		t.Fatalf("merged %d pairs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: got %q, want %q", i, got[i], want[i])
		}
	}
}

func TestMergeIteratorSeekMidRange(t *testing.T) {
	shards := []*Shard{newTestShard(t, 0), newTestShard(t, 1)}
	p, err := NewPartitioner(len(shards), 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		key := []byte(fmt.Sprintf("sk%02d", i))
		if err := shards[p.Shard(key)].Put(key, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	mi, err := NewMergeIterator(shards, []byte("sk25"))
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	prev := ""
	for mi.Valid() {
		k := string(mi.Key())
		if k < "sk25" {
			t.Fatalf("key %q before seek point", k)
		}
		if k <= prev {
			t.Fatalf("keys out of order: %q after %q", k, prev)
		}
		prev = k
		count++
		mi.Next()
	}
	if count != 15 {
		t.Fatalf("scanned %d pairs from sk25, want 15", count)
	}
}

func TestMergeIteratorEmpty(t *testing.T) {
	shards := []*Shard{newTestShard(t, 0)}
	mi, err := NewMergeIterator(shards, []byte{0})
	if err != nil {
		t.Fatal(err)
	}
	if mi.Valid() {
		t.Fatal("empty shard set produced a pair")
	}
	if mi.Key() != nil || mi.Value() != nil || mi.Err() != nil {
		t.Fatal("invalid iterator must report nil key/value and no error")
	}
	mi.Next() // must be a no-op, not a panic
}
