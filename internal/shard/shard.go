// Package shard runs N independent BandSlim host+device stacks in parallel.
//
// The paper's testbed is deliberately serialized: one passthrough SQ/CQ pair
// and one synchronous round trip per command (§4.2 notes the improvement
// that serialization leaves on the table). A Shard is one such serialized
// stack — its own sim.Clock, pcie.Link, nvme.HostMemory, device.Device, and
// driver.Driver — bound to a dedicated worker goroutine, so a front-end that
// hash-partitions keys across shards (see Partitioner) advances N simulated
// devices concurrently on N host cores, like parallel NVMe queue pairs
// feeding independent controllers.
//
// Each shard stays exactly as deterministic as a single stack: given the
// key partition, every shard sees the same command sequence regardless of
// host scheduling, because all device access happens on the shard's worker
// goroutine in submission order.
package shard

import (
	"fmt"
	"sync"

	"bandslim/internal/device"
	"bandslim/internal/driver"
	"bandslim/internal/nvme"
	"bandslim/internal/pcie"
	"bandslim/internal/sim"
	"bandslim/internal/trace"
)

// Options assemble one stack. The caller normalizes defaults (device
// geometry, thresholds) before construction so every stack built from the
// same Options is identical.
type Options struct {
	Device     device.Config
	Method     driver.Method
	Thresholds driver.Thresholds
	Pipelined  bool
	// Tracer, when non-nil, receives every command-level event the stack
	// emits, stamped with ShardID. Nil keeps the zero-cost disabled path.
	Tracer  trace.Tracer
	ShardID int
}

// Stack is one full simulated host+device pair: the components bandslim.DB
// wires together, shared here so the single-DB and sharded front-ends build
// byte-identical stacks.
type Stack struct {
	Clock *sim.Clock
	Link  *pcie.Link
	Mem   *nvme.HostMemory
	Dev   *device.Device
	Drv   *driver.Driver
}

// NewStack builds the full stack from normalized options.
func NewStack(o Options) (*Stack, error) {
	clock := sim.NewClock()
	link := pcie.NewLink(pcie.DefaultCostModel())
	mem := nvme.NewHostMemory()
	dev, err := device.New(o.Device, clock, link, mem)
	if err != nil {
		return nil, err
	}
	drv := driver.New(clock, link, mem, dev, o.Method, o.Thresholds)
	drv.SetPipelined(o.Pipelined)
	if tr := trace.WithShard(o.Tracer, o.ShardID); tr != nil {
		link.Attach(clock, tr)
		dev.SetTracer(tr)
		drv.SetTracer(tr)
	}
	return &Stack{Clock: clock, Link: link, Mem: mem, Dev: dev, Drv: drv}, nil
}

// Shard is one stack plus the worker goroutine that owns it. All simulation
// state is touched only from the worker, so shards need no internal locking
// and different shards run truly in parallel.
type Shard struct {
	id      int
	stack   *Stack
	afterOp func()
	reqs    chan func()
	done    chan struct{}
	stop    sync.Once
}

// New builds a shard and starts its worker. Callers must Close it to stop
// the goroutine.
func New(id int, o Options) (*Shard, error) {
	st, err := NewStack(o)
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", id, err)
	}
	s := &Shard{id: id, stack: st, reqs: make(chan func()), done: make(chan struct{})}
	go s.loop()
	return s, nil
}

func (s *Shard) loop() {
	for fn := range s.reqs {
		fn()
	}
	close(s.done)
}

// ID reports the shard's index.
func (s *Shard) ID() int { return s.id }

// Stack exposes the shard's simulation components. Touch them only inside
// Do (or after Close, when the worker has exited).
func (s *Shard) Stack() *Stack { return s.stack }

// SetAfterOp installs a hook the worker runs after every driver operation
// (Put/Get/Delete/Flush/Seek/Next) — the sampling point for simulated-time
// metrics. Install it before the first operation; the hook executes on the
// worker goroutine, so it may touch the Stack freely.
func (s *Shard) SetAfterOp(fn func()) { s.afterOp = fn }

// opDone fires the after-op hook; called on the worker goroutine.
func (s *Shard) opDone() {
	if s.afterOp != nil {
		s.afterOp()
	}
}

// Do runs fn on the shard's worker goroutine and waits for it to finish.
// Calling Do on a closed shard panics; front-ends gate on their own closed
// state first.
func (s *Shard) Do(fn func()) {
	ran := make(chan struct{})
	s.reqs <- func() {
		fn()
		close(ran)
	}
	<-ran
}

// Close stops the worker goroutine and waits for it to exit. Idempotent.
func (s *Shard) Close() {
	s.stop.Do(func() { close(s.reqs) })
	<-s.done
}

// Put stores a key-value pair on this shard.
func (s *Shard) Put(key, value []byte) error {
	var err error
	s.Do(func() { err = s.stack.Drv.Put(key, value); s.opDone() })
	return err
}

// Get fetches the value for key from this shard.
func (s *Shard) Get(key []byte) ([]byte, error) {
	var (
		v   []byte
		err error
	)
	s.Do(func() { v, err = s.stack.Drv.Get(key); s.opDone() })
	return v, err
}

// Delete removes a key from this shard.
func (s *Shard) Delete(key []byte) error {
	var err error
	s.Do(func() { err = s.stack.Drv.Delete(key); s.opDone() })
	return err
}

// Flush forces this shard's buffered values and index entries to NAND.
func (s *Shard) Flush() error {
	var err error
	s.Do(func() { err = s.stack.Drv.Flush(); s.opDone() })
	return err
}

// Seek positions this shard's device-side iterator at the first key >= start.
func (s *Shard) Seek(start []byte) error {
	var err error
	s.Do(func() { err = s.stack.Drv.Seek(start); s.opDone() })
	return err
}

// Next returns the shard iterator's current pair and advances it;
// driver.ErrIterDone signals exhaustion.
func (s *Shard) Next() (key, value []byte, err error) {
	s.Do(func() { key, value, err = s.stack.Drv.Next(); s.opDone() })
	return key, value, err
}

// Now reports the shard's simulated time.
func (s *Shard) Now() sim.Time {
	var t sim.Time
	s.Do(func() { t = s.stack.Clock.Now() })
	return t
}
