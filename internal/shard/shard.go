// Package shard runs N independent BandSlim host+device stacks in parallel.
//
// The paper's testbed is deliberately serialized: one passthrough SQ/CQ pair
// and one synchronous round trip per command (§4.2 notes the improvement
// that serialization leaves on the table). A Shard is one such serialized
// stack — its own sim.Clock, pcie.Link, nvme.HostMemory, device.Device, and
// driver.Driver — bound to a dedicated worker goroutine, so a front-end that
// hash-partitions keys across shards (see Partitioner) advances N simulated
// devices concurrently on N host cores, like parallel NVMe queue pairs
// feeding independent controllers.
//
// Each shard stays exactly as deterministic as a single stack: given the
// key partition, every shard sees the same command sequence regardless of
// host scheduling, because all device access happens on the shard's worker
// goroutine in submission order.
//
// Operations cross to the worker through one reusable typed call frame per
// shard (guarded by a submit mutex) rather than per-op closures, so the
// steady-state request path allocates nothing.
package shard

import (
	"fmt"
	"sync"

	"bandslim/internal/device"
	"bandslim/internal/driver"
	"bandslim/internal/fault"
	"bandslim/internal/nvme"
	"bandslim/internal/pcie"
	"bandslim/internal/sim"
	"bandslim/internal/trace"
)

// Options assemble one stack. The caller normalizes defaults (device
// geometry, thresholds) before construction so every stack built from the
// same Options is identical.
type Options struct {
	Device     device.Config
	Method     driver.Method
	Thresholds driver.Thresholds
	// Submission is the driver's submission policy: burst submission,
	// in-flight window depth, doorbell batching, completion coalescing. The
	// zero value is the paper's synchronous passthrough. It is validated
	// against the device ring at construction.
	Submission driver.SubmissionConfig
	// Tracer, when non-nil, receives every command-level event the stack
	// emits, stamped with ShardID. Nil keeps the zero-cost disabled path.
	Tracer  trace.Tracer
	ShardID int
	// Faults, when non-nil, arms a deterministic fault injector through the
	// stack. Each shard derives its own per-rule RNG streams from the plan
	// seed salted with ShardID, so a sharded run is reproducible yet shards
	// fail independently. Nil keeps the zero-cost disabled path.
	Faults *fault.Plan
	// Retry overrides the driver's retry policy (zero value = defaults).
	Retry driver.RetryPolicy
}

// Stack is one full simulated host+device pair: the components bandslim.DB
// wires together, shared here so the single-DB and sharded front-ends build
// byte-identical stacks.
type Stack struct {
	Clock *sim.Clock
	Link  *pcie.Link
	Mem   *nvme.HostMemory
	Dev   *device.Device
	Drv   *driver.Driver
}

// NewStack builds the full stack from normalized options.
func NewStack(o Options) (*Stack, error) {
	clock := sim.NewClock()
	link := pcie.NewLink(pcie.DefaultCostModel())
	mem := nvme.NewHostMemory()
	dev, err := device.New(o.Device, clock, link, mem)
	if err != nil {
		return nil, err
	}
	drv := driver.New(clock, link, mem, dev, o.Method, o.Thresholds)
	if err := drv.SetSubmission(o.Submission); err != nil {
		return nil, err
	}
	drv.SetRetry(o.Retry)
	// The device tiers were armed by device.New; this additionally builds
	// the host-side negative cache. Guarded so a zero config leaves the
	// stack bit-identical to a cache-free build.
	if o.Device.Cache.Enabled() {
		if err := drv.SetCache(o.Device.Cache); err != nil {
			return nil, err
		}
	}
	if o.Faults != nil {
		if err := o.Faults.Validate(); err != nil {
			return nil, err
		}
		dev.SetInjector(fault.NewInjector(o.Faults, uint64(o.ShardID)))
	}
	if tr := trace.WithShard(o.Tracer, o.ShardID); tr != nil {
		link.Attach(clock, tr)
		dev.SetTracer(tr)
		drv.SetTracer(tr)
	}
	return &Stack{Clock: clock, Link: link, Mem: mem, Dev: dev, Drv: drv}, nil
}

// DefaultBatchOps is the record cap of the per-shard batcher behind PutBatch.
const DefaultBatchOps = 128

// opKind discriminates the typed call frame.
type opKind int

const (
	opFn opKind = iota
	opPut
	opGet
	opGetInto
	opDelete
	opFlush
	opSeek
	opNext
	opPutBatch
	opGetBatch
	opGetBatchSparse
	opGetTime
)

// call is the reusable request frame a shard's submitters fill in and its
// worker executes. One frame per shard suffices: ops serialize on the worker
// anyway, and the submit mutex serializes the fill-in.
type call struct {
	kind opKind
	fn   func()

	key, value []byte   // scalar inputs; value doubles as the GetInto dst
	keys, vals [][]byte // batch inputs; vals holds GetBatch dst lanes
	lane       []int    // batch indices this shard owns (nil = all)
	miss       []bool   // sparse-batch not-found flags, parallel to keys

	rkey, rvalue []byte // scalar outputs (views or grown dst)
	n            int    // batch record count
	t            sim.Time
	err          error

	done chan struct{} // buffered (cap 1); signaled by the worker per call
}

// reset drops input/output references so the frame does not retain caller
// memory between ops.
func (c *call) reset() {
	c.fn = nil
	c.key, c.value = nil, nil
	c.keys, c.vals, c.lane = nil, nil, nil
	c.miss = nil
	c.rkey, c.rvalue = nil, nil
	c.err = nil
	c.n = 0
}

// Shard is one stack plus the worker goroutine that owns it. All simulation
// state is touched only from the worker, so shards need no internal locking
// and different shards run truly in parallel.
type Shard struct {
	id      int
	stack   *Stack
	afterOp func()
	reqs    chan *call
	done    chan struct{}
	stop    sync.Once

	// mu serializes submitters onto the single call frame; it is held from
	// fill-in until the worker's completion signal has been consumed (for
	// async batch fan-out, Pending.Wait releases it).
	mu   sync.Mutex
	call call
	// batch is the worker-owned batcher behind PutBatch, created lazily on
	// the worker goroutine.
	batch *driver.Batcher
	// winH/winI are the windowed batch-read FIFO scratch (StartGet handles
	// and their key indices), worker-owned and reused across batches.
	winH, winI []int
}

// New builds a shard and starts its worker. Callers must Close it to stop
// the goroutine.
func New(id int, o Options) (*Shard, error) {
	st, err := NewStack(o)
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", id, err)
	}
	s := &Shard{id: id, stack: st, reqs: make(chan *call), done: make(chan struct{})}
	s.call.done = make(chan struct{}, 1)
	go s.loop()
	return s, nil
}

func (s *Shard) loop() {
	for c := range s.reqs {
		s.run(c)
		c.done <- struct{}{}
	}
	close(s.done)
}

// run executes one call frame on the worker goroutine.
func (s *Shard) run(c *call) {
	drv := s.stack.Drv
	switch c.kind {
	case opFn:
		c.fn()
		return
	case opPut:
		c.err = drv.Put(c.key, c.value)
	case opGet:
		c.rvalue, c.err = drv.Get(c.key)
	case opGetInto:
		// Copy the driver's view into the caller-owned dst here on the
		// worker, before completion is signaled — race-free under
		// concurrent shard use.
		var v []byte
		v, c.err = drv.Get(c.key)
		if c.err == nil {
			c.rvalue = append(c.value[:0], v...)
		}
	case opDelete:
		c.err = drv.Delete(c.key)
	case opFlush:
		c.err = drv.Flush()
	case opSeek:
		c.err = drv.Seek(c.key)
	case opNext:
		c.rkey, c.rvalue, c.err = drv.Next()
	case opPutBatch:
		// Batch runners fire the after-op hook themselves (per batch / per
		// record).
		c.n, c.err = s.runPutBatch(c.keys, c.vals, c.lane)
		return
	case opGetBatch:
		c.n, c.err = s.runGetBatch(c.keys, c.vals, c.lane)
		return
	case opGetBatchSparse:
		c.n, c.err = s.runGetBatchSparse(c.keys, c.vals, c.miss, c.lane)
		return
	case opGetTime:
		c.t = s.stack.Clock.Now()
		return
	}
	s.opDone()
}

// runPutBatch feeds this shard's lane of records through the worker-owned
// batcher and flushes, so every record is durable on return.
func (s *Shard) runPutBatch(keys, values [][]byte, lane []int) (int, error) {
	if s.batch == nil {
		b, err := s.stack.Drv.NewBatcher(DefaultBatchOps)
		if err != nil {
			return 0, err
		}
		s.batch = b
	}
	n := 0
	put := func(i int) error {
		if err := s.batch.Put(keys[i], values[i]); err != nil {
			return err
		}
		n++
		return nil
	}
	if lane == nil {
		for i := range keys {
			if err := put(i); err != nil {
				return n, err
			}
		}
	} else {
		for _, i := range lane {
			if err := put(i); err != nil {
				return n, err
			}
		}
	}
	if err := s.batch.Flush(); err != nil {
		return n, err
	}
	s.opDone()
	return n, nil
}

// runGetBatch resolves this shard's lane of keys, copying each value into the
// caller's dst lane (vals[i], grown as needed) on the worker goroutine. With
// an asynchronous submission window configured the lane rides it — up to
// WindowDepth reads in flight at once; otherwise reads stay serial.
func (s *Shard) runGetBatch(keys, vals [][]byte, lane []int) (int, error) {
	if s.stack.Drv.WindowDepth() >= 2 {
		return s.runGetBatchWindowed(keys, vals, nil, lane)
	}
	n := 0
	get := func(i int) error {
		v, err := s.stack.Drv.Get(keys[i])
		if err != nil {
			return err
		}
		vals[i] = append(vals[i][:0], v...)
		n++
		s.opDone()
		return nil
	}
	if lane == nil {
		for i := range keys {
			if err := get(i); err != nil {
				return n, err
			}
		}
	} else {
		for _, i := range lane {
			if err := get(i); err != nil {
				return n, err
			}
		}
	}
	return n, nil
}

// runGetBatchWindowed pumps the lane through the driver's asynchronous
// submission window: keep up to WindowDepth reads in flight, wait for the
// oldest before starting the next, then drain in submission order. Results
// land in the caller's lanes exactly as the serial path places them; a nil
// miss makes any error fatal (GetBatch), a non-nil miss absorbs not-found
// completions (GetBatchSparse). Written closure-free so the steady-state
// batch-read path stays allocation-free.
func (s *Shard) runGetBatchWindowed(keys, vals [][]byte, miss []bool, lane []int) (int, error) {
	drv := s.stack.Drv
	depth := drv.WindowDepth()
	s.winH, s.winI = s.winH[:0], s.winI[:0]
	total := len(keys)
	if lane != nil {
		total = len(lane)
	}
	head, next, n := 0, 0, 0
	for {
		// Reap the oldest in-flight read while the window is full, or once
		// every key has been submitted.
		for head < len(s.winH) && (len(s.winH)-head >= depth || next == total) {
			h, i := s.winH[head], s.winI[head]
			head++
			v, err := drv.WaitGetInto(h, vals[i])
			if err != nil {
				if miss != nil {
					if st, ok := nvme.StatusOf(err); ok && st == nvme.StatusKeyNotFound {
						miss[i] = true
						vals[i] = vals[i][:0]
						n++
						s.opDone()
						continue
					}
				}
				drv.DrainWindow()
				return n, err
			}
			if miss != nil {
				miss[i] = false
			}
			vals[i] = v
			n++
			s.opDone()
		}
		if next == total {
			return n, nil
		}
		i := next
		if lane != nil {
			i = lane[next]
		}
		// A known-missing key resolves host-side: no command is built and no
		// simulated time passes, exactly as Driver.Get short-circuits the
		// serial path.
		if drv.NegativeKnown(keys[i]) {
			if miss == nil {
				drv.DrainWindow()
				return n, driver.ErrNegativeHit
			}
			miss[i] = true
			vals[i] = vals[i][:0]
			n++
			next++
			s.opDone()
			continue
		}
		h, err := drv.StartGet(keys[i])
		if err != nil {
			drv.DrainWindow()
			return n, err
		}
		s.winH = append(s.winH, h)
		s.winI = append(s.winI, i)
		next++
	}
}

// runGetBatchSparse resolves this shard's lane of keys like runGetBatch, but
// tolerates absent keys: a key-not-found completion sets miss[i] and empties
// the dst lane instead of failing the batch — the semantics a serving
// front-end needs for MGET and coalesced GET runs, where a miss is an answer
// ("no such key"), not an error.
func (s *Shard) runGetBatchSparse(keys, vals [][]byte, miss []bool, lane []int) (int, error) {
	if s.stack.Drv.WindowDepth() >= 2 {
		return s.runGetBatchWindowed(keys, vals, miss, lane)
	}
	n := 0
	get := func(i int) error {
		v, err := s.stack.Drv.Get(keys[i])
		if err != nil {
			if st, ok := nvme.StatusOf(err); ok && st == nvme.StatusKeyNotFound {
				miss[i] = true
				vals[i] = vals[i][:0]
				n++
				s.opDone()
				return nil
			}
			return err
		}
		miss[i] = false
		vals[i] = append(vals[i][:0], v...)
		n++
		s.opDone()
		return nil
	}
	if lane == nil {
		for i := range keys {
			if err := get(i); err != nil {
				return n, err
			}
		}
	} else {
		for _, i := range lane {
			if err := get(i); err != nil {
				return n, err
			}
		}
	}
	return n, nil
}

// ID reports the shard's index.
func (s *Shard) ID() int { return s.id }

// Stack exposes the shard's simulation components. Touch them only inside
// Do (or after Close, when the worker has exited).
func (s *Shard) Stack() *Stack { return s.stack }

// SetAfterOp installs a hook the worker runs after every driver operation
// (Put/Get/Delete/Flush/Seek/Next) — the sampling point for simulated-time
// metrics. Install it before the first operation; the hook executes on the
// worker goroutine, so it may touch the Stack freely.
func (s *Shard) SetAfterOp(fn func()) { s.afterOp = fn }

// opDone fires the after-op hook; called on the worker goroutine.
func (s *Shard) opDone() {
	if s.afterOp != nil {
		s.afterOp()
	}
}

// finish hands the filled-in frame to the worker and waits. Callers must
// hold s.mu and have set every input field; finish consumes the completion,
// resets the frame's references, and releases the mutex.
func (s *Shard) finish() (rkey, rvalue []byte, n int, err error) {
	c := &s.call
	s.reqs <- c
	<-c.done
	rkey, rvalue, n, err = c.rkey, c.rvalue, c.n, c.err
	c.reset()
	s.mu.Unlock()
	return rkey, rvalue, n, err
}

// Do runs fn on the shard's worker goroutine and waits for it to finish.
// Calling Do on a closed shard panics; front-ends gate on their own closed
// state first.
func (s *Shard) Do(fn func()) {
	s.mu.Lock()
	c := &s.call
	c.kind = opFn
	c.fn = fn
	s.finish()
}

// Recover mounts this shard's device after a power cut, replaying the
// battery-backed journal on the worker goroutine.
func (s *Shard) Recover() error {
	var err error
	s.Do(func() { err = s.stack.Drv.Recover() })
	return err
}

// Close stops the worker goroutine and waits for it to exit. Idempotent.
func (s *Shard) Close() {
	s.stop.Do(func() { close(s.reqs) })
	<-s.done
}

// Put stores a key-value pair on this shard.
func (s *Shard) Put(key, value []byte) error {
	s.mu.Lock()
	c := &s.call
	c.kind = opPut
	c.key, c.value = key, value
	_, _, _, err := s.finish()
	return err
}

// Get fetches the value for key from this shard. The returned slice is a
// view into the shard driver's read buffer, valid until the shard's next
// operation; callers that retain it — or share the shard across goroutines —
// must use GetInto instead.
func (s *Shard) Get(key []byte) ([]byte, error) {
	s.mu.Lock()
	c := &s.call
	c.kind = opGet
	c.key = key
	_, v, _, err := s.finish()
	return v, err
}

// GetInto fetches the value for key, copying it into dst (grown as needed)
// before the op completes. The returned slice is caller-owned and safe under
// concurrent shard use.
func (s *Shard) GetInto(key, dst []byte) ([]byte, error) {
	s.mu.Lock()
	c := &s.call
	c.kind = opGetInto
	c.key, c.value = key, dst
	_, v, _, err := s.finish()
	return v, err
}

// Delete removes a key from this shard.
func (s *Shard) Delete(key []byte) error {
	s.mu.Lock()
	c := &s.call
	c.kind = opDelete
	c.key = key
	_, _, _, err := s.finish()
	return err
}

// Flush forces this shard's buffered values and index entries to NAND.
func (s *Shard) Flush() error {
	s.mu.Lock()
	s.call.kind = opFlush
	_, _, _, err := s.finish()
	return err
}

// Seek positions this shard's device-side iterator at the first key >= start.
func (s *Shard) Seek(start []byte) error {
	s.mu.Lock()
	c := &s.call
	c.kind = opSeek
	c.key = start
	_, _, _, err := s.finish()
	return err
}

// Next returns the shard iterator's current pair and advances it;
// driver.ErrIterDone signals exhaustion. Like Get, the returned slices are
// views valid until the shard's next operation.
func (s *Shard) Next() (key, value []byte, err error) {
	s.mu.Lock()
	s.call.kind = opNext
	key, value, _, err = s.finish()
	return key, value, err
}

// PutBatch writes the lane-indexed subset of keys/values (nil lane = all)
// through the shard's batcher as bulk OpKVBatchWrite commands and flushes, so
// every accepted record is durable on return. It reports how many records
// were written.
func (s *Shard) PutBatch(keys, values [][]byte, lane []int) (int, error) {
	return s.StartPutBatch(keys, values, lane).Wait()
}

// GetBatch resolves the lane-indexed subset of keys (nil lane = all), copying
// each value into the matching vals lane (vals[i], grown as needed). It
// reports how many lanes were filled; on error, lanes beyond the failing key
// are left untouched.
func (s *Shard) GetBatch(keys, vals [][]byte, lane []int) (int, error) {
	return s.StartGetBatch(keys, vals, lane).Wait()
}

// Pending is an in-flight batch handed to the shard worker; exactly one Wait
// call must follow each Start.
type Pending struct{ s *Shard }

// StartPutBatch enqueues a PutBatch without waiting, so a front-end can fan
// one logical batch out across shards and overlap their simulated work.
func (s *Shard) StartPutBatch(keys, values [][]byte, lane []int) Pending {
	s.mu.Lock()
	c := &s.call
	c.kind = opPutBatch
	c.keys, c.vals, c.lane = keys, values, lane
	s.reqs <- c
	return Pending{s: s}
}

// StartGetBatch enqueues a GetBatch without waiting; see StartPutBatch.
func (s *Shard) StartGetBatch(keys, vals [][]byte, lane []int) Pending {
	s.mu.Lock()
	c := &s.call
	c.kind = opGetBatch
	c.keys, c.vals, c.lane = keys, vals, lane
	s.reqs <- c
	return Pending{s: s}
}

// GetBatchSparse resolves the lane-indexed subset of keys like GetBatch, but
// an absent key sets miss[i] (and empties vals[i]) instead of failing the
// batch. It reports how many lanes were resolved (hits plus misses).
func (s *Shard) GetBatchSparse(keys, vals [][]byte, miss []bool, lane []int) (int, error) {
	return s.StartGetBatchSparse(keys, vals, miss, lane).Wait()
}

// StartGetBatchSparse enqueues a GetBatchSparse without waiting; see
// StartPutBatch.
func (s *Shard) StartGetBatchSparse(keys, vals [][]byte, miss []bool, lane []int) Pending {
	s.mu.Lock()
	c := &s.call
	c.kind = opGetBatchSparse
	c.keys, c.vals, c.lane = keys, vals, lane
	c.miss = miss
	s.reqs <- c
	return Pending{s: s}
}

// Wait blocks until the batch completes and releases the shard for the next
// submitter.
func (p Pending) Wait() (int, error) {
	c := &p.s.call
	<-c.done
	n, err := c.n, c.err
	c.reset()
	p.s.mu.Unlock()
	return n, err
}

// Now reports the shard's simulated time.
func (s *Shard) Now() sim.Time {
	s.mu.Lock()
	c := &s.call
	c.kind = opGetTime
	s.reqs <- c
	<-c.done
	t := c.t
	c.reset()
	s.mu.Unlock()
	return t
}
