package shard

import (
	"bytes"
	"container/heap"

	"bandslim/internal/driver"
)

// MergeIterator is a k-way merge over per-shard device iterators, the same
// idiom internal/lsm uses to merge SSTable runs: each shard contributes its
// key-ordered stream and a min-heap surfaces the globally smallest key.
// Keys are unique across shards (the partitioner assigns each key to exactly
// one shard), so no cross-shard shadowing arises; ties — impossible under a
// consistent partition — break by shard ID for determinism anyway.
//
// Like the single-device iterator, the snapshot is invalidated by writes
// interleaved with iteration; iterate before mutating.
type MergeIterator struct {
	srcs sourceHeap
	err  error
}

// source holds one shard's current pair, copied out of the shard driver's
// read-buffer views into source-owned reused buffers (the heap retains pairs
// across other shards' operations).
type source struct {
	sh    *Shard
	key   []byte
	value []byte
}

// set copies a pair into the source's reused buffers.
func (s *source) set(k, v []byte) {
	s.key = append(s.key[:0], k...)
	s.value = append(s.value[:0], v...)
}

type sourceHeap []*source

func (h sourceHeap) Len() int { return len(h) }
func (h sourceHeap) Less(i, j int) bool {
	if c := bytes.Compare(h[i].key, h[j].key); c != 0 {
		return c < 0
	}
	return h[i].sh.ID() < h[j].sh.ID()
}
func (h sourceHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *sourceHeap) Push(x any)   { *h = append(*h, x.(*source)) }
func (h *sourceHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// NewMergeIterator seeks every shard to the first key >= start and positions
// the merged view on the globally smallest pair; check Valid.
func NewMergeIterator(shards []*Shard, start []byte) (*MergeIterator, error) {
	m := &MergeIterator{}
	for _, sh := range shards {
		if err := sh.Seek(start); err != nil {
			return nil, err
		}
		k, v, err := sh.Next()
		if err == driver.ErrIterDone {
			continue
		}
		if err != nil {
			return nil, err
		}
		src := &source{sh: sh}
		src.set(k, v)
		m.srcs = append(m.srcs, src)
	}
	heap.Init(&m.srcs)
	return m, nil
}

// Valid reports whether the merged iterator holds a pair.
func (m *MergeIterator) Valid() bool { return m.err == nil && len(m.srcs) > 0 }

// Key returns the current key.
func (m *MergeIterator) Key() []byte {
	if !m.Valid() {
		return nil
	}
	return m.srcs[0].key
}

// Value returns the current value.
func (m *MergeIterator) Value() []byte {
	if !m.Valid() {
		return nil
	}
	return m.srcs[0].value
}

// Err reports the error that stopped iteration, if any.
func (m *MergeIterator) Err() error { return m.err }

// Next advances to the following pair in global key order.
func (m *MergeIterator) Next() {
	if !m.Valid() {
		return
	}
	top := m.srcs[0]
	k, v, err := top.sh.Next()
	if err == driver.ErrIterDone {
		heap.Pop(&m.srcs)
		return
	}
	if err != nil {
		m.err = err
		return
	}
	top.set(k, v)
	heap.Fix(&m.srcs, 0)
}
