package shard

import (
	"fmt"

	"bandslim/internal/sim"
)

// Partitioner assigns keys to shards with the keyed 32-bit Feistel family
// internal/workload uses for key generation: the key bytes fold to 32 bits,
// a 4-round Feistel permutation decorrelates them from any structure in the
// key space (sequential fillseq keys spread evenly), and the result reduces
// modulo the shard count. The assignment is a pure function of (key, seed),
// so a workload replays onto the same shards in every run.
type Partitioner struct {
	keys [4]uint32
	n    uint32
}

// NewPartitioner returns a partitioner over shards shards, keyed by seed.
func NewPartitioner(shards int, seed uint64) (*Partitioner, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: partitioner needs >= 1 shard, got %d", shards)
	}
	r := sim.NewRNG(seed)
	p := &Partitioner{n: uint32(shards)}
	for i := range p.keys {
		p.keys[i] = r.Uint32()
	}
	return p, nil
}

// Shards reports the shard count.
func (p *Partitioner) Shards() int { return int(p.n) }

// Shard maps a key to its shard index in [0, Shards()).
func (p *Partitioner) Shard(key []byte) int {
	if p.n == 1 {
		return 0
	}
	x := fold(key)
	l, r := uint16(x>>16), uint16(x)
	for _, k := range p.keys {
		fr := uint16((uint32(r)*0x9E37 + k) >> 3)
		l, r = r, l^fr
	}
	return int((uint32(l)<<16 | uint32(r)) % p.n)
}

// fold collapses a key of any length (the API allows 1–16 bytes) into the
// 32-bit domain of the Feistel permutation, FNV-1a style.
func fold(key []byte) uint32 {
	h := uint32(2166136261)
	for _, b := range key {
		h ^= uint32(b)
		h *= 16777619
	}
	return h
}
