// Package vlog implements the value log of the KV-separated LSM-tree: a
// linear, logical NAND flash address space that values are appended to
// through the NAND page buffer, with the byte-granular value addressing of
// §3.4 (fine-grained packing makes value addresses byte offsets, not page
// numbers).
//
// Reads stitch together flushed pages (via the FTL) and still-open pages
// (from the buffer), because a value may straddle the durability boundary.
package vlog

import (
	"fmt"

	"bandslim/internal/dma"
	"bandslim/internal/ftl"
	"bandslim/internal/metrics"
	"bandslim/internal/pagebuf"
	"bandslim/internal/sim"
)

// Addr is a byte-granular vLog address. The paper widens the LSM-tree's
// value-address fields to hold these (§3.4); 40 bits cover 1 TB.
type Addr int64

// Stats tallies vLog activity.
type Stats struct {
	Appends        metrics.Counter
	Reads          metrics.Counter
	ReadPages      metrics.Counter // NAND pages touched by reads
	CacheHits      metrics.Counter // reads served by the last-page cache
	ReclaimedPages metrics.Counter // pages freed by garbage collection
}

// VLog is the value log: a *circular* log over the region's pages. Virtual
// byte addresses grow monotonically; the page a virtual address lives on is
// its page number modulo the region size, so reclaiming the tail (WiscKey-
// style garbage collection, which relocates live values to the head) makes
// the space reusable. Not safe for concurrent use (single controller).
type VLog struct {
	buf      *pagebuf.Buffer
	ftl      *ftl.FTL
	baseLPN  int // first FTL logical page of the vLog region
	maxPages int // region size in pages
	pageSize int
	tail     int64 // lowest live virtual byte offset (page aligned)
	// Last-page read cache: firmware keeps the most recently read NAND
	// page in DRAM, so sequential scans over a densely packed log
	// amortize one NAND read across every value on the page. Virtual page
	// numbers are unique forever (the log is circular but offsets are
	// monotonic), so the cache can never serve stale data.
	cachePage int64
	cacheData []byte
	stats     Stats
}

// Build constructs the page buffer and vLog together over FTL pages
// [baseLPN, baseLPN+maxPages), wiring the buffer's flush path into the FTL
// region. This is the normal constructor.
func Build(f *ftl.FTL, bufCfg pagebuf.Config, eng *dma.Engine, baseLPN, maxPages int) (*VLog, error) {
	if baseLPN < 0 || maxPages <= 0 || baseLPN+maxPages > f.LogicalPages() {
		return nil, fmt.Errorf("vlog: region [%d,%d) exceeds FTL capacity %d",
			baseLPN, baseLPN+maxPages, f.LogicalPages())
	}
	if bufCfg.PageSize != f.PageSize() {
		return nil, fmt.Errorf("vlog: page size %d != FTL page size %d", bufCfg.PageSize, f.PageSize())
	}
	v := &VLog{ftl: f, baseLPN: baseLPN, maxPages: maxPages, pageSize: bufCfg.PageSize, cachePage: -1}
	buf, err := pagebuf.New(bufCfg, eng, v.flushPage)
	if err != nil {
		return nil, err
	}
	v.buf = buf
	return v, nil
}

// lpnOf maps a virtual page number onto the circular region.
func (v *VLog) lpnOf(pageNo int64) int {
	return v.baseLPN + int(pageNo%int64(v.maxPages))
}

// flushPage persists one vLog page through the FTL.
func (v *VLog) flushPage(t sim.Time, pageNo int64, data []byte) (sim.Time, error) {
	tailPage := v.tail / int64(v.pageSize)
	if pageNo-tailPage >= int64(v.maxPages) {
		return t, fmt.Errorf("vlog: page %d wraps onto live tail page %d", pageNo, tailPage)
	}
	return v.ftl.Write(t, v.lpnOf(pageNo), data)
}

// Buffer exposes the underlying page buffer (for policy stats).
func (v *VLog) Buffer() *pagebuf.Buffer { return v.buf }

// Stats exposes the vLog tallies.
func (v *VLog) Stats() *Stats { return &v.stats }

// CapacityBytes reports the byte size of the vLog region.
func (v *VLog) CapacityBytes() int64 { return int64(v.maxPages) * int64(v.pageSize) }

// AppendPiggybacked appends a value that arrived inline in NVMe commands.
func (v *VLog) AppendPiggybacked(t sim.Time, value []byte) (Addr, sim.Time, error) {
	if err := v.checkRoom(len(value)); err != nil {
		return 0, t, err
	}
	a, end, err := v.buf.PlacePiggybacked(t, value)
	if err != nil {
		return 0, t, err
	}
	v.stats.Appends.Inc()
	return Addr(a), end, nil
}

// AppendDMA appends a value that arrived by page-unit DMA.
func (v *VLog) AppendDMA(t sim.Time, value []byte) (Addr, sim.Time, error) {
	if err := v.checkRoom(len(value)); err != nil {
		return 0, t, err
	}
	a, end, err := v.buf.PlaceDMA(t, value)
	if err != nil {
		return 0, t, err
	}
	v.stats.Appends.Inc()
	return Addr(a), end, nil
}

func (v *VLog) checkRoom(n int) error {
	if v.buf.Frontier()+int64(n)+int64(v.pageSize) > v.tail+v.CapacityBytes() {
		return fmt.Errorf("vlog: full (live span [%d,%d), capacity %d); run garbage collection",
			v.tail, v.buf.Frontier(), v.CapacityBytes())
	}
	return nil
}

// Tail reports the lowest live virtual offset (everything below has been
// reclaimed).
func (v *VLog) Tail() int64 { return v.tail }

// LiveBytes reports the currently addressable span of the log.
func (v *VLog) LiveBytes() int64 { return v.buf.Frontier() - v.tail }

// FreeBytes reports how much can still be appended before GC is needed.
func (v *VLog) FreeBytes() int64 {
	free := v.tail + v.CapacityBytes() - v.buf.Frontier() - int64(v.pageSize)
	if free < 0 {
		free = 0
	}
	return free
}

// AdvanceTail reclaims pages virtual offsets below newTail (which must be
// page-aligned, at or below the flushed boundary, and monotonic). The caller
// (the controller's GC) must already have relocated every live value out of
// the reclaimed range. Freed pages are trimmed in the FTL.
func (v *VLog) AdvanceTail(newTail int64) error {
	if newTail%int64(v.pageSize) != 0 {
		return fmt.Errorf("vlog: tail %d not page aligned", newTail)
	}
	if newTail < v.tail {
		return fmt.Errorf("vlog: tail cannot move backwards (%d < %d)", newTail, v.tail)
	}
	if newTail > v.buf.FlushedBelow() {
		return fmt.Errorf("vlog: tail %d beyond flushed boundary %d", newTail, v.buf.FlushedBelow())
	}
	for p := v.tail / int64(v.pageSize); p < newTail/int64(v.pageSize); p++ {
		if err := v.ftl.Trim(v.lpnOf(p)); err != nil {
			return fmt.Errorf("vlog: trim page %d: %w", p, err)
		}
		v.stats.ReclaimedPages.Inc()
	}
	v.tail = newTail
	return nil
}

// Contains reports whether [addr, addr+n) lies entirely inside the vLog's
// live range (above the reclaimed tail, below the append frontier). Mount
// replay uses it to validate journal records before re-indexing them.
func (v *VLog) Contains(addr Addr, n int) bool {
	return int64(addr) >= v.tail && int64(addr)+int64(n) <= v.buf.Frontier()
}

// Read fetches n bytes at addr, stitching flushed NAND pages and open buffer
// pages, and returns the data plus the completion time of the slowest page
// read involved.
func (v *VLog) Read(t sim.Time, addr Addr, n int) ([]byte, sim.Time, error) {
	return v.ReadInto(t, addr, n, nil)
}

// ReadInto is the scratch-reusing variant of Read: the value is assembled by
// appending to dst (pass scratch[:0] to reuse capacity), so steady-state reads
// that hit open buffer pages or the last-page cache allocate nothing. Cost
// accounting is identical to Read.
func (v *VLog) ReadInto(t sim.Time, addr Addr, n int, dst []byte) ([]byte, sim.Time, error) {
	if int64(addr) < v.tail || int64(addr)+int64(n) > v.buf.Frontier() {
		return nil, t, fmt.Errorf("vlog: read [%d,%d) outside live range [%d,%d)",
			addr, int64(addr)+int64(n), v.tail, v.buf.Frontier())
	}
	start := len(dst)
	if cap(dst)-start >= n {
		dst = dst[:start+n]
	} else {
		dst = append(dst, make([]byte, n)...)
	}
	out := dst[start:]
	off := 0
	end := t
	for off < n {
		pos := int64(addr) + int64(off)
		pageNo := pos / int64(v.pageSize)
		inPage := int(pos % int64(v.pageSize))
		take := v.pageSize - inPage
		if take > n-off {
			take = n - off
		}
		if page, ok := v.buf.OpenPage(pageNo); ok {
			copy(out[off:off+take], page[inPage:])
		} else if pageNo == v.cachePage {
			copy(out[off:off+take], v.cacheData[inPage:])
			v.stats.CacheHits.Inc()
		} else {
			data, e, err := v.ftl.Read(t, v.lpnOf(pageNo))
			if err != nil {
				return nil, t, fmt.Errorf("vlog: page %d: %w", pageNo, err)
			}
			copy(out[off:off+take], data[inPage:])
			v.cachePage, v.cacheData = pageNo, data
			v.stats.ReadPages.Inc()
			if e > end {
				end = e
			}
		}
		off += take
	}
	v.stats.Reads.Inc()
	return dst, end, nil
}

// Flush forces every buffered page to NAND.
func (v *VLog) Flush(t sim.Time) (sim.Time, error) {
	return v.buf.FlushAll(t)
}
