package vlog

import (
	"bytes"
	"testing"

	"bandslim/internal/pagebuf"
)

func TestTailStartsAtZero(t *testing.T) {
	v := newVLog(t, pagebuf.PolicyAll)
	if v.Tail() != 0 {
		t.Fatalf("Tail = %d", v.Tail())
	}
	if v.LiveBytes() != 0 {
		t.Fatalf("LiveBytes = %d", v.LiveBytes())
	}
	if v.FreeBytes() <= 0 {
		t.Fatal("fresh vLog reports no free space")
	}
}

func TestAdvanceTailValidation(t *testing.T) {
	v := newVLog(t, pagebuf.PolicyAll)
	if err := v.AdvanceTail(100); err == nil {
		t.Fatal("unaligned tail accepted")
	}
	if err := v.AdvanceTail(16 * 1024); err == nil {
		t.Fatal("tail beyond flushed boundary accepted")
	}
	// Write and flush a page, then advancing over it works once.
	v.AppendPiggybacked(0, make([]byte, 20000))
	if _, err := v.Flush(0); err != nil {
		t.Fatal(err)
	}
	if err := v.AdvanceTail(16 * 1024); err != nil {
		t.Fatal(err)
	}
	if v.Stats().ReclaimedPages.Value() != 1 {
		t.Fatalf("ReclaimedPages = %d", v.Stats().ReclaimedPages.Value())
	}
	if err := v.AdvanceTail(0); err == nil {
		t.Fatal("backwards tail accepted")
	}
}

func TestReadBelowTailRejected(t *testing.T) {
	v := newVLog(t, pagebuf.PolicyAll)
	addr, _, err := v.AppendPiggybacked(0, bytes.Repeat([]byte{7}, 100))
	if err != nil {
		t.Fatal(err)
	}
	v.AppendPiggybacked(0, make([]byte, 20000))
	if _, err := v.Flush(0); err != nil {
		t.Fatal(err)
	}
	if err := v.AdvanceTail(16 * 1024); err != nil {
		t.Fatal(err)
	}
	if _, _, err := v.Read(0, addr, 100); err == nil {
		t.Fatal("read below reclaimed tail accepted")
	}
}

// The circular mapping: appending beyond the region size succeeds once the
// tail has advanced, and data lands intact on the reused pages.
func TestCircularWrapReusesPages(t *testing.T) {
	v := smallRegionVLog(t, 4) // 4-page region
	page := 16 * 1024
	// Fill 3 pages, flush, reclaim 2.
	v.AppendPiggybacked(0, make([]byte, 3*page-100))
	if _, err := v.Flush(0); err != nil {
		t.Fatal(err)
	}
	if err := v.AdvanceTail(int64(2 * page)); err != nil {
		t.Fatal(err)
	}
	// Now there is room for ~2 more pages; the appends wrap onto the
	// reclaimed physical pages.
	marker := bytes.Repeat([]byte{0xAB}, 3000)
	addr, _, err := v.AppendPiggybacked(0, marker)
	if err != nil {
		t.Fatalf("append after reclaim: %v", err)
	}
	got, _, err := v.Read(0, addr, len(marker))
	if err != nil || !bytes.Equal(got, marker) {
		t.Fatalf("wrapped read mismatch: %v", err)
	}
	// Overfilling beyond the live window still fails cleanly.
	var sawErr bool
	for i := 0; i < 10; i++ {
		if _, _, err := v.AppendPiggybacked(0, make([]byte, page)); err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("no capacity error despite exceeding the live window")
	}
}

func TestFreeBytesShrinksAndRecovers(t *testing.T) {
	v := smallRegionVLog(t, 8)
	before := v.FreeBytes()
	v.AppendPiggybacked(0, make([]byte, 40000))
	mid := v.FreeBytes()
	if mid >= before {
		t.Fatal("FreeBytes did not shrink")
	}
	if _, err := v.Flush(0); err != nil {
		t.Fatal(err)
	}
	if err := v.AdvanceTail(int64(2 * 16 * 1024)); err != nil {
		t.Fatal(err)
	}
	if v.FreeBytes() <= mid {
		t.Fatal("FreeBytes did not recover after reclaim")
	}
}
