package vlog

import (
	"bytes"
	"testing"
	"testing/quick"

	"bandslim/internal/dma"
	"bandslim/internal/ftl"
	"bandslim/internal/nand"
	"bandslim/internal/pagebuf"
	"bandslim/internal/pcie"
	"bandslim/internal/sim"
)

func newVLog(t *testing.T, policy pagebuf.Policy) *VLog {
	t.Helper()
	geo := nand.Geometry{Channels: 2, WaysPerChannel: 2, BlocksPerWay: 16, PagesPerBlock: 16, PageSize: 16 * 1024}
	fl, err := nand.New(geo, nand.DefaultLatency(), sim.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	f, err := ftl.New(fl, ftl.Config{OverprovisionPct: 10, GCFreeBlockLow: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng := dma.NewEngine(pcie.NewLink(pcie.DefaultCostModel()), dma.DefaultMemcpyModel())
	v, err := Build(f, pagebuf.Config{PageSize: 16 * 1024, MaxEntries: 8, Policy: policy}, eng, 0, f.LogicalPages()/2)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// smallRegionVLog builds a vLog whose region is only `pages` pages, for
// circular-log tests.
func smallRegionVLog(t *testing.T, pages int) *VLog {
	t.Helper()
	geo := nand.Geometry{Channels: 2, WaysPerChannel: 2, BlocksPerWay: 16, PagesPerBlock: 16, PageSize: 16 * 1024}
	fl, err := nand.New(geo, nand.DefaultLatency(), sim.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	f, err := ftl.New(fl, ftl.Config{OverprovisionPct: 10, GCFreeBlockLow: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng := dma.NewEngine(pcie.NewLink(pcie.DefaultCostModel()), dma.DefaultMemcpyModel())
	v, err := Build(f, pagebuf.Config{PageSize: 16 * 1024, MaxEntries: 4, Policy: pagebuf.PolicyAll}, eng, 0, pages)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestBuildValidation(t *testing.T) {
	geo := nand.Geometry{Channels: 1, WaysPerChannel: 1, BlocksPerWay: 8, PagesPerBlock: 8, PageSize: 16 * 1024}
	fl, _ := nand.New(geo, nand.DefaultLatency(), sim.NewClock())
	f, _ := ftl.New(fl, ftl.Config{OverprovisionPct: 10, GCFreeBlockLow: 2})
	eng := dma.NewEngine(pcie.NewLink(pcie.DefaultCostModel()), dma.DefaultMemcpyModel())
	cfg := pagebuf.Config{PageSize: 16 * 1024, MaxEntries: 4, Policy: pagebuf.PolicyAll}
	if _, err := Build(f, cfg, eng, 0, f.LogicalPages()+1); err == nil {
		t.Fatal("oversized region accepted")
	}
	if _, err := Build(f, cfg, eng, -1, 4); err == nil {
		t.Fatal("negative base accepted")
	}
	badCfg := cfg
	badCfg.PageSize = 8192
	if _, err := Build(f, badCfg, eng, 0, 4); err == nil {
		t.Fatal("page size mismatch accepted")
	}
}

func TestAppendReadFromBuffer(t *testing.T) {
	v := newVLog(t, pagebuf.PolicyAll)
	val := bytes.Repeat([]byte{0x42}, 500)
	addr, _, err := v.AppendPiggybacked(0, val)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := v.Read(0, addr, len(val))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, val) {
		t.Fatal("buffered read mismatch")
	}
	if v.Stats().ReadPages.Value() != 0 {
		t.Fatal("buffered read touched NAND")
	}
}

func TestAppendReadAfterFlush(t *testing.T) {
	v := newVLog(t, pagebuf.PolicyAll)
	val := bytes.Repeat([]byte{0x17}, 300)
	addr, _, err := v.AppendDMA(0, val)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Flush(0); err != nil {
		t.Fatal(err)
	}
	got, end, err := v.Read(0, addr, len(val))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, val) {
		t.Fatal("flushed read mismatch")
	}
	if v.Stats().ReadPages.Value() == 0 {
		t.Fatal("flushed read did not touch NAND")
	}
	if end == 0 {
		t.Fatal("NAND read took no time")
	}
}

// A value straddling the durability boundary reads correctly: its head from
// NAND, its tail from the open buffer.
func TestReadStraddlesFlushBoundary(t *testing.T) {
	v := newVLog(t, pagebuf.PolicyAll)
	// Fill most of page 0, then append a value crossing into page 1.
	filler := bytes.Repeat([]byte{0xEE}, 16*1024-100)
	if _, _, err := v.AppendPiggybacked(0, filler); err != nil {
		t.Fatal(err)
	}
	val := make([]byte, 300)
	for i := range val {
		val[i] = byte(i)
	}
	addr, _, err := v.AppendPiggybacked(0, val)
	if err != nil {
		t.Fatal(err)
	}
	// Page 0 flushed automatically (WP crossed it); page 1 still open.
	if v.Buffer().FlushedBelow() != 16*1024 {
		t.Fatalf("FlushedBelow = %d", v.Buffer().FlushedBelow())
	}
	got, _, err := v.Read(0, addr, len(val))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, val) {
		t.Fatal("straddling read mismatch")
	}
}

func TestReadOutOfRange(t *testing.T) {
	v := newVLog(t, pagebuf.PolicyAll)
	v.AppendPiggybacked(0, make([]byte, 100))
	if _, _, err := v.Read(0, 50, 100); err == nil {
		t.Fatal("read past frontier accepted")
	}
	if _, _, err := v.Read(0, -1, 10); err == nil {
		t.Fatal("negative read accepted")
	}
}

func TestVLogCapacityGuard(t *testing.T) {
	geo := nand.Geometry{Channels: 1, WaysPerChannel: 1, BlocksPerWay: 8, PagesPerBlock: 8, PageSize: 16 * 1024}
	fl, _ := nand.New(geo, nand.DefaultLatency(), sim.NewClock())
	f, _ := ftl.New(fl, ftl.Config{OverprovisionPct: 10, GCFreeBlockLow: 2})
	eng := dma.NewEngine(pcie.NewLink(pcie.DefaultCostModel()), dma.DefaultMemcpyModel())
	v, err := Build(f, pagebuf.Config{PageSize: 16 * 1024, MaxEntries: 4, Policy: pagebuf.PolicyAll}, eng, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v.CapacityBytes() != 32*1024 {
		t.Fatalf("CapacityBytes = %d", v.CapacityBytes())
	}
	// The region holds 2 pages; appending ~2 pages must eventually fail
	// cleanly rather than write out of range.
	var sawErr bool
	for i := 0; i < 10; i++ {
		if _, _, err := v.AppendPiggybacked(0, make([]byte, 8*1024)); err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("vLog overflow never reported")
	}
}

// Property: any mix of piggybacked and DMA appends under any policy reads
// back intact, before and after a flush.
func TestAppendReadPropertyAllPolicies(t *testing.T) {
	policies := []pagebuf.Policy{pagebuf.PolicyBlock, pagebuf.PolicyAll, pagebuf.PolicySelective, pagebuf.PolicyBackfill}
	f := func(sizes []uint16, dmaMask uint32) bool {
		for _, p := range policies {
			v := newVLog(t, p)
			type rec struct {
				addr Addr
				val  []byte
			}
			var recs []rec
			n := len(sizes)
			if n > 12 {
				n = 12
			}
			for i := 0; i < n; i++ {
				size := int(sizes[i])%3000 + 1
				val := make([]byte, size)
				for j := range val {
					val[j] = byte(j + i*7)
				}
				var addr Addr
				var err error
				if dmaMask&(1<<i) != 0 {
					addr, _, err = v.AppendDMA(0, val)
				} else {
					addr, _, err = v.AppendPiggybacked(0, val)
				}
				if err != nil {
					return false
				}
				recs = append(recs, rec{addr, val})
			}
			check := func() bool {
				for _, r := range recs {
					got, _, err := v.Read(0, r.addr, len(r.val))
					if err != nil || !bytes.Equal(got, r.val) {
						return false
					}
				}
				return true
			}
			if !check() {
				return false
			}
			if _, err := v.Flush(0); err != nil {
				return false
			}
			if !check() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
