package pagebuf

import "fmt"

// DLTEntry records one page-unit DMA placement: where the value landed in
// the vLog address space and how many bytes of it are value (the tail up to
// the next 4 KiB boundary is padding the backfilling WP may reuse).
//
// The paper stores entries compactly — a logical NAND page number (26 bits
// for 1 TB of 16 KiB pages) plus a 2-bit memory-page offset within the NAND
// page instead of a full 40-bit address, and 4 bytes of size — so a 512-entry
// table fits in 4 KiB of device memory (§3.3.3). Addr is therefore always
// 4 KiB aligned.
type DLTEntry struct {
	Addr int64 // vLog byte offset, 4 KiB aligned
	Size int64 // value bytes occupied starting at Addr
}

// EncodedBits reports the bit width of the entry's address encoding given
// the NAND page size: page-number bits + log2(pageSize/4 KiB) offset bits.
func (e DLTEntry) EncodedBits(nandPageSize int, totalBytes int64) int {
	pages := totalBytes / int64(nandPageSize)
	pageBits := 0
	for p := int64(1); p < pages; p <<= 1 {
		pageBits++
	}
	offBits := 0
	for s := 4096; s < nandPageSize; s <<= 1 {
		offBits++
	}
	return pageBits + offBits
}

// DLT is the DMA Log Table: a fixed-capacity circular queue of DMA
// placements, consumed oldest-first as the write pointer sweeps past them.
// Entries are pushed in increasing address order (the vLog frontier only
// grows), so the head is always the lowest-addressed unconsumed entry and
// the backfilling check is O(1), as §3.3.3 requires.
type DLT struct {
	ring []DLTEntry
	head int
	size int
}

// DefaultDLTCapacity matches the paper's sizing: one entry per NAND page
// buffer entry, capped at 512.
const DefaultDLTCapacity = 512

// NewDLT returns an empty table with the given capacity.
func NewDLT(capacity int) *DLT {
	if capacity < 1 {
		panic("pagebuf: DLT capacity must be >= 1")
	}
	return &DLT{ring: make([]DLTEntry, capacity)}
}

// Len reports the number of unconsumed entries.
func (d *DLT) Len() int { return d.size }

// Cap reports the table capacity.
func (d *DLT) Cap() int { return len(d.ring) }

// Full reports whether another Push would overflow.
func (d *DLT) Full() bool { return d.size == len(d.ring) }

// Push appends a DMA record. Entries must arrive in increasing address
// order; violations are programming errors and panic. Pushing into a full
// table returns an error so the caller can retire old entries first.
func (d *DLT) Push(e DLTEntry) error {
	if d.size == len(d.ring) {
		return fmt.Errorf("pagebuf: DLT full (%d entries)", d.size)
	}
	if d.size > 0 {
		last := d.ring[(d.head+d.size-1)%len(d.ring)]
		if e.Addr < last.Addr {
			panic(fmt.Sprintf("pagebuf: DLT push out of order: %d after %d", e.Addr, last.Addr))
		}
	}
	d.ring[(d.head+d.size)%len(d.ring)] = e
	d.size++
	return nil
}

// Oldest reports the lowest-addressed unconsumed entry.
func (d *DLT) Oldest() (DLTEntry, bool) {
	if d.size == 0 {
		return DLTEntry{}, false
	}
	return d.ring[d.head], true
}

// Consume retires the oldest entry. Consuming an empty table panics.
func (d *DLT) Consume() DLTEntry {
	if d.size == 0 {
		panic("pagebuf: Consume on empty DLT")
	}
	e := d.ring[d.head]
	d.head = (d.head + 1) % len(d.ring)
	d.size--
	return e
}

// Reset clears the table.
func (d *DLT) Reset() {
	d.head = 0
	d.size = 0
}
