package pagebuf

import "testing"

func TestDLTPushOldestConsume(t *testing.T) {
	d := NewDLT(4)
	if _, ok := d.Oldest(); ok {
		t.Fatal("empty DLT reported an entry")
	}
	if err := d.Push(DLTEntry{Addr: 4096, Size: 2048}); err != nil {
		t.Fatal(err)
	}
	if err := d.Push(DLTEntry{Addr: 8192, Size: 100}); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 || d.Cap() != 4 {
		t.Fatalf("Len/Cap = %d/%d", d.Len(), d.Cap())
	}
	e, ok := d.Oldest()
	if !ok || e.Addr != 4096 {
		t.Fatalf("Oldest = %+v", e)
	}
	if got := d.Consume(); got.Addr != 4096 || got.Size != 2048 {
		t.Fatalf("Consume = %+v", got)
	}
	if e, _ := d.Oldest(); e.Addr != 8192 {
		t.Fatalf("after consume, Oldest = %+v", e)
	}
}

func TestDLTFullRejectsPush(t *testing.T) {
	d := NewDLT(2)
	d.Push(DLTEntry{Addr: 0, Size: 1})
	d.Push(DLTEntry{Addr: 4096, Size: 1})
	if !d.Full() {
		t.Fatal("not full at capacity")
	}
	if err := d.Push(DLTEntry{Addr: 8192, Size: 1}); err == nil {
		t.Fatal("push into full DLT accepted")
	}
}

func TestDLTOutOfOrderPanics(t *testing.T) {
	d := NewDLT(4)
	d.Push(DLTEntry{Addr: 8192, Size: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order push did not panic")
		}
	}()
	d.Push(DLTEntry{Addr: 4096, Size: 1})
}

func TestDLTConsumeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("consume on empty DLT did not panic")
		}
	}()
	NewDLT(2).Consume()
}

func TestDLTWraparound(t *testing.T) {
	d := NewDLT(3)
	addr := int64(0)
	for round := 0; round < 10; round++ {
		for d.Len() < d.Cap() {
			if err := d.Push(DLTEntry{Addr: addr, Size: 10}); err != nil {
				t.Fatal(err)
			}
			addr += 4096
		}
		want := addr - int64(d.Len())*4096
		for d.Len() > 0 {
			if got := d.Consume(); got.Addr != want {
				t.Fatalf("round %d: consumed %d, want %d", round, got.Addr, want)
			}
			want += 4096
		}
	}
}

func TestDLTReset(t *testing.T) {
	d := NewDLT(2)
	d.Push(DLTEntry{Addr: 0, Size: 5})
	d.Reset()
	if d.Len() != 0 {
		t.Fatal("Reset kept entries")
	}
	if err := d.Push(DLTEntry{Addr: 0, Size: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestDLTZeroCapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDLT(0) did not panic")
		}
	}()
	NewDLT(0)
}

// The paper's arithmetic: 1 TB of 16 KiB pages needs 26 page bits + 2
// offset bits = 28 bits per entry address.
func TestDLTEncodedBitsMatchesPaper(t *testing.T) {
	e := DLTEntry{}
	got := e.EncodedBits(16*1024, 1<<40)
	if got != 28 {
		t.Fatalf("EncodedBits = %d, want 28 (26+2)", got)
	}
}
