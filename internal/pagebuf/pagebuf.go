// Package pagebuf implements the KV-SSD's NAND page buffer — the battery-
// backed DRAM staging area between incoming values and NAND pages — together
// with the four packing policies the paper evaluates (§3.3):
//
//   - PolicyBlock: the baseline block-SSD behaviour. Every payload starts at
//     the next 4 KiB boundary and occupies page-aligned space, so a 32-byte
//     value burns 4 KiB of NAND (Problem #2, §2.3).
//   - PolicyAll: KAML-style All Packing. Every value is memcpy'd to the
//     write pointer, maximizing density at the price of copying large
//     DMA-transferred values.
//   - PolicySelective: piggybacked values pack at the WP; DMA values are
//     placed at the next 4 KiB boundary (no copy) and the WP jumps past
//     them, trading internal fragmentation for zero large copies.
//   - PolicyBackfill: Selective Packing with Backfilling. DMA values are
//     placed page-aligned and recorded in the DMA Log Table; the WP stays
//     behind and later piggybacked values fill the gaps, skipping DLT
//     regions in O(1).
//
// The buffer addresses the value log as a linear byte space divided into
// logical NAND pages; completed pages are flushed through a caller-supplied
// function (the vLog appends them through the FTL to flash).
package pagebuf

import (
	"fmt"

	"bandslim/internal/dma"
	"bandslim/internal/metrics"
	"bandslim/internal/pcie"
	"bandslim/internal/pool"
	"bandslim/internal/sim"
	"bandslim/internal/trace"
)

// Policy selects the packing behaviour.
type Policy int

// The four policies of §3.3, in the paper's naming.
const (
	PolicyBlock Policy = iota
	PolicyAll
	PolicySelective
	PolicyBackfill
)

func (p Policy) String() string {
	switch p {
	case PolicyBlock:
		return "Block"
	case PolicyAll:
		return "All"
	case PolicySelective:
		return "Select"
	case PolicyBackfill:
		return "Backfill"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy converts a policy name (as printed by String) back to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "Block", "block":
		return PolicyBlock, nil
	case "All", "all":
		return PolicyAll, nil
	case "Select", "select", "Selective", "selective":
		return PolicySelective, nil
	case "Backfill", "backfill":
		return PolicyBackfill, nil
	}
	return 0, fmt.Errorf("pagebuf: unknown policy %q", s)
}

// FlushFunc persists one logical NAND page of the value log. pageNo is the
// logical page number within the vLog; data is exactly one NAND page.
type FlushFunc func(t sim.Time, pageNo int64, data []byte) (sim.Time, error)

// Stats tallies buffer activity.
type Stats struct {
	PiggyPlacements metrics.Counter
	DMAPlacements   metrics.Counter
	PayloadBytes    metrics.Counter // value bytes accepted
	Flushes         metrics.Counter // NAND page writes issued
	ForcedFlushes   metrics.Counter // flushes forced by the open-entry cap
	BackfillJumps   metrics.Counter // WP jumps over DLT regions
	DLTConsumed     metrics.Counter
	CopiedBytes     metrics.Counter // bytes memcpy'd into the buffer
	SkippedCopies   metrics.Counter // DMA placements that avoided a memcpy
	// FlushWaitTime accumulates the nanoseconds requests spent blocked on
	// the NAND flush pipeline (handoff backpressure) — the component that
	// dominates Block-policy response times.
	FlushWaitTime metrics.Counter
}

// Config sizes the buffer.
type Config struct {
	PageSize   int    // NAND page size (16 KiB on Cosmos+)
	MaxEntries int    // open NAND-page entries cap (512 in the paper)
	Policy     Policy // packing policy
	DLTCap     int    // DMA Log Table capacity (defaults to MaxEntries)
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.PageSize < pcie.MemoryPageSize || c.PageSize%pcie.MemoryPageSize != 0 {
		return fmt.Errorf("pagebuf: page size %d must be a positive multiple of %d", c.PageSize, pcie.MemoryPageSize)
	}
	if c.MaxEntries < 2 {
		return fmt.Errorf("pagebuf: MaxEntries %d must be >= 2", c.MaxEntries)
	}
	return nil
}

// Buffer is the NAND page buffer. It is single-owner (the device controller)
// and not safe for concurrent use, like the firmware structure it models.
type Buffer struct {
	cfg   Config
	eng   *dma.Engine
	flush FlushFunc

	pages    map[int64][]byte // open logical pages, lazily materialized
	minOpen  int64            // lowest open page number; all below are flushed
	wp       int64            // write pointer (vLog byte offset)
	frontier int64            // end of the highest placement so far
	dlt      *DLT
	// lastFlushEnd is when the in-flight NAND program completes. The
	// buffer is battery-backed DRAM, so a request triggering a flush waits
	// only for the *handoff* — it blocks only while the previous flush is
	// still occupying the NAND path (backpressure), not for its own
	// program to finish. This is what hides NAND latency behind packing
	// (§2.2) and produces the paper's Fig. 4/11/12 response shapes.
	lastFlushEnd sim.Time
	stats        Stats
	tr           trace.Tracer
	// pagePool recycles flushed page buffers back into page(); recycled pages
	// are zeroed before reuse so gap bytes stay deterministic (identical to
	// freshly allocated pages).
	pagePool pool.Bytes
	// zero is a shared all-zeros page served for in-window pages that were
	// never written (OpenPage) and flushed without content. It is read-only by
	// contract: OpenPage callers must not modify returned slices, and the
	// flush path (FTL→NAND) copies what it stores.
	zero []byte
}

// New returns a buffer. eng accounts memcpy costs; flush persists pages.
func New(cfg Config, eng *dma.Engine, flush FlushFunc) (*Buffer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.DLTCap == 0 {
		cfg.DLTCap = cfg.MaxEntries
	}
	return &Buffer{
		cfg:   cfg,
		eng:   eng,
		flush: flush,
		pages: make(map[int64][]byte),
		dlt:   NewDLT(cfg.DLTCap),
		zero:  make([]byte, cfg.PageSize),
	}, nil
}

// Stats exposes the buffer's tallies.
func (b *Buffer) Stats() *Stats { return &b.stats }

// SetTracer enables placement/flush tracing; nil turns it back off.
func (b *Buffer) SetTracer(tr trace.Tracer) { b.tr = tr }

// Policy reports the active packing policy.
func (b *Buffer) Policy() Policy { return b.cfg.Policy }

// WP reports the current write pointer (for tests and introspection).
func (b *Buffer) WP() int64 { return b.wp }

// Frontier reports the end of the highest placement.
func (b *Buffer) Frontier() int64 { return b.frontier }

// OpenPages reports how many buffer entries are currently open.
func (b *Buffer) OpenPages() int { return len(b.pages) }

func (b *Buffer) pageOf(addr int64) int64 { return addr / int64(b.cfg.PageSize) }

func alignUp(addr int64) int64 {
	const p = pcie.MemoryPageSize
	return (addr + p - 1) / p * p
}

// page materializes (or returns) an open logical page. New pages come from
// the recycle pool and are zeroed, so a reused page is indistinguishable from
// a fresh allocation.
func (b *Buffer) page(no int64) []byte {
	p, ok := b.pages[no]
	if !ok {
		p = b.pagePool.Get(b.cfg.PageSize)
		for i := range p {
			p[i] = 0
		}
		b.pages[no] = p
	}
	return p
}

// writeBytes copies value into the vLog byte space at addr, spanning pages
// as needed.
func (b *Buffer) writeBytes(addr int64, value []byte) {
	off := 0
	for off < len(value) {
		pno := b.pageOf(addr + int64(off))
		if pno < b.minOpen {
			panic(fmt.Sprintf("pagebuf: write at %d into flushed page %d", addr, pno))
		}
		p := b.page(pno)
		inPage := int((addr + int64(off)) % int64(b.cfg.PageSize))
		n := copy(p[inPage:], value[off:])
		off += n
	}
}

// ReadAt serves bytes that are still buffered (not yet flushed). It reports
// an error if any byte of the range has already been flushed or lies beyond
// the frontier.
func (b *Buffer) ReadAt(addr int64, n int) ([]byte, error) {
	if addr < b.minOpen*int64(b.cfg.PageSize) {
		return nil, fmt.Errorf("pagebuf: range [%d,%d) already flushed", addr, addr+int64(n))
	}
	if addr+int64(n) > b.frontier {
		return nil, fmt.Errorf("pagebuf: range [%d,%d) beyond frontier %d", addr, addr+int64(n), b.frontier)
	}
	out := make([]byte, n)
	off := 0
	for off < n {
		pno := b.pageOf(addr + int64(off))
		p := b.page(pno)
		inPage := int((addr + int64(off)) % int64(b.cfg.PageSize))
		off += copy(out[off:], p[inPage:])
	}
	return out, nil
}

// FlushedBelow reports the vLog offset below which everything has been
// flushed to NAND (the durable/buffered boundary the vLog read path uses).
func (b *Buffer) FlushedBelow() int64 { return b.minOpen * int64(b.cfg.PageSize) }

// OpenPage returns the buffered contents of logical page no if it is still
// open. The returned slice is the live page; callers must not modify it.
// Values can straddle the flushed boundary, so the vLog read path stitches
// page-by-page between NAND and the buffer using this accessor.
func (b *Buffer) OpenPage(no int64) ([]byte, bool) {
	if no < b.minOpen {
		return nil, false
	}
	p, ok := b.pages[no]
	if !ok {
		// Within the open window but never written: logically zeros. The
		// shared zero page is served without allocating; callers only read.
		if no <= b.pageOf(b.frontier) {
			return b.zero, true
		}
		return nil, false
	}
	return p, true
}

// PlacePiggybacked packs a value delivered through NVMe command fields and
// returns its vLog address and the completion time (memcpy plus any flush it
// triggered). Every policy memcpy's piggybacked values — they arrive in
// command dwords, not via DMA.
func (b *Buffer) PlacePiggybacked(t sim.Time, value []byte) (int64, sim.Time, error) {
	if len(value) == 0 {
		return b.wp, t, nil
	}
	var addr int64
	switch b.cfg.Policy {
	case PolicyBlock:
		// Baseline packs everything along 4 KiB boundaries.
		addr = alignUp(b.wp)
		b.wp = addr + int64(pcie.PageAlignedSize(len(value)))
	case PolicyAll, PolicySelective:
		addr = b.wp
		b.wp += int64(len(value))
	case PolicyBackfill:
		// Skip over DMA regions the WP has caught up with (O(1) per
		// check against the oldest DLT entry).
		for {
			e, ok := b.dlt.Oldest()
			if !ok || b.wp+int64(len(value)) <= e.Addr {
				break
			}
			b.wp = e.Addr + e.Size
			b.dlt.Consume()
			b.stats.BackfillJumps.Inc()
			b.stats.DLTConsumed.Inc()
			if b.tr != nil {
				b.tr.Emit(trace.Event{Cat: trace.CatPageBuf, Name: trace.EvBackfillJump, Start: t, End: t, Arg: b.wp})
			}
		}
		addr = b.wp
		b.wp += int64(len(value))
	default:
		return 0, t, fmt.Errorf("pagebuf: unknown policy %d", b.cfg.Policy)
	}
	b.writeBytes(addr, value)
	if end := addr + int64(len(value)); end > b.frontier {
		b.frontier = end
	}
	t = b.eng.Memcpy(t, len(value))
	b.stats.CopiedBytes.Add(int64(len(value)))
	b.stats.PiggyPlacements.Inc()
	b.stats.PayloadBytes.Add(int64(len(value)))
	if b.tr != nil {
		b.tr.Emit(trace.Event{Cat: trace.CatPageBuf, Name: trace.EvPiggyAppend, Start: t, End: t, Bytes: int64(len(value)), Arg: addr})
	}
	end, err := b.retirePages(t, false)
	if err != nil {
		return 0, t, err
	}
	return addr, end, nil
}

// PlaceDMA accepts a value that arrived by page-unit DMA (value holds the
// exact payload; the wire moved its page-aligned size). It returns the vLog
// address and completion time. Placement and copying depend on the policy.
func (b *Buffer) PlaceDMA(t sim.Time, value []byte) (int64, sim.Time, error) {
	if len(value) == 0 {
		return b.wp, t, nil
	}
	var addr int64
	switch b.cfg.Policy {
	case PolicyBlock:
		addr = alignUp(b.wp)
		b.wp = addr + int64(pcie.PageAlignedSize(len(value)))
		b.stats.SkippedCopies.Inc() // DMA lands directly, no copy
	case PolicyAll:
		// Pack at the WP. If the WP happens to sit on a 4 KiB boundary
		// the DMA engine can target it directly and the copy is skipped
		// (§3.3.1); otherwise the value staged at the aligned address is
		// memcpy'd back to the WP.
		addr = b.wp
		if dma.PageAligned(b.wp) {
			b.stats.SkippedCopies.Inc()
		} else {
			t = b.eng.Memcpy(t, len(value))
			b.stats.CopiedBytes.Add(int64(len(value)))
		}
		b.wp += int64(len(value))
	case PolicySelective:
		// Place at the next boundary, no copy; WP jumps past the value.
		addr = alignUp(b.wp)
		b.wp = addr + int64(len(value))
		b.stats.SkippedCopies.Inc()
	case PolicyBackfill:
		// Place at the next boundary past the frontier, record it in the
		// DLT, and leave the WP behind to backfill the gap.
		addr = alignUp(b.frontier)
		if b.dlt.Full() {
			// Retire the oldest DMA region: the WP abandons the gap
			// before it (internal fragmentation under DMA-heavy load).
			e := b.dlt.Consume()
			b.stats.DLTConsumed.Inc()
			if end := e.Addr + e.Size; end > b.wp {
				b.wp = end
			}
		}
		if err := b.dlt.Push(DLTEntry{Addr: addr, Size: int64(len(value))}); err != nil {
			return 0, t, err
		}
		b.stats.SkippedCopies.Inc()
	default:
		return 0, t, fmt.Errorf("pagebuf: unknown policy %d", b.cfg.Policy)
	}
	b.writeBytes(addr, value)
	if end := addr + int64(len(value)); end > b.frontier {
		b.frontier = end
	}
	b.stats.DMAPlacements.Inc()
	b.stats.PayloadBytes.Add(int64(len(value)))
	if b.tr != nil {
		b.tr.Emit(trace.Event{Cat: trace.CatPageBuf, Name: trace.EvDMAAppend, Start: t, End: t, Bytes: int64(len(value)), Arg: addr})
	}
	end, err := b.retirePages(t, false)
	if err != nil {
		return 0, t, err
	}
	return addr, end, nil
}

// retirePages flushes every completed page (below the WP's page) and, when
// the open window exceeds the entry cap, force-flushes the oldest page even
// if its gaps were never backfilled. It returns the completion time.
func (b *Buffer) retirePages(t sim.Time, all bool) (sim.Time, error) {
	end := t
	flushBelow := b.pageOf(b.wp)
	for b.minOpen < flushBelow {
		e, err := b.flushOldest(t)
		if err != nil {
			return end, err
		}
		if e > end {
			end = e
		}
	}
	// Enforce the entry cap: the window spans minOpen..pageOf(frontier-1).
	for b.openWindow() > int64(b.cfg.MaxEntries) {
		b.stats.ForcedFlushes.Inc()
		if b.tr != nil {
			b.tr.Emit(trace.Event{Cat: trace.CatPageBuf, Name: trace.EvForcedFlush, Start: t, End: t, Arg: b.minOpen})
		}
		e, err := b.forceFlushOldest(t)
		if err != nil {
			return end, err
		}
		if e > end {
			end = e
		}
	}
	if all {
		for b.openWindow() > 0 {
			e, err := b.forceFlushOldest(t)
			if err != nil {
				return end, err
			}
			if e > end {
				end = e
			}
		}
	}
	return end, nil
}

// openWindow reports how many page entries the open region spans.
func (b *Buffer) openWindow() int64 {
	if b.frontier <= b.minOpen*int64(b.cfg.PageSize) {
		return 0
	}
	return b.pageOf(b.frontier-1) - b.minOpen + 1
}

// flushOldest persists page minOpen and advances the window. The returned
// time is the *handoff* point: the moment the buffer entry is free again
// (once the previous in-flight program has finished), not the completion of
// this page's own program — the battery-backed buffer absorbs that latency.
func (b *Buffer) flushOldest(t sim.Time) (sim.Time, error) {
	no := b.minOpen
	data, ok := b.pages[no]
	if !ok {
		// Never-written page: flush the shared zero page. The flush path
		// copies what it stores (NAND programs duplicate the data), so the
		// shared page is never retained or mutated downstream.
		data = b.zero
	}
	handoff := t
	if b.lastFlushEnd > handoff {
		handoff = b.lastFlushEnd // previous flush still on the NAND path
		b.stats.FlushWaitTime.Add(int64(handoff.Sub(t)))
	}
	end, err := b.flush(handoff, no, data)
	if err != nil {
		return t, fmt.Errorf("pagebuf: flush page %d: %w", no, err)
	}
	b.lastFlushEnd = end
	if b.tr != nil {
		b.tr.Emit(trace.Event{Cat: trace.CatPageBuf, Name: trace.EvFlush, Start: handoff, End: end, Bytes: int64(b.cfg.PageSize), Arg: no})
	}
	if ok {
		delete(b.pages, no)
		b.pagePool.Put(data)
	}
	b.minOpen++
	b.stats.Flushes.Inc()
	return handoff, nil
}

// LastFlushEnd reports when the most recent NAND program completes (the
// durability horizon an explicit flush must wait for).
func (b *Buffer) LastFlushEnd() sim.Time { return b.lastFlushEnd }

// forceFlushOldest flushes page minOpen even though the WP has not passed
// it, abandoning any unfilled gaps (fragmentation) and retiring DLT entries
// the WP can no longer reach.
func (b *Buffer) forceFlushOldest(t sim.Time) (sim.Time, error) {
	end, err := b.flushOldest(t)
	if err != nil {
		return end, err
	}
	floor := b.minOpen * int64(b.cfg.PageSize)
	if b.wp < floor {
		b.wp = floor
	}
	// Retire DLT entries that start below the new WP; a region straddling
	// the boundary pushes the WP past its end.
	for {
		e, ok := b.dlt.Oldest()
		if !ok || e.Addr >= b.wp {
			break
		}
		b.dlt.Consume()
		b.stats.DLTConsumed.Inc()
		if end := e.Addr + e.Size; end > b.wp {
			b.wp = end
		}
	}
	if b.wp > b.frontier {
		b.frontier = b.wp
	}
	return end, nil
}

// FlushAll persists every open page (a flush command or shutdown) and waits
// for full durability: the returned time is when the last program completes.
// The next placement starts on a fresh page boundary.
func (b *Buffer) FlushAll(t sim.Time) (sim.Time, error) {
	end, err := b.retirePages(t, true)
	if err != nil {
		return end, err
	}
	base := b.minOpen * int64(b.cfg.PageSize)
	b.wp = base
	b.frontier = base
	b.dlt.Reset()
	if b.lastFlushEnd > end {
		end = b.lastFlushEnd
	}
	return end, nil
}

// Utilization reports the fraction of flushed NAND bytes that carried value
// payload — the space-efficiency the packing policies compete on.
func (b *Buffer) Utilization() float64 {
	flushed := b.stats.Flushes.Value() * int64(b.cfg.PageSize)
	if flushed == 0 {
		return 0
	}
	u := float64(b.stats.PayloadBytes.Value()) / float64(flushed)
	if u > 1 {
		u = 1 // payload still buffered can exceed what was flushed
	}
	return u
}
