package pagebuf

import (
	"bytes"
	"testing"
	"testing/quick"

	"bandslim/internal/dma"
	"bandslim/internal/pcie"
	"bandslim/internal/sim"
)

// flushRecorder captures flushed pages for inspection.
type flushRecorder struct {
	pages map[int64][]byte
	order []int64
	fail  bool
}

func newRecorder() *flushRecorder {
	return &flushRecorder{pages: make(map[int64][]byte)}
}

func (r *flushRecorder) flush(t sim.Time, pageNo int64, data []byte) (sim.Time, error) {
	if r.fail {
		return t, errFlush
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	r.pages[pageNo] = cp
	r.order = append(r.order, pageNo)
	return t.Add(400 * sim.Microsecond), nil
}

var errFlush = errString("injected flush failure")

type errString string

func (e errString) Error() string { return string(e) }

func newBuf(t *testing.T, policy Policy, maxEntries int) (*Buffer, *flushRecorder) {
	t.Helper()
	rec := newRecorder()
	eng := dma.NewEngine(pcie.NewLink(pcie.DefaultCostModel()), dma.DefaultMemcpyModel())
	b, err := New(Config{PageSize: 16 * 1024, MaxEntries: maxEntries, Policy: policy}, eng, rec.flush)
	if err != nil {
		t.Fatal(err)
	}
	return b, rec
}

func TestConfigValidation(t *testing.T) {
	eng := dma.NewEngine(pcie.NewLink(pcie.DefaultCostModel()), dma.DefaultMemcpyModel())
	bad := []Config{
		{PageSize: 1000, MaxEntries: 4},         // not a 4 KiB multiple
		{PageSize: 0, MaxEntries: 4},            // zero
		{PageSize: 16 * 1024, MaxEntries: 1},    // too few entries
		{PageSize: 3 * 4096 / 2, MaxEntries: 4}, // 6 KiB, not a multiple
	}
	for _, cfg := range bad {
		if _, err := New(cfg, eng, nil); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestPolicyStringsAndParse(t *testing.T) {
	for _, p := range []Policy{PolicyBlock, PolicyAll, PolicySelective, PolicyBackfill} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("bogus policy parsed")
	}
	if Policy(99).String() != "Policy(99)" {
		t.Fatal("unknown policy String")
	}
}

// Block policy: four 32-byte values fill one 16 KiB entry at 4 KiB stride
// (§2.3 Problem #2) — the 4th placement triggers exactly one flush.
func TestBlockPolicyPageUnitPacking(t *testing.T) {
	b, rec := newBuf(t, PolicyBlock, 8)
	var addrs []int64
	for i := 0; i < 4; i++ {
		addr, _, err := b.PlaceDMA(0, bytes.Repeat([]byte{byte(i + 1)}, 32))
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, addr)
	}
	want := []int64{0, 4096, 8192, 12288}
	for i := range want {
		if addrs[i] != want[i] {
			t.Fatalf("placement %d at %d, want %d", i, addrs[i], want[i])
		}
	}
	if len(rec.order) != 1 || rec.order[0] != 0 {
		t.Fatalf("flushes = %v, want [0]", rec.order)
	}
	// The flushed page holds each value at its 4 KiB slot.
	page := rec.pages[0]
	for i := 0; i < 4; i++ {
		if page[i*4096] != byte(i+1) {
			t.Fatalf("slot %d holds %d", i, page[i*4096])
		}
	}
}

// Block policy with a (4K+32)B value: two slots consumed, so only two values
// fit per 16 KiB entry.
func TestBlockPolicyLargeValueConsumesTwoSlots(t *testing.T) {
	b, rec := newBuf(t, PolicyBlock, 8)
	v := make([]byte, 4096+32)
	b.PlaceDMA(0, v)
	addr2, _, _ := b.PlaceDMA(0, v)
	if addr2 != 8192 {
		t.Fatalf("second value at %d, want 8192", addr2)
	}
	if len(rec.order) != 1 {
		t.Fatalf("flushes = %v", rec.order)
	}
}

// All policy: values pack back to back; 512 32-byte values fill one page.
func TestAllPolicyDensePacking(t *testing.T) {
	b, rec := newBuf(t, PolicyAll, 8)
	for i := 0; i < 512; i++ {
		addr, _, err := b.PlacePiggybacked(0, bytes.Repeat([]byte{0xAA}, 32))
		if err != nil {
			t.Fatal(err)
		}
		if addr != int64(i*32) {
			t.Fatalf("placement %d at %d", i, addr)
		}
	}
	if len(rec.order) != 1 {
		t.Fatalf("flushes = %d, want 1 (dense packing)", len(rec.order))
	}
}

// All policy memcpy skipping: a DMA landing exactly on a 4 KiB-aligned WP
// skips the copy; otherwise it pays one.
func TestAllPolicyMemcpySkipOnAlignedWP(t *testing.T) {
	b, _ := newBuf(t, PolicyAll, 8)
	v := make([]byte, 2048)
	b.PlaceDMA(0, v) // WP=0, aligned: skip
	if b.Stats().SkippedCopies.Value() != 1 {
		t.Fatalf("SkippedCopies = %d", b.Stats().SkippedCopies.Value())
	}
	b.PlaceDMA(0, v) // WP=2048, unaligned: copy
	if b.Stats().CopiedBytes.Value() != 2048 {
		t.Fatalf("CopiedBytes = %d", b.Stats().CopiedBytes.Value())
	}
}

// Selective policy (Fig. 7a): piggybacked A,B pack densely; DMA C goes to
// the next boundary; piggybacked D packs right after C (WP jumped past C).
func TestSelectivePolicyFigure7a(t *testing.T) {
	b, _ := newBuf(t, PolicySelective, 8)
	a, _, _ := b.PlacePiggybacked(0, make([]byte, 100))  // A
	bb, _, _ := b.PlacePiggybacked(0, make([]byte, 200)) // B
	c, _, _ := b.PlaceDMA(0, make([]byte, 4096+512))     // C (page-unit DMA)
	d, _, _ := b.PlacePiggybacked(0, make([]byte, 50))   // D
	if a != 0 || bb != 100 {
		t.Fatalf("A/B at %d/%d", a, bb)
	}
	if c != 4096 {
		t.Fatalf("C at %d, want 4096 (next boundary after WP=300)", c)
	}
	if d != 4096+4096+512 {
		t.Fatalf("D at %d, want %d (right after C)", d, 4096+4096+512)
	}
	if b.Stats().SkippedCopies.Value() != 1 {
		t.Fatal("DMA under Selective must not memcpy")
	}
}

// Backfill policy (Fig. 7b): D packs at the original WP, filling the gap
// before C; the DLT records C.
func TestBackfillPolicyFigure7b(t *testing.T) {
	b, _ := newBuf(t, PolicyBackfill, 8)
	b.PlacePiggybacked(0, make([]byte, 100)) // A
	b.PlacePiggybacked(0, make([]byte, 200)) // B -> WP=300
	c, _, _ := b.PlaceDMA(0, make([]byte, 4096+512))
	if c != 4096 {
		t.Fatalf("C at %d, want 4096", c)
	}
	if b.WP() != 300 {
		t.Fatalf("WP moved to %d; backfilling must leave it at 300", b.WP())
	}
	d, _, _ := b.PlacePiggybacked(0, make([]byte, 50))
	if d != 300 {
		t.Fatalf("D at %d, want 300 (backfilled)", d)
	}
}

// Backfill: when the WP reaches a DLT region it jumps over the DMA value and
// packs immediately after it, consuming the entry.
func TestBackfillWPJumpsOverDMARegion(t *testing.T) {
	b, _ := newBuf(t, PolicyBackfill, 8)
	b.PlaceDMA(0, make([]byte, 2048)) // at 0, DLT{0,2048}, WP=0
	addr, _, err := b.PlacePiggybacked(0, make([]byte, 100))
	if err != nil {
		t.Fatal(err)
	}
	if addr != 2048 {
		t.Fatalf("piggyback at %d, want 2048 (after DMA value)", addr)
	}
	if b.Stats().BackfillJumps.Value() != 1 {
		t.Fatal("jump not recorded")
	}
	// A second piggyback continues densely.
	addr2, _, _ := b.PlacePiggybacked(0, make([]byte, 100))
	if addr2 != 2148 {
		t.Fatalf("second piggyback at %d, want 2148", addr2)
	}
}

// Backfill: a small value that does not fit a gap skips it entirely
// (fragmentation the paper accepts).
func TestBackfillGapTooSmallIsSkipped(t *testing.T) {
	b, _ := newBuf(t, PolicyBackfill, 8)
	b.PlacePiggybacked(0, make([]byte, 4000)) // WP=4000
	b.PlaceDMA(0, make([]byte, 2048))         // at 4096; gap [4000,4096)
	addr, _, _ := b.PlacePiggybacked(0, make([]byte, 200))
	// 200 > 96-byte gap: WP jumps to 4096+2048.
	if addr != 4096+2048 {
		t.Fatalf("placement at %d, want %d", addr, 4096+2048)
	}
}

// Backfill consumes multiple DLT entries if the value collides with several
// regions in sequence.
func TestBackfillMultipleJumps(t *testing.T) {
	b, _ := newBuf(t, PolicyBackfill, 8)
	b.PlaceDMA(0, make([]byte, 4096)) // [0,4096), DLT
	b.PlaceDMA(0, make([]byte, 4096)) // [4096,8192), DLT
	addr, _, _ := b.PlacePiggybacked(0, make([]byte, 64))
	if addr != 8192 {
		t.Fatalf("placement at %d, want 8192", addr)
	}
	if b.Stats().BackfillJumps.Value() != 2 {
		t.Fatalf("jumps = %d, want 2", b.Stats().BackfillJumps.Value())
	}
}

// NAND write efficiency comparison on a small-value stream: All/Backfill use
// ~512x fewer flushes than Block for 32-byte values.
func TestPackingReducesFlushesVsBlock(t *testing.T) {
	count := 2048
	flushes := map[Policy]int64{}
	for _, p := range []Policy{PolicyBlock, PolicyAll, PolicyBackfill} {
		b, _ := newBuf(t, p, 8)
		for i := 0; i < count; i++ {
			if _, _, err := b.PlacePiggybacked(0, make([]byte, 32)); err != nil {
				t.Fatal(err)
			}
		}
		flushes[p] = b.Stats().Flushes.Value()
	}
	if flushes[PolicyBlock] != int64(count/4) {
		t.Fatalf("Block flushes = %d, want %d", flushes[PolicyBlock], count/4)
	}
	if flushes[PolicyAll] != int64(count/512) {
		t.Fatalf("All flushes = %d, want %d", flushes[PolicyAll], count/512)
	}
	if flushes[PolicyBackfill] != flushes[PolicyAll] {
		t.Fatalf("Backfill flushes = %d, want %d (no DMA traffic: identical to All)",
			flushes[PolicyBackfill], flushes[PolicyAll])
	}
	reduction := 1 - float64(flushes[PolicyAll])/float64(flushes[PolicyBlock])
	if reduction < 0.98 {
		t.Fatalf("flush reduction %.3f < 0.98 (paper: 98.1%%)", reduction)
	}
}

// Values spanning NAND page boundaries are written and read back intact.
func TestValueSpanningPages(t *testing.T) {
	b, rec := newBuf(t, PolicyAll, 8)
	v1 := bytes.Repeat([]byte{1}, 16000)
	v2 := bytes.Repeat([]byte{2}, 1000) // crosses the 16 KiB boundary
	b.PlacePiggybacked(0, v1)
	addr2, _, _ := b.PlacePiggybacked(0, v2)
	if addr2 != 16000 {
		t.Fatalf("v2 at %d", addr2)
	}
	// Page 0 flushed; v2's head is in it, tail still buffered.
	if len(rec.order) != 1 {
		t.Fatalf("flushes = %v", rec.order)
	}
	head := rec.pages[0][16000:]
	for _, x := range head {
		if x != 2 {
			t.Fatal("v2 head not in flushed page")
		}
	}
	tail, err := b.ReadAt(16384, 616)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range tail {
		if x != 2 {
			t.Fatal("v2 tail corrupted in buffer")
		}
	}
}

func TestReadAtBounds(t *testing.T) {
	b, _ := newBuf(t, PolicyAll, 8)
	b.PlacePiggybacked(0, make([]byte, 100))
	if _, err := b.ReadAt(50, 100); err == nil {
		t.Fatal("read past frontier accepted")
	}
	// Fill page 0 so it flushes, then reads below FlushedBelow must fail.
	b.PlacePiggybacked(0, make([]byte, 17000))
	if b.FlushedBelow() == 0 {
		t.Fatal("page 0 not flushed")
	}
	if _, err := b.ReadAt(0, 10); err == nil {
		t.Fatal("read of flushed range accepted")
	}
}

func TestOpenPageAccessor(t *testing.T) {
	b, _ := newBuf(t, PolicyAll, 8)
	b.PlacePiggybacked(0, bytes.Repeat([]byte{9}, 100))
	p, ok := b.OpenPage(0)
	if !ok || p[0] != 9 {
		t.Fatal("OpenPage(0) wrong")
	}
	if _, ok := b.OpenPage(5); ok {
		t.Fatal("far-future page reported open")
	}
	b.PlacePiggybacked(0, make([]byte, 17000)) // flush page 0
	if _, ok := b.OpenPage(0); ok {
		t.Fatal("flushed page reported open")
	}
}

// The entry cap forces the oldest page out even when backfilling gaps remain
// (the W(C) fragmentation of Fig. 12).
func TestBackfillForcedFlushUnderEntryCap(t *testing.T) {
	// Tiny entry cap (2 open pages) but a roomy DLT, so the entry cap is
	// what forces pages out.
	rec := newRecorder()
	eng := dma.NewEngine(pcie.NewLink(pcie.DefaultCostModel()), dma.DefaultMemcpyModel())
	b, err := New(Config{PageSize: 16 * 1024, MaxEntries: 2, Policy: PolicyBackfill, DLTCap: 64}, eng, rec.flush)
	if err != nil {
		t.Fatal(err)
	}
	v := make([]byte, 2048)
	// Each DMA value occupies a fresh 4 KiB slot; gaps are never filled.
	for i := 0; i < 20; i++ {
		if _, _, err := b.PlaceDMA(0, v); err != nil {
			t.Fatal(err)
		}
	}
	if b.Stats().ForcedFlushes.Value() == 0 {
		t.Fatal("no forced flushes under entry cap")
	}
	if len(rec.order) == 0 {
		t.Fatal("nothing flushed")
	}
	// WP must have been pushed past flushed pages.
	if b.WP() < b.FlushedBelow() {
		t.Fatalf("WP %d behind flushed boundary %d", b.WP(), b.FlushedBelow())
	}
}

// A full DLT retires its oldest entry rather than failing.
func TestBackfillDLTOverflowRetiresOldest(t *testing.T) {
	rec := newRecorder()
	eng := dma.NewEngine(pcie.NewLink(pcie.DefaultCostModel()), dma.DefaultMemcpyModel())
	b, err := New(Config{PageSize: 16 * 1024, MaxEntries: 64, Policy: PolicyBackfill, DLTCap: 4}, eng, rec.flush)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, _, err := b.PlaceDMA(0, make([]byte, 2048)); err != nil {
			t.Fatal(err)
		}
	}
	if b.Stats().DLTConsumed.Value() == 0 {
		t.Fatal("DLT overflow never consumed entries")
	}
}

func TestFlushAll(t *testing.T) {
	b, rec := newBuf(t, PolicyBackfill, 8)
	b.PlacePiggybacked(0, make([]byte, 100))
	b.PlaceDMA(0, make([]byte, 2048))
	end, err := b.FlushAll(0)
	if err != nil {
		t.Fatal(err)
	}
	if end == 0 {
		t.Fatal("FlushAll took no time despite flushing")
	}
	if b.OpenPages() != 0 {
		t.Fatalf("OpenPages = %d after FlushAll", b.OpenPages())
	}
	if len(rec.order) == 0 {
		t.Fatal("nothing flushed")
	}
	// Next placement starts on the fresh page boundary.
	addr, _, _ := b.PlacePiggybacked(0, make([]byte, 10))
	if addr != b.FlushedBelow() {
		t.Fatalf("post-flush placement at %d, want %d", addr, b.FlushedBelow())
	}
	// FlushAll on an empty buffer is a no-op.
	before := b.Stats().Flushes.Value()
	b2, _ := newBuf(t, PolicyAll, 8)
	if _, err := b2.FlushAll(0); err != nil {
		t.Fatal(err)
	}
	_ = before
}

func TestFlushFailurePropagates(t *testing.T) {
	b, rec := newBuf(t, PolicyAll, 8)
	rec.fail = true
	_, _, err := b.PlacePiggybacked(0, make([]byte, 17000))
	if err == nil {
		t.Fatal("flush failure swallowed")
	}
}

func TestEmptyPlacementsAreNoOps(t *testing.T) {
	b, _ := newBuf(t, PolicyAll, 8)
	if _, end, err := b.PlacePiggybacked(5, nil); err != nil || end != 5 {
		t.Fatal("empty piggyback not a no-op")
	}
	if _, end, err := b.PlaceDMA(5, nil); err != nil || end != 5 {
		t.Fatal("empty DMA not a no-op")
	}
}

func TestUtilization(t *testing.T) {
	b, _ := newBuf(t, PolicyBlock, 8)
	if b.Utilization() != 0 {
		t.Fatal("empty buffer has nonzero utilization")
	}
	for i := 0; i < 4; i++ {
		b.PlaceDMA(0, make([]byte, 32))
	}
	// One 16 KiB flush carrying 128 payload bytes.
	want := 128.0 / (16 * 1024)
	if got := b.Utilization(); got != want {
		t.Fatalf("Utilization = %v, want %v", got, want)
	}
}

// Property: under every policy and any interleaving of piggybacked and DMA
// placements, no two value placements ever overlap, and each placement's
// bytes read back intact immediately after being placed. This is the
// buffer's core correctness invariant — backfilling must thread small values
// through the gaps without touching DMA'd data.
func TestNoOverlappingPlacementsProperty(t *testing.T) {
	type span struct{ start, end int64 }
	policies := []Policy{PolicyBlock, PolicyAll, PolicySelective, PolicyBackfill}
	f := func(ops []uint16) bool {
		for _, p := range policies {
			b, _ := newBuf(t, p, 512)
			var spans []span
			for i, op := range ops {
				if i > 40 {
					break
				}
				size := int(op)%4500 + 1
				v := bytes.Repeat([]byte{byte(i + 1)}, size)
				var addr int64
				var err error
				if op%3 == 0 {
					addr, _, err = b.PlaceDMA(0, v)
				} else {
					addr, _, err = b.PlacePiggybacked(0, v)
				}
				if err != nil {
					return false
				}
				ns := span{addr, addr + int64(size)}
				for _, s := range spans {
					if ns.start < s.end && s.start < ns.end {
						t.Logf("policy %v: placement [%d,%d) overlaps [%d,%d)", p, ns.start, ns.end, s.start, s.end)
						return false
					}
				}
				spans = append(spans, ns)
				// Immediate read-back: the placement must be intact
				// (unless already flushed, in which case skip).
				if ns.start >= b.FlushedBelow() {
					got, err := b.ReadAt(ns.start, size)
					if err != nil || !bytes.Equal(got, v) {
						t.Logf("policy %v: read-back of [%d,%d) failed: %v", p, ns.start, ns.end, err)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the WP never points into an unconsumed DLT region under
// Backfill (the invariant that makes the O(1) oldest-entry check correct).
func TestBackfillWPDLTInvariantProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		b, _ := newBuf(t, PolicyBackfill, 16)
		for i, op := range ops {
			if i > 60 {
				break
			}
			size := int(op)%3000 + 1
			var err error
			if op%4 == 0 {
				_, _, err = b.PlaceDMA(0, make([]byte, size))
			} else {
				_, _, err = b.PlacePiggybacked(0, make([]byte, size))
			}
			if err != nil {
				return false
			}
			if b.WP() > b.Frontier() {
				return false
			}
			if b.WP() < b.FlushedBelow() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMemcpyTimeChargedForPiggyback(t *testing.T) {
	b, _ := newBuf(t, PolicyAll, 8)
	_, end, err := b.PlacePiggybacked(0, make([]byte, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if end == 0 {
		t.Fatal("piggyback placement charged no memcpy time")
	}
}
