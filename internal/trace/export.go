// Exporters for recorded event streams. Both formats are rendered with
// integer-only arithmetic and a fixed key order, so a deterministic
// simulation produces byte-identical output — the property the trace
// determinism tests pin down.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// Merge combines per-shard event streams into one, ordered by simulated
// start time with (shard, seq) breaking ties. The result is deterministic
// for deterministic inputs regardless of stream order.
func Merge(streams ...[]Event) []Event {
	var out []Event
	for _, s := range streams {
		out = append(out, s...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		return a.Seq < b.Seq
	})
	return out
}

// WriteJSONL writes one JSON object per event, one per line, with a fixed
// key order. Times are integer nanoseconds of simulated time.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, e := range events {
		_, err := fmt.Fprintf(bw,
			`{"seq":%d,"shard":%d,"cat":%q,"name":%q,"op":%d,"start_ns":%d,"end_ns":%d,"bytes":%d,"arg":%d}`+"\n",
			e.Seq, e.Shard, e.Cat.String(), e.Name.String(), e.Op,
			int64(e.Start), int64(e.End), e.Bytes, e.Arg)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// micros renders a nanosecond count as fixed-point microseconds ("12.345"),
// the ts/dur unit of the Chrome trace_event format, without going through
// floating point.
func micros(ns int64) string {
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	return fmt.Sprintf("%s%d.%03d", neg, ns/1000, ns%1000)
}

// WriteChromeTrace writes the events as Chrome trace_event JSON (the
// {"traceEvents": [...]} envelope), loadable in Perfetto and
// chrome://tracing. Each shard becomes a process and each subsystem a named
// thread within it, so the per-request chain (command fetch → DMA → memcpy →
// NAND program) reads top-to-bottom. Spans are "X" complete events;
// instantaneous events (doorbells, ring transitions) are thread-scoped "i"
// instants.
func WriteChromeTrace(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(format string, args ...any) error {
		if !first {
			if _, err := io.WriteString(bw, ",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err := fmt.Fprintf(bw, format, args...)
		return err
	}
	// Name the processes (shards) and threads (subsystems) present.
	shards := map[int32]bool{}
	for _, e := range events {
		shards[e.Shard] = true
	}
	ids := make([]int32, 0, len(shards))
	for id := range shards {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if err := emit(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":"shard %d"}}`, id, id); err != nil {
			return err
		}
		for c := Category(0); c < numCategories; c++ {
			if err := emit(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%q}}`, id, uint8(c), c.String()); err != nil {
				return err
			}
			// Sort indices pin the host→device layer order in the UI.
			if err := emit(`{"name":"thread_sort_index","ph":"M","pid":%d,"tid":%d,"args":{"sort_index":%d}}`, id, uint8(c), uint8(c)); err != nil {
				return err
			}
		}
	}
	for _, e := range events {
		args := fmt.Sprintf(`{"seq":%d,"op":%d,"bytes":%d,"arg":%d}`, e.Seq, e.Op, e.Bytes, e.Arg)
		if e.End > e.Start {
			if err := emit(`{"name":%q,"cat":%q,"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"args":%s}`,
				e.Name.String(), e.Cat.String(), e.Shard, uint8(e.Cat),
				micros(int64(e.Start)), micros(int64(e.Duration())), args); err != nil {
				return err
			}
			continue
		}
		if err := emit(`{"name":%q,"cat":%q,"ph":"i","s":"t","pid":%d,"tid":%d,"ts":%s,"args":%s}`,
			e.Name.String(), e.Cat.String(), e.Shard, uint8(e.Cat),
			micros(int64(e.Start)), args); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(bw, "\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
