// Package trace is the simulator's command-level event bus: every layer of
// the stack (driver, PCIe link, NVMe queues, DMA engine, NAND page buffer,
// flash array) emits timestamped events through a Tracer, turning one PUT
// into a visible chain — command fetch → DMA → buffer memcpy → forced-flush
// cascade → NAND program — the way full-system SSD simulators (SimpleSSD,
// Amber) expose per-request behaviour.
//
// Tracing is strictly opt-in and zero-cost when disabled: components hold a
// nil Tracer by default and guard every emission with a nil check, so the
// untraced hot path pays one predictable branch and no allocation. A
// ring-buffered Recorder is the standard sink; exporters render its events
// as JSONL or Chrome trace_event JSON (loadable in Perfetto / chrome://tracing).
//
// All timestamps are simulated time (sim.Time), never wall clock, so a given
// seed and configuration reproduces a byte-identical event stream.
package trace

import (
	"fmt"
	"sync"

	"bandslim/internal/sim"
)

// Category identifies the subsystem that emitted an event. Categories map to
// Perfetto threads on export, so each layer gets its own track.
type Category uint8

// The instrumented subsystems, host side first.
const (
	CatDriver Category = iota
	CatPCIe
	CatNVMe
	CatDMA
	CatPageBuf
	CatNAND
	CatDevice

	numCategories
)

func (c Category) String() string {
	switch c {
	case CatDriver:
		return "driver"
	case CatPCIe:
		return "pcie"
	case CatNVMe:
		return "nvme"
	case CatDMA:
		return "dma"
	case CatPageBuf:
		return "pagebuf"
	case CatNAND:
		return "nand"
	case CatDevice:
		return "device"
	default:
		return fmt.Sprintf("cat(%d)", uint8(c))
	}
}

// Name identifies what happened within a subsystem.
type Name uint8

// Event names, grouped by the category that emits them.
const (
	// CatDriver: one per host-visible operation and per command round trip.
	EvPut Name = iota
	EvGet
	EvDelete
	EvSubmit // one synchronous command round trip
	EvBurst  // one pipelined multi-command burst
	// CatPCIe: the MMIO and command-fetch wire activity of Fig. 10(d).
	EvDoorbell
	EvCmdFetch
	// CatNVMe: SQ/CQ ring transitions.
	EvSQPush
	EvSQFetch
	EvCQPost
	EvCQReap
	// CatDMA: engine transfers and device-CPU copies.
	EvDMAIn
	EvDMAOut
	EvSGLIn
	EvMemcpy
	// CatPageBuf: placements and the flush cascade.
	EvPiggyAppend
	EvDMAAppend
	EvBackfillJump
	EvFlush
	EvForcedFlush
	// CatNAND: flash operations.
	EvProgram
	EvRead
	EvErase
	// CatDevice: firmware execution of one command.
	EvExec
	// Fault injection and crash recovery: an injected fault firing, the
	// power-cut truncation instant, a host-side resubmission, a device mount,
	// and one replayed journal record.
	EvFault
	EvPowerCut
	EvRetry
	EvMount
	EvReplay
	// Async submission window (CatDriver): EvSubmit doubles as the
	// queued-submission instant when the window is deep, and EvReap spans a
	// command's in-flight life from submission to its completion being
	// matched back by CID.
	EvReap
	// Device-DRAM read cache (CatDevice): EvCacheHit spans the DRAM access
	// that replaced an LSM walk + NAND read (value tier, Op = opcode) or an
	// SSTable page fetch (page tier, Op = 0); EvCacheEvict marks a fill
	// evicting Arg entries.
	EvCacheHit
	EvCacheEvict

	numNames
)

func (n Name) String() string {
	switch n {
	case EvPut:
		return "put"
	case EvGet:
		return "get"
	case EvDelete:
		return "delete"
	case EvSubmit:
		return "submit"
	case EvBurst:
		return "burst"
	case EvDoorbell:
		return "doorbell"
	case EvCmdFetch:
		return "cmd_fetch"
	case EvSQPush:
		return "sq_push"
	case EvSQFetch:
		return "sq_fetch"
	case EvCQPost:
		return "cq_post"
	case EvCQReap:
		return "cq_reap"
	case EvDMAIn:
		return "dma_in"
	case EvDMAOut:
		return "dma_out"
	case EvSGLIn:
		return "sgl_in"
	case EvMemcpy:
		return "memcpy"
	case EvPiggyAppend:
		return "piggy_append"
	case EvDMAAppend:
		return "dma_append"
	case EvBackfillJump:
		return "backfill_jump"
	case EvFlush:
		return "flush"
	case EvForcedFlush:
		return "forced_flush"
	case EvProgram:
		return "program"
	case EvRead:
		return "read"
	case EvErase:
		return "erase"
	case EvExec:
		return "exec"
	case EvFault:
		return "fault"
	case EvPowerCut:
		return "power_cut"
	case EvRetry:
		return "retry"
	case EvMount:
		return "mount"
	case EvReplay:
		return "replay"
	case EvReap:
		return "reap"
	case EvCacheHit:
		return "cache_hit"
	case EvCacheEvict:
		return "cache_evict"
	default:
		return fmt.Sprintf("ev(%d)", uint8(n))
	}
}

// Event is one timestamped occurrence in the simulated stack. The struct is
// flat and pointer-free so emitting never allocates.
type Event struct {
	// Seq is the emission order within one Recorder (assigned on Emit).
	Seq uint64
	// Shard is the id of the stack that emitted the event (0 for a DB).
	Shard int32
	// Cat is the emitting subsystem; Name says what happened.
	Cat  Category
	Name Name
	// Op is the NVMe opcode in flight, when one applies (else 0).
	Op uint8
	// Start and End bound the event in simulated time. Instantaneous events
	// (doorbells, ring transitions) have End == Start.
	Start sim.Time
	End   sim.Time
	// Bytes is the payload or wire byte count the event moved, when any.
	Bytes int64
	// Arg carries one event-specific detail: the command id for queue and
	// submit events, the vLog page number for flushes, the placement
	// address for appends.
	Arg int64
}

// Duration reports the event's simulated span.
func (e Event) Duration() sim.Duration { return e.End.Sub(e.Start) }

// Tracer consumes events. Implementations must tolerate concurrent Emit
// calls when attached to more than one goroutine (the Recorder does).
//
// Components treat a nil Tracer as "tracing off" and skip emission entirely,
// which is the zero-overhead disabled path.
type Tracer interface {
	Emit(ev Event)
}

// Recorder is a fixed-capacity ring buffer of events: the standard Tracer
// sink. When full it drops the oldest events, keeping the most recent
// window, and counts what it dropped.
type Recorder struct {
	mu      sync.Mutex
	buf     []Event
	start   int // index of the oldest event
	n       int // events currently held
	seq     uint64
	dropped int64
}

// NewRecorder returns a recorder holding at most capacity events.
func NewRecorder(capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	return &Recorder{buf: make([]Event, capacity)}
}

// Emit stores the event, stamping its sequence number. Oldest events are
// evicted once the ring is full.
func (r *Recorder) Emit(ev Event) {
	r.mu.Lock()
	r.seq++
	ev.Seq = r.seq
	if r.n == len(r.buf) {
		r.buf[r.start] = ev
		r.start = (r.start + 1) % len(r.buf)
		r.dropped++
	} else {
		r.buf[(r.start+r.n)%len(r.buf)] = ev
		r.n++
	}
	r.mu.Unlock()
}

// Events returns the recorded events in emission order (oldest first).
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(r.start+i)%len(r.buf)]
	}
	return out
}

// Len reports how many events the ring currently holds.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Dropped reports how many events were evicted after the ring filled.
func (r *Recorder) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Reset discards every recorded event (the sequence counter keeps running,
// so drained and live streams never reuse numbers).
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.start, r.n = 0, 0
	r.mu.Unlock()
}

// shardTracer stamps a fixed shard id on every event before forwarding.
type shardTracer struct {
	t     Tracer
	shard int32
}

func (s shardTracer) Emit(ev Event) {
	ev.Shard = s.shard
	s.t.Emit(ev)
}

// WithShard returns a tracer that stamps shard on every event before
// forwarding to t. A nil t yields nil, preserving the disabled fast path.
func WithShard(t Tracer, shard int) Tracer {
	if t == nil {
		return nil
	}
	return shardTracer{t: t, shard: int32(shard)}
}
