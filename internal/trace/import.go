// JSONL import: the inverse of WriteJSONL, so a trace captured in one
// process (bandslim-bench -trace-jsonl) can be reconstructed in another
// (bandslim-cli analyze). The reader accepts exactly the fixed key layout
// the writer emits; category and name strings round-trip through the same
// String() tables.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"bandslim/internal/sim"
)

// Reverse lookup tables built from the String() methods, so the two stay in
// lockstep by construction.
var (
	catFromString = func() map[string]Category {
		m := make(map[string]Category, int(numCategories))
		for c := Category(0); c < numCategories; c++ {
			m[c.String()] = c
		}
		return m
	}()
	nameFromString = func() map[string]Name {
		m := make(map[string]Name, int(numNames))
		for n := Name(0); n < numNames; n++ {
			m[n.String()] = n
		}
		return m
	}()
)

// jsonlEvent mirrors WriteJSONL's key layout.
type jsonlEvent struct {
	Seq     uint64 `json:"seq"`
	Shard   int32  `json:"shard"`
	Cat     string `json:"cat"`
	Name    string `json:"name"`
	Op      uint8  `json:"op"`
	StartNS int64  `json:"start_ns"`
	EndNS   int64  `json:"end_ns"`
	Bytes   int64  `json:"bytes"`
	Arg     int64  `json:"arg"`
}

// ReadJSONL parses a stream written by WriteJSONL back into events, in file
// order. Blank lines are skipped; an unknown category or event name (e.g. a
// file from a newer build) is an error naming the offending line.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var out []Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var je jsonlEvent
		if err := json.Unmarshal(line, &je); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		cat, ok := catFromString[je.Cat]
		if !ok {
			return nil, fmt.Errorf("trace: line %d: unknown category %q", lineNo, je.Cat)
		}
		name, ok := nameFromString[je.Name]
		if !ok {
			return nil, fmt.Errorf("trace: line %d: unknown event name %q", lineNo, je.Name)
		}
		out = append(out, Event{
			Seq:   je.Seq,
			Shard: je.Shard,
			Cat:   cat,
			Name:  name,
			Op:    je.Op,
			Start: sim.Time(je.StartNS),
			End:   sim.Time(je.EndNS),
			Bytes: je.Bytes,
			Arg:   je.Arg,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading JSONL: %w", err)
	}
	return out, nil
}
