package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"bandslim/internal/sim"
)

func ev(start, end sim.Time, cat Category, name Name) Event {
	return Event{Cat: cat, Name: name, Start: start, End: end}
}

func TestRecorderOrderAndSeq(t *testing.T) {
	r := NewRecorder(8)
	for i := 0; i < 5; i++ {
		r.Emit(ev(sim.Time(i), sim.Time(i), CatDriver, EvPut))
	}
	got := r.Events()
	if len(got) != 5 || r.Len() != 5 {
		t.Fatalf("len = %d/%d, want 5", len(got), r.Len())
	}
	for i, e := range got {
		if e.Seq != uint64(i+1) {
			t.Fatalf("seq[%d] = %d", i, e.Seq)
		}
		if e.Start != sim.Time(i) {
			t.Fatalf("order broken at %d: %v", i, e.Start)
		}
	}
	if r.Dropped() != 0 {
		t.Fatalf("dropped = %d", r.Dropped())
	}
}

func TestRecorderRingEviction(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Emit(ev(sim.Time(i), sim.Time(i), CatNAND, EvProgram))
	}
	got := r.Events()
	if len(got) != 4 {
		t.Fatalf("len = %d, want 4", len(got))
	}
	// The most recent window survives.
	for i, e := range got {
		if e.Start != sim.Time(6+i) {
			t.Fatalf("kept wrong window: got start %v at %d", e.Start, i)
		}
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", r.Dropped())
	}
}

func TestRecorderConcurrentEmit(t *testing.T) {
	r := NewRecorder(1 << 12)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Emit(ev(0, 0, CatDMA, EvDMAIn))
			}
		}()
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Fatalf("len = %d, want 800", r.Len())
	}
}

func TestWithShardStampsAndNilPassthrough(t *testing.T) {
	r := NewRecorder(4)
	tr := WithShard(r, 3)
	tr.Emit(ev(1, 2, CatPCIe, EvDoorbell))
	if got := r.Events()[0].Shard; got != 3 {
		t.Fatalf("shard = %d, want 3", got)
	}
	if WithShard(nil, 1) != nil {
		t.Fatal("WithShard(nil) must stay nil so the disabled path stays free")
	}
}

func TestMergeOrdersByTimeShardSeq(t *testing.T) {
	a := []Event{
		{Seq: 1, Shard: 1, Start: 10, End: 10},
		{Seq: 2, Shard: 1, Start: 30, End: 30},
	}
	b := []Event{
		{Seq: 1, Shard: 0, Start: 10, End: 10},
		{Seq: 2, Shard: 0, Start: 20, End: 20},
	}
	m := Merge(a, b)
	if len(m) != 4 {
		t.Fatalf("len = %d", len(m))
	}
	// Same Start: lower shard first; then time order.
	want := []struct {
		shard int32
		start sim.Time
	}{{0, 10}, {1, 10}, {0, 20}, {1, 30}}
	for i, w := range want {
		if m[i].Shard != w.shard || m[i].Start != w.start {
			t.Fatalf("m[%d] = shard %d @%v, want shard %d @%v",
				i, m[i].Shard, m[i].Start, w.shard, w.start)
		}
	}
	// Merge order must not matter.
	m2 := Merge(b, a)
	for i := range m {
		if m[i] != m2[i] {
			t.Fatalf("merge not stream-order independent at %d", i)
		}
	}
}

func TestWriteJSONLShape(t *testing.T) {
	var buf bytes.Buffer
	events := []Event{
		{Seq: 1, Cat: CatDriver, Name: EvPut, Op: 0x81, Start: 0, End: 9000, Bytes: 32},
		{Seq: 2, Cat: CatPCIe, Name: EvDoorbell, Start: 100, End: 100},
	}
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	var obj map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &obj); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if obj["cat"] != "driver" || obj["name"] != "put" || obj["end_ns"] != float64(9000) {
		t.Fatalf("bad line: %v", obj)
	}
}

func TestWriteChromeTraceParsesAndNames(t *testing.T) {
	var buf bytes.Buffer
	events := []Event{
		{Seq: 1, Shard: 0, Cat: CatDriver, Name: EvPut, Start: 0, End: 9000, Bytes: 4128},
		{Seq: 2, Shard: 1, Cat: CatNAND, Name: EvProgram, Start: 500, End: 400500},
		{Seq: 3, Shard: 0, Cat: CatPCIe, Name: EvDoorbell, Start: 10, End: 10},
	}
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	var spans, instants, meta int
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "X":
			spans++
			if e["dur"] == nil {
				t.Fatalf("span without dur: %v", e)
			}
		case "i":
			instants++
		case "M":
			meta++
		}
	}
	if spans != 2 || instants != 1 || meta == 0 {
		t.Fatalf("spans=%d instants=%d meta=%d", spans, instants, meta)
	}
}

func TestMicrosFixedPoint(t *testing.T) {
	cases := map[int64]string{
		0:       "0.000",
		999:     "0.999",
		1000:    "1.000",
		1234567: "1234.567",
	}
	for ns, want := range cases {
		if got := micros(ns); got != want {
			t.Fatalf("micros(%d) = %q, want %q", ns, got, want)
		}
	}
}

func TestCategoryAndNameStrings(t *testing.T) {
	if CatPageBuf.String() != "pagebuf" || EvForcedFlush.String() != "forced_flush" {
		t.Fatal("string mappings broken")
	}
	if Category(200).String() == "" || Name(200).String() == "" {
		t.Fatal("unknown values must still render")
	}
}
