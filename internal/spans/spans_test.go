package spans

import (
	"testing"

	"bandslim/internal/sim"
	"bandslim/internal/trace"
)

// ev builds one event with an auto-assigned Seq via the stream helper.
type stream struct {
	seq uint64
	evs []trace.Event
}

func (s *stream) add(cat trace.Category, name trace.Name, start, end sim.Time, arg int64) {
	s.seq++
	s.evs = append(s.evs, trace.Event{
		Seq: s.seq, Cat: cat, Name: name, Start: start, End: end, Arg: arg,
	})
}

func checkInvariant(t *testing.T, r *Report) {
	t.Helper()
	for i := range r.Ops {
		op := &r.Ops[i]
		if op.Residual() != 0 {
			t.Fatalf("op %s seq=%d: residual %v (stages %v, e2e %v)",
				op.Name, op.Seq, op.Residual(), op.Stages, op.E2E())
		}
		for s, d := range op.Stages {
			if d < 0 {
				t.Fatalf("op %s seq=%d: stage %v negative: %v", op.Name, op.Seq, Stage(s), d)
			}
		}
	}
}

// Synchronous PUT: push → fetch → exec (with nested DMA and NAND) → post →
// submit span. Every boundary present, so each stage lands exactly.
func TestAnalyzeSyncPut(t *testing.T) {
	var s stream
	s.add(trace.CatNVMe, trace.EvSQPush, 100, 100, 3)
	s.add(trace.CatNVMe, trace.EvSQFetch, 100, 100, 3)
	s.add(trace.CatDMA, trace.EvDMAIn, 110, 150, 0)
	s.add(trace.CatNAND, trace.EvProgram, 150, 350, 0)
	s.add(trace.CatDevice, trace.EvExec, 100, 400, 3)
	s.add(trace.CatNVMe, trace.EvCQPost, 400, 400, 3)
	s.add(trace.CatDriver, trace.EvSubmit, 100, 450, 3)
	s.add(trace.CatDriver, trace.EvPut, 90, 460, 3)

	r := Analyze(s.evs)
	checkInvariant(t, r)
	if len(r.Ops) != 1 {
		t.Fatalf("ops = %d, want 1", len(r.Ops))
	}
	op := r.Ops[0]
	if op.Commands != 1 {
		t.Errorf("Commands = %d, want 1", op.Commands)
	}
	want := map[Stage]sim.Duration{
		StageHost:     20, // 90→100 setup + 450→460 return
		StageDevExec:  60, // exec minus nested DMA and NAND: 100..110 + 350..400
		StageTransfer: 40,
		StageNAND:     200,
		StageReap:     50, // CQ post 400 → submit end 450
	}
	for st, d := range want {
		if op.Stages[st] != d {
			t.Errorf("stage %v = %v, want %v (all: %v)", st, op.Stages[st], d, op.Stages)
		}
	}
	if op.Stages[StageCoalesce] != 0 || op.Stages[StageWindowWait] != 0 {
		t.Errorf("sync path leaked queue stages: %v", op.Stages)
	}
}

// Windowed GETs: two commands pushed at one host time; one's key misses so
// only an EvReap fires for it. The exact-span rule must keep the miss from
// being claimed by the surviving op.
func TestAnalyzeWindowedExactClaim(t *testing.T) {
	var s stream
	// Both pushed at t=100 (host clock frozen during batch build).
	s.add(trace.CatNVMe, trace.EvSQPush, 100, 100, 1)
	s.add(trace.CatDriver, trace.EvSubmit, 100, 100, 1) // queued instant
	s.add(trace.CatNVMe, trace.EvSQPush, 100, 100, 2)
	s.add(trace.CatDriver, trace.EvSubmit, 100, 100, 2)
	// Window flush at t=140.
	s.add(trace.CatNVMe, trace.EvSQFetch, 140, 140, 1)
	s.add(trace.CatNVMe, trace.EvSQFetch, 140, 140, 2)
	s.add(trace.CatDevice, trace.EvExec, 140, 200, 1)
	s.add(trace.CatDevice, trace.EvExec, 160, 230, 2)
	// Coalescing grid posts both at 250.
	s.add(trace.CatNVMe, trace.EvCQPost, 250, 250, 1)
	s.add(trace.CatNVMe, trace.EvCQPost, 250, 250, 2)
	// CID 1 hits: reap + get share a span. CID 2 misses: reap only.
	s.add(trace.CatDriver, trace.EvReap, 100, 270, 1)
	s.add(trace.CatDriver, trace.EvGet, 100, 270, 1)
	s.add(trace.CatDriver, trace.EvReap, 100, 275, 2)

	r := Analyze(s.evs)
	checkInvariant(t, r)
	if len(r.Ops) != 1 {
		t.Fatalf("ops = %d, want 1", len(r.Ops))
	}
	op := r.Ops[0]
	if op.Commands != 1 {
		t.Fatalf("exact-span claim took %d commands, want 1 (miss must stay out)", op.Commands)
	}
	if op.Stages[StageWindowWait] != 40 {
		t.Errorf("window_wait = %v, want 40", op.Stages[StageWindowWait])
	}
	if op.Stages[StageCoalesce] != 50 {
		t.Errorf("coalesce = %v, want 50 (exec end 200 → post 250)", op.Stages[StageCoalesce])
	}
	if op.Stages[StageReap] != 20 {
		t.Errorf("reap = %v, want 20 (post 250 → return 270)", op.Stages[StageReap])
	}
	// The missed command is unclaimed only after the stream ends.
	if r.Unclaimed != 1 {
		t.Errorf("Unclaimed = %d, want 1 (the missed key)", r.Unclaimed)
	}
}

// A burst event closes every command pushed at or after its start; the op
// claims them all by containment.
func TestAnalyzeBurstClaim(t *testing.T) {
	var s stream
	for cid := int64(1); cid <= 3; cid++ {
		s.add(trace.CatNVMe, trace.EvSQPush, 100, 100, cid)
		s.add(trace.CatNVMe, trace.EvSQFetch, 100, 100, cid)
		s.add(trace.CatDevice, trace.EvExec, sim.Time(100+10*cid), sim.Time(150+10*cid), cid)
		s.add(trace.CatNVMe, trace.EvCQPost, sim.Time(150+10*cid), sim.Time(150+10*cid), cid)
	}
	s.add(trace.CatDriver, trace.EvBurst, 100, 200, 3)
	s.add(trace.CatDriver, trace.EvPut, 95, 210, 0)

	r := Analyze(s.evs)
	checkInvariant(t, r)
	if len(r.Ops) != 1 || r.Ops[0].Commands != 3 {
		t.Fatalf("burst op claimed %d commands, want 3", r.Ops[0].Commands)
	}
	if r.Unclaimed != 0 || r.Incomplete != 0 {
		t.Errorf("unclaimed=%d incomplete=%d, want 0/0", r.Unclaimed, r.Incomplete)
	}
}

// A mount mid-stream orphans in-flight commands; ops after recovery must not
// inherit their intervals.
func TestAnalyzeMountResetsInFlight(t *testing.T) {
	var s stream
	s.add(trace.CatNVMe, trace.EvSQPush, 100, 100, 1)
	s.add(trace.CatNVMe, trace.EvSQFetch, 100, 100, 1)
	// Power cut: no completion. Remount, then a clean op with the same CID.
	s.add(trace.CatDevice, trace.EvMount, 500, 600, 0)
	s.add(trace.CatNVMe, trace.EvSQPush, 700, 700, 1)
	s.add(trace.CatNVMe, trace.EvSQFetch, 700, 700, 1)
	s.add(trace.CatDevice, trace.EvExec, 700, 750, 1)
	s.add(trace.CatNVMe, trace.EvCQPost, 750, 750, 1)
	s.add(trace.CatDriver, trace.EvSubmit, 700, 760, 1)
	s.add(trace.CatDriver, trace.EvPut, 690, 770, 1)

	r := Analyze(s.evs)
	checkInvariant(t, r)
	if r.Incomplete != 1 {
		t.Errorf("Incomplete = %d, want 1 (the crash victim)", r.Incomplete)
	}
	if len(r.Ops) != 1 {
		t.Fatalf("ops = %d, want 1", len(r.Ops))
	}
	if op := r.Ops[0]; op.Start != 690 || op.Commands != 1 {
		t.Errorf("post-recovery op corrupted: %+v", op)
	}
}

// Seq gaps count as truncation; duplicate Seqs are skipped and counted.
func TestAnalyzeSeqAccounting(t *testing.T) {
	evs := []trace.Event{
		{Seq: 5, Cat: trace.CatDriver, Name: trace.EvPut, Start: 10, End: 20},
		{Seq: 5, Cat: trace.CatDriver, Name: trace.EvPut, Start: 10, End: 20},
		{Seq: 9, Cat: trace.CatDriver, Name: trace.EvPut, Start: 30, End: 40},
	}
	r := Analyze(evs)
	if r.TruncatedEvents != 4+3 {
		t.Errorf("TruncatedEvents = %d, want 7 (4 before first, 3 in the gap)", r.TruncatedEvents)
	}
	if r.DuplicateEvents != 1 {
		t.Errorf("DuplicateEvents = %d, want 1", r.DuplicateEvents)
	}
	if !r.Lossy() {
		t.Error("truncated stream not Lossy()")
	}
	if len(r.Ops) != 2 {
		t.Errorf("ops = %d, want 2 (duplicate skipped)", len(r.Ops))
	}
	checkInvariant(t, r)
}

// attribute: overlapping intervals resolve by priority, uncovered time goes
// to host, and the output partitions the window exactly.
func TestAttributePriorityPartition(t *testing.T) {
	ivs := []interval{
		{StageDevExec, 100, 300},
		{StageNAND, 150, 250},     // wins over dev_exec inside the overlap
		{StageTransfer, 120, 180}, // wins over dev_exec, loses to nand at 150..180
		{StageWindowWait, 0, 1000},
	}
	st := attribute(50, 400, ivs)
	want := map[Stage]sim.Duration{
		StageWindowWait: 150, // 50..100 and 300..400
		StageDevExec:    70,  // 100..120 and 250..300
		StageTransfer:   30,  // 120..150
		StageNAND:       100, // 150..250
	}
	var sum sim.Duration
	for s := Stage(0); s < NumStages; s++ {
		sum += st[s]
		if w, ok := want[s]; ok && st[s] != w {
			t.Errorf("stage %v = %v, want %v", s, st[s], w)
		} else if !ok && st[s] != 0 {
			t.Errorf("stage %v = %v, want 0", s, st[s])
		}
	}
	if sum != 350 {
		t.Errorf("partition sum = %v, want 350", sum)
	}
	// Degenerate windows attribute nothing.
	if z := attribute(100, 100, ivs); z != ([NumStages]sim.Duration{}) {
		t.Errorf("empty window attributed %v", z)
	}
}

// An op with no events inside it (all boundaries lost) charges everything to
// host — the graceful floor of degradation.
func TestAttributeNoIntervals(t *testing.T) {
	st := attribute(10, 110, nil)
	if st[StageHost] != 100 {
		t.Errorf("host = %v, want 100", st[StageHost])
	}
}
