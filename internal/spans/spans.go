// Package spans reconstructs per-operation latency attribution from the
// command-level trace stream: which simulated nanoseconds of one PUT/GET/
// DELETE were spent queued in the submission window, waiting for the
// controller fetch, moving bytes over PCIe/DMA, in NAND service, held back
// by completion coalescing, or in the reap-to-return tail.
//
// The reconstruction is a pure function of the event stream. Per shard,
// events replay in emission (Seq) order; each command id accumulates stage
// intervals as its boundary events arrive, and each operation event
// (EvPut/EvGet/EvDelete) claims the commands that completed inside its span.
// Stage durations are then computed by a priority-union sweep over the
// operation's [Start, End] window: every elementary time segment is charged
// to the highest-priority stage covering it, and time no stage claims is
// charged to the host stage. Because the segments partition the window
// exactly, the per-stage durations are non-negative and sum to the
// end-to-end latency with zero residual — by construction, for every op,
// even on streams where a ring eviction swallowed some boundary events
// (missing boundaries only shift time into a coarser stage).
package spans

import (
	"sort"

	"bandslim/internal/sim"
	"bandslim/internal/trace"
)

// Stage is one latency-attribution bucket, in pipeline order.
type Stage uint8

const (
	// StageHost is host-side time not attributable to any finer stage:
	// software overhead, retry backoff, and the pre-submit setup of an op.
	StageHost Stage = iota
	// StageWindowWait is submission-queue residency: SQ push to controller
	// fetch (the window/doorbell-batching wait of a deep queue).
	StageWindowWait
	// StageFetch is controller fetch to execution start: command decode and
	// the per-command pipeline-interval stagger within a window.
	StageFetch
	// StageDevExec is device firmware execution not covered by a transfer or
	// flash interval (FTL lookup, page-buffer memcpy, device CPU time).
	StageDevExec
	// StageTransfer is PCIe/DMA wire time: PRP/SGL data transfers in either
	// direction.
	StageTransfer
	// StageNAND is flash array service: program, read, and erase operations
	// (including forced-flush cascades an op triggers).
	StageNAND
	// StageCoalesce is completion-coalescing delay: device work finished to
	// the completion being posted to the CQ.
	StageCoalesce
	// StageReap is the completion-to-return tail: CQ post to the host
	// observing the completion (round trip plus out-of-order wait).
	StageReap
	// StageDevCache is device-DRAM read-cache service: the hit lookup that
	// replaced an LSM walk + NAND read (value tier) or an SSTable page
	// fetch (page tier).
	StageDevCache

	NumStages
)

var stageNames = [NumStages]string{
	"host", "window_wait", "fetch", "dev_exec",
	"transfer", "nand", "coalesce", "reap", "dev_cache",
}

func (s Stage) String() string {
	if s < NumStages {
		return stageNames[s]
	}
	return "stage(?)"
}

// stagePriority resolves overlapping intervals: the most specific stage wins
// the overlapped time. Flash and wire time are the ground truth (they nest
// inside exec spans); coalescing and reap tails are coarser; queue waits
// coarser still; host is the default for time nobody claims.
var stagePriority = [NumStages]int{
	StageHost:       0,
	StageWindowWait: 1,
	StageFetch:      2,
	StageReap:       3,
	StageCoalesce:   4,
	StageDevExec:    5,
	StageTransfer:   6,
	StageNAND:       7,
	// The cache hit nests inside its exec span like NAND time does, and
	// nothing finer ever overlaps it.
	StageDevCache: 8,
}

// Op is one reconstructed operation with its stage breakdown. The invariant
// every consumer relies on: all Stages entries are >= 0 and their sum equals
// End - Start exactly (Residual() == 0).
type Op struct {
	// Name is the operation event's name: "put", "get", or "delete".
	Name string
	// Opcode is the NVMe opcode of the op event.
	Opcode uint8
	// Shard and Seq identify the closing op event in the source stream.
	Shard int32
	Seq   uint64
	// Start and End bound the operation in simulated time.
	Start sim.Time
	End   sim.Time
	// Stages holds the attributed duration of each stage.
	Stages [NumStages]sim.Duration
	// Commands is how many NVMe command round trips the op claimed (retried
	// synchronous attempts count once per attempt).
	Commands int
	// Retries is how many retry backoffs fired inside the op's span.
	Retries int
	// Bytes is the payload byte count the op event reported.
	Bytes int64
}

// E2E reports the end-to-end simulated latency.
func (o *Op) E2E() sim.Duration { return o.End.Sub(o.Start) }

// Residual reports E2E minus the sum of all stage durations. It is zero for
// every op Analyze produces; tests and the bench gate assert it.
func (o *Op) Residual() sim.Duration {
	sum := sim.Duration(0)
	for _, d := range o.Stages {
		sum += d
	}
	return o.E2E() - sum
}

// Report is the result of analyzing one event stream.
type Report struct {
	// Ops lists every reconstructed operation, ordered by (Start, Shard,
	// Seq) — the same order trace.Merge gives events.
	Ops []Op
	// Unclaimed counts completed commands no operation event claimed:
	// flush/iterator commands, and window reads whose key missed (their
	// EvGet never fires). Informational, not an error.
	Unclaimed int
	// Incomplete counts commands still open when the stream ended or a
	// mount reset the device: crash victims and drained windows.
	Incomplete int
	// TruncatedEvents counts events the Seq numbering proves missing (ring
	// eviction or a Recorder reset). Nonzero means attribution near the
	// truncation degrades: time from lost boundaries folds into coarser
	// stages.
	TruncatedEvents int64
	// DuplicateEvents counts events sharing a (Shard, Seq) with an earlier
	// one (a stream merged with itself); duplicates are skipped.
	DuplicateEvents int64
}

// Lossy reports whether the stream is provably missing events.
func (r *Report) Lossy() bool { return r.TruncatedEvents > 0 }

// interval is one stage's claim on a time range.
type interval struct {
	stage      Stage
	start, end sim.Time
}

// span is a plain time range (retry backoffs awaiting claim).
type span struct {
	start, end sim.Time
}

// cmdInst is one command id's life from SQ push to host-visible completion.
// A CID is reused across the run; an instance spans one occupancy.
type cmdInst struct {
	cid     uint16
	pushT   sim.Time // first push (claim anchor)
	curPush sim.Time // latest push (re-push = window retry)

	curFetch    sim.Time
	haveFetch   bool
	lastExecEnd sim.Time
	haveExec    bool
	ready       sim.Time
	haveReady   bool

	closedBy  trace.Name
	closeSpan span // the closing event's own span
	closedAt  sim.Time

	ivs []interval
}

// shardState is the per-shard replay state.
type shardState struct {
	open    map[uint16]*cmdInst
	closed  []*cmdInst
	retries []span
	nested  []interval // DMA/NAND intervals awaiting their EvExec
	seen    bool
	prevSeq uint64
}

// Analyze reconstructs operations from an event stream. The stream may hold
// one shard or a merged set; events are partitioned by shard and replayed in
// Seq order, so any input ordering yields the same report.
func Analyze(events []trace.Event) *Report {
	r := &Report{}
	byShard := make(map[int32][]trace.Event)
	var shardIDs []int32
	for _, e := range events {
		if _, ok := byShard[e.Shard]; !ok {
			shardIDs = append(shardIDs, e.Shard)
		}
		byShard[e.Shard] = append(byShard[e.Shard], e)
	}
	sort.Slice(shardIDs, func(i, j int) bool { return shardIDs[i] < shardIDs[j] })
	for _, id := range shardIDs {
		evs := byShard[id]
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })
		r.analyzeShard(evs)
	}
	sort.SliceStable(r.Ops, func(i, j int) bool {
		a, b := r.Ops[i], r.Ops[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		return a.Seq < b.Seq
	})
	return r
}

func (r *Report) analyzeShard(events []trace.Event) {
	st := &shardState{open: make(map[uint16]*cmdInst)}
	for _, e := range events {
		if st.seen {
			if e.Seq <= st.prevSeq {
				r.DuplicateEvents++
				continue
			}
			if e.Seq != st.prevSeq+1 {
				r.TruncatedEvents += int64(e.Seq - st.prevSeq - 1)
			}
		} else {
			st.seen = true
			if e.Seq > 1 {
				r.TruncatedEvents += int64(e.Seq - 1)
			}
		}
		st.prevSeq = e.Seq

		switch e.Cat {
		case trace.CatNVMe:
			st.ring(e)
		case trace.CatDMA:
			// Wire transfers nest inside the enclosing exec span; buffer
			// them until it arrives. EvMemcpy is device-CPU copy time the
			// exec span already covers.
			if (e.Name == trace.EvDMAIn || e.Name == trace.EvDMAOut || e.Name == trace.EvSGLIn) && e.End > e.Start {
				st.nested = append(st.nested, interval{StageTransfer, e.Start, e.End})
			}
		case trace.CatNAND:
			if e.End > e.Start {
				st.nested = append(st.nested, interval{StageNAND, e.Start, e.End})
			}
		case trace.CatDevice:
			// Cache hits nest inside the enclosing exec span exactly like
			// DMA/NAND intervals; evict markers are instantaneous bookkeeping.
			if e.Name == trace.EvCacheHit {
				if e.End > e.Start {
					st.nested = append(st.nested, interval{StageDevCache, e.Start, e.End})
				}
				continue
			}
			r.exec(st, e)
		case trace.CatDriver:
			r.driver(st, e)
		}
	}
	// Stream over: whatever is still in flight never completed.
	r.Incomplete += len(st.open)
	r.Unclaimed += len(st.closed)
}

// ring consumes SQ/CQ transitions (all carry the CID in Arg).
func (st *shardState) ring(e trace.Event) {
	cid := uint16(e.Arg)
	switch e.Name {
	case trace.EvSQPush:
		if inst, ok := st.open[cid]; ok {
			// Same-CID re-push while open: a window retry resubmission.
			inst.curPush = e.Start
			inst.haveFetch = false
			return
		}
		st.open[cid] = &cmdInst{cid: cid, pushT: e.Start, curPush: e.Start}
	case trace.EvSQFetch:
		if inst, ok := st.open[cid]; ok {
			if e.Start > inst.curPush {
				inst.ivs = append(inst.ivs, interval{StageWindowWait, inst.curPush, e.Start})
			}
			inst.curFetch = e.Start
			inst.haveFetch = true
		}
	case trace.EvCQPost:
		if inst, ok := st.open[cid]; ok {
			if inst.haveExec && e.Start > inst.lastExecEnd {
				inst.ivs = append(inst.ivs, interval{StageCoalesce, inst.lastExecEnd, e.Start})
			}
			inst.ready = e.Start
			if inst.haveExec && inst.ready < inst.lastExecEnd {
				inst.ready = inst.lastExecEnd
			}
			inst.haveReady = true
		}
		// EvCQReap is stamped at the host clock before it advances to the
		// completion's arrival, so it carries no boundary information; the
		// close events (EvSubmit/EvReap/EvBurst) bound the reap tail.
	}
}

// exec consumes device-layer events: EvExec closes over the buffered nested
// intervals; EvMount is a device reset that orphans everything in flight.
func (r *Report) exec(st *shardState, e trace.Event) {
	switch e.Name {
	case trace.EvMount:
		// Device reset: in-flight commands died with the power; their
		// partial intervals must not leak into post-recovery ops.
		r.Incomplete += len(st.open)
		st.open = make(map[uint16]*cmdInst)
		r.Unclaimed += len(st.closed)
		st.closed = st.closed[:0]
		st.nested = st.nested[:0]
	case trace.EvExec:
		inst, ok := st.open[uint16(e.Arg)]
		if ok {
			if inst.haveFetch && e.Start > inst.curFetch {
				inst.ivs = append(inst.ivs, interval{StageFetch, inst.curFetch, e.Start})
			}
			inst.ivs = append(inst.ivs, interval{StageDevExec, e.Start, e.End})
			for _, nv := range st.nested {
				s, en := nv.start, nv.end
				if s < e.Start {
					s = e.Start
				}
				if en > e.End {
					en = e.End
				}
				if en > s {
					inst.ivs = append(inst.ivs, interval{nv.stage, s, en})
				}
			}
			inst.lastExecEnd = e.End
			inst.haveExec = true
		}
		st.nested = st.nested[:0]
	}
}

// driver consumes host-layer events: closes (EvSubmit span, EvReap,
// EvBurst), retries, and op claims.
func (r *Report) driver(st *shardState, e trace.Event) {
	switch e.Name {
	case trace.EvSubmit:
		if e.End > e.Start {
			// Synchronous round trip: the span closes its command. The
			// windowed queued-submission instant (End == Start) does not.
			st.close(uint16(e.Arg), e)
		}
	case trace.EvReap:
		st.close(uint16(e.Arg), e)
	case trace.EvBurst:
		// One burst closes every command pushed at or after its start, in
		// deterministic (pushT, cid) order.
		var cids []*cmdInst
		for _, inst := range st.open {
			if inst.curPush >= e.Start {
				cids = append(cids, inst)
			}
		}
		sort.Slice(cids, func(i, j int) bool {
			a, b := cids[i], cids[j]
			if a.pushT != b.pushT {
				return a.pushT < b.pushT
			}
			return a.cid < b.cid
		})
		for _, inst := range cids {
			st.closeInst(inst, e)
		}
	case trace.EvRetry:
		st.retries = append(st.retries, span{e.Start, e.End})
	case trace.EvPut, trace.EvGet, trace.EvDelete:
		r.claim(st, e)
	}
}

// close finishes the open instance for cid with closing event e.
func (st *shardState) close(cid uint16, e trace.Event) {
	inst, ok := st.open[cid]
	if !ok {
		return
	}
	st.closeInst(inst, e)
}

func (st *shardState) closeInst(inst *cmdInst, e trace.Event) {
	if inst.haveReady && e.End > inst.ready {
		inst.ivs = append(inst.ivs, interval{StageReap, inst.ready, e.End})
	}
	inst.closedBy = e.Name
	inst.closeSpan = span{e.Start, e.End}
	inst.closedAt = e.End
	delete(st.open, inst.cid)
	st.closed = append(st.closed, inst)
}

// claim resolves one operation event against the closed commands.
func (r *Report) claim(st *shardState, e trace.Event) {
	opStart, opEnd := e.Start, e.End

	// A windowed wait emits EvReap and its op event with the identical
	// span, back to back — an exact link. When any closed command matches
	// it, claim only those; otherwise fall back to containment (sync and
	// burst paths, whose op event brackets its commands' round trips).
	var claimed []*cmdInst
	for _, c := range st.closed {
		if c.closedBy == trace.EvReap && c.closeSpan.start == opStart && c.closeSpan.end == opEnd {
			claimed = append(claimed, c)
		}
	}
	exact := len(claimed) > 0
	rest := st.closed[:0]
	for _, c := range st.closed {
		switch {
		case exact && c.closedBy == trace.EvReap && c.closeSpan.start == opStart && c.closeSpan.end == opEnd:
			// already claimed
		case !exact && c.pushT >= opStart && c.closedAt <= opEnd:
			claimed = append(claimed, c)
		case c.closedAt <= opEnd:
			// Closed before this op returned but claimable by no later op
			// (a later op's span starts at or after this op's end).
			r.Unclaimed++
		default:
			rest = append(rest, c)
		}
	}
	st.closed = rest

	nret := 0
	restR := st.retries[:0]
	for _, rs := range st.retries {
		switch {
		case rs.start >= opStart && rs.end <= opEnd:
			nret++
		case rs.end <= opEnd:
			// A backoff belonging to an unclaimed command; drop it.
		default:
			restR = append(restR, rs)
		}
	}
	st.retries = restR

	op := Op{
		Name:     e.Name.String(),
		Opcode:   e.Op,
		Shard:    e.Shard,
		Seq:      e.Seq,
		Start:    opStart,
		End:      opEnd,
		Commands: len(claimed),
		Retries:  nret,
		Bytes:    e.Bytes,
	}
	var ivs []interval
	for _, c := range claimed {
		ivs = append(ivs, c.ivs...)
	}
	op.Stages = attribute(opStart, opEnd, ivs)
	r.Ops = append(r.Ops, op)
}

// attribute charges each elementary segment of [start, end] to the highest-
// priority covering stage (host when none covers it). The segments partition
// the window, so the result sums to end-start exactly with no negatives.
func attribute(start, end sim.Time, ivs []interval) [NumStages]sim.Duration {
	var stages [NumStages]sim.Duration
	if end <= start {
		return stages
	}
	clipped := make([]interval, 0, len(ivs))
	pts := make([]sim.Time, 0, 2*len(ivs)+2)
	pts = append(pts, start, end)
	for _, iv := range ivs {
		s, e := iv.start, iv.end
		if s < start {
			s = start
		}
		if e > end {
			e = end
		}
		if e <= s {
			continue
		}
		clipped = append(clipped, interval{iv.stage, s, e})
		pts = append(pts, s, e)
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i] < pts[j] })
	uniq := pts[:1]
	for _, p := range pts[1:] {
		if p != uniq[len(uniq)-1] {
			uniq = append(uniq, p)
		}
	}
	for i := 0; i+1 < len(uniq); i++ {
		a, b := uniq[i], uniq[i+1]
		best := StageHost
		bestPri := stagePriority[StageHost]
		for _, iv := range clipped {
			if iv.start <= a && a < iv.end {
				if p := stagePriority[iv.stage]; p > bestPri {
					best, bestPri = iv.stage, p
				}
			}
		}
		stages[best] += b.Sub(a)
	}
	return stages
}
