// Aggregation and rendering over reconstructed operations: per-opcode ×
// per-stage histograms, the top-K slowest-op forensics list, the critical-
// path digest, and the deterministic table/CSV writers the CLI and the
// blame-smoke golden gate consume.
package spans

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"

	"bandslim/internal/metrics"
	"bandslim/internal/sim"
)

// ClassSummary is the exact per-op-kind tally behind the shares the digest
// prints (histograms approximate percentiles; these sums are exact).
type ClassSummary struct {
	Name       string
	Count      int
	Commands   int
	Retries    int
	Total      sim.Duration // sum of end-to-end latencies
	StageTotal [NumStages]sim.Duration
}

// Aggregate is the distributional view of a Report: one histogram per op
// kind for end-to-end latency and for every stage, plus exact totals. Label
// order is first-observation order, so a deterministic run aggregates
// deterministically.
type Aggregate struct {
	E2E     *metrics.HistogramSet
	Stage   [NumStages]*metrics.HistogramSet
	Classes []ClassSummary
}

// Summarize folds a report's ops into histograms and exact totals. Every op
// observes every stage (zeros included), so stage histograms share their op
// kind's count and percentiles are over all ops, not just affected ones.
func Summarize(r *Report) *Aggregate {
	a := &Aggregate{E2E: metrics.NewHistogramSet()}
	for s := range a.Stage {
		a.Stage[s] = metrics.NewHistogramSet()
	}
	idx := make(map[string]int)
	for i := range r.Ops {
		op := &r.Ops[i]
		j, ok := idx[op.Name]
		if !ok {
			j = len(a.Classes)
			idx[op.Name] = j
			a.Classes = append(a.Classes, ClassSummary{Name: op.Name})
		}
		c := &a.Classes[j]
		c.Count++
		c.Commands += op.Commands
		c.Retries += op.Retries
		c.Total += op.E2E()
		a.E2E.Observe(op.Name, float64(op.E2E()))
		for s := Stage(0); s < NumStages; s++ {
			c.StageTotal[s] += op.Stages[s]
			a.Stage[s].Observe(op.Name, float64(op.Stages[s]))
		}
	}
	return a
}

// TopK returns the k slowest ops, by end-to-end latency descending with
// (Shard, Seq) breaking ties — a deterministic forensics shortlist.
func TopK(r *Report, k int) []Op {
	out := append([]Op(nil), r.Ops...)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.E2E() != b.E2E() {
			return a.E2E() > b.E2E()
		}
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		return a.Seq < b.Seq
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// CriticalPath digests one op kind's tail: among the ops at or above the
// exact p99 end-to-end latency, which stage absorbs the largest share.
type CriticalPath struct {
	Op        string
	P99       sim.Duration // exact nearest-rank p99 of end-to-end latency
	TailCount int          // ops at or above it
	Stage     Stage        // dominant stage over those ops
	Share     float64      // its fraction of the tail ops' total latency
	TailTotal sim.Duration
	StageNS   [NumStages]sim.Duration
}

// CriticalPaths computes the per-op-kind tail digest, in first-observation
// order. Kinds with no ops are absent.
func CriticalPaths(r *Report) []CriticalPath {
	byName := make(map[string][]sim.Duration)
	var names []string
	for i := range r.Ops {
		op := &r.Ops[i]
		if _, ok := byName[op.Name]; !ok {
			names = append(names, op.Name)
		}
		byName[op.Name] = append(byName[op.Name], op.E2E())
	}
	var out []CriticalPath
	for _, name := range names {
		lats := append([]sim.Duration(nil), byName[name]...)
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		n := len(lats)
		// Exact nearest-rank p99: the smallest latency with at least 99% of
		// samples at or below it.
		idx := (99*n + 99) / 100
		if idx > 0 {
			idx--
		}
		p99 := lats[idx]
		cp := CriticalPath{Op: name, P99: p99}
		for i := range r.Ops {
			op := &r.Ops[i]
			if op.Name != name || op.E2E() < p99 {
				continue
			}
			cp.TailCount++
			cp.TailTotal += op.E2E()
			for s := Stage(0); s < NumStages; s++ {
				cp.StageNS[s] += op.Stages[s]
			}
		}
		best := StageHost
		for s := Stage(1); s < NumStages; s++ {
			if cp.StageNS[s] > cp.StageNS[best] {
				best = s
			}
		}
		cp.Stage = best
		if cp.TailTotal > 0 {
			cp.Share = float64(cp.StageNS[best]) / float64(cp.TailTotal)
		}
		out = append(out, cp)
	}
	return out
}

// formatFloat matches the timeseries exporters: minimal round-trippable
// digits, byte-stable for identical runs.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteCSV writes the per-op-kind × per-stage breakdown as one CSV table:
// an e2e row followed by one row per stage, per op kind in first-observation
// order. share is the stage's fraction of the kind's total latency; the
// distribution columns come from the stage histograms. Deterministic: the
// blame-smoke gate diffs this byte-for-byte.
func WriteCSV(w io.Writer, r *Report) error {
	a := Summarize(r)
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "op,stage,count,total_ns,share,mean_ns,p50_ns,p99_ns,max_ns")
	row := func(op, stage string, count int, total sim.Duration, share float64, h *metrics.Histogram) {
		fmt.Fprintf(bw, "%s,%s,%d,%d,%s,%s,%s,%s,%s\n",
			op, stage, count, int64(total), formatFloat(share),
			formatFloat(h.Mean()), formatFloat(h.P50()), formatFloat(h.P99()), formatFloat(h.Max()))
	}
	for _, c := range a.Classes {
		share := 0.0
		if c.Total > 0 {
			share = 1.0
		}
		row(c.Name, "e2e", c.Count, c.Total, share, a.E2E.Get(c.Name))
		for s := Stage(0); s < NumStages; s++ {
			share = 0
			if c.Total > 0 {
				share = float64(c.StageTotal[s]) / float64(c.Total)
			}
			row(c.Name, s.String(), c.Count, c.StageTotal[s], share, a.Stage[s].Get(c.Name))
		}
	}
	return bw.Flush()
}

// WriteBreakdown writes the human-readable forensics report: per-op-kind
// stage table, critical-path digest, and the top-K slowest ops with their
// individual breakdowns. topK <= 0 skips the slowest-ops section.
func WriteBreakdown(w io.Writer, r *Report, topK int) error {
	bw := bufio.NewWriter(w)
	a := Summarize(r)
	fmt.Fprintf(bw, "ops reconstructed: %d", len(r.Ops))
	if r.Unclaimed > 0 {
		fmt.Fprintf(bw, "  (plus %d completed commands outside any op: flushes, scans, missed keys)", r.Unclaimed)
	}
	fmt.Fprintln(bw)
	if r.Incomplete > 0 {
		fmt.Fprintf(bw, "in-flight at stream end or lost to power cuts: %d commands\n", r.Incomplete)
	}
	for _, c := range a.Classes {
		e2e := a.E2E.Get(c.Name)
		fmt.Fprintf(bw, "\n%s: %d ops, %d commands", c.Name, c.Count, c.Commands)
		if c.Retries > 0 {
			fmt.Fprintf(bw, ", %d retries", c.Retries)
		}
		fmt.Fprintf(bw, "  e2e mean=%s p50=%s p99=%s max=%s\n",
			sim.Duration(e2e.Mean()).String(), sim.Duration(e2e.P50()).String(),
			sim.Duration(e2e.P99()).String(), sim.Duration(e2e.Max()).String())
		fmt.Fprintf(bw, "  %-12s %12s %7s %12s %12s\n", "stage", "total", "share", "mean", "p99")
		for s := Stage(0); s < NumStages; s++ {
			share := 0.0
			if c.Total > 0 {
				share = 100 * float64(c.StageTotal[s]) / float64(c.Total)
			}
			h := a.Stage[s].Get(c.Name)
			fmt.Fprintf(bw, "  %-12s %12s %6.1f%% %12s %12s\n",
				s.String(), c.StageTotal[s].String(), share,
				sim.Duration(h.Mean()).String(), sim.Duration(h.P99()).String())
		}
	}
	if cps := CriticalPaths(r); len(cps) > 0 {
		fmt.Fprintln(bw, "\ncritical path (p99 tail):")
		for _, cp := range cps {
			fmt.Fprintf(bw, "  p99 %ss (>=%s, n=%d) spend %.1f%% in %s\n",
				cp.Op, cp.P99.String(), cp.TailCount, 100*cp.Share, cp.Stage.String())
		}
	}
	if topK > 0 && len(r.Ops) > 0 {
		ops := TopK(r, topK)
		fmt.Fprintf(bw, "\ntop %d slowest ops:\n", len(ops))
		for i := range ops {
			op := &ops[i]
			fmt.Fprintf(bw, "  %2d. %s shard=%d seq=%d e2e=%s cmds=%d:",
				i+1, op.Name, op.Shard, op.Seq, op.E2E().String(), op.Commands)
			type ss struct {
				s     Stage
				share float64
			}
			var shares []ss
			for s := Stage(0); s < NumStages; s++ {
				if op.Stages[s] > 0 && op.E2E() > 0 {
					shares = append(shares, ss{s, float64(op.Stages[s]) / float64(op.E2E())})
				}
			}
			sort.SliceStable(shares, func(i, j int) bool {
				if shares[i].share != shares[j].share {
					return shares[i].share > shares[j].share
				}
				return shares[i].s < shares[j].s
			})
			for _, sh := range shares {
				fmt.Fprintf(bw, " %s %.1f%%", sh.s.String(), 100*sh.share)
			}
			fmt.Fprintln(bw)
		}
	}
	return bw.Flush()
}
