package cache

import (
	"fmt"
	"testing"
)

func TestParseKind(t *testing.T) {
	cases := []struct {
		in   string
		want Kind
		ok   bool
	}{
		{"lru", LRU, true},
		{"LRU", LRU, true},
		{"clock", CLOCK, true},
		{"2q", TwoQ, true},
		{"twoq", TwoQ, true},
		{"arc", 0, false},
		{"", 0, false},
	}
	for _, tc := range cases {
		got, err := ParseKind(tc.in)
		if tc.ok != (err == nil) || (tc.ok && got != tc.want) {
			t.Errorf("ParseKind(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	for _, k := range []Kind{LRU, CLOCK, TwoQ} {
		back, err := ParseKind(k.String())
		if err != nil || back != k {
			t.Errorf("round trip %v: got %v, %v", k, back, err)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config must validate: %v", err)
	}
	if err := ServingProfile().Validate(); err != nil {
		t.Fatalf("serving profile must validate: %v", err)
	}
	bad := []Config{
		{ValueBytes: -1},
		{Pages: -1},
		{NegativeEntries: -1},
		{HitLatency: -1},
		{Policy: Kind(99)},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
	if (Config{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	if !(Config{NegativeEntries: 8}).Enabled() || (Config{NegativeEntries: 8}).DeviceEnabled() {
		t.Error("negative-only config misclassified")
	}
	if (Config{}).EffectiveHitLatency() != DefaultHitLatency {
		t.Error("zero HitLatency must resolve to the default")
	}
}

// TestLRUOrder pins the basic recency contract: eviction order is access
// order, and Touch reorders.
func TestLRUOrder(t *testing.T) {
	p := NewPolicy(LRU)
	for s := 0; s < 3; s++ {
		p.Admit(s)
	}
	p.Touch(0) // order now (MRU→LRU): 0, 2, 1
	for i, want := range []int{1, 2, 0} {
		if got := p.Evict(); got != want {
			t.Fatalf("evict %d: got slot %d, want %d", i, got, want)
		}
	}
	if got := p.Evict(); got != -1 {
		t.Fatalf("empty evict returned %d", got)
	}
}

// TestClockHandWrap drives the second-chance sweep through a full wrap: with
// every reference bit set, the hand must clear all bits in one lap and evict
// the slot it started on; the next eviction then proceeds from the hand
// without re-clearing.
func TestClockHandWrap(t *testing.T) {
	p := NewPolicy(CLOCK)
	for s := 0; s < 4; s++ {
		p.Admit(s) // all admitted with ref=1; ring order 0,1,2,3
	}
	// Every bit set → the hand sweeps 0,1,2,3 clearing bits, wraps back to
	// 0 (now clear) and evicts it.
	if got := p.Evict(); got != 0 {
		t.Fatalf("wrap eviction: got slot %d, want 0", got)
	}
	// Bits are now all clear and the hand sits on 1: straight eviction.
	if got := p.Evict(); got != 1 {
		t.Fatalf("post-wrap eviction: got slot %d, want 1", got)
	}
	// A touch grants slot 2 a second chance; 3 goes first.
	p.Touch(2)
	if got := p.Evict(); got != 3 {
		t.Fatalf("second-chance eviction: got slot %d, want 3", got)
	}
	if got := p.Evict(); got != 2 {
		t.Fatalf("final eviction: got slot %d, want 2", got)
	}
	if p.Len() != 0 {
		t.Fatalf("len after draining: %d", p.Len())
	}
}

// TestClockRemoveHand removes the slot the hand points at and checks the
// sweep continues correctly instead of dereferencing a dead slot.
func TestClockRemoveHand(t *testing.T) {
	p := NewPolicy(CLOCK)
	for s := 0; s < 3; s++ {
		p.Admit(s)
	}
	if got := p.Evict(); got != 0 { // full wrap, hand now on 1
		t.Fatalf("first eviction: got %d, want 0", got)
	}
	p.Remove(1) // hand must advance to 2
	if got := p.Evict(); got != 2 {
		t.Fatalf("eviction after removing hand slot: got %d, want 2", got)
	}
	if p.Len() != 0 {
		t.Fatalf("len: %d", p.Len())
	}
	// Removing the last element must park the hand, not wedge it.
	p.Admit(7)
	p.Remove(7)
	if got := p.Evict(); got != -1 {
		t.Fatalf("evict on emptied ring returned %d", got)
	}
}

// TestTwoQPromotionDemotion pins the 2Q contract: one-touch entries die in
// probation order (FIFO demotion), a second access promotes into the
// protected LRU, and protected entries outlive any number of one-touch
// scans.
func TestTwoQPromotionDemotion(t *testing.T) {
	p := NewPolicy(TwoQ)
	// Admit 0..3; touch 0 again → promoted to Am. 1..3 remain in A1in.
	for s := 0; s < 4; s++ {
		p.Admit(s)
	}
	p.Touch(0)
	// A1in (3 of 4 resident) is over its 1/4 share: demotions come from the
	// FIFO tail — strict admission order, ignoring the re-touches below.
	p.Touch(1) // touching inside A1in... promotes (second access)
	// After touching 1, Am = {1, 0}, A1in = {3, 2}.
	if got := p.Evict(); got != 2 {
		t.Fatalf("first demotion: got slot %d, want 2 (A1in FIFO tail)", got)
	}
	if got := p.Evict(); got != 3 {
		t.Fatalf("second demotion: got slot %d, want 3", got)
	}
	// Only Am remains: eviction is LRU order (0 is older than 1).
	if got := p.Evict(); got != 0 {
		t.Fatalf("protected eviction: got slot %d, want 0 (Am LRU)", got)
	}
	if got := p.Evict(); got != 1 {
		t.Fatalf("final eviction: got slot %d, want 1", got)
	}
}

// TestTwoQScanResistance is the property 2Q exists for: a long one-touch
// scan must not displace the promoted hot set.
func TestTwoQScanResistance(t *testing.T) {
	p := NewPolicy(TwoQ)
	// Build a hot set of 4 promoted slots.
	for s := 0; s < 4; s++ {
		p.Admit(s)
		p.Touch(s)
	}
	// Scan 100 one-touch entries through a residency bound of 8: admit,
	// then evict back down to 8 resident.
	for s := 10; s < 110; s++ {
		p.Admit(s)
		for p.Len() > 8 {
			if v := p.Evict(); v < 4 && v >= 0 {
				t.Fatalf("scan evicted hot slot %d", v)
			}
		}
	}
	// The hot set is still resident: draining yields all four eventually.
	seen := map[int]bool{}
	for {
		v := p.Evict()
		if v < 0 {
			break
		}
		seen[v] = true
	}
	for s := 0; s < 4; s++ {
		if !seen[s] {
			t.Fatalf("hot slot %d lost during scan", s)
		}
	}
}

// TestPolicyRecycleSlots checks slot indices can be reused after eviction and
// removal across all policies (the caches recycle slots through free lists).
func TestPolicyRecycleSlots(t *testing.T) {
	for _, k := range []Kind{LRU, CLOCK, TwoQ} {
		t.Run(k.String(), func(t *testing.T) {
			p := NewPolicy(k)
			for round := 0; round < 3; round++ {
				for s := 0; s < 8; s++ {
					p.Admit(s)
				}
				p.Touch(3)
				p.Remove(5)
				n := 0
				for p.Evict() >= 0 {
					n++
				}
				if n != 7 {
					t.Fatalf("round %d: drained %d slots, want 7", round, n)
				}
				if p.Len() != 0 {
					t.Fatalf("round %d: len %d after drain", round, p.Len())
				}
			}
			p.Admit(2)
			p.Reset()
			if p.Len() != 0 || p.Evict() != -1 {
				t.Fatal("reset did not empty policy")
			}
		})
	}
}

func TestValuesBasic(t *testing.T) {
	c := NewValues(1<<20, NewPolicy(LRU))
	key, val := []byte("k1"), []byte("value-1")
	if _, ok := c.Get(key); ok {
		t.Fatal("hit on empty cache")
	}
	if _, admitted := c.Put(key, val); !admitted {
		t.Fatal("put rejected")
	}
	got, ok := c.Get(key)
	if !ok || string(got) != string(val) {
		t.Fatalf("get: %q, %v", got, ok)
	}
	// Overwrite replaces in place.
	if _, admitted := c.Put(key, []byte("value-2")); !admitted {
		t.Fatal("overwrite rejected")
	}
	if got, _ := c.Get(key); string(got) != "value-2" {
		t.Fatalf("after overwrite: %q", got)
	}
	if c.Len() != 1 {
		t.Fatalf("len: %d", c.Len())
	}
	if !c.Invalidate(key) {
		t.Fatal("invalidate missed resident key")
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("hit after invalidate")
	}
	if c.Invalidate(key) {
		t.Fatal("second invalidate reported resident")
	}
	if c.Used() != 0 {
		t.Fatalf("used bytes after drain: %d", c.Used())
	}
}

func TestValuesEvictionBudget(t *testing.T) {
	// Budget of 4 entries of (5-byte key + 59-byte value) = 256 bytes.
	c := NewValues(256, NewPolicy(LRU))
	val := make([]byte, 59)
	for i := 0; i < 6; i++ {
		key := []byte(fmt.Sprintf("ek%03d", i))
		evicted, admitted := c.Put(key, val)
		if !admitted {
			t.Fatalf("put %d rejected", i)
		}
		if i < 4 && evicted != 0 {
			t.Fatalf("put %d evicted %d entries before budget filled", i, evicted)
		}
		if i >= 4 && evicted != 1 {
			t.Fatalf("put %d evicted %d entries, want 1", i, evicted)
		}
	}
	// LRU: 0 and 1 are gone; 2..5 resident.
	if _, ok := c.Get([]byte("ek000")); ok {
		t.Fatal("oldest entry survived eviction")
	}
	if _, ok := c.Get([]byte("ek005")); !ok {
		t.Fatal("newest entry missing")
	}
	if c.Used() > 256 {
		t.Fatalf("used %d exceeds budget", c.Used())
	}
}

func TestValuesAdmissionControl(t *testing.T) {
	c := NewValues(1024, NewPolicy(LRU))
	// maxEntry = 256: a 300-byte value must be refused without evicting.
	c.Put([]byte("small"), make([]byte, 64))
	if evicted, admitted := c.Put([]byte("big"), make([]byte, 300)); admitted || evicted != 0 {
		t.Fatalf("oversized value admitted=%v evicted=%d", admitted, evicted)
	}
	if _, ok := c.Get([]byte("small")); !ok {
		t.Fatal("resident entry lost to rejected admission")
	}
}

func TestValuesReset(t *testing.T) {
	c := NewValues(4096, NewPolicy(TwoQ))
	for i := 0; i < 8; i++ {
		c.Put([]byte(fmt.Sprintf("rk%02d", i)), make([]byte, 32))
	}
	c.Reset()
	if c.Len() != 0 || c.Used() != 0 {
		t.Fatalf("after reset: len=%d used=%d", c.Len(), c.Used())
	}
	// The cache must be fully usable after reset.
	c.Put([]byte("rk00"), make([]byte, 32))
	if _, ok := c.Get([]byte("rk00")); !ok {
		t.Fatal("miss after post-reset put")
	}
}

func TestPagesBasic(t *testing.T) {
	c := NewPages(2, NewPolicy(LRU))
	c.Put(10, []byte("page-10"))
	c.Put(11, []byte("page-11"))
	if got, ok := c.Get(10); !ok || string(got) != "page-10" {
		t.Fatalf("get 10: %q, %v", got, ok)
	}
	// Page 11 is now LRU; admitting 12 evicts it.
	if evicted := c.Put(12, []byte("page-12")); evicted != 1 {
		t.Fatalf("evicted %d, want 1", evicted)
	}
	if _, ok := c.Get(11); ok {
		t.Fatal("LRU page survived eviction")
	}
	if _, ok := c.Get(10); !ok {
		t.Fatal("touched page evicted")
	}
	// Page numbers are recycled by the LSM: re-putting a page replaces it.
	c.Put(10, []byte("page-10b"))
	if got, _ := c.Get(10); string(got) != "page-10b" {
		t.Fatalf("stale image after overwrite: %q", got)
	}
	if !c.Invalidate(10) || c.Invalidate(10) {
		t.Fatal("invalidate bookkeeping wrong")
	}
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("len after reset: %d", c.Len())
	}
}

// TestValuesHitPathAllocs pins the tentpole's zero-alloc promise at the
// package level: steady-state Get on a warm cache allocates nothing.
func TestValuesHitPathAllocs(t *testing.T) {
	c := NewValues(1<<20, NewPolicy(TwoQ))
	keys := make([][]byte, 16)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("hk%02d", i))
		c.Put(keys[i], make([]byte, 128))
	}
	i := 0
	if avg := testing.AllocsPerRun(400, func() {
		v, ok := c.Get(keys[i%len(keys)])
		if !ok || len(v) != 128 {
			t.Fatal("miss on warm cache")
		}
		i++
	}); avg != 0 {
		t.Errorf("Values.Get allocates %.2f per op, want 0", avg)
	}
	p := NewPages(16, NewPolicy(CLOCK))
	for pg := 0; pg < 16; pg++ {
		p.Put(pg, make([]byte, 512))
	}
	i = 0
	if avg := testing.AllocsPerRun(400, func() {
		v, ok := p.Get(i % 16)
		if !ok || len(v) != 512 {
			t.Fatal("miss on warm page cache")
		}
		i++
	}); avg != 0 {
		t.Errorf("Pages.Get allocates %.2f per op, want 0", avg)
	}
}
