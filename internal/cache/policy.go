// Replacement policies for the device-DRAM read caches. All three run over
// slot indices (the caches own the entry storage; the policy only orders
// residency), are deterministic — no wall clock, no randomness — and are
// allocation-free in steady state: the intrusive linked lists grow their
// backing arrays to the high-water slot count once and then recycle.
package cache

import "fmt"

// Kind selects a replacement policy.
type Kind int

const (
	// LRU evicts the least-recently-used entry (an intrusive recency list).
	LRU Kind = iota
	// CLOCK approximates LRU with one reference bit per entry and a
	// sweeping hand, as firmware caches usually do.
	CLOCK
	// TwoQ keeps new entries in a FIFO probation queue (A1in) and promotes
	// them to a protected LRU (Am) on their second access, so one-touch
	// scans cannot flush the hot set.
	TwoQ
)

func (k Kind) String() string {
	switch k {
	case LRU:
		return "lru"
	case CLOCK:
		return "clock"
	case TwoQ:
		return "2q"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ParseKind converts a policy name back to a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "lru", "LRU":
		return LRU, nil
	case "clock", "CLOCK":
		return CLOCK, nil
	case "2q", "2Q", "twoq":
		return TwoQ, nil
	}
	return 0, fmt.Errorf("cache: unknown policy %q", s)
}

// Policy orders resident slots for eviction. The caches call Admit when a
// slot becomes resident, Touch on every hit, Evict to pick (and forget) a
// victim, and Remove on invalidation. Implementations never allocate after
// their arrays reach the high-water slot index.
type Policy interface {
	Name() string
	Admit(slot int)
	Touch(slot int)
	// Evict removes and returns the policy's victim slot, or -1 when empty.
	Evict() int
	Remove(slot int)
	Len() int
	Reset()
}

// NewPolicy builds the policy for a Kind (unknown kinds fall back to LRU).
func NewPolicy(k Kind) Policy {
	switch k {
	case CLOCK:
		return &clockPolicy{list: newList()}
	case TwoQ:
		return &twoQPolicy{in: newList(), am: newList()}
	default:
		return &lruPolicy{list: newList()}
	}
}

// list is an intrusive doubly-linked list over slot indices. Front is the
// most-recent end; back is the eviction end.
type list struct {
	head, tail int
	prev, next []int
	n          int
}

func newList() list { return list{head: -1, tail: -1} }

func (l *list) grow(slot int) {
	for len(l.prev) <= slot {
		l.prev = append(l.prev, -1)
		l.next = append(l.next, -1)
	}
}

func (l *list) pushFront(s int) {
	l.grow(s)
	l.prev[s] = -1
	l.next[s] = l.head
	if l.head >= 0 {
		l.prev[l.head] = s
	}
	l.head = s
	if l.tail < 0 {
		l.tail = s
	}
	l.n++
}

func (l *list) remove(s int) {
	p, nx := l.prev[s], l.next[s]
	if p >= 0 {
		l.next[p] = nx
	} else {
		l.head = nx
	}
	if nx >= 0 {
		l.prev[nx] = p
	} else {
		l.tail = p
	}
	l.prev[s], l.next[s] = -1, -1
	l.n--
}

func (l *list) reset() {
	l.head, l.tail, l.n = -1, -1, 0
}

// lruPolicy is the recency list: Touch moves to front, Evict takes the back.
type lruPolicy struct{ list list }

func (p *lruPolicy) Name() string { return LRU.String() }
func (p *lruPolicy) Admit(s int)  { p.list.pushFront(s) }
func (p *lruPolicy) Touch(s int) {
	if p.list.head == s {
		return
	}
	p.list.remove(s)
	p.list.pushFront(s)
}
func (p *lruPolicy) Evict() int {
	s := p.list.tail
	if s < 0 {
		return -1
	}
	p.list.remove(s)
	return s
}
func (p *lruPolicy) Remove(s int) { p.list.remove(s) }
func (p *lruPolicy) Len() int     { return p.list.n }
func (p *lruPolicy) Reset()       { p.list.reset() }

// clockPolicy is the second-chance ring: one reference bit per slot and a
// hand that sweeps from the oldest entry, clearing bits until it finds a
// clear one. A fully-referenced ring makes the hand wrap the whole circle
// and evict the slot it started on (its bit was cleared first).
type clockPolicy struct {
	list list
	ref  []bool
	hand int // slot the next sweep starts at; -1 when empty
}

func (p *clockPolicy) Name() string { return CLOCK.String() }

func (p *clockPolicy) growRef(s int) {
	for len(p.ref) <= s {
		p.ref = append(p.ref, false)
	}
}

// nextWrap advances one position around the ring (list order, back wraps to
// front).
func (p *clockPolicy) nextWrap(s int) int {
	nx := p.list.next[s]
	if nx < 0 {
		return p.list.head
	}
	return nx
}

func (p *clockPolicy) Admit(s int) {
	p.growRef(s)
	p.ref[s] = true
	// Insert at the back (just behind the hand's wrap point): new entries
	// are the last the sweep reaches.
	l := &p.list
	l.grow(s)
	l.next[s] = -1
	l.prev[s] = l.tail
	if l.tail >= 0 {
		l.next[l.tail] = s
	} else {
		l.head = s
	}
	l.tail = s
	l.n++
	if p.hand < 0 || l.n == 1 {
		p.hand = l.head
	}
}

func (p *clockPolicy) Touch(s int) { p.ref[s] = true }

func (p *clockPolicy) Evict() int {
	if p.list.n == 0 {
		return -1
	}
	cur := p.hand
	if cur < 0 {
		cur = p.list.head
	}
	// Bounded by 2n: the first lap clears every set bit.
	for p.ref[cur] {
		p.ref[cur] = false
		cur = p.nextWrap(cur)
	}
	p.hand = p.nextWrap(cur)
	if p.hand == cur {
		p.hand = -1 // last element leaves
	}
	p.list.remove(cur)
	return cur
}

func (p *clockPolicy) Remove(s int) {
	if p.hand == s {
		p.hand = p.nextWrap(s)
		if p.hand == s {
			p.hand = -1
		}
	}
	p.list.remove(s)
	p.ref[s] = false
}

func (p *clockPolicy) Len() int { return p.list.n }

func (p *clockPolicy) Reset() {
	p.list.reset()
	for i := range p.ref {
		p.ref[i] = false
	}
	p.hand = -1
}

// twoQKinDen bounds the probation queue to 1/twoQKinDen of residency.
const twoQKinDen = 4

// twoQPolicy is simplified 2Q: admissions enter the A1in FIFO; a second
// access promotes to the protected Am LRU; eviction demotes from A1in while
// it exceeds its share, else takes Am's LRU tail.
type twoQPolicy struct {
	in, am list
	where  []uint8 // 0 = untracked, 1 = A1in, 2 = Am
}

func (p *twoQPolicy) Name() string { return TwoQ.String() }

func (p *twoQPolicy) growWhere(s int) {
	for len(p.where) <= s {
		p.where = append(p.where, 0)
	}
}

func (p *twoQPolicy) Admit(s int) {
	p.growWhere(s)
	p.where[s] = 1
	p.in.pushFront(s)
}

func (p *twoQPolicy) Touch(s int) {
	switch p.where[s] {
	case 1: // promotion: second access graduates probation
		p.in.remove(s)
		p.am.pushFront(s)
		p.where[s] = 2
	case 2:
		if p.am.head != s {
			p.am.remove(s)
			p.am.pushFront(s)
		}
	}
}

func (p *twoQPolicy) Evict() int {
	total := p.in.n + p.am.n
	if total == 0 {
		return -1
	}
	// Demote from probation while it holds more than its share (or the
	// protected list is empty).
	if p.in.n > 0 && (p.am.n == 0 || p.in.n*twoQKinDen > total) {
		s := p.in.tail
		p.in.remove(s)
		p.where[s] = 0
		return s
	}
	s := p.am.tail
	p.am.remove(s)
	p.where[s] = 0
	return s
}

func (p *twoQPolicy) Remove(s int) {
	switch p.where[s] {
	case 1:
		p.in.remove(s)
	case 2:
		p.am.remove(s)
	}
	p.where[s] = 0
}

func (p *twoQPolicy) Len() int { return p.in.n + p.am.n }

func (p *twoQPolicy) Reset() {
	p.in.reset()
	p.am.reset()
	for i := range p.where {
		p.where[i] = 0
	}
}
