// Package cache models the device-DRAM read-cache tier of a KV-SSD plus the
// host-side negative-result cache. The device tier is value-granular for
// vLog entries and page-granular for SSTable pages; both sit behind the same
// pluggable replacement policies and charge a device-DRAM latency on the
// virtual clock instead of NAND + channel occupancy. Everything here is
// deterministic and allocation-free on the hit path: entry storage comes
// from internal/pool arenas and lookups use Go's zero-copy
// map[string(bytes)] form.
package cache

import (
	"fmt"

	"bandslim/internal/pool"
	"bandslim/internal/sim"
)

// DefaultHitLatency is the device-DRAM access cost charged per cache hit
// when Config.HitLatency is zero. ~2µs covers the firmware lookup plus a
// DRAM row fetch — two orders of magnitude under a NAND page read.
const DefaultHitLatency = 2 * sim.Microsecond

// Config sizes the tiered read path. The zero value disables every tier, so
// existing configurations keep seed-identical behavior and timing.
type Config struct {
	// ValueBytes caps the device value cache (vLog entries) in bytes of
	// cached key+value payload. Zero disables the value tier.
	ValueBytes int
	// Pages caps the device page cache (SSTable pages) in resident pages.
	// Zero disables the page tier.
	Pages int
	// Policy selects the replacement policy shared by both device tiers.
	Policy Kind
	// HitLatency is the simulated device-DRAM access time charged per hit.
	// Zero means DefaultHitLatency.
	HitLatency sim.Duration
	// NegativeEntries caps the host-side recent-miss ring per driver. Zero
	// disables the negative cache.
	NegativeEntries int
}

// DeviceEnabled reports whether any device-DRAM tier is configured.
func (c Config) DeviceEnabled() bool { return c.ValueBytes > 0 || c.Pages > 0 }

// Enabled reports whether any tier — device or host — is configured.
func (c Config) Enabled() bool { return c.DeviceEnabled() || c.NegativeEntries > 0 }

// EffectiveHitLatency resolves the zero-value default.
func (c Config) EffectiveHitLatency() sim.Duration {
	if c.HitLatency > 0 {
		return c.HitLatency
	}
	return DefaultHitLatency
}

// Validate rejects configurations the stack cannot honor.
func (c Config) Validate() error {
	if c.ValueBytes < 0 || c.Pages < 0 || c.NegativeEntries < 0 {
		return fmt.Errorf("cache: negative capacity (values=%d pages=%d negative=%d)",
			c.ValueBytes, c.Pages, c.NegativeEntries)
	}
	if c.HitLatency < 0 {
		return fmt.Errorf("cache: negative hit latency %v", c.HitLatency)
	}
	switch c.Policy {
	case LRU, CLOCK, TwoQ:
	default:
		return fmt.Errorf("cache: unknown policy kind %d", int(c.Policy))
	}
	return nil
}

// ServingProfile is the documented starting point for a cache-enabled
// bandslim-server: a 4 MiB value tier, a 64-page SSTable tier under LRU, and
// a 1024-entry host negative ring.
func ServingProfile() Config {
	return Config{
		ValueBytes:      4 << 20,
		Pages:           64,
		Policy:          LRU,
		NegativeEntries: 1024,
	}
}

// ventry is one resident value-cache entry; key and val are arena-backed.
type ventry struct {
	key, val []byte
}

// Values is the value-granular device tier: full vLog entries keyed by user
// key, bounded by payload bytes. Get is zero-allocation; Put and Invalidate
// run on miss/mutation paths where structural allocation is acceptable
// (though entry buffers still recycle through the arena).
type Values struct {
	pol      Policy
	idx      map[string]int
	ents     []ventry
	free     []int
	used     int // resident key+value bytes
	capBytes int
	maxEntry int // admission bound: larger values bypass the cache
	arena    pool.Bytes
}

// NewValues builds the value tier with capBytes of payload budget under pol.
func NewValues(capBytes int, pol Policy) *Values {
	maxEntry := capBytes / 4
	if maxEntry < 1 {
		maxEntry = capBytes
	}
	return &Values{
		pol:      pol,
		idx:      make(map[string]int),
		capBytes: capBytes,
		maxEntry: maxEntry,
	}
}

// Get returns the cached value for key. The returned slice aliases the
// cache's arena and is only valid until the next mutation.
func (c *Values) Get(key []byte) ([]byte, bool) {
	s, ok := c.idx[string(key)] // compiler-optimized: no string alloc
	if !ok {
		return nil, false
	}
	c.pol.Touch(s)
	return c.ents[s].val, true
}

// Put admits a key/value copy, evicting until it fits. It returns how many
// entries were evicted and whether the value was admitted (oversized values
// are rejected so one cold scan cannot claim the whole budget).
func (c *Values) Put(key, val []byte) (evicted int, admitted bool) {
	if c == nil || c.capBytes <= 0 {
		return 0, false
	}
	need := len(key) + len(val)
	if len(val) > c.maxEntry || need > c.capBytes {
		return 0, false
	}
	if s, ok := c.idx[string(key)]; ok {
		c.dropSlot(s)
		c.pol.Remove(s)
	}
	for c.used+need > c.capBytes {
		v := c.pol.Evict()
		if v < 0 {
			return evicted, false
		}
		c.dropSlot(v)
		evicted++
	}
	s := c.allocSlot()
	e := &c.ents[s]
	e.key = append(c.arena.Get(len(key))[:0], key...)
	e.val = append(c.arena.Get(len(val))[:0], val...)
	c.idx[string(e.key)] = s
	c.pol.Admit(s)
	c.used += need
	return evicted, true
}

// Invalidate drops key if resident, reporting whether it was.
func (c *Values) Invalidate(key []byte) bool {
	if c == nil {
		return false
	}
	s, ok := c.idx[string(key)]
	if !ok {
		return false
	}
	c.dropSlot(s)
	c.pol.Remove(s)
	return true
}

// Reset empties the tier (device DRAM is volatile: power cuts clear it).
func (c *Values) Reset() {
	if c == nil {
		return
	}
	for k, s := range c.idx {
		e := &c.ents[s]
		c.arena.Put(e.key)
		c.arena.Put(e.val)
		e.key, e.val = nil, nil
		c.free = append(c.free, s)
		delete(c.idx, k)
	}
	c.pol.Reset()
	c.used = 0
}

// Len reports resident entries; Used reports resident payload bytes.
func (c *Values) Len() int  { return len(c.idx) }
func (c *Values) Used() int { return c.used }

func (c *Values) allocSlot() int {
	if n := len(c.free); n > 0 {
		s := c.free[n-1]
		c.free = c.free[:n-1]
		return s
	}
	c.ents = append(c.ents, ventry{})
	return len(c.ents) - 1
}

func (c *Values) dropSlot(s int) {
	e := &c.ents[s]
	c.used -= len(e.key) + len(e.val)
	delete(c.idx, string(e.key))
	c.arena.Put(e.key)
	c.arena.Put(e.val)
	e.key, e.val = nil, nil
	c.free = append(c.free, s)
}

// Pages is the page-granular device tier: SSTable page images keyed by page
// number, bounded by resident page count. Page numbers are recycled by the
// LSM after commits, so callers must invalidate on every write and trim.
type Pages struct {
	pol      Policy
	idx      map[int]int
	data     [][]byte // slot-indexed page images (arena-backed)
	pageOf   []int    // slot -> page number, for eviction bookkeeping
	free     []int
	capPages int
	arena    pool.Bytes
}

// NewPages builds the page tier holding up to capPages pages under pol.
func NewPages(capPages int, pol Policy) *Pages {
	return &Pages{
		pol:      pol,
		idx:      make(map[int]int),
		capPages: capPages,
	}
}

// Get returns the cached image of page. The slice aliases the cache's arena
// and is only valid until the next mutation.
func (c *Pages) Get(page int) ([]byte, bool) {
	s, ok := c.idx[page]
	if !ok {
		return nil, false
	}
	c.pol.Touch(s)
	return c.data[s], true
}

// Put admits a copy of data for page, evicting at capacity. It returns how
// many pages were evicted.
func (c *Pages) Put(page int, data []byte) (evicted int) {
	if c == nil || c.capPages <= 0 {
		return 0
	}
	if s, ok := c.idx[page]; ok {
		c.dropSlot(s)
		c.pol.Remove(s)
	}
	for len(c.idx) >= c.capPages {
		v := c.pol.Evict()
		if v < 0 {
			return evicted
		}
		c.dropSlot(v)
		evicted++
	}
	s := c.allocSlot()
	c.data[s] = append(c.arena.Get(len(data))[:0], data...)
	c.pageOf[s] = page
	c.idx[page] = s
	c.pol.Admit(s)
	return evicted
}

// Invalidate drops page if resident, reporting whether it was. The LSM
// recycles page numbers after commit, so every WritePage/TrimPage must pass
// through here before the store sees it.
func (c *Pages) Invalidate(page int) bool {
	if c == nil {
		return false
	}
	s, ok := c.idx[page]
	if !ok {
		return false
	}
	c.dropSlot(s)
	c.pol.Remove(s)
	return true
}

// Reset empties the tier.
func (c *Pages) Reset() {
	if c == nil {
		return
	}
	for p, s := range c.idx {
		c.arena.Put(c.data[s])
		c.data[s] = nil
		c.free = append(c.free, s)
		delete(c.idx, p)
	}
	c.pol.Reset()
}

// Len reports resident pages.
func (c *Pages) Len() int { return len(c.idx) }

func (c *Pages) allocSlot() int {
	if n := len(c.free); n > 0 {
		s := c.free[n-1]
		c.free = c.free[:n-1]
		return s
	}
	c.data = append(c.data, nil)
	c.pageOf = append(c.pageOf, -1)
	return len(c.data) - 1
}

func (c *Pages) dropSlot(s int) {
	delete(c.idx, c.pageOf[s])
	c.arena.Put(c.data[s])
	c.data[s] = nil
	c.pageOf[s] = -1
	c.free = append(c.free, s)
}
