package lsm

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"testing/quick"
)

func TestMemTablePutGet(t *testing.T) {
	m := NewMemTable()
	if err := m.Put([]byte("abc"), 100, 32, false); err != nil {
		t.Fatal(err)
	}
	e, ok := m.Get([]byte("abc"))
	if !ok || e.Addr != 100 || e.Size != 32 || e.Tombstone {
		t.Fatalf("Get = %+v, %v", e, ok)
	}
	if _, ok := m.Get([]byte("zzz")); ok {
		t.Fatal("missing key found")
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestMemTableUpdateInPlace(t *testing.T) {
	m := NewMemTable()
	m.Put([]byte("k"), 1, 1, false)
	m.Put([]byte("k"), 2, 2, false)
	if m.Len() != 1 {
		t.Fatalf("Len = %d after update", m.Len())
	}
	e, _ := m.Get([]byte("k"))
	if e.Addr != 2 || e.Size != 2 {
		t.Fatalf("update lost: %+v", e)
	}
}

func TestMemTableTombstone(t *testing.T) {
	m := NewMemTable()
	m.Put([]byte("k"), 1, 1, false)
	m.Put([]byte("k"), 0, 0, true)
	e, ok := m.Get([]byte("k"))
	if !ok || !e.Tombstone {
		t.Fatal("tombstone not recorded")
	}
}

func TestMemTableKeyValidation(t *testing.T) {
	m := NewMemTable()
	if err := m.Put(nil, 0, 0, false); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := m.Put(make([]byte, 17), 0, 0, false); err == nil {
		t.Fatal("oversized key accepted")
	}
	if err := m.Put(make([]byte, 16), 0, 0, false); err != nil {
		t.Fatalf("16-byte key rejected: %v", err)
	}
}

func TestMemTableKeyIsCopied(t *testing.T) {
	m := NewMemTable()
	k := []byte("abc")
	m.Put(k, 1, 1, false)
	k[0] = 'x'
	if _, ok := m.Get([]byte("abc")); !ok {
		t.Fatal("caller mutation corrupted stored key")
	}
}

func TestMemTableIteratorOrder(t *testing.T) {
	m := NewMemTable()
	keys := []string{"delta", "alpha", "echo", "bravo", "charlie"}
	for i, k := range keys {
		m.Put([]byte(k), 0, uint32(i), false)
	}
	it := m.Iterator()
	var got []string
	for it.Next() {
		got = append(got, string(it.Entry().Key))
	}
	want := append([]string(nil), keys...)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("iterated %d keys", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order: got %v, want %v", got, want)
		}
	}
}

func TestMemTableIteratorSeek(t *testing.T) {
	m := NewMemTable()
	for _, k := range []string{"a", "c", "e", "g"} {
		m.Put([]byte(k), 0, 0, false)
	}
	it := m.Iterator()
	it.Seek(m, []byte("d"))
	if !it.Next() || string(it.Entry().Key) != "e" {
		t.Fatalf("Seek(d) then Next gave %q", it.Entry().Key)
	}
	it.Seek(m, []byte("c"))
	if !it.Next() || string(it.Entry().Key) != "c" {
		t.Fatal("Seek to existing key must include it")
	}
	it.Seek(m, []byte("z"))
	if it.Next() {
		t.Fatal("Seek past end yielded an entry")
	}
}

func TestMemTableApproxBytesGrows(t *testing.T) {
	m := NewMemTable()
	before := m.ApproxBytes()
	m.Put([]byte("abcd"), 0, 0, false)
	if m.ApproxBytes() <= before {
		t.Fatal("ApproxBytes did not grow")
	}
}

// Property: the memtable agrees with a map reference under random workloads,
// and iteration is always sorted and complete.
func TestMemTableMatchesMapProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		m := NewMemTable()
		ref := make(map[string]uint32)
		for i, op := range ops {
			key := []byte(fmt.Sprintf("k%03d", op%300))
			if op%5 == 0 {
				m.Put(key, 0, 0, true)
				ref[string(key)] = 0
				delete(ref, string(key))
				ref[string(key)+"#tomb"] = 1
			} else {
				m.Put(key, 0, uint32(i), false)
				delete(ref, string(key)+"#tomb")
				ref[string(key)] = uint32(i)
			}
		}
		// Every live ref entry must be found with the right size.
		for k, sz := range ref {
			if len(k) >= 4+5 && k[len(k)-5:] == "#tomb" {
				e, ok := m.Get([]byte(k[:len(k)-5]))
				if !ok || !e.Tombstone {
					return false
				}
				continue
			}
			e, ok := m.Get([]byte(k))
			if !ok || e.Tombstone || e.Size != sz {
				return false
			}
		}
		// Iteration is sorted.
		it := m.Iterator()
		var prev []byte
		for it.Next() {
			if prev != nil && bytes.Compare(prev, it.Entry().Key) >= 0 {
				return false
			}
			prev = append(prev[:0], it.Entry().Key...)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
