package lsm

import (
	"bytes"
	"testing"

	"bandslim/internal/vlog"
)

// FuzzDecodeEntry hardens the SSTable entry decoder against corrupt page
// bytes: it must never panic, and every successful decode must re-encode to
// the same bytes it consumed.
func FuzzDecodeEntry(f *testing.F) {
	// Seed with a valid encoding and a few mutations.
	e := Entry{Key: []byte("seedkey"), Addr: 123456, Size: 789, Tombstone: true}
	buf := make([]byte, encodedLen(e))
	encodeEntry(buf, e)
	f.Add(buf)
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{255, 1, 2, 3})
	f.Add(bytes.Repeat([]byte{16}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, n, err := decodeEntry(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(data))
		}
		if len(got.Key) == 0 || len(got.Key) > MaxKeySize {
			t.Fatalf("decoded key length %d", len(got.Key))
		}
		// Semantic round trip: re-encoding and re-decoding must be a fixed
		// point (reserved flag bits are not preserved, so byte identity is
		// not required).
		re := make([]byte, encodedLen(got))
		m := encodeEntry(re, got)
		if m != n {
			t.Fatalf("re-encode length %d, decoded %d", m, n)
		}
		got2, n2, err := decodeEntry(re)
		if err != nil || n2 != m {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !bytes.Equal(got2.Key, got.Key) || got2.Addr != got.Addr ||
			got2.Size != got.Size || got2.Tombstone != got.Tombstone {
			t.Fatalf("semantic mismatch: %+v vs %+v", got2, got)
		}
	})
}

// FuzzDecodePage: whole-page decoding must never panic and must return
// key-ordered entries when the page came from a real builder.
func FuzzDecodePage(f *testing.F) {
	store := newMemStore(16)
	alloc := newPageAllocator(16)
	b := newTableBuilder(store, alloc, 1)
	for i := 0; i < 50; i++ {
		b.add(0, Entry{Key: []byte{byte(i), byte(i + 1)}, Addr: vlog.Addr(i), Size: uint32(i)})
	}
	table, _, err := b.finish(0)
	if err != nil || table == nil {
		f.Fatal("seed table build failed")
	}
	page, _, err := store.ReadPage(0, table.pages[0])
	if err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), page...))
	f.Add([]byte{3, 1, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := decodePage(data)
		if err != nil {
			return
		}
		for _, e := range entries {
			if len(e.Key) == 0 || len(e.Key) > MaxKeySize {
				t.Fatalf("bad decoded key %x", e.Key)
			}
		}
	})
}
