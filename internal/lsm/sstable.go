package lsm

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"bandslim/internal/ftl"
	"bandslim/internal/sim"
	"bandslim/internal/vlog"
)

// PageStore abstracts the NAND meta region SSTables are serialized into.
// Page numbers are region-relative. The FTL-backed implementation charges
// simulated NAND time; tests may use an in-memory store.
type PageStore interface {
	WritePage(t sim.Time, page int, data []byte) (sim.Time, error)
	ReadPage(t sim.Time, page int) ([]byte, sim.Time, error)
	TrimPage(page int) error
	PageSize() int
	Pages() int
}

// FTLStore adapts a region of the FTL's logical space as a PageStore.
type FTLStore struct {
	f     *ftl.FTL
	base  int
	pages int
}

// NewFTLStore maps pages [base, base+pages) of the FTL.
func NewFTLStore(f *ftl.FTL, base, pages int) (*FTLStore, error) {
	if base < 0 || pages <= 0 || base+pages > f.LogicalPages() {
		return nil, fmt.Errorf("lsm: store region [%d,%d) exceeds FTL capacity %d",
			base, base+pages, f.LogicalPages())
	}
	return &FTLStore{f: f, base: base, pages: pages}, nil
}

// WritePage persists one meta page.
func (s *FTLStore) WritePage(t sim.Time, page int, data []byte) (sim.Time, error) {
	if page < 0 || page >= s.pages {
		return t, fmt.Errorf("lsm: page %d out of store range %d", page, s.pages)
	}
	return s.f.Write(t, s.base+page, data)
}

// ReadPage fetches one meta page.
func (s *FTLStore) ReadPage(t sim.Time, page int) ([]byte, sim.Time, error) {
	if page < 0 || page >= s.pages {
		return nil, t, fmt.Errorf("lsm: page %d out of store range %d", page, s.pages)
	}
	return s.f.Read(t, s.base+page)
}

// TrimPage releases one meta page back to the FTL.
func (s *FTLStore) TrimPage(page int) error {
	if page < 0 || page >= s.pages {
		return fmt.Errorf("lsm: page %d out of store range %d", page, s.pages)
	}
	return s.f.Trim(s.base + page)
}

// PageSize reports the NAND page size.
func (s *FTLStore) PageSize() int { return s.f.PageSize() }

// Pages reports the region size.
func (s *FTLStore) Pages() int { return s.pages }

// Entry wire format within an SSTable page:
//
//	keyLen   uint8
//	key      keyLen bytes
//	addr     5 bytes little-endian (40-bit vLog byte address, §3.4)
//	size     uint32
//	flags    uint8 (bit0 = tombstone)
//
// Entries never span pages; a page ends with a 0 keyLen sentinel (or runs to
// the page boundary).
const (
	addrBytes     = 5
	entryFixed    = 1 + addrBytes + 4 + 1 // keyLen + addr + size + flags
	flagTombstone = 0x01
)

func encodedLen(e Entry) int { return entryFixed + len(e.Key) }

func encodeEntry(dst []byte, e Entry) int {
	i := 0
	dst[i] = byte(len(e.Key))
	i++
	i += copy(dst[i:], e.Key)
	a := uint64(e.Addr)
	for b := 0; b < addrBytes; b++ {
		dst[i] = byte(a >> (8 * b))
		i++
	}
	binary.LittleEndian.PutUint32(dst[i:], e.Size)
	i += 4
	var fl byte
	if e.Tombstone {
		fl |= flagTombstone
	}
	dst[i] = fl
	return i + 1
}

// parseEntry validates one encoded entry and returns its fields without
// materializing the key (the key occupies src[1 : 1+kl]).
func parseEntry(src []byte) (kl int, addr vlog.Addr, size uint32, tomb bool, n int, err error) {
	if len(src) < 1 {
		return 0, 0, 0, false, 0, fmt.Errorf("lsm: truncated entry header")
	}
	kl = int(src[0])
	if kl == 0 {
		return 0, 0, 0, false, 0, errEndOfPage
	}
	if kl > MaxKeySize || len(src) < entryFixed+kl {
		return 0, 0, 0, false, 0, fmt.Errorf("lsm: corrupt entry (keyLen %d, %d bytes left)", kl, len(src))
	}
	i := 1 + kl
	var a uint64
	for b := 0; b < addrBytes; b++ {
		a |= uint64(src[i]) << (8 * b)
		i++
	}
	size = binary.LittleEndian.Uint32(src[i:])
	i += 4
	tomb = src[i]&flagTombstone != 0
	return kl, vlog.Addr(a), size, tomb, i + 1, nil
}

func decodeEntry(src []byte) (Entry, int, error) {
	kl, addr, size, tomb, n, err := parseEntry(src)
	if err != nil {
		return Entry{}, 0, err
	}
	key := append([]byte(nil), src[1:1+kl]...)
	return Entry{Key: key, Addr: addr, Size: size, Tombstone: tomb}, n, nil
}

var errEndOfPage = fmt.Errorf("lsm: end of page")

// SSTable is one immutable sorted run. Pages hold the encoded entries; the
// in-memory handle keeps the page list and a sparse index (first key per
// page), as in-device LSM-trees keep their level lists in DRAM.
type SSTable struct {
	id       uint64
	pages    []int    // region-relative page numbers, in key order
	firstKey [][]byte // first key of each page
	smallest []byte
	largest  []byte
	entries  int
}

// ID reports the table's unique id.
func (t *SSTable) ID() uint64 { return t.id }

// Entries reports how many entries the table holds.
func (t *SSTable) Entries() int { return t.entries }

// Smallest reports the table's smallest key.
func (t *SSTable) Smallest() []byte { return t.smallest }

// Largest reports the table's largest key.
func (t *SSTable) Largest() []byte { return t.largest }

// PageCount reports how many NAND pages the table occupies.
func (t *SSTable) PageCount() int { return len(t.pages) }

// overlaps reports whether the table's key range intersects [lo, hi].
func (t *SSTable) overlaps(lo, hi []byte) bool {
	if len(t.smallest) == 0 {
		return false
	}
	return bytes.Compare(t.largest, lo) >= 0 && bytes.Compare(t.smallest, hi) <= 0
}

// pageForKey returns the index of the page that may contain key (the last
// page whose first key is <= key), or -1 when the key precedes the table.
func (t *SSTable) pageForKey(key []byte) int {
	lo, hi := 0, len(t.firstKey)-1
	best := -1
	for lo <= hi {
		mid := (lo + hi) / 2
		if bytes.Compare(t.firstKey[mid], key) <= 0 {
			best = mid
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	return best
}

// decodePage parses every entry in a page image. Each entry's key is a fresh
// allocation, so results may be retained freely (compaction and merge paths).
func decodePage(data []byte) ([]Entry, error) {
	var out []Entry
	i := 0
	for i < len(data) {
		e, n, err := decodeEntry(data[i:])
		if err == errEndOfPage {
			break
		}
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		i += n
	}
	return out, nil
}

// decodePageInto parses every entry in a page image into reused scratch: the
// entry slice is truncated and refilled, and every key sub-slices the arena.
// The arena is pre-sized to the page so appends never move it mid-decode.
// Returned entries are views valid until the next call with the same scratch;
// the read hot paths (point lookups, scans) use this to avoid a key
// allocation per decoded entry.
func decodePageInto(entries []Entry, arena, data []byte) ([]Entry, []byte, error) {
	if cap(arena) < len(data) {
		arena = make([]byte, 0, len(data))
	}
	arena = arena[:0]
	entries = entries[:0]
	i := 0
	for i < len(data) {
		kl, addr, size, tomb, n, err := parseEntry(data[i:])
		if err == errEndOfPage {
			break
		}
		if err != nil {
			return entries, arena, err
		}
		start := len(arena)
		arena = append(arena, data[i+1:i+1+kl]...)
		key := arena[start : start+kl : start+kl]
		entries = append(entries, Entry{Key: key, Addr: addr, Size: size, Tombstone: tomb})
		i += n
	}
	return entries, arena, nil
}

// tableBuilder streams sorted entries into pages through a PageStore.
type tableBuilder struct {
	store PageStore
	alloc *pageAllocator
	table *SSTable
	page  []byte
	used  int
	end   sim.Time
}

func newTableBuilder(store PageStore, alloc *pageAllocator, id uint64) *tableBuilder {
	return &tableBuilder{
		store: store,
		alloc: alloc,
		table: &SSTable{id: id},
		page:  make([]byte, store.PageSize()),
	}
}

// add appends one entry (entries must arrive in strictly increasing key
// order; the caller guarantees this).
func (b *tableBuilder) add(t sim.Time, e Entry) error {
	need := encodedLen(e)
	if b.used+need > len(b.page) {
		if err := b.flushPage(t); err != nil {
			return err
		}
	}
	if b.used == 0 {
		b.table.firstKey = append(b.table.firstKey, append([]byte(nil), e.Key...))
	}
	b.used += encodeEntry(b.page[b.used:], e)
	if b.table.smallest == nil {
		b.table.smallest = append([]byte(nil), e.Key...)
	}
	b.table.largest = append(b.table.largest[:0], e.Key...)
	b.table.entries++
	return nil
}

func (b *tableBuilder) flushPage(t sim.Time) error {
	if b.used == 0 {
		return nil
	}
	page, err := b.alloc.alloc()
	if err != nil {
		return err
	}
	end, err := b.store.WritePage(t, page, b.page[:b.used])
	if err != nil {
		b.alloc.free(page)
		return err
	}
	if end > b.end {
		b.end = end
	}
	b.table.pages = append(b.table.pages, page)
	for i := range b.page {
		b.page[i] = 0
	}
	b.used = 0
	return nil
}

// finish flushes the tail page and returns the table (nil if empty).
func (b *tableBuilder) finish(t sim.Time) (*SSTable, sim.Time, error) {
	if err := b.flushPage(t); err != nil {
		return nil, b.end, err
	}
	if b.table.entries == 0 {
		return nil, b.end, nil
	}
	return b.table, b.end, nil
}

// pageAllocator hands out meta-region pages with free-list reuse.
type pageAllocator struct {
	next     int
	limit    int
	freeList []int
}

func newPageAllocator(pages int) *pageAllocator {
	return &pageAllocator{limit: pages}
}

func (a *pageAllocator) alloc() (int, error) {
	if n := len(a.freeList); n > 0 {
		p := a.freeList[n-1]
		a.freeList = a.freeList[:n-1]
		return p, nil
	}
	if a.next >= a.limit {
		return 0, fmt.Errorf("lsm: meta region full (%d pages)", a.limit)
	}
	p := a.next
	a.next++
	return p, nil
}

func (a *pageAllocator) free(p int) { a.freeList = append(a.freeList, p) }

// inUse reports how many pages are currently allocated.
func (a *pageAllocator) inUse() int { return a.next - len(a.freeList) }

// allocState is a restorable copy of the allocator, captured in the tree's
// committed catalog.
type allocState struct {
	next     int
	freeList []int
}

func (a *pageAllocator) snapshot() allocState {
	return allocState{next: a.next, freeList: append([]int(nil), a.freeList...)}
}

func (a *pageAllocator) restore(s allocState) {
	a.next = s.next
	a.freeList = append(a.freeList[:0], s.freeList...)
}
