package lsm

import (
	"bytes"

	"bandslim/internal/sim"
)

// Iterator is a merged, key-ordered view over the MemTable and every level,
// backing the device-side SEEK/NEXT interface (the iterator-extended KV-SSD
// of [22] the paper builds on). Duplicate keys resolve newest-first and
// tombstoned keys are skipped.
//
// The iterator is a snapshot of the tree at Seek time; concurrent mutation
// invalidates it (the device serializes commands, so this cannot happen
// in normal operation).
type Iterator struct {
	tree    *Tree
	sources []*iterSource
	current Entry
	// keyBuf backs current.Key for table-sourced entries: source entries are
	// views into per-source decode arenas, which advancing a source past a
	// page boundary overwrites, so the winning key is copied out before the
	// sources consume past it.
	keyBuf []byte
	valid  bool
	end    sim.Time
	err    error
}

// iterSource walks one table or the memtable. prio: lower = newer.
type iterSource struct {
	prio    int
	mem     *MemIterator
	table   *SSTable
	pageIdx int
	entries []Entry
	arena   []byte // backs entries' keys (see decodePageInto)
	pos     int
	done    bool
	cur     Entry
	hasCur  bool
}

// Seek returns an iterator positioned at the first live key >= start.
// NAND reads performed while positioning are reflected in End().
func (tr *Tree) Seek(t sim.Time, start []byte) (*Iterator, error) {
	it := &Iterator{tree: tr, end: t}
	prio := 0
	mi := tr.mem.Iterator()
	mi.Seek(tr.mem, start)
	it.sources = append(it.sources, &iterSource{prio: prio, mem: mi})
	prio++
	for lvl := 0; lvl < len(tr.levels); lvl++ {
		for _, table := range tr.levels[lvl] {
			if bytes.Compare(table.largest, start) < 0 {
				continue
			}
			src := &iterSource{prio: prio, table: table}
			src.seekTable(start)
			it.sources = append(it.sources, src)
			prio++
		}
	}
	for _, s := range it.sources {
		if err := s.advance(it, t); err != nil {
			return nil, err
		}
	}
	it.step(t, start)
	return it, it.err
}

// seekTable positions a table source at the first page that may hold start.
func (s *iterSource) seekTable(start []byte) {
	pi := s.table.pageForKey(start)
	if pi < 0 {
		pi = 0
	}
	s.pageIdx = pi
}

// advance loads the source's next entry into cur.
func (s *iterSource) advance(it *Iterator, t sim.Time) error {
	if s.done {
		s.hasCur = false
		return nil
	}
	if s.mem != nil {
		if s.mem.Next() {
			s.cur = s.mem.Entry()
			s.hasCur = true
		} else {
			s.done = true
			s.hasCur = false
		}
		return nil
	}
	for {
		if s.pos < len(s.entries) {
			s.cur = s.entries[s.pos]
			s.pos++
			s.hasCur = true
			return nil
		}
		if s.pageIdx >= len(s.table.pages) {
			s.done = true
			s.hasCur = false
			return nil
		}
		data, end, err := it.tree.store.ReadPage(t, s.table.pages[s.pageIdx])
		if err != nil {
			return err
		}
		it.tree.stats.PageReadsServed.Inc()
		if end > it.end {
			it.end = end
		}
		s.pageIdx++
		s.entries, s.arena, err = decodePageInto(s.entries, s.arena, data)
		if err != nil {
			return err
		}
		s.pos = 0
	}
}

// step advances the merged view to the first live key >= floor (exclusive of
// keys < floor; inclusive of floor itself).
func (it *Iterator) step(t sim.Time, floor []byte) {
	for {
		// Drain every source past keys below the floor.
		if floor != nil {
			for _, s := range it.sources {
				for s.hasCur && bytes.Compare(s.cur.Key, floor) < 0 {
					if err := s.advance(it, t); err != nil {
						it.err = err
						it.valid = false
						return
					}
				}
			}
		}
		best := -1
		for i, s := range it.sources {
			if !s.hasCur {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			c := bytes.Compare(s.cur.Key, it.sources[best].cur.Key)
			if c < 0 || (c == 0 && s.prio < it.sources[best].prio) {
				best = i
			}
		}
		if best < 0 {
			it.valid = false
			return
		}
		e := it.sources[best].cur
		// Copy the winning key out of its source's decode arena: consuming
		// the key below can advance that source past a page boundary, which
		// overwrites the arena backing e.Key.
		it.keyBuf = append(it.keyBuf[:0], e.Key...)
		e.Key = it.keyBuf
		// Consume this key from every source holding it.
		for _, s := range it.sources {
			for s.hasCur && bytes.Equal(s.cur.Key, e.Key) {
				if err := s.advance(it, t); err != nil {
					it.err = err
					it.valid = false
					return
				}
			}
		}
		if e.Tombstone {
			floor = nil // already consumed; look at next key
			continue
		}
		it.current = e
		it.valid = true
		return
	}
}

// Valid reports whether the iterator is positioned on an entry.
func (it *Iterator) Valid() bool { return it.valid }

// Entry returns the current entry. Only meaningful when Valid. The entry's
// key is a view into the iterator's reused key buffer, valid until the next
// Next call; callers that retain entries across advances must copy it.
func (it *Iterator) Entry() Entry { return it.current }

// Err reports a NAND or decode error that invalidated the iterator.
func (it *Iterator) Err() error { return it.err }

// End reports the completion time of the NAND reads performed so far.
func (it *Iterator) End() sim.Time { return it.end }

// Next advances to the following live key.
func (it *Iterator) Next(t sim.Time) {
	if !it.valid {
		return
	}
	it.step(t, nil)
}
