package lsm

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"bandslim/internal/sim"
	"bandslim/internal/vlog"
)

// memStore is an in-memory PageStore with a NAND-like program latency so
// completion times remain meaningful in tests.
type memStore struct {
	pageSize int
	pages    map[int][]byte
	limit    int
	writes   int
	reads    int
}

func newMemStore(pages int) *memStore {
	return &memStore{pageSize: 4096, pages: make(map[int][]byte), limit: pages}
}

func (s *memStore) WritePage(t sim.Time, page int, data []byte) (sim.Time, error) {
	if page < 0 || page >= s.limit {
		return t, fmt.Errorf("memStore: page %d out of range", page)
	}
	cp := make([]byte, s.pageSize)
	copy(cp, data)
	s.pages[page] = cp
	s.writes++
	return t.Add(400 * sim.Microsecond), nil
}

func (s *memStore) ReadPage(t sim.Time, page int) ([]byte, sim.Time, error) {
	if page < 0 || page >= s.limit {
		return nil, t, fmt.Errorf("memStore: page %d out of range", page)
	}
	p, ok := s.pages[page]
	if !ok {
		p = make([]byte, s.pageSize)
	}
	s.reads++
	return p, t.Add(100 * sim.Microsecond), nil
}

func (s *memStore) TrimPage(page int) error {
	delete(s.pages, page)
	return nil
}

func (s *memStore) PageSize() int { return s.pageSize }
func (s *memStore) Pages() int    { return s.limit }

func smallTreeConfig() Config {
	return Config{
		MemTableEntries:     16,
		L0CompactionTrigger: 3,
		LevelTableBase:      2,
		MaxLevels:           4,
		TablePages:          2,
	}
}

func newTestTree(t *testing.T) (*Tree, *memStore) {
	t.Helper()
	store := newMemStore(4096)
	tr, err := NewTree(smallTreeConfig(), store)
	if err != nil {
		t.Fatal(err)
	}
	return tr, store
}

func key(i int) []byte { return []byte(fmt.Sprintf("key%05d", i)) }

func TestTreeConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.MaxLevels = 1
	if _, err := NewTree(bad, newMemStore(10)); err == nil {
		t.Fatal("MaxLevels=1 accepted")
	}
}

func TestTreePutGetInMemTable(t *testing.T) {
	tr, _ := newTestTree(t)
	if _, err := tr.Put(0, []byte("a"), 123, 45); err != nil {
		t.Fatal(err)
	}
	e, ok, _, err := tr.Get(0, []byte("a"))
	if err != nil || !ok || e.Addr != 123 || e.Size != 45 {
		t.Fatalf("Get = %+v %v %v", e, ok, err)
	}
	if _, ok, _, _ := tr.Get(0, []byte("nope")); ok {
		t.Fatal("phantom key")
	}
}

func TestTreeFlushCreatesL0Table(t *testing.T) {
	tr, store := newTestTree(t)
	for i := 0; i < 16; i++ { // exactly the flush trigger
		if _, err := tr.Put(0, key(i), vlog.Addr(i), 8); err != nil {
			t.Fatal(err)
		}
	}
	if tr.MemLen() != 0 {
		t.Fatalf("MemTable not flushed: %d entries", tr.MemLen())
	}
	if tr.LevelTables()[0] != 1 {
		t.Fatalf("L0 tables = %d", tr.LevelTables()[0])
	}
	if store.writes == 0 {
		t.Fatal("flush wrote no pages")
	}
	// All keys still resolvable from the table.
	for i := 0; i < 16; i++ {
		e, ok, _, err := tr.Get(0, key(i))
		if err != nil || !ok || e.Addr != vlog.Addr(i) {
			t.Fatalf("key %d after flush: %+v %v %v", i, e, ok, err)
		}
	}
}

func TestTreeGetChargesNANDTime(t *testing.T) {
	tr, _ := newTestTree(t)
	for i := 0; i < 16; i++ {
		tr.Put(0, key(i), vlog.Addr(i), 8)
	}
	_, ok, end, err := tr.Get(0, key(3))
	if err != nil || !ok {
		t.Fatal("lookup failed")
	}
	if end == 0 {
		t.Fatal("table lookup charged no NAND read time")
	}
}

func TestTreeCompactionCascades(t *testing.T) {
	tr, _ := newTestTree(t)
	// Write enough unique keys to force flushes and multi-level compaction.
	const n = 2000
	for i := 0; i < n; i++ {
		if _, err := tr.Put(0, key(i), vlog.Addr(i), 8); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if tr.Stats().Compactions.Value() == 0 {
		t.Fatal("no compactions ran")
	}
	levels := tr.LevelTables()
	if levels[0] >= smallTreeConfig().L0CompactionTrigger {
		t.Fatalf("L0 never compacted: %v", levels)
	}
	// Every key must still resolve correctly.
	for i := 0; i < n; i++ {
		e, ok, _, err := tr.Get(0, key(i))
		if err != nil {
			t.Fatal(err)
		}
		if !ok || e.Addr != vlog.Addr(i) {
			t.Fatalf("key %d lost after compaction: %+v %v (levels %v)", i, e, ok, levels)
		}
	}
}

func TestTreeOverwriteNewestWins(t *testing.T) {
	tr, _ := newTestTree(t)
	const n = 500
	for i := 0; i < n; i++ {
		tr.Put(0, key(i%50), vlog.Addr(i), 8)
	}
	// Latest writer for key k is the largest i ≡ k mod 50.
	for k := 0; k < 50; k++ {
		want := vlog.Addr(450 + k)
		e, ok, _, err := tr.Get(0, key(k))
		if err != nil || !ok || e.Addr != want {
			t.Fatalf("key %d = %+v, want addr %d", k, e, want)
		}
	}
}

func TestTreeDeleteTombstones(t *testing.T) {
	tr, _ := newTestTree(t)
	for i := 0; i < 40; i++ {
		tr.Put(0, key(i), vlog.Addr(i), 8)
	}
	for i := 0; i < 40; i += 2 {
		if _, err := tr.Delete(0, key(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Force everything through flush/compaction.
	if _, err := tr.Flush(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		e, ok, _, err := tr.Get(0, key(i))
		if err != nil {
			t.Fatal(err)
		}
		deleted := !ok || e.Tombstone
		if i%2 == 0 && !deleted {
			t.Fatalf("key %d not deleted", i)
		}
		if i%2 == 1 && (deleted) {
			t.Fatalf("key %d wrongly deleted", i)
		}
	}
}

func TestTreeFlushEmptyIsNoOp(t *testing.T) {
	tr, store := newTestTree(t)
	if _, err := tr.Flush(0); err != nil {
		t.Fatal(err)
	}
	if store.writes != 0 {
		t.Fatal("empty flush wrote pages")
	}
}

func TestTreeMetaPagesReclaimedByCompaction(t *testing.T) {
	tr, _ := newTestTree(t)
	// Overwrite the same small key set heavily: dead entries dominate, so
	// the meta footprint must stay bounded well below total writes.
	for i := 0; i < 4000; i++ {
		if _, err := tr.Put(0, key(i%20), vlog.Addr(i), 8); err != nil {
			t.Fatal(err)
		}
	}
	if got := tr.MetaPagesInUse(); got > 200 {
		t.Fatalf("meta pages in use = %d; compaction is not reclaiming", got)
	}
}

func TestIteratorFullScan(t *testing.T) {
	tr, _ := newTestTree(t)
	const n = 300
	for i := 0; i < n; i++ {
		tr.Put(0, key(i), vlog.Addr(i), 8)
	}
	it, err := tr.Seek(0, []byte("key"))
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	var prev []byte
	for it.Valid() {
		e := it.Entry()
		if prev != nil && bytes.Compare(prev, e.Key) >= 0 {
			t.Fatalf("scan out of order: %q then %q", prev, e.Key)
		}
		prev = append(prev[:0], e.Key...)
		count++
		it.Next(0)
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if count != n {
		t.Fatalf("scanned %d keys, want %d", count, n)
	}
}

func TestIteratorSeekMidRange(t *testing.T) {
	tr, _ := newTestTree(t)
	for i := 0; i < 100; i++ {
		tr.Put(0, key(i), vlog.Addr(i), 8)
	}
	it, err := tr.Seek(0, key(42))
	if err != nil {
		t.Fatal(err)
	}
	if !it.Valid() || !bytes.Equal(it.Entry().Key, key(42)) {
		t.Fatalf("Seek(42) at %q", it.Entry().Key)
	}
	it.Next(0)
	if !bytes.Equal(it.Entry().Key, key(43)) {
		t.Fatalf("Next gave %q", it.Entry().Key)
	}
}

func TestIteratorSkipsTombstonesAndDuplicates(t *testing.T) {
	tr, _ := newTestTree(t)
	for i := 0; i < 60; i++ {
		tr.Put(0, key(i), vlog.Addr(i), 8)
	}
	tr.Delete(0, key(5))
	tr.Put(0, key(6), vlog.Addr(999), 8) // overwrite spanning mem + tables
	it, err := tr.Seek(0, key(4))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(it.Entry().Key, key(4)) {
		t.Fatalf("at %q", it.Entry().Key)
	}
	it.Next(0)
	if !bytes.Equal(it.Entry().Key, key(6)) {
		t.Fatalf("tombstoned key not skipped; at %q", it.Entry().Key)
	}
	if it.Entry().Addr != 999 {
		t.Fatalf("stale duplicate won: addr %d", it.Entry().Addr)
	}
}

func TestIteratorSeekPastEnd(t *testing.T) {
	tr, _ := newTestTree(t)
	tr.Put(0, []byte("a"), 1, 1)
	it, err := tr.Seek(0, []byte("zzz"))
	if err != nil {
		t.Fatal(err)
	}
	if it.Valid() {
		t.Fatal("iterator valid past end")
	}
	it.Next(0) // must not panic
}

func TestIteratorEmptyTree(t *testing.T) {
	tr, _ := newTestTree(t)
	it, err := tr.Seek(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if it.Valid() {
		t.Fatal("empty tree yielded an entry")
	}
}

// Property: the tree agrees with a reference map after arbitrary put/delete
// sequences, across flush/compaction boundaries, and scans return exactly
// the live keys in order.
func TestTreeMatchesReferenceProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		store := newMemStore(8192)
		tr, err := NewTree(smallTreeConfig(), store)
		if err != nil {
			return false
		}
		ref := make(map[string]vlog.Addr)
		for i, op := range ops {
			k := key(int(op) % 64)
			if op%7 == 0 {
				if _, err := tr.Delete(0, k); err != nil {
					return false
				}
				delete(ref, string(k))
			} else {
				if _, err := tr.Put(0, k, vlog.Addr(i), 8); err != nil {
					return false
				}
				ref[string(k)] = vlog.Addr(i)
			}
		}
		for k, addr := range ref {
			e, ok, _, err := tr.Get(0, []byte(k))
			if err != nil || !ok || e.Tombstone || e.Addr != addr {
				return false
			}
		}
		// Scan: exactly the live keys, sorted.
		it, err := tr.Seek(0, nil)
		if err != nil {
			return false
		}
		seen := 0
		var prev []byte
		for it.Valid() {
			e := it.Entry()
			if prev != nil && bytes.Compare(prev, e.Key) >= 0 {
				return false
			}
			if want, ok := ref[string(e.Key)]; !ok || e.Addr != want {
				return false
			}
			prev = append(prev[:0], e.Key...)
			seen++
			it.Next(0)
		}
		return seen == len(ref) && it.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSSTableEncodingRoundTrip(t *testing.T) {
	e := Entry{Key: []byte("hello"), Addr: (1 << 39) + 12345, Size: 0xDEADBEEF, Tombstone: true}
	buf := make([]byte, encodedLen(e))
	n := encodeEntry(buf, e)
	if n != len(buf) {
		t.Fatalf("encoded %d bytes, want %d", n, len(buf))
	}
	got, m, err := decodeEntry(buf)
	if err != nil || m != n {
		t.Fatalf("decode: %v, %d", err, m)
	}
	if !bytes.Equal(got.Key, e.Key) || got.Addr != e.Addr || got.Size != e.Size || got.Tombstone != e.Tombstone {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestSSTableDecodeCorruption(t *testing.T) {
	if _, _, err := decodeEntry([]byte{}); err == nil {
		t.Fatal("empty decode accepted")
	}
	// keyLen says 20 (> MaxKeySize).
	if _, _, err := decodeEntry([]byte{20, 0, 0}); err == nil {
		t.Fatal("oversized keyLen accepted")
	}
	// Sentinel terminates a page.
	if _, _, err := decodeEntry([]byte{0, 1, 2}); err != errEndOfPage {
		t.Fatal("zero keyLen not treated as end of page")
	}
}

func TestPageAllocatorReuse(t *testing.T) {
	a := newPageAllocator(3)
	p0, _ := a.alloc()
	p1, _ := a.alloc()
	if p0 == p1 {
		t.Fatal("duplicate allocation")
	}
	a.free(p0)
	p2, _ := a.alloc()
	if p2 != p0 {
		t.Fatalf("free page not reused: got %d", p2)
	}
	a.alloc()
	if _, err := a.alloc(); err == nil {
		t.Fatal("exhausted allocator kept allocating")
	}
	if a.inUse() != 3 {
		t.Fatalf("inUse = %d", a.inUse())
	}
}
