// Package lsm implements the in-device, key-value-separated LSM-tree of the
// paper's KV-SSD (§2.1): a skiplist MemTable holding key → (vLog address,
// size) entries, SSTables serialized onto NAND meta pages, leveled
// compaction that never rewrites values (the point of KV separation), and
// merged iterators backing the SEEK/NEXT interface.
package lsm

import (
	"bytes"
	"fmt"

	"bandslim/internal/vlog"
)

// Entry is one index record: a key and where its value lives in the vLog.
// Fine-grained value addressing (§3.4) makes Addr a byte offset.
type Entry struct {
	Key       []byte
	Addr      vlog.Addr
	Size      uint32
	Tombstone bool
	seq       uint64 // recency; larger wins during merges
}

const (
	maxHeight = 12
	// MaxKeySize mirrors the NVMe command's inline key capacity.
	MaxKeySize = 16
)

type skipNode struct {
	entry Entry
	next  [maxHeight]*skipNode
}

// MemTable is a skiplist-ordered write buffer. The device's DRAM is battery
// backed, so the MemTable is durable the moment a value is inserted (§2.2).
type MemTable struct {
	head   *skipNode
	height int
	count  int
	bytes  int // approximate index bytes held
	rng    *simRNG
	seq    uint64
}

// simRNG is a tiny xorshift so the skiplist is deterministic per table.
type simRNG struct{ s uint64 }

func (r *simRNG) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

// NewMemTable returns an empty table.
func NewMemTable() *MemTable {
	return &MemTable{head: &skipNode{}, height: 1, rng: &simRNG{s: 0x9E3779B97F4A7C15}}
}

// Len reports the number of entries (including tombstones).
func (m *MemTable) Len() int { return m.count }

// ApproxBytes reports the approximate index memory held.
func (m *MemTable) ApproxBytes() int { return m.bytes }

func (m *MemTable) randomHeight() int {
	h := 1
	for h < maxHeight && m.rng.next()&3 == 0 {
		h++
	}
	return h
}

// Put inserts or updates a key. The key is copied; callers may reuse the
// slice. Oversized keys are an error.
func (m *MemTable) Put(key []byte, addr vlog.Addr, size uint32, tombstone bool) error {
	if len(key) == 0 || len(key) > MaxKeySize {
		return fmt.Errorf("lsm: key length %d out of range [1,%d]", len(key), MaxKeySize)
	}
	m.seq++
	var prev [maxHeight]*skipNode
	n := m.head
	for lvl := m.height - 1; lvl >= 0; lvl-- {
		for n.next[lvl] != nil && bytes.Compare(n.next[lvl].entry.Key, key) < 0 {
			n = n.next[lvl]
		}
		prev[lvl] = n
	}
	if c := n.next[0]; c != nil && bytes.Equal(c.entry.Key, key) {
		c.entry.Addr = addr
		c.entry.Size = size
		c.entry.Tombstone = tombstone
		c.entry.seq = m.seq
		return nil
	}
	h := m.randomHeight()
	if h > m.height {
		for lvl := m.height; lvl < h; lvl++ {
			prev[lvl] = m.head
		}
		m.height = h
	}
	node := &skipNode{entry: Entry{
		Key:       append([]byte(nil), key...),
		Addr:      addr,
		Size:      size,
		Tombstone: tombstone,
		seq:       m.seq,
	}}
	for lvl := 0; lvl < h; lvl++ {
		node.next[lvl] = prev[lvl].next[lvl]
		prev[lvl].next[lvl] = node
	}
	m.count++
	m.bytes += len(key) + entryOverhead
	return nil
}

// entryOverhead approximates the per-entry index cost (addr+size+flags+links).
const entryOverhead = 16

// Get looks a key up. The second result reports whether the key is present
// (a tombstone is present — the entry's Tombstone field distinguishes it).
func (m *MemTable) Get(key []byte) (Entry, bool) {
	n := m.head
	for lvl := m.height - 1; lvl >= 0; lvl-- {
		for n.next[lvl] != nil && bytes.Compare(n.next[lvl].entry.Key, key) < 0 {
			n = n.next[lvl]
		}
	}
	if c := n.next[0]; c != nil && bytes.Equal(c.entry.Key, key) {
		return c.entry, true
	}
	return Entry{}, false
}

// Iterator returns an in-order iterator positioned before the first entry.
func (m *MemTable) Iterator() *MemIterator {
	return &MemIterator{node: m.head}
}

// MemIterator walks a MemTable in key order.
type MemIterator struct {
	node *skipNode
}

// Next advances and reports whether an entry is available via Entry.
func (it *MemIterator) Next() bool {
	if it.node == nil {
		return false
	}
	it.node = it.node.next[0]
	return it.node != nil
}

// Entry returns the current entry. Valid only after Next reported true.
func (it *MemIterator) Entry() Entry { return it.node.entry }

// Seek positions the iterator so the next call to Next returns the first
// entry with key >= target.
func (it *MemIterator) Seek(m *MemTable, target []byte) {
	n := m.head
	for lvl := m.height - 1; lvl >= 0; lvl-- {
		for n.next[lvl] != nil && bytes.Compare(n.next[lvl].entry.Key, target) < 0 {
			n = n.next[lvl]
		}
	}
	it.node = n
}
