package lsm

import (
	"bytes"
	"fmt"
	"sort"

	"bandslim/internal/metrics"
	"bandslim/internal/sim"
	"bandslim/internal/vlog"
)

// Config tunes the tree.
type Config struct {
	// MemTableEntries triggers a flush when the MemTable reaches this many
	// entries.
	MemTableEntries int
	// L0CompactionTrigger compacts L0 into L1 when L0 accumulates this many
	// tables.
	L0CompactionTrigger int
	// LevelTableBase caps L1 at this many tables; each deeper level holds
	// 10x more.
	LevelTableBase int
	// MaxLevels bounds the tree depth (L0..L{MaxLevels-1}).
	MaxLevels int
	// TablePages caps the size of one output SSTable during compaction.
	TablePages int
}

// DefaultConfig returns the tuning used by the benchmarks.
func DefaultConfig() Config {
	return Config{
		MemTableEntries:     4096,
		L0CompactionTrigger: 4,
		LevelTableBase:      8,
		MaxLevels:           4,
		TablePages:          8,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.MemTableEntries < 1 || c.L0CompactionTrigger < 2 ||
		c.LevelTableBase < 1 || c.MaxLevels < 2 || c.TablePages < 1 {
		return fmt.Errorf("lsm: invalid config %+v", c)
	}
	return nil
}

// Stats tallies tree activity.
type Stats struct {
	Puts            metrics.Counter
	Gets            metrics.Counter
	Flushes         metrics.Counter
	Compactions     metrics.Counter
	TablesWritten   metrics.Counter
	EntriesMerged   metrics.Counter
	TombstonesDrop  metrics.Counter
	PageReadsServed metrics.Counter // meta pages read for lookups/compaction
}

// Tree is the LSM index. Values never live here — only (addr, size) pairs
// pointing into the vLog, so compaction rewrites the index, not the data.
type Tree struct {
	cfg    Config
	store  PageStore
	alloc  *pageAllocator
	mem    *MemTable
	levels [][]*SSTable // levels[0]: newest first; deeper: sorted by smallest
	nextID uint64
	stats  Stats
	// searchEntries/searchArena are the point-lookup decode scratch: Get
	// returns as soon as a table hits, so entries never outlive one
	// searchTable call. The returned Entry's key is a view valid until the
	// next lookup.
	searchEntries []Entry
	searchArena   []byte

	// Crash-atomicity state. The catalog (levels + allocator + nextID) is
	// snapshotted at the end of every successful Flush; Restore rolls back to
	// that snapshot after a power cut. Pages vacated by compaction are only
	// trimmed at commit (pendingFree), so the committed catalog's tables are
	// always intact on flash.
	pendingFree []int
	committed   catalog
	onDurable   func()
}

// catalog is the durable view of the tree: everything needed to rebuild it
// at mount, as firmware would persist in a superblock.
type catalog struct {
	levels [][]*SSTable // SSTables are immutable; sharing pointers is safe
	alloc  allocState
	nextID uint64
}

// snapshotCatalog deep-copies the level structure (table pointers shared).
func (tr *Tree) snapshotCatalog() catalog {
	levels := make([][]*SSTable, len(tr.levels))
	for i, lvl := range tr.levels {
		levels[i] = append([]*SSTable(nil), lvl...)
	}
	return catalog{levels: levels, alloc: tr.alloc.snapshot(), nextID: tr.nextID}
}

// commit applies the deferred page frees and snapshots the catalog. Called
// at the end of every successful Flush — the tree's durability point.
func (tr *Tree) commit() {
	for _, pg := range tr.pendingFree {
		tr.alloc.free(pg)
		// Trim failures only occur for out-of-range pages, which would be a
		// bug caught by the allocator; ignore defensively.
		_ = tr.store.TrimPage(pg)
	}
	tr.pendingFree = tr.pendingFree[:0]
	tr.committed = tr.snapshotCatalog()
	if tr.onDurable != nil {
		tr.onDurable()
	}
}

// SetOnDurable registers a hook invoked every time the tree reaches a new
// durable point (end of a successful Flush). The device uses it to clear its
// battery-backed index journal.
func (tr *Tree) SetOnDurable(fn func()) { tr.onDurable = fn }

// Restore rolls the tree back to its last committed catalog: the MemTable
// empties, partially flushed tables vanish, and deferred frees are dropped
// (their pages were never trimmed, so the committed tables remain intact).
// The device mount calls this before replaying its journal.
func (tr *Tree) Restore() {
	tr.levels = make([][]*SSTable, len(tr.committed.levels))
	for i, lvl := range tr.committed.levels {
		tr.levels[i] = append([]*SSTable(nil), lvl...)
	}
	tr.alloc.restore(tr.committed.alloc)
	tr.nextID = tr.committed.nextID
	tr.mem = NewMemTable()
	tr.pendingFree = tr.pendingFree[:0]
}

// NewTree builds an empty tree over the store.
func NewTree(cfg Config, store PageStore) (*Tree, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tr := &Tree{
		cfg:    cfg,
		store:  store,
		alloc:  newPageAllocator(store.Pages()),
		mem:    NewMemTable(),
		levels: make([][]*SSTable, cfg.MaxLevels),
	}
	tr.committed = tr.snapshotCatalog()
	return tr, nil
}

// Stats exposes the tree's tallies.
func (tr *Tree) Stats() *Stats { return &tr.stats }

// MemLen reports the MemTable's entry count (introspection for tests).
func (tr *Tree) MemLen() int { return tr.mem.Len() }

// LevelTables reports the table count of each level.
func (tr *Tree) LevelTables() []int {
	out := make([]int, len(tr.levels))
	for i, lvl := range tr.levels {
		out[i] = len(lvl)
	}
	return out
}

// MetaPagesInUse reports how many meta-region pages the tree occupies.
func (tr *Tree) MetaPagesInUse() int { return tr.alloc.inUse() }

// Put records key → (addr, size). It may trigger a MemTable flush and
// cascading compactions, whose NAND time is charged to the returned
// completion time (firmware performs them synchronously).
func (tr *Tree) Put(t sim.Time, key []byte, addr vlog.Addr, size uint32) (sim.Time, error) {
	return tr.insert(t, key, addr, size, false)
}

// Delete records a tombstone for key.
func (tr *Tree) Delete(t sim.Time, key []byte) (sim.Time, error) {
	return tr.insert(t, key, 0, 0, true)
}

func (tr *Tree) insert(t sim.Time, key []byte, addr vlog.Addr, size uint32, tomb bool) (sim.Time, error) {
	if err := tr.mem.Put(key, addr, size, tomb); err != nil {
		return t, err
	}
	tr.stats.Puts.Inc()
	if tr.mem.Len() < tr.cfg.MemTableEntries {
		return t, nil
	}
	return tr.Flush(t)
}

// Flush persists the MemTable as a new L0 table and runs any compactions it
// triggers. Flushing an empty MemTable is a no-op.
func (tr *Tree) Flush(t sim.Time) (sim.Time, error) {
	if tr.mem.Len() == 0 {
		return t, nil
	}
	tr.nextID++
	b := newTableBuilder(tr.store, tr.alloc, tr.nextID)
	it := tr.mem.Iterator()
	for it.Next() {
		if err := b.add(t, it.Entry()); err != nil {
			return t, err
		}
	}
	table, end, err := b.finish(t)
	if err != nil {
		return t, err
	}
	if table != nil {
		tr.levels[0] = append([]*SSTable{table}, tr.levels[0]...)
		tr.stats.TablesWritten.Inc()
	}
	tr.mem = NewMemTable()
	tr.stats.Flushes.Inc()
	cEnd, err := tr.maybeCompact(t)
	if err != nil {
		return end, err
	}
	if cEnd > end {
		end = cEnd
	}
	tr.commit()
	return end, nil
}

// Get resolves a key to its vLog location, searching MemTable, then L0
// newest-first, then each deeper level. The boolean reports presence; a
// present tombstone means "deleted".
func (tr *Tree) Get(t sim.Time, key []byte) (Entry, bool, sim.Time, error) {
	tr.stats.Gets.Inc()
	if e, ok := tr.mem.Get(key); ok {
		return e, true, t, nil
	}
	end := t
	for _, table := range tr.levels[0] {
		if !table.overlaps(key, key) {
			continue
		}
		e, ok, rEnd, err := tr.searchTable(t, table, key)
		if err != nil {
			return Entry{}, false, t, err
		}
		if rEnd > end {
			end = rEnd
		}
		if ok {
			return e, true, end, nil
		}
	}
	for lvl := 1; lvl < len(tr.levels); lvl++ {
		table := tr.findInLevel(lvl, key)
		if table == nil {
			continue
		}
		e, ok, rEnd, err := tr.searchTable(t, table, key)
		if err != nil {
			return Entry{}, false, t, err
		}
		if rEnd > end {
			end = rEnd
		}
		if ok {
			return e, true, end, nil
		}
	}
	return Entry{}, false, end, nil
}

// findInLevel binary-searches a sorted (non-overlapping) level for the table
// covering key.
func (tr *Tree) findInLevel(lvl int, key []byte) *SSTable {
	tables := tr.levels[lvl]
	i := sort.Search(len(tables), func(i int) bool {
		return bytes.Compare(tables[i].largest, key) >= 0
	})
	if i < len(tables) && bytes.Compare(tables[i].smallest, key) <= 0 {
		return tables[i]
	}
	return nil
}

// searchTable reads the one candidate page and scans it for the key.
func (tr *Tree) searchTable(t sim.Time, table *SSTable, key []byte) (Entry, bool, sim.Time, error) {
	pi := table.pageForKey(key)
	if pi < 0 {
		return Entry{}, false, t, nil
	}
	data, end, err := tr.store.ReadPage(t, table.pages[pi])
	if err != nil {
		return Entry{}, false, t, err
	}
	tr.stats.PageReadsServed.Inc()
	entries, arena, err := decodePageInto(tr.searchEntries, tr.searchArena, data)
	tr.searchEntries, tr.searchArena = entries, arena
	if err != nil {
		return Entry{}, false, t, err
	}
	i := sort.Search(len(entries), func(i int) bool {
		return bytes.Compare(entries[i].Key, key) >= 0
	})
	if i < len(entries) && bytes.Equal(entries[i].Key, key) {
		return entries[i], true, end, nil
	}
	return Entry{}, false, end, nil
}

func (tr *Tree) maxTables(lvl int) int {
	n := tr.cfg.LevelTableBase
	for i := 1; i < lvl; i++ {
		n *= 10
	}
	return n
}

// maybeCompact runs L0→L1 compaction and cascades level overflows downward.
func (tr *Tree) maybeCompact(t sim.Time) (sim.Time, error) {
	end := t
	if len(tr.levels[0]) >= tr.cfg.L0CompactionTrigger {
		e, err := tr.compactL0(t)
		if err != nil {
			return end, err
		}
		if e > end {
			end = e
		}
	}
	for lvl := 1; lvl < len(tr.levels)-1; lvl++ {
		for len(tr.levels[lvl]) > tr.maxTables(lvl) {
			e, err := tr.compactLevel(t, lvl)
			if err != nil {
				return end, err
			}
			if e > end {
				end = e
			}
		}
	}
	return end, nil
}

// compactL0 merges every L0 table with the overlapping span of L1.
func (tr *Tree) compactL0(t sim.Time) (sim.Time, error) {
	inputs := append([]*SSTable(nil), tr.levels[0]...)
	lo, hi := keyRange(inputs)
	over, rest := splitOverlap(tr.levels[1], lo, hi)
	inputs = append(inputs, over...)
	out, end, err := tr.merge(t, inputs, 1 == len(tr.levels)-1)
	if err != nil {
		return t, err
	}
	tr.levels[0] = nil
	tr.levels[1] = insertSorted(rest, out)
	tr.freeTables(inputs)
	tr.stats.Compactions.Inc()
	return end, nil
}

// compactLevel pushes one table from lvl into lvl+1.
func (tr *Tree) compactLevel(t sim.Time, lvl int) (sim.Time, error) {
	victim := tr.levels[lvl][0]
	tr.levels[lvl] = tr.levels[lvl][1:]
	over, rest := splitOverlap(tr.levels[lvl+1], victim.smallest, victim.largest)
	inputs := append([]*SSTable{victim}, over...)
	out, end, err := tr.merge(t, inputs, lvl+1 == len(tr.levels)-1)
	if err != nil {
		return t, err
	}
	tr.levels[lvl+1] = insertSorted(rest, out)
	tr.freeTables(inputs)
	tr.stats.Compactions.Inc()
	return end, nil
}

// merge performs a k-way merge of the inputs (ordered newest-first for
// duplicate resolution) into size-capped output tables. Tombstones are
// dropped when merging into the bottom level.
func (tr *Tree) merge(t sim.Time, inputs []*SSTable, bottom bool) ([]*SSTable, sim.Time, error) {
	end := t
	// Load and decode every input run (reads charged to the request that
	// triggered the compaction, as synchronous firmware does).
	runs := make([][]Entry, len(inputs))
	for i, table := range inputs {
		var entries []Entry
		for _, pg := range table.pages {
			data, e, err := tr.store.ReadPage(t, pg)
			if err != nil {
				return nil, end, err
			}
			tr.stats.PageReadsServed.Inc()
			if e > end {
				end = e
			}
			pe, err := decodePage(data)
			if err != nil {
				return nil, end, err
			}
			entries = append(entries, pe...)
		}
		runs[i] = entries
	}
	var out []*SSTable
	var builder *tableBuilder
	pos := make([]int, len(runs))
	for {
		// Pick the smallest key; ties resolved by input order (newest
		// input first in `inputs`).
		best := -1
		for i := range runs {
			if pos[i] >= len(runs[i]) {
				continue
			}
			if best < 0 || bytes.Compare(runs[i][pos[i]].Key, runs[best][pos[best]].Key) < 0 {
				best = i
			}
		}
		if best < 0 {
			break
		}
		e := runs[best][pos[best]]
		// Skip older duplicates in every run.
		for i := range runs {
			for pos[i] < len(runs[i]) && bytes.Equal(runs[i][pos[i]].Key, e.Key) {
				pos[i]++
			}
		}
		tr.stats.EntriesMerged.Inc()
		if e.Tombstone && bottom {
			tr.stats.TombstonesDrop.Inc()
			continue
		}
		if builder == nil {
			tr.nextID++
			builder = newTableBuilder(tr.store, tr.alloc, tr.nextID)
		}
		if err := builder.add(t, e); err != nil {
			return nil, end, err
		}
		if len(builder.table.pages) >= tr.cfg.TablePages {
			table, bEnd, err := builder.finish(t)
			if err != nil {
				return nil, end, err
			}
			if bEnd > end {
				end = bEnd
			}
			if table != nil {
				out = append(out, table)
				tr.stats.TablesWritten.Inc()
			}
			builder = nil
		}
	}
	if builder != nil {
		table, bEnd, err := builder.finish(t)
		if err != nil {
			return nil, end, err
		}
		if bEnd > end {
			end = bEnd
		}
		if table != nil {
			out = append(out, table)
			tr.stats.TablesWritten.Inc()
		}
	}
	return out, end, nil
}

// freeTables schedules every input table's pages for release. The frees are
// deferred to the next catalog commit: until then the pages stay allocated
// and untrimmed, so a crash between compaction and commit can roll back to
// the previous catalog with all its tables readable.
func (tr *Tree) freeTables(tables []*SSTable) {
	for _, table := range tables {
		tr.pendingFree = append(tr.pendingFree, table.pages...)
	}
}

// keyRange reports the smallest and largest keys across tables.
func keyRange(tables []*SSTable) (lo, hi []byte) {
	for _, t := range tables {
		if lo == nil || bytes.Compare(t.smallest, lo) < 0 {
			lo = t.smallest
		}
		if hi == nil || bytes.Compare(t.largest, hi) > 0 {
			hi = t.largest
		}
	}
	return lo, hi
}

// splitOverlap partitions a sorted level into tables overlapping [lo,hi] and
// the rest.
func splitOverlap(tables []*SSTable, lo, hi []byte) (over, rest []*SSTable) {
	for _, t := range tables {
		if lo != nil && t.overlaps(lo, hi) {
			over = append(over, t)
		} else {
			rest = append(rest, t)
		}
	}
	return over, rest
}

// insertSorted merges new tables into a level, keeping it sorted by smallest
// key. Levels ≥1 are non-overlapping by construction.
func insertSorted(level, add []*SSTable) []*SSTable {
	out := append(append([]*SSTable(nil), level...), add...)
	sort.Slice(out, func(i, j int) bool {
		return bytes.Compare(out[i].smallest, out[j].smallest) < 0
	})
	return out
}
