package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"bandslim"
	"bandslim/internal/resp"
)

// testDB opens a small sharded stack for serving tests.
func testDB(t *testing.T, shards int) *bandslim.ShardedDB {
	t.Helper()
	db, err := bandslim.OpenSharded(bandslim.ShardedConfig{
		Shards:   shards,
		PerShard: bandslim.DefaultConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// startServer builds a server over db, starts Serve on a loopback listener,
// and registers an idempotent stop func that shuts everything down.
func startServer(t *testing.T, db *bandslim.ShardedDB, window int) (*Server, string, func()) {
	t.Helper()
	s, err := New(Config{DB: db, Window: window, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := s.Shutdown(ctx); err != nil {
				t.Errorf("shutdown: %v", err)
			}
			if err := <-serveErr; err != nil {
				t.Errorf("serve: %v", err)
			}
			db.Close()
		})
	}
	t.Cleanup(stop)
	return s, ln.Addr().String(), stop
}

// client is a minimal RESP client over one TCP connection.
type client struct {
	t  *testing.T
	nc net.Conn
	r  *resp.Reader
	w  *resp.Writer
}

func dial(t *testing.T, addr string) *client {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return &client{t: t, nc: nc, r: resp.NewReader(nc), w: resp.NewWriter(nc)}
}

// send queues one command without flushing (for pipelining).
func (c *client) send(args ...string) {
	c.t.Helper()
	c.w.Array(len(args))
	for _, a := range args {
		c.w.BulkString(a)
	}
}

// flush pushes queued commands onto the wire.
func (c *client) flush() {
	c.t.Helper()
	if err := c.w.Flush(); err != nil {
		c.t.Fatalf("flush: %v", err)
	}
}

// reply reads one reply.
func (c *client) reply() resp.Reply {
	c.t.Helper()
	c.nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	rep, err := c.r.ReadReply()
	if err != nil {
		c.t.Fatalf("read reply: %v", err)
	}
	return rep
}

// do round-trips one command.
func (c *client) do(args ...string) resp.Reply {
	c.t.Helper()
	c.send(args...)
	c.flush()
	return c.reply()
}

func (c *client) expectSimple(want string, args ...string) {
	c.t.Helper()
	rep := c.do(args...)
	if rep.Kind != resp.KindSimple || string(rep.Str) != want {
		c.t.Fatalf("%v: got %+v (%q), want +%s", args, rep, rep.Str, want)
	}
}

func (c *client) expectBulk(want string, args ...string) {
	c.t.Helper()
	rep := c.do(args...)
	if rep.Kind != resp.KindBulk || rep.Null || string(rep.Str) != want {
		c.t.Fatalf("%v: got %+v (%q), want bulk %q", args, rep, rep.Str, want)
	}
}

func TestServeBasic(t *testing.T) {
	db := testDB(t, 2)
	s, addr, _ := startServer(t, db, 0)
	c := dial(t, addr)

	c.expectSimple("PONG", "PING")
	c.expectBulk("hello", "PING", "hello")
	c.expectBulk("echoed", "ECHO", "echoed")
	c.expectSimple("OK", "SELECT", "0")

	c.expectSimple("OK", "SET", "alpha", "one")
	c.expectBulk("one", "GET", "alpha")

	if rep := c.do("GET", "missing"); rep.Kind != resp.KindBulk || !rep.Null {
		t.Fatalf("GET missing: %+v, want null bulk", rep)
	}

	if rep := c.do("DEL", "alpha", "missing"); rep.Kind != resp.KindInteger || rep.Int != 1 {
		t.Fatalf("DEL: %+v, want :1", rep)
	}
	if rep := c.do("GET", "alpha"); !rep.Null {
		t.Fatalf("GET after DEL: %+v, want null", rep)
	}

	c.expectSimple("OK", "MSET", "k1", "v1", "k2", "v2", "k3", "v3")
	rep := c.do("MGET", "k1", "nope", "k3")
	if rep.Kind != resp.KindArray || rep.N != 3 {
		t.Fatalf("MGET header: %+v", rep)
	}
	for _, want := range []struct {
		null bool
		str  string
	}{{false, "v1"}, {true, ""}, {false, "v3"}} {
		el := c.reply()
		if el.Null != want.null || string(el.Str) != want.str {
			t.Fatalf("MGET element: %+v, want null=%v %q", el, want.null, want.str)
		}
	}

	// COMMAND (the redis-cli handshake probe) gets an empty array.
	if rep := c.do("COMMAND", "DOCS"); rep.Kind != resp.KindArray || rep.N != 0 {
		t.Fatalf("COMMAND: %+v, want *0", rep)
	}

	// INFO carries both clocks and the serving counters.
	rep = c.do("INFO")
	if rep.Kind != resp.KindBulk {
		t.Fatalf("INFO: %+v", rep)
	}
	info := string(rep.Str)
	for _, want := range []string{"# Server", "connections_active:1", "sim_time_ns:", "puts:", "uptime_wall_seconds:"} {
		if !strings.Contains(info, want) {
			t.Fatalf("INFO missing %q in:\n%s", want, info)
		}
	}

	// Errors: unknown command and wrong arity, connection stays usable.
	if rep := c.do("FROBNICATE"); rep.Kind != resp.KindError || !strings.Contains(string(rep.Str), "unknown command") {
		t.Fatalf("unknown command: %+v", rep)
	}
	if rep := c.do("SET", "just-a-key"); rep.Kind != resp.KindError || !strings.Contains(string(rep.Str), "wrong number of arguments") {
		t.Fatalf("arity error: %+v", rep)
	}
	c.expectSimple("PONG", "PING")

	st := s.Stats()
	if st.Accepted != 1 || st.Active != 1 {
		t.Fatalf("conn counters: %+v", st)
	}
	if st.Set != 2 || st.Get != 3 || st.Del != 1 || st.MSet != 1 || st.MGet != 1 || st.Info != 1 {
		t.Fatalf("command counters: %+v", st)
	}
	if st.Errors != 2 {
		t.Fatalf("error counter: %+v", st)
	}
	if st.BytesIn == 0 || st.BytesOut == 0 {
		t.Fatalf("byte counters not moving: %+v", st)
	}
}

func TestServeInlineCommands(t *testing.T) {
	db := testDB(t, 1)
	_, addr, _ := startServer(t, db, 0)
	c := dial(t, addr)

	// Raw inline protocol, as telnet or nc would send it.
	if _, err := c.nc.Write([]byte("PING\r\nSET ik iv\r\nGET ik\r\n")); err != nil {
		t.Fatal(err)
	}
	if rep := c.reply(); rep.Kind != resp.KindSimple || string(rep.Str) != "PONG" {
		t.Fatalf("inline PING: %+v", rep)
	}
	if rep := c.reply(); rep.Kind != resp.KindSimple || string(rep.Str) != "OK" {
		t.Fatalf("inline SET: %+v", rep)
	}
	if rep := c.reply(); rep.Kind != resp.KindBulk || string(rep.Str) != "iv" {
		t.Fatalf("inline GET: %+v", rep)
	}
}

func TestServePipelining(t *testing.T) {
	db := testDB(t, 4)
	s, addr, _ := startServer(t, db, 8) // window smaller than the pipeline
	c := dial(t, addr)

	const n = 200
	for i := 0; i < n; i++ {
		c.send("SET", fmt.Sprintf("pk%03d", i), fmt.Sprintf("pv%03d", i))
	}
	c.flush()
	for i := 0; i < n; i++ {
		if rep := c.reply(); rep.Kind != resp.KindSimple || string(rep.Str) != "OK" {
			t.Fatalf("SET %d: %+v", i, rep)
		}
	}
	for i := 0; i < n; i++ {
		c.send("GET", fmt.Sprintf("pk%03d", i))
	}
	c.flush()
	for i := 0; i < n; i++ {
		rep := c.reply()
		if rep.Kind != resp.KindBulk || string(rep.Str) != fmt.Sprintf("pv%03d", i) {
			t.Fatalf("GET %d: %+v (%q)", i, rep, rep.Str)
		}
	}

	// A pipeline 25x deeper than the window must have stalled the reader at
	// least once — that is the backpressure path working.
	if st := s.Stats(); st.Stalls == 0 {
		t.Error("no backpressure stalls recorded for a deep pipeline over a small window")
	}
	// Coalescing must have handed runs to the batch path: the DB saw the
	// puts, and correctness above proves ordering survived.
	if got := db.Stats().Host.Puts; got < n {
		t.Errorf("db saw %d puts, want >= %d", got, n)
	}
}

func TestServeScan(t *testing.T) {
	db := testDB(t, 2)
	_, addr, _ := startServer(t, db, 0)
	c := dial(t, addr)

	want := make([]string, 0, 25)
	for i := 0; i < 25; i++ {
		k := fmt.Sprintf("scan%02d", i)
		c.expectSimple("OK", "SET", k, "x")
		want = append(want, k)
	}

	var got []string
	cursor := "0"
	for rounds := 0; ; rounds++ {
		if rounds > 10 {
			t.Fatal("SCAN did not terminate")
		}
		rep := c.do("SCAN", cursor, "COUNT", "10")
		if rep.Kind != resp.KindArray || rep.N != 2 {
			t.Fatalf("SCAN header: %+v", rep)
		}
		cur := c.reply()
		keys := c.reply()
		if keys.Kind != resp.KindArray {
			t.Fatalf("SCAN keys: %+v", keys)
		}
		for i := 0; i < keys.N; i++ {
			got = append(got, string(c.reply().Str))
		}
		cursor = string(cur.Str)
		if cursor == "0" {
			break
		}
	}
	if len(got) != len(want) {
		t.Fatalf("SCAN returned %d keys, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SCAN key %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestServeProtocolErrorCloses(t *testing.T) {
	db := testDB(t, 1)
	_, addr, _ := startServer(t, db, 0)
	c := dial(t, addr)

	c.expectSimple("PONG", "PING")
	if _, err := c.nc.Write([]byte("*1\r\n:3\r\n")); err != nil {
		t.Fatal(err)
	}
	rep := c.reply()
	if rep.Kind != resp.KindError || !strings.Contains(string(rep.Str), "Protocol error") {
		t.Fatalf("protocol error reply: %+v (%q)", rep, rep.Str)
	}
	// The server closes the connection after a protocol error, like redis.
	c.nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.r.ReadReply(); err == nil {
		t.Fatal("connection still open after protocol error")
	}
}

func TestServeConcurrentClients(t *testing.T) {
	db := testDB(t, 4)
	s, addr, stop := startServer(t, db, 16)

	const clients, ops = 8, 60
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer nc.Close()
			r, w := resp.NewReader(nc), resp.NewWriter(nc)
			rt := func(args ...string) (resp.Reply, error) {
				w.Array(len(args))
				for _, a := range args {
					w.BulkString(a)
				}
				if err := w.Flush(); err != nil {
					return resp.Reply{}, err
				}
				nc.SetReadDeadline(time.Now().Add(10 * time.Second))
				return r.ReadReply()
			}
			for i := 0; i < ops; i++ {
				key := fmt.Sprintf("c%dk%02d", g, i%10)
				val := fmt.Sprintf("c%dv%02d", g, i)
				if rep, err := rt("SET", key, val); err != nil || rep.Kind != resp.KindSimple {
					errs <- fmt.Errorf("client %d SET: %+v %v", g, rep, err)
					return
				}
				if rep, err := rt("GET", key); err != nil || rep.Kind != resp.KindBulk || string(rep.Str) != val {
					errs <- fmt.Errorf("client %d GET: %+v %v", g, rep, err)
					return
				}
			}
			errs <- nil
		}(g)
	}
	wg.Wait()
	for g := 0; g < clients; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Accepted != clients || st.Set != clients*ops || st.Get != clients*ops {
		t.Fatalf("counters after concurrent run: %+v", st)
	}
	stop()
}

// TestShutdownDrainsAndDoesNotLeak proves the drain path: in-flight work
// completes, connections close, every goroutine exits, and the DB is still
// open for its owner afterwards.
func TestShutdownDrainsAndDoesNotLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	db := testDB(t, 2)
	s, addr, _ := startServer(t, db, 4)
	c := dial(t, addr)
	for i := 0; i < 50; i++ {
		c.send("SET", fmt.Sprintf("dk%02d", i), "dv")
	}
	c.flush()
	for i := 0; i < 50; i++ {
		if rep := c.reply(); rep.Kind != resp.KindSimple {
			t.Fatalf("SET %d: %+v", i, rep)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The client connection is closed out from under us.
	c.nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.r.ReadReply(); err == nil {
		t.Fatal("connection survived shutdown")
	}
	// New connections are refused.
	if nc, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		nc.Close()
		t.Fatal("listener still accepting after shutdown")
	}
	// The server does not own the DB: it must still be usable...
	if err := db.Put([]byte("after"), []byte("shutdown")); err != nil {
		t.Fatalf("db unusable after server shutdown: %v", err)
	}
	// ...until its owner closes it.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Every server goroutine must be gone. Allow the runtime a moment to
	// retire exiting goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestLateRequestsGetCleanError: a request racing a closed DB maps to a
// stable RESP error instead of leaking internals or wedging the connection.
func TestLateRequestsGetCleanError(t *testing.T) {
	db := testDB(t, 1)
	_, addr, _ := startServer(t, db, 0)
	c := dial(t, addr)
	c.expectSimple("OK", "SET", "k", "v")

	// Close the DB under the running server: the drain-order contract is
	// server first, DB second, so this is the worst-case race.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	rep := c.do("SET", "late", "write")
	if rep.Kind != resp.KindError || string(rep.Str) != "ERR server shutting down" {
		t.Fatalf("late write: %+v (%q), want clean shutdown error", rep, rep.Str)
	}
	rep = c.do("GET", "k")
	if rep.Kind != resp.KindError || string(rep.Str) != "ERR server shutting down" {
		t.Fatalf("late read: %+v (%q)", rep, rep.Str)
	}
	// The connection itself stays up for PING.
	c.expectSimple("PONG", "PING")
}

// TestShutdownCommand drives the whole stop path over the wire, then proves
// the watcher-driven drain leaves the server externally stoppable: a later
// Shutdown call must return instead of deadlocking on the watcher's own
// WaitGroup slot, and no server goroutine may outlive it.
func TestShutdownCommand(t *testing.T) {
	before := runtime.NumGoroutine()

	db := testDB(t, 1)
	s, err := New(Config{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()

	c := dial(t, ln.Addr().String())
	c.expectSimple("OK", "SET", "k", "v")
	c.expectSimple("OK", "SHUTDOWN")

	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("serve returned %v after SHUTDOWN", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not return after SHUTDOWN command")
	}
	if st := s.Stats(); st.Shutdown != 1 {
		t.Fatalf("shutdown counter: %+v", st)
	}

	// Regression: SIGTERM handling (or any embedder's deferred stop) calls
	// Shutdown after the wire-initiated drain already ran. It must observe
	// the finished drain and return, honoring its context.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- s.Shutdown(ctx) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("external Shutdown after wire SHUTDOWN: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("external Shutdown after wire SHUTDOWN never returned")
	}

	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// The SHUTDOWN watcher (and every other server goroutine) must be gone.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak after wire SHUTDOWN: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestWriteMetrics(t *testing.T) {
	db := testDB(t, 2)
	s, addr, _ := startServer(t, db, 0)
	c := dial(t, addr)
	c.expectSimple("OK", "SET", "mk", "mv")
	c.expectBulk("mv", "GET", "mk")

	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"bandslim_host_puts",                     // simulation families
		"bandslim_server_conns_accepted_total 1", // server scalars
		"bandslim_server_cmd_set_total 1",
		"bandslim_server_cmd_latency_ns", // wall-clock digests
		`op="get"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, out)
		}
	}
}

// TestServeBurstAllocsSteadyState guards the acceptance criterion: the
// steady-state service path (argument capture, coalesced execution, reply
// encoding, latency observation) adds zero allocations per op beyond the DB
// path it sits on. It drives the same code the writer goroutine runs, minus
// the channel hops (which do not allocate).
func TestServeBurstAllocsSteadyState(t *testing.T) {
	newBurst := func(parts ...[][]byte) []*cmd {
		burst := make([]*cmd, len(parts))
		for i, args := range parts {
			burst[i] = &cmd{}
			burst[i].capture(args)
		}
		return burst
	}
	args := func(ss ...string) [][]byte {
		out := make([][]byte, len(ss))
		for i, s := range ss {
			out[i] = []byte(s)
		}
		return out
	}
	run := func(t *testing.T, db *bandslim.ShardedDB, burst []*cmd, templates [][][]byte) {
		t.Helper()
		s, err := New(Config{DB: db})
		if err != nil {
			t.Fatal(err)
		}
		c := &conn{s: s, db: db, w: resp.NewWriter(io.Discard)}
		step := func() {
			// The reader's work: re-capture arguments into slot lanes.
			for i, tmpl := range templates {
				burst[i].capture(tmpl)
				burst[i].t0 = time.Now()
			}
			// The writer's work: coalesced execute, flush, observe.
			if closeAfter := c.execute(burst); closeAfter {
				t.Fatal("burst requested close")
			}
			if err := c.w.Flush(); err != nil {
				t.Fatal(err)
			}
			now := time.Now()
			for _, cm := range burst {
				s.observeLatency(cm.op, now.Sub(cm.t0))
			}
		}
		for i := 0; i < 8; i++ { // warm lanes, scratch, and DB pools
			step()
		}
		if avg := testing.AllocsPerRun(300, step); avg != 0 {
			t.Errorf("steady-state burst allocates %.2f objects/run, want 0", avg)
		}
	}

	t.Run("set_pipeline", func(t *testing.T) {
		// NAND off, like the core Put alloc guards: flush/compaction noise
		// is the DB's own cost, not the serving path's.
		cfg := bandslim.DefaultConfig()
		cfg.DisableNAND = true
		db, err := bandslim.OpenSharded(bandslim.ShardedConfig{Shards: 2, PerShard: cfg})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		var templates [][][]byte
		for i := 0; i < 8; i++ {
			templates = append(templates, args("SET", fmt.Sprintf("sk%02d", i), "steady-value"))
		}
		run(t, db, newBurst(templates...), templates)
	})

	t.Run("get_pipeline", func(t *testing.T) {
		db := testDB(t, 2)
		defer db.Close()
		var templates [][][]byte
		for i := 0; i < 8; i++ {
			k := fmt.Sprintf("gk%02d", i)
			if err := db.Put([]byte(k), []byte("warm-value")); err != nil {
				t.Fatal(err)
			}
			templates = append(templates, args("GET", k))
		}
		templates = append(templates, args("PING")) // break + restart a run
		for i := 0; i < 4; i++ {
			templates = append(templates, args("GET", fmt.Sprintf("gk%02d", i)))
		}
		run(t, db, newBurst(templates...), templates)
	})
}

// TestDelCommandBudget pins the NVMe cost of the DEL existence probe: with
// the negative cache armed, repeatedly deleting a missing key stops issuing
// commands once the key is admitted to the recent-miss ring, and a mixed
// multi-key DEL pays nothing for the known-missing keys.
func TestDelCommandBudget(t *testing.T) {
	cfg := bandslim.DefaultConfig()
	cfg.Cache = bandslim.CacheConfig{NegativeEntries: 64}
	db, err := bandslim.OpenSharded(bandslim.ShardedConfig{Shards: 1, PerShard: cfg})
	if err != nil {
		t.Fatal(err)
	}
	_, addr, _ := startServer(t, db, 4)
	c := dial(t, addr)

	expectInt := func(want int64, args ...string) {
		t.Helper()
		rep := c.do(args...)
		if rep.Kind != resp.KindInteger || rep.Int != want {
			t.Fatalf("%v: %+v, want :%d", args, rep, want)
		}
	}

	// Admission: the first DEL's probe reads through and arms the bloom
	// filter, the second admits the key to the recent-miss ring. Both cost
	// one read command.
	expectInt(0, "DEL", "ghost")
	expectInt(0, "DEL", "ghost")
	settled := db.Stats().Host.Commands

	// From here the probe short-circuits host-side: zero NVMe commands.
	for i := 0; i < 3; i++ {
		expectInt(0, "DEL", "ghost")
	}
	if got := db.Stats().Host.Commands; got != settled {
		t.Errorf("cached-miss DELs issued %d commands, want 0", got-settled)
	}

	// An existing key costs exactly probe + delete.
	c.expectSimple("OK", "SET", "real", "v")
	before := db.Stats().Host.Commands
	expectInt(1, "DEL", "real")
	if got := db.Stats().Host.Commands - before; got != 2 {
		t.Errorf("DEL of an existing key issued %d commands, want 2 (probe + delete)", got)
	}

	// A mixed multi-key DEL pays the same two commands: the known-missing
	// key resolves host-side inside the sparse probe batch.
	c.expectSimple("OK", "SET", "real", "v2")
	before = db.Stats().Host.Commands
	expectInt(1, "DEL", "real", "ghost")
	if got := db.Stats().Host.Commands - before; got != 2 {
		t.Errorf("mixed DEL issued %d commands, want 2 (probe + delete)", got)
	}
}
