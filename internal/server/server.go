// Package server is the network serving front-end: a TCP server speaking a
// RESP2-compatible subset (PING, SET, GET, DEL, MSET, MGET, SCAN, INFO,
// SHUTDOWN, plus the handshake commands stock clients send), so redis-cli and
// standard load generators drive a BandSlim stack unmodified.
//
// Each connection gets a reader/writer goroutine pair joined by a bounded
// ring of preallocated command slots. The reader acquires a slot before it
// parses — when all slots are in flight it stops reading, which propagates
// backpressure to the client through TCP flow control. The writer drains
// every queued slot per wakeup and coalesces the burst: consecutive SETs
// become one PutBatch, consecutive GETs one GetBatchSparse, fanned across
// shard lanes by the ShardedDB batch path, with a single output flush per
// burst. Pipelined clients therefore get batch-path service automatically.
//
// Clocking is hybrid, after OpenCXD: the network edge (accept, parse, reply)
// runs on the wall clock and feeds wall-time latency digests, while the
// device underneath advances on its own deterministic virtual clock. INFO
// and /metrics report both timebases side by side.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"bandslim"
	"bandslim/internal/metrics"
	"bandslim/internal/timeseries"
)

// Config configures a Server. DB is required; everything else has defaults.
type Config struct {
	// Addr is the TCP listen address, e.g. ":6379" or "127.0.0.1:0".
	Addr string

	// DB is the store being served. The server does not close it; the
	// process owning both shuts the server down first, then the DB.
	DB *bandslim.ShardedDB

	// Window bounds in-flight parsed commands per connection (the slot
	// ring). When every slot is in flight the reader stops reading — TCP
	// backpressure. Default 128.
	Window int

	// Logf, when set, receives one line per lifecycle event (listen,
	// shutdown, per-connection protocol errors). Default: silent.
	Logf func(format string, args ...any)
}

// DefaultWindow is the per-connection in-flight command window.
const DefaultWindow = 128

// opcode indexes the command dispatch table and the per-opcode latency
// digests.
type opcode int

const (
	opPing opcode = iota
	opSet
	opGet
	opDel
	opMSet
	opMGet
	opScan
	opInfo
	opShutdown
	opOther // handshake commands (COMMAND, QUIT, SELECT, ECHO) and unknowns
	numOpcodes
)

// opNames label the per-opcode latency histogram families.
var opNames = [numOpcodes]string{
	"ping", "set", "get", "del", "mset", "mget", "scan", "info", "shutdown", "other",
}

// Server is a RESP front-end over one ShardedDB. Create with New, start with
// Serve or ListenAndServe, stop with Shutdown.
type Server struct {
	cfg    Config
	logf   func(string, ...any)
	window int

	ln        net.Listener
	startWall time.Time

	done     chan struct{} // closed when shutdown begins
	shutReq  chan struct{} // SHUTDOWN command -> background shutdown
	shutOnce sync.Once
	serveWG  sync.WaitGroup // SHUTDOWN command watcher

	connMu sync.Mutex
	conns  map[*conn]struct{}
	connWG sync.WaitGroup

	// Counters behind Stats()/metrics; all atomics so conn goroutines
	// update them without a lock.
	accepted atomic.Int64
	active   atomic.Int64
	cmds     [numOpcodes]atomic.Int64
	errs     atomic.Int64
	stalls   atomic.Int64
	bytesIn  atomic.Int64
	bytesOut atomic.Int64

	// Wall-clock parse-to-reply latency per opcode, nanoseconds. Observed
	// by connection writers under latMu (Observe is alloc-free, so the
	// critical section is tiny).
	latMu sync.Mutex
	lat   [numOpcodes]*metrics.Histogram
}

// New validates cfg and returns an unstarted server.
func New(cfg Config) (*Server, error) {
	if cfg.DB == nil {
		return nil, errors.New("server: Config.DB is required")
	}
	if cfg.Window < 0 {
		return nil, fmt.Errorf("server: Window must be >= 0, got %d", cfg.Window)
	}
	if cfg.Window == 0 {
		cfg.Window = DefaultWindow
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &Server{
		cfg:     cfg,
		logf:    logf,
		window:  cfg.Window,
		done:    make(chan struct{}),
		shutReq: make(chan struct{}, 1),
		conns:   make(map[*conn]struct{}),
	}
	for i := range s.lat {
		s.lat[i] = metrics.NewHistogram()
	}
	return s, nil
}

// ListenAndServe listens on Config.Addr and serves until Shutdown.
func (s *Server) ListenAndServe() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown. It returns nil on a clean
// shutdown, or the first accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.ln = ln
	s.startWall = time.Now()
	s.logf("server: listening on %s", ln.Addr())

	// SHUTDOWN command watcher: runs the drain outside any connection
	// goroutine so the issuing connection can be drained like the rest. It
	// must call the internal shutdown with fromWatcher set: the exported
	// Shutdown waits on serveWG, and the watcher's own Done only runs after
	// the drain returns, so waiting here would deadlock on itself.
	s.serveWG.Add(1)
	go func() {
		defer s.serveWG.Done()
		select {
		case <-s.shutReq:
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			s.shutdown(ctx, true)
		case <-s.done:
		}
	}()

	for {
		nc, err := ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return nil
			default:
				return err
			}
		}
		s.accepted.Add(1)
		c := newConn(s, nc)
		// Register under connMu with a done check so a conn accepted just as
		// the listener closed cannot slip in after Shutdown's deadline sweep:
		// either it registers before the sweep (and gets swept), or it
		// observes done closed here and is refused — never a reader that
		// Shutdown does not know to kick, never a connWG.Add racing the Wait.
		s.connMu.Lock()
		select {
		case <-s.done:
			s.connMu.Unlock()
			nc.Close()
			continue
		default:
		}
		s.conns[c] = struct{}{}
		s.active.Add(1)
		s.connWG.Add(1)
		s.connMu.Unlock()
		go c.serve()
	}
}

// Addr reports the bound listen address (useful with ":0").
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// finish removes a connection from the live set.
func (s *Server) finish(c *conn) {
	s.connMu.Lock()
	delete(s.conns, c)
	s.connMu.Unlock()
	s.active.Add(-1)
	s.connWG.Done()
}

// beginShutdown is the SHUTDOWN command hook: it requests an orderly drain
// without blocking the issuing connection.
func (s *Server) beginShutdown() {
	select {
	case s.shutReq <- struct{}{}:
	default:
	}
}

// Shutdown stops accepting, unblocks every reader, drains in-flight
// commands, and waits for all connection goroutines to exit. If ctx expires
// first the remaining connections are force-closed and waited for. Safe to
// call concurrently and more than once; the DB itself is left open for the
// owner to close.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.shutdown(ctx, false)
}

// shutdown is the drain body behind Shutdown. fromWatcher marks the call
// made from the SHUTDOWN command watcher goroutine, which must not wait on
// serveWG: the watcher's own Done runs only after this returns, so waiting
// would self-deadlock, leak the watcher, and wedge every later external
// Shutdown on the same Wait.
func (s *Server) shutdown(ctx context.Context, fromWatcher bool) error {
	s.shutOnce.Do(func() {
		close(s.done)
		if s.ln != nil {
			s.ln.Close()
		}
	})
	// Kick every blocked reader off its socket; writers then drain the
	// slots already in flight and exit.
	s.connMu.Lock()
	for c := range s.conns {
		c.nc.SetReadDeadline(time.Now())
	}
	s.connMu.Unlock()

	waited := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(waited)
	}()
	var err error
	select {
	case <-waited:
	case <-ctx.Done():
		s.connMu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.connMu.Unlock()
		<-waited
		err = ctx.Err()
	}
	if !fromWatcher {
		s.serveWG.Wait()
	}
	s.logf("server: shut down (%d connections served)", s.accepted.Load())
	return err
}

// Stats snapshots the server counters.
func (s *Server) Stats() bandslim.ServerStats {
	return bandslim.ServerStats{
		Accepted: s.accepted.Load(),
		Active:   s.active.Load(),
		Ping:     s.cmds[opPing].Load(),
		Set:      s.cmds[opSet].Load(),
		Get:      s.cmds[opGet].Load(),
		Del:      s.cmds[opDel].Load(),
		MSet:     s.cmds[opMSet].Load(),
		MGet:     s.cmds[opMGet].Load(),
		Scan:     s.cmds[opScan].Load(),
		Info:     s.cmds[opInfo].Load(),
		Shutdown: s.cmds[opShutdown].Load(),
		Other:    s.cmds[opOther].Load(),
		Errors:   s.errs.Load(),
		Stalls:   s.stalls.Load(),
		BytesIn:  s.bytesIn.Load(),
		BytesOut: s.bytesOut.Load(),
	}
}

// observeLatency records one wall-clock parse-to-reply sample.
func (s *Server) observeLatency(op opcode, d time.Duration) {
	s.latMu.Lock()
	s.lat[op].Observe(float64(d.Nanoseconds()))
	s.latMu.Unlock()
}

// latencyHelp names the wall-clock histogram family in the exposition.
var latencyHelp = map[string]string{
	"server_cmd_latency_ns": "Wall-clock parse-to-reply command latency by opcode, ns.",
}

// WriteMetrics writes one combined Prometheus exposition: the DB's simulated
// counters and histograms, the server scalars, and the wall-clock per-opcode
// latency digests. The families are disjoint, so concatenation is a valid
// exposition.
func (s *Server) WriteMetrics(w io.Writer) error {
	if err := s.cfg.DB.WritePrometheus(w); err != nil {
		return err
	}
	if err := bandslim.WriteServerPrometheus(w, s.Stats()); err != nil {
		return err
	}
	s.latMu.Lock()
	hists := make([]timeseries.Hist, 0, numOpcodes)
	for op := opcode(0); op < numOpcodes; op++ {
		if s.lat[op].Count() == 0 {
			continue
		}
		hists = append(hists, timeseries.Hist{
			Key: timeseries.HistKey{Name: "server_cmd_latency_ns", Label: "op", Value: opNames[op]},
			H:   s.lat[op].Clone(),
		})
	}
	s.latMu.Unlock()
	return timeseries.WritePrometheus(w, "bandslim", nil, timeseries.Snapshot{Hists: hists}, latencyHelp)
}
