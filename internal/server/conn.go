package server

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"time"

	"bandslim"
	"bandslim/internal/resp"
)

// verb is the detailed command identity; opcode (the stats/latency bucket)
// is derived from it. Handshake commands stock clients send (COMMAND, QUIT,
// SELECT, ECHO) share the opOther bucket.
type verb int

const (
	vPing verb = iota
	vSet
	vGet
	vDel
	vMSet
	vMGet
	vScan
	vInfo
	vShutdown
	vEcho
	vQuit
	vCommand
	vSelect
	vUnknown
)

// opcodeOf buckets a verb for stats and latency digests.
func opcodeOf(v verb) opcode {
	switch v {
	case vPing:
		return opPing
	case vSet:
		return opSet
	case vGet:
		return opGet
	case vDel:
		return opDel
	case vMSet:
		return opMSet
	case vMGet:
		return opMGet
	case vScan:
		return opScan
	case vInfo:
		return opInfo
	case vShutdown:
		return opShutdown
	default:
		return opOther
	}
}

// classify resolves a command name case-insensitively without allocating
// (the scratch array stays on the stack and `switch string(...)` does not
// escape).
func classify(name []byte) verb {
	var up [8]byte // longest recognized name: SHUTDOWN
	if len(name) > len(up) {
		return vUnknown
	}
	for i := 0; i < len(name); i++ {
		ch := name[i]
		if 'a' <= ch && ch <= 'z' {
			ch -= 'a' - 'A'
		}
		up[i] = ch
	}
	switch string(up[:len(name)]) {
	case "PING":
		return vPing
	case "SET":
		return vSet
	case "GET":
		return vGet
	case "DEL":
		return vDel
	case "MSET":
		return vMSet
	case "MGET":
		return vMGet
	case "SCAN":
		return vScan
	case "INFO":
		return vInfo
	case "SHUTDOWN":
		return vShutdown
	case "ECHO":
		return vEcho
	case "QUIT":
		return vQuit
	case "COMMAND":
		return vCommand
	case "SELECT":
		return vSelect
	default:
		return vUnknown
	}
}

// cmd is one slot of a connection's in-flight ring: a parsed command with
// slot-owned argument copies (the resp.Reader's views die at the next
// ReadCommand, so the reader copies into lanes the slot reuses forever).
type cmd struct {
	verb verb
	op   opcode
	n    int      // argument count, including the command name
	args [][]byte // lanes; args[i][:] reuses capacity across commands
	t0   time.Time
	fail error // protocol error carried to the writer, which reports and closes
}

// capture copies parsed argument views into the slot's lanes.
func (cm *cmd) capture(args [][]byte) {
	for len(cm.args) < len(args) {
		cm.args = append(cm.args, nil)
	}
	for i, a := range args {
		cm.args[i] = append(cm.args[i][:0], a...)
	}
	cm.n = len(args)
	cm.fail = nil
	if cm.n > 0 {
		cm.verb = classify(args[0])
		cm.op = opcodeOf(cm.verb)
	}
}

// conn is one client connection: a reader goroutine parsing into the slot
// ring and a writer goroutine draining, coalescing, and replying.
type conn struct {
	s  *Server
	db *bandslim.ShardedDB
	nc net.Conn
	r  *resp.Reader
	w  *resp.Writer

	// The slot ring. Readers take from free, push parsed slots to pending;
	// the writer drains pending and returns slots to free. Both channels
	// hold every slot, so slot sends never block.
	free    chan *cmd
	pending chan *cmd

	// Writer-side scratch, reused across bursts.
	burst []*cmd
	keys  [][]byte // key references into slot lanes
	vals  [][]byte // value references (SET/MSET)
	get   [][]byte // GetBatchSparse destination lanes (owned, reused)
	miss  []bool
	info  []byte // INFO reply scratch
}

func newConn(s *Server, nc net.Conn) *conn {
	c := &conn{
		s:       s,
		db:      s.cfg.DB,
		nc:      nc,
		r:       resp.NewReader(nc),
		w:       resp.NewWriter(nc),
		free:    make(chan *cmd, s.window),
		pending: make(chan *cmd, s.window),
		burst:   make([]*cmd, 0, s.window),
	}
	for i := 0; i < s.window; i++ {
		c.free <- &cmd{}
	}
	return c
}

// serve runs the connection to completion. writeLoop only returns once
// readLoop has closed and drained pending, so by the time serve finishes
// both goroutines are done.
func (c *conn) serve() {
	go c.readLoop()
	c.writeLoop()
	c.nc.Close()
	c.s.finish(c)
}

// readLoop parses commands into slots. It acquires a slot before reading:
// with every slot in flight it blocks here instead of reading more bytes,
// which is the backpressure path (the kernel buffer fills, TCP flow control
// pushes back on the client).
func (c *conn) readLoop() {
	defer close(c.pending)
	var lastIn int64
	for {
		var slot *cmd
		select {
		case slot = <-c.free:
		default:
			c.s.stalls.Add(1)
			slot = <-c.free
		}
		args, err := c.r.ReadCommand()
		if in := c.r.BytesRead(); in != lastIn {
			c.s.bytesIn.Add(in - lastIn)
			lastIn = in
		}
		if err != nil {
			if resp.IsProtocol(err) {
				// Ship the error through the ring so the writer can
				// report it in stream order before closing.
				slot.n = 0
				slot.fail = err
				slot.t0 = time.Now()
				c.pending <- slot
			}
			return
		}
		slot.capture(args)
		slot.t0 = time.Now()
		c.pending <- slot
	}
}

// writeLoop drains the ring: each wakeup collects every already-parsed slot
// into one burst, executes it with batch coalescing, and flushes the socket
// once. Pipelined clients therefore ride the DB batch path without asking.
func (c *conn) writeLoop() {
	var lastOut int64
	for {
		first, ok := <-c.pending
		if !ok {
			c.w.Flush()
			return
		}
		c.burst = append(c.burst[:0], first)
	collect:
		for len(c.burst) < c.s.window {
			select {
			case cm, ok := <-c.pending:
				if !ok {
					break collect
				}
				c.burst = append(c.burst, cm)
			default:
				break collect
			}
		}
		closeAfter := c.execute(c.burst)
		err := c.w.Flush()
		if out := c.w.BytesWritten(); out != lastOut {
			c.s.bytesOut.Add(out - lastOut)
			lastOut = out
		}
		now := time.Now()
		for _, cm := range c.burst {
			if cm.n > 0 && cm.fail == nil {
				c.s.observeLatency(cm.op, now.Sub(cm.t0))
			}
			c.free <- cm
		}
		if err != nil || closeAfter {
			// Unblock the reader (it exits on the closed socket), then
			// drain pending so its final sends cannot strand slots.
			c.nc.Close()
			for cm := range c.pending {
				c.free <- cm
			}
			return
		}
	}
}

// execute serves one burst in order, coalescing runs of simple SETs into a
// PutBatch and runs of GETs into a GetBatchSparse so the shard fan-out and
// the NVMe batch path carry pipelined load. Reports whether the connection
// should close after the flush (QUIT, SHUTDOWN, protocol error).
func (c *conn) execute(burst []*cmd) (closeAfter bool) {
	for i := 0; i < len(burst); {
		cm := burst[i]
		if cm.fail != nil {
			c.s.errs.Add(1)
			c.w.Error("ERR " + cm.fail.Error())
			return true
		}
		if cm.n == 0 { // empty inline line: ignored, like redis
			i++
			continue
		}
		switch {
		case cm.verb == vSet && cm.n == 3:
			j := i + 1
			for j < len(burst) && burst[j].fail == nil && burst[j].verb == vSet && burst[j].n == 3 {
				j++
			}
			c.runSet(burst[i:j])
			i = j
		case cm.verb == vGet && cm.n == 2:
			j := i + 1
			for j < len(burst) && burst[j].fail == nil && burst[j].verb == vGet && burst[j].n == 2 {
				j++
			}
			c.runGet(burst[i:j])
			i = j
		default:
			if c.executeOne(cm) {
				closeAfter = true
			}
			i++
		}
	}
	return closeAfter
}

// runSet serves a coalesced run of SET key value commands as one PutBatch.
func (c *conn) runSet(run []*cmd) {
	c.keys = c.keys[:0]
	c.vals = c.vals[:0]
	for _, cm := range run {
		c.keys = append(c.keys, cm.args[1])
		c.vals = append(c.vals, cm.args[2])
	}
	c.s.cmds[opSet].Add(int64(len(run)))
	if err := c.db.PutBatch(c.keys, c.vals); err != nil {
		for range run {
			c.writeDBErr(err)
		}
		return
	}
	for range run {
		c.w.Simple("OK")
	}
}

// runGet serves a coalesced run of GET key commands as one GetBatchSparse;
// misses become null bulks, exactly as single GETs would reply.
func (c *conn) runGet(run []*cmd) {
	c.keys = c.keys[:0]
	for _, cm := range run {
		c.keys = append(c.keys, cm.args[1])
	}
	n := len(run)
	c.get = growLanes(c.get, n)
	c.miss = growBools(c.miss, n)
	c.s.cmds[opGet].Add(int64(n))
	if _, err := c.db.GetBatchSparse(c.keys, c.get, c.miss); err != nil {
		for range run {
			c.writeDBErr(err)
		}
		return
	}
	for i := 0; i < n; i++ {
		if c.miss[i] {
			c.w.Null()
		} else {
			c.w.Bulk(c.get[i])
		}
	}
}

// executeOne serves every non-coalesced command. Reports whether the
// connection should close after this burst's flush.
func (c *conn) executeOne(cm *cmd) (closeAfter bool) {
	c.s.cmds[cm.op].Add(1)
	args := cm.args[:cm.n]
	switch cm.verb {
	case vPing:
		switch cm.n {
		case 1:
			c.w.Simple("PONG")
		case 2:
			c.w.Bulk(args[1])
		default:
			c.wrongArity("ping")
		}
	case vEcho:
		if cm.n != 2 {
			c.wrongArity("echo")
			break
		}
		c.w.Bulk(args[1])
	case vSet:
		c.wrongArity("set")
	case vGet:
		c.wrongArity("get")
	case vDel:
		if cm.n < 2 {
			c.wrongArity("del")
			break
		}
		// Deletes are upserted tombstones below, so redis's "number of keys
		// removed" needs an existence probe first. One sparse batch probes
		// every key at once — it rides the shard fan-out, the windowed read
		// path, and the driver's negative cache (a known-missing key costs no
		// NVMe command at all), instead of a full serial read per key.
		c.keys = c.keys[:0]
		c.keys = append(c.keys, args[1:]...)
		n := len(c.keys)
		c.get = growLanes(c.get, n)
		c.miss = growBools(c.miss, n)
		if _, err := c.db.GetBatchSparse(c.keys, c.get, c.miss); err != nil {
			c.writeDBErr(err)
			return false
		}
		removed := 0
		for i, key := range c.keys {
			if c.miss[i] {
				continue
			}
			if err := c.db.Delete(key); err != nil {
				c.writeDBErr(err)
				return false
			}
			removed++
		}
		c.w.Int(int64(removed))
	case vMSet:
		if cm.n < 3 || cm.n%2 == 0 {
			c.wrongArity("mset")
			break
		}
		c.keys = c.keys[:0]
		c.vals = c.vals[:0]
		for i := 1; i < cm.n; i += 2 {
			c.keys = append(c.keys, args[i])
			c.vals = append(c.vals, args[i+1])
		}
		if err := c.db.PutBatch(c.keys, c.vals); err != nil {
			c.writeDBErr(err)
			break
		}
		c.w.Simple("OK")
	case vMGet:
		if cm.n < 2 {
			c.wrongArity("mget")
			break
		}
		c.keys = c.keys[:0]
		c.keys = append(c.keys, args[1:]...)
		n := len(c.keys)
		c.get = growLanes(c.get, n)
		c.miss = growBools(c.miss, n)
		if _, err := c.db.GetBatchSparse(c.keys, c.get, c.miss); err != nil {
			c.writeDBErr(err)
			break
		}
		c.w.Array(n)
		for i := 0; i < n; i++ {
			if c.miss[i] {
				c.w.Null()
			} else {
				c.w.Bulk(c.get[i])
			}
		}
	case vScan:
		c.scan(cm)
	case vInfo:
		c.infoReply()
	case vShutdown:
		c.w.Simple("OK")
		c.s.beginShutdown()
		closeAfter = true
	case vQuit:
		c.w.Simple("OK")
		closeAfter = true
	case vCommand:
		c.w.Array(0) // enough for redis-cli's handshake probe
	case vSelect:
		c.w.Simple("OK") // single keyspace; accept and ignore
	default:
		c.s.errs.Add(1)
		c.w.Error(fmt.Sprintf("ERR unknown command '%s'", args[0]))
	}
	return closeAfter
}

// scan serves SCAN cursor [COUNT n]: a cursor of "0" starts at the first
// key; otherwise the cursor is the key to resume at (the previous reply's
// first element). The reply is redis-shaped: [next-cursor, [keys...]], with
// next-cursor "0" when the keyspace is exhausted.
func (c *conn) scan(cm *cmd) {
	args := cm.args[:cm.n]
	if cm.n != 2 && cm.n != 4 {
		c.wrongArity("scan")
		return
	}
	count := 10
	if cm.n == 4 {
		if classifyOption(args[2]) != "count" {
			c.s.errs.Add(1)
			c.w.Error("ERR syntax error")
			return
		}
		v, err := strconv.Atoi(string(args[3]))
		if err != nil || v < 1 {
			c.s.errs.Add(1)
			c.w.Error("ERR value is not an integer or out of range")
			return
		}
		count = v
	}
	var start []byte
	if !(len(args[1]) == 1 && args[1][0] == '0') {
		start = args[1]
	}
	it, err := c.db.NewIterator(start)
	if err != nil {
		c.writeDBErr(err)
		return
	}
	keys := make([][]byte, 0, count)
	var next []byte
	for it.Valid() {
		if len(keys) == count {
			// One key beyond the page: it becomes the resume cursor.
			next = append([]byte(nil), it.Key()...)
			break
		}
		keys = append(keys, append([]byte(nil), it.Key()...))
		it.Next()
	}
	if err := it.Err(); err != nil {
		c.writeDBErr(err)
		return
	}
	c.w.Array(2)
	if next == nil {
		c.w.BulkString("0")
	} else {
		c.w.Bulk(next)
	}
	c.w.Array(len(keys))
	for _, k := range keys {
		c.w.Bulk(k)
	}
}

// infoReply writes the INFO bulk: redis-style sections carrying both
// timebases — wall clock at the network edge, virtual clock in the device —
// plus the serving counters and the simulation's headline figures.
func (c *conn) infoReply() {
	st := c.db.Stats()
	sv := c.s.Stats()
	b := c.info[:0]
	b = append(b, "# Server\r\n"...)
	b = fmt.Appendf(b, "uptime_wall_seconds:%.3f\r\n", time.Since(c.s.startWall).Seconds())
	b = fmt.Appendf(b, "connections_accepted:%d\r\n", sv.Accepted)
	b = fmt.Appendf(b, "connections_active:%d\r\n", sv.Active)
	b = fmt.Appendf(b, "backpressure_stalls:%d\r\n", sv.Stalls)
	b = fmt.Appendf(b, "bytes_in:%d\r\nbytes_out:%d\r\n", sv.BytesIn, sv.BytesOut)
	b = fmt.Appendf(b, "window:%d\r\n", c.s.window)
	sub := c.db.Submission()
	b = fmt.Appendf(b, "submission_queue_depth:%d\r\n", sub.QueueDepth)
	b = fmt.Appendf(b, "submission_doorbell_batch:%d\r\n", sub.DoorbellBatch)
	b = fmt.Appendf(b, "submission_coalesce_ns:%d\r\n", int64(sub.CoalesceInterval))
	b = append(b, "# Commands\r\n"...)
	b = fmt.Appendf(b, "ping:%d\r\nset:%d\r\nget:%d\r\ndel:%d\r\nmset:%d\r\nmget:%d\r\nscan:%d\r\ninfo:%d\r\nerrors:%d\r\n",
		sv.Ping, sv.Set, sv.Get, sv.Del, sv.MSet, sv.MGet, sv.Scan, sv.Info, sv.Errors)
	b = append(b, "# Simulation\r\n"...)
	b = fmt.Appendf(b, "sim_time_ns:%d\r\n", int64(c.db.Now()))
	b = fmt.Appendf(b, "puts:%d\r\ngets:%d\r\ndeletes:%d\r\n", st.Host.Puts, st.Host.Gets, st.Host.Deletes)
	b = fmt.Appendf(b, "pcie_bytes:%d\r\n", st.PCIe.Bytes)
	b = fmt.Appendf(b, "nand_page_writes:%d\r\n", st.Device.NANDPageWrites)
	b = fmt.Appendf(b, "write_resp_p99_ns:%d\r\n", int64(st.Host.WriteResp.P99))
	b = fmt.Appendf(b, "read_resp_p99_ns:%d\r\n", int64(st.Host.ReadResp.P99))
	if st.Trace.Buffered > 0 || st.Trace.Dropped > 0 {
		// Tracing is on (ShardedConfig.TraceCapacity): surface ring health
		// and the live latency-attribution headline.
		b = append(b, "# Trace\r\n"...)
		b = fmt.Appendf(b, "trace_buffered:%d\r\ntrace_dropped:%d\r\n", st.Trace.Buffered, st.Trace.Dropped)
		if rep := c.db.Blame(); rep != nil {
			b = fmt.Appendf(b, "blame_ops:%d\r\nblame_unclaimed:%d\r\nblame_incomplete:%d\r\n",
				len(rep.Ops), rep.Unclaimed, rep.Incomplete)
			b = fmt.Appendf(b, "blame_truncated_events:%d\r\n", rep.TruncatedEvents)
			for _, cp := range bandslim.BlameCriticalPaths(rep) {
				b = fmt.Appendf(b, "blame_%s_p99_ns:%d\r\nblame_%s_tail_stage:%s\r\n",
					cp.Op, int64(cp.P99), cp.Op, cp.Stage)
			}
		}
	}
	c.info = b
	c.w.Bulk(b)
}

// wrongArity writes the redis-style arity error.
func (c *conn) wrongArity(name string) {
	c.s.errs.Add(1)
	c.w.Error("ERR wrong number of arguments for '" + name + "' command")
}

// writeDBErr maps a store error to a RESP error reply. A closed DB (racing
// with shutdown) gets a clean, stable message instead of an internal one.
func (c *conn) writeDBErr(err error) {
	c.s.errs.Add(1)
	if errors.Is(err, bandslim.ErrClosed) {
		c.w.Error("ERR server shutting down")
		return
	}
	c.w.Error("ERR " + err.Error())
}

// classifyOption lowercases a short option token on the stack.
func classifyOption(b []byte) string {
	var low [8]byte
	if len(b) > len(low) {
		return ""
	}
	for i := 0; i < len(b); i++ {
		ch := b[i]
		if 'A' <= ch && ch <= 'Z' {
			ch += 'a' - 'A'
		}
		low[i] = ch
	}
	switch string(low[:len(b)]) {
	case "count":
		return "count"
	case "match":
		return "match"
	}
	return ""
}

// growLanes resizes a slice-of-lanes to n entries, keeping existing lane
// buffers so their capacity keeps being reused.
func growLanes(s [][]byte, n int) [][]byte {
	if cap(s) >= n {
		return s[:n]
	}
	out := make([][]byte, n)
	copy(out, s)
	return out
}

// growBools resizes a bool scratch to n entries.
func growBools(s []bool, n int) []bool {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]bool, n)
}
