package fault

import (
	"reflect"
	"testing"
)

// FuzzParsePlan feeds arbitrary text to the plan parser. Invariants: the
// parser never panics, every accepted plan validates, and the canonical
// FormatPlan rendering round-trips to an identical plan.
func FuzzParsePlan(f *testing.F) {
	f.Add("seed 42\nnand.program nth=3 media\n")
	f.Add("dma.in p=0.01 from=0us to=5ms transient\n")
	f.Add("nand.read every=100 media\npower at=12ms\n")
	f.Add("# only a comment\n")
	f.Add("exec at=1s powercut\nnand.erase nth=1 from=10us to=20us media\n")
	f.Add("seed 0xdeadbeef\ndma.out p=1 transient")
	f.Fuzz(func(t *testing.T, text string) {
		p, err := ParsePlan(text)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("accepted plan fails Validate: %v", err)
		}
		canon := FormatPlan(p)
		p2, err := ParsePlan(canon)
		if err != nil {
			t.Fatalf("canonical form rejected: %v\n%s", err, canon)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Fatalf("round trip diverged:\n%+v\n%+v\ncanonical:\n%s", p, p2, canon)
		}
		if got := FormatPlan(p2); got != canon {
			t.Fatalf("FormatPlan not a fixed point:\n%q\n%q", canon, got)
		}
	})
}
