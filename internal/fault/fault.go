// Package fault provides deterministic, seed-driven fault injection for the
// simulated KV-SSD stack. A Plan declares rules keyed by fault site (layer ×
// operation), each with exactly one trigger — an exact Nth occurrence, a
// periodic Every, an independent probability P, or a simulated-time arming
// point At — optionally restricted to a simulated-time window. An Injector
// evaluates a Plan against one stack: every probabilistic rule draws from its
// own SplitMix64 stream derived from the plan seed, the rule index, and a
// per-stack salt (the shard id), so a fixed seed + plan reproduces the exact
// same fault schedule byte for byte, run after run, shard by shard.
//
// The layers consult the injector at their natural failure points: the NAND
// array before committing a read/program/erase, the DMA engine before moving
// payload bytes, and the device controller at command dispatch (where a
// power-cut rule truncates all volatile state). Faults fire on the virtual
// clock — wall time never enters the schedule.
package fault

import (
	"errors"
	"fmt"

	"bandslim/internal/sim"
)

// Site identifies one fault injection point: a layer × operation pair the
// stack consults the injector at.
type Site uint8

const (
	// SiteNandProgram is a flash page program about to commit.
	SiteNandProgram Site = iota
	// SiteNandRead is a flash page read about to return data.
	SiteNandRead
	// SiteNandErase is a flash block erase about to commit.
	SiteNandErase
	// SiteDMAIn is a host-to-device DMA transfer (command payload in).
	SiteDMAIn
	// SiteDMAOut is a device-to-host DMA transfer (read data out).
	SiteDMAOut
	// SiteExec is device-side command dispatch; the site power-cut rules
	// normally target.
	SiteExec

	numSites
)

var siteNames = [numSites]string{
	SiteNandProgram: "nand.program",
	SiteNandRead:    "nand.read",
	SiteNandErase:   "nand.erase",
	SiteDMAIn:       "dma.in",
	SiteDMAOut:      "dma.out",
	SiteExec:        "exec",
}

// String returns the plan-text spelling of the site.
func (s Site) String() string {
	if int(s) < len(siteNames) {
		return siteNames[s]
	}
	return fmt.Sprintf("site(%d)", uint8(s))
}

// ParseSite maps a plan-text site name back to its Site.
func ParseSite(name string) (Site, bool) {
	for i, n := range siteNames {
		if n == name {
			return Site(i), true
		}
	}
	return 0, false
}

// Effect is what a firing rule does to the operation it intercepts.
type Effect uint8

const (
	// EffectMedia is a permanent media error: the NAND layers surface it as
	// an I/O fault and the FTL responds with bad-block retirement plus write
	// redirection. Not retryable from the host.
	EffectMedia Effect = iota
	// EffectTransient is a transient link/transfer error surfaced as a
	// retryable NVMe status; the host driver's bounded retry-with-backoff
	// absorbs it.
	EffectTransient
	// EffectPowerCut truncates device state at this simulated instant: all
	// volatile state (in-flight command, iterator, SQ/CQ rings) is lost and
	// the device answers everything with a power-loss status until mounted.
	EffectPowerCut
)

var effectNames = [...]string{
	EffectMedia:     "media",
	EffectTransient: "transient",
	EffectPowerCut:  "powercut",
}

// String returns the plan-text spelling of the effect.
func (e Effect) String() string {
	if int(e) < len(effectNames) {
		return effectNames[e]
	}
	return fmt.Sprintf("effect(%d)", uint8(e))
}

// ParseEffect maps a plan-text effect name back to its Effect.
func ParseEffect(name string) (Effect, bool) {
	for i, n := range effectNames {
		if n == name {
			return Effect(i), true
		}
	}
	return 0, false
}

// ErrPowerCut is the sentinel a power-cut firing injects into the executing
// operation. It unwinds the device stack via errors.Is without any layer
// mistaking it for a media or transfer error.
var ErrPowerCut = errors.New("fault: power cut")

// ErrTransient is the sentinel behind every injected transient fault. The
// device controller classifies it as a retryable NVMe status; the host
// driver's bounded retry absorbs it.
var ErrTransient = errors.New("fault: transient error")

// Rule is one fault declaration. Exactly one trigger field must be set:
//
//   - Nth > 0: fire on the Nth in-window occurrence at Site, once.
//   - Every > 0: fire on every Every-th in-window occurrence at Site.
//   - P in (0, 1]: fire independently with probability P per in-window
//     occurrence, drawn from the rule's private RNG stream.
//   - At > 0: fire on the first occurrence at Site at or after simulated
//     time At, once. (Time-armed rules ignore From/To.)
//
// From/To bound the window of simulated time the rule is active in,
// half-open [From, To); To == 0 means unbounded.
type Rule struct {
	Site   Site
	Effect Effect

	Nth   int
	Every int
	P     float64
	At    sim.Time

	From sim.Time
	To   sim.Time
}

// Validate reports whether the rule is well-formed.
func (r Rule) Validate() error {
	if r.Site >= numSites {
		return fmt.Errorf("fault: unknown site %d", r.Site)
	}
	if int(r.Effect) >= len(effectNames) {
		return fmt.Errorf("fault: unknown effect %d", r.Effect)
	}
	triggers := 0
	if r.Nth > 0 {
		triggers++
	}
	if r.Every > 0 {
		triggers++
	}
	if r.P != 0 {
		if r.P < 0 || r.P > 1 {
			return fmt.Errorf("fault: probability %v outside (0, 1]", r.P)
		}
		triggers++
	}
	if r.At != 0 {
		if r.At < 0 {
			return fmt.Errorf("fault: negative arming time %d", r.At)
		}
		triggers++
	}
	if triggers != 1 {
		return fmt.Errorf("fault: rule needs exactly one trigger (nth, every, p, or at), has %d", triggers)
	}
	if r.Nth < 0 || r.Every < 0 {
		return fmt.Errorf("fault: negative trigger count")
	}
	if r.From < 0 || r.To < 0 {
		return fmt.Errorf("fault: negative window bound")
	}
	if r.To != 0 && r.To <= r.From {
		return fmt.Errorf("fault: empty window [%d, %d)", r.From, r.To)
	}
	return nil
}

// Plan is a complete fault schedule: a seed for the probabilistic rules and
// the rule list. Plans are immutable once handed to an Injector.
type Plan struct {
	Seed  uint64
	Rules []Rule
}

// Validate reports whether every rule in the plan is well-formed.
func (p *Plan) Validate() error {
	for i, r := range p.Rules {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("rule %d: %w", i, err)
		}
	}
	return nil
}

// mix folds the plan seed, the rule index, and the per-stack salt into one
// decorrelated RNG seed (SplitMix64 finalizer over the combination).
func mix(seed uint64, idx int, salt uint64) uint64 {
	z := seed + 0x9E3779B97F4A7C15*uint64(idx+1) + 0xD1B54A32D192ED03*(salt+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// ruleState is one rule plus its per-stack evaluation state.
type ruleState struct {
	Rule
	rng   *sim.RNG
	seen  uint64 // in-window occurrences observed at the rule's site
	fired bool   // Nth/At rules fire once
}

// step observes one occurrence at the rule's site and reports whether the
// rule fires on it. All matching rules step on every occurrence (not just
// the first firing one) so the schedule stays deterministic regardless of
// rule order.
func (rs *ruleState) step(now sim.Time) bool {
	if rs.At != 0 {
		if rs.fired || now < rs.At {
			return false
		}
		rs.fired = true
		return true
	}
	if now < rs.From || (rs.To != 0 && now >= rs.To) {
		return false
	}
	rs.seen++
	switch {
	case rs.Nth > 0:
		if rs.fired || rs.seen != uint64(rs.Nth) {
			return false
		}
		rs.fired = true
		return true
	case rs.Every > 0:
		return rs.seen%uint64(rs.Every) == 0
	default:
		return rs.rng.Float64() < rs.P
	}
}

// Injector evaluates one Plan against one stack. It is not safe for
// concurrent use; each shard owns its own Injector (ShardedDB salts each
// with the shard id, so shards draw decorrelated schedules from one plan).
type Injector struct {
	rules  []ruleState
	bySite [numSites][]int
	fired  int64
}

// NewInjector builds the evaluation state for plan, salted per stack.
// The plan must already be validated.
func NewInjector(plan *Plan, salt uint64) *Injector {
	in := &Injector{rules: make([]ruleState, len(plan.Rules))}
	for i, r := range plan.Rules {
		in.rules[i] = ruleState{Rule: r, rng: sim.NewRNG(mix(plan.Seed, i, salt))}
		in.bySite[r.Site] = append(in.bySite[r.Site], i)
	}
	return in
}

// Check observes one occurrence at site at simulated time now and reports
// the effect to apply, if any. Every matching rule updates its state; the
// first firing rule (in plan order) supplies the effect.
func (in *Injector) Check(site Site, now sim.Time) (Effect, bool) {
	if in == nil {
		return 0, false
	}
	hit := false
	var eff Effect
	for _, ri := range in.bySite[site] {
		if in.rules[ri].step(now) && !hit {
			hit = true
			eff = in.rules[ri].Effect
		}
	}
	if hit {
		in.fired++
	}
	return eff, hit
}

// Fired reports how many occurrences triggered an effect so far.
func (in *Injector) Fired() int64 {
	if in == nil {
		return 0
	}
	return in.fired
}

// ScheduleEntry is one resolved firing in a Plan's occurrence-indexed
// schedule: rule Rule fires on the Occurrence-th in-window occurrence at its
// site.
type ScheduleEntry struct {
	Rule       int
	Occurrence uint64
}

// Resolve replays every rule's trigger over its first maxOcc in-window
// occurrences and returns which occurrences fire, per rule. Time-armed (At)
// rules resolve to an empty list — their firing point is a simulated instant,
// not an occurrence index. The result is the exact schedule an identically
// salted Injector produces when every occurrence lands inside the rule's
// window.
func (p *Plan) Resolve(salt uint64, maxOcc int) [][]uint64 {
	out := make([][]uint64, len(p.Rules))
	for i, r := range p.Rules {
		rng := sim.NewRNG(mix(p.Seed, i, salt))
		var fires []uint64
		switch {
		case r.At != 0:
			// Time-armed; no occurrence schedule.
		case r.Nth > 0:
			if r.Nth <= maxOcc {
				fires = append(fires, uint64(r.Nth))
			}
		case r.Every > 0:
			for n := uint64(r.Every); n <= uint64(maxOcc); n += uint64(r.Every) {
				fires = append(fires, n)
			}
		default:
			for n := uint64(1); n <= uint64(maxOcc); n++ {
				if rng.Float64() < r.P {
					fires = append(fires, n)
				}
			}
		}
		out[i] = fires
	}
	return out
}
