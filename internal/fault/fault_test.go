package fault

import (
	"reflect"
	"testing"

	"bandslim/internal/sim"
)

func TestParsePlanBasics(t *testing.T) {
	p, err := ParsePlan(`
# a comment
seed 42
nand.program nth=3 media
dma.in p=0.01 from=0us to=5ms transient
nand.read every=100 media
power at=12ms
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 {
		t.Fatalf("seed = %d, want 42", p.Seed)
	}
	if len(p.Rules) != 4 {
		t.Fatalf("rules = %d, want 4", len(p.Rules))
	}
	want := []Rule{
		{Site: SiteNandProgram, Effect: EffectMedia, Nth: 3},
		{Site: SiteDMAIn, Effect: EffectTransient, P: 0.01, To: sim.Time(5 * sim.Millisecond)},
		{Site: SiteNandRead, Effect: EffectMedia, Every: 100},
		{Site: SiteExec, Effect: EffectPowerCut, At: sim.Time(12 * sim.Millisecond)},
	}
	if !reflect.DeepEqual(p.Rules, want) {
		t.Fatalf("rules = %+v, want %+v", p.Rules, want)
	}
}

func TestParsePlanErrors(t *testing.T) {
	bad := []string{
		"nand.program media",                       // no trigger
		"nand.program nth=3 every=2 media",         // two triggers
		"nand.program nth=3",                       // no effect
		"nand.program nth=3 media transient",       // two effects
		"bogus.site nth=1 media",                   // unknown site
		"nand.program nth=0 media",                 // zero count
		"nand.program p=1.5 media",                 // p out of range
		"nand.program p=0 media",                   // p zero
		"nand.program at=0us media",                // at=0 reserved
		"nand.program nth=1 from=2ms to=1ms media", // empty window
		"nand.program nth=1 frob=2 media",          // unknown option
		"seed 1\nseed 2",                           // duplicate seed
		"seed nope",                                // bad seed
		"nand.program nth=1 at=nope media",         // bad time
	}
	for _, text := range bad {
		if _, err := ParsePlan(text); err == nil {
			t.Errorf("ParsePlan(%q) accepted, want error", text)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	src := `seed 7
nand.program nth=3 media
nand.erase every=2 from=1us media
dma.out p=0.25 to=1s transient
exec at=500us powercut
`
	p, err := ParsePlan(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatPlan(p); got != src {
		t.Fatalf("FormatPlan:\n%s\nwant:\n%s", got, src)
	}
	p2, err := ParsePlan(FormatPlan(p))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, p2) {
		t.Fatalf("round trip: %+v != %+v", p, p2)
	}
}

func TestInjectorNthFiresOnce(t *testing.T) {
	in := NewInjector(&Plan{Rules: []Rule{{Site: SiteNandProgram, Effect: EffectMedia, Nth: 3}}}, 0)
	fires := 0
	for i := 0; i < 10; i++ {
		if eff, ok := in.Check(SiteNandProgram, sim.Time(i)); ok {
			if eff != EffectMedia {
				t.Fatalf("effect = %v", eff)
			}
			if i != 2 {
				t.Fatalf("fired on occurrence %d, want 3rd", i+1)
			}
			fires++
		}
	}
	if fires != 1 {
		t.Fatalf("fired %d times, want 1", fires)
	}
	if in.Fired() != 1 {
		t.Fatalf("Fired() = %d", in.Fired())
	}
}

func TestInjectorEvery(t *testing.T) {
	in := NewInjector(&Plan{Rules: []Rule{{Site: SiteNandRead, Effect: EffectMedia, Every: 4}}}, 0)
	var fired []int
	for i := 1; i <= 12; i++ {
		if _, ok := in.Check(SiteNandRead, 0); ok {
			fired = append(fired, i)
		}
	}
	if !reflect.DeepEqual(fired, []int{4, 8, 12}) {
		t.Fatalf("fired on %v, want [4 8 12]", fired)
	}
}

func TestInjectorWindow(t *testing.T) {
	r := Rule{Site: SiteDMAIn, Effect: EffectTransient, Every: 1,
		From: sim.Time(100), To: sim.Time(200)}
	in := NewInjector(&Plan{Rules: []Rule{r}}, 0)
	for _, tc := range []struct {
		now  sim.Time
		want bool
	}{{50, false}, {99, false}, {100, true}, {199, true}, {200, false}, {500, false}} {
		if _, ok := in.Check(SiteDMAIn, tc.now); ok != tc.want {
			t.Errorf("Check at t=%d = %v, want %v", tc.now, ok, tc.want)
		}
	}
}

func TestInjectorTimeArmed(t *testing.T) {
	in := NewInjector(&Plan{Rules: []Rule{{Site: SiteExec, Effect: EffectPowerCut, At: sim.Time(1000)}}}, 0)
	if _, ok := in.Check(SiteExec, 999); ok {
		t.Fatal("fired before arming time")
	}
	if eff, ok := in.Check(SiteExec, 1500); !ok || eff != EffectPowerCut {
		t.Fatalf("Check = %v, %v; want powercut", eff, ok)
	}
	if _, ok := in.Check(SiteExec, 2000); ok {
		t.Fatal("time-armed rule fired twice")
	}
}

func TestInjectorDeterministicAcrossRuns(t *testing.T) {
	plan := &Plan{Seed: 99, Rules: []Rule{
		{Site: SiteNandProgram, Effect: EffectMedia, P: 0.3},
		{Site: SiteNandProgram, Effect: EffectTransient, P: 0.1},
	}}
	run := func(salt uint64) []bool {
		in := NewInjector(plan, salt)
		out := make([]bool, 200)
		for i := range out {
			_, out[i] = in.Check(SiteNandProgram, sim.Time(i))
		}
		return out
	}
	a, b := run(0), run(0)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed+salt produced different schedules")
	}
	c := run(1)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different salts produced identical schedules (streams correlated)")
	}
}

func TestInjectorFirstMatchWinsAllRulesStep(t *testing.T) {
	// Both rules match occurrence 2; the first in plan order supplies the
	// effect, but the second must still have stepped (its Nth state burns).
	plan := &Plan{Rules: []Rule{
		{Site: SiteNandRead, Effect: EffectMedia, Nth: 2},
		{Site: SiteNandRead, Effect: EffectTransient, Nth: 2},
	}}
	in := NewInjector(plan, 0)
	in.Check(SiteNandRead, 0)
	eff, ok := in.Check(SiteNandRead, 0)
	if !ok || eff != EffectMedia {
		t.Fatalf("occurrence 2: %v, %v; want media", eff, ok)
	}
	// If rule 2 had not stepped, it would fire on the next occurrence.
	if _, ok := in.Check(SiteNandRead, 0); ok {
		t.Fatal("shadowed rule re-fired: states diverged")
	}
}

func TestNilInjector(t *testing.T) {
	var in *Injector
	if _, ok := in.Check(SiteExec, 0); ok {
		t.Fatal("nil injector fired")
	}
	if in.Fired() != 0 {
		t.Fatal("nil injector counted")
	}
}

func TestResolveMatchesInjector(t *testing.T) {
	plan := &Plan{Seed: 5, Rules: []Rule{
		{Site: SiteNandProgram, Effect: EffectMedia, P: 0.2},
		{Site: SiteNandRead, Effect: EffectMedia, Every: 7},
		{Site: SiteNandErase, Effect: EffectMedia, Nth: 4},
	}}
	const maxOcc = 50
	sched := plan.Resolve(3, maxOcc)
	in := NewInjector(plan, 3)
	for ri, r := range plan.Rules {
		var got []uint64
		for n := uint64(1); n <= maxOcc; n++ {
			if _, ok := in.Check(r.Site, 0); ok {
				got = append(got, n)
			}
		}
		if !reflect.DeepEqual(got, sched[ri]) {
			t.Errorf("rule %d: injector fired %v, Resolve said %v", ri, got, sched[ri])
		}
	}
}
