package fault

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"bandslim/internal/sim"
)

// Plan text format — one directive per line, '#' starts a comment:
//
//	seed 42
//	nand.program nth=3 media
//	dma.in p=0.01 from=0us to=5ms transient
//	nand.read every=100 media
//	power at=12ms
//
// A rule line is: <site> <key=value options> <effect>. Options are the
// trigger (exactly one of nth=, every=, p=, at=) and the optional window
// (from=, to=). Durations take an ns/us/ms/s suffix. `power at=<t>` is sugar
// for `exec at=<t> powercut`.

// ParsePlan parses the plan text format.
func ParsePlan(text string) (*Plan, error) {
	p := &Plan{}
	seenSeed := false
	for lineno, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if fields[0] == "seed" {
			if seenSeed {
				return nil, fmt.Errorf("fault: line %d: duplicate seed", lineno+1)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("fault: line %d: seed takes one value", lineno+1)
			}
			v, err := strconv.ParseUint(fields[1], 0, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: line %d: bad seed %q", lineno+1, fields[1])
			}
			p.Seed = v
			seenSeed = true
			continue
		}
		r, err := parseRule(fields)
		if err != nil {
			return nil, fmt.Errorf("fault: line %d: %w", lineno+1, err)
		}
		p.Rules = append(p.Rules, r)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func parseRule(fields []string) (Rule, error) {
	var r Rule
	site := fields[0]
	rest := fields[1:]
	power := site == "power"
	if power {
		r.Site = SiteExec
		r.Effect = EffectPowerCut
	} else {
		s, ok := ParseSite(site)
		if !ok {
			return r, fmt.Errorf("unknown site %q", site)
		}
		r.Site = s
	}
	haveEffect := power
	for _, f := range rest {
		if eff, ok := ParseEffect(f); ok {
			if haveEffect {
				return r, fmt.Errorf("duplicate effect %q", f)
			}
			r.Effect = eff
			haveEffect = true
			continue
		}
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return r, fmt.Errorf("bad token %q", f)
		}
		var err error
		switch key {
		case "nth":
			r.Nth, err = parseCount(val)
		case "every":
			r.Every, err = parseCount(val)
		case "p":
			r.P, err = strconv.ParseFloat(val, 64)
			if err == nil && (math.IsNaN(r.P) || r.P <= 0 || r.P > 1) {
				err = fmt.Errorf("probability outside (0, 1]")
			}
		case "at":
			r.At, err = parseTime(val)
			if err == nil && r.At == 0 {
				err = fmt.Errorf("at=0 is reserved (use nth=1 for the first occurrence)")
			}
		case "from":
			r.From, err = parseTime(val)
		case "to":
			r.To, err = parseTime(val)
		default:
			err = fmt.Errorf("unknown option %q", key)
		}
		if err != nil {
			return r, fmt.Errorf("%s=%s: %w", key, val, err)
		}
	}
	if !haveEffect {
		return r, fmt.Errorf("missing effect (media, transient, or powercut)")
	}
	if err := r.Validate(); err != nil {
		return r, err
	}
	return r, nil
}

func parseCount(s string) (int, error) {
	v, err := strconv.ParseInt(s, 10, 32)
	if err != nil {
		return 0, err
	}
	if v <= 0 {
		return 0, fmt.Errorf("must be positive")
	}
	return int(v), nil
}

var timeUnits = []struct {
	suffix string
	dur    sim.Duration
}{
	// Longest suffixes first so "ms" is not read as "m"+"s".
	{"ns", sim.Nanosecond},
	{"us", sim.Microsecond},
	{"ms", sim.Millisecond},
	{"s", sim.Second},
}

func parseTime(s string) (sim.Time, error) {
	for _, u := range timeUnits {
		num, ok := strings.CutSuffix(s, u.suffix)
		if !ok || num == "" {
			continue
		}
		v, err := strconv.ParseFloat(num, 64)
		if err != nil {
			continue // "5m" + "s" would strip the wrong suffix; keep looking
		}
		if math.IsNaN(v) || v < 0 {
			return 0, fmt.Errorf("negative time")
		}
		ns := v * float64(u.dur)
		if ns >= float64(int64(1)<<62) { // keep int64 conversion well-defined
			return 0, fmt.Errorf("time too large")
		}
		return sim.Time(ns), nil
	}
	return 0, fmt.Errorf("bad time %q (want e.g. 10us, 5ms, 1s)", s)
}

func formatTime(t sim.Time) string {
	switch {
	case t == 0:
		return "0us"
	case t%sim.Time(sim.Second) == 0:
		return fmt.Sprintf("%ds", t/sim.Time(sim.Second))
	case t%sim.Time(sim.Millisecond) == 0:
		return fmt.Sprintf("%dms", t/sim.Time(sim.Millisecond))
	case t%sim.Time(sim.Microsecond) == 0:
		return fmt.Sprintf("%dus", t/sim.Time(sim.Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// FormatRule renders one rule in canonical plan-text form; ParsePlan of the
// result reproduces the rule.
func FormatRule(r Rule) string {
	var b strings.Builder
	b.WriteString(r.Site.String())
	switch {
	case r.Nth > 0:
		fmt.Fprintf(&b, " nth=%d", r.Nth)
	case r.Every > 0:
		fmt.Fprintf(&b, " every=%d", r.Every)
	case r.P != 0:
		fmt.Fprintf(&b, " p=%s", strconv.FormatFloat(r.P, 'g', -1, 64))
	case r.At != 0:
		fmt.Fprintf(&b, " at=%s", formatTime(r.At))
	}
	if r.From != 0 {
		fmt.Fprintf(&b, " from=%s", formatTime(r.From))
	}
	if r.To != 0 {
		fmt.Fprintf(&b, " to=%s", formatTime(r.To))
	}
	b.WriteByte(' ')
	b.WriteString(r.Effect.String())
	return b.String()
}

// FormatPlan renders a plan in canonical text form; ParsePlan of the result
// reproduces the plan.
func FormatPlan(p *Plan) string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed %d\n", p.Seed)
	for _, r := range p.Rules {
		b.WriteString(FormatRule(r))
		b.WriteByte('\n')
	}
	return b.String()
}
