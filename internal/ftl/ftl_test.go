package ftl

import (
	"bytes"
	"testing"
	"testing/quick"

	"bandslim/internal/nand"
	"bandslim/internal/sim"
)

func smallFlash(t *testing.T) *nand.Array {
	t.Helper()
	geo := nand.Geometry{Channels: 2, WaysPerChannel: 2, BlocksPerWay: 8, PagesPerBlock: 8, PageSize: 4096}
	a, err := nand.New(geo, nand.DefaultLatency(), sim.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func newFTL(t *testing.T) *FTL {
	t.Helper()
	f, err := New(smallFlash(t), Config{OverprovisionPct: 25, GCFreeBlockLow: 2})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewValidation(t *testing.T) {
	fl := smallFlash(t)
	if _, err := New(fl, Config{OverprovisionPct: 0, GCFreeBlockLow: 2}); err == nil {
		t.Fatal("0% OP accepted")
	}
	if _, err := New(fl, Config{OverprovisionPct: 60, GCFreeBlockLow: 2}); err == nil {
		t.Fatal("60% OP accepted")
	}
	if _, err := New(fl, Config{OverprovisionPct: 10, GCFreeBlockLow: 0}); err == nil {
		t.Fatal("GCFreeBlockLow=0 accepted")
	}
	if _, err := New(fl, DefaultConfig()); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestLogicalCapacityReflectsOverprovision(t *testing.T) {
	f := newFTL(t)
	// 2*2*8*8 = 256 physical pages, 25% OP -> 192 logical.
	if got := f.LogicalPages(); got != 192 {
		t.Fatalf("LogicalPages = %d, want 192", got)
	}
	if f.PageSize() != 4096 {
		t.Fatalf("PageSize = %d", f.PageSize())
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	f := newFTL(t)
	data := bytes.Repeat([]byte{0x5A}, 4096)
	if _, err := f.Write(0, 10, data); err != nil {
		t.Fatal(err)
	}
	got, _, err := f.Read(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read-back mismatch")
	}
}

func TestUnmappedReadsZero(t *testing.T) {
	f := newFTL(t)
	got, _, err := f.Read(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("unmapped page read non-zero")
		}
	}
}

func TestOutOfRangeOps(t *testing.T) {
	f := newFTL(t)
	if _, err := f.Write(0, -1, nil); err == nil {
		t.Fatal("negative lpn accepted")
	}
	if _, err := f.Write(0, f.LogicalPages(), nil); err == nil {
		t.Fatal("lpn == capacity accepted")
	}
	if _, _, err := f.Read(0, -1); err == nil {
		t.Fatal("negative read accepted")
	}
	if err := f.Trim(99999); err == nil {
		t.Fatal("out-of-range trim accepted")
	}
}

func TestOverwriteRemapsOutOfPlace(t *testing.T) {
	f := newFTL(t)
	f.Write(0, 3, []byte{1})
	f.Write(0, 3, []byte{2})
	got, _, err := f.Read(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 {
		t.Fatalf("after overwrite, read %d", got[0])
	}
	if f.Stats().MapUpdates.Value() != 2 {
		t.Fatalf("MapUpdates = %d", f.Stats().MapUpdates.Value())
	}
}

func TestTrimThenReadZero(t *testing.T) {
	f := newFTL(t)
	f.Write(0, 7, []byte{9})
	if err := f.Trim(7); err != nil {
		t.Fatal(err)
	}
	got, _, _ := f.Read(0, 7)
	if got[0] != 0 {
		t.Fatal("trimmed page still readable")
	}
	// Trimming an unmapped page is a no-op.
	if err := f.Trim(7); err != nil {
		t.Fatal(err)
	}
}

func TestWritesStripeAcrossWays(t *testing.T) {
	f := newFTL(t)
	for i := 0; i < 4; i++ {
		if _, err := f.Write(0, i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// 4 writes over 4 ways: each way consumed exactly one active block.
	for w, free := range f.FreeBlocks() {
		if free != 7 {
			t.Fatalf("way %d free blocks = %d, want 7", w, free)
		}
	}
}

func TestGCReclaimsOverwrittenSpace(t *testing.T) {
	f := newFTL(t)
	// Hammer one logical page far beyond physical block capacity; GC must
	// keep reclaiming the dead versions or allocation would fail.
	for i := 0; i < 2000; i++ {
		if _, err := f.Write(0, 0, []byte{byte(i)}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if f.Stats().GCErases.Value() == 0 {
		t.Fatal("GC never ran")
	}
	got, _, err := f.Read(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != byte(1999%256) {
		t.Fatalf("latest value lost: %d", got[0])
	}
}

func TestGCPreservesLiveData(t *testing.T) {
	f := newFTL(t)
	n := f.LogicalPages()
	// Fill the whole logical space so every block holds live data.
	for i := 0; i < n; i++ {
		if _, err := f.Write(0, i, []byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatal(err)
		}
	}
	// Churn every 4th page so victim blocks mix live and dead pages and GC
	// must migrate the live ones.
	for round := 0; round < 20; round++ {
		for i := 0; i < n; i += 4 {
			if _, err := f.Write(0, i, []byte{byte(i), byte(i >> 8)}); err != nil {
				t.Fatalf("churn round %d page %d: %v", round, i, err)
			}
		}
	}
	for i := 0; i < n; i++ {
		got, _, err := f.Read(0, i)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i) || got[1] != byte(i>>8) {
			t.Fatalf("page %d corrupted by GC: %x", i, got[:2])
		}
	}
	if f.Stats().GCWrites.Value() == 0 {
		t.Fatal("expected GC migrations")
	}
}

func TestFaultRetryDuringWrite(t *testing.T) {
	fl := smallFlash(t)
	fl.SetFaultEvery(5)
	f, err := New(fl, Config{OverprovisionPct: 25, GCFreeBlockLow: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := f.Write(0, i%4, []byte{byte(i)}); err != nil {
			t.Fatalf("write %d under fault injection: %v", i, err)
		}
	}
	if f.Stats().ProgramFaults.Value() == 0 {
		t.Fatal("no faults recorded despite injection")
	}
	got, _, _ := f.Read(0, 3)
	if got[0] != 19 {
		t.Fatalf("value after retries: %d", got[0])
	}
}

// nandBlock builds a BlockAddr for way w, block b.
func nandBlock(w int, geo nand.Geometry, b int) nand.BlockAddr {
	return nand.BlockAddr{Channel: w / geo.WaysPerChannel, Way: w % geo.WaysPerChannel, Block: b}
}

// Wear-aware GC spreads erases: after heavy single-page churn, the gap
// between the most- and least-worn blocks stays small relative to total
// erase activity.
func TestGCWearSpreadBounded(t *testing.T) {
	fl := smallFlash(t)
	f, err := New(fl, Config{OverprovisionPct: 25, GCFreeBlockLow: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		if _, err := f.Write(0, i%4, []byte{byte(i)}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if f.Stats().GCErases.Value() < 100 {
		t.Fatalf("only %d erases; churn too light", f.Stats().GCErases.Value())
	}
	// Collect wear across every block of way 0.
	geo := fl.Geometry()
	minW, maxW := 1<<30, 0
	for b := 0; b < geo.BlocksPerWay; b++ {
		w, err := fl.EraseCount(nandBlock(0, geo, b))
		if err != nil {
			t.Fatal(err)
		}
		if w < minW {
			minW = w
		}
		if w > maxW {
			maxW = w
		}
	}
	if maxW == 0 {
		t.Fatal("no erases on way 0")
	}
	// With wear-aware tie-breaking the spread stays within a small
	// multiple of the mean; a pathological policy concentrates all erases
	// on one block (spread ≈ max).
	if maxW-minW > maxW/2+2 {
		t.Fatalf("wear spread %d..%d too wide", minW, maxW)
	}
}

// Property: a random sequence of writes over a small logical space always
// leaves every page readable with its most recent contents, regardless of
// how much GC ran.
func TestRandomWritesConsistencyProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		fl := smallFlash(t)
		ftl, err := New(fl, Config{OverprovisionPct: 25, GCFreeBlockLow: 2})
		if err != nil {
			return false
		}
		const space = 16
		want := make(map[int]byte)
		for i, op := range ops {
			lpn := int(op) % space
			val := byte(i)
			if _, err := ftl.Write(0, lpn, []byte{val}); err != nil {
				return false
			}
			want[lpn] = val
		}
		for lpn, val := range want {
			got, _, err := ftl.Read(0, lpn)
			if err != nil || got[0] != val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
