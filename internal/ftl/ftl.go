// Package ftl implements the page-mapped Flash Translation Layer sitting
// between logical NAND pages (which the vLog and LSM-tree address) and the
// physical flash array. It provides out-of-place updates, allocation striping
// across channels and ways for parallelism, per-block valid-page accounting,
// and greedy garbage collection with valid-page migration.
//
// The vLog of the paper's KV-SSD is "a linear, logical NAND flash address
// space ... mapped to physical NAND pages by the FTL" (§2.1); this package is
// that mapping.
package ftl

import (
	"errors"
	"fmt"

	"bandslim/internal/fault"
	"bandslim/internal/metrics"
	"bandslim/internal/nand"
	"bandslim/internal/sim"
)

const unmapped = int32(-1)

// Stats tallies FTL activity, including the GC write amplification the
// device-level WAF includes.
type Stats struct {
	HostWrites    metrics.Counter // logical page writes requested
	GCWrites      metrics.Counter // page migrations performed by GC
	GCErases      metrics.Counter // blocks reclaimed by GC
	MapUpdates    metrics.Counter
	ProgramFaults metrics.Counter // programs retried due to injected faults
	BadBlocks     metrics.Counter // blocks retired after media failures
}

// Config tunes the FTL.
type Config struct {
	// OverprovisionPct is the fraction of physical blocks withheld from the
	// logical capacity, in percent. Must leave at least one spare block per
	// way for GC.
	OverprovisionPct int
	// GCFreeBlockLow triggers GC on a way when its free-block count drops
	// to this threshold.
	GCFreeBlockLow int
}

// DefaultConfig returns production-typical settings (7% OP).
func DefaultConfig() Config {
	return Config{OverprovisionPct: 7, GCFreeBlockLow: 2}
}

// FTL is the translation layer. It is not safe for concurrent use; the
// device controller serializes access, as firmware does.
type FTL struct {
	flash *nand.Array
	cfg   Config
	geo   nand.Geometry

	l2p        []int32 // logical page -> physical page index
	p2l        []int32 // physical page index -> logical page (or -1)
	validCount []int32 // per physical block: live pages
	freeBlocks [][]int // per way: stack of free block numbers
	bad        []bool  // per physical block: retired after a media failure
	active     []activeBlock
	nextWay    int  // round-robin write striping cursor
	inGC       bool // guards against re-entrant emergency GC
	stats      Stats
}

type activeBlock struct {
	block    int // block number within the way, -1 if none
	nextPage int
}

// New builds an FTL over the flash array. The logical capacity is the
// physical page count reduced by overprovisioning.
func New(flash *nand.Array, cfg Config) (*FTL, error) {
	geo := flash.Geometry()
	if cfg.OverprovisionPct < 1 || cfg.OverprovisionPct > 50 {
		return nil, fmt.Errorf("ftl: overprovision %d%% out of range [1,50]", cfg.OverprovisionPct)
	}
	if cfg.GCFreeBlockLow < 1 {
		return nil, fmt.Errorf("ftl: GCFreeBlockLow must be >= 1")
	}
	if geo.BlocksPerWay <= cfg.GCFreeBlockLow+1 {
		return nil, fmt.Errorf("ftl: geometry too small for GC reserve")
	}
	f := &FTL{
		flash:      flash,
		cfg:        cfg,
		geo:        geo,
		l2p:        make([]int32, 0),
		p2l:        make([]int32, geo.Pages()),
		validCount: make([]int32, geo.Blocks()),
		freeBlocks: make([][]int, geo.Ways()),
		bad:        make([]bool, geo.Blocks()),
		active:     make([]activeBlock, geo.Ways()),
	}
	logicalPages := geo.Pages() * (100 - cfg.OverprovisionPct) / 100
	f.l2p = make([]int32, logicalPages)
	for i := range f.l2p {
		f.l2p[i] = unmapped
	}
	for i := range f.p2l {
		f.p2l[i] = unmapped
	}
	for w := 0; w < geo.Ways(); w++ {
		f.freeBlocks[w] = make([]int, 0, geo.BlocksPerWay)
		// Push in reverse so blocks are consumed in ascending order.
		for b := geo.BlocksPerWay - 1; b >= 0; b-- {
			f.freeBlocks[w] = append(f.freeBlocks[w], b)
		}
		f.active[w] = activeBlock{block: -1}
	}
	return f, nil
}

// LogicalPages reports the logical capacity in pages.
func (f *FTL) LogicalPages() int { return len(f.l2p) }

// PageSize reports the NAND page size.
func (f *FTL) PageSize() int { return f.geo.PageSize }

// Stats exposes the activity tallies.
func (f *FTL) Stats() *Stats { return &f.stats }

func (f *FTL) wayOf(physPage int) int {
	return physPage / (f.geo.BlocksPerWay * f.geo.PagesPerBlock)
}

func (f *FTL) addrOf(physPage int) nand.PageAddr {
	pagesPerWay := f.geo.BlocksPerWay * f.geo.PagesPerBlock
	way := physPage / pagesPerWay
	rem := physPage % pagesPerWay
	return nand.PageAddr{
		Channel: way / f.geo.WaysPerChannel,
		Way:     way % f.geo.WaysPerChannel,
		Block:   rem / f.geo.PagesPerBlock,
		Page:    rem % f.geo.PagesPerBlock,
	}
}

func (f *FTL) physIndex(way, block, page int) int {
	return (way*f.geo.BlocksPerWay+block)*f.geo.PagesPerBlock + page
}

func (f *FTL) blockIndexOf(physPage int) int { return physPage / f.geo.PagesPerBlock }

// allocPage returns the next physical page on the given way, opening a fresh
// block from the free pool when the active block fills. When the pool is
// empty it attempts an emergency GC round before giving up.
func (f *FTL) allocPage(t sim.Time, way int) (int, sim.Time, error) {
	ab := &f.active[way]
	if ab.block < 0 || ab.nextPage >= f.geo.PagesPerBlock {
		if len(f.freeBlocks[way]) == 0 && !f.inGC {
			reclaimed, err := f.gcOnce(t, way)
			if err != nil {
				return 0, t, err
			}
			if !reclaimed {
				return 0, t, fmt.Errorf("ftl: way %d out of free blocks (device full)", way)
			}
		}
		if len(f.freeBlocks[way]) == 0 {
			return 0, t, fmt.Errorf("ftl: way %d out of free blocks", way)
		}
		// FIFO consumption rotates every free block through service, so
		// erases spread across the way instead of recycling one block.
		ab.block = f.freeBlocks[way][0]
		f.freeBlocks[way] = f.freeBlocks[way][1:]
		ab.nextPage = 0
	}
	p := f.physIndex(way, ab.block, ab.nextPage)
	ab.nextPage++
	return p, t, nil
}

// Write stores one logical page out-of-place and returns the program
// completion time. Data shorter than a page is zero-padded by the flash.
func (f *FTL) Write(t sim.Time, lpn int, data []byte) (sim.Time, error) {
	if lpn < 0 || lpn >= len(f.l2p) {
		return t, fmt.Errorf("ftl: logical page %d out of range [0,%d)", lpn, len(f.l2p))
	}
	f.stats.HostWrites.Inc()
	end, phys, err := f.program(t, data)
	if err != nil {
		return t, err
	}
	f.remap(lpn, phys)
	if err := f.maybeGC(t, f.wayOf(phys)); err != nil {
		return end, err
	}
	return end, nil
}

// program places a page on the way with the most erased capacity (ties
// broken by a rotating cursor, so balanced ways stripe round-robin) and
// programs it. Free-space-aware placement keeps any single way from filling
// with live data while others hold all the dead pages.
func (f *FTL) program(t sim.Time, data []byte) (sim.Time, int, error) {
	way, bestSlots := f.nextWay, -1
	for i := 0; i < f.geo.Ways(); i++ {
		w := (f.nextWay + i) % f.geo.Ways()
		if s := f.availableSlots(w); s > bestSlots {
			way, bestSlots = w, s
		}
	}
	f.nextWay = (way + 1) % f.geo.Ways()
	return f.programOnWay(t, way, data)
}

// maxProgramRetries bounds write redirection: a media failure retires the
// active block and redirects the write into a fresh one; after this many
// consecutive retirements the failure is reported as persistent.
const maxProgramRetries = 4

// programOnWay programs a page on a specific way. GC uses this to migrate a
// victim's live pages within the victim's own way, which guarantees each GC
// round frees at least the victim's dead-page count.
//
// A media failure retires the active block (grown bad block) and redirects
// the write into a freshly opened block. Power cuts and transient faults
// propagate untouched: neither indicts the block.
func (f *FTL) programOnWay(t sim.Time, way int, data []byte) (sim.Time, int, error) {
	for attempt := 0; ; attempt++ {
		phys, _, err := f.allocPage(t, way)
		if err != nil {
			return t, 0, err
		}
		end, err := f.flash.Program(t, f.addrOf(phys), data)
		if err == nil {
			return end, phys, nil
		}
		if errors.Is(err, fault.ErrPowerCut) || errors.Is(err, fault.ErrTransient) {
			return t, 0, err
		}
		f.stats.ProgramFaults.Inc()
		f.retireActive(way)
		if attempt >= maxProgramRetries {
			return t, 0, fmt.Errorf("ftl: persistent program failure on way %d: %w", way, err)
		}
	}
}

// retireActive marks the way's active block as grown-bad and closes it, so
// the next allocation opens a fresh block. Live pages already programmed in
// the retired block stay mapped and readable; they die naturally as they are
// overwritten or trimmed (the block is excluded from GC and reuse).
func (f *FTL) retireActive(way int) {
	ab := &f.active[way]
	if ab.block < 0 {
		return
	}
	f.bad[way*f.geo.BlocksPerWay+ab.block] = true
	f.stats.BadBlocks.Inc()
	ab.block = -1
}

// remap points lpn at phys, invalidating any prior mapping.
func (f *FTL) remap(lpn, phys int) {
	if old := f.l2p[lpn]; old != unmapped {
		f.p2l[old] = unmapped
		f.validCount[f.blockIndexOf(int(old))]--
	}
	f.l2p[lpn] = int32(phys)
	f.p2l[phys] = int32(lpn)
	f.validCount[f.blockIndexOf(phys)]++
	f.stats.MapUpdates.Inc()
}

// Read fetches a logical page. Unmapped pages read as zeros (like an
// unwritten LBA on a block SSD).
func (f *FTL) Read(t sim.Time, lpn int) ([]byte, sim.Time, error) {
	if lpn < 0 || lpn >= len(f.l2p) {
		return nil, t, fmt.Errorf("ftl: logical page %d out of range", lpn)
	}
	phys := f.l2p[lpn]
	if phys == unmapped {
		return make([]byte, f.geo.PageSize), t, nil
	}
	return f.flash.Read(t, f.addrOf(int(phys)))
}

// Trim drops the mapping of a logical page, freeing its physical page for GC.
func (f *FTL) Trim(lpn int) error {
	if lpn < 0 || lpn >= len(f.l2p) {
		return fmt.Errorf("ftl: logical page %d out of range", lpn)
	}
	if old := f.l2p[lpn]; old != unmapped {
		f.p2l[old] = unmapped
		f.validCount[f.blockIndexOf(int(old))]--
		f.l2p[lpn] = unmapped
	}
	return nil
}

// FreeBlocks reports the free-block count of every way.
func (f *FTL) FreeBlocks() []int {
	out := make([]int, f.geo.Ways())
	for w := range f.freeBlocks {
		out[w] = len(f.freeBlocks[w])
	}
	return out
}

// maybeGC reclaims blocks on a way whose free pool has run low, using a
// greedy victim policy (fewest valid pages first). A way whose data is all
// live simply stays low until overwrites create dead pages; that is not an
// error.
func (f *FTL) maybeGC(t sim.Time, way int) error {
	for len(f.freeBlocks[way]) < f.cfg.GCFreeBlockLow {
		reclaimed, err := f.gcOnce(t, way)
		if err != nil {
			return err
		}
		if !reclaimed {
			return nil
		}
	}
	return nil
}

// availableSlots reports how many erased pages the way can still program
// (free pool plus the remainder of the active block).
func (f *FTL) availableSlots(way int) int {
	slots := len(f.freeBlocks[way]) * f.geo.PagesPerBlock
	if ab := f.active[way]; ab.block >= 0 {
		slots += f.geo.PagesPerBlock - ab.nextPage
	}
	return slots
}

// gcOnce migrates the way's best victim block and erases it. It reports
// whether a block was reclaimed; no eligible victim (every block fully live,
// or migration would not fit in the remaining slots) is reported as false.
//
// Victim selection is greedy by valid-page count with wear-aware
// tie-breaking: among equally dead blocks the least-erased one is reclaimed
// first, spreading erases across the way.
func (f *FTL) gcOnce(t sim.Time, way int) (bool, error) {
	victim := -1
	best := int32(f.geo.PagesPerBlock) // require at least one dead page
	bestWear := 0
	activeBlk := f.active[way].block
	slots := int32(f.availableSlots(way))
	for b := 0; b < f.geo.BlocksPerWay; b++ {
		if b == activeBlk || f.bad[way*f.geo.BlocksPerWay+b] || f.isFree(way, b) {
			continue
		}
		v := f.validCount[way*f.geo.BlocksPerWay+b]
		if v > slots || v > best {
			continue
		}
		wear, err := f.flash.EraseCount(nand.BlockAddr{
			Channel: way / f.geo.WaysPerChannel,
			Way:     way % f.geo.WaysPerChannel,
			Block:   b,
		})
		if err != nil {
			return false, err
		}
		if v < best || (v == best && wear < bestWear) {
			best = v
			bestWear = wear
			victim = b
		}
	}
	if victim < 0 {
		return false, nil
	}
	f.inGC = true
	defer func() { f.inGC = false }()
	// Migrate live pages within the same way so reclamation is local.
	for p := 0; p < f.geo.PagesPerBlock; p++ {
		phys := f.physIndex(way, victim, p)
		lpn := f.p2l[phys]
		if lpn == unmapped {
			continue
		}
		data, _, err := f.flash.Read(t, f.addrOf(phys))
		if err != nil {
			return false, fmt.Errorf("ftl: GC read: %w", err)
		}
		_, newPhys, err := f.programOnWay(t, way, data)
		if err != nil {
			return false, fmt.Errorf("ftl: GC program: %w", err)
		}
		f.remap(int(lpn), newPhys)
		f.stats.GCWrites.Inc()
	}
	addr := nand.BlockAddr{
		Channel: way / f.geo.WaysPerChannel,
		Way:     way % f.geo.WaysPerChannel,
		Block:   victim,
	}
	if _, err := f.flash.Erase(t, addr); err != nil {
		if errors.Is(err, fault.ErrPowerCut) || errors.Is(err, fault.ErrTransient) {
			return false, fmt.Errorf("ftl: GC erase: %w", err)
		}
		// Erase media failure: retire the victim instead of returning it to
		// the free pool. Its live pages were already migrated, so reporting
		// the round as productive lets the caller try another victim.
		f.bad[way*f.geo.BlocksPerWay+victim] = true
		f.stats.BadBlocks.Inc()
		return true, nil
	}
	f.freeBlocks[way] = append(f.freeBlocks[way], victim)
	f.stats.GCErases.Inc()
	return true, nil
}

func (f *FTL) isFree(way, block int) bool {
	for _, b := range f.freeBlocks[way] {
		if b == block {
			return true
		}
	}
	return false
}
