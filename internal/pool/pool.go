// Package pool provides the allocation-recycling primitives behind the
// simulator's zero-allocation hot path: size-classed []byte free lists à la
// sync.Pool (but single-owner and deterministic — every simulation stack is
// driven from one goroutine at a time, so no locking or per-P sharding is
// needed) and a capacity-reusing helper for typed scratch slices.
//
// Ownership discipline: a buffer obtained from Get is owned by the caller
// until returned with Put; returning it transfers ownership back and the
// caller must not touch it again. Buffers are NOT zeroed on reuse — callers
// that expose buffer contents beyond what they wrote must clear them (the
// page buffer does; PRP staging does not need to, because gathers are bounded
// by the payload length).
package pool

const (
	// minClassBits..maxClassBits span 64 B .. 128 KiB in power-of-two
	// classes — from a small key buffer to two full driver staging buffers.
	minClassBits = 6
	maxClassBits = 17
	numClasses   = maxClassBits - minClassBits + 1
	// maxPerClass bounds retained buffers per class so a burst cannot pin
	// memory forever: 8 × 128 KiB = 1 MiB worst case per pool.
	maxPerClass = 8
)

// Bytes is a size-classed free list of byte slices. The zero value is ready
// to use. It is not safe for concurrent use; give each simulation stack its
// own pool (they are single-owner structures anyway).
type Bytes struct {
	free [numClasses][][]byte
	// Hits/Misses count steady-state reuse vs. fresh allocations, so tests
	// can assert the pool actually carries the hot path.
	Hits, Misses int64
}

// classFor returns the smallest class whose buffers hold n bytes, or -1 when
// n exceeds the largest class (such requests fall through to the allocator).
func classFor(n int) int {
	size := 1 << minClassBits
	for c := 0; c < numClasses; c++ {
		if n <= size {
			return c
		}
		size <<= 1
	}
	return -1
}

// Get returns a buffer of length n. Its capacity is the class size, so
// append-style growth within the class never reallocates. Requests larger
// than the top class allocate exactly n and are not recycled by Put.
func (p *Bytes) Get(n int) []byte {
	if n == 0 {
		return nil
	}
	c := classFor(n)
	if c < 0 {
		p.Misses++
		return make([]byte, n)
	}
	if l := len(p.free[c]); l > 0 {
		buf := p.free[c][l-1]
		p.free[c][l-1] = nil
		p.free[c] = p.free[c][:l-1]
		p.Hits++
		return buf[:n]
	}
	p.Misses++
	return make([]byte, n, 1<<(minClassBits+c))
}

// Put recycles a buffer for a later Get. The buffer is filed under the
// largest class its capacity covers; undersized or oversized buffers and
// full classes are dropped for the GC to take.
func (p *Bytes) Put(buf []byte) {
	c := capClass(cap(buf))
	if c < 0 || len(p.free[c]) >= maxPerClass {
		return
	}
	p.free[c] = append(p.free[c], buf[:cap(buf)])
}

// capClass returns the largest class a capacity of n fully covers, or -1.
func capClass(n int) int {
	if n < 1<<minClassBits || n > 1<<maxClassBits {
		return -1
	}
	c := 0
	for size := 1 << (minClassBits + 1); c < numClasses-1 && n >= size; size <<= 1 {
		c++
	}
	return c
}

// Reuse returns s resized to length n, reusing its capacity when possible.
// Contents are unspecified — it is scratch, not a copy-preserving resize.
// This is the typed-slice analog of Bytes for command/completion scratch
// ([]nvme.Command bursts, []uint64 PRP page lists, ...).
func Reuse[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}
