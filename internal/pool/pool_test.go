package pool

import "testing"

func TestGetPutRoundTrip(t *testing.T) {
	var p Bytes
	a := p.Get(100)
	if len(a) != 100 || cap(a) != 128 {
		t.Fatalf("Get(100): len %d cap %d, want 100/128", len(a), cap(a))
	}
	p.Put(a)
	b := p.Get(120)
	if len(b) != 120 || cap(b) != 128 {
		t.Fatalf("Get(120): len %d cap %d, want 120/128", len(b), cap(b))
	}
	if &a[0] != &b[0] {
		t.Fatal("Get after Put did not reuse the buffer")
	}
	if p.Hits != 1 || p.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", p.Hits, p.Misses)
	}
}

func TestGetZero(t *testing.T) {
	var p Bytes
	if buf := p.Get(0); buf != nil {
		t.Fatalf("Get(0) = %v, want nil", buf)
	}
}

func TestOversizedFallsThrough(t *testing.T) {
	var p Bytes
	n := (1 << maxClassBits) + 1
	buf := p.Get(n)
	if len(buf) != n {
		t.Fatalf("oversized Get: len %d", len(buf))
	}
	p.Put(buf) // dropped, not filed
	for c := range p.free {
		if len(p.free[c]) != 0 {
			t.Fatalf("oversized buffer filed under class %d", c)
		}
	}
}

func TestPutCapsPerClass(t *testing.T) {
	var p Bytes
	for i := 0; i < maxPerClass+4; i++ {
		p.Put(make([]byte, 64))
	}
	if got := len(p.free[0]); got != maxPerClass {
		t.Fatalf("class 0 holds %d buffers, want %d", got, maxPerClass)
	}
}

func TestCapClassFilesUnderLargestCovered(t *testing.T) {
	// A 200-byte-cap buffer fully covers the 128-byte class but not 256.
	var p Bytes
	p.Put(make([]byte, 200))
	if len(p.free[1]) != 1 {
		t.Fatalf("200-cap buffer not filed under the 128 B class: %v",
			func() []int {
				var ls []int
				for _, f := range p.free {
					ls = append(ls, len(f))
				}
				return ls
			}())
	}
	buf := p.Get(128)
	if cap(buf) < 128 {
		t.Fatalf("reused buffer cap %d < 128", cap(buf))
	}
}

func TestTinyPutDropped(t *testing.T) {
	var p Bytes
	p.Put(make([]byte, 10))
	for c := range p.free {
		if len(p.free[c]) != 0 {
			t.Fatal("sub-minimum buffer was filed")
		}
	}
}

func TestReuse(t *testing.T) {
	s := make([]int, 4, 16)
	r := Reuse(s, 10)
	if len(r) != 10 || cap(r) != 16 {
		t.Fatalf("Reuse kept-capacity: len %d cap %d", len(r), cap(r))
	}
	r2 := Reuse(r, 32)
	if len(r2) != 32 {
		t.Fatalf("Reuse grow: len %d", len(r2))
	}
}

func TestSteadyStateGetPutAllocationFree(t *testing.T) {
	var p Bytes
	p.Put(make([]byte, 4096))
	allocs := testing.AllocsPerRun(1000, func() {
		buf := p.Get(4000)
		p.Put(buf)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Get/Put allocates %.1f/op, want 0", allocs)
	}
}
