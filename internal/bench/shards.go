package bench

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"bandslim"
	"bandslim/internal/device"
	"bandslim/internal/driver"
	"bandslim/internal/workload"
)

// ShardPoint is one shard-scaling measurement, shaped for BENCH_shards.json.
type ShardPoint struct {
	Shards     int     `json:"shards"`
	Config     string  `json:"config"`
	Ops        int64   `json:"ops"`
	WallMillis float64 `json:"wall_ms"`
	WallKops   float64 `json:"wall_kops"`     // ops per wall-clock second / 1000
	SimUsPerOp float64 `json:"sim_us_per_op"` // aggregate simulated time / ops
	RespUs     float64 `json:"resp_us"`       // mean simulated write response
}

// ShardScalingJSON renders the points as indented JSON for BENCH_shards.json.
func ShardScalingJSON(points []ShardPoint) ([]byte, error) {
	return json.MarshalIndent(points, "", "  ")
}

// shardConfigs are the two ends of the paper's design space the scaling sweep
// compares: the stock KV-SSD and the full BandSlim stack.
var shardConfigs = []struct {
	name   string
	method bandslim.TransferMethod
	policy bandslim.PackingPolicy
}{
	{"Baseline", bandslim.Baseline, bandslim.Block},
	{"Backfill", bandslim.Adaptive, bandslim.BackfillPacking},
}

// runShardPoint drives one ShardedDB with one feeder goroutine per shard.
// Ops are pre-generated and pre-partitioned so the measured window contains
// only Put traffic; each feeder touches a single shard, so simulated results
// stay deterministic while wall-clock throughput scales with parallelism.
func runShardPoint(o Options, shards int, method bandslim.TransferMethod, policy bandslim.PackingPolicy) (bandslim.Stats, time.Duration, int64, error) {
	cfg := bandslim.DefaultConfig()
	cfg.Method = method
	cfg.Policy = policy
	dev := device.DefaultConfig()
	dev.Geometry = benchGeometry()
	cfg.Device = dev
	cfg.Thresholds = driver.DefaultThresholds()
	s, err := bandslim.OpenSharded(bandslim.ShardedConfig{Shards: shards, PerShard: cfg})
	if err != nil {
		return bandslim.Stats{}, 0, 0, err
	}
	defer s.Close()

	type op struct {
		key  []byte
		size int
	}
	gen := workload.NewWorkloadM(o.Scale, o.Seed)
	lanes := make([][]op, shards)
	var ops int64
	for {
		next, ok := gen.Next()
		if !ok {
			break
		}
		lane := s.ShardFor(next.Key)
		lanes[lane] = append(lanes[lane], op{key: next.Key, size: next.ValueSize})
		ops++
	}

	errs := make([]error, shards)
	var wg sync.WaitGroup
	start := time.Now()
	for i := range lanes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var buf []byte
			filler := workload.NewValueFiller(1)
			for _, p := range lanes[i] {
				buf = filler.Fill(buf, p.size)
				if err := s.Put(p.key, buf); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return bandslim.Stats{}, 0, 0, fmt.Errorf("bench: shards=%d: put: %w", shards, err)
		}
	}
	// Timing metrics reflect the steady-state run, as run() does; snapshot
	// before the drain flush.
	timing := s.Stats()
	if err := s.Flush(); err != nil {
		return bandslim.Stats{}, 0, 0, fmt.Errorf("bench: shards=%d: flush: %w", shards, err)
	}
	stats := s.Stats()
	stats.Host.WriteResp.Mean = timing.Host.WriteResp.Mean
	stats.Host.WriteResp.P99 = timing.Host.WriteResp.P99
	stats.Host.Elapsed = timing.Host.Elapsed
	stats.Host.ThroughputKops = timing.Host.ThroughputKops
	return stats, wall, ops, nil
}

// RunShardScaling sweeps the sharded front-end across shard counts for the
// Baseline and Adaptive+Backfill stacks. Simulated metrics (response,
// µs/op) are deterministic; wall-clock throughput depends on host cores and
// is what the sweep exists to show.
func RunShardScaling(o Options) (*Table, []ShardPoint, error) {
	o = o.normalized()
	t := &Table{
		ID: "shards", Title: "Shard Scaling: Wall-Clock Throughput & Simulated Cost",
		XLabel: "shards",
		Columns: []string{
			"Baseline_wall_kops", "Backfill_wall_kops",
			"Baseline_sim_us_op", "Backfill_sim_us_op",
		},
		Notes: []string{
			fmt.Sprintf("scale=%d ops per point, workload W(M), one feeder goroutine per shard", o.Scale),
			"wall_kops is host-machine dependent; sim_us_op is deterministic",
			"per-shard simulated clocks advance independently; sim_us_op = max shard clock / ops",
		},
	}
	var points []ShardPoint
	for _, n := range o.Shards {
		if n < 1 {
			return nil, nil, fmt.Errorf("bench: shard count must be >= 1, got %d", n)
		}
		var wallKops, simUs []float64
		for _, c := range shardConfigs {
			stats, wall, ops, err := runShardPoint(o, n, c.method, c.policy)
			if err != nil {
				return nil, nil, err
			}
			wk := float64(ops) / wall.Seconds() / 1000
			su := stats.Host.Elapsed.Micros() / float64(ops)
			wallKops = append(wallKops, wk)
			simUs = append(simUs, su)
			points = append(points, ShardPoint{
				Shards:     n,
				Config:     c.name,
				Ops:        ops,
				WallMillis: float64(wall.Microseconds()) / 1000,
				WallKops:   wk,
				SimUsPerOp: su,
				RespUs:     stats.Host.WriteResp.Mean.Micros(),
			})
		}
		t.AddRow(fmt.Sprintf("%d", n), append(wallKops, simUs...)...)
	}
	return t, points, nil
}
