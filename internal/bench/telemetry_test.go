package bench

import (
	"bytes"
	"testing"

	"bandslim"
	"bandslim/internal/sim"
)

func TestTelemetryRunDeterministic(t *testing.T) {
	capture := func() ([]byte, []byte, Progress) {
		tr, err := StartTelemetry(Options{Scale: 300, Seed: 7}, 2, 50*sim.Microsecond)
		if err != nil {
			t.Fatal(err)
		}
		defer tr.DB.Close()
		if err := tr.Wait(); err != nil {
			t.Fatal(err)
		}
		var prom bytes.Buffer
		if err := tr.DB.WritePrometheus(&prom); err != nil {
			t.Fatal(err)
		}
		series := tr.DB.Series()
		if series.Len() == 0 {
			t.Fatal("telemetry run recorded no samples")
		}
		var csv bytes.Buffer
		if err := bandslim.WriteSeriesCSV(&csv, series); err != nil {
			t.Fatal(err)
		}
		return prom.Bytes(), csv.Bytes(), tr.Progress()
	}
	p1, c1, prog := capture()
	p2, c2, _ := capture()
	if !bytes.Equal(p1, p2) {
		t.Fatal("same-seed telemetry runs produced different Prometheus exposition")
	}
	if !bytes.Equal(c1, c2) {
		t.Fatal("same-seed telemetry runs produced different series CSV")
	}
	if prog.OpsDone != prog.OpsTotal || prog.OpsDone == 0 {
		t.Fatalf("progress after Wait: done %d of %d", prog.OpsDone, prog.OpsTotal)
	}
	if prog.SimElapsedUs <= 0 || prog.PCIeBytes <= 0 {
		t.Fatalf("progress missing simulated figures: %+v", prog)
	}
}

func TestTelemetryDefaultsInterval(t *testing.T) {
	tr, err := StartTelemetry(Options{Scale: 50, Seed: 1}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.DB.Close()
	if err := tr.Wait(); err != nil {
		t.Fatal(err)
	}
	if s := tr.DB.Series(); s.Interval != DefaultMetricsInterval {
		t.Fatalf("series interval = %v, want default %v", s.Interval, DefaultMetricsInterval)
	}
}
