package bench

import (
	"fmt"

	"bandslim"
	"bandslim/internal/device"
	"bandslim/internal/driver"
)

// traceCaptureOps caps the captured workload: a trace is a readable window
// into the pipeline, not a benchmark, and each PUT emits on the order of ten
// events across the stack.
const traceCaptureOps = 512

// traceCaptureCapacity bounds each recorder ring well above what
// traceCaptureOps can emit, so nothing is evicted.
const traceCaptureCapacity = 1 << 16

// traceValueSizes spans every transfer decision the adaptive driver can
// make: inline piggybacking (under Threshold1), PRP page-unit DMA
// (over-threshold), hybrid page+inline-tail, and multi-page PRP.
var traceValueSizes = []int{32, 512, 4096 + 64, 8192}

// traceConfig is the paper's headline configuration — Adaptive transfer,
// Selective Packing with Backfilling, NAND on — so a capture shows the full
// command fetch → DMA → memcpy → NAND program chain.
func traceConfig() bandslim.Config {
	cfg := bandslim.DefaultConfig()
	cfg.Method = bandslim.Adaptive
	cfg.Policy = bandslim.BackfillPacking
	dev := device.DefaultConfig()
	dev.Geometry = benchGeometry()
	cfg.Device = dev
	cfg.Thresholds = driver.DefaultThresholds()
	return cfg
}

// traceKey derives the i-th deterministic 4-byte key.
func traceKey(i int) []byte {
	return []byte{byte(i >> 24), byte(i >> 16), byte(i >> 8), byte(i)}
}

// CaptureTrace runs a short deterministic adaptive-method workload with
// command-level tracing enabled and returns the event stream, merged across
// shards and ordered by simulated start time. Value sizes cycle through
// inline, PRP, hybrid, and multi-page transfers, and every key is read back,
// so the capture exercises each path the driver can take. shards <= 1 traces
// a plain DB; larger counts trace a ShardedDB with per-shard recorders.
func CaptureTrace(o Options, shards int) ([]bandslim.TraceEvent, error) {
	o = o.normalized()
	ops := o.Scale
	if ops > traceCaptureOps {
		ops = traceCaptureOps
	}
	if shards <= 1 {
		rec := bandslim.NewRecorder(traceCaptureCapacity)
		cfg := traceConfig()
		cfg.Tracer = rec
		db, err := bandslim.Open(cfg)
		if err != nil {
			return nil, err
		}
		defer db.Close()
		if err := traceWorkload(db, ops); err != nil {
			return nil, err
		}
		return rec.TraceEvents(), nil
	}
	sdb, err := bandslim.OpenSharded(bandslim.ShardedConfig{
		Shards:        shards,
		PerShard:      traceConfig(),
		TraceCapacity: traceCaptureCapacity,
	})
	if err != nil {
		return nil, err
	}
	defer sdb.Close()
	if err := traceWorkload(sdb, ops); err != nil {
		return nil, err
	}
	return sdb.TraceEvents(), nil
}

// traceKV is the subset of the front-end surface the capture workload needs;
// both DB and ShardedDB satisfy it.
type traceKV interface {
	Put(key, value []byte) error
	Get(key []byte) ([]byte, error)
	Flush() error
}

// traceWorkload writes ops values cycling through traceValueSizes, reads
// each back, and flushes so the capture ends with NAND programs.
func traceWorkload(kv traceKV, ops int) error {
	for i := 0; i < ops; i++ {
		size := traceValueSizes[i%len(traceValueSizes)]
		if err := kv.Put(traceKey(i), make([]byte, size)); err != nil {
			return fmt.Errorf("trace capture put %d: %w", i, err)
		}
	}
	for i := 0; i < ops; i++ {
		if _, err := kv.Get(traceKey(i)); err != nil {
			return fmt.Errorf("trace capture get %d: %w", i, err)
		}
	}
	return kv.Flush()
}
