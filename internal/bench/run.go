package bench

import (
	"fmt"

	"bandslim"
	"bandslim/internal/device"
	"bandslim/internal/driver"
	"bandslim/internal/nand"
	"bandslim/internal/pagebuf"
	"bandslim/internal/workload"
)

// Options scale and shape an experiment run.
type Options struct {
	// Scale is the number of operations per data point. The paper uses
	// 1 M (10 M for Fig. 11); the default keeps full-suite runtimes and
	// memory sane — traffic and NAND counts scale linearly, and simulated
	// response times are scale-invariant, so shapes are unaffected.
	Scale int
	// Seed feeds the workload generators.
	Seed uint64
	// Shards lists the shard counts the shard-scaling experiment sweeps.
	// Empty means the default sweep {1, 2, 4, 8}.
	Shards []int
}

// DefaultOptions returns the default scale (20k ops per point).
func DefaultOptions() Options { return Options{Scale: 20000, Seed: 42} }

func (o Options) normalized() Options {
	if o.Scale <= 0 {
		o.Scale = DefaultOptions().Scale
	}
	if len(o.Shards) == 0 {
		o.Shards = []int{1, 2, 4, 8}
	}
	return o
}

// benchGeometry keeps the real page size and Cosmos+ parallelism while
// bounding mapping-table memory.
func benchGeometry() nand.Geometry {
	return nand.Geometry{
		Channels:       4,
		WaysPerChannel: 8,
		BlocksPerWay:   128,
		PagesPerBlock:  128,
		PageSize:       16 * 1024,
	}
}

// stack opens a fresh simulated host+device pair.
func stack(method bandslim.TransferMethod, policy bandslim.PackingPolicy, nandOn bool) (*bandslim.DB, error) {
	cfg := bandslim.DefaultConfig()
	cfg.Method = method
	cfg.Policy = policy
	cfg.DisableNAND = !nandOn
	dev := device.DefaultConfig()
	dev.Geometry = benchGeometry()
	cfg.Device = dev
	cfg.Thresholds = driver.DefaultThresholds()
	return bandslim.Open(cfg)
}

// runResult carries one configuration's measurements.
type runResult struct {
	Stats        bandslim.Stats
	PayloadBytes int64
	Ops          int64
}

// run feeds a workload through a fresh stack.
func run(gen workload.Generator, method bandslim.TransferMethod, policy bandslim.PackingPolicy, nandOn bool) (runResult, error) {
	db, err := stack(method, policy, nandOn)
	if err != nil {
		return runResult{}, err
	}
	defer db.Close()
	var payload, ops int64
	var buf []byte
	filler := workload.NewValueFiller(1)
	for {
		op, ok := gen.Next()
		if !ok {
			break
		}
		buf = filler.Fill(buf, op.ValueSize)
		if err := db.Put(op.Key, buf); err != nil {
			return runResult{}, fmt.Errorf("bench: %s: put: %w", gen.Name(), err)
		}
		payload += int64(op.ValueSize)
		ops++
	}
	// Timing metrics (response, throughput) reflect the steady-state run;
	// the final flush below drains the open window and would skew them at
	// reduced scale.
	timing := db.Stats()
	if nandOn {
		// Count the buffered tail: the paper's NAND totals cover the whole
		// workload, and at reduced scale the open buffer entries and
		// MemTable are not negligible.
		if err := db.Flush(); err != nil {
			return runResult{}, fmt.Errorf("bench: %s: flush: %w", gen.Name(), err)
		}
	}
	s := db.Stats()
	s.Host.WriteResp.Mean = timing.Host.WriteResp.Mean
	s.Host.WriteResp.P99 = timing.Host.WriteResp.P99
	s.Host.Elapsed = timing.Host.Elapsed
	s.Host.ThroughputKops = timing.Host.ThroughputKops
	s.Device.FlushWaitTime = timing.Device.FlushWaitTime
	s.Device.MemcpyTime = timing.Device.MemcpyTime
	return runResult{Stats: s, PayloadBytes: payload, Ops: ops}, nil
}

// policyFor maps a paper packing-policy label to the pagebuf policy.
var policyFor = map[string]bandslim.PackingPolicy{
	"Block":    pagebuf.PolicyBlock,
	"All":      pagebuf.PolicyAll,
	"Select":   pagebuf.PolicySelective,
	"Backfill": pagebuf.PolicyBackfill,
}

// workloadsBCDM builds the four mixed workloads of §4.1.
func workloadsBCDM(o Options) []workload.Generator {
	return []workload.Generator{
		workload.NewWorkloadB(o.Scale, o.Seed),
		workload.NewWorkloadC(o.Scale, o.Seed),
		workload.NewWorkloadD(o.Scale, o.Seed),
		workload.NewWorkloadM(o.Scale, o.Seed),
	}
}

// workloadLabels are the paper's column names for Fig. 10/12.
var workloadLabels = []string{"W(B)", "W(C)", "W(D)", "W(M)"}

// gb converts bytes to the paper's GB-scale axis (decimal).
func gb(n int64) float64 { return float64(n) / 1e9 }

// mb converts bytes to MB.
func mb(n int64) float64 { return float64(n) / 1e6 }
