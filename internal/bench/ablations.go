package bench

import (
	"fmt"

	"bandslim"
	"bandslim/internal/device"
	"bandslim/internal/driver"
	"bandslim/internal/nand"
	"bandslim/internal/workload"
)

// This file holds ablation studies beyond the paper's figures: each isolates
// one design choice DESIGN.md calls out (transfer mechanism alternatives,
// DLT sizing, buffer-entry cap, adaptive coefficients, NAND parallelism) and
// quantifies its contribution.

// runWith feeds a workload through a stack built from an explicit config.
func runWith(gen workload.Generator, cfg bandslim.Config) (runResult, error) {
	db, err := bandslim.Open(cfg)
	if err != nil {
		return runResult{}, err
	}
	defer db.Close()
	var payload, ops int64
	var buf []byte
	filler := workload.NewValueFiller(1)
	for {
		op, ok := gen.Next()
		if !ok {
			break
		}
		buf = filler.Fill(buf, op.ValueSize)
		if err := db.Put(op.Key, buf); err != nil {
			return runResult{}, fmt.Errorf("bench: %s: put: %w", gen.Name(), err)
		}
		payload += int64(op.ValueSize)
		ops++
	}
	timing := db.Stats()
	if !cfg.DisableNAND {
		if err := db.Flush(); err != nil {
			return runResult{}, err
		}
	}
	s := db.Stats()
	s.Host.WriteResp.Mean = timing.Host.WriteResp.Mean
	s.Host.WriteResp.P99 = timing.Host.WriteResp.P99
	s.Host.Elapsed = timing.Host.Elapsed
	s.Host.ThroughputKops = timing.Host.ThroughputKops
	s.Device.FlushWaitTime = timing.Device.FlushWaitTime
	s.Device.MemcpyTime = timing.Device.MemcpyTime
	return runResult{Stats: s, PayloadBytes: payload, Ops: ops}, nil
}

func benchConfig(method bandslim.TransferMethod, policy bandslim.PackingPolicy, nandOn bool) bandslim.Config {
	cfg := bandslim.DefaultConfig()
	cfg.Method = method
	cfg.Policy = policy
	cfg.DisableNAND = !nandOn
	dev := device.DefaultConfig()
	dev.Geometry = benchGeometry()
	cfg.Device = dev
	cfg.Thresholds = driver.DefaultThresholds()
	return cfg
}

// RunAblationSGL compares PRP, SGL, and piggybacking across value sizes,
// reproducing the §2.5 argument for ruling SGL out: its setup cost only
// amortizes above the Linux 32 KB sgl_threshold, far beyond KVS value sizes.
func RunAblationSGL(o Options) (*Table, error) {
	o = o.normalized()
	t := &Table{
		ID: "ablation-sgl", Title: "Transfer Mechanisms: PRP vs SGL vs Piggyback (NAND off)",
		XLabel: "value size (B)",
		Columns: []string{
			"PRP_traffic_KB_op", "SGL_traffic_KB_op", "Piggy_traffic_KB_op",
			"PRP_resp_us", "SGL_resp_us", "Piggy_resp_us",
		},
		Notes: []string{
			fmt.Sprintf("scale=%d ops per point", o.Scale),
			"SGL beats PRP only above ~32KB (the Linux sgl_threshold, §2.5)",
		},
	}
	for _, size := range []int{64, 512, 4096, 8192, 16384, 32768, 49152} {
		var traffic, resp []float64
		for _, m := range []bandslim.TransferMethod{bandslim.Baseline, bandslim.SGL, bandslim.Piggyback} {
			res, err := runWith(workload.NewFillSeq(o.Scale, size), benchConfig(m, bandslim.Block, false))
			if err != nil {
				return nil, err
			}
			traffic = append(traffic, float64(res.Stats.PCIe.Bytes)/float64(res.Ops)/1024)
			resp = append(resp, res.Stats.Host.WriteResp.Mean.Micros())
		}
		t.AddRow(sizeLabel(size), append(traffic, resp...)...)
	}
	return t, nil
}

// RunAblationBatch compares Dotori/KV-CSD-style host-side batching against
// BandSlim's adaptive transfer on the production-like W(M): batching
// amortizes commands but leaves a volatile host buffer (the §2 data-loss
// argument) and pays device-side unpacking.
func RunAblationBatch(o Options) (*Table, error) {
	o = o.normalized()
	t := &Table{
		ID: "ablation-batch", Title: "Host-side Batching vs BandSlim (W(M), NAND on)",
		XLabel: "config",
		Columns: []string{
			"traffic_B_op", "mean_us_op", "Kops", "nand_pages", "at_risk_ops",
		},
		Notes: []string{
			fmt.Sprintf("scale=%d ops", o.Scale),
			"at_risk_ops: peak records buffered volatile on the host (lost on power failure)",
			"BandSlim rows are durable per-PUT (battery-backed device buffer)",
		},
	}
	for _, batch := range []int{8, 64, 256} {
		cfg := benchConfig(bandslim.Baseline, bandslim.AllPacking, true)
		db, err := bandslim.Open(cfg)
		if err != nil {
			return nil, err
		}
		b, err := db.NewBatcher(batch)
		if err != nil {
			db.Close()
			return nil, err
		}
		gen := workload.NewWorkloadM(o.Scale, o.Seed)
		filler := workload.NewValueFiller(1)
		var buf []byte
		ops := 0
		for {
			op, ok := gen.Next()
			if !ok {
				break
			}
			buf = filler.Fill(buf, op.ValueSize)
			if err := b.Put(op.Key, buf); err != nil {
				db.Close()
				return nil, err
			}
			ops++
		}
		if err := b.Flush(); err != nil {
			db.Close()
			return nil, err
		}
		timing := db.Stats()
		if err := db.Flush(); err != nil {
			db.Close()
			return nil, err
		}
		s := db.Stats()
		t.AddRow(fmt.Sprintf("batch=%d", batch),
			float64(s.PCIe.Bytes)/float64(ops),
			timing.Host.Elapsed.Micros()/float64(ops),
			float64(ops)/timing.Host.Elapsed.Seconds()/1000,
			float64(s.Device.NANDPageWrites),
			float64(b.Stats().PeakAtRiskOps),
		)
		db.Close()
	}
	// BandSlim reference rows.
	for _, row := range []struct {
		label  string
		method bandslim.TransferMethod
		policy bandslim.PackingPolicy
	}{
		{"bandslim(adaptive+backfill)", bandslim.Adaptive, bandslim.BackfillPacking},
		{"stock(baseline+block)", bandslim.Baseline, bandslim.Block},
	} {
		res, err := runWith(workload.NewWorkloadM(o.Scale, o.Seed), benchConfig(row.method, row.policy, true))
		if err != nil {
			return nil, err
		}
		t.AddRow(row.label,
			float64(res.Stats.PCIe.Bytes)/float64(res.Ops),
			res.Stats.Host.WriteResp.Mean.Micros(),
			res.Stats.Host.ThroughputKops,
			float64(res.Stats.Device.NANDPageWrites),
			0, // durable per PUT
		)
	}
	return t, nil
}

// RunAblationDLT sweeps the DMA Log Table capacity under W(B): a tiny DLT
// retires entries early, abandoning backfillable gaps (§3.3.3 caps it at 512
// to match the buffer entries).
func RunAblationDLT(o Options) (*Table, error) {
	o = o.normalized()
	t := &Table{
		ID: "ablation-dlt", Title: "DMA Log Table Capacity (Backfill, W(B), NAND on)",
		XLabel:  "DLT entries",
		Columns: []string{"nand_pages", "backfill_jumps", "Kops"},
		Notes:   []string{fmt.Sprintf("scale=%d ops", o.Scale), "paper sizes the DLT at 512 entries (§3.3.3)"},
	}
	for _, cap := range []int{2, 8, 64, 512} {
		cfg := benchConfig(bandslim.Adaptive, bandslim.BackfillPacking, true)
		cfg.Device.Buffer.DLTCap = cap
		res, err := runWith(workload.NewWorkloadB(o.Scale, o.Seed), cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", cap),
			float64(res.Stats.Device.NANDPageWrites),
			float64(res.Stats.Device.BackfillJumps),
			res.Stats.Host.ThroughputKops)
	}
	return t, nil
}

// RunAblationBuffer sweeps the NAND page buffer entry cap under the
// DMA-heavy W(C): fewer open entries force fragmented flushes (the
// constraint §4.3 blames for Backfill's W(C) dip).
func RunAblationBuffer(o Options) (*Table, error) {
	o = o.normalized()
	t := &Table{
		ID: "ablation-buffer", Title: "NAND Page Buffer Entry Cap (Backfill, W(C), NAND on)",
		XLabel:  "buffer entries",
		Columns: []string{"nand_pages", "forced_flushes", "resp_us"},
		Notes:   []string{fmt.Sprintf("scale=%d ops", o.Scale)},
	}
	for _, entries := range []int{8, 32, 128, 512} {
		cfg := benchConfig(bandslim.Adaptive, bandslim.BackfillPacking, true)
		cfg.Device.Buffer.MaxEntries = entries
		cfg.Device.Buffer.DLTCap = entries
		res, err := runWith(workload.NewWorkloadC(o.Scale, o.Seed), cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", entries),
			float64(res.Stats.Device.NANDPageWrites),
			float64(res.Stats.Device.ForcedFlushes),
			res.Stats.Host.WriteResp.Mean.Micros())
	}
	return t, nil
}

// RunAblationAlpha sweeps the α coefficient of the adaptive method on W(M):
// larger α favours piggybacking (less traffic, more trailing-command
// latency), the user-preference dial of §3.2.
func RunAblationAlpha(o Options) (*Table, error) {
	o = o.normalized()
	t := &Table{
		ID: "ablation-alpha", Title: "Adaptive Coefficient α: traffic vs response (W(M), NAND off)",
		XLabel:  "alpha",
		Columns: []string{"traffic_MB", "resp_us", "inline_fraction"},
		Notes: []string{
			fmt.Sprintf("scale=%d ops; threshold1=128B", o.Scale),
			"α>1 trades response time for PCIe traffic reduction (§3.2)",
		},
	}
	for _, alpha := range []float64{0.25, 0.5, 1, 2, 4, 8} {
		cfg := benchConfig(bandslim.Adaptive, bandslim.Block, false)
		thr := driver.DefaultThresholds()
		thr.Alpha = alpha
		cfg.Thresholds = thr
		res, err := runWith(workload.NewWorkloadM(o.Scale, o.Seed), cfg)
		if err != nil {
			return nil, err
		}
		inline := float64(res.Stats.Adaptive.Inline) / float64(res.Ops)
		t.AddRow(fmt.Sprintf("%.2f", alpha),
			mb(res.Stats.PCIe.Bytes),
			res.Stats.Host.WriteResp.Mean.Micros(),
			inline)
	}
	return t, nil
}

// RunAblationNAND sweeps the flash array's parallelism on a page-sized
// fillseq: write responses are bound by the vLog's flush pipeline, so
// channel/way counts shift the backpressure point.
func RunAblationNAND(o Options) (*Table, error) {
	o = o.normalized()
	t := &Table{
		ID: "ablation-nand", Title: "NAND Parallelism (fillseq 16 KiB values, NAND on)",
		XLabel:  "channels x ways",
		Columns: []string{"resp_us", "Kops", "way_count"},
		Notes: []string{
			fmt.Sprintf("scale=%d ops", o.Scale),
			"flat across geometries: the vLog flush pipeline issues one page at a",
			"time (sequential append), so tPROG — not array parallelism — bounds",
			"page-sized writes; this is why Fig. 4's responses are NAND-dominated",
		},
	}
	for _, g := range []struct{ ch, ways int }{{1, 1}, {2, 2}, {4, 4}, {4, 8}, {8, 8}} {
		cfg := benchConfig(bandslim.Baseline, bandslim.Block, true)
		cfg.Device.Geometry = nand.Geometry{
			Channels:       g.ch,
			WaysPerChannel: g.ways,
			BlocksPerWay:   256,
			PagesPerBlock:  128,
			PageSize:       16 * 1024,
		}
		res, err := runWith(workload.NewFillSeq(o.Scale, 16*1024), cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%dx%d", g.ch, g.ways),
			res.Stats.Host.WriteResp.Mean.Micros(),
			res.Stats.Host.ThroughputKops,
			float64(g.ch*g.ways))
	}
	return t, nil
}

// RunAblationPipeline explores lifting the passthrough serialization the
// paper blames for piggybacking's large-value collapse (§4.2): with burst
// submission, trailing transfer commands pay a pipeline interval instead of
// a full round trip, so inline transfer stays competitive far beyond the
// 128 B threshold — and MMIO traffic shrinks to two doorbells per PUT.
func RunAblationPipeline(o Options) (*Table, error) {
	o = o.normalized()
	t := &Table{
		ID: "ablation-pipeline", Title: "Serialized vs Pipelined Piggybacking (NAND off)",
		XLabel: "value size (B)",
		Columns: []string{
			"PRP_resp_us", "PiggySerial_resp_us", "PiggyPipe_resp_us", "PiggyPipe_mmio_B_op",
		},
		Notes: []string{
			fmt.Sprintf("scale=%d ops per point", o.Scale),
			"the paper's testbed serializes commands; pipelining is the future-work fix",
		},
	}
	for _, size := range []int{32, 128, 512, 1024, 2048, 4096} {
		base, err := runWith(workload.NewFillSeq(o.Scale, size), benchConfig(bandslim.Baseline, bandslim.Block, false))
		if err != nil {
			return nil, err
		}
		serial, err := runWith(workload.NewFillSeq(o.Scale, size), benchConfig(bandslim.Piggyback, bandslim.Block, false))
		if err != nil {
			return nil, err
		}
		pipeCfg := benchConfig(bandslim.Piggyback, bandslim.Block, false)
		pipeCfg.Pipelined = true
		pipe, err := runWith(workload.NewFillSeq(o.Scale, size), pipeCfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(sizeLabel(size),
			base.Stats.Host.WriteResp.Mean.Micros(),
			serial.Stats.Host.WriteResp.Mean.Micros(),
			pipe.Stats.Host.WriteResp.Mean.Micros(),
			float64(pipe.Stats.PCIe.MMIOBytes)/float64(pipe.Ops))
	}
	return t, nil
}

// RunScanPath measures range-scan behaviour per packing policy — an
// extension beyond the paper's point-query evaluation: densely packed vLogs
// (All/Backfill) touch fewer NAND pages per scanned value than page-unit
// packing (Block).
func RunScanPath(o Options) (*Table, error) {
	o = o.normalized()
	t := &Table{
		ID: "scan", Title: "Range Scan: NAND reads per scanned value (NAND on)",
		XLabel:  "policy",
		Columns: []string{"nand_reads_per_value", "scan_us_per_value"},
		Notes: []string{
			fmt.Sprintf("scale=%d pairs of 512 B, full scan", o.Scale),
			"dense packing amortizes one NAND page over ~30 values; Block reads a page per 4",
		},
	}
	for _, p := range []string{"Block", "All", "Backfill"} {
		cfg := benchConfig(bandslim.Adaptive, policyFor[p], true)
		db, err := bandslim.Open(cfg)
		if err != nil {
			return nil, err
		}
		gen := workload.NewFillSeq(o.Scale, 512)
		filler := workload.NewValueFiller(1)
		var buf []byte
		for {
			op, ok := gen.Next()
			if !ok {
				break
			}
			buf = filler.Fill(buf, op.ValueSize)
			if err := db.Put(op.Key, buf); err != nil {
				db.Close()
				return nil, err
			}
		}
		if err := db.Flush(); err != nil {
			db.Close()
			return nil, err
		}
		before := db.Stats()
		start := db.Now()
		it, err := db.NewIterator(nil)
		if err != nil {
			db.Close()
			return nil, err
		}
		scanned := 0
		for it.Valid() {
			scanned++
			it.Next()
		}
		if err := it.Err(); err != nil {
			db.Close()
			return nil, err
		}
		after := db.Stats()
		elapsed := db.Now().Sub(start)
		t.AddRow(p,
			float64(after.Device.NANDPageReads-before.Device.NANDPageReads)/float64(scanned),
			elapsed.Micros()/float64(scanned))
		db.Close()
	}
	return t, nil
}

// RunBreakdown decomposes the mean PUT response into its simulated
// components — wire transfer, device memcpy, and NAND flush backpressure —
// per packing policy on W(B). It makes visible *why* each policy wins or
// loses: Block drowns in flush waits, All pays memcpy, the selective
// policies pay neither.
func RunBreakdown(o Options) (*Table, error) {
	o = o.normalized()
	t := &Table{
		ID: "breakdown", Title: "PUT Response Breakdown by Packing Policy (W(B), NAND on)",
		XLabel:  "policy",
		Columns: []string{"total_us", "memcpy_us", "flushwait_us", "transfer_us"},
		Notes: []string{
			fmt.Sprintf("scale=%d ops; per-request averages", o.Scale),
			"transfer_us = total - memcpy - flushwait (wire + command round trips)",
		},
	}
	for _, p := range []string{"Block", "All", "Select", "Backfill"} {
		res, err := runWith(workload.NewWorkloadB(o.Scale, o.Seed), benchConfig(bandslim.Adaptive, policyFor[p], true))
		if err != nil {
			return nil, err
		}
		total := res.Stats.Host.WriteResp.Mean.Micros()
		memcpy := res.Stats.Device.MemcpyTime.Micros() / float64(res.Ops)
		flushWait := res.Stats.Device.FlushWaitTime.Micros() / float64(res.Ops)
		transfer := total - memcpy - flushWait
		if transfer < 0 {
			transfer = 0
		}
		t.AddRow(p, total, memcpy, flushWait, transfer)
	}
	return t, nil
}

// RunReadPath measures GET behaviour across value sizes — an extension
// beyond the paper's write-focused evaluation: read response splits into
// LSM index reads, vLog NAND reads, and the page-unit read DMA bloat that
// mirrors Problem #1 in the device-to-host direction.
func RunReadPath(o Options) (*Table, error) {
	o = o.normalized()
	t := &Table{
		ID: "read", Title: "GET Path: response and read amplification (Backfill, NAND on)",
		XLabel:  "value size (B)",
		Columns: []string{"get_resp_us", "read_traffic_B_op", "nand_reads_op"},
		Notes: []string{
			fmt.Sprintf("scale=%d pairs written, %d reads", o.Scale, o.Scale/2),
			"read DMA is page-unit: a 32B GET still moves 4 KiB device-to-host",
		},
	}
	for _, size := range []int{32, 512, 2048, 8192} {
		cfg := benchConfig(bandslim.Adaptive, bandslim.BackfillPacking, true)
		db, err := bandslim.Open(cfg)
		if err != nil {
			return nil, err
		}
		keys := make([][]byte, o.Scale)
		gen := workload.NewFillSeq(o.Scale, size)
		filler := workload.NewValueFiller(1)
		var buf []byte
		for i := 0; ; i++ {
			op, ok := gen.Next()
			if !ok {
				break
			}
			keys[i] = op.Key
			buf = filler.Fill(buf, op.ValueSize)
			if err := db.Put(op.Key, buf); err != nil {
				db.Close()
				return nil, err
			}
		}
		if err := db.Flush(); err != nil {
			db.Close()
			return nil, err
		}
		before := db.Stats()
		reads := o.Scale / 2
		for i := 0; i < reads; i++ {
			if _, err := db.Get(keys[(i*2654435761)%len(keys)]); err != nil {
				db.Close()
				return nil, err
			}
		}
		after := db.Stats()
		t.AddRow(sizeLabel(size),
			after.Host.ReadResp.Mean.Micros(),
			float64(after.PCIe.DMABytes-before.PCIe.DMABytes)/float64(reads),
			float64(after.Device.NANDPageReads-before.Device.NANDPageReads)/float64(reads))
		db.Close()
	}
	return t, nil
}
