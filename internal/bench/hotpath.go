package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"bandslim"
	"bandslim/internal/device"
	"bandslim/internal/driver"
	"bandslim/internal/workload"
)

// The hotpath experiment measures the simulator's wall-clock cost per
// operation — the price of simulating, not the simulated time itself — and
// proves the zero-allocation work: per-layer micro-benchmarks with allocation
// counts, plus the 4-shard mixed-size workload throughput in per-op and
// batched submission modes. Simulated metrics are untouched by these
// optimizations (the smoke golden file enforces byte-identical exports);
// wall-clock numbers are host-machine dependent, so the committed baseline
// records the machine it came from.
//
// Every micro point runs a FIXED iteration count rather than time-based
// auto-scaling: the LSM's compaction cost grows with total operations, so
// two runs are only comparable when they execute the same op count. The
// committed baseline was captured at the seed commit with the same counts.

// HotpathMicro is one micro-benchmark measurement.
type HotpathMicro struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
}

// HotpathWall is one wall-clock workload measurement.
type HotpathWall struct {
	Config   string  `json:"config"` // stack: Baseline/Block or Adaptive+Backfill
	Mode     string  `json:"mode"`   // per-op | batch
	Shards   int     `json:"shards"`
	Ops      int64   `json:"ops"`
	WallKops float64 `json:"wall_kops"`
}

// HotpathReport is the BENCH_hotpath.json payload: the seed-commit baseline
// alongside the current measurement, with headline speedups.
type HotpathReport struct {
	Scale   int                `json:"scale"`
	Seed    uint64             `json:"seed"`
	Before  HotpathResults     `json:"before"`
	After   HotpathResults     `json:"after"`
	Speedup map[string]float64 `json:"speedup"`
}

// HotpathResults groups one side of the before/after comparison.
type HotpathResults struct {
	Machine string         `json:"machine"`
	Micro   []HotpathMicro `json:"micro"`
	Wall    []HotpathWall  `json:"wall"`
}

// Fixed micro iteration counts, shared by the baseline capture and the live
// run.
const (
	itersPutInline   = 200000
	itersPutPRP      = 100000
	itersPutAdaptive = 200000
	itersGetHot      = 1000000
	itersGetCold     = 10000
	itersScan        = 500000
	itersBatch       = 200000
)

// hotpathBaseline pins the numbers measured at the seed commit (460734c,
// before the pooling/scratch-reuse work) on the reference machine with the
// iteration counts above and the same scale=40000 seed=42 4-shard workload
// the harness replays. Batched submission did not exist then, so the batch
// rows have no "before".
var hotpathBaseline = HotpathResults{
	Machine: "Intel(R) Xeon(R) Processor @ 2.10GHz, linux/amd64",
	Micro: []HotpathMicro{
		{Name: "put_inline_32B", Iters: itersPutInline, NsPerOp: 2362, AllocsPerOp: 13, BytesPerOp: 2602, OpsPerSec: 423370},
		{Name: "put_prp_4K", Iters: itersPutPRP, NsPerOp: 9424, AllocsPerOp: 13, BytesPerOp: 21940, OpsPerSec: 106112},
		{Name: "put_adaptive_mixgraph", Iters: itersPutAdaptive, NsPerOp: 3403, AllocsPerOp: 15, BytesPerOp: 3992, OpsPerSec: 293858},
		{Name: "get_hot", Iters: itersGetHot, NsPerOp: 30499, AllocsPerOp: 25, BytesPerOp: 131400, OpsPerSec: 32788},
		{Name: "get_cold", Iters: itersGetCold, NsPerOp: 113690, AllocsPerOp: 856, BytesPerOp: 299433, OpsPerSec: 8796},
		{Name: "scan", Iters: itersScan, NsPerOp: 31014, AllocsPerOp: 28, BytesPerOp: 131651, OpsPerSec: 32244},
	},
	Wall: []HotpathWall{
		{Config: "Baseline", Mode: "per-op", Shards: 4, Ops: 40000, WallKops: 102.30},
		{Config: "Backfill", Mode: "per-op", Shards: 4, Ops: 40000, WallKops: 448.37},
	},
}

// HotpathJSON renders the report as indented JSON for BENCH_hotpath.json.
func HotpathJSON(r *HotpathReport) ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// measure times n iterations of op (setup excluded), counting allocations on
// the calling goroutine's heap via runtime.MemStats.
func measure(name string, n int, setup func() (op func(i int) error, done func(), err error)) (HotpathMicro, error) {
	op, done, err := setup()
	if err != nil {
		return HotpathMicro{}, fmt.Errorf("bench: hotpath %s: %w", name, err)
	}
	defer done()
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := op(i); err != nil {
			return HotpathMicro{}, fmt.Errorf("bench: hotpath %s: %w", name, err)
		}
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	ns := float64(wall.Nanoseconds()) / float64(n)
	ops := 0.0
	if ns > 0 {
		ops = 1e9 / ns
	}
	return HotpathMicro{
		Name:        name,
		Iters:       n,
		NsPerOp:     ns,
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(n),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(n),
		OpsPerSec:   ops,
	}, nil
}

func hotpathDB(method bandslim.TransferMethod, policy bandslim.PackingPolicy) (*bandslim.DB, error) {
	cfg := bandslim.DefaultConfig()
	cfg.Method = method
	cfg.Policy = policy
	return bandslim.Open(cfg)
}

// runHotpathMicro replays the bench_test.go micro-benchmark bodies plus the
// batched-submission variants at fixed iteration counts.
func runHotpathMicro() ([]HotpathMicro, error) {
	benches := []struct {
		name  string
		n     int
		setup func() (func(i int) error, func(), error)
	}{
		{"put_inline_32B", itersPutInline, func() (func(i int) error, func(), error) {
			db, err := hotpathDB(bandslim.Piggyback, bandslim.BackfillPacking)
			if err != nil {
				return nil, nil, err
			}
			v := make([]byte, 32)
			key := make([]byte, 4)
			return func(i int) error {
				key[0], key[1], key[2], key[3] = byte(i), byte(i>>8), byte(i>>16), byte(i>>24)
				return db.Put(key, v)
			}, func() { db.Close() }, nil
		}},
		{"put_prp_4K", itersPutPRP, func() (func(i int) error, func(), error) {
			db, err := hotpathDB(bandslim.Baseline, bandslim.Block)
			if err != nil {
				return nil, nil, err
			}
			v := make([]byte, 4096)
			key := make([]byte, 4)
			return func(i int) error {
				key[0], key[1], key[2], key[3] = byte(i), byte(i>>8), byte(i>>16), byte(i>>24)
				return db.Put(key, v)
			}, func() { db.Close() }, nil
		}},
		{"put_adaptive_mixgraph", itersPutAdaptive, func() (func(i int) error, func(), error) {
			db, err := hotpathDB(bandslim.Adaptive, bandslim.BackfillPacking)
			if err != nil {
				return nil, nil, err
			}
			gen := workload.NewWorkloadM(itersPutAdaptive+1, 3)
			filler := workload.NewValueFiller(1)
			var buf []byte
			return func(i int) error {
				op, ok := gen.Next()
				if !ok {
					return fmt.Errorf("generator exhausted")
				}
				buf = filler.Fill(buf, op.ValueSize)
				return db.Put(op.Key, buf)
			}, func() { db.Close() }, nil
		}},
		{"get_hot", itersGetHot, func() (func(i int) error, func(), error) {
			db, err := hotpathDB(bandslim.Adaptive, bandslim.BackfillPacking)
			if err != nil {
				return nil, nil, err
			}
			keys := make([][]byte, 256)
			for i := range keys {
				keys[i] = []byte(fmt.Sprintf("k%03d", i))
				if err := db.Put(keys[i], make([]byte, 64)); err != nil {
					db.Close()
					return nil, nil, err
				}
			}
			return func(i int) error {
				_, err := db.Get(keys[i%len(keys)])
				return err
			}, func() { db.Close() }, nil
		}},
		{"get_cold", itersGetCold, func() (func(i int) error, func(), error) {
			db, err := hotpathDB(bandslim.Adaptive, bandslim.BackfillPacking)
			if err != nil {
				return nil, nil, err
			}
			const n = 8192
			keys := make([][]byte, n)
			for i := range keys {
				keys[i] = []byte(fmt.Sprintf("cold%05d", i))
				if err := db.Put(keys[i], make([]byte, 64)); err != nil {
					db.Close()
					return nil, nil, err
				}
			}
			if err := db.Flush(); err != nil {
				db.Close()
				return nil, nil, err
			}
			return func(i int) error {
				_, err := db.Get(keys[(i*2654435761)%n])
				return err
			}, func() { db.Close() }, nil
		}},
		{"scan", itersScan, func() (func(i int) error, func(), error) {
			db, err := hotpathDB(bandslim.Adaptive, bandslim.BackfillPacking)
			if err != nil {
				return nil, nil, err
			}
			for i := 0; i < 4096; i++ {
				if err := db.Put([]byte(fmt.Sprintf("s%05d", i)), make([]byte, 32)); err != nil {
					db.Close()
					return nil, nil, err
				}
			}
			it, err := db.NewIterator(nil)
			if err != nil {
				db.Close()
				return nil, nil, err
			}
			return func(i int) error {
				if !it.Valid() {
					var err error
					it, err = db.NewIterator(nil)
					if err != nil {
						return err
					}
				}
				it.Next()
				return it.Err()
			}, func() { db.Close() }, nil
		}},
		{"put_batch_128x64B", itersBatch, func() (func(i int) error, func(), error) {
			db, err := hotpathDB(bandslim.Adaptive, bandslim.BackfillPacking)
			if err != nil {
				return nil, nil, err
			}
			const batch = 128
			keys := make([][]byte, batch)
			vals := make([][]byte, batch)
			for i := range keys {
				keys[i] = make([]byte, 8)
				vals[i] = make([]byte, 64)
			}
			// One iteration = one record; a full batch ships every 128.
			return func(i int) error {
				j := i % batch
				k := keys[j]
				k[0], k[1], k[2], k[3] = byte(i), byte(i>>8), byte(i>>16), byte(i>>24)
				if j < batch-1 {
					return nil
				}
				return db.PutBatch(keys, vals)
			}, func() { db.Close() }, nil
		}},
		{"get_batch_128x64B", itersBatch, func() (func(i int) error, func(), error) {
			db, err := hotpathDB(bandslim.Adaptive, bandslim.BackfillPacking)
			if err != nil {
				return nil, nil, err
			}
			const batch = 128
			keys := make([][]byte, batch)
			for i := range keys {
				keys[i] = []byte(fmt.Sprintf("gb%04d", i))
				if err := db.Put(keys[i], make([]byte, 64)); err != nil {
					db.Close()
					return nil, nil, err
				}
			}
			var vals [][]byte
			return func(i int) error {
				if i%batch != batch-1 {
					return nil
				}
				var err error
				vals, err = db.GetBatch(keys, vals)
				return err
			}, func() { db.Close() }, nil
		}},
	}
	out := make([]HotpathMicro, 0, len(benches))
	for _, bm := range benches {
		m, err := measure(bm.name, bm.n, bm.setup)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// runHotpathWall drives the 4-shard mixed-size workload W(M) in per-op and
// batched modes over both headline stacks.
func runHotpathWall(o Options) ([]HotpathWall, error) {
	var out []HotpathWall
	for _, c := range shardConfigs {
		_, wall, ops, err := runShardPoint(o, 4, c.method, c.policy)
		if err != nil {
			return nil, err
		}
		out = append(out, HotpathWall{
			Config: c.name, Mode: "per-op", Shards: 4, Ops: ops,
			WallKops: float64(ops) / wall.Seconds() / 1000,
		})
	}
	for _, c := range shardConfigs {
		ops, wall, err := runShardBatchPoint(o, 4, c.method, c.policy)
		if err != nil {
			return nil, err
		}
		out = append(out, HotpathWall{
			Config: c.name, Mode: "batch", Shards: 4, Ops: ops,
			WallKops: float64(ops) / wall.Seconds() / 1000,
		})
	}
	return out, nil
}

// runShardBatchPoint replays the same pre-generated workload through the
// batched submission fast path: records ship through ShardedDB.PutBatch in
// fixed-size chunks, which partitions each chunk into per-shard lanes and
// fans bulk OpKVBatchWrite commands out to the shard workers in parallel.
func runShardBatchPoint(o Options, shards int, method bandslim.TransferMethod, policy bandslim.PackingPolicy) (int64, time.Duration, error) {
	s, err := openShardedStack(shards, method, policy)
	if err != nil {
		return 0, 0, err
	}
	defer s.Close()

	gen := workload.NewWorkloadM(o.Scale, o.Seed)
	filler := workload.NewValueFiller(1)
	var keys, vals [][]byte
	for {
		next, ok := gen.Next()
		if !ok {
			break
		}
		keys = append(keys, next.Key)
		vals = append(vals, filler.Fill(nil, next.ValueSize))
	}
	ops := int64(len(keys))

	const chunk = 1024
	start := time.Now()
	for at := 0; at < len(keys); at += chunk {
		end := at + chunk
		if end > len(keys) {
			end = len(keys)
		}
		if err := s.PutBatch(keys[at:end], vals[at:end]); err != nil {
			return 0, 0, fmt.Errorf("bench: batch shards=%d: %w", shards, err)
		}
	}
	wall := time.Since(start)
	return ops, wall, nil
}

// openShardedStack opens a ShardedDB with the bench geometry, matching
// runShardPoint's stack so per-op and batch rows compare like for like.
func openShardedStack(shards int, method bandslim.TransferMethod, policy bandslim.PackingPolicy) (*bandslim.ShardedDB, error) {
	cfg := bandslim.DefaultConfig()
	cfg.Method = method
	cfg.Policy = policy
	dev := device.DefaultConfig()
	dev.Geometry = benchGeometry()
	cfg.Device = dev
	cfg.Thresholds = driver.DefaultThresholds()
	return bandslim.OpenSharded(bandslim.ShardedConfig{Shards: shards, PerShard: cfg})
}

// hostMachine labels the machine the "after" numbers came from.
func hostMachine() string {
	return fmt.Sprintf("%s/%s, %d CPUs", runtime.GOOS, runtime.GOARCH, runtime.NumCPU())
}

// RunHotpath measures the current tree against the committed seed baseline
// and returns the BENCH_hotpath.json report.
func RunHotpath(o Options) (*HotpathReport, error) {
	o = o.normalized()
	wall, err := runHotpathWall(o)
	if err != nil {
		return nil, err
	}
	micro, err := runHotpathMicro()
	if err != nil {
		return nil, err
	}
	after := HotpathResults{
		Machine: hostMachine(),
		Micro:   micro,
		Wall:    wall,
	}
	r := &HotpathReport{
		Scale:   o.Scale,
		Seed:    o.Seed,
		Before:  hotpathBaseline,
		After:   after,
		Speedup: map[string]float64{},
	}
	// Headline speedups: per-name micro ratios plus the 4-shard mixed
	// workload in both modes against the per-op baseline.
	before := map[string]HotpathMicro{}
	for _, m := range r.Before.Micro {
		before[m.Name] = m
	}
	for _, m := range after.Micro {
		if b, ok := before[m.Name]; ok && m.NsPerOp > 0 {
			r.Speedup["micro_"+m.Name] = b.NsPerOp / m.NsPerOp
		}
	}
	baseWall := map[string]float64{}
	for _, w := range r.Before.Wall {
		baseWall[w.Config] = w.WallKops
	}
	for _, w := range after.Wall {
		if b, ok := baseWall[w.Config]; ok && b > 0 {
			r.Speedup["wall_"+w.Config+"_"+w.Mode] = w.WallKops / b
		}
	}
	return r, nil
}
