package bench

import (
	"math"
	"strings"
	"testing"
)

// fast options keep the suite quick; shapes are scale-invariant.
func fast() Options { return Options{Scale: 2000, Seed: 42} }

func TestTableHelpers(t *testing.T) {
	tb := &Table{ID: "x", Title: "T", XLabel: "size", Columns: []string{"a", "b"}}
	tb.AddRow("1", 1.5, 2)
	tb.AddRow("2", 3, 4)
	col, err := tb.Column("b")
	if err != nil || len(col) != 2 || col[1] != 4 {
		t.Fatalf("Column = %v, %v", col, err)
	}
	if _, err := tb.Column("nope"); err == nil {
		t.Fatal("missing column accepted")
	}
	v, err := tb.Cell("2", "a")
	if err != nil || v != 3 {
		t.Fatalf("Cell = %v, %v", v, err)
	}
	if _, err := tb.Cell("9", "a"); err == nil {
		t.Fatal("missing row accepted")
	}
	if _, err := tb.Cell("1", "zz"); err == nil {
		t.Fatal("missing cell column accepted")
	}
	out := tb.Format()
	if !strings.Contains(out, "== x: T ==") || !strings.Contains(out, "1.50") {
		t.Fatalf("Format output:\n%s", out)
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "size,a,b\n1,1.5,2\n") {
		t.Fatalf("CSV output:\n%s", csv)
	}
}

func TestTableAddRowMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched row did not panic")
		}
	}()
	tb := &Table{Columns: []string{"a"}}
	tb.AddRow("x", 1, 2)
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("fig99", fast()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	ids := Experiments()
	if len(ids) != 25 {
		t.Fatalf("Experiments() = %v", ids)
	}
}

// Fig. 3(b): the TAF must match the paper's arithmetic exactly.
func TestFig3TAFMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("bench experiment")
	}
	_, tafs, err := RunFig3(Options{Scale: 500})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"32": 130.0, "64": 65.0, "128": 32.5, "256": 16.25, "512": 8.125, "1K": 4.0625,
	}
	for label, w := range want {
		got, err := tafs.Cell(label, "TAF")
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-w) > 1e-9 {
			t.Errorf("TAF(%s) = %v, want %v", label, got, w)
		}
	}
}

// Fig. 3(a): traffic is flat within each 4 KiB band and doubles across the
// 4K→5K boundary; responses cascade the same way.
func TestFig3TrafficCascades(t *testing.T) {
	if testing.Short() {
		t.Skip("bench experiment")
	}
	a, _, err := RunFig3(Options{Scale: 500})
	if err != nil {
		t.Fatal(err)
	}
	traffic, err := a.Column("traffic_GB")
	if err != nil {
		t.Fatal(err)
	}
	// Rows are 1..16 KB. Flat 1-4K:
	for i := 1; i < 4; i++ {
		if traffic[i] != traffic[0] {
			t.Fatalf("traffic not flat in first band: %v", traffic[:4])
		}
	}
	// Double at the boundary (command bytes are negligible but present).
	ratio := traffic[4] / traffic[0]
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("4K->5K traffic ratio %.3f, want ~2", ratio)
	}
	resp, _ := a.Column("response_us")
	if !(resp[4] > resp[3] && resp[8] > resp[7] && resp[12] > resp[11]) {
		t.Fatalf("response does not cascade at page boundaries: %v", resp)
	}
}

// Fig. 4: NAND write responses are much larger than transfer responses, and
// the WAF tracks the TAF (§2.4).
func TestFig4WAFTracksTAF(t *testing.T) {
	if testing.Short() {
		t.Skip("bench experiment")
	}
	a, wafs, err := RunFig4(Options{Scale: 500})
	if err != nil {
		t.Fatal(err)
	}
	waf32, err := wafs.Cell("32", "WAF")
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 129.9 (TAF 130 plus compaction noise). Accept 120–140.
	if waf32 < 120 || waf32 > 140 {
		t.Fatalf("WAF(32) = %v, want ~130", waf32)
	}
	resp, _ := a.Column("response_us")
	// 16 KiB writes are NAND-program bound: >10x the ~28us transfer time.
	if resp[15] < 280 {
		t.Fatalf("16K write response %v us; want NAND-dominated (>280)", resp[15])
	}
}

// Fig. 8: the headline traffic reduction and the response crossovers.
func TestFig8Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("bench experiment")
	}
	tb, err := RunFig8(fast())
	if err != nil {
		t.Fatal(err)
	}
	bt, _ := tb.Column("Baseline_traffic_GB")
	pt, _ := tb.Column("Piggyback_traffic_GB")
	br, _ := tb.Column("Baseline_resp_us")
	pr, _ := tb.Column("Piggyback_resp_us")
	// (1) ≥97.9% traffic reduction for 4–32 B (rows 0..3).
	for i := 0; i < 4; i++ {
		red := 1 - pt[i]/bt[i]
		if red < 0.979 {
			t.Errorf("row %d: traffic reduction %.4f < 0.979", i, red)
		}
	}
	// (2) Piggyback response ≈ half of baseline at ≤32 B.
	for i := 0; i < 4; i++ {
		if r := pr[i] / br[i]; r < 0.35 || r > 0.6 {
			t.Errorf("row %d: response ratio %.3f, want ~0.5", i, r)
		}
	}
	// (3) ≈ equal at 64 B (row 4), worse from 128 B (row 5+).
	if r := pr[4] / br[4]; r < 0.85 || r > 1.15 {
		t.Errorf("64B response ratio %.3f, want ~1", r)
	}
	for i := 5; i < len(pr); i++ {
		if pr[i] <= br[i] {
			t.Errorf("row %d: piggyback response %.1f not worse than baseline %.1f", i, pr[i], br[i])
		}
	}
	// (4) Piggyback traffic approaches baseline by 2K and exceeds it at 4K.
	if pt[9] >= bt[9] {
		t.Errorf("2K: piggyback traffic %.4f already exceeds baseline %.4f", pt[9], bt[9])
	}
	if pt[9] < 0.5*bt[9] {
		t.Errorf("2K: piggyback traffic %.4f not approaching baseline %.4f", pt[9], bt[9])
	}
	if pt[10] <= bt[10] {
		t.Errorf("4K: piggyback traffic %.4f does not exceed baseline %.4f", pt[10], bt[10])
	}
}

// Fig. 9: hybrid is the traffic optimum for small tails and its response
// stays within a few percent of baseline for tails ≤ 64 B.
func TestFig9Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("bench experiment")
	}
	tb, err := RunFig9(fast())
	if err != nil {
		t.Fatal(err)
	}
	bt, _ := tb.Column("Baseline_traffic_GB")
	pt, _ := tb.Column("Piggyback_traffic_GB")
	ht, _ := tb.Column("Hybrid_traffic_GB")
	br, _ := tb.Column("Baseline_resp_us")
	hr, _ := tb.Column("Hybrid_resp_us")
	// Hybrid traffic ≈ half of baseline for small tails, and the minimum of
	// the three up to 2K tails.
	for i := 0; i <= 9; i++ {
		if ht[i] >= bt[i] || ht[i] > pt[i]+1e-12 {
			t.Errorf("tail row %d: hybrid %.4f not optimal (base %.4f, piggy %.4f)", i, ht[i], bt[i], pt[i])
		}
	}
	if r := ht[0] / bt[0]; r > 0.55 {
		t.Errorf("4B tail: hybrid/baseline traffic %.3f, want ~0.5", r)
	}
	// Response within ~5% of baseline while the tail fits one transfer
	// command (rows 0..3 = tails 4..32 B); modest lag beyond.
	for i := 0; i <= 3; i++ {
		if r := hr[i] / br[i]; r > 1.05 {
			t.Errorf("tail row %d: hybrid response ratio %.3f > 1.05", i, r)
		}
	}
	if r := hr[4] / br[4]; r > 1.5 {
		t.Errorf("64B tail: hybrid response ratio %.3f > 1.5", r)
	}
	// Piggyback is far worse in response at over-page sizes.
	pr, _ := tb.Column("Piggyback_resp_us")
	if pr[0] < 5*br[0] {
		t.Errorf("piggyback response %.1f not clearly worse than baseline %.1f", pr[0], br[0])
	}
}

// Fig. 10: adaptive wins throughput in every workload; piggyback wins
// traffic; piggyback beats baseline response on the real-world W(M); MMIO
// explodes for piggyback under large values.
func TestFig10Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("bench experiment")
	}
	tables, err := RunFig10(fast())
	if err != nil {
		t.Fatal(err)
	}
	resp, thr, traf, mmio := tables[0], tables[1], tables[2], tables[3]
	for _, w := range workloadLabels {
		at, _ := thr.Cell("Adaptive", w)
		bt, _ := thr.Cell("Baseline", w)
		pt, _ := thr.Cell("Piggyback", w)
		if at < bt || at < pt {
			t.Errorf("%s: adaptive throughput %.1f not best (base %.1f, piggy %.1f)", w, at, bt, pt)
		}
		ptr, _ := traf.Cell("Piggyback", w)
		btr, _ := traf.Cell("Baseline", w)
		atr, _ := traf.Cell("Adaptive", w)
		if ptr >= btr || ptr > atr {
			t.Errorf("%s: piggyback traffic %.4f not lowest", w, ptr)
		}
	}
	// W(M): piggyback response beats baseline (paper: ~22% better).
	pm, _ := resp.Cell("Piggyback", "W(M)")
	bm, _ := resp.Cell("Baseline", "W(M)")
	if pm >= bm {
		t.Errorf("W(M): piggyback response %.2f not better than baseline %.2f", pm, bm)
	}
	// W(C): piggyback response collapses (paper: adaptive ~13x piggyback
	// throughput).
	pc, _ := thr.Cell("Piggyback", "W(C)")
	ac, _ := thr.Cell("Adaptive", "W(C)")
	if ac < 5*pc {
		t.Errorf("W(C): adaptive %.1f not ≫ piggyback %.1f", ac, pc)
	}
	// MMIO: piggyback ≫ baseline in W(C); baseline constant across
	// workloads.
	pmm, _ := mmio.Cell("Piggyback", "W(C)")
	bmm, _ := mmio.Cell("Baseline", "W(C)")
	if pmm < 10*bmm {
		t.Errorf("W(C): piggyback MMIO %.4f not ≫ baseline %.4f", pmm, bmm)
	}
	b0, _ := mmio.Cell("Baseline", "W(B)")
	b1, _ := mmio.Cell("Baseline", "W(M)")
	if b0 != b1 {
		t.Errorf("baseline MMIO varies across workloads: %v vs %v", b0, b1)
	}
	// Headline: W(M) piggyback traffic reduction vs baseline ≥ 90%
	// (paper: 97.9% — our mixgraph approximation lands close).
	pmt, _ := traf.Cell("Piggyback", "W(M)")
	bmt, _ := traf.Cell("Baseline", "W(M)")
	if red := 1 - pmt/bmt; red < 0.90 {
		t.Errorf("W(M) piggyback traffic reduction %.4f < 0.90", red)
	}
}

// Fig. 11: fine-grained packing slashes NAND I/O ≥98% for ≤32 B values and
// response follows.
func TestFig11Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("bench experiment")
	}
	tb, err := RunFig11(fast())
	if err != nil {
		t.Fatal(err)
	}
	bn, _ := tb.Column("Baseline_nand_io")
	pn, _ := tb.Column("Packing_nand_io")
	ppn, _ := tb.Column("PiggyPack_nand_io")
	br, _ := tb.Column("Baseline_resp_us")
	pr, _ := tb.Column("Packing_resp_us")
	ppr, _ := tb.Column("PiggyPack_resp_us")
	for i := 0; i < 4; i++ { // 4..32 B
		if red := 1 - pn[i]/bn[i]; red < 0.98 {
			t.Errorf("row %d: packing NAND reduction %.4f < 0.98 (paper: 98.1%%)", i, red)
		}
		if red := 1 - ppn[i]/bn[i]; red < 0.98 {
			t.Errorf("row %d: piggy+pack NAND reduction %.4f < 0.98", i, red)
		}
		if pr[i] >= br[i]*0.6 {
			t.Errorf("row %d: packing response %.1f not ≪ baseline %.1f", i, pr[i], br[i])
		}
		if ppr[i] >= pr[i] {
			t.Errorf("row %d: piggy+pack response %.1f not below packing %.1f", i, ppr[i], pr[i])
		}
	}
	// Piggy+Pack response blows up with trailing commands and overtakes the
	// NAND-bound baseline by 1 KiB (row 8), as the paper's Fig. 11(b) shows.
	if ppr[8] < br[8] {
		t.Errorf("1K: piggy+pack response %.1f not above baseline %.1f", ppr[8], br[8])
	}
	if ppr[8] <= ppr[5] {
		t.Errorf("piggy+pack response not rising with size: %.1f at 128B vs %.1f at 1K", ppr[5], ppr[8])
	}
}

// Fig. 12: the packing-policy orderings of §4.3.
func TestFig12Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("bench experiment")
	}
	tables, err := RunFig12(Options{Scale: 6000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	_, thr, nandIO, memcpy := tables[0], tables[1], tables[2], tables[3]
	// Block is the worst throughput in every workload.
	for _, w := range workloadLabels {
		blk, _ := thr.Cell("Block", w)
		for _, p := range []string{"All", "Select", "Backfill"} {
			v, _ := thr.Cell(p, w)
			if v <= blk {
				t.Errorf("%s: %s throughput %.1f not above Block %.1f", w, p, v, blk)
			}
		}
	}
	// W(C): All Packing wins; Select and Backfill degrade toward Block.
	allC, _ := thr.Cell("All", "W(C)")
	selC, _ := thr.Cell("Select", "W(C)")
	bkC, _ := thr.Cell("Backfill", "W(C)")
	if allC <= selC || allC <= bkC {
		t.Errorf("W(C): All %.1f must beat Select %.1f and Backfill %.1f", allC, selC, bkC)
	}
	// W(B): Backfill is the best policy (paper: ~7%% over All).
	allB, _ := thr.Cell("All", "W(B)")
	bkB, _ := thr.Cell("Backfill", "W(B)")
	if bkB <= allB {
		t.Errorf("W(B): Backfill %.1f not above All %.1f", bkB, allB)
	}
	// W(M): Backfill within a few percent of the best.
	allM, _ := thr.Cell("All", "W(M)")
	bkM, _ := thr.Cell("Backfill", "W(M)")
	if bkM < 0.9*allM {
		t.Errorf("W(M): Backfill %.1f more than 10%% below All %.1f", bkM, allM)
	}
	// NAND I/O: All is the densest policy everywhere.
	for _, w := range workloadLabels {
		av, _ := nandIO.Cell("All", w)
		for _, p := range []string{"Block", "Select", "Backfill"} {
			v, _ := nandIO.Cell(p, w)
			if v < av {
				t.Errorf("%s: %s NAND %.0f below All %.0f", w, p, v, av)
			}
		}
	}
	// Memcpy time: All ≫ the selective policies, and increases in the
	// paper's order M < B < D < C.
	for _, w := range workloadLabels {
		am, _ := memcpy.Cell("All", w)
		sm, _ := memcpy.Cell("Select", w)
		if am <= sm {
			t.Errorf("%s: All memcpy %.2f not above Select %.2f", w, am, sm)
		}
	}
	mM, _ := memcpy.Cell("All", "W(M)")
	mB, _ := memcpy.Cell("All", "W(B)")
	mD, _ := memcpy.Cell("All", "W(D)")
	mC, _ := memcpy.Cell("All", "W(C)")
	if !(mM < mB && mB < mD && mD < mC) {
		t.Errorf("All memcpy order M<B<D<C violated: %v %v %v %v", mM, mB, mD, mC)
	}
}

// The abstract's headline numbers: ≥97.9% PCIe-traffic reduction and ≥98.1%
// NAND-write reduction for small values.
func TestHeadlineClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("bench experiment")
	}
	f8, err := RunFig8(fast())
	if err != nil {
		t.Fatal(err)
	}
	bt, _ := f8.Cell("32", "Baseline_traffic_GB")
	pt, _ := f8.Cell("32", "Piggyback_traffic_GB")
	if red := 1 - pt/bt; red < 0.979 {
		t.Errorf("headline traffic reduction %.4f < 0.979", red)
	}
	f11, err := RunFig11(fast())
	if err != nil {
		t.Fatal(err)
	}
	bn, _ := f11.Cell("32", "Baseline_nand_io")
	pn, _ := f11.Cell("32", "PiggyPack_nand_io")
	if red := 1 - pn/bn; red < 0.981 {
		t.Errorf("headline NAND reduction %.4f < 0.981", red)
	}
}

func TestRunAllProducesEveryTable(t *testing.T) {
	if testing.Short() {
		t.Skip("slow full suite")
	}
	tables, err := RunAll(Options{Scale: 300})
	if err != nil {
		t.Fatal(err)
	}
	// fig3a, fig3b, fig4a, fig4b, fig8, fig9, fig10a-d, fig11, fig12a-d.
	if len(tables) != 15 {
		t.Fatalf("RunAll produced %d tables, want 15", len(tables))
	}
	seen := map[string]bool{}
	for _, tb := range tables {
		if tb.ID == "" || len(tb.Rows) == 0 {
			t.Fatalf("table %q empty", tb.Title)
		}
		if seen[tb.ID] {
			t.Fatalf("duplicate table id %s", tb.ID)
		}
		seen[tb.ID] = true
	}
}
