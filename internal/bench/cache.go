package bench

// Tiered read-path ablation: how far the device-DRAM read cache lifts
// skewed-read tail latency over the cache-off seed behavior. The sweep
// crosses cache size × eviction policy × Zipfian skew, times every read on
// the virtual clock, and splits latencies into the hot set (the top 1% of
// ranks, which the cache must capture) and the cold remainder. Every figure
// is simulated, so two runs with the same scale and seed produce
// byte-identical BENCH_cache.json — the determinism gate `make cache-smoke`
// relies on that. The sweep hard-fails if the hot-read p99 at the default
// operating point (LRU, 4 MiB, s=0.99) does not improve at least 3x over
// cache-off at the same skew.

import (
	"encoding/json"
	"fmt"
	"sort"

	"bandslim"
	"bandslim/internal/device"
	"bandslim/internal/driver"
	"bandslim/internal/sim"
	"bandslim/internal/workload"
)

// cacheSkews is the Zipfian skew sweep; 0.99 is YCSB's default.
var cacheSkews = []float64{0.80, 0.99, 1.20}

// cacheSizes is the device-DRAM value-cache capacity sweep in bytes.
var cacheSizes = []int{1 << 20, 4 << 20}

// cachePolicies is the eviction-policy sweep for each size.
var cachePolicies = []bandslim.CachePolicy{bandslim.CacheLRU, bandslim.CacheCLOCK, bandslim.Cache2Q}

// cacheChunk is the keys-per-PutBatch call during the load phase.
const cacheChunk = 256

// cacheMinSpeedup is the hard acceptance floor on the hot-read p99
// improvement at the default operating point.
const cacheMinSpeedup = 3.0

// cacheDefaultSize / cacheDefaultPolicy / cacheDefaultSkew name the default
// operating point the speedup gate checks.
const (
	cacheDefaultSize = 4 << 20
	cacheDefaultSkew = 0.99
)

// CachePoint is one sweep cell, shaped for BENCH_cache.json. All fields are
// simulated and deterministic.
type CachePoint struct {
	Policy    string  `json:"policy"` // "off", "lru", "clock", "2q"
	SizeBytes int     `json:"size_bytes"`
	Skew      float64 `json:"skew"`
	Keys      int     `json:"keys"`
	HotKeys   int     `json:"hot_keys"`
	Reads     int64   `json:"reads"`
	HotReads  int64   `json:"hot_reads"`
	HitRate   float64 `json:"hit_rate"` // value-cache hits / lookups, measured phase
	HotP50Us  float64 `json:"hot_p50_us"`
	HotP99Us  float64 `json:"hot_p99_us"`
	ColdP50Us float64 `json:"cold_p50_us"`
	ColdP99Us float64 `json:"cold_p99_us"`
	SimKops   float64 `json:"sim_kops"`
	// HotP99SpeedupVsOff is cache-off hot p99 / this cell's hot p99 at the
	// same skew (1.0 for the off rows themselves).
	HotP99SpeedupVsOff float64 `json:"hot_p99_speedup_vs_off"`
}

// CacheSweepJSON renders the points as indented JSON for BENCH_cache.json.
func CacheSweepJSON(points []CachePoint) ([]byte, error) {
	return json.MarshalIndent(points, "", "  ")
}

// cachePct is the nearest-rank percentile of a sorted latency slice.
func cachePct(sorted []sim.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i].Micros()
}

// runCachePoint builds a fresh single-shard stack with the given cache
// config (zero = cache off), loads the keyspace, warms the hot set, then
// times a Zipfian read phase op by op on the virtual clock.
func runCachePoint(o Options, cc bandslim.CacheConfig, skew float64, label string) (CachePoint, error) {
	cfg := bandslim.DefaultConfig()
	cfg.Method = bandslim.Adaptive
	cfg.Policy = bandslim.BackfillPacking
	dev := device.DefaultConfig()
	dev.Geometry = benchGeometry()
	cfg.Device = dev
	cfg.Thresholds = driver.DefaultThresholds()
	cfg.Cache = cc
	db, err := bandslim.Open(cfg)
	if err != nil {
		return CachePoint{}, err
	}
	defer db.Close()

	nkeys := o.Scale
	if nkeys < 1024 {
		nkeys = 1024
	}
	// Key index is Zipfian rank: rc0000000 is the hottest key. The hot set
	// is the top 1% of ranks — small enough that every policy and size in
	// the sweep can retain it against cold-read pollution.
	hotN := nkeys / 100
	if hotN < 1 {
		hotN = 1
	}
	keys := make([][]byte, nkeys)
	vals := make([][]byte, nkeys)
	rng := sim.NewRNG(o.Seed ^ 0xCA)
	filler := workload.NewValueFiller(1)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("rc%07d", i))
		vals[i] = filler.Fill(nil, 16+rng.Intn(1024))
	}
	for at := 0; at < nkeys; at += cacheChunk {
		end := at + cacheChunk
		if end > nkeys {
			end = nkeys
		}
		if err := db.PutBatch(keys[at:end], vals[at:end]); err != nil {
			return CachePoint{}, fmt.Errorf("bench: cache %s: fill: %w", label, err)
		}
	}

	// Warm: one pass over the hot set so the measured phase sees the cache
	// in steady state rather than charging cold-start fills to the tail.
	// The pass runs cache-off too, keeping the measured op sequence — and
	// the LSM/vLog state it reads — identical across cells.
	buf := make([]byte, 0, 4096)
	for i := 0; i < hotN; i++ {
		if _, err := db.GetInto(keys[i], buf[:0]); err != nil {
			return CachePoint{}, fmt.Errorf("bench: cache %s: warm %s: %w", label, keys[i], err)
		}
	}

	z, err := workload.NewZipfian(nkeys, skew, o.Seed^0x2C)
	if err != nil {
		return CachePoint{}, fmt.Errorf("bench: cache %s: %w", label, err)
	}
	reads := int64(2 * nkeys)
	pre := db.Stats()
	var hot, cold []sim.Duration
	start := db.Now()
	for i := int64(0); i < reads; i++ {
		r := z.Next()
		t0 := db.Now()
		if _, err := db.GetInto(keys[r], buf[:0]); err != nil {
			return CachePoint{}, fmt.Errorf("bench: cache %s: read %s: %w", label, keys[r], err)
		}
		lat := db.Now().Sub(t0)
		if r < hotN {
			hot = append(hot, lat)
		} else {
			cold = append(cold, lat)
		}
	}
	elapsed := db.Now().Sub(start)
	st := db.Stats()

	sort.Slice(hot, func(i, j int) bool { return hot[i] < hot[j] })
	sort.Slice(cold, func(i, j int) bool { return cold[i] < cold[j] })
	hitRate := 0.0
	if lookups := (st.Cache.Hits - pre.Cache.Hits) + (st.Cache.Misses - pre.Cache.Misses); lookups > 0 {
		hitRate = float64(st.Cache.Hits-pre.Cache.Hits) / float64(lookups)
	}
	kops := 0.0
	if us := elapsed.Micros(); us > 0 {
		kops = float64(reads) / (us / 1e6) / 1000
	}
	return CachePoint{
		Policy:    label,
		SizeBytes: cc.ValueBytes,
		Skew:      skew,
		Keys:      nkeys,
		HotKeys:   hotN,
		Reads:     reads,
		HotReads:  int64(len(hot)),
		HitRate:   hitRate,
		HotP50Us:  cachePct(hot, 0.50),
		HotP99Us:  cachePct(hot, 0.99),
		ColdP50Us: cachePct(cold, 0.50),
		ColdP99Us: cachePct(cold, 0.99),
		SimKops:   kops,
	}, nil
}

// RunCacheSweep crosses cache size × policy × Zipfian skew against the
// cache-off baseline and gates on the hot-read p99 improvement at the
// default operating point. Identical options reproduce the table and JSON
// bit-for-bit.
func RunCacheSweep(o Options) (*Table, []CachePoint, error) {
	o = o.normalized()
	t := &Table{
		ID: "cache", Title: "Tiered Read Path: Device-DRAM Cache vs Skewed Reads",
		XLabel:  "policy/size/skew",
		Columns: []string{"hit_rate", "hot_p50_us", "hot_p99_us", "cold_p99_us", "sim_kops", "hot_p99_speedup"},
		Notes: []string{
			fmt.Sprintf("scale=%d keys, single shard, 2x-scale Zipfian read phase, hot set = top 1%% of ranks", o.Scale),
			"off rows are the seed read path; cache rows charge hits device-DRAM latency and skip NAND",
			fmt.Sprintf("gate: hot p99 must improve >= %.0fx at lru/%dMiB/s=%.2f", cacheMinSpeedup, cacheDefaultSize>>20, cacheDefaultSkew),
			"all values simulated and deterministic for a given -scale/-seed",
		},
	}
	var points []CachePoint
	var gateSpeedup float64
	for _, skew := range cacheSkews {
		off, err := runCachePoint(o, bandslim.CacheConfig{}, skew, "off")
		if err != nil {
			return nil, nil, err
		}
		off.HotP99SpeedupVsOff = 1.0
		points = append(points, off)
		t.AddRow(fmt.Sprintf("off/-/s=%.2f", skew),
			off.HitRate, off.HotP50Us, off.HotP99Us, off.ColdP99Us, off.SimKops, 1.0)
		for _, pol := range cachePolicies {
			for _, size := range cacheSizes {
				cc := bandslim.CacheConfig{
					ValueBytes:      size,
					Pages:           64,
					Policy:          pol,
					NegativeEntries: 1024,
				}
				p, err := runCachePoint(o, cc, skew, pol.String())
				if err != nil {
					return nil, nil, err
				}
				if off.HotP99Us > 0 && p.HotP99Us > 0 {
					p.HotP99SpeedupVsOff = off.HotP99Us / p.HotP99Us
				}
				if pol == bandslim.CacheLRU && size == cacheDefaultSize && skew == cacheDefaultSkew {
					gateSpeedup = p.HotP99SpeedupVsOff
				}
				points = append(points, p)
				t.AddRow(fmt.Sprintf("%s/%dMiB/s=%.2f", pol, size>>20, skew),
					p.HitRate, p.HotP50Us, p.HotP99Us, p.ColdP99Us, p.SimKops, p.HotP99SpeedupVsOff)
			}
		}
	}
	if gateSpeedup < cacheMinSpeedup {
		return nil, nil, fmt.Errorf(
			"bench: cache: hot-read p99 speedup %.2fx at lru/%dMiB/s=%.2f below the %.0fx acceptance floor",
			gateSpeedup, cacheDefaultSize>>20, cacheDefaultSkew, cacheMinSpeedup)
	}
	return t, points, nil
}
