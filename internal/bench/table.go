// Package bench regenerates every table and figure of the paper's
// evaluation (§4): one runner per figure, emitting the same rows/series the
// paper plots, as aligned text tables and CSV. The shapes — who wins, by
// what factor, where the crossovers fall — are asserted by this package's
// tests; absolute values are simulation-calibrated (see DESIGN.md §3).
package bench

import (
	"fmt"
	"strings"
)

// Table is one reproduced figure/table: an x column plus one series per
// configuration.
type Table struct {
	ID      string   // e.g. "fig8"
	Title   string   // e.g. "Total PCIe Traffic & Avg Response vs Value Size"
	XLabel  string   // e.g. "value size (B)"
	Columns []string // series names
	Rows    []Row
	Notes   []string // caveats and pointers back to the paper
}

// Row is one x point.
type Row struct {
	Label string
	Cells []float64
}

// AddRow appends one x point; the number of cells must match Columns.
func (t *Table) AddRow(label string, cells ...float64) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("bench: row %q has %d cells, want %d", label, len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, Row{Label: label, Cells: cells})
}

// Column returns the series with the given name.
func (t *Table) Column(name string) ([]float64, error) {
	for i, c := range t.Columns {
		if c == name {
			out := make([]float64, len(t.Rows))
			for j, r := range t.Rows {
				out[j] = r.Cells[i]
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("bench: table %s has no column %q", t.ID, name)
}

// Cell returns the value at (rowLabel, column).
func (t *Table) Cell(rowLabel, column string) (float64, error) {
	col := -1
	for i, c := range t.Columns {
		if c == column {
			col = i
			break
		}
	}
	if col < 0 {
		return 0, fmt.Errorf("bench: no column %q", column)
	}
	for _, r := range t.Rows {
		if r.Label == rowLabel {
			return r.Cells[col], nil
		}
	}
	return 0, fmt.Errorf("bench: no row %q", rowLabel)
}

// Format renders an aligned text table.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns)+1)
	widths[0] = len(t.XLabel)
	for _, r := range t.Rows {
		if len(r.Label) > widths[0] {
			widths[0] = len(r.Label)
		}
	}
	cells := make([][]string, len(t.Rows))
	for i, c := range t.Columns {
		widths[i+1] = len(c)
	}
	for ri, r := range t.Rows {
		cells[ri] = make([]string, len(r.Cells))
		for ci, v := range r.Cells {
			s := formatCell(v)
			cells[ri][ci] = s
			if len(s) > widths[ci+1] {
				widths[ci+1] = len(s)
			}
		}
	}
	fmt.Fprintf(&b, "%-*s", widths[0], t.XLabel)
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "  %*s", widths[i+1], c)
	}
	b.WriteByte('\n')
	for ri, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", widths[0], r.Label)
		for ci := range r.Cells {
			fmt.Fprintf(&b, "  %*s", widths[ci+1], cells[ri][ci])
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func formatCell(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case v == float64(int64(v)) && av < 1e7:
		return fmt.Sprintf("%d", int64(v))
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(t.XLabel)
	for _, c := range t.Columns {
		b.WriteByte(',')
		b.WriteString(c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(r.Label)
		for _, v := range r.Cells {
			fmt.Fprintf(&b, ",%g", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
