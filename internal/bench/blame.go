package bench

// Latency-attribution sweep: where each simulated nanosecond of a mixed
// workload goes as the submission window deepens — and the machine check
// that attribution itself is sound. Every point re-runs the stage
// reconstruction over a fresh trace and fails hard if any op violates the
// residual-zero invariant, so `make blame-smoke` doubles as a correctness
// gate, not just a determinism diff.

import (
	"encoding/json"
	"fmt"

	"bandslim"
	"bandslim/internal/device"
	"bandslim/internal/driver"
	"bandslim/internal/sim"
	"bandslim/internal/spans"
	"bandslim/internal/workload"
)

// blameDepths is the sweep: the paper's synchronous testbed, a saturated
// window, and a window deep enough that batches fit without queue waits.
var blameDepths = []int{1, 8, 32}

// blameShards is the fixed shard count of the sweep's stack.
const blameShards = 4

// blameChunk is the keys-per-batch-call during the measured phase.
const blameChunk = 128

// blameTraceCap is the per-shard trace ring capacity. Sized for the default
// scale with headroom; a much larger -scale overflows the ring and the point
// reports the truncation instead of hiding it.
const blameTraceCap = 1 << 18

// BlameStageShare is one stage's slice of a point's total attributed time.
type BlameStageShare struct {
	Stage   string  `json:"stage"`
	TotalNS int64   `json:"total_ns"`
	Share   float64 `json:"share"`
}

// BlamePoint is one depth measurement, shaped for BENCH_blame.json. All
// fields are simulated and deterministic.
type BlamePoint struct {
	Depth           int               `json:"depth"`
	Shards          int               `json:"shards"`
	Ops             int               `json:"ops"`
	Commands        int               `json:"commands"`
	Retries         int               `json:"retries"`
	Unclaimed       int               `json:"unclaimed"`
	Incomplete      int               `json:"incomplete"`
	TruncatedEvents int64             `json:"truncated_events"`
	E2EMeanUs       float64           `json:"e2e_mean_us"`
	GetP99Us        float64           `json:"get_p99_us"`
	GetTailStage    string            `json:"get_tail_stage"` // dominant stage of the get p99 tail
	Stages          []BlameStageShare `json:"stages"`
}

// BlameSweepJSON renders the points as indented JSON for BENCH_blame.json.
func BlameSweepJSON(points []BlamePoint) ([]byte, error) {
	return json.MarshalIndent(points, "", "  ")
}

// runBlamePoint builds a fresh traced stack at the given depth, loads the
// keyspace untraced, then traces a mixed measured phase (rewrites, random
// reads with misses, deletes) and attributes every op.
func runBlamePoint(o Options, depth int) (BlamePoint, error) {
	cfg := bandslim.DefaultConfig()
	cfg.Method = bandslim.Adaptive
	cfg.Policy = bandslim.BackfillPacking
	dev := device.DefaultConfig()
	dev.Geometry = benchGeometry()
	cfg.Device = dev
	cfg.Thresholds = driver.DefaultThresholds()
	cfg.Submission = qdSubmission(depth)
	s, err := bandslim.OpenSharded(bandslim.ShardedConfig{
		Shards:        blameShards,
		PerShard:      cfg,
		TraceCapacity: blameTraceCap,
	})
	if err != nil {
		return BlamePoint{}, err
	}
	defer s.Close()

	nkeys := o.Scale
	if nkeys < blameChunk {
		nkeys = blameChunk
	}
	keys := make([][]byte, nkeys)
	rng := sim.NewRNG(o.Seed ^ 0xB1A3E)
	filler := workload.NewValueFiller(1)
	vals := make([][]byte, nkeys)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("bl%07d", i))
		vals[i] = filler.Fill(nil, 16+rng.Intn(2048))
	}
	for at := 0; at < nkeys; at += blameChunk {
		end := at + blameChunk
		if end > nkeys {
			end = nkeys
		}
		if err := s.PutBatch(keys[at:end], vals[at:end]); err != nil {
			return BlamePoint{}, fmt.Errorf("bench: blame depth=%d: fill: %w", depth, err)
		}
	}

	// The fill is warm-up: attribution measures the steady-state phase.
	s.ResetTrace()

	// Measured phase: rewrite an eighth of the keyspace, read everything in
	// a seeded random order with a sprinkle of guaranteed misses, delete a
	// tail slice — every op kind and the miss path land in the trace.
	order := make([][]byte, nkeys)
	copy(order, keys)
	for i := nkeys - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		order[i], order[j] = order[j], order[i]
	}
	for at := 0; at < nkeys/8; at += blameChunk {
		end := at + blameChunk
		if end > nkeys/8 {
			end = nkeys / 8
		}
		if err := s.PutBatch(order[at:end], vals[at:end]); err != nil {
			return BlamePoint{}, fmt.Errorf("bench: blame depth=%d: rewrite: %w", depth, err)
		}
	}
	dst := make([][]byte, blameChunk)
	miss := make([]bool, blameChunk)
	for at := 0; at < nkeys; at += blameChunk {
		end := at + blameChunk
		if end > nkeys {
			end = nkeys
		}
		batch := order[at:end]
		if at%(8*blameChunk) == 0 {
			// Swap one key for a never-written one: the sparse miss path.
			batch = append([][]byte(nil), batch...)
			batch[0] = []byte(fmt.Sprintf("bl-miss%05d", at))
			if _, err := s.GetBatchSparse(batch, dst[:len(batch)], miss[:len(batch)]); err != nil {
				return BlamePoint{}, fmt.Errorf("bench: blame depth=%d: sparse read: %w", depth, err)
			}
			continue
		}
		if _, err := s.GetBatch(batch, dst[:end-at]); err != nil {
			return BlamePoint{}, fmt.Errorf("bench: blame depth=%d: read: %w", depth, err)
		}
	}
	for i := 0; i < nkeys/16; i++ {
		if err := s.Delete(order[i]); err != nil {
			return BlamePoint{}, fmt.Errorf("bench: blame depth=%d: delete: %w", depth, err)
		}
	}

	rep := s.Blame()
	if rep == nil {
		return BlamePoint{}, fmt.Errorf("bench: blame depth=%d: no trace recorder", depth)
	}
	// The hard gate: attribution must partition every op exactly.
	for i := range rep.Ops {
		op := &rep.Ops[i]
		if op.Residual() != 0 {
			return BlamePoint{}, fmt.Errorf("bench: blame depth=%d: op %s shard=%d seq=%d residual %d ns",
				depth, op.Name, op.Shard, op.Seq, int64(op.Residual()))
		}
		for st, d := range op.Stages {
			if d < 0 {
				return BlamePoint{}, fmt.Errorf("bench: blame depth=%d: op %s shard=%d seq=%d stage %s negative",
					depth, op.Name, op.Shard, op.Seq, spans.Stage(st))
			}
		}
	}

	agg := spans.Summarize(rep)
	p := BlamePoint{
		Depth:           depth,
		Shards:          blameShards,
		Ops:             len(rep.Ops),
		Unclaimed:       rep.Unclaimed,
		Incomplete:      rep.Incomplete,
		TruncatedEvents: rep.TruncatedEvents,
	}
	var total, stageTotals [spans.NumStages + 1]sim.Duration // [0] holds e2e
	for _, c := range agg.Classes {
		p.Commands += c.Commands
		p.Retries += c.Retries
		total[0] += c.Total
		for st := spans.Stage(0); st < spans.NumStages; st++ {
			stageTotals[st+1] += c.StageTotal[st]
		}
	}
	if p.Ops > 0 {
		p.E2EMeanUs = total[0].Micros() / float64(p.Ops)
	}
	for st := spans.Stage(0); st < spans.NumStages; st++ {
		share := 0.0
		if total[0] > 0 {
			share = float64(stageTotals[st+1]) / float64(total[0])
		}
		p.Stages = append(p.Stages, BlameStageShare{
			Stage: st.String(), TotalNS: int64(stageTotals[st+1]), Share: share,
		})
	}
	for _, cp := range spans.CriticalPaths(rep) {
		if cp.Op == "get" {
			p.GetP99Us = cp.P99.Micros()
			p.GetTailStage = cp.Stage.String()
		}
	}
	return p, nil
}

// RunBlameSweep sweeps the submission window depth and attributes every op
// of the measured phase to pipeline stages. Identical options reproduce the
// table and JSON bit-for-bit; any residual violation fails the sweep.
func RunBlameSweep(o Options) (*Table, []BlamePoint, error) {
	o = o.normalized()
	t := &Table{
		ID: "blame", Title: "Latency Attribution Sweep: Where Each Nanosecond Goes vs Queue Depth",
		XLabel:  "depth",
		Columns: []string{"ops", "e2e_mean_us", "get_p99_us", "window_pct", "nand_pct", "coalesce_pct", "reap_pct"},
		Notes: []string{
			fmt.Sprintf("scale=%d keys, %d shards, mixed measured phase (rewrites + random reads with misses + deletes)", o.Scale, blameShards),
			"shares are fractions of total attributed time; every op's stages sum exactly to its e2e latency (residual gate)",
			"all values simulated and deterministic for a given -scale/-seed",
		},
	}
	var points []BlamePoint
	for _, depth := range blameDepths {
		p, err := runBlamePoint(o, depth)
		if err != nil {
			return nil, nil, err
		}
		points = append(points, p)
		share := func(name string) float64 {
			for _, s := range p.Stages {
				if s.Stage == name {
					return 100 * s.Share
				}
			}
			return 0
		}
		t.AddRow(fmt.Sprintf("%d", depth),
			float64(p.Ops), p.E2EMeanUs, p.GetP99Us,
			share("window_wait"), share("nand"), share("coalesce"), share("reap"))
	}
	return t, points, nil
}
