package bench

// Queue-depth sweep: how far the async submission window lifts read
// throughput over the paper's synchronous testbed. Every figure in the
// output is simulated (no wall-clock fields), so two runs with the same
// scale and seed produce byte-identical BENCH_qd.json — the determinism
// gate `make qd-smoke` relies on that.

import (
	"encoding/json"
	"fmt"

	"bandslim"
	"bandslim/internal/device"
	"bandslim/internal/driver"
	"bandslim/internal/sim"
	"bandslim/internal/workload"
)

// qdDepths is the sweep: 1 is the paper's sync passthrough, the rest open
// the window.
var qdDepths = []int{1, 2, 4, 8, 16, 32}

// qdShards is the fixed shard count of the sweep's baseline stack.
const qdShards = 4

// qdChunk is the keys-per-GetBatch call during the read phase.
const qdChunk = 256

// QDPoint is one depth measurement, shaped for BENCH_qd.json. All fields
// are simulated and deterministic.
type QDPoint struct {
	Depth         int     `json:"depth"`
	Shards        int     `json:"shards"`
	Ops           int64   `json:"ops"`
	SimElapsedUs  float64 `json:"sim_elapsed_us"` // read-phase simulated time
	SimKops       float64 `json:"sim_kops"`       // ops per simulated second / 1000
	SimUsPerOp    float64 `json:"sim_us_per_op"`  // read-phase time / ops
	ReadRespUs    float64 `json:"read_resp_us"`   // mean simulated read response
	ReadRespP99Us float64 `json:"read_resp_p99_us"`
	MMIOBytes     int64   `json:"mmio_bytes"`      // read-phase doorbell traffic
	SpeedupVsSync float64 `json:"speedup_vs_sync"` // SimKops / depth-1 SimKops
}

// QDSweepJSON renders the points as indented JSON for BENCH_qd.json.
func QDSweepJSON(points []QDPoint) ([]byte, error) {
	return json.MarshalIndent(points, "", "  ")
}

// qdSubmission maps a sweep depth to the submission policy under test.
func qdSubmission(depth int) bandslim.SubmissionConfig {
	if depth <= 1 {
		return bandslim.SubmissionConfig{}
	}
	return bandslim.SubmissionConfig{
		QueueDepth:       depth,
		DoorbellBatch:    8,
		CoalesceInterval: 2 * sim.Microsecond,
	}
}

// runQDPoint builds a fresh 4-shard stack at the given depth, loads the
// keyspace, then reads every key back in qdChunk batches and reports the
// read phase in simulated terms.
func runQDPoint(o Options, depth int) (QDPoint, error) {
	cfg := bandslim.DefaultConfig()
	cfg.Method = bandslim.Adaptive
	cfg.Policy = bandslim.BackfillPacking
	dev := device.DefaultConfig()
	dev.Geometry = benchGeometry()
	cfg.Device = dev
	cfg.Thresholds = driver.DefaultThresholds()
	cfg.Submission = qdSubmission(depth)
	s, err := bandslim.OpenSharded(bandslim.ShardedConfig{Shards: qdShards, PerShard: cfg})
	if err != nil {
		return QDPoint{}, err
	}
	defer s.Close()

	nkeys := o.Scale
	if nkeys < qdChunk {
		nkeys = qdChunk
	}
	keys := make([][]byte, nkeys)
	rng := sim.NewRNG(o.Seed ^ 0x9D)
	filler := workload.NewValueFiller(1)
	vals := make([][]byte, nkeys)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("qd%07d", i))
		vals[i] = filler.Fill(nil, 16+rng.Intn(2048))
	}
	for at := 0; at < nkeys; at += qdChunk {
		end := at + qdChunk
		if end > nkeys {
			end = nkeys
		}
		if err := s.PutBatch(keys[at:end], vals[at:end]); err != nil {
			return QDPoint{}, fmt.Errorf("bench: qd depth=%d: fill: %w", depth, err)
		}
	}

	// Read back in a seeded uniform-random order. Insertion order would
	// visit the packed vLog pages sequentially — consecutive reads landing
	// on the same NAND way — which serializes any window; random reads
	// spread across channels and ways, the access pattern the depth sweep
	// is about.
	order := make([][]byte, nkeys)
	copy(order, keys)
	for i := nkeys - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		order[i], order[j] = order[j], order[i]
	}
	loaded := s.Stats()
	dst := make([][]byte, qdChunk)
	var ops int64
	for at := 0; at < nkeys; at += qdChunk {
		end := at + qdChunk
		if end > nkeys {
			end = nkeys
		}
		out, err := s.GetBatch(order[at:end], dst[:end-at])
		if err != nil {
			return QDPoint{}, fmt.Errorf("bench: qd depth=%d: read: %w", depth, err)
		}
		copy(dst, out)
		ops += int64(end - at)
	}
	st := s.Stats()

	elapsed := st.Host.Elapsed - loaded.Host.Elapsed
	us := elapsed.Micros()
	kops := 0.0
	if us > 0 {
		kops = float64(ops) / (us / 1e6) / 1000
	}
	return QDPoint{
		Depth:         depth,
		Shards:        qdShards,
		Ops:           ops,
		SimElapsedUs:  us,
		SimKops:       kops,
		SimUsPerOp:    us / float64(ops),
		ReadRespUs:    st.Host.ReadResp.Mean.Micros(),
		ReadRespP99Us: st.Host.ReadResp.P99.Micros(),
		MMIOBytes:     st.PCIe.MMIOBytes - loaded.PCIe.MMIOBytes,
	}, nil
}

// RunQDSweep sweeps the submission window depth on the 4-shard baseline
// stack. Every column is simulated, so the sweep doubles as a determinism
// check: identical options must reproduce the table bit-for-bit.
func RunQDSweep(o Options) (*Table, []QDPoint, error) {
	o = o.normalized()
	t := &Table{
		ID: "qd", Title: "Queue Depth Sweep: Async Submission Window vs Sync Passthrough",
		XLabel:  "depth",
		Columns: []string{"sim_kops", "sim_us_op", "read_p99_us", "mmio_KiB", "speedup_vs_sync"},
		Notes: []string{
			fmt.Sprintf("scale=%d keys, %d shards, read phase in %d-key GetBatch chunks", o.Scale, qdShards, qdChunk),
			"depth 1 = the paper's synchronous testbed; depth N = async window with doorbell batching + 2µs coalescing",
			"all values simulated and deterministic for a given -scale/-seed",
		},
	}
	var points []QDPoint
	var syncKops float64
	for _, depth := range qdDepths {
		p, err := runQDPoint(o, depth)
		if err != nil {
			return nil, nil, err
		}
		if depth == 1 {
			syncKops = p.SimKops
		}
		if syncKops > 0 {
			p.SpeedupVsSync = p.SimKops / syncKops
		}
		points = append(points, p)
		t.AddRow(fmt.Sprintf("%d", depth),
			p.SimKops, p.SimUsPerOp, p.ReadRespP99Us, float64(p.MMIOBytes)/1024, p.SpeedupVsSync)
	}
	return t, points, nil
}
