package bench

// YCSB-style scenario suite + deterministic trace replay. DriveScenario is
// the one execution engine every scenario consumer shares: the ycsb
// experiment below, the `bandslim-cli trace record|replay` subcommands, and
// the root replay-equivalence tests all push ops through it, so a recorded
// trace replayed against a fresh stack takes exactly the code path the live
// generator run took. Every figure is simulated; identical options produce
// byte-identical BENCH_ycsb.json (the `make ycsb-smoke` gate).

import (
	"encoding/json"
	"fmt"
	"sort"

	"bandslim"
	"bandslim/internal/device"
	"bandslim/internal/driver"
	"bandslim/internal/sim"
	"bandslim/internal/workload"
)

// ScenarioDB is the stack surface a scenario run drives; *bandslim.DB and
// *bandslim.ShardedDB both satisfy it (scans go through NewIterator via a
// type switch, as the two return distinct iterator types).
type ScenarioDB interface {
	Put(key, value []byte) error
	GetInto(key, dst []byte) ([]byte, error)
	Delete(key []byte) error
	Flush() error
	Now() sim.Time
}

var (
	_ ScenarioDB = (*bandslim.DB)(nil)
	_ ScenarioDB = (*bandslim.ShardedDB)(nil)
)

// scenIter is the common iterator surface of the two stacks.
type scenIter interface {
	Valid() bool
	Key() []byte
	Value() []byte
	Err() error
	Next()
}

// openIter starts a scan on either stack flavor.
func openIter(db ScenarioDB, start []byte) (scenIter, error) {
	switch d := db.(type) {
	case *bandslim.DB:
		return d.NewIterator(start)
	case *bandslim.ShardedDB:
		return d.NewIterator(start)
	default:
		return nil, fmt.Errorf("bench: scans unsupported on %T", db)
	}
}

// ScenarioResult aggregates one scenario run: per-class op counts and
// virtual-clock latency samples.
type ScenarioResult struct {
	Name    string
	Ops     int64 // total executed, load phase included
	Reads   int64
	Updates int64 // puts, load inserts included
	Deletes int64
	Scans   int64
	RMWs    int64
	// Misses counts reads (incl. RMW reads) of absent keys.
	Misses int64
	// ScanEntries is the total pairs stepped over by all scans.
	ScanEntries int64
	// BytesWritten sums put/rmw value payloads.
	BytesWritten int64
	// Elapsed is the simulated time the run spanned.
	Elapsed sim.Duration

	readLat, updateLat, scanLat, rmwLat []sim.Duration
}

// pct reports the nearest-rank q-quantile of a latency class in µs.
func pct(lat []sim.Duration, q float64) float64 {
	if len(lat) == 0 {
		return 0
	}
	sorted := append([]sim.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[int(q*float64(len(sorted)-1))].Micros()
}

// SimKops reports simulated throughput over the whole run.
func (r ScenarioResult) SimKops() float64 {
	if us := r.Elapsed.Micros(); us > 0 {
		return float64(r.Ops) / (us / 1e6) / 1000
	}
	return 0
}

// DriveScenario executes a scenario against db, timing every op on the
// virtual clock. Value contents are regenerated deterministically from
// valueSeed in op order, so a replayed trace writes the recorded run's
// exact bytes. When rec is non-nil every op is appended to it (keys copied)
// before execution — recording a run and replaying the resulting trace is
// bit-identical to the live run by construction.
func DriveScenario(db ScenarioDB, s workload.Scenario, valueSeed uint64, rec *workload.Trace) (ScenarioResult, error) {
	res := ScenarioResult{Name: s.Name()}
	if rec != nil {
		rec.Seed = valueSeed
	}
	filler := workload.NewValueFiller(valueSeed)
	var valBuf, readBuf []byte
	start := db.Now()
	for {
		op, ok := s.Next()
		if !ok {
			break
		}
		if rec != nil {
			rec.Append(op)
		}
		res.Ops++
		t0 := db.Now()
		switch op.Kind {
		case OpPut:
			valBuf = filler.Fill(valBuf, op.N)
			if err := db.Put(op.Key, valBuf); err != nil {
				return res, fmt.Errorf("bench: %s: put %q: %w", s.Name(), op.Key, err)
			}
			res.Updates++
			res.BytesWritten += int64(op.N)
			res.updateLat = append(res.updateLat, db.Now().Sub(t0))
		case OpGet:
			v, err := db.GetInto(op.Key, readBuf[:0])
			switch {
			case err == nil:
				readBuf = v
			case bandslim.IsNotFound(err):
				res.Misses++
			default:
				return res, fmt.Errorf("bench: %s: get %q: %w", s.Name(), op.Key, err)
			}
			res.Reads++
			res.readLat = append(res.readLat, db.Now().Sub(t0))
		case OpDelete:
			if err := db.Delete(op.Key); err != nil {
				return res, fmt.Errorf("bench: %s: del %q: %w", s.Name(), op.Key, err)
			}
			res.Deletes++
		case OpScan:
			it, err := openIter(db, op.Key)
			if err != nil {
				return res, fmt.Errorf("bench: %s: scan %q: %w", s.Name(), op.Key, err)
			}
			for n := 0; n < op.N && it.Valid(); n++ {
				res.ScanEntries++
				it.Next()
			}
			if err := it.Err(); err != nil {
				return res, fmt.Errorf("bench: %s: scan %q: %w", s.Name(), op.Key, err)
			}
			res.Scans++
			res.scanLat = append(res.scanLat, db.Now().Sub(t0))
		case OpRMW:
			v, err := db.GetInto(op.Key, readBuf[:0])
			switch {
			case err == nil:
				readBuf = v
			case bandslim.IsNotFound(err):
				res.Misses++
			default:
				return res, fmt.Errorf("bench: %s: rmw read %q: %w", s.Name(), op.Key, err)
			}
			valBuf = filler.Fill(valBuf, op.N)
			if err := db.Put(op.Key, valBuf); err != nil {
				return res, fmt.Errorf("bench: %s: rmw write %q: %w", s.Name(), op.Key, err)
			}
			res.RMWs++
			res.BytesWritten += int64(op.N)
			res.rmwLat = append(res.rmwLat, db.Now().Sub(t0))
		default:
			return res, fmt.Errorf("bench: %s: unknown op kind %v", s.Name(), op.Kind)
		}
	}
	res.Elapsed = db.Now().Sub(start)
	return res, nil
}

// Re-exported op kinds so DriveScenario's switch reads naturally.
const (
	OpPut    = workload.OpPut
	OpGet    = workload.OpGet
	OpDelete = workload.OpDelete
	OpScan   = workload.OpScan
	OpRMW    = workload.OpRMW
)

// YCSBPoint is one scenario's row, shaped for BENCH_ycsb.json.
type YCSBPoint struct {
	Scenario     string  `json:"scenario"`
	Records      int     `json:"records"`
	Ops          int64   `json:"ops"`
	Reads        int64   `json:"reads"`
	Updates      int64   `json:"updates"`
	Scans        int64   `json:"scans"`
	RMWs         int64   `json:"rmws"`
	Deletes      int64   `json:"deletes"`
	Misses       int64   `json:"misses"`
	ScanEntries  int64   `json:"scan_entries"`
	BytesWritten int64   `json:"bytes_written"`
	SimElapsedMs float64 `json:"sim_elapsed_ms"`
	SimKops      float64 `json:"sim_kops"`
	ReadP50Us    float64 `json:"read_p50_us"`
	ReadP99Us    float64 `json:"read_p99_us"`
	UpdateP50Us  float64 `json:"update_p50_us"`
	UpdateP99Us  float64 `json:"update_p99_us"`
	ScanP99Us    float64 `json:"scan_p99_us"`
	RMWP99Us     float64 `json:"rmw_p99_us"`
}

// YCSBJSON renders the points as indented JSON for BENCH_ycsb.json.
func YCSBJSON(points []YCSBPoint) ([]byte, error) {
	return json.MarshalIndent(points, "", "  ")
}

// ycsbSpec gives each scenario row its time-varying behavior: A runs under
// a diurnal load curve with a mid-run hotspot shift, B under periodic
// bursts, D under jittered (Poisson) arrivals; the rest arrive at a steady
// open-loop rate. Rates are simulated-time annotations — they shape arrival
// stamps (and through them the shift schedule), not device speed.
type ycsbSpec struct {
	kind    string
	arrival workload.ArrivalConfig
	shifts  workload.HotShifts
}

// ycsbRate is the open-loop arrival rate every spec builds on, ops per
// simulated second.
const ycsbRate = 50000

// ycsbSpecs derives the six scenario specs for a run of n ops: the expected
// run-phase span is n/ycsbRate seconds, so the diurnal period covers the
// run in two cycles and the A-row hotspot shift re-seats the head halfway.
func ycsbSpecs(n int) []ycsbSpec {
	span := sim.Duration(float64(n) / ycsbRate * float64(sim.Second))
	return []ycsbSpec{
		{kind: "a",
			arrival: workload.ArrivalConfig{Rate: ycsbRate, DiurnalAmp: 0.6, DiurnalPeriod: span / 2},
			shifts:  workload.HotShifts{{At: sim.Time(span / 2), Rotate: 7919}}},
		{kind: "b",
			arrival: workload.ArrivalConfig{Rate: ycsbRate, BurstFactor: 8, BurstEvery: span / 8, BurstLen: span / 64}},
		{kind: "c", arrival: workload.ArrivalConfig{Rate: ycsbRate}},
		{kind: "d", arrival: workload.ArrivalConfig{Rate: ycsbRate, Jitter: true}},
		{kind: "e", arrival: workload.ArrivalConfig{Rate: ycsbRate}},
		{kind: "f", arrival: workload.ArrivalConfig{Rate: ycsbRate}},
	}
}

// ycsbStack opens the fresh single-device stack every scenario row runs on.
func ycsbStack() (*bandslim.DB, error) {
	cfg := bandslim.DefaultConfig()
	cfg.Method = bandslim.Adaptive
	cfg.Policy = bandslim.BackfillPacking
	dev := device.DefaultConfig()
	dev.Geometry = benchGeometry()
	cfg.Device = dev
	cfg.Thresholds = driver.DefaultThresholds()
	return bandslim.Open(cfg)
}

// ycsbMixTolerance is the acceptance band on each scenario's realized op
// mix against its specified shares.
const ycsbMixTolerance = 0.05

// checkMix hard-fails a row whose realized run-phase class fractions drift
// from the scenario's specification — the cheap in-process sanity on the
// generators before the differential harness gets to them.
func checkMix(name string, res ScenarioResult, records int) error {
	runOps := res.Ops - int64(records)
	if runOps <= 0 {
		return nil
	}
	frac := func(n int64) float64 { return float64(n) / float64(runOps) }
	var want map[workload.OpKind]float64
	switch name {
	case "ycsb-a":
		want = map[workload.OpKind]float64{OpGet: 0.5, OpPut: 0.5}
	case "ycsb-b":
		want = map[workload.OpKind]float64{OpGet: 0.95, OpPut: 0.05}
	case "ycsb-c":
		want = map[workload.OpKind]float64{OpGet: 1.0}
	case "ycsb-d":
		want = map[workload.OpKind]float64{OpGet: 0.95, OpPut: 0.05}
	case "ycsb-e":
		want = map[workload.OpKind]float64{OpScan: 0.95, OpPut: 0.05}
	case "ycsb-f":
		want = map[workload.OpKind]float64{OpGet: 0.5, OpRMW: 0.5}
	default:
		return nil
	}
	got := map[workload.OpKind]float64{
		OpGet:  frac(res.Reads),
		OpPut:  frac(res.Updates - int64(records)),
		OpScan: frac(res.Scans),
		OpRMW:  frac(res.RMWs),
	}
	for kind, w := range want {
		if g := got[kind]; g < w-ycsbMixTolerance || g > w+ycsbMixTolerance {
			return fmt.Errorf("bench: ycsb: %s realized %v fraction %.3f outside %.2f±%.2f",
				name, kind, g, w, ycsbMixTolerance)
		}
	}
	return nil
}

// RunYCSB runs the six core scenarios, each on a fresh stack, and shapes
// the rows for BENCH_ycsb.json. Identical options reproduce the table and
// JSON bit-for-bit.
func RunYCSB(o Options) (*Table, []YCSBPoint, error) {
	o = o.normalized()
	records := o.Scale / 4
	if records < 256 {
		records = 256
	}
	t := &Table{
		ID: "ycsb", Title: "YCSB Core Scenarios (A-F)",
		XLabel:  "scenario",
		Columns: []string{"sim_kops", "read_p50_us", "read_p99_us", "update_p99_us", "scan_p99_us", "rmw_p99_us", "misses"},
		Notes: []string{
			fmt.Sprintf("records=%d, ops=%d per scenario, single shard, zipfian s=0.99", records, o.Scale),
			"A diurnal arrivals + mid-run hotspot shift; B bursty; D jittered read-latest; E scans",
			"all values simulated and deterministic for a given -scale/-seed",
		},
	}
	var points []YCSBPoint
	for _, spec := range ycsbSpecs(o.Scale) {
		s, err := workload.NewScenario(spec.kind, workload.ScenarioConfig{
			Records: records,
			Ops:     o.Scale,
			Seed:    o.Seed,
			Arrival: spec.arrival,
			Shifts:  spec.shifts,
		})
		if err != nil {
			return nil, nil, err
		}
		db, err := ycsbStack()
		if err != nil {
			return nil, nil, err
		}
		res, err := DriveScenario(db, s, o.Seed, nil)
		if cerr := db.Close(); err == nil && cerr != nil {
			err = cerr
		}
		if err != nil {
			return nil, nil, err
		}
		if err := checkMix(s.Name(), res, records); err != nil {
			return nil, nil, err
		}
		p := YCSBPoint{
			Scenario:     s.Name(),
			Records:      records,
			Ops:          res.Ops,
			Reads:        res.Reads,
			Updates:      res.Updates,
			Scans:        res.Scans,
			RMWs:         res.RMWs,
			Deletes:      res.Deletes,
			Misses:       res.Misses,
			ScanEntries:  res.ScanEntries,
			BytesWritten: res.BytesWritten,
			SimElapsedMs: res.Elapsed.Micros() / 1000,
			SimKops:      res.SimKops(),
			ReadP50Us:    pct(res.readLat, 0.50),
			ReadP99Us:    pct(res.readLat, 0.99),
			UpdateP50Us:  pct(res.updateLat, 0.50),
			UpdateP99Us:  pct(res.updateLat, 0.99),
			ScanP99Us:    pct(res.scanLat, 0.99),
			RMWP99Us:     pct(res.rmwLat, 0.99),
		}
		points = append(points, p)
		t.AddRow(p.Scenario, p.SimKops, p.ReadP50Us, p.ReadP99Us,
			p.UpdateP99Us, p.ScanP99Us, p.RMWP99Us, float64(p.Misses))
	}
	return t, points, nil
}
