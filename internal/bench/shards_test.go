package bench

import (
	"encoding/json"
	"testing"
)

// Small scale: assert shape and positivity. Wall-clock throughput depends on
// the host machine, so scaling ratios are demonstrated by the committed
// results artifact, not asserted here.
func TestRunShardScaling(t *testing.T) {
	o := Options{Scale: 1500, Seed: 42, Shards: []int{1, 2}}
	tab, points, err := RunShardScaling(o)
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "shards" || len(tab.Rows) != 2 {
		t.Fatalf("table shape: id=%q rows=%d", tab.ID, len(tab.Rows))
	}
	if len(points) != len(o.Shards)*len(shardConfigs) {
		t.Fatalf("got %d points, want %d", len(points), len(o.Shards)*len(shardConfigs))
	}
	for _, p := range points {
		if p.Ops != 1500 {
			t.Errorf("%s/%d: ops = %d, want 1500", p.Config, p.Shards, p.Ops)
		}
		if p.WallKops <= 0 || p.SimUsPerOp <= 0 || p.RespUs <= 0 || p.WallMillis <= 0 {
			t.Errorf("%s/%d: non-positive measurement: %+v", p.Config, p.Shards, p)
		}
	}
	// Simulated cost is deterministic: a re-run must reproduce it exactly.
	_, again, err := RunShardScaling(o)
	if err != nil {
		t.Fatal(err)
	}
	for i := range points {
		if points[i].SimUsPerOp != again[i].SimUsPerOp || points[i].RespUs != again[i].RespUs {
			t.Errorf("%s/%d: simulated metrics not reproducible: %v vs %v",
				points[i].Config, points[i].Shards, points[i], again[i])
		}
	}
}

func TestShardScalingJSON(t *testing.T) {
	points := []ShardPoint{{Shards: 1, Config: "Baseline", Ops: 10, WallKops: 1, SimUsPerOp: 2, RespUs: 3, WallMillis: 4}}
	raw, err := ShardScalingJSON(points)
	if err != nil {
		t.Fatal(err)
	}
	var back []ShardPoint
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0] != points[0] {
		t.Fatalf("round trip: %+v", back)
	}
}

func TestShardScalingRejectsBadCounts(t *testing.T) {
	if _, _, err := RunShardScaling(Options{Scale: 10, Shards: []int{0}}); err == nil {
		t.Fatal("shard count 0 accepted")
	}
}
