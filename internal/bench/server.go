package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"bandslim"
	"bandslim/internal/metrics"
	"bandslim/internal/resp"
	"bandslim/internal/server"
)

// ServerPoint is one conns×depth serving measurement, shaped for
// BENCH_server.json. Latencies are wall-clock client-side round trips —
// unlike the simulated metrics, they depend on the host machine; the sweep
// exists to show throughput scaling with pipeline depth, not absolute
// numbers.
type ServerPoint struct {
	Conns      int     `json:"conns"`
	Depth      int     `json:"depth"`
	Ops        int64   `json:"ops"`
	WallMillis float64 `json:"wall_ms"`
	WallKops   float64 `json:"wall_kops"`
	P50Us      float64 `json:"p50_us"`
	P99Us      float64 `json:"p99_us"`
	Stalls     int64   `json:"backpressure_stalls"`
	SimPuts    int64   `json:"sim_puts"`
	SimGets    int64   `json:"sim_gets"`
}

// ServerSweepJSON renders the points as indented JSON for BENCH_server.json.
func ServerSweepJSON(points []ServerPoint) ([]byte, error) {
	return json.MarshalIndent(points, "", "  ")
}

// serverClient drives one pipelined connection: batches of depth commands
// (alternating SET and GET over a small per-client keyspace), one flush per
// batch, replies checked and latency-stamped as they arrive.
func serverClient(addr string, id, ops, depth int, lat *metrics.Histogram) error {
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return err
	}
	defer nc.Close()
	r, w := resp.NewReader(nc), resp.NewWriter(nc)

	value := make([]byte, 128)
	for i := range value {
		value[i] = byte('a' + i%26)
	}
	key := func(i int) []byte {
		return fmt.Appendf(nil, "lg%02dk%03d", id, i%256)
	}
	// Seed the keyspace so GETs always hit.
	for i := 0; i < 256 && i < ops; i++ {
		w.Command([]byte("SET"), key(i), value)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	for i := 0; i < 256 && i < ops; i++ {
		if _, err := r.ReadReply(); err != nil {
			return err
		}
	}

	sent := 0
	for sent < ops {
		n := depth
		if rest := ops - sent; rest < n {
			n = rest
		}
		for i := 0; i < n; i++ {
			if (sent+i)%2 == 0 {
				w.Command([]byte("SET"), key(sent+i), value)
			} else {
				w.Command([]byte("GET"), key(sent+i))
			}
		}
		start := time.Now()
		if err := w.Flush(); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			rep, err := r.ReadReply()
			if err != nil {
				return err
			}
			if rep.Kind == resp.KindError {
				return fmt.Errorf("server error reply: %s", rep.Str)
			}
			lat.Observe(float64(time.Since(start).Nanoseconds()))
		}
		sent += n
	}
	return nil
}

// runServerPoint serves a fresh sharded stack on loopback and drives it with
// conns pipelined clients of the given depth.
func runServerPoint(o Options, shards, conns, depth int) (ServerPoint, error) {
	cfg := bandslim.DefaultConfig()
	cfg.Method = bandslim.Adaptive
	db, err := bandslim.OpenSharded(bandslim.ShardedConfig{Shards: shards, PerShard: cfg})
	if err != nil {
		return ServerPoint{}, err
	}
	defer db.Close()
	srv, err := server.New(server.Config{DB: db})
	if err != nil {
		return ServerPoint{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return ServerPoint{}, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	shutdown := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		return <-serveErr
	}

	perConn := o.Scale / conns
	if perConn < 1 {
		perConn = 1
	}
	hists := make([]*metrics.Histogram, conns)
	errs := make([]error, conns)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < conns; g++ {
		hists[g] = metrics.NewHistogram()
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			errs[g] = serverClient(ln.Addr().String(), g, perConn, depth, hists[g])
		}(g)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			shutdown()
			return ServerPoint{}, fmt.Errorf("bench: server conns=%d depth=%d: %w", conns, depth, err)
		}
	}
	st := srv.Stats()
	sim := db.Stats()
	if err := shutdown(); err != nil {
		return ServerPoint{}, err
	}

	merged := hists[0]
	for _, h := range hists[1:] {
		merged.Merge(h)
	}
	ops := int64(perConn * conns)
	return ServerPoint{
		Conns:      conns,
		Depth:      depth,
		Ops:        ops,
		WallMillis: float64(wall.Microseconds()) / 1000,
		WallKops:   float64(ops) / wall.Seconds() / 1000,
		P50Us:      merged.P50() / 1000,
		P99Us:      merged.P99() / 1000,
		Stalls:     st.Stalls,
		SimPuts:    sim.Host.Puts,
		SimGets:    sim.Host.Gets,
	}, nil
}

// RunServerSweep measures the serving front-end over loopback across
// connection counts and pipeline depths: a 50/50 SET/GET mix, one fresh
// server per point. Throughput should rise with depth as coalescing hands
// bigger bursts to the batch path; the stall column shows backpressure
// engaging once the pipeline outruns the in-flight window.
func RunServerSweep(o Options, shards int, conns, depths []int) (*Table, []ServerPoint, error) {
	o = o.normalized()
	if shards < 1 {
		shards = 4
	}
	if len(conns) == 0 {
		conns = []int{1, 4}
	}
	if len(depths) == 0 {
		depths = []int{1, 8, 64}
	}
	t := &Table{
		ID: "server", Title: "RESP Serving: Loopback Throughput vs Pipeline Depth",
		XLabel:  "conns x depth",
		Columns: []string{"wall_kops", "p50_us", "p99_us", "stalls"},
		Notes: []string{
			fmt.Sprintf("scale=%d ops per point split across conns, 50/50 SET/GET, 128 B values, %d shards", o.Scale, shards),
			"wall-clock numbers are host-machine dependent; shapes (scaling with depth) are the signal",
		},
	}
	var points []ServerPoint
	for _, c := range conns {
		if c < 1 {
			return nil, nil, fmt.Errorf("bench: conns must be >= 1, got %d", c)
		}
		for _, d := range depths {
			if d < 1 {
				return nil, nil, fmt.Errorf("bench: depth must be >= 1, got %d", d)
			}
			p, err := runServerPoint(o, shards, c, d)
			if err != nil {
				return nil, nil, err
			}
			points = append(points, p)
			t.AddRow(fmt.Sprintf("%dx%d", c, d), p.WallKops, p.P50Us, p.P99Us, float64(p.Stalls))
		}
	}
	return t, points, nil
}
