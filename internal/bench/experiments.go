package bench

import (
	"fmt"

	"bandslim"
	"bandslim/internal/workload"
)

// valueSizesFig8 are the x points of Fig. 8 and Fig. 11.
var valueSizesFig8 = []int{4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

// sizeLabel renders a byte count the way the paper's x axes do.
func sizeLabel(n int) string {
	if n >= 1024 && n%1024 == 0 {
		return fmt.Sprintf("%dK", n/1024)
	}
	return fmt.Sprintf("%d", n)
}

// RunFig3 reproduces Fig. 3: (a) total PCIe traffic and average transfer
// response for 1–16 KiB values on the baseline KV-SSD with NAND I/O
// disabled, and (b) the Traffic Amplification Factor for 32 B–1 KiB values.
func RunFig3(o Options) (*Table, *Table, error) {
	o = o.normalized()
	a := &Table{
		ID: "fig3a", Title: "Total PCIe Traffic & Avg. Response Time (Baseline)",
		XLabel:  "value size (KB)",
		Columns: []string{"traffic_GB", "response_us"},
		Notes: []string{
			fmt.Sprintf("scale=%d ops per point (paper: 1M); traffic scales linearly", o.Scale),
			"traffic doubles at every 4 KiB boundary (page-unit PRP transfers)",
		},
	}
	for kb := 1; kb <= 16; kb++ {
		res, err := run(workload.NewFillSeq(o.Scale, kb*1024), bandslim.Baseline, bandslim.Block, false)
		if err != nil {
			return nil, nil, err
		}
		a.AddRow(fmt.Sprintf("%d", kb),
			gb(res.Stats.PCIe.Bytes),
			res.Stats.Host.WriteResp.Mean.Micros())
	}
	b := &Table{
		ID: "fig3b", Title: "PCIe Traffic Amplification Factor (Baseline)",
		XLabel:  "value size (B)",
		Columns: []string{"TAF"},
		Notes:   []string{"paper: 130.0 / 65.0 / 32.5 / 16.3 / 8.1 / 4.1"},
	}
	for _, size := range []int{32, 64, 128, 256, 512, 1024} {
		res, err := run(workload.NewFillSeq(o.Scale, size), bandslim.Baseline, bandslim.Block, false)
		if err != nil {
			return nil, nil, err
		}
		b.AddRow(sizeLabel(size), res.Stats.TrafficAmplification(res.PayloadBytes))
	}
	return a, b, nil
}

// RunFig4 reproduces Fig. 4: (a) total NAND page writes and average write
// response for 1–16 KiB values with NAND enabled, and (b) the Write
// Amplification Factor for 32 B–1 KiB values (which includes LSM-tree
// flush/compaction writes, as the paper notes).
func RunFig4(o Options) (*Table, *Table, error) {
	o = o.normalized()
	a := &Table{
		ID: "fig4a", Title: "Total NAND Page Writes & Avg. Write Response (Baseline)",
		XLabel:  "value size (KB)",
		Columns: []string{"nand_io", "response_us"},
		Notes: []string{
			fmt.Sprintf("scale=%d ops per point (paper: 1M); counts scale linearly", o.Scale),
			"write responses are NAND-program dominated (>10x transfer responses)",
		},
	}
	for kb := 1; kb <= 16; kb++ {
		res, err := run(workload.NewFillSeq(o.Scale, kb*1024), bandslim.Baseline, bandslim.Block, true)
		if err != nil {
			return nil, nil, err
		}
		a.AddRow(fmt.Sprintf("%d", kb),
			float64(res.Stats.Device.NANDPageWrites),
			res.Stats.Host.WriteResp.Mean.Micros())
	}
	b := &Table{
		ID: "fig4b", Title: "NAND Write Amplification Factor (Baseline)",
		XLabel:  "value size (B)",
		Columns: []string{"WAF"},
		Notes:   []string{"paper: 129.9 / 64.9 / 32.4 / 16.2 / 8.1 / 4.0 (incl. compaction writes)"},
	}
	for _, size := range []int{32, 64, 128, 256, 512, 1024} {
		res, err := run(workload.NewFillSeq(o.Scale, size), bandslim.Baseline, bandslim.Block, true)
		if err != nil {
			return nil, nil, err
		}
		b.AddRow(sizeLabel(size), res.Stats.WriteAmplification(res.PayloadBytes, 16*1024))
	}
	return a, b, nil
}

// RunFig8 reproduces Fig. 8: total PCIe traffic and average response for
// Baseline vs Piggyback across 4 B–4 KiB values, NAND disabled.
func RunFig8(o Options) (*Table, error) {
	o = o.normalized()
	t := &Table{
		ID: "fig8", Title: "PCIe Traffic & Response: Baseline vs Piggyback (NAND off)",
		XLabel: "value size (B)",
		Columns: []string{
			"Baseline_traffic_GB", "Piggyback_traffic_GB",
			"Baseline_resp_us", "Piggyback_resp_us",
		},
		Notes: []string{
			fmt.Sprintf("scale=%d ops per point (paper: 1M)", o.Scale),
			"piggyback traffic overtakes baseline at 4K (trailing-command overhead)",
		},
	}
	for _, size := range valueSizesFig8 {
		base, err := run(workload.NewFillSeq(o.Scale, size), bandslim.Baseline, bandslim.Block, false)
		if err != nil {
			return nil, err
		}
		pig, err := run(workload.NewFillSeq(o.Scale, size), bandslim.Piggyback, bandslim.Block, false)
		if err != nil {
			return nil, err
		}
		t.AddRow(sizeLabel(size),
			gb(base.Stats.PCIe.Bytes), gb(pig.Stats.PCIe.Bytes),
			base.Stats.Host.WriteResp.Mean.Micros(), pig.Stats.Host.WriteResp.Mean.Micros())
	}
	return t, nil
}

// RunFig9 reproduces Fig. 9: PCIe traffic (a) and response (b) for values of
// 4 KiB plus trailing bytes from 4 B to 4 KiB, under Baseline, Piggyback and
// Hybrid, NAND disabled.
func RunFig9(o Options) (*Table, error) {
	o = o.normalized()
	t := &Table{
		ID: "fig9", Title: "Hybrid Transfer: 4K+trailing-byte values (NAND off)",
		XLabel: "trailing bytes after 4KB",
		Columns: []string{
			"Baseline_traffic_GB", "Piggyback_traffic_GB", "Hybrid_traffic_GB",
			"Baseline_resp_us", "Piggyback_resp_us", "Hybrid_resp_us",
		},
		Notes: []string{
			fmt.Sprintf("scale=%d ops per point (paper: 1M)", o.Scale),
			"hybrid: first 4K by page-unit DMA, tail piggybacked in 56B commands",
		},
	}
	for _, tail := range valueSizesFig8 {
		size := 4096 + tail
		base, err := run(workload.NewFillSeq(o.Scale, size), bandslim.Baseline, bandslim.Block, false)
		if err != nil {
			return nil, err
		}
		pig, err := run(workload.NewFillSeq(o.Scale, size), bandslim.Piggyback, bandslim.Block, false)
		if err != nil {
			return nil, err
		}
		hyb, err := run(workload.NewFillSeq(o.Scale, size), bandslim.Hybrid, bandslim.Block, false)
		if err != nil {
			return nil, err
		}
		t.AddRow(sizeLabel(tail),
			gb(base.Stats.PCIe.Bytes), gb(pig.Stats.PCIe.Bytes), gb(hyb.Stats.PCIe.Bytes),
			base.Stats.Host.WriteResp.Mean.Micros(), pig.Stats.Host.WriteResp.Mean.Micros(), hyb.Stats.Host.WriteResp.Mean.Micros())
	}
	return t, nil
}

// RunFig10 reproduces Fig. 10: response time (a), throughput (b), PCIe
// traffic (c) and host MMIO traffic (d) for Workloads B, C, D, M under
// Baseline, Piggyback and Adaptive transfer, NAND disabled (§4.2).
func RunFig10(o Options) ([]*Table, error) {
	o = o.normalized()
	methods := []struct {
		name string
		m    bandslim.TransferMethod
	}{
		{"Baseline", bandslim.Baseline},
		{"Piggyback", bandslim.Piggyback},
		{"Adaptive", bandslim.Adaptive},
	}
	mk := func(id, title string, unit string) *Table {
		return &Table{
			ID: id, Title: title, XLabel: "method",
			Columns: workloadLabels,
			Notes:   []string{fmt.Sprintf("scale=%d ops (paper: 1M); values in %s", o.Scale, unit)},
		}
	}
	resp := mk("fig10a", "Average Response Time by Transfer Method", "us")
	thr := mk("fig10b", "Average Throughput by Transfer Method", "Kops/s")
	traf := mk("fig10c", "Total PCIe Traffic by Transfer Method", "GB")
	traf.Notes = append(traf.Notes,
		"counts all TLPs (commands, DMA, completions, doorbells), as Intel PCM does")
	mmio := mk("fig10d", "Total Host MMIO Traffic by Transfer Method", "MB")
	for _, m := range methods {
		cells := struct{ resp, thr, traf, mmio []float64 }{}
		for wi := range workloadLabels {
			gen := workloadsBCDM(o)[wi]
			res, err := run(gen, m.m, bandslim.Block, false)
			if err != nil {
				return nil, err
			}
			cells.resp = append(cells.resp, res.Stats.Host.WriteResp.Mean.Micros())
			cells.thr = append(cells.thr, res.Stats.Host.ThroughputKops)
			cells.traf = append(cells.traf, gb(res.Stats.PCIe.TotalBytes))
			cells.mmio = append(cells.mmio, mb(res.Stats.PCIe.MMIOBytes))
		}
		resp.AddRow(m.name, cells.resp...)
		thr.AddRow(m.name, cells.thr...)
		traf.AddRow(m.name, cells.traf...)
		mmio.AddRow(m.name, cells.mmio...)
	}
	return []*Table{resp, thr, traf, mmio}, nil
}

// RunFig11 reproduces Fig. 11: NAND page I/O counts (a) and write response
// (b) for 4 B–4 KiB fillseq under four configurations — Baseline (PRP +
// Block), Piggyback (inline + Block), Packing (PRP + All Packing), and
// Piggy+Pack (inline + All Packing) — with NAND enabled.
func RunFig11(o Options) (*Table, error) {
	o = o.normalized()
	t := &Table{
		ID: "fig11", Title: "NAND Page I/O & Write Response (All Packing, NAND on)",
		XLabel: "value size (B)",
		Columns: []string{
			"Baseline_nand_io", "Piggyback_nand_io", "Packing_nand_io", "PiggyPack_nand_io",
			"Baseline_resp_us", "Piggyback_resp_us", "Packing_resp_us", "PiggyPack_resp_us",
		},
		Notes: []string{
			fmt.Sprintf("scale=%d ops per point (paper: 10M); counts scale linearly", o.Scale),
			"NAND I/O includes LSM flush/compaction writes",
		},
	}
	configs := []struct {
		method bandslim.TransferMethod
		policy bandslim.PackingPolicy
	}{
		{bandslim.Baseline, bandslim.Block},
		{bandslim.Piggyback, bandslim.Block},
		{bandslim.Baseline, bandslim.AllPacking},
		{bandslim.Piggyback, bandslim.AllPacking},
	}
	for _, size := range valueSizesFig8 {
		var nandIO, resp []float64
		for _, c := range configs {
			res, err := run(workload.NewFillSeq(o.Scale, size), c.method, c.policy, true)
			if err != nil {
				return nil, err
			}
			nandIO = append(nandIO, float64(res.Stats.Device.NANDPageWrites))
			resp = append(resp, res.Stats.Host.WriteResp.Mean.Micros())
		}
		t.AddRow(sizeLabel(size), append(nandIO, resp...)...)
	}
	return t, nil
}

// RunFig12 reproduces Fig. 12: response time (a), throughput (b), NAND I/O
// count (c), and average per-request memcpy time (d) for the four packing
// policies under adaptive transfer, across Workloads B, C, D, M.
func RunFig12(o Options) ([]*Table, error) {
	o = o.normalized()
	policies := []string{"Block", "All", "Select", "Backfill"}
	mk := func(id, title, unit string) *Table {
		return &Table{
			ID: id, Title: title, XLabel: "policy",
			Columns: workloadLabels,
			Notes:   []string{fmt.Sprintf("scale=%d ops (paper: 1M); values in %s", o.Scale, unit)},
		}
	}
	resp := mk("fig12a", "Average Response Time by Packing Policy", "us")
	thr := mk("fig12b", "Average Throughput by Packing Policy", "Kops/s")
	nandIO := mk("fig12c", "Total NAND I/O by Packing Policy", "pages")
	memcpy := mk("fig12d", "Average Memcpy Time per Request", "us")
	for _, p := range policies {
		var r, th, ni, mc []float64
		for wi := range workloadLabels {
			gen := workloadsBCDM(o)[wi]
			res, err := run(gen, bandslim.Adaptive, policyFor[p], true)
			if err != nil {
				return nil, err
			}
			r = append(r, res.Stats.Host.WriteResp.Mean.Micros())
			th = append(th, res.Stats.Host.ThroughputKops)
			ni = append(ni, float64(res.Stats.Device.NANDPageWrites))
			mc = append(mc, res.Stats.Device.MemcpyTime.Micros()/float64(res.Ops))
		}
		resp.AddRow(p, r...)
		thr.AddRow(p, th...)
		nandIO.AddRow(p, ni...)
		memcpy.AddRow(p, mc...)
	}
	return []*Table{resp, thr, nandIO, memcpy}, nil
}

// RunAll executes every experiment and returns the tables in paper order.
func RunAll(o Options) ([]*Table, error) {
	var out []*Table
	f3a, f3b, err := RunFig3(o)
	if err != nil {
		return nil, err
	}
	out = append(out, f3a, f3b)
	f4a, f4b, err := RunFig4(o)
	if err != nil {
		return nil, err
	}
	out = append(out, f4a, f4b)
	f8, err := RunFig8(o)
	if err != nil {
		return nil, err
	}
	out = append(out, f8)
	f9, err := RunFig9(o)
	if err != nil {
		return nil, err
	}
	out = append(out, f9)
	f10, err := RunFig10(o)
	if err != nil {
		return nil, err
	}
	out = append(out, f10...)
	f11, err := RunFig11(o)
	if err != nil {
		return nil, err
	}
	out = append(out, f11)
	f12, err := RunFig12(o)
	if err != nil {
		return nil, err
	}
	out = append(out, f12...)
	return out, nil
}

// Experiments lists the runnable experiment IDs for CLIs.
func Experiments() []string {
	return []string{
		"fig3", "fig4", "fig8", "fig9", "fig10", "fig11", "fig12",
		"ablation-sgl", "ablation-batch", "ablation-dlt", "ablation-buffer",
		"ablation-alpha", "ablation-nand", "ablation-pipeline", "breakdown", "read", "scan",
		"shards", "server", "qd", "blame", "cache", "ycsb", "all", "ablations",
	}
}

// Run executes one experiment by ID.
func Run(id string, o Options) ([]*Table, error) {
	switch id {
	case "fig3":
		a, b, err := RunFig3(o)
		if err != nil {
			return nil, err
		}
		return []*Table{a, b}, nil
	case "fig4":
		a, b, err := RunFig4(o)
		if err != nil {
			return nil, err
		}
		return []*Table{a, b}, nil
	case "fig8":
		t, err := RunFig8(o)
		if err != nil {
			return nil, err
		}
		return []*Table{t}, nil
	case "fig9":
		t, err := RunFig9(o)
		if err != nil {
			return nil, err
		}
		return []*Table{t}, nil
	case "fig10":
		return RunFig10(o)
	case "fig11":
		t, err := RunFig11(o)
		if err != nil {
			return nil, err
		}
		return []*Table{t}, nil
	case "fig12":
		return RunFig12(o)
	case "ablation-sgl":
		return one(RunAblationSGL(o))
	case "ablation-batch":
		return one(RunAblationBatch(o))
	case "ablation-dlt":
		return one(RunAblationDLT(o))
	case "ablation-buffer":
		return one(RunAblationBuffer(o))
	case "ablation-alpha":
		return one(RunAblationAlpha(o))
	case "ablation-nand":
		return one(RunAblationNAND(o))
	case "ablation-pipeline":
		return one(RunAblationPipeline(o))
	case "breakdown":
		return one(RunBreakdown(o))
	case "read":
		return one(RunReadPath(o))
	case "scan":
		return one(RunScanPath(o))
	case "shards":
		t, _, err := RunShardScaling(o)
		if err != nil {
			return nil, err
		}
		return []*Table{t}, nil
	case "ablations":
		return RunAblations(o)
	case "all":
		return RunAll(o)
	}
	return nil, fmt.Errorf("bench: unknown experiment %q (have %v)", id, Experiments())
}

func one(t *Table, err error) ([]*Table, error) {
	if err != nil {
		return nil, err
	}
	return []*Table{t}, nil
}

// RunAblations executes every ablation study plus the read-path extension.
func RunAblations(o Options) ([]*Table, error) {
	runners := []func(Options) (*Table, error){
		RunAblationSGL, RunAblationBatch, RunAblationDLT,
		RunAblationBuffer, RunAblationAlpha, RunAblationNAND,
		RunAblationPipeline, RunBreakdown, RunReadPath, RunScanPath,
	}
	var out []*Table
	for _, r := range runners {
		t, err := r(o)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
