package bench

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"bandslim"
	"bandslim/internal/workload"
)

// mixedScenario builds the all-kinds scenario the drive tests use.
func mixedScenario(t *testing.T, seed uint64) workload.Scenario {
	t.Helper()
	s, err := workload.NewScenario("mixed", workload.ScenarioConfig{
		Records: 150, Ops: 400, Seed: seed,
		Arrival: workload.ArrivalConfig{Rate: 50000, Jitter: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func openDrive(t *testing.T, shards int) ScenarioDB {
	t.Helper()
	cfg := bandslim.DefaultConfig()
	if shards <= 1 {
		db, err := bandslim.Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	db, err := bandslim.OpenSharded(bandslim.ShardedConfig{Shards: shards, PerShard: cfg})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func closeDrive(t *testing.T, db ScenarioDB) {
	t.Helper()
	var err error
	switch d := db.(type) {
	case *bandslim.DB:
		err = d.Close()
	case *bandslim.ShardedDB:
		err = d.Close()
	}
	if err != nil {
		t.Fatal(err)
	}
}

// TestDriveScenarioRecordReplay is the engine-level replay identity: a
// recorded live run and a replay of its trace produce equal results — op
// counts, byte counts, and every virtual-clock latency sample — on both
// stack flavors.
func TestDriveScenarioRecordReplay(t *testing.T) {
	for _, shards := range []int{1, 2} {
		db := openDrive(t, shards)
		var tr workload.Trace
		live, err := DriveScenario(db, mixedScenario(t, 9), 9, &tr)
		closeDrive(t, db)
		if err != nil {
			t.Fatalf("shards=%d: live run: %v", shards, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("shards=%d: recorded trace invalid: %v", shards, err)
		}
		if int64(len(tr.Ops)) != live.Ops {
			t.Fatalf("shards=%d: recorded %d ops, executed %d", shards, len(tr.Ops), live.Ops)
		}
		db = openDrive(t, shards)
		replay, err := DriveScenario(db, workload.NewReplay(&tr), tr.Seed, nil)
		closeDrive(t, db)
		if err != nil {
			t.Fatalf("shards=%d: replay run: %v", shards, err)
		}
		replay.Name = live.Name
		if !reflect.DeepEqual(live, replay) {
			t.Fatalf("shards=%d: replay diverged from live run:\nlive   %+v\nreplay %+v",
				shards, live, replay)
		}
	}
}

// TestDriveScenarioDeterminism re-runs the same scenario on fresh stacks and
// expects bit-identical results and recorded traces.
func TestDriveScenarioDeterminism(t *testing.T) {
	run := func() (ScenarioResult, string) {
		db := openDrive(t, 1)
		defer closeDrive(t, db)
		var tr workload.Trace
		res, err := DriveScenario(db, mixedScenario(t, 4), 4, &tr)
		if err != nil {
			t.Fatal(err)
		}
		return res, workload.FormatTrace(&tr)
	}
	resA, trA := run()
	resB, trB := run()
	if !reflect.DeepEqual(resA, resB) {
		t.Fatalf("results diverged:\n%+v\n%+v", resA, resB)
	}
	if trA != trB {
		t.Fatal("recorded traces diverged across identical runs")
	}
}

func TestRunYCSBSmall(t *testing.T) {
	opts := Options{Scale: 1200, Seed: 42}
	table, points, err := RunYCSB(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("got %d scenario rows, want 6", len(points))
	}
	for i, name := range []string{"ycsb-a", "ycsb-b", "ycsb-c", "ycsb-d", "ycsb-e", "ycsb-f"} {
		p := points[i]
		if p.Scenario != name {
			t.Fatalf("row %d is %q, want %q", i, p.Scenario, name)
		}
		if p.Ops != int64(p.Records+opts.Scale) {
			t.Fatalf("%s: %d ops, want %d", name, p.Ops, p.Records+opts.Scale)
		}
		if p.SimElapsedMs <= 0 || p.SimKops <= 0 {
			t.Fatalf("%s: missing simulated timing: %+v", name, p)
		}
		if p.BytesWritten <= 0 {
			t.Fatalf("%s: no bytes written", name)
		}
	}
	if points[2].Misses != 0 {
		t.Fatalf("read-only workload C missed %d reads on a loaded keyspace", points[2].Misses)
	}
	if points[4].ScanEntries == 0 {
		t.Fatal("scan workload E stepped no entries")
	}
	text := table.Format()
	for _, want := range []string{"ycsb-a", "sim_kops", "read_p99_us"} {
		if !strings.Contains(text, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, text)
		}
	}

	// The whole experiment is deterministic: a second run's JSON is
	// byte-identical (the ycsb-smoke gate in CI re-checks via the binary).
	_, points2, err := RunYCSB(opts)
	if err != nil {
		t.Fatal(err)
	}
	j1, err1 := YCSBJSON(points)
	j2, err2 := YCSBJSON(points2)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatal("BENCH_ycsb.json content not deterministic")
	}
}
