package bench

import "testing"

func TestAblationSGLShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("bench experiment")
	}
	tb, err := RunAblationSGL(Options{Scale: 500})
	if err != nil {
		t.Fatal(err)
	}
	prp, _ := tb.Column("PRP_resp_us")
	sgl, _ := tb.Column("SGL_resp_us")
	// SGL loses badly at KVS-typical sizes (rows 0..3: 64 B..8 KiB)...
	for i := 0; i <= 3; i++ {
		if sgl[i] <= prp[i] {
			t.Errorf("row %d: SGL %.1f not worse than PRP %.1f", i, sgl[i], prp[i])
		}
	}
	// ...and wins at 48 KiB (last row), past the Linux sgl_threshold.
	last := len(prp) - 1
	if sgl[last] >= prp[last] {
		t.Errorf("48K: SGL %.1f not better than PRP %.1f", sgl[last], prp[last])
	}
	// SGL traffic is exact-byte (≪ PRP) for small values.
	pt, _ := tb.Column("PRP_traffic_KB_op")
	st, _ := tb.Column("SGL_traffic_KB_op")
	if st[0] >= pt[0]/10 {
		t.Errorf("64B: SGL traffic %.3f not ≪ PRP %.3f", st[0], pt[0])
	}
}

func TestAblationBatchShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("bench experiment")
	}
	tb, err := RunAblationBatch(Options{Scale: 2000})
	if err != nil {
		t.Fatal(err)
	}
	// Batching's throughput grows with batch size, but so does the
	// volatile window; BandSlim keeps the window at zero.
	k8, _ := tb.Cell("batch=8", "Kops")
	k256, _ := tb.Cell("batch=256", "Kops")
	if k256 <= k8 {
		t.Errorf("batch=256 Kops %.1f not above batch=8 %.1f", k256, k8)
	}
	r256, _ := tb.Cell("batch=256", "at_risk_ops")
	if r256 != 256 {
		t.Errorf("batch=256 at-risk ops = %v", r256)
	}
	rSlim, _ := tb.Cell("bandslim(adaptive+backfill)", "at_risk_ops")
	if rSlim != 0 {
		t.Errorf("bandslim at-risk ops = %v, want 0", rSlim)
	}
	// BandSlim still crushes the stock configuration.
	slim, _ := tb.Cell("bandslim(adaptive+backfill)", "Kops")
	stock, _ := tb.Cell("stock(baseline+block)", "Kops")
	if slim < 3*stock {
		t.Errorf("bandslim %.1f not ≫ stock %.1f", slim, stock)
	}
}

func TestAblationDLTShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("bench experiment")
	}
	tb, err := RunAblationDLT(Options{Scale: 3000})
	if err != nil {
		t.Fatal(err)
	}
	// Throughput must not degrade as the DLT grows to the paper's 512.
	k2, _ := tb.Cell("2", "Kops")
	k512, _ := tb.Cell("512", "Kops")
	if k512 < k2 {
		t.Errorf("512-entry DLT Kops %.1f below 2-entry %.1f", k512, k2)
	}
	j2, _ := tb.Cell("2", "backfill_jumps")
	j512, _ := tb.Cell("512", "backfill_jumps")
	if j512 < j2 {
		t.Errorf("larger DLT produced fewer jumps: %v vs %v", j512, j2)
	}
}

func TestAblationBufferShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("bench experiment")
	}
	tb, err := RunAblationBuffer(Options{Scale: 2000})
	if err != nil {
		t.Fatal(err)
	}
	r8, _ := tb.Cell("8", "resp_us")
	r512, _ := tb.Cell("512", "resp_us")
	if r512 > r8 {
		t.Errorf("512-entry buffer response %.1f worse than 8-entry %.1f", r512, r8)
	}
}

func TestAblationAlphaShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("bench experiment")
	}
	tb, err := RunAblationAlpha(Options{Scale: 2000})
	if err != nil {
		t.Fatal(err)
	}
	traffic, _ := tb.Column("traffic_MB")
	inline, _ := tb.Column("inline_fraction")
	// Traffic strictly decreases and the inline fraction strictly grows
	// with alpha (§3.2's user dial).
	for i := 1; i < len(traffic); i++ {
		if traffic[i] >= traffic[i-1] {
			t.Errorf("traffic not decreasing at row %d: %v", i, traffic)
		}
		if inline[i] < inline[i-1] {
			t.Errorf("inline fraction not growing at row %d: %v", i, inline)
		}
	}
}

func TestAblationNANDRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("bench experiment")
	}
	tb, err := RunAblationNAND(Options{Scale: 500})
	if err != nil {
		t.Fatal(err)
	}
	resp, _ := tb.Column("resp_us")
	// 16 KiB writes stay tPROG-bound (~400 µs) across geometries.
	for i, r := range resp {
		if r < 350 || r > 450 {
			t.Errorf("row %d: response %.1f not tPROG-bound", i, r)
		}
	}
}

func TestAblationPipelineShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("bench experiment")
	}
	tb, err := RunAblationPipeline(Options{Scale: 500})
	if err != nil {
		t.Fatal(err)
	}
	serial, _ := tb.Column("PiggySerial_resp_us")
	pipe, _ := tb.Column("PiggyPipe_resp_us")
	prp, _ := tb.Column("PRP_resp_us")
	// Pipelining must dominate serial piggybacking once trailing commands
	// appear, by a growing factor.
	for i := 1; i < len(serial); i++ {
		if pipe[i] >= serial[i] {
			t.Errorf("row %d: pipelined %.1f not below serial %.1f", i, pipe[i], serial[i])
		}
	}
	if serial[4]/pipe[4] < 3 {
		t.Errorf("2K: pipeline speedup %.2fx, want >3x", serial[4]/pipe[4])
	}
	// Pipelined piggybacking stays competitive with PRP far beyond 128 B.
	if pipe[2] > 1.5*prp[2] {
		t.Errorf("512B: pipelined %.1f not competitive with PRP %.1f", pipe[2], prp[2])
	}
	// One SQ + one CQ doorbell per PUT: 8 B of MMIO regardless of size
	// (until the burst splits).
	mmio, _ := tb.Column("PiggyPipe_mmio_B_op")
	if mmio[0] != 8 {
		t.Errorf("pipelined MMIO %v B/op, want 8", mmio[0])
	}
}

func TestBreakdownShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("bench experiment")
	}
	tb, err := RunBreakdown(Options{Scale: 2000})
	if err != nil {
		t.Fatal(err)
	}
	// Block's response is flush-wait dominated; All's extra cost over the
	// selective policies is memcpy; components never exceed the total.
	for _, p := range []string{"Block", "All", "Select", "Backfill"} {
		total, _ := tb.Cell(p, "total_us")
		mc, _ := tb.Cell(p, "memcpy_us")
		fw, _ := tb.Cell(p, "flushwait_us")
		if mc+fw > total+0.01 {
			t.Errorf("%s: components %.2f+%.2f exceed total %.2f", p, mc, fw, total)
		}
	}
	bfw, _ := tb.Cell("Block", "flushwait_us")
	btot, _ := tb.Cell("Block", "total_us")
	if bfw < 0.5*btot {
		t.Errorf("Block flush wait %.1f not dominant in %.1f", bfw, btot)
	}
	amc, _ := tb.Cell("All", "memcpy_us")
	smc, _ := tb.Cell("Select", "memcpy_us")
	if amc <= smc {
		t.Errorf("All memcpy %.2f not above Select %.2f", amc, smc)
	}
}

func TestScanPathShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("bench experiment")
	}
	tb, err := RunScanPath(Options{Scale: 1000})
	if err != nil {
		t.Fatal(err)
	}
	blk, _ := tb.Cell("Block", "nand_reads_per_value")
	all, _ := tb.Cell("All", "nand_reads_per_value")
	// Block: 4 values per 16 KiB page → 0.25 reads per value. All: ~31
	// values per page → ~0.03.
	if blk < 0.2 || blk > 0.3 {
		t.Errorf("Block reads/value = %v, want ~0.25", blk)
	}
	if all >= blk/4 {
		t.Errorf("All reads/value = %v not ≪ Block %v", all, blk)
	}
}

func TestReadPathShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("bench experiment")
	}
	tb, err := RunReadPath(Options{Scale: 1000})
	if err != nil {
		t.Fatal(err)
	}
	// A 32 B GET still moves a full 4 KiB page device-to-host (the read
	// mirror of Problem #1).
	traffic, _ := tb.Cell("32", "read_traffic_B_op")
	if traffic != 4096 {
		t.Errorf("32B GET read traffic %v, want 4096", traffic)
	}
	big, _ := tb.Cell("8K", "read_traffic_B_op")
	if big != 8192 {
		t.Errorf("8K GET read traffic %v, want 8192", big)
	}
	reads, _ := tb.Cell("32", "nand_reads_op")
	if reads < 1 || reads > 4 {
		t.Errorf("nand reads per GET = %v", reads)
	}
}

func TestRunAblationsProducesEveryTable(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tables, err := RunAblations(Options{Scale: 300})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 10 {
		t.Fatalf("RunAblations produced %d tables, want 10", len(tables))
	}
}

func TestRunDispatchesAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for _, id := range []string{"ablation-dlt", "read"} {
		tables, err := Run(id, Options{Scale: 200})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tables) != 1 {
			t.Fatalf("%s returned %d tables", id, len(tables))
		}
	}
}
