package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bandslim"
	"bandslim/internal/device"
	"bandslim/internal/driver"
	"bandslim/internal/sim"
	"bandslim/internal/workload"
)

// DefaultMetricsInterval is the simulated sampling period telemetry runs
// use when the caller does not pick one: fine enough to resolve the
// paper's trajectories at bench scales, coarse enough to keep series small.
const DefaultMetricsInterval = 100 * sim.Microsecond

// Telemetry drives one instrumented workload-M run on a ShardedDB with the
// simulated-time metrics sampler enabled, and exposes live progress while
// the feeders execute — the backing for bandslim-bench's -metrics-out,
// -series-out, and -listen flags. Simulated results are deterministic for a
// given (scale, seed, shards, interval); only wall-clock figures vary.
type Telemetry struct {
	// DB is the live sharded stack. Scrape it concurrently with
	// WritePrometheus/Stats; the caller closes it when done.
	DB       *bandslim.ShardedDB
	opsTotal int64
	opsDone  atomic.Int64
	start    time.Time
	wg       sync.WaitGroup
	errs     []error
}

// StartTelemetry opens the instrumented stack (paper headline config:
// adaptive transfer, backfill packing, NAND on) and starts one feeder
// goroutine per shard over pre-partitioned workload-M lanes. It returns as
// soon as the feeders are running.
func StartTelemetry(o Options, shards int, interval sim.Duration) (*Telemetry, error) {
	o = o.normalized()
	if shards < 1 {
		shards = 1
	}
	if interval <= 0 {
		interval = DefaultMetricsInterval
	}
	cfg := bandslim.DefaultConfig()
	dev := device.DefaultConfig()
	dev.Geometry = benchGeometry()
	cfg.Device = dev
	cfg.Thresholds = driver.DefaultThresholds()
	cfg.MetricsInterval = interval
	db, err := bandslim.OpenSharded(bandslim.ShardedConfig{Shards: shards, PerShard: cfg})
	if err != nil {
		return nil, fmt.Errorf("bench: telemetry: %w", err)
	}

	type op struct {
		key  []byte
		size int
	}
	gen := workload.NewWorkloadM(o.Scale, o.Seed)
	lanes := make([][]op, shards)
	var total int64
	for {
		next, ok := gen.Next()
		if !ok {
			break
		}
		lane := db.ShardFor(next.Key)
		lanes[lane] = append(lanes[lane], op{key: next.Key, size: next.ValueSize})
		total++
	}

	t := &Telemetry{DB: db, opsTotal: total, start: time.Now(), errs: make([]error, shards)}
	for i := range lanes {
		t.wg.Add(1)
		go func(i int) {
			defer t.wg.Done()
			var buf []byte
			filler := workload.NewValueFiller(1)
			for _, p := range lanes[i] {
				buf = filler.Fill(buf, p.size)
				if err := db.Put(p.key, buf); err != nil {
					t.errs[i] = err
					return
				}
				t.opsDone.Add(1)
			}
		}(i)
	}
	return t, nil
}

// Wait blocks until every feeder finishes, then flushes the drained state
// to NAND so exports cover the whole workload. The DB stays open for final
// scrapes and exports; the caller closes it.
func (t *Telemetry) Wait() error {
	t.wg.Wait()
	for i, err := range t.errs {
		if err != nil {
			return fmt.Errorf("bench: telemetry: shard %d: %w", i, err)
		}
	}
	if err := t.DB.Flush(); err != nil {
		return fmt.Errorf("bench: telemetry: flush: %w", err)
	}
	return nil
}

// Progress is the live /progress JSON shape: how far the run is, the
// simulated trajectory so far, and current wall-clock and simulated rates.
type Progress struct {
	OpsDone           int64   `json:"ops_done"`
	OpsTotal          int64   `json:"ops_total"`
	WallMillis        float64 `json:"wall_ms"`
	WallKops          float64 `json:"wall_kops"`
	SimElapsedUs      float64 `json:"sim_elapsed_us"`
	SimThroughputKops float64 `json:"sim_throughput_kops"`
	PCIeBytes         int64   `json:"pcie_bytes"`
	NANDPageWrites    int64   `json:"nand_page_writes"`
	WriteRespUs       float64 `json:"write_resp_us"`
}

// Progress snapshots the run's live state; safe to call concurrently with
// the feeders (the scrape path of the -listen HTTP endpoints).
func (t *Telemetry) Progress() Progress {
	stats := t.DB.Stats()
	done := t.opsDone.Load()
	wall := time.Since(t.start)
	p := Progress{
		OpsDone:           done,
		OpsTotal:          t.opsTotal,
		WallMillis:        float64(wall.Microseconds()) / 1000,
		SimElapsedUs:      float64(stats.Host.Elapsed.Micros()),
		SimThroughputKops: stats.Host.ThroughputKops,
		PCIeBytes:         stats.PCIe.Bytes,
		NANDPageWrites:    stats.Device.NANDPageWrites,
		WriteRespUs:       stats.Host.WriteResp.Mean.Micros(),
	}
	if secs := wall.Seconds(); secs > 0 {
		p.WallKops = float64(done) / secs / 1000
	}
	return p
}
