// Package pcie models the host↔device PCIe interconnect at the fidelity the
// BandSlim paper measures it: a byte-exact traffic ledger (split into NVMe
// command fetches, DMA payload, doorbell MMIO, and completions) plus a simple
// bandwidth/latency cost model for transfer times.
//
// Traffic accounting follows the paper's arithmetic exactly (§2.4): the
// Traffic Amplification Factor for a 32-byte value under the baseline is
// (4096 + 64)/32 = 130.0 — one 64 B command fetch plus one page-unit DMA.
// Doorbell MMIO is kept in a separate ledger, as in Fig. 10(d).
package pcie

import (
	"bandslim/internal/metrics"
	"bandslim/internal/sim"
	"bandslim/internal/trace"
)

// Wire sizes fixed by the NVMe/PCIe protocol as the paper counts them.
const (
	// CommandSize is the size of one NVMe submission queue entry.
	CommandSize = 64
	// CompletionSize is the size of one NVMe completion queue entry.
	CompletionSize = 16
	// DoorbellSize is the payload of one doorbell register write (a 32-bit
	// MMIO store). The paper's MMIO ledger counts these per ring.
	DoorbellSize = 4
	// MemoryPageSize is the host memory page size; PRP-based DMA moves
	// payload in multiples of this.
	MemoryPageSize = 4096
)

// CostModel holds the latency constants of the link, calibrated so that
// response-time *shapes* match the paper's figures (see DESIGN.md §3);
// absolute values are not meant to match the FPGA testbed.
//
// The calibration is anchored on three observations from Fig. 8/9:
//   - Piggyback(≤35 B) ≈ half of Baseline(≤4 KiB): one command round trip
//     vs. one round trip plus one page of DMA, so RT ≈ per-page DMA cost.
//   - Piggyback(64 B) (two commands) ≈ Baseline: 2·RT ≈ RT + page.
//   - Hybrid(4K+small) ≈ Baseline(4K+small) (within ~1.4%): RT + page + RT
//     ≈ RT + 2·page, again RT ≈ page.
type CostModel struct {
	// CommandRoundTrip is the fixed cost of one synchronous NVMe command:
	// driver submit + doorbell + device fetch + parse + completion +
	// host reap. The paper's passthrough path serializes commands, so each
	// command pays this in full.
	CommandRoundTrip sim.Duration
	// DMAPerPage is the fixed engine/PRP-processing cost per 4 KiB memory
	// page moved — this is what makes transfer responses cascade at 4 KiB
	// boundaries (Fig. 3a).
	DMAPerPage sim.Duration
	// SGLSetup is the fixed cost of arming a Scatter-Gather List transfer.
	// SGL moves exact byte counts (no page bloat) but "the cost of
	// enabling the SGL outweighs the benefit for I/O smaller than 32 KB"
	// (§2.5), which is why the Linux NVMe driver only uses SGL from 32 KB
	// up; the default reproduces that crossover against the PRP path.
	SGLSetup sim.Duration
	// SGLPerSegment is the cost of processing one 16-byte SGL descriptor.
	SGLPerSegment sim.Duration
	// PipelineInterval is the marginal cost of one additional command in a
	// pipelined burst (queue depth > 1): commands after the first only pay
	// fetch+parse, not a full host round trip. The paper's passthrough
	// serializes commands ("no subsequent commands can be sent until the
	// controller signals completion... significantly reducing
	// performance", §4.2); this constant powers the what-if experiment
	// that lifts the restriction.
	PipelineInterval sim.Duration
	// BytesPerSecond is the effective payload bandwidth of the link
	// (PCIe Gen2 x8 ≈ 4 GB/s raw, ~3.2 GB/s effective).
	BytesPerSecond float64
}

// DefaultCostModel returns the calibrated constants from DESIGN.md.
func DefaultCostModel() CostModel {
	return CostModel{
		CommandRoundTrip: 9 * sim.Microsecond,
		DMAPerPage:       8200 * sim.Nanosecond,
		SGLSetup:         64 * sim.Microsecond,
		SGLPerSegment:    500 * sim.Nanosecond,
		PipelineInterval: 1500 * sim.Nanosecond,
		BytesPerSecond:   3.2e9,
	}
}

// TransferTime reports how long moving n payload bytes takes on the wire,
// excluding fixed setup costs.
func (m CostModel) TransferTime(n int64) sim.Duration {
	if n <= 0 {
		return 0
	}
	return sim.Duration(float64(n) / m.BytesPerSecond * 1e9)
}

// DMATime reports the full cost of a page-unit DMA moving n bytes
// (n must be a multiple of the memory page size): per-page processing plus
// wire time.
func (m CostModel) DMATime(n int64) sim.Duration {
	if n <= 0 {
		return 0
	}
	pages := (n + MemoryPageSize - 1) / MemoryPageSize
	return sim.Duration(pages)*m.DMAPerPage + m.TransferTime(n)
}

// SGLTime reports the cost of an SGL transfer of n payload bytes across
// segments descriptors: fixed setup, per-descriptor processing, and exact
// wire time (no page rounding).
func (m CostModel) SGLTime(n int64, segments int) sim.Duration {
	if n <= 0 {
		return 0
	}
	return m.SGLSetup + sim.Duration(segments)*m.SGLPerSegment + m.TransferTime(n)
}

// SGLCrossoverBytes reports the payload size above which an SGL transfer of
// one segment beats the PRP path in this model — the analog of the Linux
// driver's sgl_threshold (32 KB).
func (m CostModel) SGLCrossoverBytes() int64 {
	for n := int64(MemoryPageSize); n <= 1<<20; n += MemoryPageSize {
		if m.SGLTime(n, 1) < m.DMATime(n) {
			return n
		}
	}
	return 1 << 20
}

// SGLDescriptorSize is the size of one SGL segment descriptor.
const SGLDescriptorSize = 16

// Traffic is the byte ledger of everything that crossed the link, split the
// way the paper splits it.
type Traffic struct {
	CommandBytes    metrics.Counter // 64 B per fetched NVMe command
	DMABytes        metrics.Counter // payload (page-unit PRP or exact SGL)
	SGLDescBytes    metrics.Counter // 16 B per fetched SGL segment descriptor
	MMIOBytes       metrics.Counter // doorbell writes (host CPU engagement)
	CompletionBytes metrics.Counter // 16 B per completion entry
	Commands        metrics.Counter // number of NVMe commands issued
	Doorbells       metrics.Counter // number of doorbell rings
}

// Link is the shared interconnect: a cost model plus the traffic ledger and
// a busy line serializing wire occupancy.
type Link struct {
	Model CostModel
	Traf  Traffic
	wire  sim.BusyLine
	// clock and tr power command-level tracing; nil tr disables it and the
	// record methods pay only a branch.
	clock *sim.Clock
	tr    trace.Tracer
}

// NewLink returns a link with the given cost model.
func NewLink(m CostModel) *Link { return &Link{Model: m} }

// Attach enables tracing: record methods stamp events with the clock's
// current simulated time. A nil tracer turns tracing back off.
func (l *Link) Attach(clock *sim.Clock, tr trace.Tracer) {
	l.clock, l.tr = clock, tr
}

// RecordCommandFetch accounts for the device fetching one 64 B command.
func (l *Link) RecordCommandFetch() {
	l.Traf.CommandBytes.Add(CommandSize)
	l.Traf.Commands.Inc()
	if l.tr != nil {
		now := l.clock.Now()
		l.tr.Emit(trace.Event{Cat: trace.CatPCIe, Name: trace.EvCmdFetch, Start: now, End: now, Bytes: CommandSize})
	}
}

// RecordDoorbell accounts for one host doorbell MMIO write.
func (l *Link) RecordDoorbell() {
	l.Traf.MMIOBytes.Add(DoorbellSize)
	l.Traf.Doorbells.Inc()
	if l.tr != nil {
		now := l.clock.Now()
		l.tr.Emit(trace.Event{Cat: trace.CatPCIe, Name: trace.EvDoorbell, Start: now, End: now, Bytes: DoorbellSize})
	}
}

// RecordCompletion accounts for the device posting one completion entry.
func (l *Link) RecordCompletion() {
	l.Traf.CompletionBytes.Add(CompletionSize)
}

// RecordDMA accounts for n bytes of PRP payload crossing the link.
func (l *Link) RecordDMA(n int64) {
	l.Traf.DMABytes.Add(n)
}

// RecordSGLDescriptors accounts for the device fetching n segment
// descriptors.
func (l *Link) RecordSGLDescriptors(n int) {
	l.Traf.SGLDescBytes.Add(int64(n) * SGLDescriptorSize)
}

// HostToDeviceBytes reports the paper's headline "PCIe traffic" metric:
// command fetches plus payload plus any SGL descriptors (Fig. 3, 8, 9,
// 10(c)).
func (l *Link) HostToDeviceBytes() int64 {
	return l.Traf.CommandBytes.Value() + l.Traf.DMABytes.Value() + l.Traf.SGLDescBytes.Value()
}

// MMIOTrafficBytes reports the separate MMIO ledger of Fig. 10(d).
func (l *Link) MMIOTrafficBytes() int64 { return l.Traf.MMIOBytes.Value() }

// TotalBytes reports everything that crossed the link in either direction.
func (l *Link) TotalBytes() int64 {
	return l.HostToDeviceBytes() + l.Traf.MMIOBytes.Value() + l.Traf.CompletionBytes.Value()
}

// Occupy serializes a wire transfer of n bytes starting no earlier than t and
// returns its completion time. Fixed costs are the caller's concern.
func (l *Link) Occupy(t sim.Time, n int64) sim.Time {
	_, end := l.wire.Schedule(t, l.Model.TransferTime(n))
	return end
}

// WireUtilization reports the fraction of simulated time the wire was busy.
func (l *Link) WireUtilization(now sim.Time) float64 { return l.wire.Utilization(now) }

// ResetTraffic clears the ledger (not the wire timeline); used between
// benchmark phases.
func (l *Link) ResetTraffic() {
	l.Traf.CommandBytes.Reset()
	l.Traf.DMABytes.Reset()
	l.Traf.SGLDescBytes.Reset()
	l.Traf.MMIOBytes.Reset()
	l.Traf.CompletionBytes.Reset()
	l.Traf.Commands.Reset()
	l.Traf.Doorbells.Reset()
}

// PagesFor reports how many host memory pages are needed for n payload bytes;
// this is the number of PRP entries a baseline transfer consumes.
func PagesFor(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + MemoryPageSize - 1) / MemoryPageSize
}

// PageAlignedSize reports n rounded up to the memory page size — the number
// of bytes a page-unit DMA actually moves for an n-byte value.
func PageAlignedSize(n int) int { return PagesFor(n) * MemoryPageSize }
