package pcie

import (
	"testing"
	"testing/quick"

	"bandslim/internal/sim"
)

func TestPagesFor(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 0}, {1, 1}, {32, 1}, {4096, 1}, {4097, 2}, {4128, 2},
		{8192, 2}, {16384, 4}, {-5, 0},
	}
	for _, c := range cases {
		if got := PagesFor(c.in); got != c.want {
			t.Errorf("PagesFor(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestPageAlignedSize(t *testing.T) {
	if got := PageAlignedSize(32); got != 4096 {
		t.Fatalf("PageAlignedSize(32) = %d", got)
	}
	if got := PageAlignedSize(4096 + 32); got != 8192 {
		t.Fatalf("PageAlignedSize(4128) = %d", got)
	}
}

// The paper's Fig. 3(b): TAF for a 32-byte value must be exactly 130.0 —
// one command fetch (64 B) plus one 4 KiB page-unit DMA, divided by 32.
func TestTrafficAmplificationFactorMatchesPaper(t *testing.T) {
	want := map[int]float64{32: 130.0, 64: 65.0, 128: 32.5, 256: 16.25, 512: 8.125, 1024: 4.0625}
	for size, taf := range want {
		l := NewLink(DefaultCostModel())
		l.RecordCommandFetch()
		l.RecordDMA(int64(PageAlignedSize(size)))
		got := float64(l.HostToDeviceBytes()) / float64(size)
		if got != taf {
			t.Errorf("TAF(%d B) = %v, want %v", size, got, taf)
		}
	}
}

func TestLedgerSplit(t *testing.T) {
	l := NewLink(DefaultCostModel())
	l.RecordCommandFetch()
	l.RecordDoorbell()
	l.RecordDoorbell()
	l.RecordCompletion()
	l.RecordDMA(4096)
	if got := l.HostToDeviceBytes(); got != 64+4096 {
		t.Fatalf("HostToDeviceBytes = %d", got)
	}
	if got := l.MMIOTrafficBytes(); got != 8 {
		t.Fatalf("MMIOTrafficBytes = %d", got)
	}
	if got := l.TotalBytes(); got != 64+4096+8+16 {
		t.Fatalf("TotalBytes = %d", got)
	}
	if l.Traf.Commands.Value() != 1 || l.Traf.Doorbells.Value() != 2 {
		t.Fatal("command/doorbell counts wrong")
	}
	l.ResetTraffic()
	if l.TotalBytes() != 0 || l.Traf.Commands.Value() != 0 {
		t.Fatal("ResetTraffic did not clear ledger")
	}
}

func TestTransferTime(t *testing.T) {
	m := DefaultCostModel()
	// 3.2 GB/s → 4096 B takes 1280 ns.
	if got := m.TransferTime(4096); got != 1280 {
		t.Fatalf("TransferTime(4096) = %v ns, want 1280", got)
	}
	if got := m.TransferTime(0); got != 0 {
		t.Fatalf("TransferTime(0) = %v", got)
	}
	if got := m.TransferTime(-10); got != 0 {
		t.Fatalf("TransferTime(-10) = %v", got)
	}
}

func TestOccupySerializesWire(t *testing.T) {
	l := NewLink(DefaultCostModel())
	end1 := l.Occupy(0, 4096) // 1280 ns
	if end1 != 1280 {
		t.Fatalf("first transfer ends at %v", end1)
	}
	end2 := l.Occupy(0, 4096) // queues behind first
	if end2 != 2560 {
		t.Fatalf("second transfer ends at %v, want 2560", end2)
	}
	if u := l.WireUtilization(2560); u != 1.0 {
		t.Fatalf("utilization = %v, want 1", u)
	}
}

// Property: page-aligned size is always >= n, a multiple of 4 KiB, and less
// than n + 4 KiB.
func TestPageAlignedSizeProperty(t *testing.T) {
	f := func(n uint16) bool {
		s := PageAlignedSize(int(n))
		return s >= int(n) && s%MemoryPageSize == 0 && s < int(n)+MemoryPageSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCostModelDefaults(t *testing.T) {
	m := DefaultCostModel()
	if m.CommandRoundTrip != 9*sim.Microsecond {
		t.Fatalf("CommandRoundTrip = %v", m.CommandRoundTrip)
	}
	if m.DMAPerPage != 8200*sim.Nanosecond {
		t.Fatalf("DMAPerPage = %v", m.DMAPerPage)
	}
	// One page: 8200 ns processing + 1280 ns wire.
	if got := m.DMATime(4096); got != 9480 {
		t.Fatalf("DMATime(4096) = %v, want 9480ns", got)
	}
	// Two pages: twice the per-page cost (the Fig. 3a cascade).
	if got := m.DMATime(8192); got != 18960 {
		t.Fatalf("DMATime(8192) = %v, want 18960ns", got)
	}
	if got := m.DMATime(0); got != 0 {
		t.Fatalf("DMATime(0) = %v", got)
	}
}

// §2.5: the SGL/PRP crossover must land at the Linux sgl_threshold (32 KB).
func TestSGLCrossoverMatchesLinuxThreshold(t *testing.T) {
	m := DefaultCostModel()
	if got := m.SGLCrossoverBytes(); got != 32*1024 {
		t.Fatalf("SGLCrossoverBytes = %d, want 32768", got)
	}
	if m.SGLTime(0, 0) != 0 {
		t.Fatal("empty SGL transfer has nonzero cost")
	}
	// Below threshold PRP wins; above it SGL wins.
	if m.SGLTime(8192, 2) <= m.DMATime(8192) {
		t.Fatal("SGL should lose at 8 KiB")
	}
	if m.SGLTime(64*1024, 16) >= m.DMATime(64*1024) {
		t.Fatal("SGL should win at 64 KiB")
	}
}

func TestSGLDescriptorLedger(t *testing.T) {
	l := NewLink(DefaultCostModel())
	l.RecordSGLDescriptors(3)
	if got := l.Traf.SGLDescBytes.Value(); got != 48 {
		t.Fatalf("SGLDescBytes = %d", got)
	}
	if got := l.HostToDeviceBytes(); got != 48 {
		t.Fatalf("HostToDeviceBytes = %d", got)
	}
	l.ResetTraffic()
	if l.Traf.SGLDescBytes.Value() != 0 {
		t.Fatal("ResetTraffic missed SGL ledger")
	}
}
