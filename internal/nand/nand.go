// Package nand models the NAND flash array of the Cosmos+ OpenSSD platform:
// 1 TB across 4 channels × 8 ways, 16 KiB pages, erase-before-program blocks,
// per-way busy timelines for parallelism, and operation latencies that
// dominate write response times as in the paper's §2.4.
package nand

import (
	"fmt"

	"bandslim/internal/fault"
	"bandslim/internal/metrics"
	"bandslim/internal/sim"
	"bandslim/internal/trace"
)

// Geometry describes a flash array. All counts are per the next level up:
// WaysPerChannel ways per channel, BlocksPerWay blocks per way, and so on.
type Geometry struct {
	Channels       int
	WaysPerChannel int
	BlocksPerWay   int
	PagesPerBlock  int
	PageSize       int
}

// DefaultGeometry is a scaled Cosmos+ layout: 4 channels × 8 ways with 16 KiB
// pages. BlocksPerWay is kept modest (the simulator allocates page data
// lazily, but mapping tables are dense) while preserving the real page size
// and parallelism. Capacity: 4*8*256*256*16 KiB = 32 GiB.
func DefaultGeometry() Geometry {
	return Geometry{
		Channels:       4,
		WaysPerChannel: 8,
		BlocksPerWay:   256,
		PagesPerBlock:  256,
		PageSize:       16 * 1024,
	}
}

// Validate reports whether every dimension is positive.
func (g Geometry) Validate() error {
	if g.Channels <= 0 || g.WaysPerChannel <= 0 || g.BlocksPerWay <= 0 ||
		g.PagesPerBlock <= 0 || g.PageSize <= 0 {
		return fmt.Errorf("nand: invalid geometry %+v", g)
	}
	return nil
}

// Ways reports the total number of ways (the unit of parallelism).
func (g Geometry) Ways() int { return g.Channels * g.WaysPerChannel }

// Blocks reports the total number of blocks in the array.
func (g Geometry) Blocks() int { return g.Ways() * g.BlocksPerWay }

// Pages reports the total number of physical pages.
func (g Geometry) Pages() int { return g.Blocks() * g.PagesPerBlock }

// CapacityBytes reports the raw capacity.
func (g Geometry) CapacityBytes() int64 {
	return int64(g.Pages()) * int64(g.PageSize)
}

// Latency holds flash operation timings. Defaults are MLC-class (DESIGN.md):
// write responses become ≥10× transfer responses, matching §2.4.
type Latency struct {
	Read  sim.Duration // tR: page read to cache register
	Prog  sim.Duration // tPROG: program page from cache register
	Erase sim.Duration // tBERS: block erase
}

// DefaultLatency returns the calibrated MLC-class timings.
func DefaultLatency() Latency {
	return Latency{
		Read:  100 * sim.Microsecond,
		Prog:  400 * sim.Microsecond,
		Erase: 3 * sim.Millisecond,
	}
}

// PageAddr identifies a physical page.
type PageAddr struct {
	Channel int
	Way     int // way within the channel
	Block   int // block within the way
	Page    int // page within the block
}

func (a PageAddr) String() string {
	return fmt.Sprintf("ch%d/w%d/b%d/p%d", a.Channel, a.Way, a.Block, a.Page)
}

// BlockAddr identifies a physical block.
type BlockAddr struct {
	Channel int
	Way     int
	Block   int
}

func (a BlockAddr) String() string {
	return fmt.Sprintf("ch%d/w%d/b%d", a.Channel, a.Way, a.Block)
}

// Page reports the address of page p within the block.
func (a BlockAddr) Page(p int) PageAddr {
	return PageAddr{Channel: a.Channel, Way: a.Way, Block: a.Block, Page: p}
}

// Stats tallies flash operations and bytes.
type Stats struct {
	PageReads    metrics.Counter
	PageWrites   metrics.Counter
	BlockErases  metrics.Counter
	BytesWritten metrics.Counter
	BytesRead    metrics.Counter
	// Injected faults, by operation. A faulted attempt still counts in the
	// operation counter above (it occupied the op slot).
	ProgramFaults metrics.Counter
	ReadFaults    metrics.Counter
	EraseFaults   metrics.Counter
}

// Array is the flash device: geometry, latencies, per-way timelines, page
// state tracking and (lazily allocated) page data.
type Array struct {
	geo   Geometry
	lat   Latency
	clock *sim.Clock
	ways  []sim.BusyLine // index: channel*WaysPerChannel + way
	state []pageState    // dense, one per physical page
	wear  []int32        // erase count per block
	data  map[int][]byte // page index -> contents (lazy)
	stats Stats
	tr    trace.Tracer
	// faultEvery injects a program failure every N-th program when > 0
	// (test hook for error-path coverage).
	faultEvery int64
	// inj is the plan-driven injector consulted before every operation
	// commits (nil: no injection, a single pointer check per op).
	inj *fault.Injector
}

type pageState byte

const (
	pageErased pageState = iota
	pageProgrammed
)

// Common operation errors.
var (
	ErrNotErased = fmt.Errorf("nand: program to non-erased page")
	ErrBadAddr   = fmt.Errorf("nand: address out of range")
	ErrIOFault   = fmt.Errorf("nand: injected program fault")
)

// New returns a flash array with the given geometry and latencies, sharing
// the simulation clock.
func New(geo Geometry, lat Latency, clock *sim.Clock) (*Array, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	return &Array{
		geo:   geo,
		lat:   lat,
		clock: clock,
		ways:  make([]sim.BusyLine, geo.Ways()),
		state: make([]pageState, geo.Pages()),
		wear:  make([]int32, geo.Blocks()),
		data:  make(map[int][]byte),
	}, nil
}

// Geometry reports the array's geometry.
func (a *Array) Geometry() Geometry { return a.geo }

// Latency reports the array's timing parameters.
func (a *Array) Latency() Latency { return a.lat }

// Stats exposes the operation tallies.
func (a *Array) Stats() *Stats { return &a.stats }

// SetFaultEvery makes every n-th program operation fail (0 disables).
func (a *Array) SetFaultEvery(n int64) { a.faultEvery = n }

// SetInjector installs a plan-driven fault injector (nil disables). The
// array consults it before committing each program, read, and erase.
func (a *Array) SetInjector(inj *fault.Injector) { a.inj = inj }

// faultErr maps an injected effect onto the error the operation surfaces:
// media errors keep the NAND I/O-fault identity (the FTL retires the block),
// transients and power cuts carry the fault package sentinels up the stack.
func faultErr(eff fault.Effect, what fmt.Stringer) error {
	switch eff {
	case fault.EffectPowerCut:
		return fmt.Errorf("nand: %v: %w", what, fault.ErrPowerCut)
	case fault.EffectTransient:
		return fmt.Errorf("nand: %v: %w", what, fault.ErrTransient)
	default:
		return fmt.Errorf("%w: %v", ErrIOFault, what)
	}
}

// SetTracer enables program/read/erase span tracing; nil turns it back off.
func (a *Array) SetTracer(tr trace.Tracer) { a.tr = tr }

func (a *Array) wayIndex(ch, way int) int { return ch*a.geo.WaysPerChannel + way }

func (a *Array) pageIndex(p PageAddr) (int, error) {
	if p.Channel < 0 || p.Channel >= a.geo.Channels ||
		p.Way < 0 || p.Way >= a.geo.WaysPerChannel ||
		p.Block < 0 || p.Block >= a.geo.BlocksPerWay ||
		p.Page < 0 || p.Page >= a.geo.PagesPerBlock {
		return 0, fmt.Errorf("%w: %v", ErrBadAddr, p)
	}
	return ((a.wayIndex(p.Channel, p.Way)*a.geo.BlocksPerWay)+p.Block)*a.geo.PagesPerBlock + p.Page, nil
}

func (a *Array) blockIndex(b BlockAddr) (int, error) {
	if b.Channel < 0 || b.Channel >= a.geo.Channels ||
		b.Way < 0 || b.Way >= a.geo.WaysPerChannel ||
		b.Block < 0 || b.Block >= a.geo.BlocksPerWay {
		return 0, fmt.Errorf("%w: %v", ErrBadAddr, b)
	}
	return a.wayIndex(b.Channel, b.Way)*a.geo.BlocksPerWay + b.Block, nil
}

// Program writes data (at most one page) to an erased page. The operation is
// scheduled on the page's way starting no earlier than t and the completion
// time is returned. Programming a non-erased page is an error (flash cannot
// overwrite in place).
func (a *Array) Program(t sim.Time, p PageAddr, data []byte) (sim.Time, error) {
	idx, err := a.pageIndex(p)
	if err != nil {
		return t, err
	}
	if len(data) > a.geo.PageSize {
		return t, fmt.Errorf("nand: program of %d bytes exceeds page size %d", len(data), a.geo.PageSize)
	}
	if a.state[idx] != pageErased {
		return t, fmt.Errorf("%w: %v", ErrNotErased, p)
	}
	if a.faultEvery > 0 && (a.stats.PageWrites.Value()+1)%a.faultEvery == 0 {
		a.stats.PageWrites.Inc() // the attempt still occupies the op slot
		return t, fmt.Errorf("%w: %v", ErrIOFault, p)
	}
	if eff, ok := a.inj.Check(fault.SiteNandProgram, t); ok {
		a.stats.PageWrites.Inc() // the attempt still occupies the op slot
		a.stats.ProgramFaults.Inc()
		return t, faultErr(eff, p)
	}
	stored := make([]byte, len(data))
	copy(stored, data)
	a.data[idx] = stored
	a.state[idx] = pageProgrammed
	a.stats.PageWrites.Inc()
	a.stats.BytesWritten.Add(int64(a.geo.PageSize)) // NAND programs whole pages
	way := a.wayIndex(p.Channel, p.Way)
	start, end := a.ways[way].Schedule(t, a.lat.Prog)
	if a.tr != nil {
		a.tr.Emit(trace.Event{Cat: trace.CatNAND, Name: trace.EvProgram, Start: start, End: end, Bytes: int64(a.geo.PageSize), Arg: int64(way)})
	}
	return end, nil
}

// Read returns the contents of a programmed page and the completion time of
// the read operation. Reading an erased page returns a zero-filled page, as
// real flash does.
func (a *Array) Read(t sim.Time, p PageAddr) ([]byte, sim.Time, error) {
	idx, err := a.pageIndex(p)
	if err != nil {
		return nil, t, err
	}
	if eff, ok := a.inj.Check(fault.SiteNandRead, t); ok {
		a.stats.PageReads.Inc() // the attempt still occupies the op slot
		a.stats.ReadFaults.Inc()
		return nil, t, faultErr(eff, p)
	}
	a.stats.PageReads.Inc()
	a.stats.BytesRead.Add(int64(a.geo.PageSize))
	way := a.wayIndex(p.Channel, p.Way)
	start, end := a.ways[way].Schedule(t, a.lat.Read)
	if a.tr != nil {
		a.tr.Emit(trace.Event{Cat: trace.CatNAND, Name: trace.EvRead, Start: start, End: end, Bytes: int64(a.geo.PageSize), Arg: int64(way)})
	}
	if a.state[idx] == pageErased {
		return make([]byte, a.geo.PageSize), end, nil
	}
	page := make([]byte, a.geo.PageSize)
	copy(page, a.data[idx])
	return page, end, nil
}

// Erase resets every page of a block to the erased state and returns the
// completion time.
func (a *Array) Erase(t sim.Time, b BlockAddr) (sim.Time, error) {
	bi, err := a.blockIndex(b)
	if err != nil {
		return t, err
	}
	if eff, ok := a.inj.Check(fault.SiteNandErase, t); ok {
		a.stats.BlockErases.Inc() // the attempt still occupies the op slot
		a.stats.EraseFaults.Inc()
		return t, faultErr(eff, b)
	}
	base := bi * a.geo.PagesPerBlock
	for i := 0; i < a.geo.PagesPerBlock; i++ {
		a.state[base+i] = pageErased
		delete(a.data, base+i)
	}
	a.wear[bi]++
	a.stats.BlockErases.Inc()
	way := a.wayIndex(b.Channel, b.Way)
	start, end := a.ways[way].Schedule(t, a.lat.Erase)
	if a.tr != nil {
		a.tr.Emit(trace.Event{Cat: trace.CatNAND, Name: trace.EvErase, Start: start, End: end, Arg: int64(way)})
	}
	return end, nil
}

// IsErased reports whether the page is in the erased state.
func (a *Array) IsErased(p PageAddr) (bool, error) {
	idx, err := a.pageIndex(p)
	if err != nil {
		return false, err
	}
	return a.state[idx] == pageErased, nil
}

// EraseCount reports how many times a block has been erased (wear).
func (a *Array) EraseCount(b BlockAddr) (int, error) {
	bi, err := a.blockIndex(b)
	if err != nil {
		return 0, err
	}
	return int(a.wear[bi]), nil
}

// MaxWear reports the highest erase count across all blocks.
func (a *Array) MaxWear() int {
	var m int32
	for _, w := range a.wear {
		if w > m {
			m = w
		}
	}
	return int(m)
}

// WayUtilization reports the busy fraction of each way at time now.
func (a *Array) WayUtilization(now sim.Time) []float64 {
	out := make([]float64, len(a.ways))
	for i := range a.ways {
		out[i] = a.ways[i].Utilization(now)
	}
	return out
}

// WayFreeAt reports when the given way becomes idle.
func (a *Array) WayFreeAt(ch, way int) sim.Time {
	return a.ways[a.wayIndex(ch, way)].FreeAt()
}
