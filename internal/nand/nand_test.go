package nand

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"bandslim/internal/sim"
)

func testArray(t *testing.T) *Array {
	t.Helper()
	geo := Geometry{Channels: 2, WaysPerChannel: 2, BlocksPerWay: 4, PagesPerBlock: 8, PageSize: 16 * 1024}
	a, err := New(geo, DefaultLatency(), sim.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestGeometryMath(t *testing.T) {
	g := DefaultGeometry()
	if g.Ways() != 32 {
		t.Fatalf("Ways = %d", g.Ways())
	}
	if g.Blocks() != 32*256 {
		t.Fatalf("Blocks = %d", g.Blocks())
	}
	if g.Pages() != 32*256*256 {
		t.Fatalf("Pages = %d", g.Pages())
	}
	if g.CapacityBytes() != int64(g.Pages())*16*1024 {
		t.Fatalf("CapacityBytes = %d", g.CapacityBytes())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGeometryValidation(t *testing.T) {
	bad := Geometry{Channels: 0, WaysPerChannel: 1, BlocksPerWay: 1, PagesPerBlock: 1, PageSize: 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero-channel geometry validated")
	}
	if _, err := New(bad, DefaultLatency(), sim.NewClock()); err == nil {
		t.Fatal("New accepted invalid geometry")
	}
}

func TestProgramReadRoundTrip(t *testing.T) {
	a := testArray(t)
	p := PageAddr{Channel: 1, Way: 1, Block: 2, Page: 3}
	data := bytes.Repeat([]byte{0xAB}, 100)
	end, err := a.Program(0, p, data)
	if err != nil {
		t.Fatal(err)
	}
	if end != sim.Time(a.Latency().Prog) {
		t.Fatalf("program completed at %v, want %v", end, a.Latency().Prog)
	}
	got, _, err := a.Read(end, p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:100], data) {
		t.Fatal("read-back mismatch")
	}
	// Rest of the page reads as zeros.
	for _, b := range got[100:] {
		if b != 0 {
			t.Fatal("page tail not zero-filled")
		}
	}
}

func TestProgramRejectsOverwrite(t *testing.T) {
	a := testArray(t)
	p := PageAddr{}
	if _, err := a.Program(0, p, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Program(0, p, []byte{2}); !errors.Is(err, ErrNotErased) {
		t.Fatalf("overwrite err = %v, want ErrNotErased", err)
	}
}

func TestProgramRejectsOversized(t *testing.T) {
	a := testArray(t)
	if _, err := a.Program(0, PageAddr{}, make([]byte, 16*1024+1)); err == nil {
		t.Fatal("oversized program accepted")
	}
}

func TestBadAddresses(t *testing.T) {
	a := testArray(t)
	bads := []PageAddr{
		{Channel: -1}, {Channel: 2}, {Way: 2}, {Block: 4}, {Page: 8},
	}
	for _, p := range bads {
		if _, err := a.Program(0, p, nil); !errors.Is(err, ErrBadAddr) {
			t.Errorf("Program(%v) err = %v, want ErrBadAddr", p, err)
		}
		if _, _, err := a.Read(0, p); !errors.Is(err, ErrBadAddr) {
			t.Errorf("Read(%v) err = %v, want ErrBadAddr", p, err)
		}
		if _, err := a.IsErased(p); !errors.Is(err, ErrBadAddr) {
			t.Errorf("IsErased(%v) err = %v, want ErrBadAddr", p, err)
		}
	}
	if _, err := a.Erase(0, BlockAddr{Block: 99}); !errors.Is(err, ErrBadAddr) {
		t.Fatalf("Erase err = %v", err)
	}
	if _, err := a.EraseCount(BlockAddr{Channel: 9}); !errors.Is(err, ErrBadAddr) {
		t.Fatalf("EraseCount err = %v", err)
	}
}

func TestEraseResetsPagesAndWear(t *testing.T) {
	a := testArray(t)
	b := BlockAddr{Channel: 0, Way: 1, Block: 2}
	for i := 0; i < 3; i++ {
		if _, err := a.Program(0, b.Page(i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Erase(0, b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		erased, err := a.IsErased(b.Page(i))
		if err != nil {
			t.Fatal(err)
		}
		if !erased {
			t.Fatalf("page %d not erased", i)
		}
	}
	if n, _ := a.EraseCount(b); n != 1 {
		t.Fatalf("EraseCount = %d", n)
	}
	if a.MaxWear() != 1 {
		t.Fatalf("MaxWear = %d", a.MaxWear())
	}
	// Reprogramming after erase works.
	if _, err := a.Program(0, b.Page(0), []byte{7}); err != nil {
		t.Fatal(err)
	}
}

func TestReadErasedPageIsZeros(t *testing.T) {
	a := testArray(t)
	got, _, err := a.Read(0, PageAddr{Page: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("erased page read non-zero")
		}
	}
}

func TestWayParallelismAndSerialization(t *testing.T) {
	a := testArray(t)
	prog := a.Latency().Prog
	// Two programs to the same way serialize.
	end1, _ := a.Program(0, PageAddr{Block: 0, Page: 0}, []byte{1})
	end2, _ := a.Program(0, PageAddr{Block: 0, Page: 1}, []byte{2})
	if end1 != sim.Time(prog) || end2 != sim.Time(2*prog) {
		t.Fatalf("same-way programs ended at %v, %v", end1, end2)
	}
	// A program to a different way proceeds in parallel.
	end3, _ := a.Program(0, PageAddr{Channel: 1, Block: 0, Page: 0}, []byte{3})
	if end3 != sim.Time(prog) {
		t.Fatalf("cross-way program ended at %v, want %v", end3, prog)
	}
	if free := a.WayFreeAt(0, 0); free != end2 {
		t.Fatalf("WayFreeAt = %v, want %v", free, end2)
	}
}

func TestStatsAccounting(t *testing.T) {
	a := testArray(t)
	a.Program(0, PageAddr{}, []byte{1})
	a.Read(0, PageAddr{})
	a.Erase(0, BlockAddr{Block: 1})
	s := a.Stats()
	if s.PageWrites.Value() != 1 || s.PageReads.Value() != 1 || s.BlockErases.Value() != 1 {
		t.Fatalf("stats = %d/%d/%d", s.PageWrites.Value(), s.PageReads.Value(), s.BlockErases.Value())
	}
	// NAND writes whole pages regardless of payload size.
	if s.BytesWritten.Value() != 16*1024 {
		t.Fatalf("BytesWritten = %d", s.BytesWritten.Value())
	}
	if s.BytesRead.Value() != 16*1024 {
		t.Fatalf("BytesRead = %d", s.BytesRead.Value())
	}
}

func TestFaultInjection(t *testing.T) {
	a := testArray(t)
	a.SetFaultEvery(2)
	if _, err := a.Program(0, PageAddr{Page: 0}, []byte{1}); err != nil {
		t.Fatalf("first program failed: %v", err)
	}
	if _, err := a.Program(0, PageAddr{Page: 1}, []byte{1}); !errors.Is(err, ErrIOFault) {
		t.Fatalf("second program err = %v, want ErrIOFault", err)
	}
	// Faulted page stays erased and can be retried at another address.
	erased, _ := a.IsErased(PageAddr{Page: 1})
	if !erased {
		t.Fatal("faulted page left programmed")
	}
}

func TestWayUtilization(t *testing.T) {
	a := testArray(t)
	end, _ := a.Program(0, PageAddr{}, []byte{1})
	u := a.WayUtilization(end)
	if u[0] != 1.0 {
		t.Fatalf("way0 utilization = %v", u[0])
	}
	if u[1] != 0 {
		t.Fatalf("way1 utilization = %v", u[1])
	}
}

// Property: data written to distinct pages is returned intact for each page
// (no cross-page aliasing), and the data stored is a copy (caller mutation
// after Program does not corrupt flash contents).
func TestProgramIsolationProperty(t *testing.T) {
	f := func(vals []byte) bool {
		a := testArray(t)
		n := len(vals)
		if n > 8 {
			n = 8
		}
		bufs := make([][]byte, n)
		for i := 0; i < n; i++ {
			buf := []byte{vals[i], byte(i)}
			bufs[i] = buf
			if _, err := a.Program(0, PageAddr{Page: i}, buf); err != nil {
				return false
			}
			buf[0] ^= 0xFF // mutate after program; flash must keep the copy
		}
		for i := 0; i < n; i++ {
			got, _, err := a.Read(0, PageAddr{Page: i})
			if err != nil {
				return false
			}
			if got[0] != vals[i]^0xFF^0xFF || got[1] != byte(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
