package sim

// BusyLine models a resource that can serve one operation at a time, such as
// a NAND way, a NAND channel, or the DMA engine. Operations scheduled on the
// line queue behind one another; the line remembers only the time at which it
// becomes free, which is all a non-preemptive FIFO resource needs.
type BusyLine struct {
	freeAt Time
	busy   Duration // total busy time, for utilization accounting
	ops    int64
}

// FreeAt reports the earliest time at which the resource is idle.
func (b *BusyLine) FreeAt() Time { return b.freeAt }

// Ops reports how many operations have been scheduled on the line.
func (b *BusyLine) Ops() int64 { return b.ops }

// BusyTime reports the cumulative time the resource has spent serving.
func (b *BusyLine) BusyTime() Duration { return b.busy }

// Schedule books an operation of length d that becomes eligible at time t.
// It returns the operation's start and end times. The resource is occupied
// during [start, end).
func (b *BusyLine) Schedule(t Time, d Duration) (start, end Time) {
	start = t
	if b.freeAt > start {
		start = b.freeAt
	}
	end = start.Add(d)
	b.freeAt = end
	b.busy += d
	b.ops++
	return start, end
}

// Utilization reports the fraction of [0, now] the resource spent busy.
func (b *BusyLine) Utilization(now Time) float64 {
	if now <= 0 {
		return 0
	}
	return float64(b.busy) / float64(now)
}

// Reset clears the line for a fresh run.
func (b *BusyLine) Reset() { *b = BusyLine{} }
