package sim

import (
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	got := c.Advance(5 * Microsecond)
	if got != Time(5*Microsecond) {
		t.Fatalf("Advance returned %v, want 5us", got)
	}
	c.Advance(0)
	if c.Now() != Time(5*Microsecond) {
		t.Fatalf("zero advance moved clock to %v", c.Now())
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	NewClock().Advance(-1)
}

func TestClockAdvanceToNeverRewinds(t *testing.T) {
	c := NewClock()
	c.Advance(10)
	if got := c.AdvanceTo(5); got != 10 {
		t.Fatalf("AdvanceTo(5) rewound clock to %v", got)
	}
	if got := c.AdvanceTo(20); got != 20 {
		t.Fatalf("AdvanceTo(20) = %v", got)
	}
}

func TestClockReset(t *testing.T) {
	c := NewClock()
	c.Advance(Second)
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("after Reset clock at %v", c.Now())
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(100)
	t1 := t0.Add(50)
	if t1 != 150 {
		t.Fatalf("Add: got %d", t1)
	}
	if d := t1.Sub(t0); d != 50 {
		t.Fatalf("Sub: got %d", d)
	}
	if m := Time(2500).Micros(); m != 2.5 {
		t.Fatalf("Micros: got %v", m)
	}
	if s := Time(Second).Seconds(); s != 1.0 {
		t.Fatalf("Seconds: got %v", s)
	}
}

func TestDurationFormatting(t *testing.T) {
	if s := Duration(1500).String(); s != "1.500us" {
		t.Fatalf("Duration.String: %q", s)
	}
	if s := Time(1500).String(); s != "1.500us" {
		t.Fatalf("Time.String: %q", s)
	}
	if m := Duration(Millisecond).Micros(); m != 1000 {
		t.Fatalf("Duration.Micros: %v", m)
	}
	if s := Duration(2 * Second).Seconds(); s != 2 {
		t.Fatalf("Duration.Seconds: %v", s)
	}
}

func TestBusyLineIdleStartsImmediately(t *testing.T) {
	var b BusyLine
	start, end := b.Schedule(100, 50)
	if start != 100 || end != 150 {
		t.Fatalf("Schedule = (%v,%v), want (100,150)", start, end)
	}
}

func TestBusyLineQueuesBehindBusy(t *testing.T) {
	var b BusyLine
	b.Schedule(0, 100)
	start, end := b.Schedule(10, 20) // eligible at 10 but line busy until 100
	if start != 100 || end != 120 {
		t.Fatalf("queued op = (%v,%v), want (100,120)", start, end)
	}
	if b.FreeAt() != 120 {
		t.Fatalf("FreeAt = %v, want 120", b.FreeAt())
	}
}

func TestBusyLineAccounting(t *testing.T) {
	var b BusyLine
	b.Schedule(0, 30)
	b.Schedule(0, 70)
	if b.Ops() != 2 {
		t.Fatalf("Ops = %d", b.Ops())
	}
	if b.BusyTime() != 100 {
		t.Fatalf("BusyTime = %v", b.BusyTime())
	}
	if u := b.Utilization(200); u != 0.5 {
		t.Fatalf("Utilization = %v", u)
	}
	if u := b.Utilization(0); u != 0 {
		t.Fatalf("Utilization at t=0 = %v", u)
	}
	b.Reset()
	if b.Ops() != 0 || b.FreeAt() != 0 {
		t.Fatal("Reset did not clear line")
	}
}

// Property: scheduling is FIFO and never overlaps — each op starts no earlier
// than the previous op's end, and no earlier than its eligibility time.
func TestBusyLineNoOverlapProperty(t *testing.T) {
	f := func(eligibles []uint16, lengths []uint16) bool {
		var b BusyLine
		var prevEnd Time
		n := len(eligibles)
		if len(lengths) < n {
			n = len(lengths)
		}
		for i := 0; i < n; i++ {
			el := Time(eligibles[i])
			d := Duration(lengths[i])
			start, end := b.Schedule(el, d)
			if start < prevEnd || start < el || end != start.Add(d) {
				return false
			}
			prevEnd = end
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	a := NewRNG(7)
	c := a.Split()
	// The split stream must not replay the parent's stream.
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream matches parent %d/64 draws", same)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		if v := r.Int63n(1000); v < 0 || v >= 1000 {
			t.Fatalf("Int63n(1000) = %d out of range", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of range", f)
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(0).Intn(0)
}

func TestRNGInt63nPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Int63n(-1) did not panic")
		}
	}()
	NewRNG(0).Int63n(-1)
}

func TestRNGUniformity(t *testing.T) {
	// Chi-square-lite check: 10 buckets, 100k draws, each bucket within 5%.
	r := NewRNG(99)
	const n = 100000
	var buckets [10]int
	for i := 0; i < n; i++ {
		buckets[r.Intn(10)]++
	}
	for i, c := range buckets {
		if c < n/10-n/200 || c > n/10+n/200 {
			t.Fatalf("bucket %d has %d draws, expected ~%d", i, c, n/10)
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid/duplicate value %d", v)
		}
		seen[v] = true
	}
}

func TestRNGShuffleKeepsElements(t *testing.T) {
	r := NewRNG(6)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	for _, v := range s {
		sum += v
	}
	if sum != 36 {
		t.Fatalf("shuffle lost elements, sum=%d", sum)
	}
}
