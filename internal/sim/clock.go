// Package sim provides the deterministic discrete-time substrate on which the
// whole KV-SSD simulation runs: a virtual clock, busy-resource timelines, and
// splittable pseudo-random number generators.
//
// All simulated components share one *Clock and advance it explicitly; no
// wall-clock time is ever consulted, so every run is exactly reproducible.
package sim

import "fmt"

// Time is a point in simulated time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration int64

// Common durations, mirroring time.Duration's constants but for virtual time.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns t advanced by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Micros reports the time as fractional microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Seconds reports the time as fractional seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string { return fmt.Sprintf("%.3fus", t.Micros()) }

// Micros reports the duration as fractional microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// Seconds reports the duration as fractional seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

func (d Duration) String() string { return fmt.Sprintf("%.3fus", d.Micros()) }

// Clock is the single source of simulated time. It only moves forward.
//
// The zero Clock is ready to use and starts at time 0.
type Clock struct {
	now Time
}

// NewClock returns a clock positioned at time zero.
func NewClock() *Clock { return &Clock{} }

// Now reports the current simulated time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d and returns the new time.
// Negative durations are a programming error and panic.
func (c *Clock) Advance(d Duration) Time {
	if d < 0 {
		panic(fmt.Sprintf("sim: Advance by negative duration %v", d))
	}
	c.now += Time(d)
	return c.now
}

// AdvanceTo moves the clock forward to t. Moving backwards is a no-op:
// a resource that finished in the past does not rewind time.
func (c *Clock) AdvanceTo(t Time) Time {
	if t > c.now {
		c.now = t
	}
	return c.now
}

// Reset rewinds the clock to zero. Only intended for test setup between runs.
func (c *Clock) Reset() { c.now = 0 }
