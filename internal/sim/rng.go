package sim

// RNG is a small, fast, splittable pseudo-random number generator
// (SplitMix64 core). Every workload generator derives its stream from a seed
// so that runs are reproducible and independent generators do not share state.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Seed 0 is valid.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed + 0x9E3779B97F4A7C15}
}

// Split derives an independent generator from this one, advancing this
// generator once. The derived stream is decorrelated from the parent.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xD1B54A32D192ED03)
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint32 returns the next 32 pseudo-random bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection-free-enough reduction; the slight
	// modulo bias at 64 bits is far below anything a workload can observe.
	return int((r.Uint64() >> 1) % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). n must be positive.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64((r.Uint64() >> 1) % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
