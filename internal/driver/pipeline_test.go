package driver

import (
	"bytes"
	"fmt"
	"testing"
)

func TestPipelinedToggle(t *testing.T) {
	d, _, _ := newStack(t, MethodPiggyback, false)
	if d.Pipelined() {
		t.Fatal("pipelining on by default; the paper's testbed serializes")
	}
	d.SetPipelined(true)
	if !d.Pipelined() {
		t.Fatal("SetPipelined lost")
	}
}

func TestPipelinedPutFasterThanSerial(t *testing.T) {
	serial, _, _ := newStack(t, MethodPiggyback, false)
	serial.Put([]byte("k"), make([]byte, 2048))
	sResp := serial.Stats().WriteResponse.Mean()

	pipe, _, _ := newStack(t, MethodPiggyback, false)
	pipe.SetPipelined(true)
	pipe.Put([]byte("k"), make([]byte, 2048))
	pResp := pipe.Stats().WriteResponse.Mean()

	if pResp >= sResp/3 {
		t.Fatalf("pipelined %.0f ns not ≪ serial %.0f ns", pResp, sResp)
	}
}

func TestPipelinedFewerDoorbells(t *testing.T) {
	d, _, link := newStack(t, MethodPiggyback, false)
	d.SetPipelined(true)
	d.Put([]byte("k"), make([]byte, 1024)) // 19 commands, one burst
	if got := link.Traf.Doorbells.Value(); got != 2 {
		t.Fatalf("doorbells = %d, want 2 (one SQ + one CQ)", got)
	}
	if got := link.Traf.Commands.Value(); got != 19 {
		t.Fatalf("commands = %d, want 19", got)
	}
}

func TestPipelinedBurstSplitsAtQueueDepth(t *testing.T) {
	// A 4 KiB value needs 74 commands; the default 64-deep SQ forces two
	// bursts, and everything still lands correctly.
	d, _, link := newStack(t, MethodPiggyback, true)
	d.SetPipelined(true)
	v := make([]byte, 4096)
	for i := range v {
		v[i] = byte(i * 11)
	}
	if err := d.Put([]byte("big"), v); err != nil {
		t.Fatal(err)
	}
	if got := link.Traf.Doorbells.Value(); got != 4 {
		t.Fatalf("doorbells = %d, want 4 (two bursts)", got)
	}
	got, err := d.Get([]byte("big"))
	if err != nil || !bytes.Equal(got, v) {
		t.Fatal("split-burst value corrupted")
	}
}

func TestPipelinedRoundTripsAllSizes(t *testing.T) {
	d, _, _ := newStack(t, MethodPiggyback, true)
	d.SetPipelined(true)
	for _, size := range []int{1, 35, 36, 100, 500, 3000} {
		key := []byte(fmt.Sprintf("p%d", size))
		v := bytes.Repeat([]byte{byte(size)}, size)
		if err := d.Put(key, v); err != nil {
			t.Fatalf("Put(%d): %v", size, err)
		}
		got, err := d.Get(key)
		if err != nil || !bytes.Equal(got, v) {
			t.Fatalf("Get(%d) mismatch", size)
		}
	}
}

func TestPowerFailureSemantics(t *testing.T) {
	d, _, _ := newStack(t, MethodAdaptive, true)
	// Durable path: per-PUT writes land in the device's battery-backed
	// buffer before completion.
	if err := d.Put([]byte("safe"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Volatile path: batched records buffered on the host.
	b, _ := d.NewBatcher(100)
	b.Put([]byte("flushed"), []byte("x"))
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	b.Put([]byte("doomed1"), []byte("y"))
	b.Put([]byte("doomed2"), []byte("z"))

	lost := b.SimulatePowerFailure()
	if len(lost) != 2 {
		t.Fatalf("lost %d records, want 2", len(lost))
	}
	if string(lost[0]) != "doomed1" || string(lost[1]) != "doomed2" {
		t.Fatalf("lost keys %q", lost)
	}
	// Durable and flushed records survive; unflushed batched ones do not.
	if _, err := d.Get([]byte("safe")); err != nil {
		t.Fatal("per-PUT record lost")
	}
	if _, err := d.Get([]byte("flushed")); err != nil {
		t.Fatal("flushed batch record lost")
	}
	if _, err := d.Get([]byte("doomed1")); err == nil {
		t.Fatal("volatile batch record survived the power failure")
	}
	if b.AtRiskOps() != 0 {
		t.Fatal("power failure left volatile state")
	}
}

func TestCompactVLogViaDriver(t *testing.T) {
	d, dev, _ := newStack(t, MethodAdaptive, true)
	if _, err := d.CompactVLog(0); err == nil {
		t.Fatal("pages=0 accepted")
	}
	for i := 0; i < 60; i++ {
		if err := d.Put([]byte("hot"), bytes.Repeat([]byte{byte(i)}, 2000)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	relocated, err := d.CompactVLog(4)
	if err != nil {
		t.Fatal(err)
	}
	if relocated > 1 {
		t.Fatalf("relocated %d; only the live version should move", relocated)
	}
	if dev.VLog().Stats().ReclaimedPages.Value() == 0 {
		t.Fatal("nothing reclaimed")
	}
	got, err := d.Get([]byte("hot"))
	if err != nil || got[0] != 59 {
		t.Fatal("live value lost by compaction")
	}
}
