// Submission policy and the asynchronous queue-depth-N window.
//
// The paper's testbed submits one command per synchronous round trip
// (§4.2 calls out what that serialization costs). SubmissionConfig folds
// every knob governing how commands reach the device — burst submission of
// multi-command PUTs, the in-flight window depth, doorbell batching, and
// completion coalescing — into one value whose zero state reproduces the
// paper's passthrough byte-for-byte.
//
// With QueueDepth >= 2 the driver exposes StartGet/WaitGetInto: up to
// QueueDepth read commands ride the SQ/CQ pair at once, each owning a
// preallocated wait frame and staging slot; completions reap out of order,
// matched back by command ID. The batch-read paths sit on top of this
// window, so channel/way parallelism in the simulated NAND array finally
// expresses itself host-side.
package driver

import (
	"fmt"

	"bandslim/internal/cache"
	"bandslim/internal/nvme"
	"bandslim/internal/pool"
	"bandslim/internal/sim"
	"bandslim/internal/trace"
)

// SubmissionConfig is the driver's complete submission policy. The zero
// value is the paper's synchronous passthrough: one command in flight, one
// doorbell per command, no coalescing — timings byte-identical to a stack
// that never heard of this type.
type SubmissionConfig struct {
	// QueueDepth bounds the commands in flight on the SQ/CQ pair. 0 and 1
	// both mean the synchronous passthrough; >= 2 enables the asynchronous
	// window behind the batch-read paths. It must leave room in the device's
	// ring (at most device QueueDepth - 1).
	QueueDepth int

	// DoorbellBatch coalesces SQ doorbell MMIOs: the window rings once per
	// DoorbellBatch queued submissions instead of once per command (waits
	// flush the remainder). 0 and 1 mean one doorbell per submission; any
	// value > 1 also turns on burst submission of multi-command PUTs (the
	// old Pipelined toggle).
	DoorbellBatch int

	// CoalesceInterval, when > 0, quantizes device completion readiness up
	// to multiples of the interval — interrupt-coalescing-style completion
	// sweeps. It requires QueueDepth >= 2: coalescing a sync passthrough
	// only adds latency with nothing to batch.
	CoalesceInterval sim.Duration
}

// PipelinedSubmission returns the policy the legacy Pipelined toggle maps
// to: depth-1 burst mode. Multi-command PUTs submit as one doorbell burst,
// while reads keep the synchronous passthrough.
func PipelinedSubmission() SubmissionConfig {
	return SubmissionConfig{QueueDepth: 1, DoorbellBatch: 64}
}

// async reports whether the config opens a multi-command window.
func (c SubmissionConfig) async() bool { return c.QueueDepth >= 2 }

// burst reports whether multi-command PUTs submit as doorbell bursts.
func (c SubmissionConfig) burst() bool { return c.DoorbellBatch > 1 }

// depth is the effective window depth (>= 1).
func (c SubmissionConfig) depth() int {
	if c.QueueDepth < 1 {
		return 1
	}
	return c.QueueDepth
}

// doorbellEvery is the effective submissions-per-doorbell, clamped into the
// window so a push can never outrun the ring.
func (c SubmissionConfig) doorbellEvery() int {
	n := c.DoorbellBatch
	if n < 1 {
		n = 1
	}
	if d := c.depth(); c.async() && n > d {
		n = d
	}
	return n
}

// ConfigError reports a SubmissionConfig (or Tuning) field that failed
// validation. Open and SetSubmission return it wrapped; match with
// errors.As.
type ConfigError struct {
	Field  string
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("driver: invalid %s: %s", e.Field, e.Reason)
}

// validate checks the config against the device ring size sqSize.
func (c SubmissionConfig) validate(sqSize int) error {
	if c.QueueDepth < 0 {
		return &ConfigError{Field: "Submission.QueueDepth", Reason: fmt.Sprintf("must be >= 0, got %d", c.QueueDepth)}
	}
	if c.QueueDepth > sqSize-1 {
		return &ConfigError{Field: "Submission.QueueDepth", Reason: fmt.Sprintf("%d exceeds the device ring (max %d for Device.QueueDepth %d)", c.QueueDepth, sqSize-1, sqSize)}
	}
	if c.DoorbellBatch < 0 {
		return &ConfigError{Field: "Submission.DoorbellBatch", Reason: fmt.Sprintf("must be >= 0, got %d", c.DoorbellBatch)}
	}
	if c.CoalesceInterval < 0 {
		return &ConfigError{Field: "Submission.CoalesceInterval", Reason: fmt.Sprintf("must be >= 0, got %v", c.CoalesceInterval)}
	}
	if c.CoalesceInterval > 0 && !c.async() {
		return &ConfigError{Field: "Submission.CoalesceInterval", Reason: "requires QueueDepth >= 2 (nothing to coalesce on a synchronous queue)"}
	}
	return nil
}

// Submission reports the active submission policy.
func (d *Driver) Submission() SubmissionConfig { return d.sub }

// SetSubmission replaces the submission policy, validating it against the
// device's ring size. The window must be empty (every batch path drains
// before returning, so callers between operations always satisfy this).
func (d *Driver) SetSubmission(c SubmissionConfig) error {
	if err := c.validate(d.dev.Queues().SQ.Size()); err != nil {
		return err
	}
	if d.inflight > 0 {
		return &ConfigError{Field: "Submission", Reason: "cannot change with commands in flight"}
	}
	d.sub = c
	d.pipelined = c.burst()
	if c.async() {
		// The wait frames and their staging slots come from internal/pool's
		// Reuse, so retuning between depths never reallocates a frame that
		// still fits and the steady-state window allocates nothing.
		n := len(d.frames)
		d.frames = pool.Reuse(d.frames, c.depth())
		d.slotStage = pool.Reuse(d.slotStage, c.depth())
		for i := n; i < len(d.frames); i++ {
			d.frames[i] = frame{}
			d.slotStage[i] = nvme.PRPList{}
		}
	}
	return nil
}

// Tuning is a snapshot update for the driver's runtime knobs. Nil fields
// keep their current value (per-field presence semantics); set fields apply
// together after validation, so a rejected tuning changes nothing.
type Tuning struct {
	Method     *Method
	Thresholds *Thresholds
	Retry      *RetryPolicy
	Submission *SubmissionConfig
	// Cache reconfigures the tiered read path: the device-DRAM value/page
	// caches and the host-side negative cache. Both restart cold.
	Cache *cache.Config
}

// Tune applies every present field of tn. The Set* mutators are thin
// wrappers over this.
func (d *Driver) Tune(tn Tuning) error {
	if tn.Submission != nil {
		if err := tn.Submission.validate(d.dev.Queues().SQ.Size()); err != nil {
			return err
		}
	}
	if tn.Cache != nil {
		if err := tn.Cache.Validate(); err != nil {
			return err
		}
	}
	if tn.Method != nil {
		d.method = *tn.Method
	}
	if tn.Thresholds != nil {
		d.thr = *tn.Thresholds
	}
	if tn.Retry != nil {
		r := *tn.Retry
		if r.IsZero() {
			r = DefaultRetryPolicy()
		}
		d.retry = r
	}
	if tn.Submission != nil {
		if err := d.SetSubmission(*tn.Submission); err != nil {
			return err
		}
	}
	if tn.Cache != nil {
		if err := d.SetCache(*tn.Cache); err != nil {
			return err
		}
	}
	return nil
}

// WindowDepth reports the effective in-flight window (1 = synchronous).
func (d *Driver) WindowDepth() int {
	if !d.sub.async() {
		return 1
	}
	return d.sub.depth()
}

// InFlight reports the commands currently outstanding in the submission
// window (always 0 between synchronous operations).
func (d *Driver) InFlight() int { return d.inflight }

// frame is one in-flight command's wait state: the command (kept for
// retries), its completion once reaped, and the staging slot its read
// payload lands in. Frames live in a pool.Reuse-managed slice sized to the
// window depth.
type frame struct {
	used    bool
	done    bool
	cid     uint16
	slot    int
	cmd     nvme.Command
	comp    nvme.Completion
	start   sim.Time
	retries int
	backoff sim.Duration
}

// slotStaging returns slot i's persistent staging region, allocating it on
// first use (one MaxValueSize run per window slot: concurrent reads cannot
// share the single-owner d.stage).
func (d *Driver) slotStaging(i int) nvme.PRPList {
	if d.slotStage[i].Pages == nil {
		d.slotStage[i] = nvme.AllocStaging(d.mem, MaxValueSize)
	}
	return d.slotStage[i]
}

// StartGet submits an asynchronous read for key and returns its frame
// handle; the result is claimed with WaitGetInto. Callers bound their
// outstanding StartGets by WindowDepth (the batch paths do) — exceeding it
// fails. Requires QueueDepth >= 2.
func (d *Driver) StartGet(key []byte) (int, error) {
	if !d.sub.async() {
		return 0, &ConfigError{Field: "Submission.QueueDepth", Reason: "StartGet requires QueueDepth >= 2"}
	}
	if d.inflight >= len(d.frames) {
		return 0, fmt.Errorf("driver: submission window full (%d in flight)", d.inflight)
	}
	idx := -1
	for i := range d.frames {
		if !d.frames[i].used {
			idx = i
			break
		}
	}
	f := &d.frames[idx]
	prp := d.slotStaging(idx).WithPayload(MaxValueSize)
	var cmd nvme.Command
	cmd.SetOpcode(nvme.OpKVRead)
	cmd.SetCommandID(d.allocID())
	if err := cmd.SetKey(key); err != nil {
		return 0, err
	}
	cmd.SetPRP1(prp.Pages[0])
	if len(prp.Pages) > 1 {
		cmd.SetPRP2(prp.Pages[1])
	}
	if err := d.dev.Queues().SQ.Push(cmd); err != nil {
		return 0, err
	}
	d.stats.CommandsIssued.Inc()
	now := d.clock.Now()
	f.used, f.done = true, false
	f.cid, f.slot, f.cmd, f.start = cmd.CommandID(), idx, cmd, now
	f.retries, f.backoff = 0, d.retry.Backoff
	d.inflight++
	d.unrung++
	if d.tr != nil {
		d.tr.Emit(trace.Event{Cat: trace.CatDriver, Name: trace.EvSubmit, Op: byte(nvme.OpKVRead), Start: now, End: now, Arg: int64(f.cid)})
	}
	if d.unrung >= d.sub.doorbellEvery() {
		if err := d.flushWindow(); err != nil {
			return idx, err
		}
	}
	return idx, nil
}

// flushWindow publishes queued submissions with one SQ doorbell and lets
// the device service the window concurrently.
func (d *Driver) flushWindow() error {
	if d.unrung == 0 {
		return nil
	}
	d.dev.Queues().SQ.RingDoorbell()
	d.link.RecordDoorbell()
	d.unrung = 0
	_, err := d.dev.ProcessWindow(d.clock.Now(), d.sub.CoalesceInterval)
	return err
}

// completeFrame reaps completions until frame h is done, matching each by
// CID and ringing one CQ doorbell per sweep. Each sweep drains the CQ
// exhaustively — completions for other frames are matched and buffered in
// their wait frames, so their Waits cost nothing — which is what keeps
// doorbell MMIO at one ring per burst rather than one per command.
// Retryable completions of h are resubmitted through the window under the
// retry policy (other frames' retryable completions wait for their own
// Wait).
func (d *Driver) completeFrame(h int) error {
	f := &d.frames[h]
	for !f.done {
		if err := d.flushWindow(); err != nil {
			return err
		}
		reaped := 0
		for {
			comp, err := d.dev.Queues().CQ.Reap()
			if err == nvme.ErrQueueEmpty {
				break
			}
			if err != nil {
				return err
			}
			reaped++
			matched := false
			for i := range d.frames {
				g := &d.frames[i]
				if g.used && !g.done && g.cid == comp.CommandID {
					g.comp = comp
					g.done = true
					matched = true
					break
				}
			}
			if !matched {
				return fmt.Errorf("driver: completion for unknown command %d", comp.CommandID)
			}
		}
		if reaped > 0 {
			d.dev.Queues().CQ.RingDoorbell()
			d.link.RecordDoorbell()
		} else if !f.done {
			return fmt.Errorf("driver: command %d never completed", f.cid)
		}
	}
	// Retry through the window, not submitOnce: the CQ may hold other
	// frames' completions, so a synchronous round trip would reap the wrong
	// entry. Resubmitting the same command re-enters the sweep loop.
	if f.comp.Status.Retryable() && d.retry.MaxRetries >= 0 {
		if f.retries >= d.retry.MaxRetries {
			d.stats.RetriesExhausted.Inc()
			return nil
		}
		f.retries++
		d.stats.Retries.Inc()
		if d.tr != nil {
			d.tr.Emit(trace.Event{Cat: trace.CatDriver, Name: trace.EvRetry, Op: byte(f.cmd.Opcode()), Start: d.clock.Now(), End: d.clock.Now().Add(f.backoff), Arg: int64(f.retries)})
		}
		d.clock.Advance(f.backoff)
		f.backoff *= 2
		if err := d.dev.Queues().SQ.Push(f.cmd); err != nil {
			return err
		}
		d.stats.CommandsIssued.Inc()
		d.unrung++
		f.done = false
		return d.completeFrame(h)
	}
	return nil
}

// release returns frame h to the free set.
func (d *Driver) release(h int) {
	d.frames[h] = frame{}
	d.inflight--
}

// WaitGetInto claims the result of StartGet handle h, gathering the value
// into dst (grown as needed) and returning the filled slice. The host clock
// advances to the completion's arrival plus one round trip — out-of-order
// completions each charge their own arrival, so waits on an already-ready
// frame cost nothing extra. Missing keys surface as nvme.StatusKeyNotFound
// errors, exactly like Get.
func (d *Driver) WaitGetInto(h int, dst []byte) ([]byte, error) {
	f := &d.frames[h]
	if !f.used {
		return nil, fmt.Errorf("driver: WaitGetInto on idle frame %d", h)
	}
	if err := d.completeFrame(h); err != nil {
		d.release(h)
		return nil, err
	}
	comp, start, slot, cmd := f.comp, f.start, f.slot, f.cmd
	d.release(h)
	d.clock.AdvanceTo(comp.Ready.Add(d.link.Model.CommandRoundTrip))
	now := d.clock.Now()
	d.stats.PerOp.Observe(nvme.OpKVRead.String(), float64(now.Sub(start)))
	if d.tr != nil {
		d.tr.Emit(trace.Event{Cat: trace.CatDriver, Name: trace.EvReap, Op: byte(nvme.OpKVRead), Start: start, End: now, Arg: int64(comp.CommandID)})
	}
	if err := comp.Status.Err(); err != nil {
		if comp.Status == nvme.StatusKeyNotFound {
			d.keyScratch = cmd.AppendKey(d.keyScratch[:0])
			d.negLearn(d.keyScratch)
		}
		return nil, err
	}
	n := int(comp.Result)
	data, err := d.slotStage[slot].WithPayload(n).GatherInto(d.mem, dst[:0])
	if err != nil {
		return nil, err
	}
	d.stats.Gets.Inc()
	d.stats.ReadResponse.Observe(float64(now.Sub(start)))
	if d.tr != nil {
		d.tr.Emit(trace.Event{Cat: trace.CatDriver, Name: trace.EvGet, Op: byte(nvme.OpKVRead), Start: start, End: now, Bytes: int64(n)})
	}
	return data, nil
}

// DrainWindow completes and discards every outstanding frame — the error
// path's cleanup, leaving the rings empty for the next operation. Statuses
// are ignored (the triggering error already surfaced); the clock advances
// past every straggler's arrival.
func (d *Driver) DrainWindow() {
	if d.inflight == 0 {
		return
	}
	// A retry-disabled policy keeps completeFrame from resubmitting
	// stragglers; restore it after the sweep.
	saved := d.retry
	d.retry = RetryPolicy{MaxRetries: -1}
	for i := range d.frames {
		if !d.frames[i].used {
			continue
		}
		if err := d.completeFrame(i); err != nil {
			// The rings are unrecoverable mid-drain only on simulation bugs;
			// release what we hold and stop.
			d.release(i)
			continue
		}
		ready := d.frames[i].comp.Ready
		d.release(i)
		d.clock.AdvanceTo(ready.Add(d.link.Model.CommandRoundTrip))
	}
	d.retry = saved
	d.unrung = 0
}
