// Package driver implements the BandSlim Key-Value Driver (§3.1–3.2): the
// host-side component that chooses a transfer strategy per value (PRP-based
// page-unit DMA, NVMe-command piggybacking, hybrid, or the threshold-based
// adaptive method), builds commands, rings doorbells, and performs the
// synchronous passthrough round trips the paper's testbed uses (one command
// outstanding at a time).
package driver

import (
	"errors"
	"fmt"

	"bandslim/internal/device"
	"bandslim/internal/metrics"
	"bandslim/internal/nvme"
	"bandslim/internal/pcie"
	"bandslim/internal/sim"
	"bandslim/internal/trace"
)

// Method selects the value-transfer strategy.
type Method int

// The transfer methods evaluated in §4.2.
const (
	// MethodBaseline transfers every value via PRP page-unit DMA.
	MethodBaseline Method = iota
	// MethodPiggyback transfers every value inline in NVMe commands.
	MethodPiggyback
	// MethodHybrid sends the page-aligned head by DMA and the tail inline.
	MethodHybrid
	// MethodAdaptive picks per value using the thresholds.
	MethodAdaptive
	// MethodSGL transfers every value via Scatter-Gather List — the §2.5
	// comparator that moves exact bytes but pays a setup cost that only
	// amortizes above ~32 KB (the Linux sgl_threshold).
	MethodSGL
)

func (m Method) String() string {
	switch m {
	case MethodBaseline:
		return "Baseline"
	case MethodPiggyback:
		return "Piggyback"
	case MethodHybrid:
		return "Hybrid"
	case MethodAdaptive:
		return "Adaptive"
	case MethodSGL:
		return "SGL"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// ParseMethod converts a method name back to a Method.
func ParseMethod(s string) (Method, error) {
	switch s {
	case "Baseline", "baseline", "prp":
		return MethodBaseline, nil
	case "Piggyback", "piggyback":
		return MethodPiggyback, nil
	case "Hybrid", "hybrid":
		return MethodHybrid, nil
	case "Adaptive", "adaptive":
		return MethodAdaptive, nil
	case "SGL", "sgl":
		return MethodSGL, nil
	}
	return 0, fmt.Errorf("driver: unknown method %q", s)
}

// Thresholds hold the adaptive method's calibration (§3.2): values at or
// below Alpha·Threshold1 go inline; over-page values whose tail is at or
// below Beta·Threshold2 go hybrid; everything else goes PRP.
type Thresholds struct {
	Threshold1 int
	Threshold2 int
	Alpha      float64
	Beta       float64
}

// DefaultThresholds returns the paper's settings: the piggyback→DMA switch
// at 128 bytes (from the Fig. 8 response curve) with α = β = 1.
func DefaultThresholds() Thresholds {
	return Thresholds{Threshold1: 128, Threshold2: 64, Alpha: 1, Beta: 1}
}

// IsZero reports whether every field is zero — the "use defaults" sentinel.
// A caller who deliberately wants Threshold1 = 0 (never piggyback) sets any
// other field non-zero, e.g. Thresholds{Alpha: 1, Beta: 1}.
func (t Thresholds) IsZero() bool { return t == Thresholds{} }

// RetryPolicy governs how the driver reacts to retryable completions
// (transient transfer errors, nvme.StatusTransient). Each retry re-submits
// the same command after an exponentially growing host-side backoff.
type RetryPolicy struct {
	// MaxRetries bounds the re-submissions per command. Negative disables
	// retry entirely; the zero value is the "use defaults" sentinel.
	MaxRetries int
	// Backoff is the wait before the first retry; it doubles per attempt.
	Backoff sim.Duration
}

// DefaultRetryPolicy retries four times starting at 10 µs — enough to ride
// out any plan-injected transient burst shorter than five occurrences.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 4, Backoff: 10 * sim.Microsecond}
}

// IsZero reports whether the policy is the "use defaults" sentinel. A caller
// who deliberately wants no retries sets MaxRetries negative.
func (r RetryPolicy) IsZero() bool { return r == RetryPolicy{} }

// Stats tallies host-side activity.
type Stats struct {
	Puts             metrics.Counter
	Gets             metrics.Counter
	Deletes          metrics.Counter
	Scans            metrics.Counter
	InlineChosen     metrics.Counter
	PRPChosen        metrics.Counter
	HybridChosen     metrics.Counter
	WriteResponse    *metrics.Histogram // ns per PUT
	ReadResponse     *metrics.Histogram // ns per GET
	CommandsIssued   metrics.Counter
	Retries          metrics.Counter // retryable completions re-submitted
	RetriesExhausted metrics.Counter // commands that failed every retry
	Recoveries       metrics.Counter // device mounts performed after power loss
	NegativeHits     metrics.Counter // Gets short-circuited by the negative cache
	NegativeLearned  metrics.Counter // keys admitted to the recent-miss ring
	// PerOp breaks command round-trip latency down by NVMe opcode;
	// PerMethod breaks PUT response time down by the transfer mode chosen.
	PerOp     *metrics.HistogramSet
	PerMethod *metrics.HistogramSet
}

// Driver is the host-side key-value driver bound to one device.
type Driver struct {
	clock *sim.Clock
	link  *pcie.Link
	mem   *nvme.HostMemory
	dev   *device.Device
	// sub is the submission policy (see SubmissionConfig); pipelined caches
	// sub.burst() — whether the commands of one PUT are submitted as a
	// doorbell burst so trailing transfer commands pay only a fetch/parse
	// interval instead of a full round trip each. This is the what-if the
	// paper's §4.2 points at when it blames "synchronous and serialized"
	// submission for piggybacking's large-value collapse.
	sub       SubmissionConfig
	pipelined bool
	method    Method
	thr       Thresholds
	retry     RetryPolicy
	nextID    uint16
	stats     Stats
	tr        trace.Tracer
	// neg is the host-side negative cache (nil when disabled): known-miss
	// Gets fail fast here without issuing any NVMe command. See negcache.go.
	neg *negCache

	// Asynchronous window state (sub.QueueDepth >= 2): per-command wait
	// frames and their staging slots, the in-flight count, and the
	// submissions queued since the last SQ doorbell. See submission.go.
	frames    []frame
	slotStage []nvme.PRPList
	inflight  int
	unrung    int

	// stage is the driver's persistent staging region: one contiguous
	// MaxValueSize run of pinned host pages, allocated at first use and
	// reused for every PUT payload and GET/NEXT/Identify read buffer. Reuse
	// is what makes the steady-state op path free of host-memory churn; the
	// contiguous run preserves the sequential-address PRP reconstruction the
	// device performs from PRP1. The driver is single-owner, so one region
	// suffices — every command completes before the next is staged.
	stage nvme.PRPList
	// readBuf receives gathered GET/NEXT/Identify payloads. Get and Next
	// return views into it, valid until the next driver operation.
	readBuf []byte
	// keyScratch re-extracts a command's key on the windowed not-found path
	// (the negative cache learns from it without allocating).
	keyScratch []byte
	// cmdScratch backs the per-op command bursts (inline tails); compScratch
	// backs submitBurst's completion slice.
	cmdScratch  []nvme.Command
	compScratch []nvme.Completion
}

// New binds a driver to a device sharing the same clock, link and host
// memory arena.
func New(clock *sim.Clock, link *pcie.Link, mem *nvme.HostMemory, dev *device.Device, method Method, thr Thresholds) *Driver {
	return &Driver{
		clock:  clock,
		link:   link,
		mem:    mem,
		dev:    dev,
		method: method,
		thr:    thr,
		retry:  DefaultRetryPolicy(),
		stats: Stats{
			WriteResponse: metrics.NewHistogram(),
			ReadResponse:  metrics.NewHistogram(),
			PerOp:         metrics.NewHistogramSet(),
			PerMethod:     metrics.NewHistogramSet(),
		},
	}
}

// Stats exposes the driver tallies.
func (d *Driver) Stats() *Stats { return &d.stats }

// SetTracer enables host-side operation/submission tracing; nil turns it
// back off.
func (d *Driver) SetTracer(tr trace.Tracer) { d.tr = tr }

// Method reports the configured transfer method.
func (d *Driver) Method() Method { return d.method }

// SetMethod switches the transfer method (between benchmark phases). It is
// a thin wrapper over Tune.
func (d *Driver) SetMethod(m Method) { _ = d.Tune(Tuning{Method: &m}) }

// Thresholds reports the adaptive calibration.
func (d *Driver) Thresholds() Thresholds { return d.thr }

// SetThresholds replaces the adaptive calibration; a thin wrapper over Tune.
func (d *Driver) SetThresholds(t Thresholds) { _ = d.Tune(Tuning{Thresholds: &t}) }

// Retry reports the active retry policy.
func (d *Driver) Retry() RetryPolicy { return d.retry }

// SetRetry replaces the retry policy (the zero value restores defaults); a
// thin wrapper over Tune.
func (d *Driver) SetRetry(r RetryPolicy) { _ = d.Tune(Tuning{Retry: &r}) }

// SetPipelined toggles burst submission of multi-command PUTs (default off,
// matching the paper's serialized passthrough testbed). It is a thin
// wrapper over SetSubmission: on maps to PipelinedSubmission(), off to the
// zero (synchronous) policy.
func (d *Driver) SetPipelined(on bool) {
	if on {
		_ = d.SetSubmission(PipelinedSubmission())
	} else {
		_ = d.SetSubmission(SubmissionConfig{})
	}
}

// Pipelined reports whether burst submission is enabled.
func (d *Driver) Pipelined() bool { return d.pipelined }

// Now reports the simulated time.
func (d *Driver) Now() sim.Time { return d.clock.Now() }

// choose picks the transfer mode for one value size.
func (d *Driver) choose(size int) nvme.TransferMode {
	switch d.method {
	case MethodBaseline:
		return nvme.ModePRP
	case MethodPiggyback:
		return nvme.ModeInline
	case MethodHybrid:
		if size >= pcie.MemoryPageSize && size%pcie.MemoryPageSize != 0 {
			return nvme.ModeHybrid
		}
		if size < pcie.MemoryPageSize {
			return nvme.ModeInline
		}
		return nvme.ModePRP
	case MethodAdaptive:
		if float64(size) <= d.thr.Alpha*float64(d.thr.Threshold1) {
			return nvme.ModeInline
		}
		if size > pcie.MemoryPageSize {
			tail := size % pcie.MemoryPageSize
			if tail != 0 && float64(tail) <= d.thr.Beta*float64(d.thr.Threshold2) {
				return nvme.ModeHybrid
			}
		}
		return nvme.ModePRP
	case MethodSGL:
		return nvme.ModeSGL
	default:
		return nvme.ModePRP
	}
}

// submit pushes one command through submitOnce, re-submitting on retryable
// completions (transient transfer errors) under the retry policy: an
// exponentially growing host-side backoff between attempts. Bursts are never
// retried — partial burst completion makes replayed side effects ambiguous,
// so burst callers surface the error instead.
func (d *Driver) submit(cmd nvme.Command) (nvme.Completion, error) {
	comp, err := d.submitOnce(cmd)
	if err != nil || !comp.Status.Retryable() || d.retry.MaxRetries < 0 {
		return comp, err
	}
	backoff := d.retry.Backoff
	for attempt := 0; attempt < d.retry.MaxRetries; attempt++ {
		d.stats.Retries.Inc()
		if d.tr != nil {
			d.tr.Emit(trace.Event{Cat: trace.CatDriver, Name: trace.EvRetry, Op: byte(cmd.Opcode()), Start: d.clock.Now(), End: d.clock.Now().Add(backoff), Arg: int64(attempt + 1)})
		}
		d.clock.Advance(backoff)
		backoff *= 2
		comp, err = d.submitOnce(cmd)
		if err != nil || !comp.Status.Retryable() {
			return comp, err
		}
	}
	d.stats.RetriesExhausted.Inc()
	return comp, err
}

// submitOnce pushes one command through the full synchronous round trip: SQ
// push, SQ doorbell, device processing, completion reap, CQ doorbell. It
// returns the completion. The clock advances to the response time.
func (d *Driver) submitOnce(cmd nvme.Command) (nvme.Completion, error) {
	t0 := d.clock.Now()
	if err := d.dev.Queues().SQ.Push(cmd); err != nil {
		return nvme.Completion{}, err
	}
	d.dev.Queues().SQ.RingDoorbell()
	d.link.RecordDoorbell()
	d.stats.CommandsIssued.Inc()
	devEnd, err := d.dev.ProcessPending(t0)
	if err != nil {
		return nvme.Completion{}, err
	}
	comp, err := d.dev.Queues().CQ.Reap()
	if err != nil {
		return nvme.Completion{}, fmt.Errorf("driver: no completion: %w", err)
	}
	d.dev.Queues().CQ.RingDoorbell()
	d.link.RecordDoorbell()
	// The passthrough round trip serializes on top of the device work.
	d.clock.AdvanceTo(devEnd.Add(d.link.Model.CommandRoundTrip))
	now := d.clock.Now()
	d.stats.PerOp.Observe(cmd.Opcode().String(), float64(now.Sub(t0)))
	if d.tr != nil {
		d.tr.Emit(trace.Event{Cat: trace.CatDriver, Name: trace.EvSubmit, Op: byte(cmd.Opcode()), Start: t0, End: now, Arg: int64(cmd.CommandID())})
	}
	return comp, nil
}

// submitBurst pushes a group of commands with one SQ doorbell, lets the
// device drain them, then reaps every completion with one CQ doorbell. The
// burst costs one round trip plus a per-command pipeline interval. Bursts
// larger than the queue are split transparently.
// The returned slice is completion scratch, valid until the next burst.
func (d *Driver) submitBurst(cmds []nvme.Command) ([]nvme.Completion, error) {
	out := d.compScratch[:0]
	defer func() { d.compScratch = out[:0] }()
	maxBurst := d.dev.Queues().SQ.Size() - 1
	for len(cmds) > 0 {
		n := len(cmds)
		if n > maxBurst {
			n = maxBurst
		}
		chunk := cmds[:n]
		cmds = cmds[n:]
		t0 := d.clock.Now()
		for _, c := range chunk {
			if err := d.dev.Queues().SQ.Push(c); err != nil {
				return nil, err
			}
			d.stats.CommandsIssued.Inc()
		}
		d.dev.Queues().SQ.RingDoorbell()
		d.link.RecordDoorbell()
		devEnd, err := d.dev.ProcessPending(t0)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			comp, err := d.dev.Queues().CQ.Reap()
			if err != nil {
				return nil, fmt.Errorf("driver: burst completion %d: %w", i, err)
			}
			out = append(out, comp)
		}
		d.dev.Queues().CQ.RingDoorbell()
		d.link.RecordDoorbell()
		cost := d.link.Model.CommandRoundTrip +
			sim.Duration(n-1)*d.link.Model.PipelineInterval
		end := t0.Add(cost)
		if devEnd.Add(d.link.Model.CommandRoundTrip) > end {
			end = devEnd.Add(d.link.Model.CommandRoundTrip)
		}
		d.clock.AdvanceTo(end)
		if d.tr != nil {
			d.tr.Emit(trace.Event{Cat: trace.CatDriver, Name: trace.EvBurst, Op: byte(chunk[0].Opcode()), Start: t0, End: d.clock.Now(), Arg: int64(n)})
		}
	}
	return out, nil
}

func (d *Driver) allocID() uint16 {
	d.nextID++
	return d.nextID
}

// staging returns the persistent staging region, allocating it on first use.
func (d *Driver) staging() nvme.PRPList {
	if d.stage.Pages == nil {
		d.stage = nvme.AllocStaging(d.mem, MaxValueSize)
	}
	return d.stage
}

// stagePayload stages value into the persistent region and returns the PRP
// view describing it. Values beyond the region's capacity (larger than
// MaxValueSize) fall back to a fresh allocation; the caller must Free the
// returned list iff fresh is true.
func (d *Driver) stagePayload(value []byte) (prp nvme.PRPList, fresh bool, err error) {
	if len(value) > MaxValueSize {
		prp, err = nvme.BuildPRP(d.mem, value)
		return prp, true, err
	}
	prp = d.staging().WithPayload(len(value))
	if err := prp.Scatter(d.mem, value); err != nil {
		return nvme.PRPList{}, false, err
	}
	return prp, false, nil
}

// Put writes one key-value pair, choosing the transfer strategy per the
// configured method, and records the response time.
func (d *Driver) Put(key, value []byte) error {
	// The key may exist from here on; forgetting before any device work
	// keeps the negative cache safe even if the write fails mid-way.
	d.negForget(key)
	start := d.clock.Now()
	mode := d.choose(len(value))
	var err error
	switch mode {
	case nvme.ModePRP:
		d.stats.PRPChosen.Inc()
		err = d.putPRP(key, value)
	case nvme.ModeInline:
		d.stats.InlineChosen.Inc()
		err = d.putInline(key, value)
	case nvme.ModeHybrid:
		d.stats.HybridChosen.Inc()
		err = d.putHybrid(key, value)
	case nvme.ModeSGL:
		d.stats.PRPChosen.Inc() // SGL is a DMA-class choice in the ledger
		err = d.putSGL(key, value)
	}
	if err != nil {
		return err
	}
	d.stats.Puts.Inc()
	now := d.clock.Now()
	d.stats.WriteResponse.Observe(float64(now.Sub(start)))
	d.stats.PerMethod.Observe(mode.String(), float64(now.Sub(start)))
	if d.tr != nil {
		d.tr.Emit(trace.Event{Cat: trace.CatDriver, Name: trace.EvPut, Op: byte(nvme.OpKVWrite), Start: start, End: now, Bytes: int64(len(value)), Arg: int64(mode)})
	}
	return nil
}

// putPRP stages the value in the persistent staging region and sends one
// write command whose PRP fields describe it.
func (d *Driver) putPRP(key, value []byte) error {
	prp, fresh, err := d.stagePayload(value)
	if err != nil {
		return err
	}
	if fresh {
		defer prp.Free(d.mem)
	}
	var cmd nvme.Command
	cmd.SetOpcode(nvme.OpKVWrite)
	cmd.SetTransferMode(nvme.ModePRP)
	cmd.SetCommandID(d.allocID())
	if err := cmd.SetKey(key); err != nil {
		return err
	}
	cmd.SetValueSize(uint32(len(value)))
	if len(prp.Pages) > 0 {
		cmd.SetPRP1(prp.Pages[0])
		if len(prp.Pages) > 1 {
			cmd.SetPRP2(prp.Pages[1])
		}
	}
	comp, err := d.submit(cmd)
	if err != nil {
		return err
	}
	return comp.Status.Err()
}

// putSGL stages the value in the persistent staging region and sends one
// write command whose pages the device walks as SGL segments.
func (d *Driver) putSGL(key, value []byte) error {
	prp, fresh, err := d.stagePayload(value)
	if err != nil {
		return err
	}
	if fresh {
		defer prp.Free(d.mem)
	}
	var cmd nvme.Command
	cmd.SetOpcode(nvme.OpKVWrite)
	cmd.SetTransferMode(nvme.ModeSGL)
	cmd.SetCommandID(d.allocID())
	if err := cmd.SetKey(key); err != nil {
		return err
	}
	cmd.SetValueSize(uint32(len(value)))
	if len(prp.Pages) > 0 {
		cmd.SetPRP1(prp.Pages[0])
	}
	comp, err := d.submit(cmd)
	if err != nil {
		return err
	}
	return comp.Status.Err()
}

// putInline ships the value entirely in command fields: one write command
// plus trailing transfer commands in 56-byte increments (§3.2).
func (d *Driver) putInline(key, value []byte) error {
	var cmd nvme.Command
	cmd.SetOpcode(nvme.OpKVWrite)
	cmd.SetTransferMode(nvme.ModeInline)
	cmd.SetCommandID(d.allocID())
	if err := cmd.SetKey(key); err != nil {
		return err
	}
	cmd.SetValueSize(uint32(len(value)))
	n := cmd.SetWritePiggyback(value)
	if d.pipelined {
		cmds := append(d.cmdScratch[:0], cmd)
		cmds = d.appendTailCommands(cmds, value[n:])
		d.cmdScratch = cmds[:0]
		comps, err := d.submitBurst(cmds)
		if err != nil {
			return err
		}
		for _, comp := range comps {
			if err := comp.Status.Err(); err != nil {
				return err
			}
		}
		return nil
	}
	comp, err := d.submit(cmd)
	if err != nil {
		return err
	}
	if err := comp.Status.Err(); err != nil {
		return err
	}
	return d.sendTail(value[n:])
}

// putHybrid DMAs the page-aligned head and piggybacks the tail.
func (d *Driver) putHybrid(key, value []byte) error {
	dmaPart := len(value) / pcie.MemoryPageSize * pcie.MemoryPageSize
	if dmaPart == 0 {
		return d.putInline(key, value)
	}
	prp, fresh, err := d.stagePayload(value[:dmaPart])
	if err != nil {
		return err
	}
	if fresh {
		defer prp.Free(d.mem)
	}
	var cmd nvme.Command
	cmd.SetOpcode(nvme.OpKVWrite)
	cmd.SetTransferMode(nvme.ModeHybrid)
	cmd.SetCommandID(d.allocID())
	if err := cmd.SetKey(key); err != nil {
		return err
	}
	cmd.SetValueSize(uint32(len(value)))
	cmd.SetPRP1(prp.Pages[0])
	if len(prp.Pages) > 1 {
		cmd.SetPRP2(prp.Pages[1])
	}
	comp, err := d.submit(cmd)
	if err != nil {
		return err
	}
	if err := comp.Status.Err(); err != nil {
		return err
	}
	return d.sendTail(value[dmaPart:])
}

// appendTailCommands appends the trailing transfer commands for the
// remaining value bytes to dst (pass scratch[:0] to reuse capacity).
func (d *Driver) appendTailCommands(dst []nvme.Command, rest []byte) []nvme.Command {
	for len(rest) > 0 {
		var tr nvme.Command
		tr.SetOpcode(nvme.OpKVTransfer)
		tr.SetTransferMode(nvme.ModeInline)
		tr.SetCommandID(d.allocID())
		k := tr.SetTransferPiggyback(rest)
		dst = append(dst, tr)
		rest = rest[k:]
	}
	return dst
}

// sendTail streams the remaining value bytes in transfer commands — one
// synchronous round trip each under the paper's passthrough, or a single
// burst when pipelining is enabled.
func (d *Driver) sendTail(rest []byte) error {
	cmds := d.appendTailCommands(d.cmdScratch[:0], rest)
	d.cmdScratch = cmds[:0]
	if d.pipelined {
		comps, err := d.submitBurst(cmds)
		if err != nil {
			return err
		}
		for _, comp := range comps {
			if err := comp.Status.Err(); err != nil {
				return err
			}
		}
		return nil
	}
	for _, tr := range cmds {
		comp, err := d.submit(tr)
		if err != nil {
			return err
		}
		if err := comp.Status.Err(); err != nil {
			return err
		}
	}
	return nil
}

// MaxValueSize bounds the read buffer the driver stages for GETs.
const MaxValueSize = 64 * 1024

// Get reads the value for key. The returned slice is a view into the
// driver's reusable read buffer: it is valid until the next driver operation
// and must be copied by callers that retain it (caller-owned semantics; the
// DB layer's GetInto does the copy for concurrent use).
func (d *Driver) Get(key []byte) ([]byte, error) {
	// Known-miss fast path: no command is built, nothing reaches the wire,
	// and no simulated time passes — the host answers from its own cache.
	if d.NegativeKnown(key) {
		return nil, ErrNegativeHit
	}
	start := d.clock.Now()
	prp := d.staging().WithPayload(MaxValueSize)
	var cmd nvme.Command
	cmd.SetOpcode(nvme.OpKVRead)
	cmd.SetCommandID(d.allocID())
	if err := cmd.SetKey(key); err != nil {
		return nil, err
	}
	cmd.SetPRP1(prp.Pages[0])
	if len(prp.Pages) > 1 {
		cmd.SetPRP2(prp.Pages[1])
	}
	comp, err := d.submit(cmd)
	if err != nil {
		return nil, err
	}
	if err := comp.Status.Err(); err != nil {
		if comp.Status == nvme.StatusKeyNotFound {
			d.negLearn(key)
		}
		return nil, err
	}
	// Gather exactly the bytes the device reported; stale staging bytes
	// beyond the payload are never read.
	n := int(comp.Result)
	data, err := prp.WithPayload(n).GatherInto(d.mem, d.readBuf[:0])
	if err != nil {
		return nil, err
	}
	d.readBuf = data[:0]
	d.stats.Gets.Inc()
	now := d.clock.Now()
	d.stats.ReadResponse.Observe(float64(now.Sub(start)))
	if d.tr != nil {
		d.tr.Emit(trace.Event{Cat: trace.CatDriver, Name: trace.EvGet, Op: byte(nvme.OpKVRead), Start: start, End: now, Bytes: int64(n)})
	}
	return data, nil
}

// Delete removes a key.
func (d *Driver) Delete(key []byte) error {
	start := d.clock.Now()
	var cmd nvme.Command
	cmd.SetOpcode(nvme.OpKVDelete)
	cmd.SetCommandID(d.allocID())
	if err := cmd.SetKey(key); err != nil {
		return err
	}
	comp, err := d.submit(cmd)
	if err != nil {
		return err
	}
	if err := comp.Status.Err(); err != nil {
		return err
	}
	// The device acknowledged the tombstone: the key is now authoritatively
	// missing, so it enters the ring without bloom admission.
	d.negInsert(key)
	d.stats.Deletes.Inc()
	if d.tr != nil {
		d.tr.Emit(trace.Event{Cat: trace.CatDriver, Name: trace.EvDelete, Op: byte(nvme.OpKVDelete), Start: start, End: d.clock.Now()})
	}
	return nil
}

// Seek positions the device-side iterator at the first key >= start.
func (d *Driver) Seek(start []byte) error {
	var cmd nvme.Command
	cmd.SetOpcode(nvme.OpKVSeek)
	cmd.SetCommandID(d.allocID())
	if err := cmd.SetKey(start); err != nil {
		return err
	}
	comp, err := d.submit(cmd)
	if err != nil {
		return err
	}
	if err := comp.Status.Err(); err != nil {
		return err
	}
	d.stats.Scans.Inc()
	return nil
}

// ErrIterDone reports an exhausted device-side iterator. It is a sentinel:
// match it with errors.Is, including through wrapped returns.
var ErrIterDone = errors.New("driver: iterator exhausted")

// Next returns the device iterator's current pair and advances it. Like Get,
// the returned key and value are views into the driver's reusable read
// buffer, valid until the next driver operation; retaining callers must copy.
func (d *Driver) Next() (key, value []byte, err error) {
	prp := d.staging().WithPayload(MaxValueSize)
	var cmd nvme.Command
	cmd.SetOpcode(nvme.OpKVNext)
	cmd.SetCommandID(d.allocID())
	cmd.SetPRP1(prp.Pages[0])
	comp, err := d.submit(cmd)
	if err != nil {
		return nil, nil, err
	}
	if comp.Status == nvme.StatusIterEnd {
		return nil, nil, ErrIterDone
	}
	if err := comp.Status.Err(); err != nil {
		return nil, nil, err
	}
	n := int(comp.Result)
	if n < 1 || n > MaxValueSize {
		return nil, nil, fmt.Errorf("driver: bad NEXT payload size %d", n)
	}
	data, err := prp.WithPayload(n).GatherInto(d.mem, d.readBuf[:0])
	if err != nil {
		return nil, nil, err
	}
	d.readBuf = data[:0]
	kl := int(data[0])
	if 1+kl > n {
		return nil, nil, fmt.Errorf("driver: corrupt NEXT payload")
	}
	return data[1 : 1+kl], data[1+kl : n], nil
}

// Flush forces buffered state to NAND.
func (d *Driver) Flush() error {
	var cmd nvme.Command
	cmd.SetOpcode(nvme.OpKVFlush)
	cmd.SetCommandID(d.allocID())
	comp, err := d.submit(cmd)
	if err != nil {
		return err
	}
	return comp.Status.Err()
}

// Identify fetches the controller's identify structure — model, capacity,
// geometry, and the BandSlim capability fields (inline transfer capacities,
// active packing policy).
func (d *Driver) Identify() (device.IdentifyData, error) {
	prp := d.staging().WithPayload(4096)
	var cmd nvme.Command
	cmd.SetOpcode(nvme.OpAdminIdentify)
	cmd.SetCommandID(d.allocID())
	cmd.SetPRP1(prp.Pages[0])
	comp, err := d.submit(cmd)
	if err != nil {
		return device.IdentifyData{}, err
	}
	if err := comp.Status.Err(); err != nil {
		return device.IdentifyData{}, err
	}
	data, err := prp.GatherInto(d.mem, d.readBuf[:0])
	if err != nil {
		return device.IdentifyData{}, err
	}
	d.readBuf = data[:0]
	return device.ParseIdentify(data), nil
}

// Recover mounts the device after a power cut: fresh queues, the LSM index
// rolled back to its last durable point, and the battery-backed journal
// replayed — restoring every acknowledged write. The clock advances past the
// replay work plus one command round trip (the host's re-attach handshake).
// A fault plan can cut power again mid-replay; the returned error then
// carries StatusPowerLoss semantics and a subsequent Recover resumes.
func (d *Driver) Recover() error {
	// The mount replaces the SQ/CQ rings, so any window frames referencing
	// pre-cut completions are void; reset the window rather than reaping it.
	for i := range d.frames {
		d.frames[i] = frame{}
	}
	d.inflight, d.unrung = 0, 0
	// Journal replay can restore writes whose acknowledgment the power cut
	// swallowed, so every learned miss is suspect.
	d.negClear()
	end, err := d.dev.Mount(d.clock.Now())
	d.clock.AdvanceTo(end.Add(d.link.Model.CommandRoundTrip))
	d.stats.Recoveries.Inc()
	return err
}

// CompactVLog asks the device to garbage-collect the oldest `pages` value-
// log pages (WiscKey-style: live values relocate to the head, dead space is
// reclaimed). It reports how many values were relocated.
func (d *Driver) CompactVLog(pages int) (int, error) {
	if pages <= 0 {
		return 0, fmt.Errorf("driver: pages must be positive")
	}
	var cmd nvme.Command
	cmd.SetOpcode(nvme.OpKVCompact)
	cmd.SetCommandID(d.allocID())
	cmd.SetValueSize(uint32(pages))
	comp, err := d.submit(cmd)
	if err != nil {
		return 0, err
	}
	if err := comp.Status.Err(); err != nil {
		return 0, err
	}
	return int(comp.Result), nil
}
