package driver

import (
	"bytes"
	"fmt"
	"testing"
)

func TestBatcherValidation(t *testing.T) {
	d, _, _ := newStack(t, MethodBaseline, true)
	if _, err := d.NewBatcher(0); err == nil {
		t.Fatal("batch size 0 accepted")
	}
	b, err := d.NewBatcher(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Put(nil, []byte("v")); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := b.Put(make([]byte, 17), []byte("v")); err == nil {
		t.Fatal("oversized key accepted")
	}
	if err := b.Put([]byte("k"), make([]byte, 1<<20)); err == nil {
		t.Fatal("oversized record accepted")
	}
}

func TestBatcherFlushOnFullAndReadBack(t *testing.T) {
	d, dev, _ := newStack(t, MethodBaseline, true)
	b, err := d.NewBatcher(4)
	if err != nil {
		t.Fatal(err)
	}
	values := map[string][]byte{}
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("bk%02d", i)
		v := bytes.Repeat([]byte{byte(i + 1)}, 50+i*30)
		values[key] = v
		if err := b.Put([]byte(key), v); err != nil {
			t.Fatal(err)
		}
	}
	// 10 puts at batch size 4: two automatic flushes, 2 records pending.
	if got := b.Stats().Flushes.Value(); got != 2 {
		t.Fatalf("Flushes = %d, want 2", got)
	}
	if b.AtRiskOps() != 2 {
		t.Fatalf("AtRiskOps = %d, want 2", b.AtRiskOps())
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if b.AtRiskOps() != 0 || b.AtRiskBytes() != 0 {
		t.Fatal("flush left volatile records")
	}
	if dev.Stats().BatchedRecords.Value() != 10 {
		t.Fatalf("BatchedRecords = %d", dev.Stats().BatchedRecords.Value())
	}
	for key, v := range values {
		got, err := d.Get([]byte(key))
		if err != nil {
			t.Fatalf("Get(%s): %v", key, err)
		}
		if !bytes.Equal(got, v) {
			t.Fatalf("batched value %s corrupted", key)
		}
	}
}

func TestBatcherPeakRiskTracking(t *testing.T) {
	d, _, _ := newStack(t, MethodBaseline, true)
	b, _ := d.NewBatcher(100)
	for i := 0; i < 7; i++ {
		if err := b.Put([]byte{byte(i + 1)}, make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if b.Stats().PeakAtRiskOps != 7 {
		t.Fatalf("PeakAtRiskOps = %d", b.Stats().PeakAtRiskOps)
	}
	if b.Stats().PeakAtRiskBytes < 700 {
		t.Fatalf("PeakAtRiskBytes = %d", b.Stats().PeakAtRiskBytes)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	// Peak persists after flush (it is a high-water mark).
	if b.Stats().PeakAtRiskOps != 7 {
		t.Fatal("peak reset by flush")
	}
}

// Batching amortizes command round trips: 64 tiny records in one bulk PUT
// generate far fewer commands than 64 individual baseline PUTs, but every
// byte of the batch crosses in page units.
func TestBatcherAmortizesCommands(t *testing.T) {
	single, _, slink := newStack(t, MethodBaseline, false)
	for i := 0; i < 64; i++ {
		if err := single.Put([]byte{byte(i + 1)}, make([]byte, 16)); err != nil {
			t.Fatal(err)
		}
	}
	batched, _, blink := newStack(t, MethodBaseline, false)
	bt, _ := batched.NewBatcher(64)
	for i := 0; i < 64; i++ {
		if err := bt.Put([]byte{byte(i + 1)}, make([]byte, 16)); err != nil {
			t.Fatal(err)
		}
	}
	if got := blink.Traf.Commands.Value(); got != 1 {
		t.Fatalf("batched commands = %d, want 1", got)
	}
	if slink.Traf.Commands.Value() != 64 {
		t.Fatalf("single commands = %d", slink.Traf.Commands.Value())
	}
	// 64 × (1+1+4+16) = 1408 B of payload → one 4 KiB page vs 64 pages.
	if blink.Traf.DMABytes.Value() != 4096 {
		t.Fatalf("batched DMA bytes = %d", blink.Traf.DMABytes.Value())
	}
}

func TestBatchedFlushEmptyIsNoOp(t *testing.T) {
	d, _, link := newStack(t, MethodBaseline, true)
	b, _ := d.NewBatcher(8)
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if link.Traf.Commands.Value() != 0 {
		t.Fatal("empty flush sent a command")
	}
}

func TestSGLPutGetRoundTrip(t *testing.T) {
	d, _, link := newStack(t, MethodSGL, true)
	v := bytes.Repeat([]byte{0xAD}, 40000) // ~10 pages
	if err := d.Put([]byte("sgl"), v); err != nil {
		t.Fatal(err)
	}
	// SGL moved exact payload bytes plus 16 B per segment descriptor.
	if link.Traf.DMABytes.Value() != 40000 {
		t.Fatalf("SGL DMA bytes = %d, want exact 40000", link.Traf.DMABytes.Value())
	}
	if link.Traf.SGLDescBytes.Value() != 16*10 {
		t.Fatalf("SGL descriptor bytes = %d", link.Traf.SGLDescBytes.Value())
	}
	got, err := d.Get([]byte("sgl"))
	if err != nil || !bytes.Equal(got, v) {
		t.Fatal("SGL round trip failed")
	}
}

// §2.5: SGL loses to PRP below ~32 KB and wins above.
func TestSGLCrossoverAt32K(t *testing.T) {
	resp := func(m Method, size int) float64 {
		d, _, _ := newStack(t, m, false)
		if err := d.Put([]byte("k"), make([]byte, size)); err != nil {
			t.Fatal(err)
		}
		return d.Stats().WriteResponse.Mean()
	}
	if sgl, prp := resp(MethodSGL, 8192), resp(MethodBaseline, 8192); sgl <= prp {
		t.Fatalf("8K: SGL %.1f should lose to PRP %.1f", sgl, prp)
	}
	if sgl, prp := resp(MethodSGL, 48*1024), resp(MethodBaseline, 48*1024); sgl >= prp {
		t.Fatalf("48K: SGL %.1f should beat PRP %.1f", sgl, prp)
	}
}
