package driver

// Tests for the submission-policy API and the asynchronous queue-depth-N
// window: config validation, presence-based Tune semantics, out-of-order
// completion reaping, doorbell batching, and trace-level determinism.

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"bandslim/internal/nvme"
	"bandslim/internal/sim"
	"bandslim/internal/trace"
)

// windowedGetAll pumps keys through the async window the way the batch
// paths do — submit until the window fills, reap the oldest, keep going —
// and returns each key's value in key order.
func windowedGetAll(t *testing.T, d *Driver, keys [][]byte) [][]byte {
	t.Helper()
	depth := d.WindowDepth()
	out := make([][]byte, len(keys))
	var handles, idx []int
	head := 0
	wait := func() {
		h, i := handles[head], idx[head]
		head++
		v, err := d.WaitGetInto(h, nil)
		if err != nil {
			t.Fatalf("WaitGetInto(key %d): %v", i, err)
		}
		out[i] = append([]byte(nil), v...)
	}
	for i := range keys {
		if len(handles)-head >= depth {
			wait()
		}
		h, err := d.StartGet(keys[i])
		if err != nil {
			t.Fatalf("StartGet(key %d): %v", i, err)
		}
		handles, idx = append(handles, h), append(idx, i)
	}
	for head < len(handles) {
		wait()
	}
	return out
}

func TestSubmissionConfigValidation(t *testing.T) {
	d, _, _ := newStack(t, MethodAdaptive, false)
	cases := []struct {
		name  string
		cfg   SubmissionConfig
		field string
	}{
		{"negative_depth", SubmissionConfig{QueueDepth: -1}, "Submission.QueueDepth"},
		{"depth_exceeds_ring", SubmissionConfig{QueueDepth: 64}, "Submission.QueueDepth"},
		{"negative_doorbell", SubmissionConfig{DoorbellBatch: -2}, "Submission.DoorbellBatch"},
		{"negative_coalesce", SubmissionConfig{QueueDepth: 4, CoalesceInterval: -1}, "Submission.CoalesceInterval"},
		{"coalesce_without_window", SubmissionConfig{QueueDepth: 1, CoalesceInterval: sim.Microsecond}, "Submission.CoalesceInterval"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := d.SetSubmission(tc.cfg)
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("SetSubmission(%+v) = %v, want *ConfigError", tc.cfg, err)
			}
			if ce.Field != tc.field {
				t.Fatalf("ConfigError.Field = %q, want %q", ce.Field, tc.field)
			}
		})
	}
	// Valid settings round-trip through the accessor.
	want := SubmissionConfig{QueueDepth: 8, DoorbellBatch: 4, CoalesceInterval: 2 * sim.Microsecond}
	if err := d.SetSubmission(want); err != nil {
		t.Fatal(err)
	}
	if got := d.Submission(); got != want {
		t.Fatalf("Submission() = %+v, want %+v", got, want)
	}
}

func TestSubmissionZeroValueIsSync(t *testing.T) {
	d, _, _ := newStack(t, MethodAdaptive, false)
	if d.Pipelined() || d.WindowDepth() != 1 {
		t.Fatalf("zero-value submission: Pipelined=%v WindowDepth=%d, want sync passthrough",
			d.Pipelined(), d.WindowDepth())
	}
	// The deprecated toggle maps onto the new policy: depth-1 burst mode.
	d.SetPipelined(true)
	if !d.Pipelined() {
		t.Fatal("SetPipelined(true) not reflected by Pipelined()")
	}
	if sub := d.Submission(); sub != PipelinedSubmission() {
		t.Fatalf("SetPipelined(true) → %+v, want %+v", sub, PipelinedSubmission())
	}
	d.SetPipelined(false)
	if sub := d.Submission(); sub != (SubmissionConfig{}) {
		t.Fatalf("SetPipelined(false) → %+v, want zero value", sub)
	}
}

func TestTunePresenceSemantics(t *testing.T) {
	d, _, _ := newStack(t, MethodAdaptive, false)
	thr := d.Thresholds()
	m := MethodPiggyback
	if err := d.Tune(Tuning{Method: &m}); err != nil {
		t.Fatal(err)
	}
	if d.Method() != MethodPiggyback || d.Thresholds() != thr || d.Submission() != (SubmissionConfig{}) {
		t.Fatal("Tune with only Method set disturbed absent fields")
	}
	// An invalid Submission rejects the whole Tuning before applying any
	// present field.
	bad := SubmissionConfig{QueueDepth: -5}
	m2 := MethodBaseline
	err := d.Tune(Tuning{Method: &m2, Submission: &bad})
	var ce *ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("Tune with invalid Submission = %v, want *ConfigError", err)
	}
	if d.Method() != MethodPiggyback {
		t.Fatal("rejected Tune still applied its Method")
	}
}

// TestWindowedGetOutOfOrderCompletion fills the window with reads whose
// device latencies differ (so completions post out of simulated-time order)
// and checks every wait frame is matched back to its command by CID.
func TestWindowedGetOutOfOrderCompletion(t *testing.T) {
	d, _, _ := newStack(t, MethodAdaptive, true)
	// Mixed sizes: over-page values take DMA round trips and multi-page NAND
	// reads; tiny ones complete quickly. Interleaved in one window, their
	// completions coalesce and reorder.
	sizes := []int{5000, 16, 9000, 64, 12000, 8, 7000, 128}
	keys := make([][]byte, len(sizes))
	want := make([][]byte, len(sizes))
	for i, n := range sizes {
		keys[i] = []byte(fmt.Sprintf("oo%02d", i))
		want[i] = bytes.Repeat([]byte{byte(i + 1)}, n)
		if err := d.Put(keys[i], want[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.SetSubmission(SubmissionConfig{
		QueueDepth:       8,
		DoorbellBatch:    4,
		CoalesceInterval: 2 * sim.Microsecond,
	}); err != nil {
		t.Fatal(err)
	}
	handles := make([]int, len(keys))
	for i := range keys {
		h, err := d.StartGet(keys[i])
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	for i, h := range handles {
		got, err := d.WaitGetInto(h, nil)
		if err != nil {
			t.Fatalf("WaitGetInto(%d): %v", i, err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("key %d: got %d bytes, want %d — completion matched to wrong frame?",
				i, len(got), len(want[i]))
		}
	}
	// The window must be empty again: a fresh StartGet succeeds at slot 0.
	h, err := d.StartGet(keys[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.WaitGetInto(h, nil); err != nil {
		t.Fatal(err)
	}
}

// TestWindowedGetPerKeyOrdering: a windowed read observes the latest
// acknowledged write even when earlier reads of the same key are still in
// flight.
func TestWindowedGetPerKeyOrdering(t *testing.T) {
	d, _, _ := newStack(t, MethodAdaptive, true)
	key := []byte("ord")
	if err := d.Put(key, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := d.SetSubmission(SubmissionConfig{QueueDepth: 4}); err != nil {
		t.Fatal(err)
	}
	h1, err := d.StartGet(key)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := d.WaitGetInto(h1, nil)
	if err != nil || string(v1) != "v1" {
		t.Fatalf("windowed read before overwrite: %q, %v", v1, err)
	}
	if err := d.Put(key, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	h2, err := d.StartGet(key)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := d.WaitGetInto(h2, nil)
	if err != nil || string(v2) != "v2" {
		t.Fatalf("windowed read after overwrite: %q, %v", v2, err)
	}
}

func TestWindowedGetMiss(t *testing.T) {
	d, _, _ := newStack(t, MethodAdaptive, true)
	if err := d.Put([]byte("present"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := d.SetSubmission(SubmissionConfig{QueueDepth: 4}); err != nil {
		t.Fatal(err)
	}
	h, err := d.StartGet([]byte("absent"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = d.WaitGetInto(h, nil)
	if st, ok := nvme.StatusOf(err); !ok || st != nvme.StatusKeyNotFound {
		t.Fatalf("missing key through the window: %v, want key-not-found status", err)
	}
	// The miss released its frame; the window keeps working.
	h, err = d.StartGet([]byte("present"))
	if err != nil {
		t.Fatal(err)
	}
	if v, err := d.WaitGetInto(h, nil); err != nil || string(v) != "x" {
		t.Fatalf("window broken after miss: %q, %v", v, err)
	}
}

// TestWindowedDoorbellBatching: batching submissions behind one doorbell
// must cut doorbell MMIO relative to the one-ring-per-command sync path.
func TestWindowedDoorbellBatching(t *testing.T) {
	const nkeys = 16
	run := func(sub SubmissionConfig) int64 {
		d, _, link := newStack(t, MethodAdaptive, true)
		keys := make([][]byte, nkeys)
		for i := range keys {
			keys[i] = []byte(fmt.Sprintf("db%02d", i))
			if err := d.Put(keys[i], bytes.Repeat([]byte{1}, 64)); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.SetSubmission(sub); err != nil {
			t.Fatal(err)
		}
		before := link.Traf.Doorbells.Value()
		if sub.QueueDepth >= 2 {
			windowedGetAll(t, d, keys)
		} else {
			for i := range keys {
				if _, err := d.Get(keys[i]); err != nil {
					t.Fatal(err)
				}
			}
		}
		return link.Traf.Doorbells.Value() - before
	}
	sync := run(SubmissionConfig{})
	if sync != 2*nkeys {
		t.Fatalf("sync GETs rang %d doorbells, want %d (one SQ + one CQ each)", sync, 2*nkeys)
	}
	windowed := run(SubmissionConfig{QueueDepth: 8, DoorbellBatch: 8})
	if windowed*2 > sync {
		t.Fatalf("windowed GETs rang %d doorbells, want < half of sync's %d", windowed, sync)
	}
}

// TestWindowedTraceDeterminism runs the same windowed workload twice and
// requires byte-identical EvSubmit/EvReap streams: same CIDs, same simulated
// timestamps, same order.
func TestWindowedTraceDeterminism(t *testing.T) {
	run := func() []trace.Event {
		d, _, _ := newStack(t, MethodAdaptive, true)
		rec := trace.NewRecorder(4096)
		d.SetTracer(rec)
		keys := make([][]byte, 12)
		for i := range keys {
			keys[i] = []byte(fmt.Sprintf("tr%02d", i))
			if err := d.Put(keys[i], bytes.Repeat([]byte{byte(i)}, 100+400*i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.SetSubmission(SubmissionConfig{
			QueueDepth:       6,
			DoorbellBatch:    3,
			CoalesceInterval: sim.Microsecond,
		}); err != nil {
			t.Fatal(err)
		}
		windowedGetAll(t, d, keys)
		var out []trace.Event
		for _, ev := range rec.Events() {
			if ev.Name == trace.EvSubmit || ev.Name == trace.EvReap {
				out = append(out, ev)
			}
		}
		return out
	}
	first, second := run(), run()
	if len(first) != len(second) {
		t.Fatalf("trace lengths differ: %d vs %d", len(first), len(second))
	}
	reaps := 0
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("event %d differs:\nrun1: %+v\nrun2: %+v", i, first[i], second[i])
		}
		if first[i].Name == trace.EvReap {
			reaps++
			if first[i].End < first[i].Start {
				t.Fatalf("reap %d spans backwards: %+v", i, first[i])
			}
		}
	}
	if reaps != 12 {
		t.Fatalf("saw %d reap events, want 12 (one per windowed GET)", reaps)
	}
}

// TestDrainWindowAfterError: abandoning a partially reaped window leaves
// the driver consistent for the next operation.
func TestDrainWindowAfterError(t *testing.T) {
	d, _, _ := newStack(t, MethodAdaptive, true)
	for i := 0; i < 6; i++ {
		if err := d.Put([]byte(fmt.Sprintf("dr%02d", i)), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.SetSubmission(SubmissionConfig{QueueDepth: 4}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := d.StartGet([]byte(fmt.Sprintf("dr%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a caller bailing out mid-batch.
	d.DrainWindow()
	if d.InFlight() != 0 {
		t.Fatalf("InFlight = %d after DrainWindow, want 0", d.InFlight())
	}
	// Scalar and windowed paths both still work.
	if v, err := d.Get([]byte("dr05")); err != nil || v[0] != 5 {
		t.Fatalf("Get after drain: %v", err)
	}
	h, err := d.StartGet([]byte("dr00"))
	if err != nil {
		t.Fatal(err)
	}
	if v, err := d.WaitGetInto(h, nil); err != nil || v[0] != 0 {
		t.Fatalf("windowed Get after drain: %v", err)
	}
}

// TestSetSubmissionRejectedInFlight: the policy cannot change under an open
// window.
func TestSetSubmissionRejectedInFlight(t *testing.T) {
	d, _, _ := newStack(t, MethodAdaptive, true)
	if err := d.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := d.SetSubmission(SubmissionConfig{QueueDepth: 4}); err != nil {
		t.Fatal(err)
	}
	h, err := d.StartGet([]byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SetSubmission(SubmissionConfig{QueueDepth: 8}); err == nil {
		t.Fatal("SetSubmission succeeded with a command in flight")
	}
	if _, err := d.WaitGetInto(h, nil); err != nil {
		t.Fatal(err)
	}
	if err := d.SetSubmission(SubmissionConfig{QueueDepth: 8}); err != nil {
		t.Fatalf("SetSubmission after window drained: %v", err)
	}
}
