package driver

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"bandslim/internal/device"
	"bandslim/internal/nand"
	"bandslim/internal/nvme"
	"bandslim/internal/pcie"
	"bandslim/internal/sim"
)

func newStack(t *testing.T, method Method, nandOn bool) (*Driver, *device.Device, *pcie.Link) {
	t.Helper()
	cfg := device.DefaultConfig()
	cfg.Geometry = nand.Geometry{Channels: 2, WaysPerChannel: 2, BlocksPerWay: 64, PagesPerBlock: 32, PageSize: 16 * 1024}
	cfg.NANDEnabled = nandOn
	cfg.LSM.MemTableEntries = 256
	clock := sim.NewClock()
	link := pcie.NewLink(pcie.DefaultCostModel())
	mem := nvme.NewHostMemory()
	dev, err := device.New(cfg, clock, link, mem)
	if err != nil {
		t.Fatal(err)
	}
	return New(clock, link, mem, dev, method, DefaultThresholds()), dev, link
}

func TestMethodStringsAndParse(t *testing.T) {
	for _, m := range []Method{MethodBaseline, MethodPiggyback, MethodHybrid, MethodAdaptive} {
		got, err := ParseMethod(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMethod(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMethod("nope"); err == nil {
		t.Fatal("bogus method parsed")
	}
	if Method(9).String() != "Method(9)" {
		t.Fatal("unknown method String")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	d, _, _ := newStack(t, MethodAdaptive, true)
	v := bytes.Repeat([]byte{0x5C}, 777)
	if err := d.Put([]byte("key1"), v); err != nil {
		t.Fatal(err)
	}
	got, err := d.Get([]byte("key1"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, v) {
		t.Fatal("round trip mismatch")
	}
}

func TestGetMissingKey(t *testing.T) {
	d, _, _ := newStack(t, MethodBaseline, true)
	if _, err := d.Get([]byte("missing")); err == nil {
		t.Fatal("missing key returned no error")
	}
}

func TestDeleteAndScan(t *testing.T) {
	d, _, _ := newStack(t, MethodAdaptive, true)
	for i := 0; i < 20; i++ {
		if err := d.Put([]byte(fmt.Sprintf("sc%02d", i)), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Delete([]byte("sc05")); err != nil {
		t.Fatal(err)
	}
	if err := d.Seek([]byte("sc03")); err != nil {
		t.Fatal(err)
	}
	want := []string{"sc03", "sc04", "sc06", "sc07"}
	for _, w := range want {
		k, v, err := d.Next()
		if err != nil {
			t.Fatal(err)
		}
		if string(k) != w {
			t.Fatalf("scan gave %q, want %q", k, w)
		}
		if len(v) != 1 {
			t.Fatalf("scan value %v", v)
		}
	}
	// Drain to the end.
	for {
		_, _, err := d.Next()
		if err == ErrIterDone {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}

// Traffic: a 32 B baseline PUT moves 64 B command + 4 KiB DMA (TAF 130);
// the same PUT via piggybacking moves one 64 B command — a 97.9%+ saving
// excluding doorbells, matching Fig. 8.
func TestTrafficBaselineVsPiggyback32B(t *testing.T) {
	base, _, blink := newStack(t, MethodBaseline, false)
	if err := base.Put([]byte("k"), make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	if got := blink.HostToDeviceBytes(); got != 64+4096 {
		t.Fatalf("baseline traffic %d, want 4160", got)
	}
	pig, _, plink := newStack(t, MethodPiggyback, false)
	if err := pig.Put([]byte("k"), make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	if got := plink.HostToDeviceBytes(); got != 64 {
		t.Fatalf("piggyback traffic %d, want 64", got)
	}
	reduction := 1 - 64.0/4160.0
	if reduction < 0.979 {
		t.Fatalf("reduction %.4f < 0.979", reduction)
	}
}

// Response: piggyback(32 B) ≈ half of baseline(32 B) with NAND off (Fig. 8).
func TestResponsePiggybackHalfOfBaseline(t *testing.T) {
	base, _, _ := newStack(t, MethodBaseline, false)
	base.Put([]byte("k"), make([]byte, 32))
	bResp := base.Stats().WriteResponse.Mean()

	pig, _, _ := newStack(t, MethodPiggyback, false)
	pig.Put([]byte("k"), make([]byte, 32))
	pResp := pig.Stats().WriteResponse.Mean()

	ratio := pResp / bResp
	if ratio < 0.35 || ratio > 0.65 {
		t.Fatalf("piggyback/baseline response ratio %.3f, want ~0.5", ratio)
	}
}

// Piggyback of 64 B (2 commands) ≈ baseline; 128 B (3 commands) worse.
func TestResponseCrossoverAt128B(t *testing.T) {
	resp := func(m Method, size int) float64 {
		d, _, _ := newStack(t, m, false)
		d.Put([]byte("k"), make([]byte, size))
		return d.Stats().WriteResponse.Mean()
	}
	b64, p64 := resp(MethodBaseline, 64), resp(MethodPiggyback, 64)
	if r := p64 / b64; r < 0.85 || r > 1.15 {
		t.Fatalf("64 B ratio %.3f, want ~1.0", r)
	}
	b128, p128 := resp(MethodBaseline, 128), resp(MethodPiggyback, 128)
	if p128 <= b128 {
		t.Fatalf("piggyback(128B)=%v must exceed baseline=%v", p128, b128)
	}
}

// Hybrid at (4K+32)B halves traffic vs baseline and stays within a few
// percent on response (Fig. 9).
func TestHybridTrafficAndResponse(t *testing.T) {
	size := 4096 + 32
	base, _, blink := newStack(t, MethodBaseline, false)
	base.Put([]byte("k"), make([]byte, size))
	hyb, _, hlink := newStack(t, MethodHybrid, false)
	hyb.Put([]byte("k"), make([]byte, size))

	bt, ht := blink.HostToDeviceBytes(), hlink.HostToDeviceBytes()
	if float64(ht) > 0.55*float64(bt) {
		t.Fatalf("hybrid traffic %d not ~half of baseline %d", ht, bt)
	}
	bResp := base.Stats().WriteResponse.Mean()
	hResp := hyb.Stats().WriteResponse.Mean()
	if r := hResp / bResp; r < 0.85 || r > 1.1 {
		t.Fatalf("hybrid/baseline response ratio %.3f, want ≈1", r)
	}
}

// Adaptive method picks the mode the thresholds say it should.
func TestAdaptiveChoosesPerThresholds(t *testing.T) {
	d, _, _ := newStack(t, MethodAdaptive, false)
	d.Put([]byte("a"), make([]byte, 100))      // ≤128: inline
	d.Put([]byte("b"), make([]byte, 2048))     // >128, ≤4K: PRP
	d.Put([]byte("c"), make([]byte, 4096+32))  // tail 32 ≤ 64: hybrid
	d.Put([]byte("d"), make([]byte, 4096+500)) // tail 500 > 64: PRP
	s := d.Stats()
	if s.InlineChosen.Value() != 1 || s.PRPChosen.Value() != 2 || s.HybridChosen.Value() != 1 {
		t.Fatalf("choices inline/prp/hybrid = %d/%d/%d",
			s.InlineChosen.Value(), s.PRPChosen.Value(), s.HybridChosen.Value())
	}
}

// Alpha and beta scale the thresholds toward traffic savings.
func TestAdaptiveCoefficients(t *testing.T) {
	d, _, _ := newStack(t, MethodAdaptive, false)
	thr := DefaultThresholds()
	thr.Alpha = 4 // prefer piggybacking up to 512 B
	d.SetThresholds(thr)
	d.Put([]byte("a"), make([]byte, 500))
	if d.Stats().InlineChosen.Value() != 1 {
		t.Fatal("alpha scaling ignored")
	}
	if d.Thresholds().Alpha != 4 {
		t.Fatal("SetThresholds lost alpha")
	}
}

// MMIO ledger: every command costs two doorbells (SQ + CQ).
func TestMMIODoorbellAccounting(t *testing.T) {
	d, _, link := newStack(t, MethodPiggyback, false)
	d.Put([]byte("k"), make([]byte, 128)) // 3 commands
	wantDoorbells := int64(3 * 2)
	if got := link.Traf.Doorbells.Value(); got != wantDoorbells {
		t.Fatalf("doorbells = %d, want %d", got, wantDoorbells)
	}
	if got := link.MMIOTrafficBytes(); got != wantDoorbells*pcie.DoorbellSize {
		t.Fatalf("MMIO bytes = %d", got)
	}
}

// Property: values of every size and method round-trip.
func TestPutGetPropertyAcrossMethods(t *testing.T) {
	methods := []Method{MethodBaseline, MethodPiggyback, MethodHybrid, MethodAdaptive}
	f := func(sizes []uint16) bool {
		for _, m := range methods {
			d, _, _ := newStack(t, m, true)
			n := len(sizes)
			if n > 6 {
				n = 6
			}
			for i := 0; i < n; i++ {
				size := int(sizes[i])%6000 + 1
				v := make([]byte, size)
				for j := range v {
					v[j] = byte(j*7 + i)
				}
				key := []byte(fmt.Sprintf("pk%d", i))
				if err := d.Put(key, v); err != nil {
					return false
				}
				got, err := d.Get(key)
				if err != nil || !bytes.Equal(got, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestFlushViaDriver(t *testing.T) {
	d, dev, _ := newStack(t, MethodAdaptive, true)
	d.Put([]byte("k"), []byte("v"))
	before := dev.Flash().Stats().PageWrites.Value()
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if dev.Flash().Stats().PageWrites.Value() <= before {
		t.Fatal("flush reached no NAND")
	}
	got, err := d.Get([]byte("k"))
	if err != nil || string(got) != "v" {
		t.Fatal("value lost after flush")
	}
}

func TestClockAdvancesPerOp(t *testing.T) {
	d, _, _ := newStack(t, MethodBaseline, false)
	t0 := d.Now()
	d.Put([]byte("k"), make([]byte, 32))
	if d.Now() <= t0 {
		t.Fatal("clock did not advance")
	}
}
