package driver

import (
	"fmt"

	"bandslim/internal/device"
	"bandslim/internal/metrics"
	"bandslim/internal/nvme"
)

// Batcher implements the host-side batching approach of Dotori and KV-CSD
// (§2): PUTs accumulate in host memory and ship as one bulk OpKVBatchWrite
// when the batch fills. It exists as the comparator BandSlim argues against:
// batching amortizes per-command overhead but (i) everything buffered on the
// host is lost on power failure — tracked in AtRiskOps/AtRiskBytes — and
// (ii) the device pays an unpacking pass per record.
type Batcher struct {
	d       *Driver
	maxOps  int
	maxSize int
	keys    [][]byte
	// keyArena backs every buffered key in one contiguous allocation; keys
	// holds sub-slices into it. This removes the per-Put key copy allocation
	// (one arena append instead of a fresh []byte per record).
	keyArena []byte
	payload  []byte
	stats    BatcherStats
}

// BatcherStats tallies batching behaviour.
type BatcherStats struct {
	Ops          metrics.Counter // records accepted
	Flushes      metrics.Counter // bulk commands issued
	FlushedBytes metrics.Counter // payload bytes shipped
	// PeakAtRiskOps/Bytes record the largest volatile host buffer seen —
	// the data-loss window on power failure.
	PeakAtRiskOps   int
	PeakAtRiskBytes int
}

// NewBatcher returns a batcher flushing after maxOps records (or when the
// payload would exceed the driver's staging limit).
func (d *Driver) NewBatcher(maxOps int) (*Batcher, error) {
	if maxOps < 1 {
		return nil, fmt.Errorf("driver: batch size must be >= 1")
	}
	// Preallocate from the size hints so steady-state Put never grows: the
	// payload is bounded by maxSize and the arena by maxOps full-size keys.
	return &Batcher{
		d:        d,
		maxOps:   maxOps,
		maxSize:  MaxValueSize - 4096,
		keys:     make([][]byte, 0, maxOps),
		keyArena: make([]byte, 0, maxOps*nvme.MaxKeySize),
		payload:  make([]byte, 0, MaxValueSize-4096),
	}, nil
}

// Stats exposes the batching tallies.
func (b *Batcher) Stats() *BatcherStats { return &b.stats }

// AtRiskOps reports how many accepted records are currently volatile.
func (b *Batcher) AtRiskOps() int { return len(b.keys) }

// AtRiskBytes reports how many buffered payload bytes are currently
// volatile.
func (b *Batcher) AtRiskBytes() int { return len(b.payload) }

// Put buffers one record, flushing the batch if full. The record is NOT
// durable until the flush that carries it completes.
func (b *Batcher) Put(key, value []byte) error {
	if len(key) == 0 || len(key) > nvme.MaxKeySize {
		return fmt.Errorf("driver: batch key length %d out of range", len(key))
	}
	need := device.BatchRecordOverhead + len(key) + len(value)
	if need > b.maxSize {
		return fmt.Errorf("driver: record of %d bytes exceeds batch capacity", need)
	}
	if len(b.payload)+need > b.maxSize {
		if err := b.Flush(); err != nil {
			return err
		}
	}
	// From this point the key may become resident (once the batch flushes),
	// so the negative cache must stop short-circuiting it now — a Get
	// between buffer and flush reads through and learns the truth.
	b.d.negForget(key)
	// The arena never reallocates in steady state (capacity covers
	// maxOps*MaxKeySize), so the sub-slices in b.keys stay valid.
	start := len(b.keyArena)
	b.keyArena = append(b.keyArena, key...)
	b.keys = append(b.keys, b.keyArena[start:len(b.keyArena):len(b.keyArena)])
	b.payload = device.EncodeBatchRecord(b.payload, key, value)
	b.stats.Ops.Inc()
	if len(b.keys) > b.stats.PeakAtRiskOps {
		b.stats.PeakAtRiskOps = len(b.keys)
	}
	if len(b.payload) > b.stats.PeakAtRiskBytes {
		b.stats.PeakAtRiskBytes = len(b.payload)
	}
	if len(b.keys) >= b.maxOps {
		return b.Flush()
	}
	return nil
}

// Flush ships the buffered batch as one bulk write. A no-op when empty.
//
// A failed flush DISCARDS the buffered records. They were never durable (the
// Put contract), the error tells the caller the whole batch failed, and
// retaining them would resurrect the failed records on the next Flush —
// after the caller may have acknowledged newer writes to the same keys,
// silently reordering history.
func (b *Batcher) Flush() error {
	if len(b.keys) == 0 {
		return nil
	}
	prp, fresh, err := b.d.stagePayload(b.payload)
	if err != nil {
		b.discard()
		return err
	}
	if fresh {
		defer prp.Free(b.d.mem)
	}
	var cmd nvme.Command
	cmd.SetOpcode(nvme.OpKVBatchWrite)
	cmd.SetTransferMode(nvme.ModePRP)
	cmd.SetCommandID(b.d.allocID())
	cmd.SetValueSize(uint32(len(b.payload)))
	cmd.SetPRP1(prp.Pages[0])
	if len(prp.Pages) > 1 {
		cmd.SetPRP2(prp.Pages[1])
	}
	comp, err := b.d.submit(cmd)
	if err != nil {
		b.discard()
		return err
	}
	if err := comp.Status.Err(); err != nil {
		b.discard()
		return err
	}
	if int(comp.Result) != len(b.keys) {
		n, want := comp.Result, len(b.keys)
		b.discard()
		return fmt.Errorf("driver: batch wrote %d of %d records", n, want)
	}
	b.stats.Flushes.Inc()
	b.stats.FlushedBytes.Add(int64(len(b.payload)))
	b.d.stats.Puts.Add(int64(len(b.keys)))
	b.discard()
	return nil
}

// discard drops the buffered records, successful or not.
func (b *Batcher) discard() {
	b.keys = b.keys[:0]
	b.keyArena = b.keyArena[:0]
	b.payload = b.payload[:0]
}

// SimulatePowerFailure models the §2 data-loss scenario host-side batching
// exposes: host DRAM is volatile, so every record accepted since the last
// flush vanishes. It returns the lost keys. Records already flushed — and
// every record written through the ordinary per-PUT path, which lands in the
// device's battery-backed buffer before the command completes — survive.
func (b *Batcher) SimulatePowerFailure() [][]byte {
	// Copy the keys out: the buffered sub-slices point into the reusable
	// arena, which the next Put would overwrite (a cold path — power failure
	// is not a steady-state event).
	var lost [][]byte
	for _, k := range b.keys {
		lost = append(lost, append([]byte(nil), k...))
	}
	b.keys = b.keys[:0]
	b.keyArena = b.keyArena[:0]
	b.payload = b.payload[:0]
	return lost
}
