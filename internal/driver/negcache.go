package driver

// Host-side negative cache: a per-driver (per-shard) record of keys the
// device recently reported missing, consulted before any NVMe command is
// built. Two structures cooperate:
//
//   - An exact recent-miss ring (map + fixed-capacity key ring) is the
//     authoritative short-circuit. Only keys present in the ring skip the
//     device, so a hit can never wrongly report an existing key as missing.
//   - A bloom filter is admission control, not a lookup structure: the first
//     not-found for a key only sets its bloom bits; a repeat not-found on a
//     bloom-positive key admits it to the ring. One-hit-wonder misses — the
//     long tail of a scan over absent keys — never consume ring slots, so
//     the ring holds the misses that actually repeat. A bloom false positive
//     merely admits a key one observation early; it cannot corrupt results.
//
// Coherence: Put forgets the key (it exists now), a successful Delete
// inserts it directly (known missing, no admission needed), and Recover
// clears everything (journal replay can restore writes whose acknowledgment
// the power cut swallowed).

import (
	"bandslim/internal/cache"
	"bandslim/internal/nvme"
	"bandslim/internal/pool"
)

// ErrNegativeHit is the preallocated not-found error short-circuited Gets
// return, so the negative-hit path allocates nothing. It is
// indistinguishable from a device-reported miss under nvme.StatusOf; the
// windowed batch paths return it for negative hits when no miss slice
// absorbs not-founds.
var ErrNegativeHit error = &nvme.StatusError{Status: nvme.StatusKeyNotFound}

// negCache is the recent-miss ring plus its bloom admission filter.
type negCache struct {
	idx   map[string]int
	keys  [][]byte // ring of arena-backed key copies
	next  int      // ring cursor (oldest slot, overwritten on insert)
	cap   int
	bloom []uint64
	mask  uint64 // bloom bit-index mask (bit count is a power of two)
	arena pool.Bytes
}

// bloomBitsPerEntry oversizes the filter relative to the ring so admission
// stays selective even when the miss working set exceeds the ring.
const bloomBitsPerEntry = 16

func newNegCache(entries int) *negCache {
	bits := 64
	for bits < entries*bloomBitsPerEntry {
		bits <<= 1
	}
	return &negCache{
		idx:   make(map[string]int, entries),
		keys:  make([][]byte, entries),
		cap:   entries,
		bloom: make([]uint64, bits/64),
		mask:  uint64(bits - 1),
	}
}

// hash is FNV-1a 64; the two bloom probes derive from its halves
// (Kirsch-Mitzenmacher double hashing).
func negHash(key []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

func (n *negCache) bloomHas(key []byte) bool {
	h := negHash(key)
	i1 := h & n.mask
	i2 := (h>>32 | h<<32) & n.mask
	return n.bloom[i1/64]&(1<<(i1%64)) != 0 && n.bloom[i2/64]&(1<<(i2%64)) != 0
}

func (n *negCache) bloomSet(key []byte) {
	h := negHash(key)
	i1 := h & n.mask
	i2 := (h>>32 | h<<32) & n.mask
	n.bloom[i1/64] |= 1 << (i1 % 64)
	n.bloom[i2/64] |= 1 << (i2 % 64)
}

// known reports whether key is in the exact ring (zero-allocation lookup).
func (n *negCache) known(key []byte) bool {
	_, ok := n.idx[string(key)]
	return ok
}

// learn records a device-reported not-found. The first observation only
// arms the bloom filter; a bloom-positive repeat admits the key to the ring.
// It reports whether the key was admitted.
func (n *negCache) learn(key []byte) bool {
	if n.known(key) {
		return false
	}
	if !n.bloomHas(key) {
		n.bloomSet(key)
		return false
	}
	n.insert(key)
	return true
}

// insert places key in the ring unconditionally (Delete's direct path),
// recycling the oldest slot when full.
func (n *negCache) insert(key []byte) {
	if n.known(key) {
		return
	}
	slot := n.next
	n.next = (n.next + 1) % n.cap
	if old := n.keys[slot]; old != nil {
		delete(n.idx, string(old))
		n.arena.Put(old)
	}
	k := append(n.arena.Get(len(key))[:0], key...)
	n.keys[slot] = k
	n.idx[string(k)] = slot
}

// forget drops key from the ring (the key exists now). The bloom filter is
// untouched: it only drives admission, and learn is only called after the
// device itself reported the key missing.
func (n *negCache) forget(key []byte) {
	s, ok := n.idx[string(key)]
	if !ok {
		return
	}
	delete(n.idx, string(key))
	n.arena.Put(n.keys[s])
	n.keys[s] = nil
}

// clear resets ring and bloom (post-recovery coherence).
func (n *negCache) clear() {
	for k, s := range n.idx {
		n.arena.Put(n.keys[s])
		n.keys[s] = nil
		delete(n.idx, k)
	}
	for i := range n.bloom {
		n.bloom[i] = 0
	}
	n.next = 0
}

// SetCache applies a read-cache configuration to the stack this driver
// fronts: the device tiers via Device.SetCache and the host-side negative
// cache here. An invalid config is rejected without changing anything.
func (d *Driver) SetCache(cfg cache.Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if err := d.dev.SetCache(cfg); err != nil {
		return err
	}
	d.neg = nil
	if cfg.NegativeEntries > 0 {
		d.neg = newNegCache(cfg.NegativeEntries)
	}
	return nil
}

// NegativeKnown reports whether key is a known-missing key the caller may
// fail fast on without issuing any NVMe command. A true return counts as a
// negative-cache hit; callers must then report the op as not found (the
// windowed batch paths do exactly this before StartGet).
func (d *Driver) NegativeKnown(key []byte) bool {
	if d.neg == nil || !d.neg.known(key) {
		return false
	}
	d.stats.NegativeHits.Inc()
	return true
}

// negLearn records a device-reported not-found in the negative cache.
func (d *Driver) negLearn(key []byte) {
	if d.neg == nil {
		return
	}
	if d.neg.learn(key) {
		d.stats.NegativeLearned.Inc()
	}
}

// negInsert records a key that is authoritatively missing (post-Delete).
func (d *Driver) negInsert(key []byte) {
	if d.neg == nil || d.neg.known(key) {
		return
	}
	d.neg.insert(key)
	d.stats.NegativeLearned.Inc()
}

// negForget drops key from the negative cache (it exists, or may exist).
func (d *Driver) negForget(key []byte) {
	if d.neg != nil {
		d.neg.forget(key)
	}
}

// negClear wipes the negative cache (after crash recovery).
func (d *Driver) negClear() {
	if d.neg != nil {
		d.neg.clear()
	}
}
