package device

import (
	"bytes"
	"testing"

	"bandslim/internal/nvme"
)

// FuzzDecodeBatchRecord hardens the bulk-PUT unpacker: arbitrary payloads
// must never panic, and valid records must round-trip.
func FuzzDecodeBatchRecord(f *testing.F) {
	seed := EncodeBatchRecord(nil, []byte("key"), []byte("value"))
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{5, 'a', 'b'})
	f.Add([]byte{200, 1, 2, 3, 4, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		key, value, rest, err := decodeBatchRecord(data)
		if err != nil {
			return
		}
		if len(key) == 0 || len(key) > 16 {
			t.Fatalf("decoded key length %d", len(key))
		}
		consumed := len(data) - len(rest)
		if consumed != BatchRecordOverhead+len(key)+len(value) {
			t.Fatalf("consumed %d bytes, want %d", consumed, BatchRecordOverhead+len(key)+len(value))
		}
		// Round trip.
		re := EncodeBatchRecord(nil, key, value)
		if !bytes.Equal(re, data[:consumed]) {
			t.Fatalf("re-encode mismatch")
		}
	})
}

// FuzzBatchPayload: a whole fuzzed batch payload through the real device
// must never panic and must leave the device consistent (every record the
// completion claims was written is readable).
func FuzzBatchPayload(f *testing.F) {
	var seed []byte
	seed = EncodeBatchRecord(seed, []byte("a"), []byte("1"))
	seed = EncodeBatchRecord(seed, []byte("b"), bytes.Repeat([]byte{2}, 100))
	f.Add(seed)
	f.Add([]byte{1, 'x', 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, payload []byte) {
		if len(payload) == 0 || len(payload) > 8000 {
			return
		}
		dev, _, _, mem := newDev(t, smallConfig())
		prp, err := nvme.BuildPRP(mem, payload)
		if err != nil {
			t.Fatal(err)
		}
		var cmd nvme.Command
		cmd.SetOpcode(nvme.OpKVBatchWrite)
		cmd.SetValueSize(uint32(len(payload)))
		cmd.SetPRP1(prp.Pages[0])
		if len(prp.Pages) > 1 {
			cmd.SetPRP2(prp.Pages[1])
		}
		comp, _ := submit(t, dev, cmd)
		_ = comp // any status is acceptable; panics are not
	})
}
