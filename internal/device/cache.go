package device

// Device-DRAM read-cache wiring: the value tier intercepts execRead before
// the LSM walk, and cachingStore interposes the page tier between the tree
// and its PageStore. Both charge the configured device-DRAM hit latency on
// the virtual clock instead of NAND + channel occupancy, and both are
// strictly invalidated on every mutation so the simulation stays
// semantically identical to a cache-less device.

import (
	"bandslim/internal/cache"
	"bandslim/internal/lsm"
	"bandslim/internal/sim"
	"bandslim/internal/trace"
)

// cachingStore wraps the tree's PageStore with the page-granular device
// tier. With no cache attached it is a pure pass-through — identical timing,
// identical allocations — so the wrapper is always installed and the cache
// can be attached or detached by Tune at runtime. dev is bound after
// construction (the store exists before the Device does).
type cachingStore struct {
	inner lsm.PageStore
	pages *cache.Pages
	dev   *Device
}

func (s *cachingStore) ReadPage(t sim.Time, page int) ([]byte, sim.Time, error) {
	if s.pages == nil {
		return s.inner.ReadPage(t, page)
	}
	d := s.dev
	if data, ok := s.pages.Get(page); ok {
		d.stats.PageCacheHits.Inc()
		end := t.Add(d.cacheLat)
		if d.tr != nil {
			d.tr.Emit(trace.Event{Cat: trace.CatDevice, Name: trace.EvCacheHit, Start: t, End: end, Bytes: int64(len(data))})
		}
		return data, end, nil
	}
	d.stats.PageCacheMisses.Inc()
	data, end, err := s.inner.ReadPage(t, page)
	if err != nil {
		return data, end, err
	}
	d.noteEvictions(end, s.pages.Put(page, data))
	return data, end, nil
}

// WritePage and TrimPage invalidate before delegating: the LSM recycles page
// numbers after commits, so a stale image under a reused number would be
// served as a different table's page.
func (s *cachingStore) WritePage(t sim.Time, page int, data []byte) (sim.Time, error) {
	if s.pages != nil && s.pages.Invalidate(page) {
		s.dev.stats.CacheInvalidations.Inc()
	}
	return s.inner.WritePage(t, page, data)
}

func (s *cachingStore) TrimPage(page int) error {
	if s.pages != nil && s.pages.Invalidate(page) {
		s.dev.stats.CacheInvalidations.Inc()
	}
	return s.inner.TrimPage(page)
}

func (s *cachingStore) PageSize() int { return s.inner.PageSize() }
func (s *cachingStore) Pages() int    { return s.inner.Pages() }

// SetCache swaps the device's read-cache configuration at runtime (the
// Tuning path). Both tiers restart cold; an invalid config is rejected
// without touching the running caches.
func (d *Device) SetCache(cfg cache.Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	d.cfg.Cache = cfg
	d.cacheLat = cfg.EffectiveHitLatency()
	d.vcache = nil
	if cfg.ValueBytes > 0 {
		d.vcache = cache.NewValues(cfg.ValueBytes, cache.NewPolicy(cfg.Policy))
	}
	d.pstore.pages = nil
	if cfg.Pages > 0 {
		d.pstore.pages = cache.NewPages(cfg.Pages, cache.NewPolicy(cfg.Policy))
	}
	return nil
}

// CacheConfig reports the device's active read-cache configuration.
func (d *Device) CacheConfig() cache.Config { return d.cfg.Cache }

// invalidateValue drops key from the value tier (overwrite, delete, batch
// record, GC relocation).
func (d *Device) invalidateValue(key []byte) {
	if d.vcache != nil && d.vcache.Invalidate(key) {
		d.stats.CacheInvalidations.Inc()
	}
}

// fillValue admits a freshly-read value after a miss.
func (d *Device) fillValue(t sim.Time, key, value []byte) {
	if d.vcache == nil {
		return
	}
	evicted, _ := d.vcache.Put(key, value)
	d.noteEvictions(t, evicted)
}

// noteEvictions tallies evictions from either tier and emits the trace
// marker blame/forensics tools key off.
func (d *Device) noteEvictions(t sim.Time, n int) {
	if n <= 0 {
		return
	}
	d.stats.CacheEvictions.Add(int64(n))
	if d.tr != nil {
		d.tr.Emit(trace.Event{Cat: trace.CatDevice, Name: trace.EvCacheEvict, Start: t, End: t, Arg: int64(n)})
	}
}

// dropValueCache empties the value tier, counting the drops as
// invalidations. Flush uses it for the strict invalidation protocol: the
// flush moves the battery-backed vLog buffer to NAND, and the cache model
// does not carry entries across that boundary.
func (d *Device) dropValueCache() {
	if d.vcache == nil {
		return
	}
	d.stats.CacheInvalidations.Add(int64(d.vcache.Len()))
	d.vcache.Reset()
}

// dropCaches empties both device tiers without counters: device DRAM is
// volatile, so a power cut simply erases them.
func (d *Device) dropCaches() {
	if d.vcache != nil {
		d.vcache.Reset()
	}
	if d.pstore.pages != nil {
		d.pstore.pages.Reset()
	}
}
