package device

import (
	"encoding/binary"
	"fmt"

	"bandslim/internal/nvme"
	"bandslim/internal/sim"
)

// Batch record wire format within an OpKVBatchWrite payload:
//
//	keyLen   uint8 (0 terminates the batch)
//	key      keyLen bytes
//	valLen   uint32
//	value    valLen bytes
//
// This is the host-side batching scheme of Dotori/KV-CSD that the paper
// contrasts with: one bulk PUT amortizes command overhead, but the device
// "faces extra overhead from unpacking" each record, and everything buffered
// on the host before submission is lost on power failure (§2).

// EncodeBatchRecord appends one record to a batch payload.
func EncodeBatchRecord(dst []byte, key, value []byte) []byte {
	dst = append(dst, byte(len(key)))
	dst = append(dst, key...)
	var vl [4]byte
	binary.LittleEndian.PutUint32(vl[:], uint32(len(value)))
	dst = append(dst, vl[:]...)
	return append(dst, value...)
}

// BatchRecordOverhead is the per-record framing cost in a batch payload.
const BatchRecordOverhead = 1 + 4

// decodeBatchRecord parses one record, returning the remainder.
func decodeBatchRecord(src []byte) (key, value, rest []byte, err error) {
	if len(src) < 1 {
		return nil, nil, nil, fmt.Errorf("device: truncated batch record")
	}
	kl := int(src[0])
	if kl == 0 {
		return nil, nil, nil, errBatchEnd
	}
	if kl > nvme.MaxKeySize || len(src) < 1+kl+4 {
		return nil, nil, nil, fmt.Errorf("device: corrupt batch record header")
	}
	key = src[1 : 1+kl]
	vl := int(binary.LittleEndian.Uint32(src[1+kl:]))
	body := src[1+kl+4:]
	if len(body) < vl {
		return nil, nil, nil, fmt.Errorf("device: batch record value truncated (%d < %d)", len(body), vl)
	}
	return key, body[:vl], body[vl:], nil
}

var errBatchEnd = fmt.Errorf("device: end of batch")

// execBatchWrite handles one bulk PUT: a single page-unit DMA delivers the
// packed records, then the controller unpacks them one by one — each record
// costs a parse plus a device memcpy into the vLog buffer (the unpacking
// overhead the paper cites), then an LSM insert.
func (d *Device) execBatchWrite(t sim.Time, cmd nvme.Command) (int, sim.Time, error) {
	total := int(cmd.ValueSize())
	if total == 0 {
		return 0, t, errBadField
	}
	payload, end, err := d.dmaValue(t, cmd, total, d.valueBuf[:0])
	if err != nil {
		return 0, t, err
	}
	d.valueBuf = payload[:0]
	count := 0
	rest := payload
	for len(rest) > 0 {
		key, value, next, err := decodeBatchRecord(rest)
		if err == errBatchEnd {
			break
		}
		if err != nil {
			return count, end, err
		}
		rest = next
		d.invalidateValue(key)
		if d.cfg.NANDEnabled {
			// Unpacking: every record is copied out of the staging
			// buffer into the packed vLog buffer, byte-granularly
			// (KAML-style all-packing — batching cannot exploit the
			// selective no-copy path because record boundaries are
			// arbitrary).
			addr, e, err := d.vlog.AppendPiggybacked(end, value)
			if err != nil {
				return count, end, err
			}
			d.jnl.append(key, addr, uint32(len(value)), false)
			end, err = d.tree.Put(e, key, addr, uint32(len(value)))
			if err != nil {
				return count, end, err
			}
		}
		d.stats.WritesCompleted.Inc()
		d.stats.BatchedRecords.Inc()
		count++
	}
	return count, end, nil
}
