package device

import (
	"bytes"
	"fmt"
	"testing"

	"bandslim/internal/nand"
	"bandslim/internal/nvme"
)

func putInline(t *testing.T, dev *Device, key string, value []byte) {
	t.Helper()
	cmd := writeCmd(t, key, value, nvme.ModeInline)
	n := cmd.SetWritePiggyback(value)
	if comp, _ := submit(t, dev, cmd); comp.Status != nvme.StatusSuccess {
		t.Fatalf("write %s: %v", key, comp.Status)
	}
	rest := value[n:]
	for len(rest) > 0 {
		var tr nvme.Command
		tr.SetOpcode(nvme.OpKVTransfer)
		k := tr.SetTransferPiggyback(rest)
		if comp, _ := submit(t, dev, tr); comp.Status != nvme.StatusSuccess {
			t.Fatalf("fragment: %v", comp.Status)
		}
		rest = rest[k:]
	}
}

func readBack(t *testing.T, dev *Device, mem *nvme.HostMemory, key string) ([]byte, nvme.Status) {
	t.Helper()
	rbuf, err := nvme.BuildPRP(mem, make([]byte, 16*1024))
	if err != nil {
		t.Fatal(err)
	}
	defer rbuf.Free(mem)
	var rd nvme.Command
	rd.SetOpcode(nvme.OpKVRead)
	rd.SetKey([]byte(key))
	rd.SetPRP1(rbuf.Pages[0])
	comp, _ := submit(t, dev, rd)
	if comp.Status != nvme.StatusSuccess {
		return nil, comp.Status
	}
	data, _ := rbuf.Gather(mem)
	return data[:comp.Result], comp.Status
}

func TestCompactRelocatesLiveValues(t *testing.T) {
	cfg := smallConfig()
	cfg.Buffer.MaxEntries = 4
	dev, _, _, mem := newDev(t, cfg)
	// Write values filling several pages, then overwrite half (dead data).
	want := map[string][]byte{}
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("g%02d", i)
		v := bytes.Repeat([]byte{byte(i + 1)}, 2000)
		putInline(t, dev, key, v)
		want[key] = v
	}
	for i := 0; i < 40; i += 2 {
		key := fmt.Sprintf("g%02d", i)
		v := bytes.Repeat([]byte{0xEE}, 1500)
		putInline(t, dev, key, v)
		want[key] = v
	}
	// Flush so pages are reclaimable, then compact the oldest pages.
	var fl nvme.Command
	fl.SetOpcode(nvme.OpKVFlush)
	submit(t, dev, fl)

	tailBefore := dev.VLog().Tail()
	var cp nvme.Command
	cp.SetOpcode(nvme.OpKVCompact)
	cp.SetValueSize(3)
	comp, _ := submit(t, dev, cp)
	if comp.Status != nvme.StatusSuccess {
		t.Fatalf("compact status %v", comp.Status)
	}
	if dev.VLog().Tail() <= tailBefore {
		t.Fatal("tail did not advance")
	}
	if dev.Stats().GCRelocated.Value() != int64(comp.Result) {
		t.Fatalf("relocated stat %d != result %d", dev.Stats().GCRelocated.Value(), comp.Result)
	}
	if dev.VLog().Stats().ReclaimedPages.Value() != 3 {
		t.Fatalf("reclaimed pages = %d", dev.VLog().Stats().ReclaimedPages.Value())
	}
	// Every key still reads its latest value.
	for key, v := range want {
		got, st := readBack(t, dev, mem, key)
		if st != nvme.StatusSuccess || !bytes.Equal(got, v) {
			t.Fatalf("key %s corrupted after GC (status %v)", key, st)
		}
	}
}

func TestCompactDropsDeadSpaceForFree(t *testing.T) {
	cfg := smallConfig()
	cfg.Buffer.MaxEntries = 4
	dev, _, _, _ := newDev(t, cfg)
	// One key overwritten many times: the old versions are all dead, so
	// compaction should relocate at most one live value per key.
	for i := 0; i < 60; i++ {
		putInline(t, dev, "hot", bytes.Repeat([]byte{byte(i)}, 2000))
	}
	var fl nvme.Command
	fl.SetOpcode(nvme.OpKVFlush)
	submit(t, dev, fl)
	var cp nvme.Command
	cp.SetOpcode(nvme.OpKVCompact)
	cp.SetValueSize(5)
	comp, _ := submit(t, dev, cp)
	if comp.Status != nvme.StatusSuccess {
		t.Fatalf("compact status %v", comp.Status)
	}
	if comp.Result > 1 {
		t.Fatalf("relocated %d values; at most the single live one expected", comp.Result)
	}
}

func TestCompactValidation(t *testing.T) {
	dev, _, _, _ := newDev(t, smallConfig())
	var cp nvme.Command
	cp.SetOpcode(nvme.OpKVCompact)
	cp.SetValueSize(0)
	comp, _ := submit(t, dev, cp)
	if comp.Status != nvme.StatusInvalidField {
		t.Fatalf("pages=0 status %v", comp.Status)
	}
	// Nothing flushed yet: compaction is a clean no-op.
	cp.SetValueSize(2)
	comp, _ = submit(t, dev, cp)
	if comp.Status != nvme.StatusSuccess || comp.Result != 0 {
		t.Fatalf("empty compact: %v result %d", comp.Status, comp.Result)
	}
}

func TestGarbageRatio(t *testing.T) {
	cfg := smallConfig()
	dev, _, _, _ := newDev(t, cfg)
	g, err := dev.GarbageRatio(0)
	if err != nil || g != 0 {
		t.Fatalf("empty device garbage = %v, %v", g, err)
	}
	// All-live data: low garbage.
	for i := 0; i < 20; i++ {
		putInline(t, dev, fmt.Sprintf("r%02d", i), make([]byte, 1000))
	}
	low, err := dev.GarbageRatio(0)
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite everything: garbage ratio must rise.
	for i := 0; i < 20; i++ {
		putInline(t, dev, fmt.Sprintf("r%02d", i), make([]byte, 1000))
	}
	high, err := dev.GarbageRatio(0)
	if err != nil {
		t.Fatal(err)
	}
	if high <= low {
		t.Fatalf("garbage ratio did not rise: %v -> %v", low, high)
	}
}

// The circular log: with GC, a workload can write far beyond the vLog's raw
// capacity as long as the live set fits.
func TestCircularLogOutlivesCapacity(t *testing.T) {
	cfg := smallConfig()
	cfg.Geometry = nand.Geometry{Channels: 1, WaysPerChannel: 2, BlocksPerWay: 16, PagesPerBlock: 16, PageSize: 16 * 1024}
	cfg.Buffer.MaxEntries = 4
	cfg.LSM.MemTableEntries = 32
	dev, _, _, mem := newDev(t, cfg)
	capacity := dev.VLog().CapacityBytes()
	written := int64(0)
	i := 0
	// Keep 8 live keys, overwriting them until we have written 3x the
	// vLog capacity, compacting whenever free space runs low.
	value := make([]byte, 4000)
	for written < 3*capacity {
		value[0] = byte(i)
		putInline(t, dev, fmt.Sprintf("c%d", i%8), value)
		written += int64(len(value))
		i++
		if dev.VLog().FreeBytes() < 4*int64(cfg.Buffer.PageSize) {
			var fl nvme.Command
			fl.SetOpcode(nvme.OpKVFlush)
			submit(t, dev, fl)
			var cp nvme.Command
			cp.SetOpcode(nvme.OpKVCompact)
			cp.SetValueSize(8)
			comp, _ := submit(t, dev, cp)
			if comp.Status != nvme.StatusSuccess {
				t.Fatalf("compact failed at %d bytes written: %v", written, comp.Status)
			}
		}
	}
	// All 8 live keys intact.
	for k := 0; k < 8; k++ {
		got, st := readBack(t, dev, mem, fmt.Sprintf("c%d", k))
		if st != nvme.StatusSuccess || len(got) != 4000 {
			t.Fatalf("live key c%d lost after wrap (status %v)", k, st)
		}
	}
	if dev.VLog().Stats().ReclaimedPages.Value() == 0 {
		t.Fatal("no pages reclaimed despite wrap pressure")
	}
}
