package device

import (
	"fmt"
	"sort"

	"bandslim/internal/lsm"
	"bandslim/internal/nvme"
	"bandslim/internal/sim"
	"bandslim/internal/vlog"
)

// WiscKey-style value-log garbage collection. The vLog is circular: virtual
// offsets grow monotonically and GC advances the tail by relocating the live
// values that still point into the oldest pages, then trimming those pages
// in the FTL. The LSM index (which never stores values) supplies liveness:
// an entry whose address falls in the reclaim window is live; everything
// else in the window is dead (overwritten or deleted) and vanishes for free.
//
// The paper leaves vLog GC out of scope (its evaluation never deletes);
// this is the natural completion a production KV-SSD needs.

// execCompact handles OpKVCompact: reclaim the oldest `pages` vLog pages
// (from the command's valueSize field). It returns the number of relocated
// values.
func (d *Device) execCompact(t sim.Time, cmd nvme.Command) (int, sim.Time, error) {
	pages := int(cmd.ValueSize())
	if pages <= 0 {
		return 0, t, errBadField
	}
	return d.CompactVLog(t, pages)
}

// CompactVLog relocates live values out of the oldest `pages` vLog pages and
// reclaims them. Exposed for maintenance scheduling and tests.
func (d *Device) CompactVLog(t sim.Time, pages int) (int, sim.Time, error) {
	if !d.cfg.NANDEnabled {
		return 0, t, fmt.Errorf("device: compaction requires NAND enabled")
	}
	pageSize := int64(d.ftl.PageSize())
	reclaimEnd := d.vlog.Tail() + int64(pages)*pageSize
	if flushed := d.vlog.Buffer().FlushedBelow(); reclaimEnd > flushed {
		reclaimEnd = flushed / pageSize * pageSize
	}
	if reclaimEnd <= d.vlog.Tail() {
		return 0, t, nil // nothing reclaimable yet
	}
	// Snapshot the live entries pointing into the reclaim window. The
	// iterator must not observe concurrent mutation, so collect first.
	live, end, err := d.liveEntriesBelow(t, vlog.Addr(reclaimEnd))
	if err != nil {
		return 0, t, err
	}
	// Relocate in address order: sequential page reads, append-order
	// writes.
	sort.Slice(live, func(i, j int) bool { return live[i].Addr < live[j].Addr })
	for _, e := range live {
		value, rEnd, err := d.vlog.Read(end, e.Addr, int(e.Size))
		if err != nil {
			return 0, end, fmt.Errorf("device: GC read %x: %w", e.Key, err)
		}
		addr, aEnd, err := d.vlog.AppendPiggybacked(rEnd, value)
		if err != nil {
			return 0, end, fmt.Errorf("device: GC append: %w", err)
		}
		// Relocation rewrites an acknowledged record's address; journal it so
		// a post-GC power cut cannot resurrect the reclaimed location. The
		// cached copy (keyed by user key) still holds the right bytes, but
		// the strict invalidation protocol drops it anyway: cache entries
		// conceptually reference the vLog location being reclaimed.
		d.invalidateValue(e.Key)
		d.jnl.append(e.Key, addr, e.Size, false)
		end, err = d.tree.Put(aEnd, e.Key, addr, e.Size)
		if err != nil {
			return 0, end, fmt.Errorf("device: GC reindex: %w", err)
		}
		d.stats.GCRelocated.Inc()
	}
	if err := d.vlog.AdvanceTail(reclaimEnd); err != nil {
		return 0, end, err
	}
	return len(live), end, nil
}

// liveEntriesBelow scans the index and returns every live entry whose value
// starts below limit. The NAND time of the index scan is charged.
func (d *Device) liveEntriesBelow(t sim.Time, limit vlog.Addr) ([]lsm.Entry, sim.Time, error) {
	it, err := d.tree.Seek(t, nil)
	if err != nil {
		return nil, t, err
	}
	var live []lsm.Entry
	for it.Valid() {
		e := it.Entry()
		if e.Addr < limit {
			// The iterator's key is a view into its reused decode buffer;
			// the snapshot outlives the iteration, so copy it (GC is a cold
			// path).
			e.Key = append([]byte(nil), e.Key...)
			live = append(live, e)
		}
		it.Next(t)
	}
	if it.Err() != nil {
		return nil, t, it.Err()
	}
	return live, it.End(), nil
}

// GarbageRatio estimates the dead fraction of the flushed vLog span: live
// bytes referenced by the index below the frontier vs. the span length.
// A cheap planning metric for when to trigger CompactVLog.
func (d *Device) GarbageRatio(t sim.Time) (float64, error) {
	span := d.vlog.LiveBytes()
	if span <= 0 {
		return 0, nil
	}
	it, err := d.tree.Seek(t, nil)
	if err != nil {
		return 0, err
	}
	var liveBytes int64
	for it.Valid() {
		liveBytes += int64(it.Entry().Size)
		it.Next(t)
	}
	if it.Err() != nil {
		return 0, it.Err()
	}
	g := 1 - float64(liveBytes)/float64(span)
	if g < 0 {
		g = 0
	}
	return g, nil
}
