package device

import (
	"bytes"
	"testing"
)

// FuzzJournalReplay drives the battery-backed journal's wire decoder — the
// surface Mount replay trusts — with arbitrary bytes. Invariants: the decoder
// never panics, accepted journals re-encode byte-identically (round trip),
// and every decoded record satisfies the bounds the decoder promises.
func FuzzJournalReplay(f *testing.F) {
	var j journal
	j.append([]byte("alpha"), 0, 128, false)
	j.append([]byte("beta"), 4096, 17, false)
	j.append([]byte("alpha"), 0, 0, true)
	f.Add(encodeJournal(&j, nil))
	f.Add([]byte{})
	f.Add([]byte{0x00})                                                // zero key length
	f.Add([]byte{0x01, 'k'})                                           // truncated record
	f.Add([]byte{0x01, 'k', 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0x02}) // bad flags

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := decodeJournal(data)
		if err != nil {
			return
		}
		for i, r := range dec.recs {
			if r.keyLen == 0 || r.keyLen > 255 {
				t.Fatalf("record %d: key length %d out of range", i, r.keyLen)
			}
			if r.addr < 0 {
				t.Fatalf("record %d: negative addr %d", i, r.addr)
			}
			if len(dec.key(i)) != r.keyLen {
				t.Fatalf("record %d: arena slice length %d != keyLen %d", i, len(dec.key(i)), r.keyLen)
			}
		}
		if re := encodeJournal(dec, nil); !bytes.Equal(re, data) {
			t.Fatalf("round trip mismatch:\n in  %x\n out %x", data, re)
		}
	})
}
