package device

import (
	"bytes"
	"fmt"
	"testing"

	"bandslim/internal/nand"
	"bandslim/internal/nvme"
	"bandslim/internal/pagebuf"
	"bandslim/internal/pcie"
	"bandslim/internal/sim"
)

// smallConfig returns a fast device for tests.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Geometry = nand.Geometry{Channels: 2, WaysPerChannel: 2, BlocksPerWay: 32, PagesPerBlock: 32, PageSize: 16 * 1024}
	cfg.Buffer.MaxEntries = 16
	cfg.LSM.MemTableEntries = 64
	return cfg
}

func newDev(t *testing.T, cfg Config) (*Device, *sim.Clock, *pcie.Link, *nvme.HostMemory) {
	t.Helper()
	clock := sim.NewClock()
	link := pcie.NewLink(pcie.DefaultCostModel())
	mem := nvme.NewHostMemory()
	dev, err := New(cfg, clock, link, mem)
	if err != nil {
		t.Fatal(err)
	}
	return dev, clock, link, mem
}

// submit pushes one command through the device and returns the completion.
func submit(t *testing.T, dev *Device, cmd nvme.Command) (nvme.Completion, sim.Time) {
	t.Helper()
	if err := dev.Queues().SQ.Push(cmd); err != nil {
		t.Fatal(err)
	}
	dev.Queues().SQ.RingDoorbell()
	end, err := dev.ProcessPending(0)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := dev.Queues().CQ.Reap()
	if err != nil {
		t.Fatal(err)
	}
	return comp, end
}

func writeCmd(t *testing.T, key string, value []byte, mode nvme.TransferMode) nvme.Command {
	t.Helper()
	var cmd nvme.Command
	cmd.SetOpcode(nvme.OpKVWrite)
	cmd.SetTransferMode(mode)
	cmd.SetCommandID(1)
	if err := cmd.SetKey([]byte(key)); err != nil {
		t.Fatal(err)
	}
	cmd.SetValueSize(uint32(len(value)))
	return cmd
}

func TestNewValidation(t *testing.T) {
	clock := sim.NewClock()
	link := pcie.NewLink(pcie.DefaultCostModel())
	mem := nvme.NewHostMemory()
	cfg := smallConfig()
	cfg.VLogFraction = 0
	if _, err := New(cfg, clock, link, mem); err == nil {
		t.Fatal("VLogFraction=0 accepted")
	}
	cfg = smallConfig()
	cfg.QueueDepth = 1
	if _, err := New(cfg, clock, link, mem); err == nil {
		t.Fatal("QueueDepth=1 accepted")
	}
}

func TestInlineWriteSmallValue(t *testing.T) {
	dev, _, _, _ := newDev(t, smallConfig())
	v := []byte("hello world")
	cmd := writeCmd(t, "k1", v, nvme.ModeInline)
	cmd.SetWritePiggyback(v)
	comp, _ := submit(t, dev, cmd)
	if comp.Status != nvme.StatusSuccess {
		t.Fatalf("status %v", comp.Status)
	}
	if dev.Stats().WritesCompleted.Value() != 1 {
		t.Fatal("write not completed")
	}
	if dev.Stats().InlineBytes.Value() != int64(len(v)) {
		t.Fatalf("InlineBytes = %d", dev.Stats().InlineBytes.Value())
	}
}

func TestInlineWriteWithTrailingFragments(t *testing.T) {
	dev, _, _, _ := newDev(t, smallConfig())
	v := make([]byte, 200)
	for i := range v {
		v[i] = byte(i)
	}
	cmd := writeCmd(t, "k2", v, nvme.ModeInline)
	n := cmd.SetWritePiggyback(v)
	comp, _ := submit(t, dev, cmd)
	if comp.Status != nvme.StatusSuccess {
		t.Fatalf("write command status %v", comp.Status)
	}
	// Write must not complete until every fragment arrives.
	if dev.Stats().WritesCompleted.Value() != 0 {
		t.Fatal("write completed before fragments arrived")
	}
	rest := v[n:]
	for len(rest) > 0 {
		var tr nvme.Command
		tr.SetOpcode(nvme.OpKVTransfer)
		tr.SetCommandID(2)
		k := tr.SetTransferPiggyback(rest)
		comp, _ := submit(t, dev, tr)
		if comp.Status != nvme.StatusSuccess {
			t.Fatalf("transfer status %v", comp.Status)
		}
		rest = rest[k:]
	}
	if dev.Stats().WritesCompleted.Value() != 1 {
		t.Fatal("write never completed")
	}
	if dev.Stats().TransferFragments.Value() != int64(nvme.TransferCommandsFor(len(v))-1) {
		t.Fatalf("fragments = %d", dev.Stats().TransferFragments.Value())
	}
}

func TestPRPWriteAndRead(t *testing.T) {
	dev, _, _, mem := newDev(t, smallConfig())
	v := make([]byte, 5000)
	for i := range v {
		v[i] = byte(i * 3)
	}
	prp, err := nvme.BuildPRP(mem, v)
	if err != nil {
		t.Fatal(err)
	}
	cmd := writeCmd(t, "k3", v, nvme.ModePRP)
	cmd.SetPRP1(prp.Pages[0])
	comp, _ := submit(t, dev, cmd)
	if comp.Status != nvme.StatusSuccess {
		t.Fatalf("write status %v", comp.Status)
	}
	prp.Free(mem)

	// Read it back.
	rbuf, err := nvme.BuildPRP(mem, make([]byte, 8192))
	if err != nil {
		t.Fatal(err)
	}
	var rd nvme.Command
	rd.SetOpcode(nvme.OpKVRead)
	rd.SetCommandID(9)
	rd.SetKey([]byte("k3"))
	rd.SetPRP1(rbuf.Pages[0])
	comp, _ = submit(t, dev, rd)
	if comp.Status != nvme.StatusSuccess {
		t.Fatalf("read status %v", comp.Status)
	}
	if int(comp.Result) != len(v) {
		t.Fatalf("read size %d", comp.Result)
	}
	got, _ := rbuf.Gather(mem)
	if !bytes.Equal(got[:len(v)], v) {
		t.Fatal("read-back mismatch")
	}
}

func TestHybridWrite(t *testing.T) {
	dev, _, link, mem := newDev(t, smallConfig())
	v := make([]byte, 4096+32)
	for i := range v {
		v[i] = byte(i * 7)
	}
	prp, _ := nvme.BuildPRP(mem, v[:4096])
	cmd := writeCmd(t, "k4", v, nvme.ModeHybrid)
	cmd.SetPRP1(prp.Pages[0])
	comp, _ := submit(t, dev, cmd)
	if comp.Status != nvme.StatusSuccess {
		t.Fatalf("hybrid write status %v", comp.Status)
	}
	// Only 4 KiB of DMA traffic, not 8 KiB.
	if link.Traf.DMABytes.Value() != 4096 {
		t.Fatalf("DMA traffic %d, want 4096", link.Traf.DMABytes.Value())
	}
	// Tail arrives in one transfer command.
	var tr nvme.Command
	tr.SetOpcode(nvme.OpKVTransfer)
	tr.SetCommandID(5)
	tr.SetTransferPiggyback(v[4096:])
	comp, _ = submit(t, dev, tr)
	if comp.Status != nvme.StatusSuccess {
		t.Fatalf("tail status %v", comp.Status)
	}
	if dev.Stats().WritesCompleted.Value() != 1 {
		t.Fatal("hybrid write never completed")
	}
	// Verify content.
	rbuf, _ := nvme.BuildPRP(mem, make([]byte, 8192))
	var rd nvme.Command
	rd.SetOpcode(nvme.OpKVRead)
	rd.SetKey([]byte("k4"))
	rd.SetPRP1(rbuf.Pages[0])
	comp, _ = submit(t, dev, rd)
	if comp.Status != nvme.StatusSuccess {
		t.Fatal("read failed")
	}
	got, _ := rbuf.Gather(mem)
	if !bytes.Equal(got[:len(v)], v) {
		t.Fatal("hybrid value corrupted")
	}
}

func TestReadMissingKey(t *testing.T) {
	dev, _, _, mem := newDev(t, smallConfig())
	rbuf, _ := nvme.BuildPRP(mem, make([]byte, 4096))
	var rd nvme.Command
	rd.SetOpcode(nvme.OpKVRead)
	rd.SetKey([]byte("missing"))
	rd.SetPRP1(rbuf.Pages[0])
	comp, _ := submit(t, dev, rd)
	if comp.Status != nvme.StatusKeyNotFound {
		t.Fatalf("status %v, want KeyNotFound", comp.Status)
	}
}

func TestDeleteThenReadNotFound(t *testing.T) {
	dev, _, _, _ := newDev(t, smallConfig())
	v := []byte("x")
	cmd := writeCmd(t, "kd", v, nvme.ModeInline)
	cmd.SetWritePiggyback(v)
	submit(t, dev, cmd)

	var del nvme.Command
	del.SetOpcode(nvme.OpKVDelete)
	del.SetKey([]byte("kd"))
	comp, _ := submit(t, dev, del)
	if comp.Status != nvme.StatusSuccess {
		t.Fatalf("delete status %v", comp.Status)
	}
	var rd nvme.Command
	rd.SetOpcode(nvme.OpKVRead)
	rd.SetKey([]byte("kd"))
	comp, _ = submit(t, dev, rd)
	if comp.Status != nvme.StatusKeyNotFound {
		t.Fatalf("read-after-delete status %v", comp.Status)
	}
}

func TestSeekNextIteration(t *testing.T) {
	dev, _, _, mem := newDev(t, smallConfig())
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("it%02d", i)
		v := []byte{byte(i), byte(i), byte(i)}
		cmd := writeCmd(t, key, v, nvme.ModeInline)
		cmd.SetWritePiggyback(v)
		submit(t, dev, cmd)
	}
	var seek nvme.Command
	seek.SetOpcode(nvme.OpKVSeek)
	seek.SetKey([]byte("it03"))
	if comp, _ := submit(t, dev, seek); comp.Status != nvme.StatusSuccess {
		t.Fatalf("seek status %v", comp.Status)
	}
	for i := 3; i < 10; i++ {
		rbuf, _ := nvme.BuildPRP(mem, make([]byte, 4096))
		var next nvme.Command
		next.SetOpcode(nvme.OpKVNext)
		next.SetPRP1(rbuf.Pages[0])
		comp, _ := submit(t, dev, next)
		if comp.Status != nvme.StatusSuccess {
			t.Fatalf("next %d status %v", i, comp.Status)
		}
		data, _ := rbuf.Gather(mem)
		kl := int(data[0])
		key := string(data[1 : 1+kl])
		if key != fmt.Sprintf("it%02d", i) {
			t.Fatalf("next gave key %q at step %d", key, i)
		}
		rbuf.Free(mem)
	}
	var next nvme.Command
	next.SetOpcode(nvme.OpKVNext)
	comp, _ := submit(t, dev, next)
	if comp.Status != nvme.StatusIterEnd {
		t.Fatalf("exhausted iterator status %v", comp.Status)
	}
}

func TestFlushCommand(t *testing.T) {
	dev, _, _, _ := newDev(t, smallConfig())
	v := []byte("abc")
	cmd := writeCmd(t, "kf", v, nvme.ModeInline)
	cmd.SetWritePiggyback(v)
	submit(t, dev, cmd)
	before := dev.Flash().Stats().PageWrites.Value()
	var fl nvme.Command
	fl.SetOpcode(nvme.OpKVFlush)
	comp, end := submit(t, dev, fl)
	if comp.Status != nvme.StatusSuccess {
		t.Fatalf("flush status %v", comp.Status)
	}
	if dev.Flash().Stats().PageWrites.Value() <= before {
		t.Fatal("flush wrote nothing to NAND")
	}
	if end == 0 {
		t.Fatal("flush charged no NAND time")
	}
}

func TestNANDDisabledSkipsPersistence(t *testing.T) {
	cfg := smallConfig()
	cfg.NANDEnabled = false
	dev, _, _, _ := newDev(t, cfg)
	v := []byte("abc")
	cmd := writeCmd(t, "kx", v, nvme.ModeInline)
	cmd.SetWritePiggyback(v)
	comp, _ := submit(t, dev, cmd)
	if comp.Status != nvme.StatusSuccess {
		t.Fatalf("status %v", comp.Status)
	}
	if dev.Flash().Stats().PageWrites.Value() != 0 {
		t.Fatal("NAND written despite NANDEnabled=false")
	}
	if dev.Stats().WritesCompleted.Value() != 1 {
		t.Fatal("write not acknowledged")
	}
}

func TestBadCommands(t *testing.T) {
	dev, _, _, _ := newDev(t, smallConfig())
	// Unknown opcode.
	var bad nvme.Command
	bad.SetOpcode(nvme.Opcode(0x55))
	comp, _ := submit(t, dev, bad)
	if comp.Status != nvme.StatusInvalidField {
		t.Fatalf("unknown opcode status %v", comp.Status)
	}
	// Transfer with no open write.
	var tr nvme.Command
	tr.SetOpcode(nvme.OpKVTransfer)
	comp, _ = submit(t, dev, tr)
	if comp.Status != nvme.StatusInvalidField {
		t.Fatalf("orphan transfer status %v", comp.Status)
	}
	// Write with empty key.
	var w nvme.Command
	w.SetOpcode(nvme.OpKVWrite)
	comp, _ = submit(t, dev, w)
	if comp.Status != nvme.StatusInvalidField {
		t.Fatalf("empty-key write status %v", comp.Status)
	}
	if dev.Stats().BadCommands.Value() == 0 {
		t.Fatal("bad commands not counted")
	}
}

// Writes under each packing policy keep values readable.
func TestWritesAcrossPoliciesReadBack(t *testing.T) {
	for _, p := range []pagebuf.Policy{pagebuf.PolicyBlock, pagebuf.PolicyAll, pagebuf.PolicySelective, pagebuf.PolicyBackfill} {
		cfg := smallConfig()
		cfg.Buffer.Policy = p
		dev, _, _, mem := newDev(t, cfg)
		var values [][]byte
		for i := 0; i < 30; i++ {
			size := 8 + (i%5)*700 // mixes tiny and KB-scale
			v := make([]byte, size)
			for j := range v {
				v[j] = byte(j + i)
			}
			values = append(values, v)
			if i%3 == 0 {
				prp, _ := nvme.BuildPRP(mem, v)
				cmd := writeCmd(t, fmt.Sprintf("p%02d", i), v, nvme.ModePRP)
				cmd.SetPRP1(prp.Pages[0])
				if comp, _ := submit(t, dev, cmd); comp.Status != nvme.StatusSuccess {
					t.Fatalf("policy %v PRP write %d: %v", p, i, comp.Status)
				}
				prp.Free(mem)
				continue
			}
			cmd := writeCmd(t, fmt.Sprintf("p%02d", i), v, nvme.ModeInline)
			n := cmd.SetWritePiggyback(v)
			if comp, _ := submit(t, dev, cmd); comp.Status != nvme.StatusSuccess {
				t.Fatalf("policy %v inline write %d: %v", p, i, comp.Status)
			}
			rest := v[n:]
			for len(rest) > 0 {
				var tr nvme.Command
				tr.SetOpcode(nvme.OpKVTransfer)
				k := tr.SetTransferPiggyback(rest)
				if comp, _ := submit(t, dev, tr); comp.Status != nvme.StatusSuccess {
					t.Fatalf("policy %v fragment: %v", p, comp.Status)
				}
				rest = rest[k:]
			}
		}
		for i, v := range values {
			rbuf, _ := nvme.BuildPRP(mem, make([]byte, 8192))
			var rd nvme.Command
			rd.SetOpcode(nvme.OpKVRead)
			rd.SetKey([]byte(fmt.Sprintf("p%02d", i)))
			rd.SetPRP1(rbuf.Pages[0])
			comp, _ := submit(t, dev, rd)
			if comp.Status != nvme.StatusSuccess {
				t.Fatalf("policy %v read %d: %v", p, i, comp.Status)
			}
			got, _ := rbuf.Gather(mem)
			if !bytes.Equal(got[:len(v)], v) {
				t.Fatalf("policy %v value %d corrupted", p, i)
			}
			rbuf.Free(mem)
		}
	}
}
