package device

import (
	"encoding/binary"

	"bandslim/internal/nvme"
	"bandslim/internal/sim"
)

// Identify models the NVMe admin Identify path the paper's NVMe-compatible
// design preserves ("to keep its various utilities from device
// identification to device management", §1). The controller returns a
// 4 KiB identify structure into the host buffer the command's PRP
// describes; the BandSlim-specific capabilities live in the
// vendor-specific region.

// IdentifyData is the decoded identify structure.
type IdentifyData struct {
	Model            string
	Serial           string
	CapacityBytes    int64 // raw NAND capacity
	VLogBytes        int64 // value-log region size
	NANDPageSize     int
	Channels         int
	WaysPerChannel   int
	BufferEntries    int
	PackingPolicy    string
	KVCommandSet     bool
	InlineWriteBytes int // piggyback capacity of the write command
	InlineXferBytes  int // piggyback capacity of the transfer command
}

// identify layout offsets within the 4 KiB structure (a compact analog of
// the NVMe Identify Controller data structure: strings up front, vendor
// capabilities from offset 1024).
const (
	idOffModel     = 0   // 40 bytes, space padded
	idOffSerial    = 40  // 20 bytes
	idOffCapacity  = 64  // u64 raw capacity
	idOffVLogBytes = 72  // u64
	idOffPageSize  = 80  // u32
	idOffChannels  = 84  // u16
	idOffWays      = 86  // u16
	idOffBufEnt    = 88  // u32
	idOffPolicy    = 92  // 16 bytes, space padded
	idOffKVFlag    = 108 // u8: bit0 = KV command set
	idOffInlineW   = 109 // u8
	idOffInlineX   = 110 // u8
	identifySize   = 4096
)

const (
	identifyModel  = "BandSlim KV-SSD (simulated Cosmos+)"
	identifySerial = "BSLIM-SIM-0001"
)

func putPadded(dst []byte, s string) {
	for i := range dst {
		dst[i] = ' '
	}
	copy(dst, s)
}

func trimPadded(src []byte) string {
	end := len(src)
	for end > 0 && (src[end-1] == ' ' || src[end-1] == 0) {
		end--
	}
	return string(src[:end])
}

// buildIdentify renders the structure.
func (d *Device) buildIdentify() []byte {
	out := make([]byte, identifySize)
	putPadded(out[idOffModel:idOffModel+40], identifyModel)
	putPadded(out[idOffSerial:idOffSerial+20], identifySerial)
	geo := d.flash.Geometry()
	binary.LittleEndian.PutUint64(out[idOffCapacity:], uint64(geo.CapacityBytes()))
	binary.LittleEndian.PutUint64(out[idOffVLogBytes:], uint64(d.vlog.CapacityBytes()))
	binary.LittleEndian.PutUint32(out[idOffPageSize:], uint32(geo.PageSize))
	binary.LittleEndian.PutUint16(out[idOffChannels:], uint16(geo.Channels))
	binary.LittleEndian.PutUint16(out[idOffWays:], uint16(geo.WaysPerChannel))
	binary.LittleEndian.PutUint32(out[idOffBufEnt:], uint32(d.cfg.Buffer.MaxEntries))
	putPadded(out[idOffPolicy:idOffPolicy+16], d.cfg.Buffer.Policy.String())
	out[idOffKVFlag] = 1
	out[idOffInlineW] = nvme.PiggybackWriteCapacity
	out[idOffInlineX] = nvme.PiggybackTransferCapacity
	return out
}

// ParseIdentify decodes an identify payload.
func ParseIdentify(data []byte) IdentifyData {
	if len(data) < identifySize {
		padded := make([]byte, identifySize)
		copy(padded, data)
		data = padded
	}
	return IdentifyData{
		Model:            trimPadded(data[idOffModel : idOffModel+40]),
		Serial:           trimPadded(data[idOffSerial : idOffSerial+20]),
		CapacityBytes:    int64(binary.LittleEndian.Uint64(data[idOffCapacity:])),
		VLogBytes:        int64(binary.LittleEndian.Uint64(data[idOffVLogBytes:])),
		NANDPageSize:     int(binary.LittleEndian.Uint32(data[idOffPageSize:])),
		Channels:         int(binary.LittleEndian.Uint16(data[idOffChannels:])),
		WaysPerChannel:   int(binary.LittleEndian.Uint16(data[idOffWays:])),
		BufferEntries:    int(binary.LittleEndian.Uint32(data[idOffBufEnt:])),
		PackingPolicy:    trimPadded(data[idOffPolicy : idOffPolicy+16]),
		KVCommandSet:     data[idOffKVFlag]&1 != 0,
		InlineWriteBytes: int(data[idOffInlineW]),
		InlineXferBytes:  int(data[idOffInlineX]),
	}
}

// execIdentify DMAs the identify structure to the host.
func (d *Device) execIdentify(t sim.Time, cmd nvme.Command) (int, sim.Time, error) {
	data := d.buildIdentify()
	end, err := d.transferOut(t, cmd, data)
	if err != nil {
		return 0, t, err
	}
	return len(data), end, nil
}
