package device

import (
	"encoding/binary"
	"fmt"

	"bandslim/internal/nvme"
	"bandslim/internal/vlog"
)

// The index journal is the device's battery-backed record of every LSM
// insert since the last durable point (the last committed tree flush). The
// paper's platform rides out power loss with battery-backed device DRAM for
// the page buffer (§2.2); the journal extends the same protection to the
// index: a write is acknowledged once its value sits in the battery-backed
// vLog buffer and its (key, addr, size) record sits here. On mount the tree
// is rolled back to its last committed catalog and the journal is replayed
// into a fresh MemTable, which restores every acknowledged write.
//
// The journal lives in an arena (records index into one growing byte slab)
// so steady-state appends allocate nothing once the slab reaches its working
// size. A successful tree flush clears it via the tree's OnDurable hook.

// journalRecord is one index update: a put (addr, size) or a tombstone.
type journalRecord struct {
	keyOff int
	keyLen int
	addr   vlog.Addr
	size   uint32
	tomb   bool
}

// journalRecordOverhead is the non-key wire size of one encoded record:
// keyLen u8 + addr i64 + size u32 + flags u8. Mount replay charges a device
// memcpy of key+overhead per record.
const journalRecordOverhead = 1 + 8 + 4 + 1

type journal struct {
	recs  []journalRecord
	arena []byte
}

func (j *journal) append(key []byte, addr vlog.Addr, size uint32, tomb bool) {
	off := len(j.arena)
	j.arena = append(j.arena, key...)
	j.recs = append(j.recs, journalRecord{keyOff: off, keyLen: len(key), addr: addr, size: size, tomb: tomb})
}

func (j *journal) reset() {
	j.recs = j.recs[:0]
	j.arena = j.arena[:0]
}

func (j *journal) len() int { return len(j.recs) }

func (j *journal) key(i int) []byte {
	r := j.recs[i]
	return j.arena[r.keyOff : r.keyOff+r.keyLen]
}

// encodeJournal renders the journal in its battery-backed wire format:
// per record [keyLen u8][key][addr i64 LE][size u32 LE][flags u8].
func encodeJournal(j *journal, dst []byte) []byte {
	for i, r := range j.recs {
		key := j.key(i)
		dst = append(dst, byte(len(key)))
		dst = append(dst, key...)
		var buf [13]byte
		binary.LittleEndian.PutUint64(buf[0:8], uint64(r.addr))
		binary.LittleEndian.PutUint32(buf[8:12], r.size)
		if r.tomb {
			buf[12] = 1
		}
		dst = append(dst, buf[:]...)
	}
	return dst
}

// decodeJournal parses the wire format back into a journal, validating every
// record (this is the surface the replay fuzz target drives). Keys must be
// non-empty and within the NVMe key-size bound; flags other than 0/1 are
// corruption.
func decodeJournal(data []byte) (*journal, error) {
	j := &journal{}
	for len(data) > 0 {
		kl := int(data[0])
		if kl == 0 || kl > nvme.MaxKeySize {
			return nil, fmt.Errorf("device: journal key length %d out of range", kl)
		}
		if len(data) < 1+kl+13 {
			return nil, fmt.Errorf("device: truncated journal record")
		}
		key := data[1 : 1+kl]
		addr := vlog.Addr(binary.LittleEndian.Uint64(data[1+kl : 1+kl+8]))
		size := binary.LittleEndian.Uint32(data[1+kl+8 : 1+kl+12])
		flags := data[1+kl+12]
		if flags > 1 {
			return nil, fmt.Errorf("device: journal record flags %#x corrupt", flags)
		}
		if addr < 0 {
			return nil, fmt.Errorf("device: journal record addr %d negative", addr)
		}
		j.append(key, addr, size, flags == 1)
		data = data[1+kl+13:]
	}
	return j, nil
}
