// Package device implements the BandSlim Key-Value Controller (§3.1): the
// simulated KV-SSD firmware that fetches NVMe commands, reassembles
// piggybacked value fragments, drives the page-aligned DMA engine, packs
// values into the NAND page buffer under the configured policy, and indexes
// them in the in-device KV-separated LSM-tree.
package device

import (
	"errors"
	"fmt"

	"bandslim/internal/cache"
	"bandslim/internal/dma"
	"bandslim/internal/fault"
	"bandslim/internal/ftl"
	"bandslim/internal/lsm"
	"bandslim/internal/metrics"
	"bandslim/internal/nand"
	"bandslim/internal/nvme"
	"bandslim/internal/pagebuf"
	"bandslim/internal/pcie"
	"bandslim/internal/sim"
	"bandslim/internal/trace"
	"bandslim/internal/vlog"
)

// Config assembles a whole device.
type Config struct {
	Geometry nand.Geometry
	Latency  nand.Latency
	FTL      ftl.Config
	Buffer   pagebuf.Config
	LSM      lsm.Config
	Memcpy   dma.MemcpyModel
	// VLogFraction of the FTL's logical pages backs the value log; the
	// rest holds SSTable meta pages.
	VLogFraction float64
	// NANDEnabled gates persistence. The paper's transfer experiments
	// (§4.2) disable NAND I/O to isolate interconnect behaviour; writes
	// then complete after transfer and reassembly.
	NANDEnabled bool
	// QueueDepth sizes the SQ/CQ rings.
	QueueDepth int
	// Cache configures the simulated device-DRAM read tier (value +
	// SSTable-page caches). The zero value disables it, leaving timing and
	// allocations identical to a cache-less device.
	Cache cache.Config
}

// DefaultConfig returns a device matching the evaluation platform: Cosmos+
// geometry (scaled), 16 KiB NAND pages, 512 page-buffer entries.
func DefaultConfig() Config {
	return Config{
		Geometry: nand.DefaultGeometry(),
		Latency:  nand.DefaultLatency(),
		FTL:      ftl.DefaultConfig(),
		Buffer: pagebuf.Config{
			PageSize:   16 * 1024,
			MaxEntries: 512,
			Policy:     pagebuf.PolicyBlock,
		},
		LSM:          lsm.DefaultConfig(),
		Memcpy:       dma.DefaultMemcpyModel(),
		VLogFraction: 0.75,
		NANDEnabled:  true,
		QueueDepth:   64,
	}
}

// Stats tallies controller activity.
type Stats struct {
	WritesCompleted   metrics.Counter
	ReadsCompleted    metrics.Counter
	DeletesCompleted  metrics.Counter
	TransferFragments metrics.Counter // transfer commands consumed
	InlineBytes       metrics.Counter // value bytes received inline
	DMAValueBytes     metrics.Counter // value bytes received via DMA
	BatchedRecords    metrics.Counter // records unpacked from bulk PUTs
	GCRelocated       metrics.Counter // values moved by vLog garbage collection
	BadCommands       metrics.Counter
	PowerCuts         metrics.Counter // power-cut faults taken
	Mounts            metrics.Counter // recovery mounts performed
	ReplayedRecords   metrics.Counter // journal records replayed at mount

	// Device-DRAM read-cache tallies (zero while the cache is disabled).
	CacheHits          metrics.Counter // value-tier hits (reads served from DRAM)
	CacheMisses        metrics.Counter // value-tier misses (reads that walked the LSM)
	PageCacheHits      metrics.Counter // SSTable-page-tier hits
	PageCacheMisses    metrics.Counter // SSTable-page-tier misses
	CacheEvictions     metrics.Counter // entries evicted across both tiers
	CacheInvalidations metrics.Counter // entries dropped by the strict invalidation protocol
}

// pendingWrite reassembles a value spanning multiple commands (§3.3.1: the
// driver keeps fragments FIFO in the same queue, so one open write per queue
// suffices).
type pendingWrite struct {
	key     []byte
	value   []byte
	want    int
	mode    nvme.TransferMode
	dmaPart int // bytes of the value that arrived by DMA (hybrid head)
	start   sim.Time
	reached sim.Time
}

// Device is the simulated KV-SSD.
type Device struct {
	cfg     Config
	clock   *sim.Clock
	link    *pcie.Link
	eng     *dma.Engine
	flash   *nand.Array
	ftl     *ftl.FTL
	vlog    *vlog.VLog
	tree    *lsm.Tree
	hostMem *nvme.HostMemory
	qp      *nvme.QueuePair
	pending *pendingWrite
	iter    *lsm.Iterator
	stats   Stats
	tr      trace.Tracer
	inj     *fault.Injector
	// dead latches after a power cut: every command completes with
	// StatusPowerLoss until Mount. jnl is the battery-backed index journal
	// replayed at mount (see journal.go).
	dead bool
	jnl  journal
	// Device-DRAM read cache: vcache serves whole vLog entries before the
	// LSM walk, pstore interposes the SSTable-page tier (pass-through when
	// detached), cacheLat is the per-hit DRAM access charge.
	vcache   *cache.Values
	pstore   *cachingStore
	cacheLat sim.Duration

	// Scratch reused across commands. The controller executes commands one at
	// a time (single-owner firmware), and §3.3.1's contract of one open write
	// per queue means pwScratch can back every pendingWrite. Downstream
	// consumers copy synchronously (pagebuf writeBytes, memtable key copy), so
	// nothing retains these slices across commands.
	pwScratch  pendingWrite
	keyScratch []byte   // per-command key decode (read/delete/seek)
	valueBuf   []byte   // pendingWrite value backing (write/batch reassembly)
	readBuf    []byte   // vLog read destination (read/next)
	nextBuf    []byte   // NEXT payload framing [klen][key][value]
	prpScratch []uint64 // PRP page-run reconstruction for transfers
	// sweep collects one windowed batch of completions before posting, so
	// ProcessWindow can order them by readiness (out-of-order completion)
	// without allocating per sweep.
	sweep []nvme.Completion
}

// New builds a device over a fresh flash array, sharing the caller's clock,
// link and host memory (the driver owns those).
func New(cfg Config, clock *sim.Clock, link *pcie.Link, hostMem *nvme.HostMemory) (*Device, error) {
	if cfg.VLogFraction <= 0 || cfg.VLogFraction >= 1 {
		return nil, fmt.Errorf("device: VLogFraction %v out of (0,1)", cfg.VLogFraction)
	}
	if cfg.QueueDepth < 2 {
		return nil, fmt.Errorf("device: QueueDepth %d too small", cfg.QueueDepth)
	}
	flash, err := nand.New(cfg.Geometry, cfg.Latency, clock)
	if err != nil {
		return nil, err
	}
	f, err := ftl.New(flash, cfg.FTL)
	if err != nil {
		return nil, err
	}
	eng := dma.NewEngine(link, cfg.Memcpy)
	vlogPages := int(float64(f.LogicalPages()) * cfg.VLogFraction)
	v, err := vlog.Build(f, cfg.Buffer, eng, 0, vlogPages)
	if err != nil {
		return nil, err
	}
	store, err := lsm.NewFTLStore(f, vlogPages, f.LogicalPages()-vlogPages)
	if err != nil {
		return nil, err
	}
	// The caching wrapper is always interposed (pure pass-through while no
	// page cache is attached) so Tune can enable the tier on a live device.
	pstore := &cachingStore{inner: store}
	tree, err := lsm.NewTree(cfg.LSM, pstore)
	if err != nil {
		return nil, err
	}
	d := &Device{
		cfg:     cfg,
		clock:   clock,
		link:    link,
		eng:     eng,
		flash:   flash,
		ftl:     f,
		vlog:    v,
		tree:    tree,
		hostMem: hostMem,
		qp:      nvme.NewQueuePair(cfg.QueueDepth),
		pstore:  pstore,
	}
	pstore.dev = d
	if err := d.SetCache(cfg.Cache); err != nil {
		return nil, err
	}
	// A committed tree flush is the durability point: acknowledged records
	// are on flash, so the battery-backed journal empties.
	tree.SetOnDurable(d.jnl.reset)
	return d, nil
}

// SetInjector wires a plan-driven fault injector through every device-side
// component that can fail: the NAND array, the DMA engine, and the
// controller's own command dispatch. A nil injector disables injection.
func (d *Device) SetInjector(inj *fault.Injector) {
	d.inj = inj
	d.flash.SetInjector(inj)
	d.eng.SetInjector(inj)
}

// Queues exposes the device's queue pair for the driver.
func (d *Device) Queues() *nvme.QueuePair { return d.qp }

// SetTracer wires the tracer through every device-side component: the DMA
// engine, the NAND array, the page buffer, the queue rings, and the
// controller's own command-execution spans. A nil tracer disables them all.
func (d *Device) SetTracer(tr trace.Tracer) {
	d.tr = tr
	d.eng.SetTracer(tr)
	d.flash.SetTracer(tr)
	d.vlog.Buffer().SetTracer(tr)
	d.qp.Attach(d.clock, tr)
}

// Stats exposes the controller tallies.
func (d *Device) Stats() *Stats { return &d.stats }

// Flash exposes the NAND array (for NAND I/O counts).
func (d *Device) Flash() *nand.Array { return d.flash }

// FTL exposes the translation layer (for GC stats).
func (d *Device) FTL() *ftl.FTL { return d.ftl }

// Tree exposes the LSM index (for compaction stats).
func (d *Device) Tree() *lsm.Tree { return d.tree }

// VLog exposes the value log (for packing stats).
func (d *Device) VLog() *vlog.VLog { return d.vlog }

// Engine exposes the DMA engine (for memcpy stats).
func (d *Device) Engine() *dma.Engine { return d.eng }

// Buffer exposes the NAND page buffer (for policy stats).
func (d *Device) Buffer() *pagebuf.Buffer { return d.vlog.Buffer() }

// ProcessPending fetches and executes every published command, posting one
// completion per command. t is the time the doorbell write reached the
// device; the returned time is when the last completion was posted.
func (d *Device) ProcessPending(t sim.Time) (sim.Time, error) {
	end := t
	for {
		cmd, err := d.qp.SQ.Fetch()
		if err == nvme.ErrQueueEmpty {
			return end, nil
		}
		if err != nil {
			return end, err
		}
		d.link.RecordCommandFetch()
		comp, cEnd := d.execute(t, cmd)
		if cEnd > end {
			end = cEnd
		}
		comp.SQHead = d.qp.SQ.Head()
		// Stamp readiness so the CQ-post trace boundary exists on the
		// synchronous path too (no coalescing: ready == device-work end).
		comp.Ready = cEnd
		if err := d.qp.CQ.Post(comp); err != nil {
			return end, fmt.Errorf("device: completion queue overflow: %w", err)
		}
		d.link.RecordCompletion()
	}
}

// ProcessWindow fetches and executes every published command like
// ProcessPending, but models the controller servicing a submission window of
// independent commands concurrently:
//
//   - Command fetches stagger by the link's pipeline interval (the burst
//     fetch/parse cadence submitBurst already charges), so command i starts
//     at t + i·PipelineInterval instead of all at t.
//   - Each command's device work runs against the NAND way and wire
//     BusyLines from its own start time, so reads landing on different
//     channels/ways genuinely overlap while same-way reads serialize.
//   - Completions are posted in readiness order — out-of-order with respect
//     to submission — each stamped with its Ready time. With coalesce > 0
//     readiness quantizes up to the next multiple of coalesce, modeling
//     interrupt-coalescing-style completion sweeps (fewer, batched CQ
//     deliveries at the cost of completion latency).
//
// State mutations still happen in fetch order on the controller (single
// firmware core), so per-key ordering and §3.3.1's one-open-write invariant
// are untouched; only completion timing and posting order change. The
// returned time is when the last completion was posted.
func (d *Device) ProcessWindow(t sim.Time, coalesce sim.Duration) (sim.Time, error) {
	end := t
	d.sweep = d.sweep[:0]
	for i := 0; ; i++ {
		cmd, err := d.qp.SQ.Fetch()
		if err == nvme.ErrQueueEmpty {
			break
		}
		if err != nil {
			return end, err
		}
		d.link.RecordCommandFetch()
		start := t.Add(sim.Duration(i) * d.link.Model.PipelineInterval)
		comp, cEnd := d.execute(start, cmd)
		if cEnd < start {
			cEnd = start
		}
		comp.SQHead = d.qp.SQ.Head()
		if coalesce > 0 {
			if rem := sim.Duration(int64(cEnd) % int64(coalesce)); rem != 0 {
				cEnd = cEnd.Add(coalesce - rem)
			}
		}
		comp.Ready = cEnd
		if cEnd > end {
			end = cEnd
		}
		d.sweep = append(d.sweep, comp)
	}
	// Stable insertion sort by readiness: ties keep fetch order, so two runs
	// of the same command stream post byte-identical completion streams.
	for j := 1; j < len(d.sweep); j++ {
		c := d.sweep[j]
		k := j - 1
		for k >= 0 && d.sweep[k].Ready > c.Ready {
			d.sweep[k+1] = d.sweep[k]
			k--
		}
		d.sweep[k+1] = c
	}
	for _, comp := range d.sweep {
		if err := d.qp.CQ.Post(comp); err != nil {
			return end, fmt.Errorf("device: completion queue overflow: %w", err)
		}
		d.link.RecordCompletion()
	}
	d.sweep = d.sweep[:0]
	return end, nil
}

// execute runs one command and returns its completion and the time its
// device-side work finished.
func (d *Device) execute(t sim.Time, cmd nvme.Command) (nvme.Completion, sim.Time) {
	comp := nvme.Completion{CommandID: cmd.CommandID(), Status: nvme.StatusSuccess}
	if d.dead {
		// Power has been cut: nothing executes until the host mounts the
		// device again.
		comp.Status = nvme.StatusPowerLoss
		return comp, t
	}
	if eff, ok := d.inj.Check(fault.SiteExec, t); ok {
		if d.tr != nil {
			d.tr.Emit(trace.Event{Cat: trace.CatDevice, Name: trace.EvFault, Op: byte(cmd.Opcode()), Start: t, End: t, Arg: int64(eff)})
		}
		switch eff {
		case fault.EffectPowerCut:
			d.powerCut(t)
			comp.Status = nvme.StatusPowerLoss
		case fault.EffectTransient:
			comp.Status = nvme.StatusTransient
		default:
			comp.Status = nvme.StatusMedia
		}
		return comp, t
	}
	var end sim.Time
	var err error
	switch cmd.Opcode() {
	case nvme.OpKVWrite:
		end, err = d.execWrite(t, cmd)
	case nvme.OpKVTransfer:
		end, err = d.execTransfer(t, cmd)
	case nvme.OpKVRead:
		var n int
		n, end, err = d.execRead(t, cmd)
		comp.Result = uint32(n)
	case nvme.OpKVDelete:
		end, err = d.execDelete(t, cmd)
	case nvme.OpKVSeek:
		end, err = d.execSeek(t, cmd)
	case nvme.OpKVNext:
		var n int
		n, end, err = d.execNext(t, cmd)
		comp.Result = uint32(n)
	case nvme.OpKVFlush:
		end, err = d.execFlush(t)
	case nvme.OpKVBatchWrite:
		var n int
		n, end, err = d.execBatchWrite(t, cmd)
		comp.Result = uint32(n)
	case nvme.OpKVCompact:
		var n int
		n, end, err = d.execCompact(t, cmd)
		comp.Result = uint32(n)
	case nvme.OpAdminIdentify:
		var n int
		n, end, err = d.execIdentify(t, cmd)
		comp.Result = uint32(n)
	default:
		d.stats.BadCommands.Inc()
		comp.Status = nvme.StatusInvalidField
		return comp, t
	}
	if err != nil {
		if errors.Is(err, fault.ErrPowerCut) {
			// The cut happened mid-command, somewhere down the stack; all
			// volatile state is gone as of now.
			d.powerCut(t)
		}
		comp.Status = classify(err)
	}
	if d.tr != nil {
		d.tr.Emit(trace.Event{Cat: trace.CatDevice, Name: trace.EvExec, Op: byte(cmd.Opcode()), Start: t, End: end, Arg: int64(cmd.CommandID())})
	}
	return comp, end
}

// classify maps internal errors onto NVMe status codes.
func classify(err error) nvme.Status {
	switch {
	case err == errKeyNotFound:
		return nvme.StatusKeyNotFound
	case err == errIterEnd:
		return nvme.StatusIterEnd
	case err == errBadField:
		return nvme.StatusInvalidField
	case errors.Is(err, fault.ErrPowerCut):
		return nvme.StatusPowerLoss
	case errors.Is(err, fault.ErrTransient):
		return nvme.StatusTransient
	case errors.Is(err, nand.ErrIOFault):
		return nvme.StatusMedia
	default:
		return nvme.StatusInternal
	}
}

// powerCut truncates the device's volatile state at simulated time t: the
// open pending write, the device-side iterator, and (conceptually) the SQ/CQ
// rings are lost; the dead latch makes every subsequent command complete
// with StatusPowerLoss until Mount. Battery-backed state — the vLog page
// buffer and the index journal — survives, as the paper's platform rides out
// power loss (§2.2).
func (d *Device) powerCut(t sim.Time) {
	if d.dead {
		return
	}
	d.dead = true
	d.pending = nil
	d.iter = nil
	// Device DRAM is volatile: both cache tiers vanish with the power.
	d.dropCaches()
	d.stats.PowerCuts.Inc()
	if d.tr != nil {
		d.tr.Emit(trace.Event{Cat: trace.CatDevice, Name: trace.EvPowerCut, Start: t, End: t})
	}
}

// Mount brings a power-cut device back into service: fresh SQ/CQ rings, the
// LSM catalog rolled back to its last durable point, and the battery-backed
// index journal replayed into a fresh MemTable — which restores every
// acknowledged write. The returned time includes the replay's device work.
//
// If a fault fires during replay (plans can do that), the journal still
// holds every record not yet durable, so a subsequent Mount resumes cleanly.
func (d *Device) Mount(t sim.Time) (sim.Time, error) {
	d.dead = false
	d.pending = nil
	d.iter = nil
	// The rings are volatile; the driver re-reads Queues() on every submit,
	// so replacing the pair models the host re-creating its queues.
	d.qp = nvme.NewQueuePair(d.cfg.QueueDepth)
	d.qp.Attach(d.clock, d.tr)
	d.stats.Mounts.Inc()
	end := t
	if d.cfg.NANDEnabled {
		d.tree.Restore()
		var err error
		end, err = d.replayJournal(t)
		if err != nil {
			return end, err
		}
	}
	if d.tr != nil {
		d.tr.Emit(trace.Event{Cat: trace.CatDevice, Name: trace.EvMount, Start: t, End: end, Arg: int64(d.stats.ReplayedRecords.Value())})
	}
	return end, nil
}

// replayJournal re-indexes every journal record through the journaled insert
// path. Replay charges one device memcpy per record (reading it out of the
// battery-backed region) and validates value addresses against the vLog's
// live range before trusting them.
func (d *Device) replayJournal(t sim.Time) (sim.Time, error) {
	if d.jnl.len() == 0 {
		return t, nil
	}
	// Snapshot first: re-appending goes through the live journal, and a tree
	// flush during replay resets it (those records just became durable).
	recs := append([]journalRecord(nil), d.jnl.recs...)
	arena := append([]byte(nil), d.jnl.arena...)
	d.jnl.reset()
	end := t
	for i, r := range recs {
		key := arena[r.keyOff : r.keyOff+r.keyLen]
		end = d.eng.Memcpy(end, r.keyLen+journalRecordOverhead)
		if !r.tomb && !d.vlog.Contains(r.addr, int(r.size)) {
			// Stale: vLog GC reclaimed this value's pages after the record
			// was journaled — which only happens once a later record (the
			// relocation, an overwrite, or a tombstone) superseded it. The
			// later record is authoritative; skip this one.
			continue
		}
		d.jnl.append(key, r.addr, r.size, r.tomb)
		var err error
		if r.tomb {
			end, err = d.tree.Delete(end, key)
		} else {
			end, err = d.tree.Put(end, key, r.addr, r.size)
		}
		if err != nil {
			// Keep the not-yet-replayed tail journaled so the next Mount
			// can resume; the failing record is already re-appended above.
			for _, rr := range recs[i+1:] {
				d.jnl.append(arena[rr.keyOff:rr.keyOff+rr.keyLen], rr.addr, rr.size, rr.tomb)
			}
			if errors.Is(err, fault.ErrPowerCut) {
				d.powerCut(end)
			}
			return end, err
		}
		d.stats.ReplayedRecords.Inc()
		if d.tr != nil {
			d.tr.Emit(trace.Event{Cat: trace.CatDevice, Name: trace.EvReplay, Start: end, End: end, Bytes: int64(r.size)})
		}
	}
	return end, nil
}

var (
	errKeyNotFound = fmt.Errorf("device: key not found")
	errIterEnd     = fmt.Errorf("device: iterator exhausted")
	errBadField    = fmt.Errorf("device: invalid command field")
)

// execWrite starts (and possibly completes) a key-value write. The
// pendingWrite and its key/value backing are controller-owned scratch, reused
// across commands.
func (d *Device) execWrite(t sim.Time, cmd nvme.Command) (sim.Time, error) {
	pw := &d.pwScratch
	pw.key = cmd.AppendKey(pw.key[:0])
	if len(pw.key) == 0 {
		d.stats.BadCommands.Inc()
		return t, errBadField
	}
	total := int(cmd.ValueSize())
	pw.value = d.valueBuf[:0]
	pw.want = total
	pw.mode = cmd.TransferMode()
	pw.dmaPart = 0
	pw.start, pw.reached = t, t
	switch pw.mode {
	case nvme.ModePRP:
		value, end, err := d.dmaValue(t, cmd, total, pw.value)
		if err != nil {
			return t, err
		}
		pw.value = value
		pw.dmaPart = total
		pw.reached = end
	case nvme.ModeSGL:
		value, end, err := d.sglValue(t, cmd, total, pw.value)
		if err != nil {
			return t, err
		}
		pw.value = value
		pw.dmaPart = total
		pw.reached = end
	case nvme.ModeInline:
		n := min(total, nvme.PiggybackWriteCapacity)
		pw.value = cmd.AppendWritePiggyback(pw.value, n)
		d.stats.InlineBytes.Add(int64(n))
	case nvme.ModeHybrid:
		dmaPart := total / pcie.MemoryPageSize * pcie.MemoryPageSize
		if dmaPart == 0 {
			return t, errBadField // hybrid requires at least one full page
		}
		value, end, err := d.dmaValue(t, cmd, dmaPart, pw.value)
		if err != nil {
			return t, err
		}
		pw.value = value
		pw.dmaPart = dmaPart
		pw.reached = end
	default:
		return t, errBadField
	}
	d.valueBuf = pw.value[:0]
	if len(pw.value) >= pw.want {
		return d.commitWrite(pw)
	}
	d.pending = pw
	return pw.reached, nil
}

// prpFor reconstructs the PRP list a command describes into the controller's
// page-run scratch. PRP1 holds the first page; PRP2 the second page or the
// list pointer. The simulation stores the full list in host memory keyed off
// PRP1 sequentially (addresses are synthetic), so reconstruct from PRP1.
func (d *Device) prpFor(cmd nvme.Command, n int) nvme.PRPList {
	base := cmd.PRP1()
	d.prpScratch = d.prpScratch[:0]
	for i := 0; i < pcie.PagesFor(n); i++ {
		d.prpScratch = append(d.prpScratch, base+uint64(i)*pcie.MemoryPageSize)
	}
	return nvme.PRPList{Pages: d.prpScratch, Payload: n}
}

// dmaValue runs the page-unit DMA described by the command's PRP fields,
// appending the payload to dst.
func (d *Device) dmaValue(t sim.Time, cmd nvme.Command, n int, dst []byte) ([]byte, sim.Time, error) {
	value, end, err := d.eng.TransferInTo(t, d.hostMem, d.prpFor(cmd, n), dst)
	if err != nil {
		return nil, t, err
	}
	d.stats.DMAValueBytes.Add(int64(n))
	return value, end, nil
}

// sglValue runs the Scatter-Gather List transfer described by the command,
// appending the payload to dst.
func (d *Device) sglValue(t sim.Time, cmd nvme.Command, n int, dst []byte) ([]byte, sim.Time, error) {
	value, end, err := d.eng.TransferInSGLTo(t, d.hostMem, d.prpFor(cmd, n), dst)
	if err != nil {
		return nil, t, err
	}
	d.stats.DMAValueBytes.Add(int64(n))
	return value, end, nil
}

// execTransfer appends one trailing fragment to the open write.
func (d *Device) execTransfer(t sim.Time, cmd nvme.Command) (sim.Time, error) {
	pw := d.pending
	if pw == nil {
		d.stats.BadCommands.Inc()
		return t, errBadField
	}
	remain := pw.want - len(pw.value)
	n := min(remain, nvme.PiggybackTransferCapacity)
	pw.value = cmd.AppendTransferPiggyback(pw.value, n)
	d.valueBuf = pw.value[:0]
	d.stats.InlineBytes.Add(int64(n))
	d.stats.TransferFragments.Inc()
	if t > pw.reached {
		pw.reached = t
	}
	if len(pw.value) >= pw.want {
		d.pending = nil
		return d.commitWrite(pw)
	}
	return pw.reached, nil
}

// commitWrite places the reassembled value and indexes it.
func (d *Device) commitWrite(pw *pendingWrite) (sim.Time, error) {
	// Invalidate before any mutation: if the vLog append or the index
	// insert is interrupted mid-way, the cache must already have forgotten
	// the old value.
	d.invalidateValue(pw.key)
	end := pw.reached
	if d.cfg.NANDEnabled {
		var addr vlog.Addr
		var err error
		if pw.dmaPart > 0 {
			// Hybrid tails were copied out of command fields next to the
			// DMA head before placement; charge that device copy.
			if tail := len(pw.value) - pw.dmaPart; tail > 0 {
				end = d.eng.Memcpy(end, tail)
			}
			addr, end, err = d.vlog.AppendDMA(end, pw.value)
		} else {
			addr, end, err = d.vlog.AppendPiggybacked(end, pw.value)
		}
		if err != nil {
			return end, err
		}
		// Journal before indexing: once the value is in the battery-backed
		// buffer and the record is journaled, the write survives power loss
		// even if the tree insert below is interrupted.
		d.jnl.append(pw.key, addr, uint32(len(pw.value)), false)
		end, err = d.tree.Put(end, pw.key, addr, uint32(len(pw.value)))
		if err != nil {
			return end, err
		}
	}
	d.stats.WritesCompleted.Inc()
	return end, nil
}

// execRead resolves a key and DMAs its value into the host pages the command
// describes. It returns the value size.
func (d *Device) execRead(t sim.Time, cmd nvme.Command) (int, sim.Time, error) {
	d.keyScratch = cmd.AppendKey(d.keyScratch[:0])
	key := d.keyScratch
	if len(key) == 0 {
		return 0, t, errBadField
	}
	if d.vcache != nil {
		if value, ok := d.vcache.Get(key); ok {
			// Device-DRAM hit: charge the DRAM access instead of the LSM
			// walk + vLog read, then DMA out as usual.
			d.stats.CacheHits.Inc()
			end := t.Add(d.cacheLat)
			if d.tr != nil {
				d.tr.Emit(trace.Event{Cat: trace.CatDevice, Name: trace.EvCacheHit, Op: byte(cmd.Opcode()), Start: t, End: end, Bytes: int64(len(value))})
			}
			end, err := d.transferOut(end, cmd, value)
			if err != nil {
				return 0, end, err
			}
			d.stats.ReadsCompleted.Inc()
			return len(value), end, nil
		}
		d.stats.CacheMisses.Inc()
	}
	e, ok, end, err := d.tree.Get(t, key)
	if err != nil {
		return 0, t, err
	}
	if !ok || e.Tombstone {
		return 0, end, errKeyNotFound
	}
	value, end, err := d.vlog.ReadInto(end, e.Addr, int(e.Size), d.readBuf[:0])
	if err != nil {
		return 0, end, err
	}
	d.readBuf = value[:0]
	end, err = d.transferOut(end, cmd, value)
	if err != nil {
		return 0, end, err
	}
	d.fillValue(end, key, value)
	d.stats.ReadsCompleted.Inc()
	return len(value), end, nil
}

// transferOut DMAs data to the host buffer described by the command's PRP.
func (d *Device) transferOut(t sim.Time, cmd nvme.Command, data []byte) (sim.Time, error) {
	if len(data) == 0 {
		return t, nil
	}
	return d.eng.TransferOut(t, d.hostMem, d.prpFor(cmd, len(data)), data)
}

// execDelete writes a tombstone.
func (d *Device) execDelete(t sim.Time, cmd nvme.Command) (sim.Time, error) {
	d.keyScratch = cmd.AppendKey(d.keyScratch[:0])
	key := d.keyScratch
	if len(key) == 0 {
		return t, errBadField
	}
	d.invalidateValue(key)
	end := t
	if d.cfg.NANDEnabled {
		d.jnl.append(key, 0, 0, true)
		var err error
		end, err = d.tree.Delete(t, key)
		if err != nil {
			return end, err
		}
	}
	d.stats.DeletesCompleted.Inc()
	return end, nil
}

// execSeek opens the device-side iterator at the first key >= the command
// key.
func (d *Device) execSeek(t sim.Time, cmd nvme.Command) (sim.Time, error) {
	d.keyScratch = cmd.AppendKey(d.keyScratch[:0])
	it, err := d.tree.Seek(t, d.keyScratch)
	if err != nil {
		return t, err
	}
	d.iter = it
	return it.End(), nil
}

// execNext returns the iterator's current pair into the host buffer as
// [keyLen u8][key][value] and advances. The returned int is the total bytes
// written.
func (d *Device) execNext(t sim.Time, cmd nvme.Command) (int, sim.Time, error) {
	if d.iter == nil || !d.iter.Valid() {
		return 0, t, errIterEnd
	}
	e := d.iter.Entry()
	value, end, err := d.vlog.ReadInto(d.iter.End(), e.Addr, int(e.Size), d.readBuf[:0])
	if err != nil {
		return 0, t, err
	}
	d.readBuf = value[:0]
	payload := d.nextBuf[:0]
	payload = append(payload, byte(len(e.Key)))
	payload = append(payload, e.Key...)
	payload = append(payload, value...)
	d.nextBuf = payload[:0]
	end, err = d.transferOut(end, cmd, payload)
	if err != nil {
		return 0, end, err
	}
	d.iter.Next(end)
	if d.iter.Err() != nil {
		return 0, end, d.iter.Err()
	}
	return len(payload), end, nil
}

// execFlush forces the vLog buffer and MemTable to NAND.
func (d *Device) execFlush(t sim.Time) (sim.Time, error) {
	if !d.cfg.NANDEnabled {
		return t, nil
	}
	d.dropValueCache()
	end, err := d.vlog.Flush(t)
	if err != nil {
		return end, err
	}
	tEnd, err := d.tree.Flush(t)
	if err != nil {
		return end, err
	}
	if tEnd > end {
		end = tEnd
	}
	return end, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
