package device

import (
	"testing"

	"bandslim/internal/nvme"
	"bandslim/internal/pagebuf"
)

func TestIdentifyRoundTrip(t *testing.T) {
	cfg := smallConfig()
	cfg.Buffer.Policy = pagebuf.PolicyBackfill
	dev, _, _, mem := newDev(t, cfg)
	rbuf, err := nvme.BuildPRP(mem, make([]byte, 4096))
	if err != nil {
		t.Fatal(err)
	}
	var cmd nvme.Command
	cmd.SetOpcode(nvme.OpAdminIdentify)
	cmd.SetPRP1(rbuf.Pages[0])
	comp, _ := submit(t, dev, cmd)
	if comp.Status != nvme.StatusSuccess {
		t.Fatalf("identify status %v", comp.Status)
	}
	if comp.Result != 4096 {
		t.Fatalf("identify size %d", comp.Result)
	}
	data, _ := rbuf.Gather(mem)
	id := ParseIdentify(data)
	if id.Model != "BandSlim KV-SSD (simulated Cosmos+)" {
		t.Fatalf("Model = %q", id.Model)
	}
	if id.Serial != "BSLIM-SIM-0001" {
		t.Fatalf("Serial = %q", id.Serial)
	}
	geo := dev.Flash().Geometry()
	if id.CapacityBytes != geo.CapacityBytes() {
		t.Fatalf("CapacityBytes = %d", id.CapacityBytes)
	}
	if id.Channels != geo.Channels || id.WaysPerChannel != geo.WaysPerChannel {
		t.Fatalf("geometry %d x %d", id.Channels, id.WaysPerChannel)
	}
	if id.NANDPageSize != 16*1024 {
		t.Fatalf("NANDPageSize = %d", id.NANDPageSize)
	}
	if !id.KVCommandSet {
		t.Fatal("KV command set flag missing")
	}
	if id.InlineWriteBytes != 35 || id.InlineXferBytes != 56 {
		t.Fatalf("inline capacities %d/%d", id.InlineWriteBytes, id.InlineXferBytes)
	}
	if id.PackingPolicy != "Backfill" {
		t.Fatalf("PackingPolicy = %q", id.PackingPolicy)
	}
	if id.VLogBytes != dev.VLog().CapacityBytes() {
		t.Fatalf("VLogBytes = %d", id.VLogBytes)
	}
}

func TestParseIdentifyShortBuffer(t *testing.T) {
	id := ParseIdentify([]byte{'X'})
	if id.Model != "X" {
		t.Fatalf("short parse model %q", id.Model)
	}
	if id.KVCommandSet {
		t.Fatal("zero buffer claimed KV support")
	}
}
