package workload

import "testing"

func TestZipfianValidate(t *testing.T) {
	cases := []struct {
		n    int
		s    float64
		want bool
	}{
		{0, 0.99, false},
		{-3, 0.99, false},
		{10, 0, false},
		{10, -1, false},
		{1, 0.99, true},
		{1000, 0.99, true},
		{1000, 1.5, true},
	}
	for _, tc := range cases {
		_, err := NewZipfian(tc.n, tc.s, 1)
		if (err == nil) != tc.want {
			t.Errorf("NewZipfian(%d, %v): err=%v, want ok=%v", tc.n, tc.s, err, tc.want)
		}
	}
}

func TestZipfianDeterministic(t *testing.T) {
	a, _ := NewZipfian(1000, 0.99, 42)
	b, _ := NewZipfian(1000, 0.99, 42)
	c, _ := NewZipfian(1000, 0.99, 43)
	same, diff := true, false
	for i := 0; i < 10000; i++ {
		x, y, z := a.Next(), b.Next(), c.Next()
		if x != y {
			same = false
		}
		if x != z {
			diff = true
		}
	}
	if !same {
		t.Error("same seed produced different sequences")
	}
	if !diff {
		t.Error("different seeds produced identical sequences")
	}
}

func TestZipfianSkew(t *testing.T) {
	// With s=0.99 over 1000 ranks, rank frequencies must be monotone on
	// average and heavily front-loaded: the top 10 ranks carry ~39% of the
	// ideal mass. Check the empirical shape over a large sample.
	const n, draws = 1000, 200000
	z, err := NewZipfian(n, 0.99, 7)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		r := z.Next()
		if r < 0 || r >= n {
			t.Fatalf("rank %d out of [0,%d)", r, n)
		}
		counts[r]++
	}
	var top10 int
	for _, c := range counts[:10] {
		top10 += c
	}
	if frac := float64(top10) / draws; frac < 0.30 || frac > 0.50 {
		t.Errorf("top-10 ranks got %.3f of draws, want ~0.39", frac)
	}
	if counts[0] <= counts[n-1] {
		t.Errorf("rank 0 (%d draws) not hotter than rank %d (%d draws)",
			counts[0], n-1, counts[n-1])
	}
}

func TestZipfianSingleRank(t *testing.T) {
	z, err := NewZipfian(1, 0.99, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if r := z.Next(); r != 0 {
			t.Fatalf("n=1 drew rank %d", r)
		}
	}
}

func TestHotspotValidate(t *testing.T) {
	cases := []struct {
		n        int
		frac, pr float64
		want     bool
	}{
		{1, 0.1, 0.9, false},
		{100, 0, 0.9, false},
		{100, 1, 0.9, false},
		{100, 0.1, 0, false},
		{100, 0.1, 1, false},
		{100, 0.1, 0.9, true},
		{2, 0.5, 0.5, true},
	}
	for _, tc := range cases {
		_, err := NewHotspot(tc.n, tc.frac, tc.pr, 1)
		if (err == nil) != tc.want {
			t.Errorf("NewHotspot(%d, %v, %v): err=%v, want ok=%v", tc.n, tc.frac, tc.pr, err, tc.want)
		}
	}
}

func TestHotspotShape(t *testing.T) {
	// 10% of ranks take 90% of draws.
	const n, draws = 1000, 100000
	h, err := NewHotspot(n, 0.1, 0.9, 11)
	if err != nil {
		t.Fatal(err)
	}
	if h.HotRanks() != 100 {
		t.Fatalf("HotRanks = %d, want 100", h.HotRanks())
	}
	var hot int
	for i := 0; i < draws; i++ {
		r := h.Next()
		if r < 0 || r >= n {
			t.Fatalf("rank %d out of [0,%d)", r, n)
		}
		if r < h.HotRanks() {
			hot++
		}
	}
	if frac := float64(hot) / draws; frac < 0.88 || frac > 0.92 {
		t.Errorf("hot set got %.3f of draws, want ~0.90", frac)
	}
}

func TestHotspotDeterministic(t *testing.T) {
	a, _ := NewHotspot(500, 0.2, 0.8, 9)
	b, _ := NewHotspot(500, 0.2, 0.8, 9)
	for i := 0; i < 5000; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("draw %d diverged: %d vs %d", i, x, y)
		}
	}
}
